(* colock — command-line interface to the lock technique library.

   Subcommands:
     graph     print the object-specific lock graph of the Figure 1 relations
               (or of a generated deep schema)
     plan      show the lock plan of a query, per technique
     query     execute queries against the Figure 1 database, showing rows
               and the resulting lock table
     simulate  run the concurrency simulator on a generated workload *)

open Cmdliner

let setup_logs =
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Log lock-protocol and lock-table decisions to stderr.")
  in
  let setup verbose =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))
  in
  Term.(const setup $ verbose)

let make_fig1_env ~library_writable =
  let db = Workload.Figure1.database () in
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create () in
  let rights = Authz.Rights.create () in
  if not library_writable then
    Authz.Rights.set_relation_default rights ~relation:"effectors" false;
  let protocol = Colock.Protocol.create ~rights graph table in
  (db, graph, table, protocol)

(* ------------------------------------------------------------------ graph *)

let graph_cmd =
  let deep_depth =
    Arg.(value & opt (some int) None
         & info [ "deep" ] ~docv:"DEPTH"
             ~doc:"Show the lock graph of a generated schema of this depth \
                   instead of the Figure 1 relations.")
  in
  let run () deep =
    (match deep with
     | Some depth ->
       let db =
         Workload.Generator.deep
           { Workload.Generator.default_deep with depth; objects = 1 }
       in
       List.iter
         (fun store ->
           let schema = Nf2.Relation.schema store in
           Format.printf "%a@.@." Colock.Object_graph.pp
             (Colock.Object_graph.of_relation ~database:"db1" schema))
         (Nf2.Database.relations db)
     | None ->
       List.iter
         (fun schema ->
           Format.printf "%a@.@." Colock.Object_graph.pp
             (Colock.Object_graph.of_relation ~database:"db1" schema))
         [ Workload.Figure1.cells_schema; Workload.Figure1.effectors_schema ]);
    0
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print object-specific lock graphs (Figure 5).")
    Term.(const run $ setup_logs $ deep_depth)

(* ------------------------------------------------------------------- plan *)

let query_arg position =
  Arg.(required & pos position (some string) None
       & info [] ~docv:"QUERY" ~doc:"An HDBL-like query (see Figure 3).")

let plan_cmd =
  let threshold =
    Arg.(value & opt int 16
         & info [ "threshold" ] ~docv:"N" ~doc:"Escalation threshold.")
  in
  let run () text threshold =
    let db, _graph, _table, _protocol = make_fig1_env ~library_writable:true in
    match Query.Parser.parse text with
    | Error error ->
      Format.eprintf "%a@." Query.Parser.pp_error error;
      1
    | Ok ast -> (
      let catalog = Nf2.Database.catalog db in
      match Query.Analyzer.analyze catalog ast with
      | Error error ->
        Format.eprintf "%a@." Query.Analyzer.pp_error error;
        1
      | Ok analysis ->
        let stats relation =
          match Nf2.Database.relation db relation with
          | Some store -> Nf2.Statistics.compute store
          | None -> Nf2.Statistics.empty relation
        in
        let plan =
          Colock.Query_graph.build ~threshold catalog ~stats
            analysis.Query.Analyzer.accesses
        in
        Format.printf "%a@." Colock.Query_graph.pp plan;
        0)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show the query-specific lock graph (granules and modes) chosen \
             by escalation anticipation.")
    Term.(const run $ setup_logs $ query_arg 0 $ threshold)

(* ------------------------------------------------------------------ query *)

let query_cmd =
  let queries =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"QUERY"
             ~doc:"Queries, executed by transactions 1, 2, ... in order.")
  in
  let library_writable =
    Arg.(value & flag
         & info [ "library-writable" ]
             ~doc:"Allow every transaction to modify the effectors library \
                   (rule 4' then behaves like rule 4).")
  in
  let run () texts library_writable =
    let db, _graph, table, protocol = make_fig1_env ~library_writable in
    let executor = Query.Executor.create db protocol in
    let failed = ref false in
    List.iteri
      (fun index text ->
        let txn = index + 1 in
        Printf.printf "T%d: %s\n" txn text;
        match Query.Executor.run_string executor ~txn ~wait:false text with
        | Ok result ->
          Printf.printf "  %d row(s), %d lock request(s)\n"
            (List.length result.Query.Executor.rows)
            result.Query.Executor.locks_requested
        | Error error ->
          failed := true;
          Format.printf "  %a@." Query.Executor.pp_error error)
      texts;
    Format.printf "@.lock table:@.%a@." Lockmgr.Lock_table.pp table;
    if !failed then 1 else 0
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Execute queries against the Figure 1 database and show the \
             resulting lock table (compare with Figure 7).")
    Term.(const run $ setup_logs $ queries $ library_writable)

(* ------------------------------------------------- simulate / trace common *)

let technique_conv =
  Arg.enum
    [ ("proposed", `Proposed); ("rule4", `Proposed_rule4);
      ("whole-object", `Whole_object); ("tuple-level", `Tuple_level) ]

let jobs_arg =
  Arg.(value & opt int 60 & info [ "jobs" ] ~docv:"N" ~doc:"Number of transactions.")

let cells_arg =
  Arg.(value & opt int 8 & info [ "cells" ] ~docv:"N" ~doc:"Cells in the database.")

let read_fraction_arg =
  Arg.(value & opt float 0.5
       & info [ "read-fraction" ] ~docv:"F" ~doc:"Fraction of Q1-like reads.")

let seed_arg =
  Arg.(value & opt int 17 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let resolution_conv =
  let parse text =
    match Lockmgr.Policy.resolution_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_resolution)

let victim_conv =
  let parse text =
    match Lockmgr.Policy.victim_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_victim)

let backoff_conv =
  let parse text =
    match Lockmgr.Policy.backoff_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_backoff)

let faults_conv =
  let print formatter spec =
    Format.pp_print_string formatter (Sim.Fault.to_string spec)
  in
  Arg.conv (Sim.Fault.of_string, print)

let restart_conv =
  let parse text =
    match Lockmgr.Policy.restart_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_restart)

let admission_conv =
  let parse text =
    Result.map_error
      (fun message -> `Msg message)
      (Robust.Admission.config_of_string text)
  in
  let print formatter config =
    Format.pp_print_string formatter (Robust.Admission.config_to_string config)
  in
  Arg.conv (parse, print)

let retry_budget_conv =
  let parse text =
    Result.map_error
      (fun message -> `Msg message)
      (Robust.Budget.config_of_string text)
  in
  let print formatter (config : Robust.Budget.config) =
    Format.fprintf formatter "%g:%g" config.ratio config.burst
  in
  Arg.conv (parse, print)

let breaker_conv =
  let parse text =
    Result.map_error
      (fun message -> `Msg message)
      (Robust.Breaker.config_of_string text)
  in
  let print formatter (config : Robust.Breaker.config) =
    Format.fprintf formatter "%g:%d:%d" config.failure_rate config.open_for
      config.probes
  in
  Arg.conv (parse, print)

let resolution_arg =
  Arg.(value & opt resolution_conv Lockmgr.Policy.Detection
       & info [ "resolution" ] ~docv:"STRATEGY"
           ~doc:"How stuck waits resolve: $(b,detection) (waits-for cycle \
                 search on every wait), $(b,timeout)[:TICKS] (abort any \
                 wait older than TICKS, no detection), or \
                 $(b,hybrid)[:TICKS] (both).")

let victim_arg =
  Arg.(value & opt victim_conv Lockmgr.Policy.Youngest
       & info [ "victim" ] ~docv:"POLICY"
           ~doc:"Deadlock victim selection: $(b,youngest), $(b,oldest), \
                 $(b,fewest-locks) or $(b,least-work).")

let backoff_arg =
  Arg.(value & opt backoff_conv (Lockmgr.Policy.Fixed 50)
       & info [ "backoff" ] ~docv:"SPEC"
           ~doc:"Victim restart delay: $(b,fixed):N or \
                 $(b,exp):BASE:CAP[:SEED] (exponential with deterministic \
                 jitter).")

let max_restarts_arg =
  Arg.(value & opt int 20
       & info [ "max-restarts" ] ~docv:"N"
           ~doc:"Abort budget per job; a job victimized more often gives up.")

let faults_arg =
  Arg.(value & opt faults_conv Sim.Fault.none
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:"Inject faults, e.g. $(b,crash:0.1,stall:0.2x4,hog:0.05): \
                 each job draws a fate from the --seed-derived RNG; crashed \
                 jobs die holding their locks, stalled jobs access N times \
                 slower, hogs camp on their locks without committing.")

let restart_policy_arg =
  Arg.(value & opt restart_conv Lockmgr.Policy.No_restart
       & info [ "restart-policy" ] ~docv:"POLICY"
           ~doc:"Contention-control restart policy applied the moment a \
                 request starts waiting: $(b,none), $(b,wdl)[:D] (abort a \
                 transaction when its wait chain exceeds depth D) or \
                 $(b,running-priority) (abort blockers that are themselves \
                 waiting).")

let admission_arg =
  Arg.(value & opt (some admission_conv) None
       & info [ "admission" ] ~docv:"INIT[:MIN:MAX[:QUEUE]]"
           ~doc:"Gate job begins through an adaptive (AIMD) concurrency \
                 limit starting at INIT, clamped to [MIN,MAX], with a \
                 bounded priority entry queue of QUEUE slots; overflow is \
                 shed.")

let retry_budget_arg =
  Arg.(value & opt (some retry_budget_conv) None
       & info [ "retry-budget" ] ~docv:"RATIO[:BURST]"
           ~doc:"Couple restarts to useful work: each commit earns RATIO \
                 retry tokens (bucket capacity BURST); a restart with an \
                 empty bucket gives up instead of retrying.")

let breaker_arg =
  Arg.(value & opt (some breaker_conv) None
       & info [ "breaker" ] ~docv:"RATE:OPEN[:PROBES]"
           ~doc:"Abort-storm circuit breaker: when the abort fraction of \
                 recent outcomes crosses RATE the breaker opens for OPEN \
                 ticks, then half-opens and lets PROBES probe restarts \
                 decide whether to close.")

let check_invariants_arg =
  Arg.(value & flag
       & info [ "check-invariants" ]
           ~doc:"Audit the lock table and job states after every simulator \
                 event (chaos-run oracle; slows large runs down).")

let manufacturing_scenario ~jobs ~cells ~read_fraction ~seed =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells; seed }
  in
  let graph = Colock.Instance_graph.build db in
  let mix = { Sim.Scenario.default_mix with jobs; read_fraction; seed } in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  (graph, specs)

let technique_of graph table = function
  | `Proposed -> Sim.Scenario.Proposed (Colock.Protocol.create graph table)
  | `Proposed_rule4 ->
    Sim.Scenario.Proposed
      (Colock.Protocol.create ~rule:Colock.Protocol.Rule_4 graph table)
  | `Whole_object -> Sim.Scenario.Whole_object
  | `Tuple_level -> Sim.Scenario.Tuple_level

(* An instrumented capture context: ring buffer for raw events, collector
   for latency histograms, both fed by one sink.  [?keep] filters what the
   ring retains (the collector always sees everything, so counters stay
   complete). *)
let make_capture ?keep () =
  let sink, ring = Obs.Sink.memory ~capacity:262144 ?keep () in
  let collector = Obs.Collector.create () in
  Obs.Sink.attach sink (Obs.Collector.handle collector);
  (sink, ring, collector)

let with_out path f =
  if String.equal path "-" then f stdout
  else
    match open_out path with
    | channel ->
      Fun.protect ~finally:(fun () -> close_out channel) (fun () -> f channel)
    | exception Sys_error message ->
      Fmt.epr "colock: cannot write output: %s@." message;
      exit 1

(* ------------------------------------------------- live monitoring common *)

let window_arg =
  Arg.(value & opt float 200.0
       & info [ "window" ] ~docv:"TICKS"
           ~doc:"Sliding-window length (virtual clock ticks) behind the \
                 windowed rates, wait quantiles and SLO evaluation.")

let slo_arg =
  Arg.(value & opt (some file) None
       & info [ "slo" ] ~docv:"FILE"
           ~doc:"Evaluate SLO rules from $(docv) (one per line, e.g. \
                 $(b,p99_wait < 40), $(b,abort_rate < 0.25), optionally \
                 $(b,p95_wait{lu=HoLU} < 25)) once per window; every \
                 violation emits an slo_breach event into the captures.")

let load_slo = function
  | None -> None
  | Some path ->
    (match Obs.Slo.load path with
     | Ok slo -> Some slo
     | Error message ->
       (* diagnostics already carry "path:line:" positions *)
       Fmt.epr "colock: %s@." message;
       exit 1)

(* The run can end with SLO breaches (exit 3) — distinct from usage errors
   (124/125) and ordinary failures (1). *)
let exit_slo_breach = 3

let health_response monitor =
  let body =
    Obs.Monitor.locked monitor (fun () ->
        Obs.Json.to_string
          (Obs.Json.Obj
             [ ("status", Obs.Json.String "ok");
               ( "run",
                 match Obs.Monitor.label monitor with
                 | Some label -> Obs.Json.String label
                 | None -> Obs.Json.Null );
               ("now", Obs.Json.Float (Obs.Monitor.now monitor));
               ( "commits",
                 Obs.Json.Float (float_of_int (Obs.Monitor.commits monitor))
               ) ]))
    ^ "\n"
  in
  { Obs.Http.status = 200; content_type = "application/json"; body }

(* [sink ()] is consulted per scrape: simulate re-creates its capture sink
   for every technique, and the self-accounting gauges should describe the
   one currently live. *)
let start_metrics_server ~port monitor sink =
  let handler path =
    match path with
    | "/metrics" ->
      let body =
        Obs.Monitor.locked monitor (fun () ->
            (match sink () with
             | Some sink -> Obs.Monitor.sync_sink monitor sink
             | None -> ());
            Obs.Expo.render (Obs.Monitor.registry monitor))
      in
      Some
        { Obs.Http.status = 200; content_type = Obs.Expo.content_type; body }
    | "/health" -> Some (health_response monitor)
    | _ -> None
  in
  let server = Obs.Http.start ~port handler in
  Printf.eprintf "colock: serving /metrics and /health on 127.0.0.1:%d\n%!"
    (Obs.Http.port server);
  server

let print_verdicts ~label verdicts =
  List.iter
    (fun { Obs.Slo.rule; value; ok } ->
      Printf.printf "%-22s %s %s (value %g)\n" label
        (if ok then "ok    " else "BREACH")
        rule.Obs.Slo.text value)
    verdicts

(* ------------------------------------------------------------- dashboard *)

(* One [colock top] frame as a string: plain text under [--once] (golden
   testable), ANSI-highlighted live. *)
let render_dashboard ?(color = false) ?(top = 8) monitor watch =
  let buffer = Buffer.create 1024 in
  let add format = Printf.ksprintf (Buffer.add_string buffer) format in
  let bold text = if color then "\027[1m" ^ text ^ "\027[0m" else text in
  let red text = if color then "\027[31m" ^ text ^ "\027[0m" else text in
  let registry = Obs.Monitor.registry monitor in
  let gauge name = int_of_float (Obs.Registry.gauge_value registry name) in
  let window name = Obs.Registry.find_window registry name in
  let label =
    match Obs.Monitor.label monitor with
    | Some label -> label
    | None -> "(unlabelled run)"
  in
  add "%s\n" (bold (Printf.sprintf "colock top — %s" label));
  add "now %.0f  elapsed %.0f  throughput %.4f commits/tick\n"
    (Obs.Monitor.now monitor)
    (Obs.Monitor.elapsed monitor)
    (Obs.Monitor.throughput monitor);
  add "active txns %d  lock entries %d  wait queue %d\n"
    (gauge "active_txns") (gauge "lock_entries") (gauge "wait_queue_depth");
  (match window "window.lock_wait" with
   | Some waits ->
     add
       "window wait  p50 %.1f  p95 %.1f  p99 %.1f  max %.1f  (%d waits, \
        %.3f/tick)\n"
       (Obs.Window.quantile waits 0.50)
       (Obs.Window.quantile waits 0.95)
       (Obs.Window.quantile waits 0.99)
       (Obs.Window.max_value waits) (Obs.Window.count waits)
       (Obs.Window.rate waits)
   | None -> ());
  let window_line name window =
    add "window %-9s %4d  (%.3f/tick)\n" name (Obs.Window.count window)
      (Obs.Window.rate window)
  in
  List.iter
    (fun (title, name) ->
      match window name with
      | Some window -> window_line title window
      | None -> ())
    [ ("grants", "window.grants"); ("commits", "window.commits");
      ("aborts", "window.aborts"); ("deadlocks", "window.deadlocks") ];
  (match
     List.filter (fun (_, count) -> count > 0) (Obs.Monitor.aborts monitor)
   with
   | [] -> ()
   | aborts ->
     add "aborts: %s\n"
       (String.concat "  "
          (List.map
             (fun (reason, count) -> Printf.sprintf "%s %d" reason count)
             aborts)));
  (match Obs.Monitor.hot_resources ~top monitor with
   | [] -> ()
   | hot ->
     add "%s\n" (bold "hot resources                    blocked  waits  lu");
     List.iter
       (fun (resource, stat) ->
         add "  %-30s %7.1f  %5d  %s\n" resource
           stat.Obs.Monitor.r_blocked stat.Obs.Monitor.r_waits
           (match stat.Obs.Monitor.r_lu with
            | Some { Obs.Event.lu_kind; _ } -> lu_kind
            | None -> "-"))
       hot);
  (match watch with
   | None -> ()
   | Some watch ->
     let verdicts =
       Obs.Slo.evaluate (Obs.Slo.watched watch) monitor
     in
     let breaches = Obs.Slo.breach_count watch in
     add "%s\n"
       (bold
          (Printf.sprintf "SLO (%d rule(s), %d breach(es) this run)"
             (List.length verdicts) breaches));
     List.iter
       (fun { Obs.Slo.rule; value; ok } ->
         let status = if ok then "ok    " else red "BREACH" in
         add "  %s %s (value %g)\n" status rule.Obs.Slo.text value)
       verdicts);
  Buffer.contents buffer

(* --------------------------------------------------------------- simulate *)

let simulate_cmd =
  let technique =
    Arg.(value & opt (list technique_conv) [ `Proposed; `Whole_object; `Tuple_level ]
         & info [ "technique"; "t" ] ~docv:"TECH"
             ~doc:"Techniques to compare: proposed, rule4, whole-object, \
                   tuple-level.")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event capture of the run(s) to \
                   $(docv) — open it in chrome://tracing or Perfetto; lock \
                   waits appear as spans, one timeline row per transaction.")
  in
  let stats_json_file =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"Write per-technique metrics (simulator counters, lock \
                   table counters, wait/grant/response latency quantiles and \
                   histogram buckets) as JSON to $(docv). Use '-' for \
                   stdout; the table is then suppressed.")
  in
  let jsonl_file =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Write the raw event stream of the run(s) as JSON lines to \
                   $(docv) ('-' for stdout), one run_meta delimiter line per \
                   technique — the input format of $(b,colock analyze).")
  in
  let snapshot_every =
    Arg.(value & opt (some int) None
         & info [ "snapshot-every" ] ~docv:"TICKS"
             ~doc:"Emit a wait-for-graph snapshot event every $(docv) \
                   virtual ticks, so deadlock structure is observable over \
                   time in traces and contention reports.")
  in
  let trace_all =
    Arg.(value & flag
         & info [ "trace-all" ]
             ~doc:"Keep per-step sim_step noise in captures; by default it \
                   is filtered out of --trace/--jsonl output (counters still \
                   see every event).")
  in
  let serve_port =
    Arg.(value & opt (some int) None
         & info [ "serve" ] ~docv:"PORT"
             ~doc:"Serve live Prometheus metrics ($(b,/metrics)) and a \
                   health probe ($(b,/health)) on 127.0.0.1:$(docv) while \
                   the simulation runs (0 picks an ephemeral port). Combine \
                   with $(b,--pace) so there is wall time to scrape.")
  in
  let pace =
    Arg.(value & opt float 0.0
         & info [ "pace" ] ~docv:"TICKS/SEC"
             ~doc:"Pace the simulation against wall time at $(docv) virtual \
                   ticks per second (0 = run flat out). Makes $(b,--serve) \
                   endpoints show the run unfolding live.")
  in
  let run () techniques jobs cells read_fraction seed resolution victim
      backoff max_restarts restart admission retry_budget breaker faults
      check_invariants trace_file stats_json_file jsonl_file snapshot_every
      trace_all serve_port pace window slo_file =
    let graph, specs =
      manufacturing_scenario ~jobs ~cells ~read_fraction ~seed
    in
    let slo = load_slo slo_file in
    let monitoring = serve_port <> None || slo <> None in
    let on_advance =
      if pace > 0.0 then begin
        let previous = ref 0 in
        Some
          (fun time ->
            let delta = time - !previous in
            previous := time;
            if delta > 0 then Unix.sleepf (float_of_int delta /. pace))
      end
      else None
    in
    let overload =
      if admission <> None || retry_budget <> None || breaker <> None then
        Some
          { Sim.Runner.admission;
            controller = Robust.Controller.default_config;
            budget = retry_budget; breaker }
      else None
    in
    let config =
      { Sim.Runner.default_config with resolution; victim; backoff;
        max_restarts; restart; overload; check_invariants; snapshot_every;
        on_advance }
    in
    let faults = { faults with Sim.Fault.fault_seed = seed } in
    let observing =
      trace_file <> None || stats_json_file <> None || jsonl_file <> None
      || monitoring
    in
    let keep = if trace_all then None else Some Obs.Sink.not_sim_step in
    let quiet = stats_json_file = Some "-" || jsonl_file = Some "-" in
    let monitor =
      if monitoring then Some (Obs.Monitor.create ~span:window ()) else None
    in
    let live_sink = ref None in
    let server =
      Option.map
        (fun port ->
          let monitor = Option.get monitor in
          start_metrics_server ~port monitor (fun () -> !live_sink))
        serve_port
    in
    let breach_total = ref 0 in
    if not quiet then
      Printf.printf "%-22s %9s %9s %9s %9s %9s %9s %9s %9s\n" "technique"
        "committed" "aborts" "crashed" "makespan" "thruput" "avg resp" "waits"
        "locks";
    let captures =
      List.map
        (fun selector ->
          let capture =
            if observing then Some (make_capture ?keep ()) else None
          in
          let obs = Option.map (fun (sink, _, _) -> sink) capture in
          live_sink := obs;
          (* tag lock events with granule metadata for every technique —
             the baselines have no protocol to install the resolver *)
          let table =
            Lockmgr.Lock_table.create ?obs
              ~meta:(Colock.Instance_graph.lu_resolver graph) ()
          in
          let technique = technique_of graph table selector in
          let name = Sim.Scenario.technique_name technique in
          (* one live monitor across techniques: a begin_run reset per
             technique keeps the /metrics endpoint from bleeding stats
             between runs; a fresh SLO watch per technique restarts the
             breach tally and window phase *)
          let watch =
            match monitor, obs with
            | Some monitor, Some sink ->
              Obs.Monitor.begin_run monitor ~label:name;
              Obs.Sink.attach sink (Obs.Monitor.handle monitor);
              Option.map
                (fun slo ->
                  let watch = Obs.Slo.watch ~sink slo monitor in
                  Obs.Sink.attach sink (Obs.Slo.handler watch);
                  watch)
                slo
            | _ -> None
          in
          let sim_jobs = Sim.Scenario.compile graph technique specs in
          let metrics = Sim.Runner.run ~config ~faults ~table sim_jobs in
          (match watch with
           | None -> ()
           | Some watch ->
             let breaches =
               Obs.Slo.finish watch
                 ~time:(float_of_int metrics.Sim.Metrics.makespan)
             in
             breach_total := !breach_total + breaches);
          if not quiet then
            Printf.printf "%-22s %9d %9d %9d %9d %9.2f %9.1f %9d %9d\n" name
              metrics.Sim.Metrics.committed
              (metrics.Sim.Metrics.deadlock_aborts
               + metrics.Sim.Metrics.timeout_aborts)
              metrics.Sim.Metrics.crashed metrics.Sim.Metrics.makespan
              (Sim.Metrics.throughput metrics)
              (Sim.Metrics.avg_response metrics)
              metrics.Sim.Metrics.total_wait metrics.Sim.Metrics.lock_requests;
          (match watch, monitor with
           | Some watch, Some monitor when not quiet ->
             print_verdicts ~label:name
               (Obs.Slo.evaluate (Obs.Slo.watched watch) monitor)
           | _ -> ());
          (name, capture, table, metrics))
        techniques
    in
    Option.iter Obs.Http.stop server;
    (match trace_file with
     | None -> ()
     | Some path ->
       let groups =
         List.filter_map
           (fun (name, capture, _table, _metrics) ->
             Option.map
               (fun (_, ring, _) -> (name, Obs.Ring.to_list ring))
               capture)
           captures
       in
       with_out path (fun channel -> Obs.Trace.write channel groups));
    (match jsonl_file with
     | None -> ()
     | Some path ->
       with_out path (fun channel ->
           List.iter
             (fun (name, capture, _table, _metrics) ->
               match capture with
               | None -> ()
               | Some (_, ring, _) ->
                 Obs.Jsonl.write channel
                   { Obs.Event.time = 0.0;
                     kind = Obs.Event.Run_meta { label = name } };
                 Obs.Jsonl.write_events channel (Obs.Ring.to_list ring))
             captures));
    (match stats_json_file with
     | None -> ()
     | Some path ->
       let json =
         Obs.Json.Obj
           (List.map
              (fun (name, capture, table, metrics) ->
                let row =
                  Sim.Metrics.row metrics
                  @ List.map
                      (fun (key, value) -> ("lock." ^ key, value))
                      (Lockmgr.Lock_stats.row (Lockmgr.Lock_table.stats table))
                  @ (match capture with
                     | Some (_, _, collector) ->
                       Obs.Registry.row (Obs.Collector.registry collector)
                     | None -> [])
                in
                let buckets =
                  match capture with
                  | Some (_, _, collector) ->
                    Obs.Registry.bucket_fields
                      (Obs.Collector.registry collector)
                  | None -> []
                in
                ( name,
                  Obs.Json.Obj
                    (List.map
                       (fun (key, value) -> (key, Obs.Json.Float value))
                       row
                     @ buckets) ))
              captures)
       in
       with_out path (fun channel ->
           Obs.Json.output channel json;
           output_char channel '\n'));
    if !breach_total > 0 then begin
      Fmt.epr "colock: %d SLO breach(es)@." !breach_total;
      exit_slo_breach
    end
    else 0
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the concurrency simulator on a generated manufacturing \
             workload and compare techniques; optionally serve live metrics \
             and enforce SLOs while it runs.")
    Term.(const run $ setup_logs $ technique $ jobs_arg $ cells_arg
          $ read_fraction_arg $ seed_arg $ resolution_arg $ victim_arg
          $ backoff_arg $ max_restarts_arg $ restart_policy_arg
          $ admission_arg $ retry_budget_arg $ breaker_arg $ faults_arg
          $ check_invariants_arg $ trace_file $ stats_json_file $ jsonl_file
          $ snapshot_every $ trace_all $ serve_port $ pace $ window_arg
          $ slo_arg)

(* ------------------------------------------------------------------ trace *)

let trace_cmd =
  let technique =
    Arg.(value & opt technique_conv `Proposed
         & info [ "technique"; "t" ] ~docv:"TECH"
             ~doc:"Technique to trace: proposed, rule4, whole-object, \
                   tuple-level.")
  in
  let output =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Chrome trace_event output file ('-' for stdout).")
  in
  let jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Also dump the raw event stream as JSON lines ('-' for \
                   stdout).")
  in
  let run () selector jobs cells read_fraction seed output jsonl =
    let graph, specs =
      manufacturing_scenario ~jobs ~cells ~read_fraction ~seed
    in
    let sink, ring, collector = make_capture () in
    let table =
      Lockmgr.Lock_table.create ~obs:sink
        ~meta:(Colock.Instance_graph.lu_resolver graph) ()
    in
    let technique = technique_of graph table selector in
    let sim_jobs = Sim.Scenario.compile graph technique specs in
    let metrics = Sim.Runner.run ~table sim_jobs in
    let events = Obs.Ring.to_list ring in
    let name = Sim.Scenario.technique_name technique in
    with_out output (fun channel ->
        Obs.Trace.write channel [ (name, events) ]);
    (match jsonl with
     | None -> ()
     | Some path ->
       with_out path (fun channel -> Obs.Jsonl.write_events channel events));
    if not (String.equal output "-") then begin
      let registry = Obs.Collector.registry collector in
      Printf.printf "%s: captured %d event(s) (%d dropped) from %d job(s)\n"
        name (List.length events) (Obs.Ring.dropped ring) jobs;
      Printf.printf
        "committed %d, gave up %d, makespan %d, lock waits observed %d\n"
        metrics.Sim.Metrics.committed metrics.Sim.Metrics.gave_up
        metrics.Sim.Metrics.makespan
        (Obs.Registry.counter registry "events.lock_waited");
      Printf.printf "trace written to %s\n" output
    end;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one simulated workload with full event capture and export \
             a Chrome trace_event file (chrome://tracing, Perfetto).")
    Term.(const run $ setup_logs $ technique $ jobs_arg $ cells_arg
          $ read_fraction_arg $ seed_arg $ output $ jsonl)

(* ------------------------------------------------------------ serve / top *)

let trace_pos_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"TRACE"
           ~doc:"A JSONL event trace, as written by $(b,colock simulate \
                 --jsonl) or $(b,colock trace --jsonl).")

let load_trace path =
  let events, errors = Obs.Jsonl.load path in
  List.iter (fun message -> Fmt.epr "colock: %s: %s@." path message) errors;
  if events = [] then begin
    Fmt.epr "colock: %s: no decodable events@." path;
    exit 1
  end;
  events

(* Streams a JSONL trace run by run in constant memory (soak traces run
   to millions of lines): [start] opens a per-run accumulator when the
   run's first event arrives, [push] feeds it, [flush label run] closes
   it. The splitting mirrors [Obs.Profile.of_trace]: [Run_meta] events
   delimit runs (and are not themselves pushed), events before the first
   delimiter form an unlabelled run, and a delimiter with no events
   still flushes an (empty) run. A trace with no delimiter at all is
   labelled ["run-0"], with a warning on stderr. Malformed lines are
   diagnosed as FILE: line N; returns how many events decoded. *)
let stream_runs path ~start ~push ~flush =
  let decoded = ref 0 in
  let seen_meta = ref false in
  let current = ref None in
  let label = ref None in
  let has_delim = ref false in
  let close () =
    let run =
      match !current with
      | Some run -> Some run
      | None -> if !has_delim then Some (start ()) else None
    in
    (match run with
     | None -> ()
     | Some run ->
       let label =
         if !seen_meta then !label
         else begin
           Fmt.epr
             "colock: %s: no Run_meta delimiter; labelling the whole trace \
              run-0@."
             path;
           Some "run-0"
         end
       in
       flush label run);
    current := None;
    has_delim := false
  in
  Obs.Jsonl.with_file path (fun in_channel ->
    Obs.Jsonl.iter
      ~on_error:(fun message -> Fmt.epr "colock: %s: %s@." path message)
      in_channel
      (fun event ->
        incr decoded;
        match event.Obs.Event.kind with
        | Obs.Event.Run_meta { label = next } ->
          seen_meta := true;
          close ();
          label := Some next;
          has_delim := true
        | _ ->
          let run =
            match !current with
            | Some run -> run
            | None ->
              let run = start () in
              current := Some run;
              run
          in
          push run event));
  close ();
  !decoded

(* A monitor (plus optional SLO watch) fed by a fresh sink — the replay
   pipeline behind both [colock serve] and [colock top]. *)
let make_replay ~window slo_file =
  let monitor = Obs.Monitor.create ~span:window () in
  let sink = Obs.Sink.create [] in
  Obs.Sink.attach sink (Obs.Monitor.handle monitor);
  let watch =
    Option.map
      (fun slo ->
        let watch = Obs.Slo.watch ~sink slo monitor in
        Obs.Sink.attach sink (Obs.Slo.handler watch);
        watch)
      (load_slo slo_file)
  in
  (monitor, sink, watch)

let serve_cmd =
  let port =
    Arg.(value & opt int 9090
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Listen on 127.0.0.1:$(docv); 0 picks an ephemeral port.")
  in
  let rate =
    Arg.(value & opt float 1000.0
         & info [ "rate" ] ~docv:"TICKS/SEC"
             ~doc:"Replay speed: virtual ticks per wall second (0 = replay \
                   instantly).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Exit after the replay finishes instead of serving the \
                   final snapshot until interrupted (smoke tests, scripts).")
  in
  let run () trace port rate window slo_file once =
    let events = load_trace trace in
    let monitor, sink, watch = make_replay ~window slo_file in
    let server = start_metrics_server ~port monitor (fun () -> Some sink) in
    let last = ref 0.0 in
    List.iter
      (fun event ->
        (match event.Obs.Event.kind with
         | Obs.Event.Run_meta _ -> last := event.Obs.Event.time
         | _ ->
           let delta = event.Obs.Event.time -. !last in
           if delta > 0.0 && rate > 0.0 then Unix.sleepf (delta /. rate);
           last := event.Obs.Event.time);
        Obs.Sink.emit_at sink ~time:event.Obs.Event.time event.Obs.Event.kind)
      events;
    (match watch with
     | Some watch -> ignore (Obs.Slo.finish watch ~time:!last : int)
     | None -> ());
    Printf.eprintf "colock: replayed %d event(s) from %s\n%!"
      (List.length events) trace;
    if not once then begin
      Printf.eprintf "colock: serving final snapshot — interrupt to stop\n%!";
      let rec hold () =
        Unix.sleep 3600;
        hold ()
      in
      hold ()
    end;
    Obs.Http.stop server;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Replay a JSONL event trace at a given rate behind a live \
             Prometheus $(b,/metrics) endpoint — rehearse dashboards and \
             alert rules against recorded contention.")
    Term.(const run $ setup_logs $ trace_pos_arg $ port $ rate $ window_arg
          $ slo_arg $ once)

let top_cmd =
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render one plain-text frame per run in the trace and \
                   exit (deterministic; no ANSI escapes).")
  in
  let interval =
    Arg.(value & opt float 2.0
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Seconds between live screen refreshes.")
  in
  let rate =
    Arg.(value & opt float 1000.0
         & info [ "rate" ] ~docv:"TICKS/SEC"
             ~doc:"Replay speed: virtual ticks per wall second (0 = replay \
                   instantly).")
  in
  let top =
    Arg.(value & opt int 8
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows in the hot-resources panel.")
  in
  let run () trace once interval rate top window slo_file =
    let events = load_trace trace in
    let monitor, sink, watch = make_replay ~window slo_file in
    if once then begin
      (* instant replay; a Run_meta boundary flushes the finished run's
         frame before the monitor resets for the next one *)
      let since_meta = ref 0 and frames = ref 0 in
      let flush () =
        if !since_meta > 0 then begin
          (match watch with
           | Some watch ->
             ignore
               (Obs.Slo.finish watch ~time:(Obs.Monitor.now monitor) : int)
           | None -> ());
          if !frames > 0 then print_newline ();
          print_string (render_dashboard ~top monitor watch);
          incr frames;
          since_meta := 0
        end
      in
      List.iter
        (fun event ->
          (match event.Obs.Event.kind with
           | Obs.Event.Run_meta _ -> flush ()
           | _ -> incr since_meta);
          Obs.Sink.emit_at sink ~time:event.Obs.Event.time
            event.Obs.Event.kind)
        events;
      flush ();
      0
    end
    else begin
      let clear () = print_string "\027[2J\027[H" in
      let render () =
        clear ();
        print_string (render_dashboard ~color:true ~top monitor watch);
        flush stdout
      in
      let next_render = ref (Unix.gettimeofday ()) in
      let last = ref 0.0 in
      List.iter
        (fun event ->
          (match event.Obs.Event.kind with
           | Obs.Event.Run_meta _ -> last := event.Obs.Event.time
           | _ ->
             let delta = event.Obs.Event.time -. !last in
             if delta > 0.0 && rate > 0.0 then Unix.sleepf (delta /. rate);
             last := event.Obs.Event.time);
          Obs.Sink.emit_at sink ~time:event.Obs.Event.time
            event.Obs.Event.kind;
          if Unix.gettimeofday () >= !next_render then begin
            render ();
            next_render := Unix.gettimeofday () +. interval
          end)
        events;
      (match watch with
       | Some watch -> ignore (Obs.Slo.finish watch ~time:!last : int)
       | None -> ());
      render ();
      0
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"A terminal dashboard over a JSONL event trace: throughput, \
             windowed wait quantiles, abort taxonomy, hot resources and SLO \
             status, refreshed as the trace replays.")
    Term.(const run $ setup_logs $ trace_pos_arg $ once $ interval $ rate
          $ top $ window_arg $ slo_arg)

(* ---------------------------------------------------------------- analyze *)

let analyze_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"A JSONL event trace, as written by $(b,colock simulate \
                   --jsonl) or $(b,colock trace --jsonl).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the contention report(s) as JSON instead of tables.")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows to show in the hot-resource and critical-path \
                   tables (text output only).")
  in
  let run () trace json top =
    let first = ref true in
    let json_reports = ref [] in
    let decoded =
      stream_runs trace
        ~start:(fun () -> Obs.Profile.create ())
        ~push:Obs.Profile.handle
        ~flush:(fun label profile ->
          let report = Obs.Profile.finish ?label profile in
          if json then
            json_reports := Obs.Profile.to_json report :: !json_reports
          else begin
            if not !first then print_newline ();
            first := false;
            Obs.Profile.print ~top stdout report
          end)
    in
    if decoded = 0 then begin
      Fmt.epr "colock: %s: no decodable events@." trace;
      1
    end
    else begin
      if json then begin
        Obs.Json.output stdout (Obs.Json.List (List.rev !json_reports));
        print_newline ()
      end;
      0
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Fold a JSONL event trace into a contention report: blocked \
             time attributed to lockable-unit levels (BLU/HoLU/HeLU), graph \
             depths, hot resources, a waiter-by-holder conflict matrix, \
             abort causes and per-transaction wait critical paths.")
    Term.(const run $ setup_logs $ trace_arg $ json_flag $ top_arg)

(* ---------------------------------------------------------------- certify *)

let certify_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"A JSONL event trace, as written by $(b,colock simulate \
                   --jsonl) or $(b,colock trace --jsonl).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the certificate(s) as JSON instead of text.")
  in
  let dot_flag =
    Arg.(value & flag
         & info [ "dot" ]
             ~doc:"Emit the serialization graph(s) as Graphviz DOT, with \
                   the counterexample cycle's nodes and edges in red.")
  in
  let run () trace json dot =
    let modes = Lockmgr.Lock_mode.certify_modes in
    let first = ref true in
    let json_certs = ref [] in
    let violations = ref 0 in
    let decoded =
      stream_runs trace
        ~start:(fun () -> Obs.Certify.create ~modes ())
        ~push:Obs.Certify.handle
        ~flush:(fun label certifier ->
          let cert = Obs.Certify.finish ?label certifier in
          violations :=
            !violations + List.length cert.Obs.Certify.violations;
          if json then json_certs := Obs.Certify.to_json cert :: !json_certs
          else begin
            if not !first then print_newline ();
            first := false;
            if dot then Obs.Dot.print stdout cert
            else Obs.Certify.print stdout cert
          end)
    in
    if decoded = 0 then begin
      Fmt.epr "colock: %s: no decodable events@." trace;
      1
    end
    else begin
      if json then begin
        Obs.Json.output stdout (Obs.Json.List (List.rev !json_certs));
        print_newline ()
      end;
      if !violations > 0 then exit_slo_breach else 0
    end
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Certify a JSONL event trace, one certificate per \
             $(b,Run_meta)-delimited run: conflict-serializability (the \
             serialization graph over committed transactions must be \
             acyclic; a minimal counterexample cycle is reported \
             otherwise), 2PL membership (no new privilege after the first \
             uncovered release), and hierarchy compliance per the paper's \
             rules 1-4' (ancestor intentions cover every inner-unit grant; \
             escalations match the supremum matrix). Exit 3 on any \
             violation, like an SLO breach.")
    Term.(const run $ setup_logs $ trace_arg $ json_flag $ dot_flag)

(* --------------------------------------------------------- explain/flame *)

let explain_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"A JSONL event trace, as written by $(b,colock simulate \
                   --jsonl) or $(b,colock trace --jsonl).")
  in
  let txn_arg =
    Arg.(value & opt (some int) None
         & info [ "txn" ] ~docv:"ID"
             ~doc:"Explain one transaction: its span tree (begin, each wait \
                   with per-blocker blame shares, commit/abort). Without \
                   it, print the per-run blame summaries.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the blame report(s) as JSON instead of text.")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows in the top-blockers table (summary text output \
                   only).")
  in
  let run () trace txn json top =
    let events = load_trace trace in
    let reports = Obs.Blame.of_trace events in
    if json then begin
      Obs.Json.output stdout
        (Obs.Json.List (List.map Obs.Blame.to_json reports));
      print_newline ();
      0
    end
    else
      match txn with
      | None ->
        List.iteri
          (fun index report ->
            if index > 0 then print_newline ();
            Obs.Blame.print ~top stdout report)
          reports;
        0
      | Some txn ->
        let holds report =
          List.exists
            (fun { Obs.Blame.x_txn; _ } -> x_txn = txn)
            report.Obs.Blame.txns
        in
        if not (List.exists holds reports) then begin
          Fmt.epr "colock: %s: transaction T%d not in trace@." trace txn;
          1
        end
        else begin
          List.iter
            (fun report ->
              if holds report then Obs.Blame.print_explain stdout report ~txn)
            reports;
          0
        end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Causal blame for a JSONL event trace: every wait split across \
             the holders that caused it, summed per blocker. With \
             $(b,--txn), one transaction's full span tree.")
    Term.(const run $ setup_logs $ trace_arg $ txn_arg $ json_flag $ top_arg)

let flame_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"A JSONL event trace, as written by $(b,colock simulate \
                   --jsonl) or $(b,colock trace --jsonl).")
  in
  let run () trace =
    let events = load_trace trace in
    let flames = Obs.Flame.of_trace events in
    List.iteri
      (fun index flame ->
        if index > 0 then print_newline ();
        (match Obs.Flame.label flame with
         | Some label when List.length flames > 1 ->
           (* headers only when several runs share the stream; a single
              run stays pure folded-stacks for flamegraph.pl *)
           Printf.printf "# run: %s\n" label
         | Some _ | None -> ());
        Obs.Flame.print stdout flame)
      flames;
    0
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:"Fold a JSONL event trace's blocked time into flamegraph.pl \
             folded-stacks lines: one stack per instance-graph path (entry \
             point down to the inner lockable unit) with the requested \
             mode as leaf, weighted by blocked ticks.")
    Term.(const run $ setup_logs $ trace_arg)

(* -------------------------------------------------------------------- why *)

let why_cmd =
  let base_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"BASE"
             ~doc:"The known-good JSONL event trace.")
  in
  let cand_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"CAND"
             ~doc:"The candidate JSONL event trace whose wait-time delta \
                   against $(b,BASE) wants explaining.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the differential report(s) as JSON instead of \
                   tables.")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows in the resource, conflict-cell and blocker delta \
                   tables (text output only; ties break lexicographically \
                   so the cut is deterministic).")
  in
  let run_arg =
    Arg.(value & opt (some string) None
         & info [ "run" ] ~docv:"LABEL"
             ~doc:"Diff only the run labelled $(docv) (multi-run traces).")
  in
  let run () base cand json top run_label =
    let base_events = load_trace base in
    let cand_events = load_trace cand in
    let pairing = Obs.Diff.of_traces ~base:base_events ~cand:cand_events in
    let selected =
      match run_label with
      | None -> Some pairing
      | Some wanted -> (
        match
          List.filter
            (fun (report : Obs.Diff.report) -> report.label = Some wanted)
            pairing.Obs.Diff.pairs
        with
        | [] -> None
        | pairs -> Some { Obs.Diff.pairs; only_base = []; only_cand = [] })
    in
    match selected with
    | None ->
      let wanted = Option.value ~default:"" run_label in
      let known =
        List.sort_uniq String.compare
          (List.filter_map
             (fun (report : Obs.Diff.report) -> report.label)
             pairing.Obs.Diff.pairs
           @ pairing.Obs.Diff.only_base @ pairing.Obs.Diff.only_cand)
      in
      Fmt.epr "colock: run %S not paired between %s and %s (runs: %s)@."
        wanted base cand
        (if known = [] then "none" else String.concat ", " known);
      1
    | Some pairing ->
      if json then begin
        Obs.Json.output stdout (Obs.Diff.pairing_to_json pairing);
        print_newline ()
      end
      else begin
        List.iteri
          (fun index report ->
            if index > 0 then print_newline ();
            Obs.Diff.print ~top stdout report)
          pairing.Obs.Diff.pairs;
        Obs.Diff.print_drift stdout pairing
      end;
      0
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Explain a performance delta: diff two JSONL event traces and \
             attribute the wait-time change across lockable-unit levels, \
             graph depths, resources, conflict cells and blockers — every \
             table sums exactly to the total delta, with one-sided runs \
             and keys reported as explicit drift.")
    Term.(const run $ setup_logs $ base_arg $ cand_arg $ json_flag $ top_arg
          $ run_arg)

(* ----------------------------------------------------------------- trends *)

let trends_cmd =
  let history_arg =
    Arg.(value & pos 0 string "BENCH_HISTORY.jsonl"
         & info [] ~docv:"HISTORY"
             ~doc:"The append-only run-history store (one versioned JSON \
                   record per line), as appended by $(b,bench/main) and \
                   $(b,colock bench diff).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the trajectories as JSON instead of text.")
  in
  let metric_arg =
    Arg.(value & opt (some string) None
         & info [ "metric" ] ~docv:"KEY"
             ~doc:"Render only trajectories of metric $(docv).")
  in
  let run () path json metric =
    let records, diagnostics = Bench.History.load path in
    List.iter
      (fun message -> Fmt.epr "colock: %s: %s@." path message)
      diagnostics;
    if records = [] then begin
      Fmt.epr "colock: %s: no history records@." path;
      1
    end
    else begin
      let trends =
        List.filter
          (fun trend ->
            match metric with
            | None -> true
            | Some key -> trend.Bench.History.t_metric = key)
          (Bench.History.trends records)
      in
      if trends = [] then begin
        Fmt.epr "colock: %s: no trajectory for metric %s@." path
          (Option.value ~default:"?" metric);
        1
      end
      else if json then begin
        Obs.Json.output stdout
          (Obs.Json.List (List.map Bench.History.trend_to_json trends));
        print_newline ();
        0
      end
      else begin
        List.iteri
          (fun index trend ->
            let open Bench.History in
            if index > 0 then print_newline ();
            Printf.printf
              "%s %s %s: %d point(s), median %g, band \xc2\xb1%g, %d \
               anomaly(ies)\n"
              trend.t_source trend.t_label trend.t_metric
              (List.length trend.t_points)
              trend.t_median trend.t_band trend.t_anomalies;
            List.iter
              (fun point ->
                Printf.printf "  #%-3d %14g  ewma %14g%s\n" point.pt_seq
                  point.pt_value point.pt_ewma
                  (if point.pt_anomalous then "  ANOMALY" else ""))
              trend.t_points)
          trends;
        0
      end
    end
  in
  Cmd.v
    (Cmd.info "trends"
       ~doc:"Render the run-history store as per-metric trajectories: one \
             EWMA-smoothed series per (source, label, metric), with points \
             outside a scaled-MAD band flagged as anomalies — the perf \
             trajectory across commits, not just the latest gate verdict.")
    Term.(const run $ setup_logs $ history_arg $ json_flag $ metric_arg)

(* ------------------------------------------------------------------- soak *)

(* One scenario × technique run under a live monitor, with the scenario's
   inline SLO rules watching the windows. [?post_mortem] names a directory
   that receives the run's full event capture as JSONL — written only when
   the run breaches an SLO or fails certification, so a red soak always
   leaves a trace behind for [colock why]/[colock analyze]. *)
let soak_run ~quiet ?post_mortem db graph (dsl : Workload.Dsl.t) selector =
  let technique_name = Workload.Dsl.technique_to_string selector in
  let monitor = Obs.Monitor.create ~span:dsl.window () in
  Obs.Monitor.begin_run monitor ~label:(dsl.name ^ "/" ^ technique_name);
  (* the scenario's name rides along as an escaped label, so a /metrics
     scrape of a soak (via sync from another process's trace, or future
     --serve) can tell scenarios apart *)
  Obs.Registry.set_gauge
    (Obs.Monitor.registry monitor)
    (Obs.Expo.labelled "scenario_info" [ ("scenario", dsl.name) ])
    1.0;
  let sink = Obs.Sink.create [ Obs.Monitor.handle monitor ] in
  let ring =
    match post_mortem with
    | None -> None
    | Some _ ->
      let ring = Obs.Ring.create ~capacity:262144 in
      Obs.Sink.attach sink
        (Obs.Sink.filter Obs.Sink.not_sim_step (Obs.Sink.to_ring ring));
      Some ring
  in
  let certifier =
    if dsl.certify then begin
      let certifier =
        Obs.Certify.create ~modes:Lockmgr.Lock_mode.certify_modes ()
      in
      Obs.Sink.attach sink (Obs.Certify.handle certifier);
      Some certifier
    end
    else None
  in
  let watch =
    match dsl.slo with
    | [] -> None
    | rules ->
      let watch = Obs.Slo.watch ~sink (Obs.Slo.of_rules rules) monitor in
      Obs.Sink.attach sink (Obs.Slo.handler watch);
      Some watch
  in
  let table =
    Lockmgr.Lock_table.create ~obs:sink
      ~meta:(Colock.Instance_graph.lu_resolver graph) ()
  in
  let technique = Sim.Scenario.technique_of_dsl graph table selector in
  let jobs =
    Sim.Scenario.compile graph technique (Sim.Scenario.of_dsl db graph dsl)
  in
  let metrics =
    Sim.Runner.run
      ~config:(Sim.Scenario.config_of_dsl dsl)
      ~faults:(Sim.Scenario.faults_of_dsl dsl) ~obs:sink ~table jobs
  in
  let breaches =
    match watch with
    | None -> 0
    | Some watch ->
      Obs.Slo.finish watch
        ~time:(float_of_int metrics.Sim.Metrics.makespan)
  in
  let certificate =
    Option.map
      (fun certifier ->
        Obs.Certify.finish
          ~label:(dsl.name ^ "/" ^ technique_name)
          certifier)
      certifier
  in
  if not quiet then begin
    Printf.printf "%-19s %-14s %9d %6d %6d %5d %7d %8d %7.2f %8d\n" dsl.name
      technique_name metrics.Sim.Metrics.committed
      (metrics.Sim.Metrics.deadlock_aborts + metrics.Sim.Metrics.timeout_aborts
       + metrics.Sim.Metrics.wdl_aborts)
      metrics.Sim.Metrics.gave_up metrics.Sim.Metrics.shed
      metrics.Sim.Metrics.crashed metrics.Sim.Metrics.makespan
      (Sim.Metrics.throughput metrics)
      breaches;
    if breaches > 0 then
      print_verdicts
        ~label:("  " ^ dsl.name)
        (match watch with
         | Some watch -> Obs.Slo.evaluate (Obs.Slo.watched watch) monitor
         | None -> [])
  end;
  (* a certified run stays silent; a violation names itself even under
     --quiet, since it is the whole point of the stanza *)
  (match certificate with
   | Some cert when not (Obs.Certify.certified cert) ->
     Printf.printf "  %s/%s: NOT CERTIFIED: %d violation(s)\n" dsl.name
       technique_name
       (List.length cert.Obs.Certify.violations);
     List.iter
       (fun violation ->
         Printf.printf "    %s\n"
           (Format.asprintf "%a" Obs.Certify.pp_violation violation))
       cert.Obs.Certify.violations
   | Some _ | None -> ());
  let cert_violations =
    match certificate with
    | None -> 0
    | Some cert -> List.length cert.Obs.Certify.violations
  in
  (match post_mortem, ring with
   | Some dir, Some ring when breaches > 0 || cert_violations > 0 ->
     (try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     let label = dsl.name ^ "/" ^ technique_name in
     let path =
       Filename.concat dir (dsl.name ^ "-" ^ technique_name ^ ".jsonl")
     in
     let events = Obs.Ring.to_list ring in
     with_out path (fun channel ->
         Obs.Jsonl.write_events channel
           ({ Obs.Event.time = 0.0; kind = Obs.Event.Run_meta { label } }
            :: events));
     Printf.printf "  post-mortem: %s (%d event(s))\n" path
       (List.length events)
   | _ -> ());
  (breaches, certificate <> None, cert_violations)

let soak_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"PATH"
             ~doc:"A scenario file ($(b,*.scn)) or a directory holding a \
                   suite of them (sorted, non-recursive).")
  in
  let parse_only =
    Arg.(value & flag
         & info [ "parse-only" ]
             ~doc:"Parse every scenario and print it back in canonical \
                   form instead of running — the round-trip check behind \
                   the fixture tests.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "quiet"; "q" ] ~doc:"Print only the summary line.")
  in
  let post_mortem_arg =
    Arg.(value & opt string "post-mortem"
         & info [ "post-mortem" ] ~docv:"DIR"
             ~doc:"Capture the full event stream of every SLO-breaching or \
                   uncertified run into $(docv) as \
                   $(b,SCENARIO-TECHNIQUE.jsonl), ready for $(b,colock \
                   why) / $(b,colock analyze). An empty $(docv) disables \
                   the capture.")
  in
  let run () path parse_only quiet post_mortem_dir =
    let post_mortem =
      if post_mortem_dir = "" then None else Some post_mortem_dir
    in
    match Workload.Dsl.load_path path with
    | Error message ->
      Fmt.epr "colock: %s@." message;
      1
    | Ok [] ->
      Fmt.epr "colock: %s: no scenarios@." path;
      1
    | Ok scenarios ->
      if parse_only then begin
        List.iteri
          (fun index dsl ->
            if index > 0 then print_newline ();
            print_string (Workload.Dsl.print dsl))
          scenarios;
        0
      end
      else begin
        if not quiet then
          Printf.printf "%-19s %-14s %9s %6s %6s %5s %7s %8s %7s %8s\n"
            "scenario" "technique" "committed" "aborts" "gaveup" "shed"
            "crashed" "makespan" "thruput" "breaches";
        let runs = ref 0 in
        let certified_runs = ref 0 in
        let clean_runs = ref 0 in
        let violation_total = ref 0 in
        let breach_total =
          List.fold_left
            (fun total (dsl : Workload.Dsl.t) ->
              let db = Workload.Dsl.database dsl in
              let graph = Colock.Instance_graph.build db in
              List.fold_left
                (fun total selector ->
                  incr runs;
                  let breaches, certified, violations =
                    soak_run ~quiet ?post_mortem db graph dsl selector
                  in
                  if certified then begin
                    incr certified_runs;
                    if violations = 0 then incr clean_runs
                  end;
                  violation_total := !violation_total + violations;
                  total + breaches)
                total dsl.techniques)
            0 scenarios
        in
        Printf.printf "soak: %d run(s), %d scenario(s), %d breach(es)%s\n"
          !runs (List.length scenarios) breach_total
          (if !certified_runs = 0 then ""
           else Printf.sprintf ", %d/%d certified" !clean_runs !certified_runs);
        if breach_total > 0 || !violation_total > 0 then exit_slo_breach
        else 0
      end
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run a committed scenario suite (declarative $(b,.scn) files: \
             catalog scale, arrival process, Zipf popularity, operation \
             mix, faults, inline SLO rules) under the live monitor; exit 3 \
             if any scenario breaches its SLOs, leaving each breaching \
             run's event capture in the post-mortem directory.")
    Term.(const run $ setup_logs $ path_arg $ parse_only $ quiet
          $ post_mortem_arg)

(* ------------------------------------------------------------------ bench *)

let bench_diff_cmd =
  let scenarios_arg =
    Arg.(value & opt string "scenarios"
         & info [ "scenarios" ] ~docv:"PATH"
             ~doc:"Scenario file or directory to measure.")
  in
  let baseline_arg =
    Arg.(value & opt string "BENCH_scenarios.json"
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"The committed baseline store to compare against.")
  in
  let update_arg =
    Arg.(value & flag
         & info [ "update-baseline" ]
             ~doc:"Write the fresh measurement to the baseline file \
                   instead of comparing.")
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ]
             ~doc:"List every metric comparison, not only the ones \
                   outside their tolerance band.")
  in
  let perturb_arg =
    let parse text =
      match String.index_opt text '=' with
      | Some eq -> (
        let metric = String.sub text 0 eq in
        let factor =
          String.sub text (eq + 1) (String.length text - eq - 1)
        in
        match float_of_string_opt factor with
        | Some factor when metric <> "" -> Ok (metric, factor)
        | _ -> Error (`Msg (Printf.sprintf "bad perturbation %S" text)))
      | None ->
        Error
          (`Msg (Printf.sprintf "bad perturbation %S (want METRIC=FACTOR)"
                   text))
    in
    let print ppf (metric, factor) = Fmt.pf ppf "%s=%g" metric factor in
    Arg.(value & opt_all (conv (parse, print)) []
         & info [ "perturb" ] ~docv:"METRIC=FACTOR"
             ~doc:"Scale a fresh metric by $(b,FACTOR) before comparing — \
                   a sensitivity self-test proving the gate fires \
                   (repeatable).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the gate verdict as machine-readable JSON (metric \
                   family, band direction, observed vs baseline) instead \
                   of tables; exit codes are unchanged.")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Re-run every regressed scenario × technique pair with a \
                   JSONL event capture and append a ranked attribution \
                   (worst metric families first, plus the capture's \
                   hottest levels and resources) to the failure output. \
                   Captures land in $(b,bench-explain/).")
  in
  let history_arg =
    Arg.(value & opt string "BENCH_HISTORY.jsonl"
         & info [ "history" ] ~docv:"FILE"
             ~doc:"Append one aggregate record per unperturbed gate run to \
                   the run-history store $(docv) (see $(b,colock trends)). \
                   An empty $(docv) disables the append.")
  in
  let verdict_row finding =
    let open Bench.Baseline in
    let status, detail =
      match finding.f_verdict with
      | Within { delta } -> ("within", Printf.sprintf "%+g" delta)
      | Improved { delta } -> ("IMPROVED", Printf.sprintf "%+g" delta)
      | Regressed { delta; slack } ->
        ("REGRESSED", Printf.sprintf "%+g (slack %g)" delta slack)
    in
    Printf.printf "%-10s %-14s %-22s %12g %12g  %-9s %s\n" finding.f_scenario
      finding.f_technique finding.f_metric finding.f_base finding.f_fresh
      status detail
  in
  (* --explain: one ranked-attribution stanza per regressed pair, worst
     excess (amount past the band, in the bad direction) first. *)
  let explain_pair scenarios regressions (scenario, technique) =
    let findings =
      List.filter
        (fun finding ->
          finding.Bench.Baseline.f_scenario = scenario
          && finding.Bench.Baseline.f_technique = technique)
        regressions
    in
    let excess finding =
      match finding.Bench.Baseline.f_verdict with
      | Bench.Baseline.Regressed { delta; slack } ->
        if Float.is_nan delta then Float.infinity
        else
          let { Bench.Baseline.direction; _ } =
            Bench.Baseline.band finding.Bench.Baseline.f_metric
          in
          let worse =
            match direction with
            | Bench.Baseline.Lower_better -> delta
            | Bench.Baseline.Higher_better -> -.delta
          in
          worse -. slack
      | _ -> 0.0
    in
    let ranked =
      List.sort
        (fun a b ->
          match Float.compare (excess b) (excess a) with
          | 0 ->
            String.compare a.Bench.Baseline.f_metric b.Bench.Baseline.f_metric
          | order -> order)
        findings
    in
    Printf.printf "explain: %s/%s: %d regressed metric(s)\n" scenario
      technique (List.length ranked);
    List.iteri
      (fun index finding ->
        let open Bench.Baseline in
        let detail =
          match finding.f_verdict with
          | Regressed { delta; slack = _ } when Float.is_nan delta ->
            "present on one side only"
          | Regressed { delta; slack } ->
            Printf.sprintf "%+g, excess %g over slack %g" delta
              (excess finding) slack
          | Within { delta } | Improved { delta } ->
            Printf.sprintf "%+g" delta
        in
        Printf.printf "  %d. %-17s %-22s %s\n" (index + 1)
          (family finding.f_metric) finding.f_metric detail)
      ranked;
    (* re-run the pair with a capture so the regression has a trace *)
    match
      List.find_opt
        (fun (dsl : Workload.Dsl.t) -> dsl.name = scenario)
        scenarios
    with
    | None -> ()
    | Some dsl -> (
      match
        List.find_opt
          (fun selector ->
            Workload.Dsl.technique_to_string selector = technique)
          dsl.techniques
      with
      | None -> ()
      | Some selector ->
        let db = Workload.Dsl.database dsl in
        let graph = Colock.Instance_graph.build db in
        let _run, events =
          Bench.Baseline.measure_traced db graph dsl selector
        in
        let label = scenario ^ "/" ^ technique in
        let profile = Obs.Profile.of_events ~label events in
        let rec take n = function
          | [] -> []
          | _ when n <= 0 -> []
          | head :: rest -> head :: take (n - 1) rest
        in
        let dir = "bench-explain" in
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let path =
          Filename.concat dir (scenario ^ "-" ^ technique ^ ".jsonl")
        in
        with_out path (fun channel ->
            Obs.Jsonl.write_events channel
              ({ Obs.Event.time = 0.0; kind = Obs.Event.Run_meta { label } }
               :: events));
        Printf.printf
          "  capture: %s (%d event(s), %g tick(s) blocked across %d \
           wait(s))\n"
          path (List.length events) profile.Obs.Profile.total_blocked
          profile.Obs.Profile.wait_count;
        (match take 3 profile.Obs.Profile.levels with
         | [] -> ()
         | levels ->
           Printf.printf "  hot levels: %s\n"
             (String.concat ", "
                (List.map
                   (fun stat ->
                     Printf.sprintf "%s %g" stat.Obs.Profile.v_level
                       stat.Obs.Profile.v_blocked)
                   levels)));
        (match take 3 profile.Obs.Profile.resources with
         | [] -> ()
         | resources ->
           Printf.printf "  hot resources: %s\n"
             (String.concat ", "
                (List.map
                   (fun stat ->
                     Printf.sprintf "%s %g" stat.Obs.Profile.r_resource
                       stat.Obs.Profile.r_blocked)
                   resources))))
  in
  let run () scenarios_path baseline_path update all perturbations json
      explain history_path =
    match Workload.Dsl.load_path scenarios_path with
    | Error message ->
      Fmt.epr "colock: %s@." message;
      1
    | Ok scenarios -> (
      match
        Bench.Baseline.perturb perturbations (Bench.Baseline.collect scenarios)
      with
      | Error message ->
        Fmt.epr "colock: %s@." message;
        1
      | Ok fresh ->
      if update then begin
        Bench.Baseline.save baseline_path fresh;
        Printf.printf "bench diff: wrote %s (%d run(s))\n" baseline_path
          (List.length fresh);
        0
      end
      else begin
        match Bench.Baseline.load baseline_path with
        | Error message ->
          Fmt.epr "colock: %s: %s@." baseline_path message;
          1
        | Ok baseline ->
          let report = Bench.Baseline.diff ~baseline ~fresh in
          let regressions = Bench.Baseline.regressions report in
          let improvements = Bench.Baseline.improvements report in
          if json then begin
            Obs.Json.output stdout (Bench.Baseline.diff_to_json ~all report);
            print_newline ()
          end
          else begin
            let shown =
              if all then report.Bench.Baseline.findings
              else regressions @ improvements
            in
            if shown <> [] then begin
              Printf.printf "%-10s %-14s %-22s %12s %12s  %-9s %s\n"
                "scenario" "technique" "metric" "baseline" "fresh" "status"
                "delta";
              List.iter verdict_row shown
            end;
            List.iter
              (fun (scenario, technique) ->
                Printf.printf "missing: %s/%s (in baseline, not measured)\n"
                  scenario technique)
              report.Bench.Baseline.missing;
            List.iter
              (fun (scenario, technique) ->
                Printf.printf
                  "added: %s/%s (measured, not in baseline — rerun with \
                   --update-baseline)\n"
                  scenario technique)
              report.Bench.Baseline.added;
            Printf.printf
              "bench diff: %d comparison(s), %d regression(s), %d \
               improvement(s)\n"
              (List.length report.Bench.Baseline.findings)
              (List.length regressions)
              (List.length improvements)
          end;
          (* the trajectory records honest gate runs only: a --perturb run
             measures the self-test, not the code *)
          if perturbations = [] && history_path <> "" then begin
            let total key =
              List.fold_left
                (fun sum (run : Bench.Baseline.run) ->
                  sum
                  +. Option.value ~default:0.0
                       (List.assoc_opt key run.Bench.Baseline.metrics))
                0.0 fresh
            in
            let record =
              Bench.History.append ~path:history_path ~source:"bench-diff"
                ~label:scenarios_path
                [ ("committed", total "committed");
                  ("throughput", total "throughput");
                  ("total_wait", total "total_wait");
                  ("makespan", total "makespan");
                  ( "comparisons",
                    float_of_int
                      (List.length report.Bench.Baseline.findings) );
                  ("regressions", float_of_int (List.length regressions));
                  ("improvements", float_of_int (List.length improvements))
                ]
            in
            if not json then
              Printf.printf "bench diff: history seq %d -> %s\n"
                record.Bench.History.seq history_path
          end;
          if explain && regressions <> [] then begin
            let pairs =
              List.sort_uniq compare
                (List.map
                   (fun finding ->
                     ( finding.Bench.Baseline.f_scenario,
                       finding.Bench.Baseline.f_technique ))
                   regressions)
            in
            List.iter (explain_pair scenarios regressions) pairs
          end;
          if Bench.Baseline.clean report then 0 else 2
      end)
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Re-measure the scenario suite and compare against the \
             committed baseline through per-metric tolerance bands; exit 2 \
             on regressions (or baseline drift), with $(b,--explain) \
             attaching a ranked attribution and event capture to every \
             regressed pair.")
    Term.(const run $ setup_logs $ scenarios_arg $ baseline_arg $ update_arg
          $ all_arg $ perturb_arg $ json_arg $ explain_arg $ history_arg)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Benchmark baseline management: track the perf trajectory of \
             the committed scenario suite.")
    [ bench_diff_cmd ]

let () =
  let info =
    Cmd.info "colock" ~version:"0.1.0"
      ~doc:"A lock technique for disjoint and non-disjoint complex objects \
            (Herrmann et al., EDBT 1990)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ graph_cmd; plan_cmd; query_cmd; simulate_cmd; trace_cmd;
            serve_cmd; top_cmd; analyze_cmd; certify_cmd; explain_cmd;
            flame_cmd; why_cmd; trends_cmd; soak_cmd; bench_cmd ]))
