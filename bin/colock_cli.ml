(* colock — command-line interface to the lock technique library.

   Subcommands:
     graph     print the object-specific lock graph of the Figure 1 relations
               (or of a generated deep schema)
     plan      show the lock plan of a query, per technique
     query     execute queries against the Figure 1 database, showing rows
               and the resulting lock table
     simulate  run the concurrency simulator on a generated workload *)

open Cmdliner

let setup_logs =
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ]
             ~doc:"Log lock-protocol and lock-table decisions to stderr.")
  in
  let setup verbose =
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))
  in
  Term.(const setup $ verbose)

let make_fig1_env ~library_writable =
  let db = Workload.Figure1.database () in
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create () in
  let rights = Authz.Rights.create () in
  if not library_writable then
    Authz.Rights.set_relation_default rights ~relation:"effectors" false;
  let protocol = Colock.Protocol.create ~rights graph table in
  (db, graph, table, protocol)

(* ------------------------------------------------------------------ graph *)

let graph_cmd =
  let deep_depth =
    Arg.(value & opt (some int) None
         & info [ "deep" ] ~docv:"DEPTH"
             ~doc:"Show the lock graph of a generated schema of this depth \
                   instead of the Figure 1 relations.")
  in
  let run () deep =
    (match deep with
     | Some depth ->
       let db =
         Workload.Generator.deep
           { Workload.Generator.default_deep with depth; objects = 1 }
       in
       List.iter
         (fun store ->
           let schema = Nf2.Relation.schema store in
           Format.printf "%a@.@." Colock.Object_graph.pp
             (Colock.Object_graph.of_relation ~database:"db1" schema))
         (Nf2.Database.relations db)
     | None ->
       List.iter
         (fun schema ->
           Format.printf "%a@.@." Colock.Object_graph.pp
             (Colock.Object_graph.of_relation ~database:"db1" schema))
         [ Workload.Figure1.cells_schema; Workload.Figure1.effectors_schema ]);
    0
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print object-specific lock graphs (Figure 5).")
    Term.(const run $ setup_logs $ deep_depth)

(* ------------------------------------------------------------------- plan *)

let query_arg position =
  Arg.(required & pos position (some string) None
       & info [] ~docv:"QUERY" ~doc:"An HDBL-like query (see Figure 3).")

let plan_cmd =
  let threshold =
    Arg.(value & opt int 16
         & info [ "threshold" ] ~docv:"N" ~doc:"Escalation threshold.")
  in
  let run () text threshold =
    let db, _graph, _table, _protocol = make_fig1_env ~library_writable:true in
    match Query.Parser.parse text with
    | Error error ->
      Format.eprintf "%a@." Query.Parser.pp_error error;
      1
    | Ok ast -> (
      let catalog = Nf2.Database.catalog db in
      match Query.Analyzer.analyze catalog ast with
      | Error error ->
        Format.eprintf "%a@." Query.Analyzer.pp_error error;
        1
      | Ok analysis ->
        let stats relation =
          match Nf2.Database.relation db relation with
          | Some store -> Nf2.Statistics.compute store
          | None -> Nf2.Statistics.empty relation
        in
        let plan =
          Colock.Query_graph.build ~threshold catalog ~stats
            analysis.Query.Analyzer.accesses
        in
        Format.printf "%a@." Colock.Query_graph.pp plan;
        0)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Show the query-specific lock graph (granules and modes) chosen \
             by escalation anticipation.")
    Term.(const run $ setup_logs $ query_arg 0 $ threshold)

(* ------------------------------------------------------------------ query *)

let query_cmd =
  let queries =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"QUERY"
             ~doc:"Queries, executed by transactions 1, 2, ... in order.")
  in
  let library_writable =
    Arg.(value & flag
         & info [ "library-writable" ]
             ~doc:"Allow every transaction to modify the effectors library \
                   (rule 4' then behaves like rule 4).")
  in
  let run () texts library_writable =
    let db, _graph, table, protocol = make_fig1_env ~library_writable in
    let executor = Query.Executor.create db protocol in
    let failed = ref false in
    List.iteri
      (fun index text ->
        let txn = index + 1 in
        Printf.printf "T%d: %s\n" txn text;
        match Query.Executor.run_string executor ~txn ~wait:false text with
        | Ok result ->
          Printf.printf "  %d row(s), %d lock request(s)\n"
            (List.length result.Query.Executor.rows)
            result.Query.Executor.locks_requested
        | Error error ->
          failed := true;
          Format.printf "  %a@." Query.Executor.pp_error error)
      texts;
    Format.printf "@.lock table:@.%a@." Lockmgr.Lock_table.pp table;
    if !failed then 1 else 0
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Execute queries against the Figure 1 database and show the \
             resulting lock table (compare with Figure 7).")
    Term.(const run $ setup_logs $ queries $ library_writable)

(* ------------------------------------------------- simulate / trace common *)

let technique_conv =
  Arg.enum
    [ ("proposed", `Proposed); ("rule4", `Proposed_rule4);
      ("whole-object", `Whole_object); ("tuple-level", `Tuple_level) ]

let jobs_arg =
  Arg.(value & opt int 60 & info [ "jobs" ] ~docv:"N" ~doc:"Number of transactions.")

let cells_arg =
  Arg.(value & opt int 8 & info [ "cells" ] ~docv:"N" ~doc:"Cells in the database.")

let read_fraction_arg =
  Arg.(value & opt float 0.5
       & info [ "read-fraction" ] ~docv:"F" ~doc:"Fraction of Q1-like reads.")

let seed_arg =
  Arg.(value & opt int 17 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let resolution_conv =
  let parse text =
    match Lockmgr.Policy.resolution_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_resolution)

let victim_conv =
  let parse text =
    match Lockmgr.Policy.victim_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_victim)

let backoff_conv =
  let parse text =
    match Lockmgr.Policy.backoff_of_string text with
    | Ok _ as ok -> ok
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Lockmgr.Policy.pp_backoff)

let faults_conv =
  let print formatter spec =
    Format.pp_print_string formatter (Sim.Fault.to_string spec)
  in
  Arg.conv (Sim.Fault.of_string, print)

let resolution_arg =
  Arg.(value & opt resolution_conv Lockmgr.Policy.Detection
       & info [ "resolution" ] ~docv:"STRATEGY"
           ~doc:"How stuck waits resolve: $(b,detection) (waits-for cycle \
                 search on every wait), $(b,timeout)[:TICKS] (abort any \
                 wait older than TICKS, no detection), or \
                 $(b,hybrid)[:TICKS] (both).")

let victim_arg =
  Arg.(value & opt victim_conv Lockmgr.Policy.Youngest
       & info [ "victim" ] ~docv:"POLICY"
           ~doc:"Deadlock victim selection: $(b,youngest), $(b,oldest), \
                 $(b,fewest-locks) or $(b,least-work).")

let backoff_arg =
  Arg.(value & opt backoff_conv (Lockmgr.Policy.Fixed 50)
       & info [ "backoff" ] ~docv:"SPEC"
           ~doc:"Victim restart delay: $(b,fixed):N or \
                 $(b,exp):BASE:CAP[:SEED] (exponential with deterministic \
                 jitter).")

let max_restarts_arg =
  Arg.(value & opt int 20
       & info [ "max-restarts" ] ~docv:"N"
           ~doc:"Abort budget per job; a job victimized more often gives up.")

let faults_arg =
  Arg.(value & opt faults_conv Sim.Fault.none
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:"Inject faults, e.g. $(b,crash:0.1,stall:0.2x4,hog:0.05): \
                 each job draws a fate from the --seed-derived RNG; crashed \
                 jobs die holding their locks, stalled jobs access N times \
                 slower, hogs camp on their locks without committing.")

let check_invariants_arg =
  Arg.(value & flag
       & info [ "check-invariants" ]
           ~doc:"Audit the lock table and job states after every simulator \
                 event (chaos-run oracle; slows large runs down).")

let manufacturing_scenario ~jobs ~cells ~read_fraction ~seed =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells; seed }
  in
  let graph = Colock.Instance_graph.build db in
  let mix = { Sim.Scenario.default_mix with jobs; read_fraction; seed } in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  (graph, specs)

let technique_of graph table = function
  | `Proposed -> Sim.Scenario.Proposed (Colock.Protocol.create graph table)
  | `Proposed_rule4 ->
    Sim.Scenario.Proposed
      (Colock.Protocol.create ~rule:Colock.Protocol.Rule_4 graph table)
  | `Whole_object -> Sim.Scenario.Whole_object
  | `Tuple_level -> Sim.Scenario.Tuple_level

(* An instrumented capture context: ring buffer for raw events, collector
   for latency histograms, both fed by one sink.  [?keep] filters what the
   ring retains (the collector always sees everything, so counters stay
   complete). *)
let make_capture ?keep () =
  let sink, ring = Obs.Sink.memory ~capacity:262144 ?keep () in
  let collector = Obs.Collector.create () in
  Obs.Sink.attach sink (Obs.Collector.handle collector);
  (sink, ring, collector)

let with_out path f =
  if String.equal path "-" then f stdout
  else
    match open_out path with
    | channel ->
      Fun.protect ~finally:(fun () -> close_out channel) (fun () -> f channel)
    | exception Sys_error message ->
      Fmt.epr "colock: cannot write output: %s@." message;
      exit 1

(* --------------------------------------------------------------- simulate *)

let simulate_cmd =
  let technique =
    Arg.(value & opt (list technique_conv) [ `Proposed; `Whole_object; `Tuple_level ]
         & info [ "technique"; "t" ] ~docv:"TECH"
             ~doc:"Techniques to compare: proposed, rule4, whole-object, \
                   tuple-level.")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace_event capture of the run(s) to \
                   $(docv) — open it in chrome://tracing or Perfetto; lock \
                   waits appear as spans, one timeline row per transaction.")
  in
  let stats_json_file =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ] ~docv:"FILE"
             ~doc:"Write per-technique metrics (simulator counters, lock \
                   table counters, wait/grant/response latency quantiles and \
                   histogram buckets) as JSON to $(docv). Use '-' for \
                   stdout; the table is then suppressed.")
  in
  let jsonl_file =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Write the raw event stream of the run(s) as JSON lines to \
                   $(docv) ('-' for stdout), one run_meta delimiter line per \
                   technique — the input format of $(b,colock analyze).")
  in
  let snapshot_every =
    Arg.(value & opt (some int) None
         & info [ "snapshot-every" ] ~docv:"TICKS"
             ~doc:"Emit a wait-for-graph snapshot event every $(docv) \
                   virtual ticks, so deadlock structure is observable over \
                   time in traces and contention reports.")
  in
  let trace_all =
    Arg.(value & flag
         & info [ "trace-all" ]
             ~doc:"Keep per-step sim_step noise in captures; by default it \
                   is filtered out of --trace/--jsonl output (counters still \
                   see every event).")
  in
  let run () techniques jobs cells read_fraction seed resolution victim
      backoff max_restarts faults check_invariants trace_file stats_json_file
      jsonl_file snapshot_every trace_all =
    let graph, specs =
      manufacturing_scenario ~jobs ~cells ~read_fraction ~seed
    in
    let config =
      { Sim.Runner.default_config with resolution; victim; backoff;
        max_restarts; check_invariants; snapshot_every }
    in
    let faults = { faults with Sim.Fault.fault_seed = seed } in
    let observing =
      trace_file <> None || stats_json_file <> None || jsonl_file <> None
    in
    let keep = if trace_all then None else Some Obs.Sink.not_sim_step in
    let quiet = stats_json_file = Some "-" || jsonl_file = Some "-" in
    if not quiet then
      Printf.printf "%-22s %9s %9s %9s %9s %9s %9s %9s %9s\n" "technique"
        "committed" "aborts" "crashed" "makespan" "thruput" "avg resp" "waits"
        "locks";
    let captures =
      List.map
        (fun selector ->
          let capture =
            if observing then Some (make_capture ?keep ()) else None
          in
          let obs = Option.map (fun (sink, _, _) -> sink) capture in
          (* tag lock events with granule metadata for every technique —
             the baselines have no protocol to install the resolver *)
          let table =
            Lockmgr.Lock_table.create ?obs
              ~meta:(Colock.Instance_graph.lu_resolver graph) ()
          in
          let technique = technique_of graph table selector in
          let sim_jobs = Sim.Scenario.compile graph technique specs in
          let metrics = Sim.Runner.run ~config ~faults ~table sim_jobs in
          if not quiet then
            Printf.printf "%-22s %9d %9d %9d %9d %9.2f %9.1f %9d %9d\n"
              (Sim.Scenario.technique_name technique)
              metrics.Sim.Metrics.committed
              (metrics.Sim.Metrics.deadlock_aborts
               + metrics.Sim.Metrics.timeout_aborts)
              metrics.Sim.Metrics.crashed metrics.Sim.Metrics.makespan
              (Sim.Metrics.throughput metrics)
              (Sim.Metrics.avg_response metrics)
              metrics.Sim.Metrics.total_wait metrics.Sim.Metrics.lock_requests;
          (Sim.Scenario.technique_name technique, capture, table, metrics))
        techniques
    in
    (match trace_file with
     | None -> ()
     | Some path ->
       let groups =
         List.filter_map
           (fun (name, capture, _table, _metrics) ->
             Option.map
               (fun (_, ring, _) -> (name, Obs.Ring.to_list ring))
               capture)
           captures
       in
       with_out path (fun channel -> Obs.Trace.write channel groups));
    (match jsonl_file with
     | None -> ()
     | Some path ->
       with_out path (fun channel ->
           List.iter
             (fun (name, capture, _table, _metrics) ->
               match capture with
               | None -> ()
               | Some (_, ring, _) ->
                 Obs.Jsonl.write channel
                   { Obs.Event.time = 0.0;
                     kind = Obs.Event.Run_meta { label = name } };
                 Obs.Jsonl.write_events channel (Obs.Ring.to_list ring))
             captures));
    (match stats_json_file with
     | None -> ()
     | Some path ->
       let json =
         Obs.Json.Obj
           (List.map
              (fun (name, capture, table, metrics) ->
                let row =
                  Sim.Metrics.row metrics
                  @ List.map
                      (fun (key, value) -> ("lock." ^ key, value))
                      (Lockmgr.Lock_stats.row (Lockmgr.Lock_table.stats table))
                  @ (match capture with
                     | Some (_, _, collector) ->
                       Obs.Registry.row (Obs.Collector.registry collector)
                     | None -> [])
                in
                let buckets =
                  match capture with
                  | Some (_, _, collector) ->
                    Obs.Registry.bucket_fields
                      (Obs.Collector.registry collector)
                  | None -> []
                in
                ( name,
                  Obs.Json.Obj
                    (List.map
                       (fun (key, value) -> (key, Obs.Json.Float value))
                       row
                     @ buckets) ))
              captures)
       in
       with_out path (fun channel ->
           Obs.Json.output channel json;
           output_char channel '\n'));
    0
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the concurrency simulator on a generated manufacturing \
             workload and compare techniques.")
    Term.(const run $ setup_logs $ technique $ jobs_arg $ cells_arg
          $ read_fraction_arg $ seed_arg $ resolution_arg $ victim_arg
          $ backoff_arg $ max_restarts_arg $ faults_arg $ check_invariants_arg
          $ trace_file $ stats_json_file $ jsonl_file $ snapshot_every
          $ trace_all)

(* ------------------------------------------------------------------ trace *)

let trace_cmd =
  let technique =
    Arg.(value & opt technique_conv `Proposed
         & info [ "technique"; "t" ] ~docv:"TECH"
             ~doc:"Technique to trace: proposed, rule4, whole-object, \
                   tuple-level.")
  in
  let output =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Chrome trace_event output file ('-' for stdout).")
  in
  let jsonl =
    Arg.(value & opt (some string) None
         & info [ "jsonl" ] ~docv:"FILE"
             ~doc:"Also dump the raw event stream as JSON lines ('-' for \
                   stdout).")
  in
  let run () selector jobs cells read_fraction seed output jsonl =
    let graph, specs =
      manufacturing_scenario ~jobs ~cells ~read_fraction ~seed
    in
    let sink, ring, collector = make_capture () in
    let table =
      Lockmgr.Lock_table.create ~obs:sink
        ~meta:(Colock.Instance_graph.lu_resolver graph) ()
    in
    let technique = technique_of graph table selector in
    let sim_jobs = Sim.Scenario.compile graph technique specs in
    let metrics = Sim.Runner.run ~table sim_jobs in
    let events = Obs.Ring.to_list ring in
    let name = Sim.Scenario.technique_name technique in
    with_out output (fun channel ->
        Obs.Trace.write channel [ (name, events) ]);
    (match jsonl with
     | None -> ()
     | Some path ->
       with_out path (fun channel -> Obs.Jsonl.write_events channel events));
    if not (String.equal output "-") then begin
      let registry = Obs.Collector.registry collector in
      Printf.printf "%s: captured %d event(s) (%d dropped) from %d job(s)\n"
        name (List.length events) (Obs.Ring.dropped ring) jobs;
      Printf.printf
        "committed %d, gave up %d, makespan %d, lock waits observed %d\n"
        metrics.Sim.Metrics.committed metrics.Sim.Metrics.gave_up
        metrics.Sim.Metrics.makespan
        (Obs.Registry.counter registry "events.lock_waited");
      Printf.printf "trace written to %s\n" output
    end;
    0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one simulated workload with full event capture and export \
             a Chrome trace_event file (chrome://tracing, Perfetto).")
    Term.(const run $ setup_logs $ technique $ jobs_arg $ cells_arg
          $ read_fraction_arg $ seed_arg $ output $ jsonl)

(* ---------------------------------------------------------------- analyze *)

let analyze_cmd =
  let trace_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"TRACE"
             ~doc:"A JSONL event trace, as written by $(b,colock simulate \
                   --jsonl) or $(b,colock trace --jsonl).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the contention report(s) as JSON instead of tables.")
  in
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Rows to show in the hot-resource and critical-path \
                   tables (text output only).")
  in
  let run () trace json top =
    let events, errors = Obs.Jsonl.load trace in
    List.iter (fun message -> Fmt.epr "colock: %s: %s@." trace message) errors;
    if events = [] then begin
      Fmt.epr "colock: %s: no decodable events@." trace;
      1
    end
    else begin
      let reports = Obs.Profile.of_trace events in
      if json then begin
        Obs.Json.output stdout
          (Obs.Json.List (List.map Obs.Profile.to_json reports));
        print_newline ()
      end
      else
        List.iteri
          (fun index report ->
            if index > 0 then print_newline ();
            Obs.Profile.print ~top stdout report)
          reports;
      0
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Fold a JSONL event trace into a contention report: blocked \
             time attributed to lockable-unit levels (BLU/HoLU/HeLU), graph \
             depths, hot resources, a waiter-by-holder conflict matrix, \
             abort causes and per-transaction wait critical paths.")
    Term.(const run $ setup_logs $ trace_arg $ json_flag $ top_arg)

let () =
  let info =
    Cmd.info "colock" ~version:"0.1.0"
      ~doc:"A lock technique for disjoint and non-disjoint complex objects \
            (Herrmann et al., EDBT 1990)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ graph_cmd; plan_cmd; query_cmd; simulate_cmd; trace_cmd;
            analyze_cmd ]))
