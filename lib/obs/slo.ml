(* Declarative service-level objectives over the live monitor.

   Config syntax, one rule per line ('#' comments, blank lines skipped):

     p99_wait < 40            windowed lock-wait quantile (p50/p95/p99)
     p95_wait{lu=HoLU} < 25   the same, one lockable-unit kind only
     abort_rate < 0.25        aborts / (aborts + commits) in the window
     deadlock_rate < 0.01     deadlocks per clock unit in the window
     wait_rate < 2.5          completed waits per clock unit in the window
     throughput > 0.05        commits per clock unit in the window

   Rules are evaluated once per window (the monitor's span): each boundary
   crossing, every violated rule emits one [Slo_breach] event through the
   run's sink — into the ring, the JSONL capture, the monitor itself — and
   is tallied so the CLI can exit nonzero. *)

type comparator = Lt | Le | Gt | Ge

type signal =
  | Wait_quantile of { q : float; lu : string option }
  | Abort_rate
  | Deadlock_rate
  | Wait_rate
  | Throughput

type rule = {
  text : string;  (* normalized source line, the [Slo_breach.rule] payload *)
  signal : signal;
  cmp : comparator;
  threshold : float;
}

type t = { rules : rule list }

let rules slo = slo.rules
let of_rules rules = { rules }

let comparator_text = function
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let holds cmp value threshold =
  match cmp with
  | Lt -> value < threshold
  | Le -> value <= threshold
  | Gt -> value > threshold
  | Ge -> value >= threshold

(* ------------------------------------------------------------- parsing *)

let unknown_signal text =
  Error
    (Printf.sprintf
       "unknown signal %S (expected p50_wait/p95_wait/p99_wait \
        [optionally {lu=KIND}], abort_rate, deadlock_rate, wait_rate or \
        throughput)"
       text)

let signal_of_string text =
  let quantile q lu = Ok (Wait_quantile { q; lu }) in
  match String.index_opt text '{' with
  | None -> (
    match text with
    | "p50_wait" -> quantile 0.50 None
    | "p95_wait" -> quantile 0.95 None
    | "p99_wait" -> quantile 0.99 None
    | "abort_rate" -> Ok Abort_rate
    | "deadlock_rate" -> Ok Deadlock_rate
    | "wait_rate" -> Ok Wait_rate
    | "throughput" -> Ok Throughput
    | _ -> unknown_signal text)
  | Some brace -> (
    let base = String.sub text 0 brace in
    let selector = String.sub text brace (String.length text - brace) in
    let length = String.length selector in
    let kind =
      (* {lu=KIND} with a nonempty KIND *)
      if length >= 6
         && String.sub selector 0 4 = "{lu="
         && selector.[length - 1] = '}'
      then Some (String.sub selector 4 (length - 5))
      else None
    in
    match kind with
    | None ->
      Error
        (Printf.sprintf
           "bad selector %S after %S (expected {lu=KIND}, e.g. \
            p95_wait{lu=HoLU})"
           selector base)
    | Some kind -> (
      match base with
      | "p50_wait" -> quantile 0.50 (Some kind)
      | "p95_wait" -> quantile 0.95 (Some kind)
      | "p99_wait" -> quantile 0.99 (Some kind)
      | "abort_rate" | "deadlock_rate" | "wait_rate" | "throughput" ->
        Error
          (Printf.sprintf
             "signal %S takes no {lu=...} selector (only the wait \
              quantiles do)"
             base)
      | _ -> unknown_signal base))

let signal_text = function
  | Wait_quantile { q; lu } ->
    let base =
      if q = 0.50 then "p50_wait" else if q = 0.95 then "p95_wait"
      else "p99_wait"
    in
    (match lu with
     | None -> base
     | Some kind -> Printf.sprintf "%s{lu=%s}" base kind)
  | Abort_rate -> "abort_rate"
  | Deadlock_rate -> "deadlock_rate"
  | Wait_rate -> "wait_rate"
  | Throughput -> "throughput"

let parse_rule_text line =
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun token -> token <> "")
  in
  match tokens with
  | [ signal; cmp; threshold ] -> (
    let ( let* ) = Result.bind in
    let* signal = signal_of_string signal in
    let* cmp =
      match cmp with
      | "<" -> Ok Lt
      | "<=" -> Ok Le
      | ">" -> Ok Gt
      | ">=" -> Ok Ge
      | other -> Error (Printf.sprintf "unknown comparator %S" other)
    in
    let* threshold =
      match float_of_string_opt threshold with
      | Some value -> Ok value
      | None -> Error (Printf.sprintf "invalid threshold %S" threshold)
    in
    let text =
      Printf.sprintf "%s %s %g" (signal_text signal) (comparator_text cmp)
        threshold
    in
    Ok { text; signal; cmp; threshold })
  | _ -> Error "expected `SIGNAL <|<=|>|>= NUMBER`"

(* "FILE:N: ..." with a file, "line N: ..." without — every diagnostic
   points at its source. *)
let position ?file line =
  match file with
  | Some file -> Printf.sprintf "%s:%d" file line
  | None -> Printf.sprintf "line %d" line

let parse_rule ?file ?line text =
  match parse_rule_text text with
  | Ok _ as ok -> ok
  | Error message -> (
    match line with
    | None -> Error message
    | Some line ->
      Error (Printf.sprintf "%s: %s" (position ?file line) message))

let parse ?file text =
  let lines = String.split_on_char '\n' text in
  let rules, errors =
    List.fold_left
      (fun (rules, errors) (number, line) ->
        let line =
          match String.index_opt line '#' with
          | None -> line
          | Some hash -> String.sub line 0 hash
        in
        let line = String.trim line in
        if line = "" then (rules, errors)
        else
          match parse_rule_text line with
          | Ok rule -> (rule :: rules, errors)
          | Error message ->
            ( rules,
              Printf.sprintf "%s: %s" (position ?file number) message
              :: errors ))
      ([], [])
      (List.mapi (fun index line -> (index + 1, line)) lines)
  in
  match errors with
  | [] -> Ok { rules = List.rev rules }
  | errors -> Error (String.concat "\n" (List.rev errors))

let load path =
  match open_in path with
  | exception Sys_error message -> Error message
  | channel ->
    let length = in_channel_length channel in
    let text = really_input_string channel length in
    close_in_noerr channel;
    parse ~file:path text

(* ---------------------------------------------------------- evaluation *)

let window_count monitor name =
  match Registry.find_window (Monitor.registry monitor) name with
  | Some window -> Window.count window
  | None -> 0

let window_rate monitor name =
  match Registry.find_window (Monitor.registry monitor) name with
  | Some window -> Window.rate window
  | None -> 0.0

let measure monitor = function
  | Wait_quantile { q; lu } ->
    let name =
      match lu with
      | None -> "window.lock_wait"
      | Some kind -> Printf.sprintf "window.lock_wait{lu=\"%s\"}" kind
    in
    (match Registry.find_window (Monitor.registry monitor) name with
     | Some window -> Window.quantile window q
     | None -> 0.0)
  | Abort_rate ->
    let aborts = window_count monitor "window.aborts" in
    let commits = window_count monitor "window.commits" in
    if aborts + commits = 0 then 0.0
    else float_of_int aborts /. float_of_int (aborts + commits)
  | Deadlock_rate -> window_rate monitor "window.deadlocks"
  | Wait_rate -> window_rate monitor "window.lock_wait"
  | Throughput -> window_rate monitor "window.commits"

type verdict = { rule : rule; value : float; ok : bool }

let evaluate slo monitor =
  List.map
    (fun rule ->
      let value = measure monitor rule.signal in
      { rule; value; ok = holds rule.cmp value rule.threshold })
    slo.rules

let breaches_of verdicts = List.filter (fun verdict -> not verdict.ok) verdicts

(* ------------------------------------------------------------- watching *)

type watch = {
  slo : t;
  monitor : Monitor.t;
  sink : Sink.t option;
  every : float;
  mutable next_eval : float option;  (* None until the first event *)
  mutable breach_total : int;
}

let watch ?sink ?every slo monitor =
  let every =
    match every with Some every -> every | None -> Monitor.span monitor
  in
  if every <= 0.0 then invalid_arg "Slo.watch: every must be positive";
  { slo; monitor; sink; every; next_eval = None; breach_total = 0 }

let breach_count watcher = watcher.breach_total
let watched watcher = watcher.slo

let evaluate_now watcher ~time =
  let breaches = breaches_of (evaluate watcher.slo watcher.monitor) in
  watcher.breach_total <- watcher.breach_total + List.length breaches;
  (match watcher.sink with
   | None ->
     (* no sink to carry the event: record straight into the monitor *)
     List.iter
       (fun { rule; value; _ } ->
         Monitor.handle watcher.monitor
           { Event.time;
             kind =
               Event.Slo_breach
                 { rule = rule.text; value; threshold = rule.threshold } })
       breaches
   | Some sink ->
     List.iter
       (fun { rule; value; _ } ->
         Sink.emit_at sink ~time
           (Event.Slo_breach
              { rule = rule.text; value; threshold = rule.threshold }))
       breaches);
  breaches

let handler watcher =
  fun event ->
    match event.Event.kind with
    | Event.Slo_breach _ -> ()  (* never react to our own emissions *)
    | Event.Run_meta _ ->
      watcher.next_eval <- None;
      watcher.breach_total <- 0
    | _ -> (
      let time = event.Event.time in
      match watcher.next_eval with
      | None -> watcher.next_eval <- Some (time +. watcher.every)
      | Some boundary when time >= boundary ->
        let (_ : verdict list) = evaluate_now watcher ~time in
        (* skip straight past silent gaps so one event cannot trigger a
           backlog of evaluations *)
        let rec advance boundary =
          if time >= boundary then advance (boundary +. watcher.every)
          else boundary
        in
        watcher.next_eval <- Some (advance boundary)
      | Some _ -> ())

let finish watcher ~time =
  let (_ : verdict list) = evaluate_now watcher ~time in
  watcher.breach_total
