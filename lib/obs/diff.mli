(** The differential profiler: explains a wait-time regression.

    Takes two {!Profile} reports — a known-good [base] and a fresh [cand]
    — and attributes the total wait-time delta across the same partitions
    the contention profiler uses: lockable-unit level, instance-graph
    depth, resource, waiter-mode × holder-mode conflict cell, and blocker.
    Every partition's deltas sum {e exactly} to [cand.total_blocked -
    base.total_blocked]: per-span float residue is folded into the largest
    share and per-partition residue into the largest-|delta| entry (the
    same discipline as {!Blame}), so an attribution never invents or loses
    a tick of the regression it explains.

    Two deliberate divergences from {!Profile}'s own aggregation keep the
    partitions honest: spans with no depth tag land in an explicit
    ["untagged"] depth bucket (instead of being dropped), and a span
    blocked behind several distinct holder modes splits its duration
    equally across the cells (instead of charging each cell in full) — a
    partition that double-counts cannot conserve a delta.

    Resources, cells, blockers, levels or depths present on only one side
    are kept as explicit drift ({!Only_base} / {!Only_cand}), never
    silently dropped; so are whole runs when two multi-run traces are
    paired by [Run_meta] label ({!pair_reports}). *)

type status =
  | Both
  | Only_base  (** the key vanished from the candidate ("removed") *)
  | Only_cand  (** the key is new in the candidate ("added") *)

type entry = {
  e_key : string;
      (** level name, depth (or ["untagged"]), resource, ["WAITER<-HOLDER"]
          conflict cell, or blocker label (["T7"] / ["queue"]) *)
  e_base : float;  (** blocked time on the base side; [0.] if {!Only_cand} *)
  e_cand : float;
  e_delta : float;
      (** [e_cand - e_base] after residue folding; each partition's deltas
          sum exactly to the report's {!report.delta} *)
  e_base_waits : int;
  e_cand_waits : int;
  e_status : status;
}

type report = {
  label : string option;  (** the paired runs' shared [Run_meta] label *)
  base_total : float;
  cand_total : float;
  delta : float;  (** [cand_total -. base_total] *)
  base_waits : int;
  cand_waits : int;
  levels : entry list;  (** every list: delta descending, ties by key *)
  depths : entry list;
  resources : entry list;
  cells : entry list;
  blockers : entry list;
}

val conserves : report -> bool
(** Every partition's deltas sum to {!report.delta} within one part in
    10{^9} — the identity the unit tests and experiment E22 assert. *)

val of_reports :
  ?label:string -> base:Profile.report -> cand:Profile.report -> unit ->
  report
(** Diff two single-run profiles. [?label] overrides the label (default:
    the candidate's, then the base's). *)

type pairing = {
  pairs : report list;  (** base-report order *)
  only_base : string list;
      (** labels of base runs with no candidate twin (["(unlabelled)"]
          for an unlabelled run) — drift, reported, never dropped *)
  only_cand : string list;
}

val pair_reports :
  base:Profile.report list -> cand:Profile.report list -> pairing
(** Pairs multi-run traces' profiles by label (first unconsumed match on
    each side, in base order). *)

val of_traces : base:Event.t list -> cand:Event.t list -> pairing
(** {!Profile.of_trace} both sides, then {!pair_reports} — the engine of
    [colock why]. *)

val to_json : report -> Json.t
val pairing_to_json : pairing -> Json.t

val pp : ?top:int -> Format.formatter -> report -> unit
(** Text rendering; [top] (default 10) bounds the resource, cell and
    blocker tables (levels and depths always print whole). Expects a
    vertical box (see {!print}). *)

val print : ?top:int -> out_channel -> report -> unit

val print_drift : out_channel -> pairing -> unit
(** One ["drift:"] line per unpaired run — the unknown-run diagnostic. *)
