(** The contention profiler: attributes blocked time to the lock graph.

    Folds a lock-event stream into wait spans ([Lock_waited] to the matching
    grant, abort, or end of stream) and aggregates them per lockable-unit
    level (BLU/HoLU/HeLU), per graph depth, per resource, and per
    waiter-mode × holder-mode conflict cell — plus an abort-cause taxonomy,
    per-transaction longest-wait-chain breakdowns, and wait-for snapshot
    statistics. Each partition of the report sums to the same total blocked
    time as the raw [Lock_waited] durations in the stream.

    Works online (attach {!handle} to a {!Sink}, then {!finish}) and offline
    ({!of_trace} on a decoded JSONL trace from {!Jsonl.load}). *)

type outcome =
  | Granted  (** the wait ended in a grant *)
  | Aborted of string  (** the waiter died first; cause tag *)
  | Unfinished  (** still queued when the stream ended *)

type span = {
  s_txn : int;
  s_resource : string;
  s_mode : string;  (** the mode the waiter asked for *)
  s_holder_modes : string list;
      (** distinct modes held by the blockers at wait-open; [[]] means the
          wait was caused by the FIFO queue rule alone *)
  s_lu : Event.lu option;
  s_blockers : int list;
  s_start : float;
  s_finish : float;
  s_outcome : outcome;
}

val duration : span -> float

type level_stat = {
  v_level : string;  (** ["BLU"], ["HoLU"], ["HeLU"], or ["untagged"] *)
  v_blocked : float;
  v_waits : int;
  v_resources : int;  (** distinct resources at this level *)
}

type depth_stat = { d_depth : int; d_blocked : float; d_waits : int }

type resource_stat = {
  r_resource : string;
  r_lu : Event.lu option;
  r_blocked : float;
  r_waits : int;
}

type cell = {
  c_waiter : string;
  c_holder : string;  (** ["queue"] for FIFO-rule blocking *)
  c_count : int;
  c_blocked : float;
}

type path_step = { p_resource : string; p_blocked : float }

type txn_path = {
  t_txn : int;
  t_blocked : float;  (** sum over all of the transaction's waits *)
  t_critical : float;
      (** longest chain of overlapping waits starting at one of them:
          its own wait plus the blocker's wait plus that blocker's ... *)
  t_path : path_step list;  (** the resources along that chain *)
}

type report = {
  label : string option;
  events : int;
  first_time : float;
  last_time : float;
  total_blocked : float;  (** equals the sum of every partition below *)
  wait_count : int;
  unfinished : int;
  spans : span list;  (** stream order *)
  levels : level_stat list;  (** blocked-time descending *)
  depths : depth_stat list;  (** depth ascending; tagged spans only *)
  resources : resource_stat list;  (** blocked-time descending *)
  matrix : cell list;  (** blocked-time descending *)
  aborts : (string * int) list;  (** cause tag -> count, sorted by cause *)
  txns : txn_path list;  (** critical-path descending *)
  snapshots : int;  (** [Waits_for] events seen *)
  peak_wait_edges : int;
}

type t
(** An online accumulator. *)

val create : unit -> t

val handle : t -> Event.t -> unit
(** Sink-handler form: attach with {!Sink.attach}. *)

val finish : ?label:string -> t -> report
(** Closes still-open waits as [Unfinished] at the last seen timestamp and
    assembles the report. *)

val of_events : ?label:string -> Event.t list -> report
(** One-shot fold over an in-memory event list. *)

val of_trace : Event.t list -> report list
(** Folds a decoded JSONL trace, splitting it at [Run_meta] delimiters into
    one labelled report per run (events before the first delimiter, if any,
    form an unlabelled report). *)

val blockers : report -> (string * float * int) list
(** Per-blocker blocked-time partition: each span's duration is split
    equally across its blocking transactions (labelled ["T7"]; ["queue"]
    when the FIFO rule alone blocked it), with the float residue of the
    equal split folded into the first share so the partition sums to
    [total_blocked] exactly. [(label, blocked, waits)] in blocked-time
    descending order, ties by label. *)

val to_json : report -> Json.t

val pp : ?top:int -> Format.formatter -> report -> unit
(** Text rendering; [top] (default 10) bounds the hot-resource and
    critical-path tables. Expects a vertical box (see {!print}). *)

val print : ?top:int -> out_channel -> report -> unit
