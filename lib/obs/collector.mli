(** The event→metrics bridge: a sink handler that feeds a {!Registry}.

    Counts every event kind under ["events.<name>"] and pairs span-shaped
    events into three latency histograms:

    - ["lock_wait"] — [Lock_waited] to the matching queued [Lock_granted];
    - ["grant_latency"] — [Lock_requested] to [Lock_granted] (immediate
      grants observe ≈ 0, so the histogram shows the full grant path);
    - ["txn_response"] — first [Txn_begin] to [Txn_commit] per transaction
      (restarted deadlock victims keep their original begin time). *)

type t

val create : ?registry:Registry.t -> unit -> t
(** The three histograms are pre-declared, so {!Registry.row} exports stable
    keys even for runs without waits. *)

val registry : t -> Registry.t

val handle : t -> Event.t -> unit
(** Pass [handle collector] to {!Sink.create}. *)
