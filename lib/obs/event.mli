(** The typed event taxonomy of the observability layer.

    Every layer of the system — the lock table, the protocol, the
    transaction manager, query execution and the simulator — emits these
    through a {!Sink}. Lock modes travel as plain strings so the library
    sits below [Lockmgr] in the build order. Times are in whatever unit the
    emitting sink's clock uses: the discrete-event simulator stamps virtual
    ticks; wall-clock users stamp seconds. *)

type kind =
  | Lock_requested of { txn : int; resource : string; mode : string }
  | Lock_granted of {
      txn : int;
      resource : string;
      mode : string;
      immediate : bool;  (** [false]: served from the wait queue *)
    }
  | Lock_waited of {
      txn : int;
      resource : string;
      mode : string;
      blockers : int list;
    }
  | Lock_released of { txn : int; resource : string }
  | Conversion of {
      txn : int;
      resource : string;
      from_mode : string;
      to_mode : string;
    }
  | Escalation of {
      txn : int;
      node : string;
      mode : string;
      released_children : int;
    }
  | Deescalation of { txn : int; node : string; mode : string }
  | Deadlock_detected of { cycle : int list }
  | Victim_aborted of { txn : int; restarts : int }
  | Timeout_abort of { txn : int; resource : string; waited : int }
      (** a lock wait exceeded its deadline and the waiter was aborted *)
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Query_executed of {
      txn : int;
      query : string;
      rows : int;
      locks_requested : int;
    }
  | Sim_step of { txn : int; step : int }

type t = { time : float; kind : kind }

val name : kind -> string
(** Stable snake_case tag, e.g. ["lock_granted"] — the JSONL ["event"] field
    and the metric-counter suffix. *)

val txn : kind -> int option
(** The transaction an event belongs to ([None] for whole-system events). *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
