(** The typed event taxonomy of the observability layer.

    Every layer of the system — the lock table, the protocol, the
    transaction manager, query execution and the simulator — emits these
    through a {!Sink}. Lock modes travel as plain strings so the library
    sits below [Lockmgr] in the build order. Times are in whatever unit the
    emitting sink's clock uses: the discrete-event simulator stamps virtual
    ticks; wall-clock users stamp seconds. *)

type lu = { lu_kind : string; lu_depth : int }
(** Lockable-unit annotation for a resource: the granule kind from the
    object-specific lock graph (["BLU"], ["HoLU"], ["HeLU"], or a
    technique-specific label such as ["object"]/["tuple"] for the
    baselines) and the resource's depth in the instance graph. Carried as
    an option on every resource-bearing lock event; [None] means the
    emitter had no graph metadata for that resource. *)

type holder = { h_txn : int; h_mode : string; h_lu : lu option }
(** One member of the granted group that blocked a request: the holding
    transaction, the mode it held when the request queued, and its
    lockable-unit annotation. The causal half of a wait — [blockers] says
    who, [holders] additionally says with what, so blame attribution can
    map each blocked tick onto the paper's compatibility matrix. *)

type kind =
  | Lock_requested of {
      txn : int;
      resource : string;
      mode : string;
      lu : lu option;
    }
  | Lock_granted of {
      txn : int;
      resource : string;
      mode : string;
      immediate : bool;  (** [false]: served from the wait queue *)
      lu : lu option;
      holders : holder list;
          (** for queue-served grants: the granted group the request was
              blocked on while queued; [[]] on immediate grants *)
    }
  | Lock_waited of {
      txn : int;
      resource : string;
      mode : string;
      blockers : int list;
      lu : lu option;
      holders : holder list;
          (** the incompatible granted group at enqueue time (txn, held
              mode, LU kind); [[]] when the wait is due to the FIFO queue
              rule alone *)
    }
  | Lock_released of { txn : int; resource : string; lu : lu option }
  | Conversion of {
      txn : int;
      resource : string;
      from_mode : string;
      to_mode : string;
      lu : lu option;
    }
  | Escalation of {
      txn : int;
      node : string;
      mode : string;
      released_children : int;
    }
  | Deescalation of { txn : int; node : string; mode : string }
  | Deadlock_detected of { cycle : int list }
  | Victim_aborted of { txn : int; restarts : int }
  | Timeout_abort of {
      txn : int;
      resource : string;
      waited : int;
      lu : lu option;
    }
      (** a lock wait exceeded its deadline and the waiter was aborted *)
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Query_executed of {
      txn : int;
      query : string;
      rows : int;
      locks_requested : int;
    }
  | Sim_step of { txn : int; step : int }
  | Waits_for of { edges : (int * int) list }
      (** periodic snapshot of the wait-for graph: [(waiter, blocker)]
          edges at the event's timestamp *)
  | Run_meta of { label : string }
      (** stream delimiter: everything after it (until the next [Run_meta])
          belongs to the labelled run, letting one JSONL file carry several
          techniques' captures *)
  | Slo_breach of { rule : string; value : float; threshold : float }
      (** a declarative service-level objective (see [Slo]) was violated in
          the window that just closed: [rule] is the rule's source text,
          [value] the measured signal, [threshold] the bound it crossed *)
  | Admission of { txn : int; priority : string; decision : string }
      (** the admission gate deferred or refused a transaction: [decision]
          is ["queued"] or ["shed"] (admissions are silent — they are the
          common case). [priority] is the workload class
          (high/normal/low). *)
  | Admission_limit of {
      limit : int;
      inflight : int;
      queued : int;
      shed : int;
    }
      (** the AIMD controller moved the concurrency limit; the remaining
          fields snapshot the limiter so dashboards can plot the loop *)
  | Breaker of { from_state : string; to_state : string }
      (** the abort-storm circuit breaker changed state
          (closed/open/half-open) *)
  | Retry_denied of { txn : int; restarts : int }
      (** the retry budget was empty: the transaction gives up instead of
          restarting a [restarts+1]-th time *)
  | Contention_abort of { txn : int; policy : string; depth : int }
      (** a restart policy (["wdl:D"] or ["running-priority"]) aborted
          [txn] to keep the blocking tree shallow; [depth] is the observed
          wait depth that triggered it *)

type t = { time : float; kind : kind }

val name : kind -> string
(** Stable snake_case tag, e.g. ["lock_granted"] — the JSONL ["event"] field
    and the metric-counter suffix. *)

val txn : kind -> int option
(** The transaction an event belongs to ([None] for whole-system events). *)

val lu_of : kind -> lu option
(** The lockable-unit annotation, for the six resource-bearing lock events;
    [None] everywhere else. *)

val resource_of : kind -> string option
(** The resource (or escalation node) an event refers to, when any. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}: decodes one trace line back into a typed event,
    accepting exactly the field layout the encoder writes. *)

val pp : Format.formatter -> t -> unit
