(** Space-Saving top-K heavy hitters in O(K) memory.

    Tracks at most [k] string keys with weighted counts. When a new key
    arrives into a full sketch it evicts the smallest counter and inherits
    its count as an overestimation bound — the classic Space-Saving scheme
    (Metwally et al. 2005). For a stream of total weight [N]:

    - every key whose true weight exceeds [N/k] is tracked;
    - [estimate - error <= true weight <= estimate], with [error <= N/k].

    This is what keeps live hot-resource/hot-blocker tracking
    bounded-cardinality no matter how many distinct objects the lock
    stream touches (see {!Monitor}). Not thread-safe on its own; the
    monitor serializes access under its mutex. *)

type t

val create : k:int -> t
(** Raises [Invalid_argument] when [k <= 0]. *)

val k : t -> int

val observe : ?weight:float -> t -> string -> string option
(** Adds [weight] (default 1) to [key]'s counter. Returns [Some victim]
    when tracking [key] evicted the smallest tracked key — callers
    maintaining side tables (gauges) must drop the victim in lockstep. *)

val find : t -> string -> (float * float) option
(** [(estimate, error)] when the key is currently tracked. *)

val top : ?n:int -> t -> (string * float * float) list
(** [(key, estimate, error)] by estimate descending, ties by key; all
    tracked keys when [n] is omitted. *)

val cardinality : t -> int
(** Currently tracked keys ([<= k]). *)

val total : t -> float
(** Total weight observed, tracked keys or not. *)

val reset : t -> unit
