(* The live half of the observability stack: a sink handler that folds the
   event stream into gauges (levels right now), sliding windows (rates and
   quantiles of the recent past, labelled by lockable-unit kind) and
   per-resource contention tallies — everything [colock top], the SLO
   engine and the Prometheus endpoint read.

   It owns a Collector on the same registry, so cumulative counters
   ([events.*]) and whole-run histograms ride along for free; the monitor
   itself only adds what has to be live.  A [Run_meta] delimiter resets the
   whole registry (run isolation when one process serves several technique
   runs) and relabels the monitor. *)

type resource_stat = {
  mutable r_blocked : float;
  mutable r_waits : int;
  mutable r_lu : Event.lu option;
}

type t = {
  registry : Registry.t;
  collector : Collector.t;
  span : float;
  hot_k : int;
  mutex : Mutex.t;
  (* the windows list mirrors the registry's, kept here so per-event
     advancing does not re-sort a hashtable *)
  mutable live_windows : Window.t list;
  waits : (int * string, float * Event.lu option * Event.holder list) Hashtbl.t;
  held : (int * string, unit) Hashtbl.t;
  active : (int, unit) Hashtbl.t;
  (* bounded hot-key state: the sketches admit at most [hot_k] keys, and
     [resources] / the hot_* gauges are evicted in lockstep, so memory and
     exposition cardinality stay O(hot_k) on million-object catalogs *)
  resource_sketch : Sketch.t;
  blocker_sketch : Sketch.t;
  resources : (string, resource_stat) Hashtbl.t;
  mutable breaches : (float * string) list;  (* newest first, capped *)
  mutable label : string option;
  mutable started : float;
  mutable now : float;
  mutable seen : bool;  (* any event at all (so [started] is meaningful) *)
}

let breach_memory = 32

(* ----------------------------------------------------- instrument names *)

let gauge_active = "active_txns"
let gauge_entries = "lock_entries"
let gauge_depth = "wait_queue_depth"
let gauge_admission = "admission_limit"
let gauge_inflight = "admission_inflight"
let gauge_queued = "admission_queued"
let gauge_shed = "admission_shed"
let gauge_breaker = "breaker_state"
let gauge_retry_denied = "retry_denied"
let window_wait = "window.lock_wait"
let window_grants = "window.grants"
let window_commits = "window.commits"
let window_aborts = "window.aborts"
let window_deadlocks = "window.deadlocks"

let labelled base lu_kind = Printf.sprintf "%s{lu=\"%s\"}" base lu_kind
let hot_resource_gauge resource = Expo.labelled "hot_resource" [ ("resource", resource) ]
let hot_blocker_gauge blocker = Expo.labelled "hot_blocker" [ ("blocker", blocker) ]

(* Numeric encoding of the breaker state machine for the
   [breaker_state] gauge: closed is healthy, open is tripped. *)
let breaker_level = function
  | "closed" -> 0.0
  | "half-open" -> 1.0
  | "open" -> 2.0
  | _ -> -1.0

let create ?registry ?(span = 200.0) ?(hot_k = 32) () =
  if hot_k <= 0 then invalid_arg "Monitor.create: hot_k must be positive";
  let registry =
    match registry with Some registry -> registry | None -> Registry.create ()
  in
  let collector = Collector.create ~registry () in
  let monitor =
    { registry; collector; span; hot_k; mutex = Mutex.create ();
      live_windows = []; waits = Hashtbl.create 64; held = Hashtbl.create 256;
      active = Hashtbl.create 64;
      resource_sketch = Sketch.create ~k:hot_k;
      blocker_sketch = Sketch.create ~k:hot_k;
      resources = Hashtbl.create 256;
      breaches = []; label = None; started = 0.0; now = 0.0; seen = false }
  in
  (* pre-declare the unlabelled instruments so exports carry stable keys *)
  List.iter
    (fun name ->
      let window = Registry.window ~span monitor.registry name in
      monitor.live_windows <- window :: monitor.live_windows)
    [ window_wait; window_grants; window_commits; window_aborts;
      window_deadlocks ];
  List.iter
    (fun name -> ignore (Registry.gauge monitor.registry name : Gauge.t))
    [ gauge_active; gauge_entries; gauge_depth ];
  monitor

let registry monitor = monitor.registry
let span monitor = monitor.span
let label monitor = monitor.label
let now monitor = monitor.now
let started monitor = if monitor.seen then monitor.started else 0.0

let locked monitor f =
  Mutex.lock monitor.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock monitor.mutex) f

let window monitor name =
  match Registry.find_window monitor.registry name with
  | Some window -> window
  | None ->
    let window = Registry.window ~span:monitor.span monitor.registry name in
    monitor.live_windows <- window :: monitor.live_windows;
    window

let observe_window monitor name value =
  Window.observe (window monitor name) ~now:monitor.now value

let mark_window monitor name = observe_window monitor name 1.0

let mark_lu monitor base lu =
  match lu with
  | None -> ()
  | Some { Event.lu_kind; _ } -> mark_window monitor (labelled base lu_kind)

let set_gauge monitor name value =
  Registry.set_gauge monitor.registry name (float_of_int value)

let sync_gauges monitor =
  set_gauge monitor gauge_active (Hashtbl.length monitor.active);
  set_gauge monitor gauge_entries (Hashtbl.length monitor.held);
  set_gauge monitor gauge_depth (Hashtbl.length monitor.waits)

let resource_stat monitor resource =
  match Hashtbl.find_opt monitor.resources resource with
  | Some stat -> stat
  | None ->
    let stat = { r_blocked = 0.0; r_waits = 0; r_lu = None } in
    Hashtbl.replace monitor.resources resource stat;
    stat

(* When the sketch evicts a key, its side-table stat and labelled gauge go
   with it — the hot_* families never exceed [hot_k] series. *)
let charge_resource monitor resource ~blocked =
  (match Sketch.observe ~weight:blocked monitor.resource_sketch resource with
   | Some victim ->
     Hashtbl.remove monitor.resources victim;
     Registry.remove_gauge monitor.registry (hot_resource_gauge victim)
   | None -> ());
  (match Sketch.find monitor.resource_sketch resource with
   | Some (estimate, _error) ->
     (resource_stat monitor resource).r_blocked <- estimate;
     Registry.set_gauge monitor.registry (hot_resource_gauge resource) estimate
   | None -> ())

let blocker_label = function
  | None -> "queue"
  | Some txn -> Printf.sprintf "T%d" txn

(* Causal charge: the wait's blocked time is split equally across the
   holders that were blocking at enqueue time (recorded on the
   [Lock_waited] event); FIFO-rule waits with no incompatible holder are
   charged to the pseudo-blocker ["queue"]. *)
let charge_blockers monitor ~holders ~blocked =
  let labels =
    match holders with
    | [] -> [ blocker_label None ]
    | holders ->
      List.map
        (fun { Event.h_txn; _ } -> blocker_label (Some h_txn))
        holders
      |> List.sort_uniq String.compare
  in
  let share = blocked /. float_of_int (List.length labels) in
  List.iter
    (fun label ->
      (match Sketch.observe ~weight:share monitor.blocker_sketch label with
       | Some victim ->
         Registry.remove_gauge monitor.registry (hot_blocker_gauge victim)
       | None -> ());
      match Sketch.find monitor.blocker_sketch label with
      | Some (estimate, _error) ->
        Registry.set_gauge monitor.registry (hot_blocker_gauge label) estimate
      | None -> ())
    labels

let charge_wait monitor ~resource ~lu ~holders ~start =
  let blocked = Float.max 0.0 (monitor.now -. start) in
  let stat = resource_stat monitor resource in
  stat.r_waits <- stat.r_waits + 1;
  (match lu with Some _ -> stat.r_lu <- lu | None -> ());
  charge_resource monitor resource ~blocked;
  charge_blockers monitor ~holders ~blocked;
  observe_window monitor window_wait blocked;
  (match lu with
   | None -> ()
   | Some { Event.lu_kind; _ } ->
     observe_window monitor (labelled window_wait lu_kind) blocked)

(* A victim's queued waits die with it; their elapsed blocked time was real
   contention and is charged (aborted waits hurt p99 too). *)
let drop_waits_of monitor txn =
  Hashtbl.iter
    (fun ((waiter, resource) as key) (start, lu, holders) ->
      if waiter = txn then begin
        charge_wait monitor ~resource ~lu ~holders ~start;
        Hashtbl.remove monitor.waits key
      end)
    (Hashtbl.copy monitor.waits)

let finish_txn monitor txn =
  Hashtbl.remove monitor.active txn

let reset monitor =
  Registry.reset monitor.registry;
  Hashtbl.reset monitor.waits;
  Hashtbl.reset monitor.held;
  Hashtbl.reset monitor.active;
  Hashtbl.reset monitor.resources;
  Sketch.reset monitor.resource_sketch;
  Sketch.reset monitor.blocker_sketch;
  (* labelled hot_* gauges are registry keys; Registry.reset only zeroes
     them, so drop the stale series outright *)
  List.iter
    (fun (name, _gauge) ->
      if
        String.length name >= 4
        && String.sub name 0 4 = "hot_"
      then Registry.remove_gauge monitor.registry name)
    (Registry.gauges monitor.registry);
  monitor.breaches <- [];
  monitor.started <- monitor.now;
  monitor.seen <- false

let begin_run monitor ~label =
  locked monitor (fun () ->
      reset monitor;
      monitor.label <- Some label)

let count_abort monitor reason =
  Registry.incr monitor.registry ("aborts." ^ reason);
  mark_window monitor window_aborts

let handle_kind monitor kind =
  match kind with
  | Event.Txn_begin { txn } ->
    Hashtbl.replace monitor.active txn ()
  | Event.Txn_commit { txn } ->
    finish_txn monitor txn;
    mark_window monitor window_commits
  | Event.Txn_abort { txn; reason } ->
    finish_txn monitor txn;
    drop_waits_of monitor txn;
    (* deadlock/timeout victims already counted through their paired
       Victim_aborted/Timeout_abort events (same taxonomy as Profile) *)
    if
      reason <> "deadlock_victim" && reason <> "timeout_victim"
      && reason <> "contention_victim"
    then count_abort monitor reason
  | Event.Victim_aborted { txn; _ } ->
    count_abort monitor "deadlock";
    drop_waits_of monitor txn
  | Event.Timeout_abort { txn; _ } ->
    count_abort monitor "timeout";
    drop_waits_of monitor txn
  | Event.Lock_waited { txn; resource; lu; holders; _ } ->
    if not (Hashtbl.mem monitor.waits (txn, resource)) then
      Hashtbl.replace monitor.waits (txn, resource) (monitor.now, lu, holders)
  | Event.Lock_granted { txn; resource; lu; _ } ->
    (match Hashtbl.find_opt monitor.waits (txn, resource) with
     | Some (start, wait_lu, holders) ->
       Hashtbl.remove monitor.waits (txn, resource);
       let lu = match wait_lu with Some _ -> wait_lu | None -> lu in
       charge_wait monitor ~resource ~lu ~holders ~start
     | None -> ());
    Hashtbl.replace monitor.held (txn, resource) ();
    mark_window monitor window_grants;
    mark_lu monitor window_grants lu
  | Event.Lock_released { txn; resource; _ } ->
    Hashtbl.remove monitor.held (txn, resource)
  | Event.Deadlock_detected _ ->
    mark_window monitor window_deadlocks
  | Event.Slo_breach { rule; _ } ->
    let kept =
      monitor.breaches
      |> List.filteri (fun index _ -> index < breach_memory - 1)
    in
    monitor.breaches <- (monitor.now, rule) :: kept
  | Event.Run_meta { label } ->
    reset monitor;
    monitor.label <- Some label
  | Event.Admission { decision; _ } ->
    Registry.incr monitor.registry ("admission." ^ decision)
  | Event.Admission_limit { limit; inflight; queued; shed } ->
    set_gauge monitor gauge_admission limit;
    set_gauge monitor gauge_inflight inflight;
    set_gauge monitor gauge_queued queued;
    set_gauge monitor gauge_shed shed
  | Event.Breaker { to_state; _ } ->
    Registry.incr monitor.registry ("breaker." ^ to_state);
    Registry.set_gauge monitor.registry gauge_breaker (breaker_level to_state)
  | Event.Retry_denied _ ->
    Registry.incr monitor.registry "retry.denied";
    Registry.set_gauge monitor.registry gauge_retry_denied
      (float_of_int (Registry.counter monitor.registry "retry.denied"))
  | Event.Contention_abort { txn; _ } ->
    count_abort monitor "contention";
    drop_waits_of monitor txn
  | Event.Lock_requested _ | Event.Conversion _ | Event.Escalation _
  | Event.Deescalation _ | Event.Query_executed _ | Event.Sim_step _
  | Event.Waits_for _ ->
    ()

let handle monitor event =
  locked monitor (fun () ->
      let { Event.time; _ } = event in
      if not monitor.seen then begin
        monitor.seen <- true;
        monitor.started <- time
      end;
      if time > monitor.now then monitor.now <- time;
      List.iter
        (fun window -> Window.advance window ~now:monitor.now)
        monitor.live_windows;
      Collector.handle monitor.collector event;
      handle_kind monitor event.Event.kind;
      sync_gauges monitor)

(* ------------------------------------------------------------ snapshots *)

let elapsed monitor =
  if monitor.seen then Float.max 0.0 (monitor.now -. monitor.started) else 0.0

let commits monitor = Registry.counter monitor.registry "events.txn_commit"

let throughput monitor =
  let elapsed = elapsed monitor in
  if elapsed > 0.0 then float_of_int (commits monitor) /. elapsed else 0.0

let aborts monitor =
  Registry.counters monitor.registry
  |> List.filter_map (fun (name, value) ->
         match String.length name > 7 && String.sub name 0 7 = "aborts." with
         | true -> Some (String.sub name 7 (String.length name - 7), value)
         | false -> None)

let hot_resources ?(top = 10) monitor =
  Hashtbl.fold
    (fun resource stat accu -> (resource, stat) :: accu)
    monitor.resources []
  |> List.sort (fun (resource_a, a) (resource_b, b) ->
         match Float.compare b.r_blocked a.r_blocked with
         | 0 -> String.compare resource_a resource_b
         | order -> order)
  |> List.filteri (fun index _ -> index < top)

let hot_blockers ?(top = 10) monitor =
  Sketch.top ~n:top monitor.blocker_sketch
  |> List.map (fun (label, estimate, _error) -> (label, estimate))

let hot_k monitor = monitor.hot_k

let breaches monitor = List.rev monitor.breaches

let sync_sink monitor sink =
  Registry.set_gauge monitor.registry "obs_events_emitted"
    (float_of_int (Sink.emit_count sink));
  Registry.set_gauge monitor.registry "obs_events_dropped"
    (float_of_int (Sink.drop_count sink));
  Registry.set_gauge monitor.registry "obs_bytes_written"
    (float_of_int (Sink.bytes_written sink))
