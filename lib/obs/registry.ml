type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
  gauges : (string, Gauge.t) Hashtbl.t;
  windows : (string, Window.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; histograms = Hashtbl.create 8;
    gauges = Hashtbl.create 8; windows = Hashtbl.create 8 }

let counter_ref registry name =
  match Hashtbl.find_opt registry.counters name with
  | Some cell -> cell
  | None ->
    let cell = ref 0 in
    Hashtbl.replace registry.counters name cell;
    cell

let incr ?(by = 1) registry name =
  let cell = counter_ref registry name in
  cell := !cell + by

let counter registry name =
  match Hashtbl.find_opt registry.counters name with
  | Some cell -> !cell
  | None -> 0

let histogram registry name =
  match Hashtbl.find_opt registry.histograms name with
  | Some histogram -> histogram
  | None ->
    let histogram = Histogram.create () in
    Hashtbl.replace registry.histograms name histogram;
    histogram

let observe registry name value = Histogram.observe (histogram registry name) value

let find_histogram registry name = Hashtbl.find_opt registry.histograms name

let gauge registry name =
  match Hashtbl.find_opt registry.gauges name with
  | Some gauge -> gauge
  | None ->
    let gauge = Gauge.create () in
    Hashtbl.replace registry.gauges name gauge;
    gauge

let set_gauge registry name value = Gauge.set (gauge registry name) value
let add_gauge registry name delta = Gauge.add (gauge registry name) delta

let gauge_value registry name =
  match Hashtbl.find_opt registry.gauges name with
  | Some gauge -> Gauge.value gauge
  | None -> 0.0

let remove_gauge registry name = Hashtbl.remove registry.gauges name

(* The span is fixed at creation: a later [window] call with a different
   [?span] returns the existing window unchanged (same get-or-create
   contract as [histogram]). *)
let window ?(span = 1000.0) registry name =
  match Hashtbl.find_opt registry.windows name with
  | Some window -> window
  | None ->
    let window = Window.create ~span () in
    Hashtbl.replace registry.windows name window;
    window

let find_window registry name = Hashtbl.find_opt registry.windows name

let sorted_bindings table =
  Hashtbl.fold (fun name value accu -> (name, value) :: accu) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters registry =
  List.map (fun (name, cell) -> (name, !cell)) (sorted_bindings registry.counters)

let histograms registry = sorted_bindings registry.histograms
let gauges registry = sorted_bindings registry.gauges
let windows registry = sorted_bindings registry.windows

let reset registry =
  Hashtbl.iter (fun _name cell -> cell := 0) registry.counters;
  Hashtbl.iter (fun _name histogram -> Histogram.reset histogram) registry.histograms;
  Hashtbl.iter (fun _name gauge -> Gauge.reset gauge) registry.gauges;
  Hashtbl.iter (fun _name window -> Window.reset window) registry.windows

let row registry =
  List.map (fun (name, value) -> (name, float_of_int value)) (counters registry)
  @ List.map (fun (name, gauge) -> (name, Gauge.value gauge)) (gauges registry)
  @ List.concat_map
      (fun (name, histogram) -> Histogram.row ~prefix:name histogram)
      (histograms registry)
  @ List.concat_map
      (fun (name, window) -> Window.row ~prefix:name window)
      (windows registry)

(* Bucket cells ride next to the flat row as ["<name>_buckets"] keys, each a
   list of [lower_bound, count] pairs: quantile summaries stay greppable
   floats while plots can rebuild the full distribution. *)
let bucket_fields registry =
  List.filter_map
    (fun (name, histogram) ->
      match Histogram.bucket_counts histogram with
      | [] -> None
      | cells ->
        Some
          ( name ^ "_buckets",
            Json.List
              (List.map
                 (fun (lower, count) ->
                   Json.List [ Json.Float lower; Json.Int count ])
                 cells) ))
    (histograms registry)

let to_json registry =
  Json.Obj
    (List.map (fun (name, value) -> (name, Json.Float value)) (row registry)
     @ bucket_fields registry)

let pp formatter registry =
  Format.fprintf formatter "@[<v>";
  List.iter
    (fun (name, value) -> Format.fprintf formatter "%s: %d@," name value)
    (counters registry);
  List.iter
    (fun (name, gauge) ->
      Format.fprintf formatter "%s: %a@," name Gauge.pp gauge)
    (gauges registry);
  List.iter
    (fun (name, histogram) ->
      Format.fprintf formatter "%s: %a@," name Histogram.pp histogram)
    (histograms registry);
  List.iter
    (fun (name, window) ->
      Format.fprintf formatter "%s: %a@," name Window.pp window)
    (windows registry);
  Format.fprintf formatter "@]"
