(** Trace-based serializability certifier.

    Reconstructs the schedule from a JSONL lock-event trace (the
    [Lock_granted]/[Lock_released] stream is the access record) and
    certifies, per [Run_meta]-delimited run:

    - {b conflict-serializability} — a serialization graph over the
      committed transactions, one edge per pair of mode-incompatible
      access episodes on the same resource ordered by grant; the run is
      serializable iff the graph is acyclic, and a minimal counterexample
      cycle is reported with the exact accesses behind each edge;
    - {b 2PL membership} — no transaction acquires a new privilege after
      its first {e uncovered} release (a release is covered, and legal,
      when a strict ancestor is still held in a mode at least as strong —
      the escalation / rule-4' sharing pattern);
    - {b hierarchy compliance (rules 1–4')} — every grant on an inner
      unit is covered at grant time by a compatible intention (or
      supremum) mode on its path parent, and every [Escalation] event's
      declared mode is audited against the supremum matrix over the
      child locks it absorbed. Concurrently-held incompatible grants
      (a broken lock manager) are flagged as they happen.

    The checker works over mode {e strings}, so this module stays below
    [Lockmgr] in the dependency order; the mode algebra is injected via
    {!modes} and [Lockmgr.Lock_mode.certify_modes] provides the
    authoritative instance (compatibility and supremum matrices).

    Aborted attempts are excluded: the simulator restarts a victim under
    the same transaction id without a fresh [Txn_begin], so certification
    units are per-transaction {e attempts} delimited by
    [Victim_aborted]/[Timeout_abort]/[Contention_abort]/[Txn_abort]/
    [Txn_commit], and only the committed attempt's accesses enter the
    serialization graph. *)

type modes = {
  m_known : string list;  (** every mode string the algebra understands *)
  m_compatible : string -> string -> bool;
  m_sup : string -> string -> string;  (** least upper bound *)
  m_intention_for : string -> string;
      (** the intention a parent must carry before a child grant *)
  m_is_intention : string -> bool;
}

val default_modes : modes
(** The classical NL/IS/IX/S/SIX/X algebra, duplicated at string level so
    the certifier is usable without [Lockmgr]. [Lock_mode.certify_modes]
    is the same algebra exported by the lock manager itself (and the test
    suite asserts they agree pointwise). Unknown mode strings behave like
    X — maximally conflicting, so fabricated traces fail loudly. *)

(** One access episode: a transaction's hold on one resource, from first
    grant to release (or end of run), at the supremum of the modes
    granted over the episode. *)
type access = {
  a_txn : int;
  a_resource : string;
  mutable a_mode : string;
  a_granted_seq : int;  (** position in the run's event stream, from 1 *)
  a_granted_time : float;
  mutable a_released_seq : int option;  (** [None]: held at end of run *)
  mutable a_released_time : float;
}

(** A serialization-graph edge [e_from -> e_to], with how many
    conflicting episode pairs induced it and the earliest as witness. *)
type edge = {
  e_from : int;
  e_to : int;
  e_count : int;
  e_resource : string;  (** witness conflict: the resource ... *)
  e_first : access;  (** ... the earlier episode ... *)
  e_second : access;  (** ... and the later, incompatible one *)
}

type violation =
  | Unserializable of { cycle : int list; edges : edge list }
      (** a minimal conflict cycle; [edges] follows [cycle] order and
          wraps back to the head *)
  | Phase_violation of {
      txn : int;
      released : string;
      released_seq : int;
      acquire : access;
    }  (** acquired [acquire] after the first uncovered release *)
  | Concurrent_conflict of {
      resource : string;
      txn : int;
      mode : string;
      holder : int;
      holder_mode : string;
      seq : int;
      time : float;
    }  (** two incompatible grants held at once: lock-manager defect *)
  | Uncovered_grant of {
      txn : int;
      resource : string;
      mode : string;
      parent : string;
      parent_mode : string option;  (** [None]: parent not held at all *)
      seq : int;
      time : float;
    }  (** rules 1–4': the path parent lacked the required intention *)
  | Escalation_violation of {
      txn : int;
      node : string;
      mode : string;
      detail : string;
      seq : int;
      time : float;
    }

type certificate = {
  label : string option;
  events : int;
  committed : int;  (** transactions whose attempt committed *)
  aborted_attempts : int;
  graph_txns : int list;  (** committed transactions, ascending *)
  graph_edges : edge list;  (** the full serialization graph *)
  violations : violation list;  (** event order; cycle last *)
}

val certified : certificate -> bool
(** No violations: the run is conflict-serializable, two-phase and
    hierarchy-compliant. *)

type t
(** An online accumulator (attach {!handle} to a sink, then {!finish}). *)

val create : ?modes:modes -> unit -> t
val handle : t -> Event.t -> unit

val finish : ?label:string -> t -> certificate
(** Closes still-open episodes at the last seen timestamp, builds the
    serialization graph and assembles the certificate. *)

val of_events : ?modes:modes -> ?label:string -> Event.t list -> certificate

val of_trace : ?modes:modes -> Event.t list -> certificate list
(** Splits at [Run_meta] delimiters into one certificate per run (events
    before the first delimiter, if any, form an unlabelled certificate). *)

val pp_violation : Format.formatter -> violation -> unit
val to_json : certificate -> Json.t

val pp : Format.formatter -> certificate -> unit
(** Text rendering; expects a vertical box (see {!print}). *)

val print : out_channel -> certificate -> unit
