(** A metrics registry: named monotonic counters, log-scale histograms,
    gauges and sliding windows, with a uniform flat export.

    This replaces ad-hoc records of mutable ints as the substrate for
    run-time metrics; [Lockmgr.Lock_stats] and [Sim.Metrics] remain as thin
    record views over what a run produced, and both now serialize through
    the same [(string * float) list] row shape used here. Counters and
    histograms accumulate a whole run; gauges and windows carry the live
    state the Prometheus exposition and [colock top] render.

    Metric names may carry Prometheus-style labels inline —
    [{lu="HoLU"}] — which {!Expo} splits back into label sets; to the
    registry they are just distinct names. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 for a counter never incremented. *)

val observe : t -> string -> float -> unit
(** Records into the named histogram, creating it on first use. *)

val histogram : t -> string -> Histogram.t
(** Get-or-create (useful to pre-declare histograms so exports have stable
    keys even when nothing was observed). *)

val find_histogram : t -> string -> Histogram.t option

val gauge : t -> string -> Gauge.t
(** Get-or-create. *)

val set_gauge : t -> string -> float -> unit
val add_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float
(** 0 for a gauge never set. *)

val remove_gauge : t -> string -> unit
(** Drops the named gauge from the registry entirely (it disappears from
    exports). For bounded-cardinality label families — when a heavy-hitter
    sketch evicts a key, its labelled gauge must go too. No-op when the
    gauge does not exist. *)

val window : ?span:float -> t -> string -> Window.t
(** Get-or-create; [span] (default 1000 clock units) binds on first
    creation and is ignored on later lookups. *)

val find_window : t -> string -> Window.t option

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list
val gauges : t -> (string * Gauge.t) list
val windows : t -> (string * Window.t) list

val row : t -> (string * float) list
(** Counters (as floats), then gauge values, then each histogram expanded
    to [name_count/_mean/_p50/_p95/_p99/_max], then each window expanded to
    [name_count/_rate/_p50/_p95/_p99/_max]. *)

val bucket_fields : t -> (string * Json.t) list
(** One ["<name>_buckets"] field per histogram with data: a list of
    [[lower_bound, count]] pairs (see {!Histogram.bucket_counts}), for
    exports that want full distributions next to the flat {!row}. *)

val to_json : t -> Json.t
(** The flat {!row} plus {!bucket_fields}. *)

val reset : t -> unit
(** Zeroes every counter and gauge and clears every histogram and window —
    run isolation when one process compares several techniques against a
    single live registry. *)

val pp : Format.formatter -> t -> unit
