(** A metrics registry: named monotonic counters plus named log-scale
    histograms, with a uniform flat export.

    This replaces ad-hoc records of mutable ints as the substrate for
    run-time metrics; [Lockmgr.Lock_stats] and [Sim.Metrics] remain as thin
    record views over what a run produced, and both now serialize through
    the same [(string * float) list] row shape used here. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 for a counter never incremented. *)

val observe : t -> string -> float -> unit
(** Records into the named histogram, creating it on first use. *)

val histogram : t -> string -> Histogram.t
(** Get-or-create (useful to pre-declare histograms so exports have stable
    keys even when nothing was observed). *)

val find_histogram : t -> string -> Histogram.t option

val counters : t -> (string * int) list
(** Sorted by name. *)

val histograms : t -> (string * Histogram.t) list

val row : t -> (string * float) list
(** Counters (as floats) followed by each histogram expanded to
    [name_count/_mean/_p50/_p95/_p99/_max]. *)

val bucket_fields : t -> (string * Json.t) list
(** One ["<name>_buckets"] field per histogram with data: a list of
    [[lower_bound, count]] pairs (see {!Histogram.bucket_counts}), for
    exports that want full distributions next to the flat {!row}. *)

val to_json : t -> Json.t
(** The flat {!row} plus {!bucket_fields}. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
