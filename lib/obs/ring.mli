(** A bounded in-memory ring buffer.

    The default event sink for interactive use: pushes are O(1), memory is
    capped, and once full the oldest entries are overwritten — a crash or a
    long run keeps the most recent window instead of growing without
    bound. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
val length : 'a t -> int
val capacity : 'a t -> int

val pushed : 'a t -> int
(** Total pushes over the ring's lifetime (≥ [length]). *)

val dropped : 'a t -> int
(** Entries overwritten because the ring was full: [pushed - length]. *)

val to_list : 'a t -> 'a list
(** Oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit
val clear : 'a t -> unit
