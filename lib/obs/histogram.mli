(** Log-scale latency histograms.

    64 base-2 buckets cover [0, 2^62) with a terminal overflow bucket, so a
    recording costs one array increment regardless of the value's magnitude.
    Quantiles interpolate linearly inside the chosen bucket and clamp to the
    exact observed minimum/maximum, which keeps the degenerate cases honest:
    an empty histogram reports 0 everywhere, a single sample reports itself
    for every quantile, and overflow values report against the true max. *)

type t

val create : unit -> t
val reset : t -> unit

val observe : t -> float -> unit
(** Negative values clamp to 0 (durations cannot be negative). *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** [quantile h q] for [q] in [0, 1] (clamped). 0 when empty. *)

val bucket_counts : t -> (float * int) list
(** Non-empty buckets as [(inclusive lower bound, count)], in bucket order —
    enough to reconstruct the distribution downstream (plots, exports)
    without shipping 64 mostly-zero cells. *)

val row : ?prefix:string -> t -> (string * float) list
(** [count, mean, p50, p95, p99, max], each key optionally
    ["<prefix>_"]-qualified. *)

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
