(** A sliding-window instrument: rates and exact quantiles over the most
    recent [span] clock units (virtual simulator ticks, or seconds when the
    emitter stamps wall time).

    Where {!Histogram} accumulates a whole run, a window answers the live
    question — grants per tick {e right now}, the p99 lock wait of the last
    [span] ticks. The window is half-open: a sample stamped exactly [span]
    ago has aged out ([now - span < time <= now]). *)

type t

val create : ?limit:int -> span:float -> unit -> t
(** [limit] caps the live samples (default 8192); beyond it the oldest
    live sample is evicted and counted in {!shed}. Raises
    [Invalid_argument] when [span <= 0] or [limit <= 0]. *)

val span : t -> float

val last : t -> float
(** The latest clock value the window has seen (0 for a fresh window). *)

val shed : t -> int
(** Live samples evicted by the [limit] cap — visible backpressure, never
    silent. *)

val observe : t -> now:float -> float -> unit
(** Records [value] at time [now], advancing the window and expiring aged
    samples. *)

val mark : t -> now:float -> unit
(** [observe] with value 1.0 — for pure event-rate windows. *)

val advance : t -> now:float -> unit
(** Moves the window edge to [now] (if later) and expires aged samples
    without recording anything — call before reading when time passed
    silently. *)

val count : t -> int
val rate : t -> float
(** Live samples per clock unit: [count / span]. *)

val sum : t -> float
val mean : t -> float
val quantile : t -> float -> float
(** Exact quantile over the live samples (linear interpolation between
    order statistics; 0 when empty). *)

val max_value : t -> float
val reset : t -> unit

val row : ?prefix:string -> t -> (string * float) list
(** [name_count/_rate/_p50/_p95/_p99/_max], mirroring {!Histogram.row}. *)

val pp : Format.formatter -> t -> unit
