(** Causal blame attribution: who caused each blocked tick.

    Complements {!Profile} (which says *where* blocked time lands on the
    lock graph) with *who* it lands on: every wait span is segmented at
    blocker-set changes (a holder releasing the resource, a re-emitted
    [Lock_waited] reporting a fresh granted group) and each segment is
    split equally across its live blockers. Shares of one wait sum to the
    wait's duration, so blame over any partition equals {!Profile}'s
    [total_blocked] — conservation is exact up to float rounding of the
    equal splits, which is folded back into the largest share per wait.

    Works online ({!handle} as a sink handler, then {!finish}) and offline
    ({!of_trace} on a decoded JSONL trace). Traces whose [Lock_waited]
    events carry no [holders] (captured before blame existed) fall back to
    the integer [blockers] list, with modes reconstructed from grants. *)

type agent =
  | Txn of int  (** a blocking transaction *)
  | Queue
      (** the FIFO-fairness rule itself: nobody incompatible holds the
          resource, the request just queues behind earlier waiters *)

val compare_agent : agent -> agent -> int
(** Transactions ascending by id, [Queue] last. *)

val agent_label : agent -> string
(** ["T7"] or ["queue"]. *)

type outcome = Granted | Aborted of string | Unfinished

type share = {
  sh_agent : agent;
  sh_mode : string option;
      (** the mode the blocker held when first charged; [None] when the
          trace never revealed it *)
  sh_blame : float;
}

type wait = {
  w_txn : int;
  w_resource : string;
  w_mode : string;
  w_lu : Event.lu option;
  w_start : float;
  w_finish : float;
  w_outcome : outcome;
  w_shares : share list;
      (** blame descending (ties by agent); sums to the wait's duration *)
}

val duration : wait -> float

type txn_blame = {
  x_txn : int;
  x_begin : float option;
  x_end : (string * float) option;
      (** [("commit" | abort reason, time)]; [None] when still running *)
  x_waits : wait list;  (** stream order *)
  x_blocked : float;  (** own blocked time: sum of [x_waits] durations *)
  x_caused : float;  (** blame charged to this transaction by others *)
}

type blocker_stat = { k_agent : agent; k_blame : float; k_waits : int }

type report = {
  label : string option;
  events : int;
  total_blocked : float;
  total_blamed : float;
      (** sum of every share; equals [total_blocked] (conservation) *)
  wait_count : int;
  waits : wait list;  (** stream order *)
  txns : txn_blame list;  (** txn ascending *)
  blockers : blocker_stat list;  (** blame descending, ties by agent *)
}

type t
(** An online accumulator. *)

val create : unit -> t

val handle : t -> Event.t -> unit
(** Sink-handler form: attach with {!Sink.attach}. *)

val finish : ?label:string -> t -> report
(** Closes still-open waits as [Unfinished] at the last seen timestamp. *)

val of_events : ?label:string -> Event.t list -> report

val of_trace : Event.t list -> report list
(** Splits at [Run_meta] delimiters exactly as {!Profile.of_trace}. *)

val to_json : report -> Json.t

val pp : ?top:int -> Format.formatter -> report -> unit
(** Report summary with the top blockers table (default top 10). Expects a
    vertical box (see {!print}). *)

val explain : Format.formatter -> report -> txn:int -> unit
(** One transaction's span tree: begin, each wait with its per-holder blame
    shares, commit/abort — the payload of [colock explain --txn]. *)

val print : ?top:int -> out_channel -> report -> unit
val print_explain : out_channel -> report -> txn:int -> unit
