(** An event sink: a clock plus a list of pluggable handlers.

    Instrumented components take an optional sink ([?obs]); with no sink (or
    no handlers) emission short-circuits to a list-match, so un-instrumented
    runs pay nothing and stay byte-for-byte deterministic.

    The clock stamps events at emission time. It is mutable on purpose: the
    discrete-event simulator re-points it at the virtual clock of the run,
    so events emitted deep inside the lock table carry simulation ticks
    rather than wall time. *)

type t

val create : ?clock:(unit -> float) -> (Event.t -> unit) list -> t
(** Default clock is the constant 0 (callers that care pass their own, e.g.
    [Unix.gettimeofday]). *)

val null : unit -> t
(** A sink with no handlers: emission is a no-op. *)

val attach : t -> (Event.t -> unit) -> unit
val set_clock : t -> (unit -> float) -> unit
val now : t -> float

val emit : t -> Event.kind -> unit
(** Stamps the event with the sink's clock and fans out to every handler. *)

val emit_at : t -> time:float -> Event.kind -> unit
(** Like {!emit} with an explicit timestamp. *)

val filter : (Event.t -> bool) -> (Event.t -> unit) -> Event.t -> unit
(** [filter keep handler] wraps a handler so it only sees events where
    [keep] holds — e.g. drop [Sim_step] noise before a ring or JSONL sink
    floods on a long soak. *)

val sample : every:int -> (Event.t -> unit) -> Event.t -> unit
(** [sample ~every handler] passes every [every]-th event (the first one
    always passes). Raises [Invalid_argument] when [every <= 0]. Compose
    with {!filter} to sample within one event class. *)

val not_sim_step : Event.t -> bool
(** Predicate for {!filter}: everything but [Sim_step]. *)

val to_ring : Event.t Ring.t -> Event.t -> unit
(** Handler that appends to a bounded ring buffer. *)

val memory :
  ?clock:(unit -> float) -> ?capacity:int -> ?keep:(Event.t -> bool) ->
  unit -> t * Event.t Ring.t
(** A sink backed by a fresh ring buffer (default capacity 65536). [?keep]
    filters what reaches the ring (see {!filter}); everything still reaches
    handlers attached later with {!attach}. *)
