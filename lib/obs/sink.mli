(** An event sink: a clock plus a list of pluggable handlers.

    Instrumented components take an optional sink ([?obs]); with no sink (or
    no handlers) emission short-circuits to a list-match, so un-instrumented
    runs pay nothing and stay byte-for-byte deterministic.

    The clock stamps events at emission time. It is mutable on purpose: the
    discrete-event simulator re-points it at the virtual clock of the run,
    so events emitted deep inside the lock table carry simulation ticks
    rather than wall time.

    Every sink self-accounts: events emitted, events dropped by its
    filter/sample stages (and ring overwrites), bytes written by JSONL
    handlers wired to its {!meter}. [Monitor] surfaces these as [obs_*]
    meta-metrics, so the observability pipeline's own backpressure is never
    silent. *)

type meter = {
  mutable m_emitted : int;  (** events fanned out to at least one handler *)
  mutable m_dropped : int;  (** events a filter/sample stage discarded *)
  mutable m_bytes : int;  (** bytes written by handlers that report here *)
}

type t

val create : ?clock:(unit -> float) -> (Event.t -> unit) list -> t
(** Default clock is the constant 0 (callers that care pass their own, e.g.
    [Unix.gettimeofday]). *)

val null : unit -> t
(** A sink with no handlers: emission is a no-op. *)

val attach : t -> (Event.t -> unit) -> unit
val set_clock : t -> (unit -> float) -> unit
val now : t -> float

val meter : t -> meter
(** The sink's own accounting cell — pass it to {!filter}/{!sample} or
    [Jsonl.handler] so their drops and bytes land here. *)

val emit_count : t -> int
(** Events emitted through this sink (emissions with no handlers attached
    are not counted — they never left the caller). *)

val drop_count : t -> int
(** Events dropped before reaching a terminal handler: filter/sample
    discards recorded in the {!meter} plus every registered drop source
    (e.g. ring-buffer overwrites — see {!memory}). *)

val bytes_written : t -> int
(** Bytes reported to the {!meter} by writing handlers. *)

val add_drop_source : t -> (unit -> int) -> unit
(** Registers an external drop counter folded into {!drop_count}. *)

val emit : t -> Event.kind -> unit
(** Stamps the event with the sink's clock and fans out to every handler. *)

val emit_at : t -> time:float -> Event.kind -> unit
(** Like {!emit} with an explicit timestamp. *)

val filter :
  ?meter:meter -> (Event.t -> bool) -> (Event.t -> unit) -> Event.t -> unit
(** [filter keep handler] wraps a handler so it only sees events where
    [keep] holds — e.g. drop [Sim_step] noise before a ring or JSONL sink
    floods on a long soak. Discards are counted in [?meter] when given. *)

val sample :
  ?meter:meter -> seed:int -> every:int -> (Event.t -> unit) -> Event.t ->
  unit
(** [sample ~seed ~every handler] passes exactly one event out of every
    consecutive [every], at a stride-local offset drawn from a PRNG seeded
    with [seed] at construction — deterministic for a fixed seed, immune to
    aliasing with periodic event patterns. Raises [Invalid_argument] when
    [every <= 0]. Compose with {!filter} to sample within one event
    class. Discards are counted in [?meter] when given. *)

val not_sim_step : Event.t -> bool
(** Predicate for {!filter}: everything but [Sim_step]. *)

val to_ring : Event.t Ring.t -> Event.t -> unit
(** Handler that appends to a bounded ring buffer. *)

val memory :
  ?clock:(unit -> float) -> ?capacity:int -> ?keep:(Event.t -> bool) ->
  unit -> t * Event.t Ring.t
(** A sink backed by a fresh ring buffer (default capacity 65536). [?keep]
    filters what reaches the ring (see {!filter}); everything still reaches
    handlers attached later with {!attach}. Filter discards and ring
    overwrites both show in the sink's {!drop_count}. *)
