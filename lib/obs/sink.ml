type t = {
  mutable clock : unit -> float;
  mutable handlers : (Event.t -> unit) list;
}

let default_clock () = 0.0

let create ?(clock = default_clock) handlers = { clock; handlers }
let null () = create []

let attach sink handler = sink.handlers <- sink.handlers @ [ handler ]
let set_clock sink clock = sink.clock <- clock
let now sink = sink.clock ()

let emit_at sink ~time kind =
  match sink.handlers with
  | [] -> ()
  | handlers ->
    let event = { Event.time; kind } in
    List.iter (fun handler -> handler event) handlers

let emit sink kind =
  match sink.handlers with
  | [] -> ()
  | _ :: _ -> emit_at sink ~time:(sink.clock ()) kind

let filter keep handler = fun event -> if keep event then handler event

let sample ~every handler =
  if every <= 0 then invalid_arg "Sink.sample: every must be positive";
  let count = ref 0 in
  fun event ->
    let index = !count in
    count := index + 1;
    if index mod every = 0 then handler event

let not_sim_step event =
  match event.Event.kind with Event.Sim_step _ -> false | _ -> true

let to_ring ring event = Ring.push ring event

let memory ?clock ?(capacity = 65536) ?keep () =
  let ring = Ring.create ~capacity in
  let handler =
    match keep with
    | None -> to_ring ring
    | Some keep -> filter keep (to_ring ring)
  in
  (create ?clock [ handler ], ring)
