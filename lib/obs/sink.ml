type t = {
  mutable clock : unit -> float;
  mutable handlers : (Event.t -> unit) list;
}

let default_clock () = 0.0

let create ?(clock = default_clock) handlers = { clock; handlers }
let null () = create []

let attach sink handler = sink.handlers <- sink.handlers @ [ handler ]
let set_clock sink clock = sink.clock <- clock
let now sink = sink.clock ()

let emit_at sink ~time kind =
  match sink.handlers with
  | [] -> ()
  | handlers ->
    let event = { Event.time; kind } in
    List.iter (fun handler -> handler event) handlers

let emit sink kind =
  match sink.handlers with
  | [] -> ()
  | _ :: _ -> emit_at sink ~time:(sink.clock ()) kind

let to_ring ring event = Ring.push ring event

let memory ?clock ?(capacity = 65536) () =
  let ring = Ring.create ~capacity in
  (create ?clock [ to_ring ring ], ring)
