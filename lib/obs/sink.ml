type meter = {
  mutable m_emitted : int;
  mutable m_dropped : int;
  mutable m_bytes : int;
}

type t = {
  mutable clock : unit -> float;
  mutable handlers : (Event.t -> unit) list;
  meter : meter;
  mutable drop_sources : (unit -> int) list;
}

let default_clock () = 0.0

let create ?(clock = default_clock) handlers =
  { clock; handlers; meter = { m_emitted = 0; m_dropped = 0; m_bytes = 0 };
    drop_sources = [] }

let null () = create []

let attach sink handler = sink.handlers <- sink.handlers @ [ handler ]
let set_clock sink clock = sink.clock <- clock
let now sink = sink.clock ()

let meter sink = sink.meter
let emit_count sink = sink.meter.m_emitted
let bytes_written sink = sink.meter.m_bytes

let add_drop_source sink count =
  sink.drop_sources <- sink.drop_sources @ [ count ]

let drop_count sink =
  List.fold_left
    (fun accu count -> accu + count ())
    sink.meter.m_dropped sink.drop_sources

let emit_at sink ~time kind =
  match sink.handlers with
  | [] -> ()
  | handlers ->
    sink.meter.m_emitted <- sink.meter.m_emitted + 1;
    let event = { Event.time; kind } in
    List.iter (fun handler -> handler event) handlers

let emit sink kind =
  match sink.handlers with
  | [] -> ()
  | _ :: _ -> emit_at sink ~time:(sink.clock ()) kind

let drop meter =
  match meter with
  | None -> ()
  | Some meter -> meter.m_dropped <- meter.m_dropped + 1

let filter ?meter keep handler =
  fun event -> if keep event then handler event else drop meter

(* Stratified sampling driven by an explicit seeded PRNG (a 64-bit LCG, the
   MMIX constants): each consecutive stride of [every] events passes exactly
   one, at a stride-local offset drawn from the PRNG.  The same seed always
   selects the same events — runs stay reproducible — while the offsets
   move around so periodic event patterns cannot alias with the stride. *)
let sample ?meter ~seed ~every handler =
  if every <= 0 then invalid_arg "Sink.sample: every must be positive";
  let state = ref (Int64.of_int seed) in
  let next_offset () =
    state :=
      Int64.add
        (Int64.mul !state 6364136223846793005L)
        1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical !state 33) mod every
  in
  let position = ref 0 in
  let chosen = ref (next_offset ()) in
  fun event ->
    let passes = !position = !chosen in
    position := !position + 1;
    if !position >= every then begin
      position := 0;
      chosen := next_offset ()
    end;
    if passes then handler event else drop meter

let not_sim_step event =
  match event.Event.kind with Event.Sim_step _ -> false | _ -> true

let to_ring ring event = Ring.push ring event

let memory ?clock ?(capacity = 65536) ?keep () =
  let ring = Ring.create ~capacity in
  let sink =
    match keep with
    | None -> create ?clock [ to_ring ring ]
    | Some keep ->
      let sink = create ?clock [] in
      attach sink (filter ~meter:sink.meter keep (to_ring ring));
      sink
  in
  (* entries the full ring overwrote are drops too: backpressure stays
     visible through [drop_count] instead of silently shrinking captures *)
  add_drop_source sink (fun () -> Ring.dropped ring);
  (sink, ring)
