(* Prometheus text exposition (format version 0.0.4) over a registry
   snapshot.

   Registry metric names may carry a label block inline — the monitor
   registers per-granule instruments as [window.lock_wait{lu="HoLU"}] — and
   this renderer splits the block back off, so every LU-labelled variant
   joins its base family under one # TYPE header.  Mapping:

     counter    colock_<name>_total               TYPE counter
     gauge      colock_<name>                     TYPE gauge
     histogram  colock_<name>{quantile="..."}     TYPE summary  (+_sum/_count)
     window     colock_<name>_rate/_p50/.../_count  TYPE gauge  (point-in-time)

   Windows are sliding, not cumulative, so they expose as plain gauges with
   quantile suffixes rather than as summaries. *)

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let sanitize name =
  let buffer = Buffer.create (String.length name) in
  String.iteri
    (fun index char ->
      match char with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buffer char
      | '0' .. '9' ->
        (* a leading digit is kept but escaped, not erased — "9lives" and
           "8lives" must stay distinct families *)
        if index = 0 then Buffer.add_char buffer '_';
        Buffer.add_char buffer char
      | _ -> Buffer.add_char buffer '_')
    name;
  if Buffer.length buffer = 0 then "_" else Buffer.contents buffer

(* ["window.lock_wait{lu=\"HoLU\"}"] -> (["window_lock_wait"], [{lu="HoLU"}]) *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (sanitize name, "")
  | Some brace ->
    ( sanitize (String.sub name 0 brace),
      String.sub name brace (String.length name - brace) )

let number value =
  if Float.is_nan value then "NaN"
  else if value = Float.infinity then "+Inf"
  else if value = Float.neg_infinity then "-Inf"
  else if Float.is_integer value && Float.abs value < 1e15 then
    Printf.sprintf "%.0f" value
  else Printf.sprintf "%.6g" value

(* Merge extra label pairs (e.g. quantile) into an existing label block. *)
let with_labels labels extra =
  match labels, extra with
  | "", [] -> ""
  | "", extra ->
    "{"
    ^ String.concat ","
        (List.map (fun (key, value) -> Printf.sprintf "%s=\"%s\"" key value) extra)
    ^ "}"
  | labels, [] -> labels
  | labels, extra ->
    let inner = String.sub labels 1 (String.length labels - 2) in
    "{" ^ inner ^ ","
    ^ String.concat ","
        (List.map (fun (key, value) -> Printf.sprintf "%s=\"%s\"" key value) extra)
    ^ "}"

type family = {
  f_name : string;  (* fully qualified, sans label block *)
  f_type : string;
  f_samples : (string * string * float) list;
      (* (suffix, label block, value) *)
}

let families ?(namespace = "colock") registry =
  let qualify base = namespace ^ "_" ^ base in
  let table : (string, family) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let add ~name ~type_ samples =
    let base, labels = split_labels name in
    let f_name = qualify base in
    let samples =
      List.map (fun (suffix, extra, value) ->
          (suffix, with_labels labels extra, value))
        samples
    in
    match Hashtbl.find_opt table f_name with
    | Some family ->
      Hashtbl.replace table f_name
        { family with f_samples = family.f_samples @ samples }
    | None ->
      Hashtbl.replace table f_name
        { f_name; f_type = type_; f_samples = samples };
      order := f_name :: !order
  in
  List.iter
    (fun (name, value) ->
      add ~name:(name ^ "_total") ~type_:"counter"
        [ ("", [], float_of_int value) ])
    (Registry.counters registry);
  List.iter
    (fun (name, gauge) ->
      add ~name ~type_:"gauge" [ ("", [], Gauge.value gauge) ])
    (Registry.gauges registry);
  List.iter
    (fun (name, histogram) ->
      add ~name ~type_:"summary"
        [ ("", [ ("quantile", "0.5") ], Histogram.quantile histogram 0.50);
          ("", [ ("quantile", "0.95") ], Histogram.quantile histogram 0.95);
          ("", [ ("quantile", "0.99") ], Histogram.quantile histogram 0.99);
          ("_sum", [], Histogram.sum histogram);
          ("_count", [], float_of_int (Histogram.count histogram)) ])
    (Registry.histograms registry);
  List.iter
    (fun (name, window) ->
      add ~name ~type_:"gauge"
        [ ("_count", [], float_of_int (Window.count window));
          ("_rate", [], Window.rate window);
          ("_p50", [], Window.quantile window 0.50);
          ("_p95", [], Window.quantile window 0.95);
          ("_p99", [], Window.quantile window 0.99);
          ("_max", [], Window.max_value window) ])
    (Registry.windows registry);
  List.rev !order
  |> List.map (fun f_name -> Hashtbl.find table f_name)
  |> List.sort (fun a b -> String.compare a.f_name b.f_name)

let render ?namespace registry =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun family ->
      Buffer.add_string buffer
        (Printf.sprintf "# TYPE %s %s\n" family.f_name family.f_type);
      List.iter
        (fun (suffix, labels, value) ->
          (* the suffix lands between the family name and its labels:
             colock_lock_wait_sum{lu="HoLU"} *)
          Buffer.add_string buffer
            (Printf.sprintf "%s%s%s %s\n" family.f_name suffix labels
               (number value)))
        family.f_samples)
    (families ?namespace registry);
  Buffer.contents buffer
