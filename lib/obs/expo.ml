(* Prometheus text exposition (format version 0.0.4) over a registry
   snapshot.

   Registry metric names may carry a label block inline — the monitor
   registers per-granule instruments as [window.lock_wait{lu="HoLU"}] — and
   this renderer splits the block back off, so every LU-labelled variant
   joins its base family under one # TYPE header.  Mapping:

     counter    colock_<name>_total               TYPE counter
     gauge      colock_<name>                     TYPE gauge
     histogram  colock_<name>{quantile="..."}     TYPE summary  (+_sum/_count)
     window     colock_<name>_rate/_p50/.../_count  TYPE gauge  (point-in-time)

   Windows are sliding, not cumulative, so they expose as plain gauges with
   quantile suffixes rather than as summaries. *)

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let sanitize name =
  let buffer = Buffer.create (String.length name) in
  String.iteri
    (fun index char ->
      match char with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buffer char
      | '0' .. '9' ->
        (* a leading digit is kept but escaped, not erased — "9lives" and
           "8lives" must stay distinct families *)
        if index = 0 then Buffer.add_char buffer '_';
        Buffer.add_char buffer char
      | _ -> Buffer.add_char buffer '_')
    name;
  if Buffer.length buffer = 0 then "_" else Buffer.contents buffer

(* Label values may contain arbitrary bytes (scenario names become label
   values); the text exposition 0.0.4 spec requires backslash, double-quote
   and newline escaped inside quoted values. *)
let escape_label_value value =
  let buffer = Buffer.create (String.length value + 8) in
  String.iter
    (fun char ->
      match char with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '"' -> Buffer.add_string buffer "\\\""
      | '\n' -> Buffer.add_string buffer "\\n"
      | char -> Buffer.add_char buffer char)
    value;
  Buffer.contents buffer

let labelled name pairs =
  match pairs with
  | [] -> name
  | pairs ->
    name ^ "{"
    ^ String.concat ","
        (List.map
           (fun (key, value) ->
             Printf.sprintf "%s=\"%s\"" (sanitize key)
               (escape_label_value value))
           pairs)
    ^ "}"

(* Inverse of {!labelled} on one "{k=\"v\",...}" block: unescapes values, so
   a later render re-escapes exactly once. [None] on malformed blocks — the
   renderer then passes the block through verbatim (legacy behavior). *)
let parse_label_block block =
  let length = String.length block in
  if length < 2 || block.[0] <> '{' || block.[length - 1] <> '}' then None
  else begin
    let pairs = ref [] in
    let index = ref 1 in
    let stop = length - 1 in
    let malformed = ref false in
    while (not !malformed) && !index < stop do
      (* KEY= *)
      let key_start = !index in
      while !index < stop && block.[!index] <> '=' do incr index done;
      if !index >= stop || !index = key_start then malformed := true
      else begin
        let key = String.sub block key_start (!index - key_start) in
        incr index;
        if !index >= stop || block.[!index] <> '"' then malformed := true
        else begin
          (* "VALUE" with backslash escapes *)
          incr index;
          let value = Buffer.create 16 in
          let closed = ref false in
          while (not !closed) && (not !malformed) && !index < stop do
            match block.[!index] with
            | '"' ->
              closed := true;
              incr index
            | '\\' when !index + 1 < stop ->
              (match block.[!index + 1] with
               | '\\' -> Buffer.add_char value '\\'
               | '"' -> Buffer.add_char value '"'
               | 'n' -> Buffer.add_char value '\n'
               | other ->
                 Buffer.add_char value '\\';
                 Buffer.add_char value other);
              index := !index + 2
            | char ->
              Buffer.add_char value char;
              incr index
          done;
          if not !closed then malformed := true
          else begin
            pairs := (key, Buffer.contents value) :: !pairs;
            if !index < stop then
              if block.[!index] = ',' then incr index else malformed := true
          end
        end
      end
    done;
    if !malformed then None else Some (List.rev !pairs)
  end

(* Parsed label pairs when the block is well-formed; a raw passthrough
   otherwise. *)
type labels = Pairs of (string * string) list | Raw of string

(* ["window.lock_wait{lu=\"HoLU\"}"] -> ("window_lock_wait", Pairs [...]) *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (sanitize name, Pairs [])
  | Some brace ->
    let block = String.sub name brace (String.length name - brace) in
    ( sanitize (String.sub name 0 brace),
      match parse_label_block block with
      | Some pairs -> Pairs pairs
      | None -> Raw block )

let number value =
  if Float.is_nan value then "NaN"
  else if value = Float.infinity then "+Inf"
  else if value = Float.neg_infinity then "-Inf"
  else if Float.is_integer value && Float.abs value < 1e15 then
    Printf.sprintf "%.0f" value
  else Printf.sprintf "%.6g" value

(* Merge extra label pairs (e.g. quantile) into an existing label set and
   render the block, escaping every value. *)
let with_labels labels extra =
  match labels, extra with
  | Pairs [], [] -> ""
  | Pairs pairs, extra ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (key, value) ->
             Printf.sprintf "%s=\"%s\"" (sanitize key)
               (escape_label_value value))
           (pairs @ extra))
    ^ "}"
  | Raw block, [] -> block
  | Raw block, extra ->
    let inner = String.sub block 1 (String.length block - 2) in
    "{" ^ inner ^ ","
    ^ String.concat ","
        (List.map
           (fun (key, value) ->
             Printf.sprintf "%s=\"%s\"" (sanitize key)
               (escape_label_value value))
           extra)
    ^ "}"

type family = {
  f_name : string;  (* fully qualified, sans label block *)
  f_type : string;
  f_samples : (string * string * float) list;
      (* (suffix, label block, value) *)
}

let families ?(namespace = "colock") registry =
  let qualify base = namespace ^ "_" ^ base in
  let table : (string, family) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let add ~name ~type_ samples =
    let base, labels = split_labels name in
    let f_name = qualify base in
    let samples =
      List.map (fun (suffix, extra, value) ->
          (suffix, with_labels labels extra, value))
        samples
    in
    match Hashtbl.find_opt table f_name with
    | Some family ->
      Hashtbl.replace table f_name
        { family with f_samples = family.f_samples @ samples }
    | None ->
      Hashtbl.replace table f_name
        { f_name; f_type = type_; f_samples = samples };
      order := f_name :: !order
  in
  List.iter
    (fun (name, value) ->
      add ~name:(name ^ "_total") ~type_:"counter"
        [ ("", [], float_of_int value) ])
    (Registry.counters registry);
  List.iter
    (fun (name, gauge) ->
      add ~name ~type_:"gauge" [ ("", [], Gauge.value gauge) ])
    (Registry.gauges registry);
  List.iter
    (fun (name, histogram) ->
      add ~name ~type_:"summary"
        [ ("", [ ("quantile", "0.5") ], Histogram.quantile histogram 0.50);
          ("", [ ("quantile", "0.95") ], Histogram.quantile histogram 0.95);
          ("", [ ("quantile", "0.99") ], Histogram.quantile histogram 0.99);
          ("_sum", [], Histogram.sum histogram);
          ("_count", [], float_of_int (Histogram.count histogram)) ])
    (Registry.histograms registry);
  List.iter
    (fun (name, window) ->
      add ~name ~type_:"gauge"
        [ ("_count", [], float_of_int (Window.count window));
          ("_rate", [], Window.rate window);
          ("_p50", [], Window.quantile window 0.50);
          ("_p95", [], Window.quantile window 0.95);
          ("_p99", [], Window.quantile window 0.99);
          ("_max", [], Window.max_value window) ])
    (Registry.windows registry);
  List.rev !order
  |> List.map (fun f_name -> Hashtbl.find table f_name)
  |> List.sort (fun a b -> String.compare a.f_name b.f_name)

let render ?namespace registry =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun family ->
      Buffer.add_string buffer
        (Printf.sprintf "# TYPE %s %s\n" family.f_name family.f_type);
      List.iter
        (fun (suffix, labels, value) ->
          (* the suffix lands between the family name and its labels:
             colock_lock_wait_sum{lu="HoLU"} *)
          Buffer.add_string buffer
            (Printf.sprintf "%s%s%s %s\n" family.f_name suffix labels
               (number value)))
        family.f_samples)
    (families ?namespace registry);
  Buffer.contents buffer
