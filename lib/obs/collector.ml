(* Event-driven metrics: the collector is itself a sink handler.  It counts
   every event kind and pairs the span-shaped ones into latency histograms:

     lock_wait      Lock_waited(t0)    -> Lock_granted(t1)   same txn+resource
     grant_latency  Lock_requested(t0) -> Lock_granted(t1)   same txn+resource
     txn_response   Txn_begin(t0)      -> Txn_commit(t1)     same txn

   Histograms are pre-declared so exports carry stable keys even for runs
   with no waits. *)

let wait_histogram = "lock_wait"
let grant_histogram = "grant_latency"
let response_histogram = "txn_response"

type t = {
  registry : Registry.t;
  waits : (int * string, float) Hashtbl.t;
  requests : (int * string, float) Hashtbl.t;
  begins : (int, float) Hashtbl.t;
}

let create ?registry () =
  let registry =
    match registry with Some registry -> registry | None -> Registry.create ()
  in
  let (_ : Histogram.t) = Registry.histogram registry wait_histogram in
  let (_ : Histogram.t) = Registry.histogram registry grant_histogram in
  let (_ : Histogram.t) = Registry.histogram registry response_histogram in
  { registry; waits = Hashtbl.create 64; requests = Hashtbl.create 64;
    begins = Hashtbl.create 64 }

let registry collector = collector.registry

let close_span table key finish record =
  match Hashtbl.find_opt table key with
  | Some start ->
    Hashtbl.remove table key;
    record (Float.max 0.0 (finish -. start))
  | None -> ()

let handle collector event =
  let { Event.time; kind } = event in
  Registry.incr collector.registry ("events." ^ Event.name kind);
  match kind with
  | Event.Lock_requested { txn; resource; _ } ->
    Hashtbl.replace collector.requests (txn, resource) time
  | Event.Lock_waited { txn; resource; _ } ->
    if not (Hashtbl.mem collector.waits (txn, resource)) then
      Hashtbl.replace collector.waits (txn, resource) time
  | Event.Lock_granted { txn; resource; _ } ->
    close_span collector.waits (txn, resource) time
      (Registry.observe collector.registry wait_histogram);
    close_span collector.requests (txn, resource) time
      (Registry.observe collector.registry grant_histogram)
  | Event.Txn_begin { txn } ->
    if not (Hashtbl.mem collector.begins txn) then
      Hashtbl.replace collector.begins txn time
  | Event.Txn_commit { txn } ->
    close_span collector.begins txn time
      (Registry.observe collector.registry response_histogram)
  | Event.Txn_abort { txn; _ } ->
    (* final abort: the transaction will not commit; drop its begin mark
       (victim restarts keep the original mark — they re-begin with the
       same id and [Txn_begin] keeps the first timestamp) *)
    Hashtbl.remove collector.begins txn
  | Event.Victim_aborted { txn; _ } | Event.Timeout_abort { txn; _ } ->
    (* its queued waits died with it *)
    Hashtbl.iter
      (fun (waiter, resource) _start ->
        if waiter = txn then Hashtbl.remove collector.waits (waiter, resource))
      (Hashtbl.copy collector.waits)
  | Event.Contention_abort { txn; _ } ->
    (* a restart-policy victim: same treatment as deadlock/timeout victims *)
    Hashtbl.iter
      (fun (waiter, resource) _start ->
        if waiter = txn then Hashtbl.remove collector.waits (waiter, resource))
      (Hashtbl.copy collector.waits)
  | Event.Lock_released _ | Event.Conversion _ | Event.Escalation _
  | Event.Deescalation _ | Event.Deadlock_detected _ | Event.Query_executed _
  | Event.Sim_step _ | Event.Waits_for _ | Event.Run_meta _
  | Event.Slo_breach _ | Event.Admission _ | Event.Admission_limit _
  | Event.Breaker _ | Event.Retry_denied _ ->
    ()
