(* The differential profiler: two contention profiles in, one attribution
   report out — *where* the wait-time delta between them lives.

   Each partition is rebuilt from the raw wait spans (not from the
   profiles' own aggregates) so that it genuinely partitions blocked time:

     levels     span duration on its LU kind ("untagged" when bare)
     depths     span duration on its graph depth, "untagged" bucket kept
     resources  span duration on its resource
     cells      duration split equally across the distinct holder modes
                (or the "queue" pseudo-holder) — Profile's own matrix
                charges each cell in full, which cannot conserve a delta
     blockers   duration split equally across the blocking transactions
                (or "queue"), as in Blame's equal-split discipline

   Equal splits are inexact in floating point; the per-span residue is
   folded into the first (sorted) share, and the per-partition residue
   between [sum of deltas] and [cand_total - base_total] is folded into
   the largest-|delta| entry, iterated to a fixed point. The result: every
   partition's deltas sum exactly to the total delta, and anything present
   on one side only is kept as explicit drift. *)

type status = Both | Only_base | Only_cand

type entry = {
  e_key : string;
  e_base : float;
  e_cand : float;
  e_delta : float;
  e_base_waits : int;
  e_cand_waits : int;
  e_status : status;
}

type report = {
  label : string option;
  base_total : float;
  cand_total : float;
  delta : float;
  base_waits : int;
  cand_waits : int;
  levels : entry list;
  depths : entry list;
  resources : entry list;
  cells : entry list;
  blockers : entry list;
}

(* ------------------------------------------------------------- tallying *)

module String_map = Map.Make (String)

(* [duration] split equally across the (sorted, distinct) [keys]; the
   float residue of the equal split lands on the first key so the shares
   sum to [duration] exactly. *)
let equal_split duration keys =
  match List.sort_uniq String.compare keys with
  | [] -> []
  | [ key ] -> [ (key, duration) ]
  | first :: rest as keys ->
    let width = duration /. float_of_int (List.length keys) in
    let tail_total =
      List.fold_left (fun total _key -> total +. width) 0.0 rest
    in
    (first, duration -. tail_total) :: List.map (fun key -> (key, width)) rest

let level_key (span : Profile.span) =
  match span.Profile.s_lu with
  | Some { Event.lu_kind; _ } -> lu_kind
  | None -> "untagged"

let depth_key (span : Profile.span) =
  match span.Profile.s_lu with
  | Some { Event.lu_depth; _ } -> string_of_int lu_depth
  | None -> "untagged"

let cell_keys (span : Profile.span) =
  let holders =
    match span.Profile.s_holder_modes with
    | [] -> [ "queue" ]
    | modes -> modes
  in
  List.map (fun holder -> span.Profile.s_mode ^ "<-" ^ holder) holders

let blocker_keys (span : Profile.span) =
  match span.Profile.s_blockers with
  | [] -> [ "queue" ]
  | blockers -> List.map (fun txn -> "T" ^ string_of_int txn) blockers

(* key -> (blocked, waits) over one report's spans, with [shares] deciding
   how each span's duration lands on keys (shares must sum to it). *)
let tally shares (profile : Profile.report) =
  List.fold_left
    (fun map span ->
      List.fold_left
        (fun map (key, weight) ->
          let blocked, waits =
            match String_map.find_opt key map with
            | Some cell -> cell
            | None -> (0.0, 0)
          in
          String_map.add key (blocked +. weight, waits + 1) map)
        map
        (shares span))
    String_map.empty profile.Profile.spans

let single key_of span = [ (key_of span, Profile.duration span) ]

let split_over keys_of span = equal_split (Profile.duration span) (keys_of span)

(* -------------------------------------------------- partition assembly *)

let rank entries =
  List.sort
    (fun a b ->
      match Float.compare b.e_delta a.e_delta with
      | 0 -> String.compare a.e_key b.e_key
      | order -> order)
    entries

(* Folds the gap between [total] and the sum of deltas into the
   largest-|delta| entry (ties: smallest key), iterating because one float
   addition can leave a last-ulp gap of its own. *)
let settle ~total entries =
  let sum entries =
    List.fold_left (fun sum entry -> sum +. entry.e_delta) 0.0 entries
  in
  let fold_once entries =
    let residue = total -. sum entries in
    if residue = 0.0 || entries = [] then entries
    else
      let winner =
        List.fold_left
          (fun best entry ->
            match best with
            | Some best
              when Float.abs best.e_delta > Float.abs entry.e_delta
                   || (Float.abs best.e_delta = Float.abs entry.e_delta
                       && String.compare best.e_key entry.e_key <= 0) ->
              Some best
            | Some _ | None -> Some entry)
          None entries
      in
      match winner with
      | None -> entries
      | Some winner ->
        List.map
          (fun entry ->
            if String.equal entry.e_key winner.e_key then
              { entry with e_delta = entry.e_delta +. residue }
            else entry)
          entries
  in
  let rec go entries remaining =
    if remaining = 0 || total -. sum entries = 0.0 then entries
    else go (fold_once entries) (remaining - 1)
  in
  go entries 4

let partition ~total shares base cand =
  let base = tally shares base and cand = tally shares cand in
  let keys =
    String_map.union (fun _key left _right -> Some left) base cand
    |> String_map.bindings |> List.map fst
  in
  List.map
    (fun key ->
      let side map =
        match String_map.find_opt key map with
        | Some cell -> cell
        | None -> (0.0, 0)
      in
      let base_blocked, base_waits = side base in
      let cand_blocked, cand_waits = side cand in
      let status =
        match base_waits, cand_waits with
        | 0, _ -> Only_cand
        | _, 0 -> Only_base
        | _, _ -> Both
      in
      { e_key = key; e_base = base_blocked; e_cand = cand_blocked;
        e_delta = cand_blocked -. base_blocked; e_base_waits = base_waits;
        e_cand_waits = cand_waits; e_status = status })
    keys
  |> settle ~total |> rank

let of_reports ?label ~(base : Profile.report) ~(cand : Profile.report) () =
  let delta = cand.Profile.total_blocked -. base.Profile.total_blocked in
  let part shares = partition ~total:delta shares base cand in
  { label =
      (match label with
       | Some _ -> label
       | None -> (
         match cand.Profile.label with
         | Some _ as label -> label
         | None -> base.Profile.label));
    base_total = base.Profile.total_blocked;
    cand_total = cand.Profile.total_blocked;
    delta;
    base_waits = base.Profile.wait_count;
    cand_waits = cand.Profile.wait_count;
    levels = part (single level_key);
    depths = part (single depth_key);
    resources = part (single (fun span -> span.Profile.s_resource));
    cells = part (split_over cell_keys);
    blockers = part (split_over blocker_keys) }

let conserves report =
  let close sum =
    Float.abs (sum -. report.delta)
    <= 1e-9 *. Float.max 1.0 (Float.abs report.delta)
  in
  List.for_all
    (fun entries ->
      close (List.fold_left (fun sum entry -> sum +. entry.e_delta) 0.0 entries))
    [ report.levels; report.depths; report.resources; report.cells;
      report.blockers ]

(* -------------------------------------------------------- run pairing *)

type pairing = {
  pairs : report list;
  only_base : string list;
  only_cand : string list;
}

let run_label (profile : Profile.report) =
  match profile.Profile.label with
  | Some label -> label
  | None -> "(unlabelled)"

let pair_reports ~base ~cand =
  let consumed = Array.make (List.length cand) false in
  let pairs = ref [] in
  let only_base = ref [] in
  List.iter
    (fun base_run ->
      let matched = ref None in
      List.iteri
        (fun index cand_run ->
          if
            !matched = None
            && (not consumed.(index))
            && Option.equal String.equal base_run.Profile.label
                 cand_run.Profile.label
          then begin
            consumed.(index) <- true;
            matched := Some cand_run
          end)
        cand;
      match !matched with
      | Some cand_run ->
        pairs := of_reports ~base:base_run ~cand:cand_run () :: !pairs
      | None -> only_base := run_label base_run :: !only_base)
    base;
  let only_cand =
    List.filteri (fun index _run -> not consumed.(index)) cand
    |> List.map run_label
  in
  { pairs = List.rev !pairs; only_base = List.rev !only_base; only_cand }

let of_traces ~base ~cand =
  pair_reports ~base:(Profile.of_trace base) ~cand:(Profile.of_trace cand)

(* ----------------------------------------------------------- rendering *)

let status_text = function
  | Both -> ""
  | Only_base -> " (removed)"
  | Only_cand -> " (added)"

let json_of_entry entry =
  Json.Obj
    [ ("key", Json.String entry.e_key);
      ("base", Json.Float entry.e_base);
      ("cand", Json.Float entry.e_cand);
      ("delta", Json.Float entry.e_delta);
      ("base_waits", Json.Int entry.e_base_waits);
      ("cand_waits", Json.Int entry.e_cand_waits);
      ( "status",
        Json.String
          (match entry.e_status with
           | Both -> "both"
           | Only_base -> "only_base"
           | Only_cand -> "only_cand") ) ]

let to_json report =
  Json.Obj
    [ ( "label",
        match report.label with
        | Some label -> Json.String label
        | None -> Json.Null );
      ("base_total", Json.Float report.base_total);
      ("cand_total", Json.Float report.cand_total);
      ("delta", Json.Float report.delta);
      ("base_waits", Json.Int report.base_waits);
      ("cand_waits", Json.Int report.cand_waits);
      ("levels", Json.List (List.map json_of_entry report.levels));
      ("depths", Json.List (List.map json_of_entry report.depths));
      ("resources", Json.List (List.map json_of_entry report.resources));
      ("cells", Json.List (List.map json_of_entry report.cells));
      ("blockers", Json.List (List.map json_of_entry report.blockers)) ]

let pairing_to_json pairing =
  Json.Obj
    [ ("pairs", Json.List (List.map to_json pairing.pairs));
      ( "only_base",
        Json.List
          (List.map (fun label -> Json.String label) pairing.only_base) );
      ( "only_cand",
        Json.List
          (List.map (fun label -> Json.String label) pairing.only_cand) ) ]

let truncated limit items = List.filteri (fun index _item -> index < limit) items

let pp ?(top = 10) formatter report =
  let line format = Format.fprintf formatter format in
  (match report.label with
   | Some label -> line "=== wait-time diff: %s ===@," label
   | None -> line "=== wait-time diff ===@,");
  line "base blocked %g across %d wait(s); cand blocked %g across %d wait(s)@,"
    report.base_total report.base_waits report.cand_total report.cand_waits;
  if report.base_total > 0.0 then
    line "delta %+g (%+.1f%%)@," report.delta
      (100.0 *. report.delta /. report.base_total)
  else line "delta %+g@," report.delta;
  let table title entries ~bound =
    if entries <> [] then begin
      let shown = if bound then min top (List.length entries) else List.length entries in
      if bound && List.length entries > shown then
        line "@,%s (top %d of %d):@," title shown (List.length entries)
      else line "@,%s:@," title;
      line "  %12s %12s %12s %11s  %s@," "DELTA" "BASE" "CAND" "WAITS" "KEY";
      List.iter
        (fun entry ->
          line "  %+12g %12g %12g %5d->%-4d  %s%s@," entry.e_delta
            entry.e_base entry.e_cand entry.e_base_waits entry.e_cand_waits
            entry.e_key
            (status_text entry.e_status))
        (if bound then truncated top entries else entries)
    end
  in
  table "by lockable-unit level" report.levels ~bound:false;
  table "by graph depth" report.depths ~bound:false;
  table "resource deltas" report.resources ~bound:true;
  table "conflict-cell deltas (waiter<-holder)" report.cells ~bound:true;
  table "blocker deltas" report.blockers ~bound:true

let print ?top channel report =
  let formatter = Format.formatter_of_out_channel channel in
  Format.fprintf formatter "@[<v>%a@]@." (fun fmt -> pp ?top fmt) report

let print_drift channel pairing =
  List.iter
    (fun label ->
      Printf.fprintf channel
        "drift: run %s only in the base trace (not diffed)\n" label)
    pairing.only_base;
  List.iter
    (fun label ->
      Printf.fprintf channel
        "drift: run %s only in the candidate trace (not diffed)\n" label)
    pairing.only_cand
