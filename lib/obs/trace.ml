(* Chrome trace_event exporter (the JSON format chrome://tracing and
   Perfetto load).  Each event group becomes one "process"; transactions map
   to threads, so lock-wait and transaction spans of concurrent transactions
   stack as parallel timelines.

   Span pairing happens here, at export time, from the flat event stream:
     Lock_waited -> Lock_granted   "wait <resource>"   (cat "lock")
     Txn_begin   -> Txn_commit/abort   "T<n>"          (cat "txn")
   Unclosed spans (still blocked / still running when the capture ended)
   close at the capture's last timestamp, marked unfinished. *)

let default_ts_scale = 1000.0
(* Trace timestamps are microseconds.  Simulator ticks export as
   milliseconds (x1000) so a 100-tick access renders at a readable zoom. *)

let complete ~pid ~tid ~name ~cat ~ts ~dur args =
  Json.Obj
    [ ("name", Json.String name); ("cat", Json.String cat);
      ("ph", Json.String "X"); ("ts", Json.Float ts); ("dur", Json.Float dur);
      ("pid", Json.Int pid); ("tid", Json.Int tid); ("args", Json.Obj args) ]

let instant ~pid ~tid ~name ~cat ~ts args =
  Json.Obj
    [ ("name", Json.String name); ("cat", Json.String cat);
      ("ph", Json.String "i"); ("ts", Json.Float ts); ("s", Json.String "t");
      ("pid", Json.Int pid); ("tid", Json.Int tid); ("args", Json.Obj args) ]

let process_name ~pid name =
  Json.Obj
    [ ("name", Json.String "process_name"); ("ph", Json.String "M");
      ("pid", Json.Int pid);
      ("args", Json.Obj [ ("name", Json.String name) ]) ]

let ints items = Json.List (List.map (fun i -> Json.Int i) items)

let group_events ~pid ~scale events =
  let out = ref [] in
  let push json = out := json :: !out in
  let last_time =
    List.fold_left (fun latest event -> Float.max latest event.Event.time) 0.0
      events
  in
  let waits = Hashtbl.create 32 in
  let begins = Hashtbl.create 32 in
  let wait_span ~txn ~resource ~start ~finish ~mode ~blockers ~finished =
    push
      (complete ~pid ~tid:txn ~name:("wait " ^ resource) ~cat:"lock"
         ~ts:(start *. scale)
         ~dur:((finish -. start) *. scale)
         ([ ("mode", Json.String mode); ("blockers", ints blockers) ]
          @ if finished then [] else [ ("unfinished", Json.Bool true) ]))
  in
  let txn_span ~txn ~start ~finish ~outcome ~finished =
    push
      (complete ~pid ~tid:txn ~name:(Printf.sprintf "T%d" txn) ~cat:"txn"
         ~ts:(start *. scale)
         ~dur:((finish -. start) *. scale)
         (("outcome", Json.String outcome)
          :: (if finished then [] else [ ("unfinished", Json.Bool true) ])))
  in
  List.iter
    (fun { Event.time; kind } ->
      match kind with
      | Event.Txn_begin { txn } ->
        if not (Hashtbl.mem begins txn) then Hashtbl.replace begins txn time
      | Event.Txn_commit { txn } -> (
        match Hashtbl.find_opt begins txn with
        | Some start ->
          Hashtbl.remove begins txn;
          txn_span ~txn ~start ~finish:time ~outcome:"committed" ~finished:true
        | None -> ())
      | Event.Txn_abort { txn; reason } -> (
        match Hashtbl.find_opt begins txn with
        | Some start ->
          Hashtbl.remove begins txn;
          txn_span ~txn ~start ~finish:time ~outcome:reason ~finished:true
        | None -> ())
      | Event.Lock_waited { txn; resource; mode; blockers; _ } ->
        if not (Hashtbl.mem waits (txn, resource)) then
          Hashtbl.replace waits (txn, resource) (time, mode, blockers)
      | Event.Lock_granted { txn; resource; _ } -> (
        match Hashtbl.find_opt waits (txn, resource) with
        | Some (start, mode, blockers) ->
          Hashtbl.remove waits (txn, resource);
          wait_span ~txn ~resource ~start ~finish:time ~mode ~blockers
            ~finished:true
        | None -> ())
      | Event.Victim_aborted { txn; restarts } ->
        Hashtbl.iter
          (fun (waiter, resource) (start, mode, blockers) ->
            if waiter = txn then begin
              Hashtbl.remove waits (waiter, resource);
              wait_span ~txn ~resource ~start ~finish:time ~mode ~blockers
                ~finished:false
            end)
          (Hashtbl.copy waits);
        push
          (instant ~pid ~tid:txn ~name:"victim aborted" ~cat:"deadlock"
             ~ts:(time *. scale)
             [ ("restarts", Json.Int restarts) ])
      | Event.Timeout_abort { txn; resource; waited; _ } ->
        Hashtbl.iter
          (fun (waiter, res) (start, mode, blockers) ->
            if waiter = txn then begin
              Hashtbl.remove waits (waiter, res);
              wait_span ~txn ~resource:res ~start ~finish:time ~mode ~blockers
                ~finished:false
            end)
          (Hashtbl.copy waits);
        push
          (instant ~pid ~tid:txn ~name:"timeout abort" ~cat:"deadlock"
             ~ts:(time *. scale)
             [ ("resource", Json.String resource);
               ("waited", Json.Int waited) ])
      | Event.Deadlock_detected { cycle } ->
        let tid = match cycle with txn :: _ -> txn | [] -> 0 in
        push
          (instant ~pid ~tid ~name:"deadlock" ~cat:"deadlock"
             ~ts:(time *. scale)
             [ ("cycle", ints cycle) ])
      | Event.Escalation { txn; node; mode; released_children } ->
        push
          (instant ~pid ~tid:txn ~name:("escalate " ^ node) ~cat:"escalation"
             ~ts:(time *. scale)
             [ ("mode", Json.String mode);
               ("released_children", Json.Int released_children) ])
      | Event.Deescalation { txn; node; mode } ->
        push
          (instant ~pid ~tid:txn ~name:("de-escalate " ^ node)
             ~cat:"escalation" ~ts:(time *. scale)
             [ ("mode", Json.String mode) ])
      | Event.Query_executed { txn; query; rows; locks_requested } ->
        push
          (instant ~pid ~tid:txn ~name:"query" ~cat:"query" ~ts:(time *. scale)
             [ ("query", Json.String query); ("rows", Json.Int rows);
               ("locks_requested", Json.Int locks_requested) ])
      | Event.Sim_step { txn; step } ->
        push
          (instant ~pid ~tid:txn ~name:(Printf.sprintf "step %d" step)
             ~cat:"sim" ~ts:(time *. scale) [])
      | Event.Waits_for { edges } ->
        push
          (instant ~pid ~tid:0 ~name:"waits-for" ~cat:"deadlock"
             ~ts:(time *. scale)
             [ ( "edges",
                 Json.List
                   (List.map
                      (fun (waiter, blocker) -> ints [ waiter; blocker ])
                      edges) ) ])
      | Event.Slo_breach { rule; value; threshold } ->
        push
          (instant ~pid ~tid:0 ~name:"SLO breach" ~cat:"slo"
             ~ts:(time *. scale)
             [ ("rule", Json.String rule); ("value", Json.Float value);
               ("threshold", Json.Float threshold) ])
      | Event.Admission { txn; priority; decision } ->
        push
          (instant ~pid ~tid:txn ~name:("admission " ^ decision)
             ~cat:"overload" ~ts:(time *. scale)
             [ ("priority", Json.String priority) ])
      | Event.Admission_limit { limit; inflight; queued; shed } ->
        push
          (instant ~pid ~tid:0 ~name:"admission limit" ~cat:"overload"
             ~ts:(time *. scale)
             [ ("limit", Json.Int limit); ("inflight", Json.Int inflight);
               ("queued", Json.Int queued); ("shed", Json.Int shed) ])
      | Event.Breaker { from_state; to_state } ->
        push
          (instant ~pid ~tid:0
             ~name:(Printf.sprintf "breaker %s->%s" from_state to_state)
             ~cat:"overload" ~ts:(time *. scale) [])
      | Event.Retry_denied { txn; restarts } ->
        push
          (instant ~pid ~tid:txn ~name:"retry denied" ~cat:"overload"
             ~ts:(time *. scale)
             [ ("restarts", Json.Int restarts) ])
      | Event.Contention_abort { txn; policy; depth } ->
        push
          (instant ~pid ~tid:txn ~name:"contention abort" ~cat:"overload"
             ~ts:(time *. scale)
             [ ("policy", Json.String policy); ("depth", Json.Int depth) ])
      | Event.Lock_requested _ | Event.Lock_released _ | Event.Conversion _
      | Event.Run_meta _ ->
        ())
    events;
  (* capture ended with spans still open *)
  Hashtbl.iter
    (fun (txn, resource) (start, mode, blockers) ->
      wait_span ~txn ~resource ~start ~finish:last_time ~mode ~blockers
        ~finished:false)
    waits;
  Hashtbl.iter
    (fun txn start ->
      txn_span ~txn ~start ~finish:last_time ~outcome:"running" ~finished:false)
    begins;
  List.rev !out

let ts_of = function
  | Json.Obj fields -> (
    match List.assoc_opt "ts" fields with Some (Json.Float ts) -> ts | _ -> -1.0)
  | _ -> -1.0

let to_json ?(ts_scale = default_ts_scale) groups =
  let trace_events =
    List.concat
      (List.mapi
         (fun index (name, events) ->
           let pid = index + 1 in
           process_name ~pid name :: group_events ~pid ~scale:ts_scale events)
         groups)
  in
  let sorted =
    List.stable_sort (fun a b -> Float.compare (ts_of a) (ts_of b)) trace_events
  in
  Json.Obj
    [ ("traceEvents", Json.List sorted);
      ("displayTimeUnit", Json.String "ms") ]

let write ?ts_scale channel groups =
  Json.output ~indent:1 channel (to_json ?ts_scale groups);
  output_char channel '\n'
