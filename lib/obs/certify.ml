(* The offline serializability certifier: the independent oracle behind
   [colock certify] and the soak suite's [certify] stanza.

   The trace's grant/release stream is replayed into per-transaction
   attempt state; the three checks (conflict-serializability over the
   committed attempts, 2PL phase discipline with escalation-covered
   releases, rule 1-4' hierarchy coverage) never look at the lock
   manager's own data structures, only at the events it emitted — which
   is the point: a rewritten lock table can be cross-checked against the
   same certificates. *)

type modes = {
  m_known : string list;
  m_compatible : string -> string -> bool;
  m_sup : string -> string -> string;
  m_intention_for : string -> string;
  m_is_intention : string -> bool;
}

(* The classical matrices, over strings.  Unknown modes map to X so a
   fabricated trace conflicts with everything instead of slipping by. *)
let default_modes =
  let known = [ "NL"; "IS"; "IX"; "S"; "SIX"; "X" ] in
  let canon mode = if List.mem mode known then mode else "X" in
  let compatible a b =
    match canon a, canon b with
    | "NL", _ | _, "NL" -> true
    | "IS", ("IS" | "IX" | "S" | "SIX") | ("IX" | "S" | "SIX"), "IS" -> true
    | "IX", "IX" | "S", "S" -> true
    | _ -> false
  in
  let sup a b =
    match canon a, canon b with
    | "NL", other | other, "NL" -> other
    | "IS", other | other, "IS" -> other
    | "X", _ | _, "X" -> "X"
    | "IX", "IX" -> "IX"
    | "S", "S" -> "S"
    | "IX", "S" | "S", "IX" -> "SIX"
    | _ -> "SIX"
  in
  { m_known = known;
    m_compatible = compatible;
    m_sup = sup;
    m_intention_for =
      (fun mode ->
        match canon mode with
        | "NL" -> "NL"
        | "IS" | "S" -> "IS"
        | _ -> "IX");
    m_is_intention =
      (fun mode ->
        match canon mode with "IS" | "IX" | "SIX" -> true | _ -> false) }

let leq modes a b = String.equal (modes.m_sup a b) b

type access = {
  a_txn : int;
  a_resource : string;
  mutable a_mode : string;
  a_granted_seq : int;
  a_granted_time : float;
  mutable a_released_seq : int option;
  mutable a_released_time : float;
}

type edge = {
  e_from : int;
  e_to : int;
  e_count : int;
  e_resource : string;
  e_first : access;
  e_second : access;
}

type violation =
  | Unserializable of { cycle : int list; edges : edge list }
  | Phase_violation of {
      txn : int;
      released : string;
      released_seq : int;
      acquire : access;
    }
  | Concurrent_conflict of {
      resource : string;
      txn : int;
      mode : string;
      holder : int;
      holder_mode : string;
      seq : int;
      time : float;
    }
  | Uncovered_grant of {
      txn : int;
      resource : string;
      mode : string;
      parent : string;
      parent_mode : string option;
      seq : int;
      time : float;
    }
  | Escalation_violation of {
      txn : int;
      node : string;
      mode : string;
      detail : string;
      seq : int;
      time : float;
    }

type certificate = {
  label : string option;
  events : int;
  committed : int;
  aborted_attempts : int;
  graph_txns : int list;
  graph_edges : edge list;
  violations : violation list;
}

let certified certificate = certificate.violations = []

(* ---------------------------------------------------------- path algebra *)

(* Resources are slash-joined node paths with a literal '/' escaped as
   "//" (see [Colock.Node_id.to_resource]); the parent is everything
   before the last unescaped separator. *)
let parent_resource resource =
  let length = String.length resource in
  let rec scan index last =
    if index >= length then last
    else if resource.[index] = '/' then
      if index + 1 < length && resource.[index + 1] = '/' then
        scan (index + 2) last
      else scan (index + 1) (Some index)
    else scan (index + 1) last
  in
  match scan 0 None with
  | None | Some 0 -> None
  | Some separator -> Some (String.sub resource 0 separator)

let is_strict_descendant ~ancestor resource =
  let la = String.length ancestor and lr = String.length resource in
  lr > la + 1
  && String.equal (String.sub resource 0 la) ancestor
  && resource.[la] = '/'
  && resource.[la + 1] <> '/'

(* ------------------------------------------------------------ accumulator *)

(* Per-transaction attempt state.  [held] mirrors the lock table across
   attempt boundaries (it empties through real release events); the rest
   resets when an abort marker closes the attempt. *)
type txn_state = {
  held : (string, string) Hashtbl.t;
  open_accesses : (string, access) Hashtbl.t;
  mutable closed_accesses : access list;
  mutable shrinking : (string * int) option;
      (* first uncovered release: resource, seq *)
  mutable pending_violations : violation list;  (* reversed; kept on commit *)
  mutable recent_releases : (string * string) list;
      (* releases since the transaction's last grant, newest first — the
         escalation audit's view of the absorbed children *)
  mutable active : bool;  (* an attempt is underway *)
  mutable committed : bool;
}

type t = {
  modes : modes;
  txns : (int, txn_state) Hashtbl.t;
  resource_holds : (string, (int, string) Hashtbl.t) Hashtbl.t;
  mutable seq : int;
  mutable events : int;
  mutable last_time : float;
  mutable committed_accesses : access list;
  mutable committed_txns : int list;
  mutable aborted_attempts : int;
  mutable violations : violation list;  (* reversed *)
}

let create ?(modes = default_modes) () =
  { modes;
    txns = Hashtbl.create 64;
    resource_holds = Hashtbl.create 256;
    seq = 0;
    events = 0;
    last_time = 0.0;
    committed_accesses = [];
    committed_txns = [];
    aborted_attempts = 0;
    violations = [] }

let txn_state certifier txn =
  match Hashtbl.find_opt certifier.txns txn with
  | Some state -> state
  | None ->
    let state =
      { held = Hashtbl.create 8;
        open_accesses = Hashtbl.create 8;
        closed_accesses = [];
        shrinking = None;
        pending_violations = [];
        recent_releases = [];
        active = false;
        committed = false }
    in
    Hashtbl.replace certifier.txns txn state;
    state

let holders_of certifier resource =
  match Hashtbl.find_opt certifier.resource_holds resource with
  | Some holders -> holders
  | None ->
    let holders = Hashtbl.create 4 in
    Hashtbl.replace certifier.resource_holds resource holders;
    holders

(* Is a release of [resource] at [mode] still covered by a strict
   ancestor the transaction holds — i.e. the escalation pattern (parent
   absorbed the children at a data mode at least as strong), which rule
   4' makes legal mid-growth? *)
let release_covered certifier state resource mode =
  let rec up resource =
    match parent_resource resource with
    | None -> false
    | Some parent -> (
      match Hashtbl.find_opt state.held parent with
      | Some parent_mode when leq certifier.modes mode parent_mode -> true
      | Some _ | None -> up parent)
  in
  up resource

let record certifier violation =
  certifier.violations <- violation :: certifier.violations

(* A grant both audits (concurrent incompatibility, hierarchy coverage,
   2PL phase) and advances the reconstruction (held modes, episodes). *)
let on_granted certifier ~seq ~time ~txn ~resource ~mode =
  let modes = certifier.modes in
  let state = txn_state certifier txn in
  state.active <- true;
  state.recent_releases <- [];
  (* concurrent incompatible holders: a lock-manager defect *)
  let holders = holders_of certifier resource in
  Hashtbl.iter
    (fun holder holder_mode ->
      if holder <> txn && not (modes.m_compatible holder_mode mode) then
        record certifier
          (Concurrent_conflict
             { resource; txn; mode; holder; holder_mode; seq; time }))
    holders;
  (* rules 1-4': the path parent must carry the matching intention (or a
     data mode that already covers the grant outright) *)
  (match parent_resource resource with
   | None -> ()
   | Some parent ->
     let parent_mode = Hashtbl.find_opt state.held parent in
     let covered =
       match parent_mode with
       | None -> false
       | Some held ->
         leq modes (modes.m_intention_for mode) held || leq modes mode held
     in
     if not covered then
       record certifier
         (Uncovered_grant { txn; resource; mode; parent; parent_mode; seq; time }));
  (* 2PL: a grant that adds privilege after the first uncovered release *)
  let previous = Hashtbl.find_opt state.held resource in
  let new_privilege =
    match previous with
    | None -> true
    | Some held -> not (leq modes mode held)
  in
  let merged =
    match previous with Some held -> modes.m_sup held mode | None -> mode
  in
  Hashtbl.replace state.held resource merged;
  Hashtbl.replace holders txn merged;
  let access =
    match Hashtbl.find_opt state.open_accesses resource with
    | Some access ->
      access.a_mode <- modes.m_sup access.a_mode mode;
      access
    | None ->
      let access =
        { a_txn = txn;
          a_resource = resource;
          a_mode = mode;
          a_granted_seq = seq;
          a_granted_time = time;
          a_released_seq = None;
          a_released_time = time }
      in
      Hashtbl.replace state.open_accesses resource access;
      access
  in
  if new_privilege then
    match state.shrinking with
    | Some (released, released_seq) ->
      state.pending_violations <-
        Phase_violation { txn; released; released_seq; acquire = access }
        :: state.pending_violations
    | None -> ()

let on_conversion certifier ~txn ~resource ~to_mode =
  (* the lock table emits the matching [Lock_granted] right after; the
     conversion itself only strengthens the reconstruction's modes *)
  let modes = certifier.modes in
  let state = txn_state certifier txn in
  (match Hashtbl.find_opt state.held resource with
   | Some held -> Hashtbl.replace state.held resource (modes.m_sup held to_mode)
   | None -> Hashtbl.replace state.held resource to_mode);
  let holders = holders_of certifier resource in
  (match Hashtbl.find_opt holders txn with
   | Some held -> Hashtbl.replace holders txn (modes.m_sup held to_mode)
   | None -> Hashtbl.replace holders txn to_mode);
  match Hashtbl.find_opt state.open_accesses resource with
  | Some access -> access.a_mode <- modes.m_sup access.a_mode to_mode
  | None -> ()

let on_released certifier ~seq ~time ~txn ~resource =
  let state = txn_state certifier txn in
  match Hashtbl.find_opt state.held resource with
  | None -> ()  (* unknown release: tolerate truncated or excerpt traces *)
  | Some mode ->
    Hashtbl.remove state.held resource;
    (match Hashtbl.find_opt certifier.resource_holds resource with
     | Some holders -> Hashtbl.remove holders txn
     | None -> ());
    (match Hashtbl.find_opt state.open_accesses resource with
     | Some access ->
       access.a_released_seq <- Some seq;
       access.a_released_time <- time;
       Hashtbl.remove state.open_accesses resource;
       if state.active && not state.committed then
         state.closed_accesses <- access :: state.closed_accesses
     | None -> ());
    if List.length state.recent_releases < 4096 then
      state.recent_releases <- (resource, mode) :: state.recent_releases;
    if
      state.active && not state.committed
      && state.shrinking = None
      && not (release_covered certifier state resource mode)
    then state.shrinking <- Some (resource, seq)

(* De-escalation weakens the node's hold in place: a genuine loss of
   privilege, so it ends the growing phase like an uncovered release. *)
let on_deescalation certifier ~seq ~txn ~node ~mode =
  let state = txn_state certifier txn in
  match Hashtbl.find_opt state.held node with
  | None -> ()
  | Some _ ->
    Hashtbl.replace state.held node mode;
    (match Hashtbl.find_opt certifier.resource_holds node with
     | Some holders -> Hashtbl.replace holders txn mode
     | None -> ());
    if state.active && not state.committed && state.shrinking = None then
      state.shrinking <- Some (node, seq)

(* Audit an [Escalation] event against the supremum matrix: the parent
   must actually be held at (at least) the declared data mode, and that
   mode must cover the data requirement of every child lock it absorbed
   (X over IX/SIX/X children, S over IS/S — the matrix's floor-S fold). *)
let on_escalation certifier ~seq ~time ~txn ~node ~mode ~released_children =
  let modes = certifier.modes in
  let state = txn_state certifier txn in
  let fail detail =
    record certifier
      (Escalation_violation { txn; node; mode; detail; seq; time })
  in
  (match Hashtbl.find_opt state.held node with
   | None -> fail "escalated node is not held"
   | Some held when not (leq modes mode held) ->
     fail (Printf.sprintf "node held %s, weaker than declared %s" held mode)
   | Some _ -> ());
  if modes.m_is_intention mode then
    fail "escalation must land on a data mode (S or X), not an intention";
  let children =
    List.filteri
      (fun index _ -> index < released_children)
      (List.filter
         (fun (resource, _mode) -> is_strict_descendant ~ancestor:node resource)
         state.recent_releases)
  in
  if List.length children < released_children then
    fail
      (Printf.sprintf "claims %d absorbed child(ren), trace shows %d"
         released_children (List.length children));
  List.iter
    (fun (resource, child_mode) ->
      let required = if leq modes child_mode "S" then "S" else "X" in
      if not (leq modes required mode) then
        fail
          (Printf.sprintf "%s needs %s for child %s held %s" node required
             resource child_mode))
    children

(* An abort marker closes the attempt: its accesses and phase findings
   are discarded (aborted work never enters the serialization graph), but
   [held] survives — it empties through the release events the abort
   cleanup actually emitted. *)
let on_abort certifier txn =
  let state = txn_state certifier txn in
  if
    state.active
    || state.closed_accesses <> []
    || Hashtbl.length state.open_accesses > 0
  then certifier.aborted_attempts <- certifier.aborted_attempts + 1;
  Hashtbl.reset state.open_accesses;
  state.closed_accesses <- [];
  state.shrinking <- None;
  state.pending_violations <- [];
  state.recent_releases <- [];
  state.active <- false

let on_commit certifier txn =
  let state = txn_state certifier txn in
  if not state.committed then begin
    state.committed <- true;
    certifier.committed_txns <- txn :: certifier.committed_txns;
    (* open episodes flush by reference: the trailing releases (the lock
       table releases after the commit event) still close them *)
    let flushed = ref state.closed_accesses in
    Hashtbl.iter
      (fun _resource access -> flushed := access :: !flushed)
      state.open_accesses;
    certifier.committed_accesses <-
      List.rev_append !flushed certifier.committed_accesses;
    certifier.violations <-
      List.rev_append (List.rev state.pending_violations) certifier.violations
  end;
  state.closed_accesses <- [];
  state.pending_violations <- [];
  state.shrinking <- None;
  state.active <- false

let handle certifier event =
  certifier.seq <- certifier.seq + 1;
  certifier.events <- certifier.events + 1;
  let seq = certifier.seq in
  let time = event.Event.time in
  certifier.last_time <- time;
  match event.Event.kind with
  | Event.Lock_granted { txn; resource; mode; _ } ->
    if not (String.equal mode "NL") then
      on_granted certifier ~seq ~time ~txn ~resource ~mode
  | Event.Conversion { txn; resource; to_mode; _ } ->
    on_conversion certifier ~txn ~resource ~to_mode
  | Event.Lock_released { txn; resource; _ } ->
    on_released certifier ~seq ~time ~txn ~resource
  | Event.Escalation { txn; node; mode; released_children } ->
    on_escalation certifier ~seq ~time ~txn ~node ~mode ~released_children
  | Event.Deescalation { txn; node; mode } ->
    on_deescalation certifier ~seq ~txn ~node ~mode
  | Event.Txn_begin { txn } -> (txn_state certifier txn).active <- true
  | Event.Txn_commit { txn } -> on_commit certifier txn
  | Event.Txn_abort { txn; _ }
  | Event.Victim_aborted { txn; _ }
  | Event.Timeout_abort { txn; _ }
  | Event.Contention_abort { txn; _ } ->
    on_abort certifier txn
  | Event.Lock_requested _ | Event.Lock_waited _ | Event.Deadlock_detected _
  | Event.Query_executed _ | Event.Sim_step _ | Event.Waits_for _
  | Event.Run_meta _ | Event.Slo_breach _ | Event.Admission _
  | Event.Admission_limit _ | Event.Breaker _ | Event.Retry_denied _ ->
    ()

(* ------------------------------------------------------- graph / cycles *)

module Int_map = Map.Make (Int)

(* One edge per ordered committed pair, counting the conflicting episode
   pairs and keeping the earliest as witness. *)
let build_edges certifier =
  let by_resource = Hashtbl.create 256 in
  List.iter
    (fun access ->
      let bucket =
        match Hashtbl.find_opt by_resource access.a_resource with
        | Some bucket -> bucket
        | None ->
          let bucket = ref [] in
          Hashtbl.replace by_resource access.a_resource bucket;
          bucket
      in
      bucket := access :: !bucket)
    certifier.committed_accesses;
  let edges = Hashtbl.create 256 in
  Hashtbl.iter
    (fun resource bucket ->
      let episodes =
        List.sort
          (fun a b -> Int.compare a.a_granted_seq b.a_granted_seq)
          !bucket
      in
      let rec pairs = function
        | [] -> ()
        | first :: rest ->
          List.iter
            (fun second ->
              if
                first.a_txn <> second.a_txn
                && not
                     (certifier.modes.m_compatible first.a_mode second.a_mode)
              then begin
                let key = (first.a_txn, second.a_txn) in
                match Hashtbl.find_opt edges key with
                | Some edge ->
                  Hashtbl.replace edges key { edge with e_count = edge.e_count + 1 }
                | None ->
                  Hashtbl.replace edges key
                    { e_from = first.a_txn;
                      e_to = second.a_txn;
                      e_count = 1;
                      e_resource = resource;
                      e_first = first;
                      e_second = second }
              end)
            rest;
          pairs rest
      in
      pairs episodes)
    by_resource;
  Hashtbl.fold (fun _key edge accu -> edge :: accu) edges []
  |> List.sort (fun a b ->
         match Int.compare a.e_from b.e_from with
         | 0 -> Int.compare a.e_to b.e_to
         | order -> order)

(* Shortest cycle through any node (BFS from each, looking for a path
   back to the start), deterministically smallest under (length, nodes). *)
let minimal_cycle edges =
  let adjacency =
    List.fold_left
      (fun map edge ->
        Int_map.update edge.e_from
          (function
            | Some targets -> Some (edge.e_to :: targets)
            | None -> Some [ edge.e_to ])
          map)
      Int_map.empty edges
  in
  let shortest_from start =
    let parents = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add start queue;
    Hashtbl.replace parents start start;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      List.iter
        (fun next ->
          if !found = None then
            if next = start then begin
              (* walk back from [node] to [start] *)
              let rec back node accu =
                if node = start then node :: accu
                else back (Hashtbl.find parents node) (node :: accu)
              in
              found := Some (back node [])
            end
            else if not (Hashtbl.mem parents next) then begin
              Hashtbl.replace parents next node;
              Queue.add next queue
            end)
        (List.rev (Option.value ~default:[] (Int_map.find_opt node adjacency)))
    done;
    !found
  in
  Int_map.fold
    (fun start _targets best ->
      match shortest_from start with
      | None -> best
      | Some cycle -> (
        match best with
        | Some existing when List.compare_lengths existing cycle <= 0 -> best
        | _ -> Some cycle))
    adjacency None

let violation_seq = function
  | Unserializable _ -> max_int
  | Phase_violation { acquire; _ } -> acquire.a_granted_seq
  | Concurrent_conflict { seq; _ }
  | Uncovered_grant { seq; _ }
  | Escalation_violation { seq; _ } ->
    seq

let finish ?label certifier =
  Hashtbl.iter
    (fun _txn state ->
      Hashtbl.iter
        (fun _resource access ->
          access.a_released_time <- certifier.last_time)
        state.open_accesses)
    certifier.txns;
  let graph_edges = build_edges certifier in
  let cycle_violation =
    match minimal_cycle graph_edges with
    | None -> []
    | Some cycle ->
      let edge_between source target =
        List.find
          (fun edge -> edge.e_from = source && edge.e_to = target)
          graph_edges
      in
      let rec along = function
        | first :: (second :: _ as rest) ->
          edge_between first second :: along rest
        | [ last ] -> [ edge_between last (List.hd cycle) ]
        | [] -> []
      in
      [ Unserializable { cycle; edges = along cycle } ]
  in
  let violations =
    List.stable_sort
      (fun a b -> Int.compare (violation_seq a) (violation_seq b))
      (List.rev certifier.violations)
    @ cycle_violation
  in
  { label;
    events = certifier.events;
    committed = List.length certifier.committed_txns;
    aborted_attempts = certifier.aborted_attempts;
    graph_txns = List.sort Int.compare certifier.committed_txns;
    graph_edges;
    violations }

let of_events ?modes ?label events =
  let certifier = create ?modes () in
  List.iter (handle certifier) events;
  finish ?label certifier

let of_trace ?modes events =
  let flush certificates label batch =
    match batch, label with
    | [], None -> certificates
    | batch, label -> of_events ?modes ?label (List.rev batch) :: certificates
  in
  let certificates, label, batch =
    List.fold_left
      (fun (certificates, label, batch) event ->
        match event.Event.kind with
        | Event.Run_meta { label = next } ->
          (flush certificates label batch, Some next, [])
        | _ -> (certificates, label, event :: batch))
      ([], None, []) events
  in
  List.rev (flush certificates label batch)

(* ------------------------------------------------------------ rendering *)

let pp_access formatter access =
  Format.fprintf formatter "T%d %s on %s (granted #%d @%g%t)" access.a_txn
    access.a_mode access.a_resource access.a_granted_seq access.a_granted_time
    (fun formatter ->
      match access.a_released_seq with
      | Some seq -> Format.fprintf formatter ", released #%d" seq
      | None -> Format.fprintf formatter ", held to end")

let pp_violation formatter = function
  | Unserializable { cycle; edges } ->
    Format.fprintf formatter "@[<v2>not serializable: conflict cycle %s:"
      (String.concat " -> "
         (List.map (Printf.sprintf "T%d") (cycle @ [ List.hd cycle ])));
    List.iter
      (fun edge ->
        Format.fprintf formatter
          "@,T%d -> T%d via %s: %a, then %a%s" edge.e_from edge.e_to
          edge.e_resource pp_access edge.e_first pp_access edge.e_second
          (if edge.e_count > 1 then
             Printf.sprintf " (+%d more conflict(s))" (edge.e_count - 1)
           else ""))
      edges;
    Format.fprintf formatter "@]"
  | Phase_violation { txn; released; released_seq; acquire } ->
    Format.fprintf formatter
      "not two-phase: T%d acquired %s on %s (#%d) after releasing %s (#%d)"
      txn acquire.a_mode acquire.a_resource acquire.a_granted_seq released
      released_seq
  | Concurrent_conflict { resource; txn; mode; holder; holder_mode; seq; _ } ->
    Format.fprintf formatter
      "conflicting grants held at once on %s: T%d granted %s (#%d) while \
       T%d holds %s"
      resource txn mode seq holder holder_mode
  | Uncovered_grant { txn; resource; mode; parent; parent_mode; seq; _ } ->
    Format.fprintf formatter
      "hierarchy: T%d granted %s on %s (#%d) but parent %s %s" txn mode
      resource seq parent
      (match parent_mode with
       | Some held -> Printf.sprintf "holds only %s" held
       | None -> "is not locked")
  | Escalation_violation { txn; node; mode; detail; seq; _ } ->
    Format.fprintf formatter "escalation: T%d to %s on %s (#%d): %s" txn mode
      node seq detail

let pp formatter certificate =
  (match certificate.label with
   | Some label -> Format.fprintf formatter "=== certificate: %s ===@," label
   | None -> Format.fprintf formatter "=== certificate ===@,");
  Format.fprintf formatter
    "events %d  committed %d  aborted attempt(s) %d@,"
    certificate.events certificate.committed certificate.aborted_attempts;
  Format.fprintf formatter "serialization graph: %d txn(s), %d edge(s)@,"
    (List.length certificate.graph_txns)
    (List.length certificate.graph_edges);
  match certificate.violations with
  | [] ->
    Format.fprintf formatter
      "CERTIFIED: conflict-serializable, two-phase, hierarchy-compliant \
       (rules 1-4')"
  | violations ->
    List.iter
      (fun violation ->
        Format.fprintf formatter "VIOLATION %a@," pp_violation violation)
      violations;
    Format.fprintf formatter "NOT CERTIFIED: %d violation(s)"
      (List.length violations)

let print channel certificate =
  let formatter = Format.formatter_of_out_channel channel in
  Format.fprintf formatter "@[<v>%a@]@." (fun fmt -> pp fmt) certificate

(* ----------------------------------------------------------------- json *)

let json_of_access access =
  Json.Obj
    [ ("txn", Json.Int access.a_txn);
      ("resource", Json.String access.a_resource);
      ("mode", Json.String access.a_mode);
      ("granted_seq", Json.Int access.a_granted_seq);
      ("granted_time", Json.Float access.a_granted_time);
      ( "released_seq",
        match access.a_released_seq with
        | Some seq -> Json.Int seq
        | None -> Json.Null ) ]

let json_of_edge edge =
  Json.Obj
    [ ("from", Json.Int edge.e_from);
      ("to", Json.Int edge.e_to);
      ("conflicts", Json.Int edge.e_count);
      ("resource", Json.String edge.e_resource);
      ("first", json_of_access edge.e_first);
      ("second", json_of_access edge.e_second) ]

let json_of_violation violation =
  let kind name fields = Json.Obj (("kind", Json.String name) :: fields) in
  match violation with
  | Unserializable { cycle; edges } ->
    kind "unserializable"
      [ ("cycle", Json.List (List.map (fun txn -> Json.Int txn) cycle));
        ("edges", Json.List (List.map json_of_edge edges)) ]
  | Phase_violation { txn; released; released_seq; acquire } ->
    kind "phase_violation"
      [ ("txn", Json.Int txn);
        ("released", Json.String released);
        ("released_seq", Json.Int released_seq);
        ("acquire", json_of_access acquire) ]
  | Concurrent_conflict { resource; txn; mode; holder; holder_mode; seq; time }
    ->
    kind "concurrent_conflict"
      [ ("resource", Json.String resource);
        ("txn", Json.Int txn);
        ("mode", Json.String mode);
        ("holder", Json.Int holder);
        ("holder_mode", Json.String holder_mode);
        ("seq", Json.Int seq);
        ("time", Json.Float time) ]
  | Uncovered_grant { txn; resource; mode; parent; parent_mode; seq; time } ->
    kind "uncovered_grant"
      [ ("txn", Json.Int txn);
        ("resource", Json.String resource);
        ("mode", Json.String mode);
        ("parent", Json.String parent);
        ( "parent_mode",
          match parent_mode with
          | Some held -> Json.String held
          | None -> Json.Null );
        ("seq", Json.Int seq);
        ("time", Json.Float time) ]
  | Escalation_violation { txn; node; mode; detail; seq; time } ->
    kind "escalation_violation"
      [ ("txn", Json.Int txn);
        ("node", Json.String node);
        ("mode", Json.String mode);
        ("detail", Json.String detail);
        ("seq", Json.Int seq);
        ("time", Json.Float time) ]

let to_json certificate =
  Json.Obj
    [ ( "label",
        match certificate.label with
        | Some label -> Json.String label
        | None -> Json.Null );
      ("events", Json.Int certificate.events);
      ("committed", Json.Int certificate.committed);
      ("aborted_attempts", Json.Int certificate.aborted_attempts);
      ("certified", Json.Bool (certified certificate));
      ( "graph",
        Json.Obj
          [ ( "txns",
              Json.List
                (List.map (fun txn -> Json.Int txn) certificate.graph_txns) );
            ("edges", Json.List (List.map json_of_edge certificate.graph_edges))
          ] );
      ( "violations",
        Json.List (List.map json_of_violation certificate.violations) ) ]
