let write channel event =
  output_string channel (Json.to_string (Event.to_json event));
  output_char channel '\n'

let handler channel = fun event -> write channel event

let write_events channel events = List.iter (write channel) events
