(* Each line is rendered into a buffer and written with a single
   [output_string] followed by a flush: a run killed mid-stream (fault
   plans abort anywhere) leaves a file of complete lines, never a torn
   one. *)

let render event =
  let buffer = Buffer.create 128 in
  Buffer.add_string buffer (Json.to_string (Event.to_json event));
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let write channel event =
  output_string channel (render event);
  flush channel

let handler ?meter channel =
  match meter with
  | None -> fun event -> write channel event
  | Some meter ->
    fun event ->
      let line = render event in
      meter.Sink.m_bytes <- meter.Sink.m_bytes + String.length line;
      output_string channel line;
      flush channel

let write_events channel events =
  List.iter (fun event -> output_string channel (render event)) events;
  flush channel

let iter ?(on_error = fun _ -> ()) in_channel f =
  let line_number = ref 0 in
  try
    while true do
      let start = pos_in in_channel in
      let line = input_line in_channel in
      incr line_number;
      (* [input_line] consumed a newline iff the position advanced past the
         line's own bytes; the final line of a crash-cut trace has none, so
         a decode failure there is diagnosed as truncation (with the byte
         offset to cut at) rather than as corruption *)
      let truncated = pos_in in_channel = start + String.length line in
      if String.trim line <> "" then begin
        let report message =
          if truncated then
            on_error
              (Printf.sprintf
                 "line %d: truncated final line at byte %d (crash-cut \
                  trace?): %s"
                 !line_number start message)
          else on_error (Printf.sprintf "line %d: %s" !line_number message)
        in
        match Json.of_string line with
        | Error message -> report message
        | Ok json -> (
          match Event.of_json json with
          | Ok event -> f event
          | Error message -> report message)
      end
    done
  with End_of_file -> ()

let read_events in_channel =
  let events = ref [] in
  let errors = ref [] in
  iter
    ~on_error:(fun message -> errors := message :: !errors)
    in_channel
    (fun event -> events := event :: !events);
  (List.rev !events, List.rev !errors)

let with_file path f =
  let in_channel = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr in_channel)
    (fun () -> f in_channel)

let load path = with_file path read_events
