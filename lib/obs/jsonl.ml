(* Each line is rendered into a buffer and written with a single
   [output_string] followed by a flush: a run killed mid-stream (fault
   plans abort anywhere) leaves a file of complete lines, never a torn
   one. *)

let render event =
  let buffer = Buffer.create 128 in
  Buffer.add_string buffer (Json.to_string (Event.to_json event));
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let write channel event =
  output_string channel (render event);
  flush channel

let handler ?meter channel =
  match meter with
  | None -> fun event -> write channel event
  | Some meter ->
    fun event ->
      let line = render event in
      meter.Sink.m_bytes <- meter.Sink.m_bytes + String.length line;
      output_string channel line;
      flush channel

let write_events channel events =
  List.iter (fun event -> output_string channel (render event)) events;
  flush channel

let read_events in_channel =
  let events = ref [] in
  let errors = ref [] in
  let line_number = ref 0 in
  (try
     while true do
       let line = input_line in_channel in
       incr line_number;
       if String.trim line <> "" then
         match Json.of_string line with
         | Error message ->
           errors := Printf.sprintf "line %d: %s" !line_number message :: !errors
         | Ok json -> (
           match Event.of_json json with
           | Ok event -> events := event :: !events
           | Error message ->
             errors :=
               Printf.sprintf "line %d: %s" !line_number message :: !errors)
     done
   with End_of_file -> ());
  (List.rev !events, List.rev !errors)

let load path =
  let in_channel = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr in_channel)
    (fun () -> read_events in_channel)
