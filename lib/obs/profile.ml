(* The contention profiler: folds a lock-event stream — online as a sink
   handler, or offline from a decoded JSONL trace — into a report that says
   *where* blocked time lands on the object-specific lock graph.

   The unit of attribution is the wait span:

     Lock_waited(t0) ... Lock_granted(t1)          -> Granted,   dur t1-t0
     Lock_waited(t0) ... Victim/Timeout/Txn_abort  -> Aborted,   dur ta-t0
     Lock_waited(t0) ... end of stream             -> Unfinished, dur tend-t0

   Every span carries the waiter's lockable-unit annotation (BLU/HoLU/HeLU +
   depth) and the modes held by its blockers when the wait opened, so the
   same spans aggregate three ways: per LU level (the paper's granule
   question), per resource (hot spots), and per mode×mode conflict cell.
   The sum over any of these partitions equals the total blocked time — the
   report never invents or loses a tick relative to the event stream. *)

type outcome = Granted | Aborted of string | Unfinished

type span = {
  s_txn : int;
  s_resource : string;
  s_mode : string;
  s_holder_modes : string list;  (* distinct, at wait-open; [] = FIFO queue *)
  s_lu : Event.lu option;
  s_blockers : int list;
  s_start : float;
  s_finish : float;
  s_outcome : outcome;
}

let duration span = Float.max 0.0 (span.s_finish -. span.s_start)

type level_stat = {
  v_level : string;
  v_blocked : float;
  v_waits : int;
  v_resources : int;
}

type depth_stat = { d_depth : int; d_blocked : float; d_waits : int }

type resource_stat = {
  r_resource : string;
  r_lu : Event.lu option;
  r_blocked : float;
  r_waits : int;
}

type cell = {
  c_waiter : string;
  c_holder : string;  (* "queue" when blocked by the FIFO rule alone *)
  c_count : int;
  c_blocked : float;
}

type path_step = { p_resource : string; p_blocked : float }

type txn_path = {
  t_txn : int;
  t_blocked : float;
  t_critical : float;
  t_path : path_step list;
}

type report = {
  label : string option;
  events : int;
  first_time : float;
  last_time : float;
  total_blocked : float;
  wait_count : int;
  unfinished : int;
  spans : span list;
  levels : level_stat list;
  depths : depth_stat list;
  resources : resource_stat list;  (* blocked-time descending *)
  matrix : cell list;
  aborts : (string * int) list;
  txns : txn_path list;  (* critical-path descending *)
  snapshots : int;
  peak_wait_edges : int;
}

(* --------------------------------------------------------------- folding *)

type open_wait = {
  ow_mode : string;
  ow_lu : Event.lu option;
  ow_blockers : int list;
  ow_holder_modes : string list;
  ow_start : float;
}

type t = {
  open_waits : (int * string, open_wait) Hashtbl.t;
  held : (int * string, string) Hashtbl.t;  (* current granted modes *)
  resource_lu : (string, Event.lu) Hashtbl.t;
      (* tags learned from any event, so grants/releases annotate waits that
         arrived untagged (and vice versa) *)
  mutable spans : span list;  (* reversed *)
  mutable aborts : (string * int) list;
  mutable events : int;
  mutable first_time : float;
  mutable last_time : float;
  mutable snapshots : int;
  mutable peak_wait_edges : int;
}

let create () =
  { open_waits = Hashtbl.create 64; held = Hashtbl.create 256;
    resource_lu = Hashtbl.create 256; spans = []; aborts = []; events = 0;
    first_time = Float.infinity; last_time = Float.neg_infinity;
    snapshots = 0; peak_wait_edges = 0 }

let count_abort profile cause =
  let current = Option.value ~default:0 (List.assoc_opt cause profile.aborts) in
  profile.aborts <-
    (cause, current + 1) :: List.remove_assoc cause profile.aborts

let learn_lu profile kind =
  match Event.resource_of kind, Event.lu_of kind with
  | Some resource, Some lu -> Hashtbl.replace profile.resource_lu resource lu
  | (Some _ | None), _ -> ()

let lu_for profile resource explicit =
  match explicit with
  | Some _ -> explicit
  | None -> Hashtbl.find_opt profile.resource_lu resource

let close_wait profile key finish s_outcome =
  match Hashtbl.find_opt profile.open_waits key with
  | None -> ()
  | Some wait ->
    Hashtbl.remove profile.open_waits key;
    let txn, resource = key in
    profile.spans <-
      { s_txn = txn; s_resource = resource; s_mode = wait.ow_mode;
        s_holder_modes = wait.ow_holder_modes;
        s_lu = lu_for profile resource wait.ow_lu;
        s_blockers = wait.ow_blockers; s_start = wait.ow_start;
        s_finish = Float.max wait.ow_start finish; s_outcome }
      :: profile.spans

let close_waits_of profile txn finish s_outcome =
  Hashtbl.fold (fun key _wait keys -> key :: keys) profile.open_waits []
  |> List.iter (fun (waiter, resource) ->
         if waiter = txn then
           close_wait profile (waiter, resource) finish s_outcome)

let handle profile event =
  let { Event.time; kind } = event in
  profile.events <- profile.events + 1;
  if time < profile.first_time then profile.first_time <- time;
  if time > profile.last_time then profile.last_time <- time;
  learn_lu profile kind;
  match kind with
  | Event.Lock_waited { txn; resource; mode; blockers; lu; holders } ->
    (* re-waits of an already-queued request keep the original open span *)
    if not (Hashtbl.mem profile.open_waits (txn, resource)) then begin
      let holder_modes =
        match holders with
        | [] ->
          (* pre-holder trace: reconstruct the granted modes from grants
             seen so far *)
          List.filter_map
            (fun blocker -> Hashtbl.find_opt profile.held (blocker, resource))
            blockers
          |> List.sort_uniq String.compare
        | holders ->
          List.map (fun { Event.h_mode; _ } -> h_mode) holders
          |> List.sort_uniq String.compare
      in
      Hashtbl.replace profile.open_waits (txn, resource)
        { ow_mode = mode; ow_lu = lu; ow_blockers = blockers;
          ow_holder_modes = holder_modes; ow_start = time }
    end
  | Event.Lock_granted { txn; resource; mode; _ } ->
    close_wait profile (txn, resource) time Granted;
    Hashtbl.replace profile.held (txn, resource) mode
  | Event.Conversion { txn; resource; to_mode; _ } ->
    Hashtbl.replace profile.held (txn, resource) to_mode
  | Event.Lock_released { txn; resource; _ } ->
    Hashtbl.remove profile.held (txn, resource)
  | Event.Victim_aborted { txn; _ } ->
    count_abort profile "deadlock";
    close_waits_of profile txn time (Aborted "deadlock")
  | Event.Timeout_abort { txn; _ } ->
    count_abort profile "timeout";
    close_waits_of profile txn time (Aborted "timeout")
  | Event.Txn_abort { txn; reason } ->
    (* deadlock/timeout victims were already counted through their specific
       events; the remaining reasons (crash, hog, user, gave_up) only show
       up here *)
    if
      reason <> "deadlock_victim" && reason <> "timeout_victim"
      && reason <> "contention_victim"
    then count_abort profile reason;
    close_waits_of profile txn time (Aborted reason)
  | Event.Contention_abort { txn; _ } ->
    count_abort profile "contention";
    close_waits_of profile txn time (Aborted "contention")
  | Event.Waits_for { edges } ->
    profile.snapshots <- profile.snapshots + 1;
    let count = List.length edges in
    if count > profile.peak_wait_edges then profile.peak_wait_edges <- count
  | Event.Lock_requested _ | Event.Escalation _ | Event.Deescalation _
  | Event.Deadlock_detected _ | Event.Txn_begin _ | Event.Txn_commit _
  | Event.Query_executed _ | Event.Sim_step _ | Event.Run_meta _
  | Event.Slo_breach _ | Event.Admission _ | Event.Admission_limit _
  | Event.Breaker _ | Event.Retry_denied _ ->
    ()

(* ----------------------------------------------------- report assembly *)

let level_of span =
  match span.s_lu with
  | Some { Event.lu_kind; _ } -> lu_kind
  | None -> "untagged"

module String_map = Map.Make (String)
module Int_map = Map.Make (Int)

let assemble_levels spans =
  let accumulate map span =
    let level = level_of span in
    let blocked, waits, resources =
      match String_map.find_opt level map with
      | Some entry -> entry
      | None -> (0.0, 0, String_map.empty)
    in
    String_map.add level
      ( blocked +. duration span,
        waits + 1,
        String_map.add span.s_resource () resources )
      map
  in
  List.fold_left accumulate String_map.empty spans
  |> String_map.bindings
  |> List.map (fun (v_level, (v_blocked, v_waits, resources)) ->
         { v_level; v_blocked; v_waits;
           v_resources = String_map.cardinal resources })
  |> List.sort (fun a b ->
         match Float.compare b.v_blocked a.v_blocked with
         | 0 -> String.compare a.v_level b.v_level
         | order -> order)

let assemble_depths spans =
  let accumulate map span =
    match span.s_lu with
    | None -> map
    | Some { Event.lu_depth; _ } ->
      let blocked, waits =
        match Int_map.find_opt lu_depth map with
        | Some entry -> entry
        | None -> (0.0, 0)
      in
      Int_map.add lu_depth (blocked +. duration span, waits + 1) map
  in
  List.fold_left accumulate Int_map.empty spans
  |> Int_map.bindings
  |> List.map (fun (d_depth, (d_blocked, d_waits)) ->
         { d_depth; d_blocked; d_waits })

let assemble_resources spans =
  let accumulate map span =
    let lu, blocked, waits =
      match String_map.find_opt span.s_resource map with
      | Some entry -> entry
      | None -> (span.s_lu, 0.0, 0)
    in
    let lu = match lu with Some _ -> lu | None -> span.s_lu in
    String_map.add span.s_resource (lu, blocked +. duration span, waits + 1)
      map
  in
  List.fold_left accumulate String_map.empty spans
  |> String_map.bindings
  |> List.map (fun (r_resource, (r_lu, r_blocked, r_waits)) ->
         { r_resource; r_lu; r_blocked; r_waits })
  |> List.sort (fun a b ->
         match Float.compare b.r_blocked a.r_blocked with
         | 0 -> String.compare a.r_resource b.r_resource
         | order -> order)

let assemble_matrix spans =
  let accumulate map span =
    let holders =
      match span.s_holder_modes with [] -> [ "queue" ] | modes -> modes
    in
    List.fold_left
      (fun map holder ->
        let key = (span.s_mode, holder) in
        let count, blocked =
          match List.assoc_opt key map with
          | Some entry -> entry
          | None -> (0, 0.0)
        in
        (key, (count + 1, blocked +. duration span)) :: List.remove_assoc key map)
      map holders
  in
  List.fold_left accumulate [] spans
  |> List.map (fun ((c_waiter, c_holder), (c_count, c_blocked)) ->
         { c_waiter; c_holder; c_count; c_blocked })
  |> List.sort (fun a b ->
         match Float.compare b.c_blocked a.c_blocked with
         | 0 -> compare (a.c_waiter, a.c_holder) (b.c_waiter, b.c_holder)
         | order -> order)

(* Longest wait chain per transaction: a span's wait is lengthened by the
   waits of the transactions blocking it, when those waits overlap it in
   time (the blocker was itself stuck while we waited on it).  Chains are
   memoized per span; the visiting set breaks wait-for cycles (deadlocks are
   exactly such cycles, and a deadlocked chain is still worth reporting —
   it just cannot extend through itself). *)
let assemble_txns spans =
  let spans = Array.of_list spans in
  let count = Array.length spans in
  let by_txn = Hashtbl.create 32 in
  Array.iteri
    (fun index span ->
      let known =
        Option.value ~default:[] (Hashtbl.find_opt by_txn span.s_txn)
      in
      Hashtbl.replace by_txn span.s_txn (index :: known))
    spans;
  let memo = Array.make count None in
  let visiting = Array.make count false in
  let rec chain index =
    match memo.(index) with
    | Some result -> result
    | None ->
      if visiting.(index) then (0.0, [])
      else begin
        visiting.(index) <- true;
        let span = spans.(index) in
        let extension =
          List.fold_left
            (fun best blocker ->
              List.fold_left
                (fun best candidate_index ->
                  let candidate = spans.(candidate_index) in
                  if
                    candidate.s_start < span.s_finish
                    && span.s_start < candidate.s_finish
                  then
                    let length, _path = chain candidate_index in
                    match best with
                    | Some (best_length, _) when best_length >= length -> best
                    | Some _ | None -> Some (length, candidate_index)
                  else best)
                best
                (Option.value ~default:[] (Hashtbl.find_opt by_txn blocker)))
            None span.s_blockers
        in
        let result =
          match extension with
          | None ->
            ( duration span,
              [ { p_resource = span.s_resource; p_blocked = duration span } ] )
          | Some (length, next_index) ->
            let _, path = chain next_index in
            ( duration span +. length,
              { p_resource = span.s_resource; p_blocked = duration span }
              :: path )
        in
        visiting.(index) <- false;
        memo.(index) <- Some result;
        result
      end
  in
  Hashtbl.fold
    (fun txn indexes accu ->
      let blocked =
        List.fold_left
          (fun total index -> total +. duration spans.(index))
          0.0 indexes
      in
      let critical, path =
        List.fold_left
          (fun ((best_length, _) as best) index ->
            let (length, _) as candidate = chain index in
            if length > best_length then candidate else best)
          (0.0, []) indexes
      in
      { t_txn = txn; t_blocked = blocked; t_critical = critical;
        t_path = path }
      :: accu)
    by_txn []
  |> List.sort (fun a b ->
         match Float.compare b.t_critical a.t_critical with
         | 0 -> Int.compare a.t_txn b.t_txn
         | order -> order)

let finish ?label profile =
  let last_time = if profile.events = 0 then 0.0 else profile.last_time in
  (* the stream ended with waiters still queued: attribute their blocked
     time up to the last event, marked unfinished *)
  Hashtbl.fold (fun key _wait keys -> key :: keys) profile.open_waits []
  |> List.iter (fun key -> close_wait profile key last_time Unfinished);
  let spans = List.rev profile.spans in
  let total_blocked =
    List.fold_left (fun total span -> total +. duration span) 0.0 spans
  in
  let unfinished =
    List.length
      (List.filter (fun span -> span.s_outcome = Unfinished) spans)
  in
  { label; events = profile.events;
    first_time = (if profile.events = 0 then 0.0 else profile.first_time);
    last_time; total_blocked; wait_count = List.length spans; unfinished;
    spans; levels = assemble_levels spans; depths = assemble_depths spans;
    resources = assemble_resources spans; matrix = assemble_matrix spans;
    aborts =
      List.sort (fun (a, _) (b, _) -> String.compare a b) profile.aborts;
    txns = assemble_txns spans; snapshots = profile.snapshots;
    peak_wait_edges = profile.peak_wait_edges }

let of_events ?label events =
  let profile = create () in
  List.iter (handle profile) events;
  finish ?label profile

(* A JSONL file can hold several runs, delimited by [Run_meta] lines; each
   becomes its own report.  Events before the first delimiter form an
   unlabelled report (a bare [colock simulate --jsonl] single-run trace). *)
let of_trace events =
  let flush reports label batch =
    match batch, label with
    | [], None -> reports
    | batch, label -> of_events ?label (List.rev batch) :: reports
  in
  let reports, label, batch =
    List.fold_left
      (fun (reports, label, batch) event ->
        match event.Event.kind with
        | Event.Run_meta { label = next } ->
          (flush reports label batch, Some next, [])
        | _ -> (reports, label, event :: batch))
      ([], None, []) events
  in
  List.rev (flush reports label batch)

(* Each span's duration split equally over its blockers ("queue" when the
   FIFO rule alone blocked it); the equal split's float residue lands on
   the first (sorted) share so the partition sums to total_blocked to the
   tick — the same discipline Blame and Diff use. *)
let blockers (report : report) =
  let accumulate map span =
    let keys =
      match span.s_blockers with
      | [] -> [ "queue" ]
      | blockers ->
        List.sort_uniq String.compare
          (List.map (fun txn -> "T" ^ string_of_int txn) blockers)
    in
    let shares =
      match keys with
      | [] -> []
      | [ key ] -> [ (key, duration span) ]
      | first :: rest ->
        let width = duration span /. float_of_int (List.length keys) in
        let tail =
          List.fold_left (fun total _key -> total +. width) 0.0 rest
        in
        (first, duration span -. tail)
        :: List.map (fun key -> (key, width)) rest
    in
    List.fold_left
      (fun map (key, weight) ->
        let blocked, waits =
          match String_map.find_opt key map with
          | Some cell -> cell
          | None -> (0.0, 0)
        in
        String_map.add key (blocked +. weight, waits + 1) map)
      map shares
  in
  List.fold_left accumulate String_map.empty report.spans
  |> String_map.bindings
  |> List.map (fun (label, (blocked, waits)) -> (label, blocked, waits))
  |> List.sort (fun (a_label, a_blocked, _) (b_label, b_blocked, _) ->
         match Float.compare b_blocked a_blocked with
         | 0 -> String.compare a_label b_label
         | order -> order)

(* ------------------------------------------------------------ rendering *)

let json_of_lu = function
  | None -> Json.Null
  | Some { Event.lu_kind; lu_depth } ->
    Json.Obj [ ("kind", Json.String lu_kind); ("depth", Json.Int lu_depth) ]

let to_json report =
  Json.Obj
    [ ( "label",
        match report.label with
        | Some label -> Json.String label
        | None -> Json.Null );
      ("events", Json.Int report.events);
      ("first_time", Json.Float report.first_time);
      ("last_time", Json.Float report.last_time);
      ("total_blocked", Json.Float report.total_blocked);
      ("wait_count", Json.Int report.wait_count);
      ("unfinished", Json.Int report.unfinished);
      ( "levels",
        Json.List
          (List.map
             (fun level ->
               Json.Obj
                 [ ("level", Json.String level.v_level);
                   ("blocked", Json.Float level.v_blocked);
                   ("waits", Json.Int level.v_waits);
                   ("resources", Json.Int level.v_resources) ])
             report.levels) );
      ( "depths",
        Json.List
          (List.map
             (fun depth ->
               Json.Obj
                 [ ("depth", Json.Int depth.d_depth);
                   ("blocked", Json.Float depth.d_blocked);
                   ("waits", Json.Int depth.d_waits) ])
             report.depths) );
      ( "resources",
        Json.List
          (List.map
             (fun resource ->
               Json.Obj
                 [ ("resource", Json.String resource.r_resource);
                   ("lu", json_of_lu resource.r_lu);
                   ("blocked", Json.Float resource.r_blocked);
                   ("waits", Json.Int resource.r_waits) ])
             report.resources) );
      ( "conflicts",
        Json.List
          (List.map
             (fun cell ->
               Json.Obj
                 [ ("waiter", Json.String cell.c_waiter);
                   ("holder", Json.String cell.c_holder);
                   ("count", Json.Int cell.c_count);
                   ("blocked", Json.Float cell.c_blocked) ])
             report.matrix) );
      ( "aborts",
        Json.Obj
          (List.map (fun (cause, count) -> (cause, Json.Int count))
             report.aborts) );
      ( "transactions",
        Json.List
          (List.map
             (fun txn ->
               Json.Obj
                 [ ("txn", Json.Int txn.t_txn);
                   ("blocked", Json.Float txn.t_blocked);
                   ("critical", Json.Float txn.t_critical);
                   ( "path",
                     Json.List
                       (List.map
                          (fun step ->
                            Json.Obj
                              [ ("resource", Json.String step.p_resource);
                                ("blocked", Json.Float step.p_blocked) ])
                          txn.t_path) ) ])
             report.txns) );
      ("snapshots", Json.Int report.snapshots);
      ("peak_wait_edges", Json.Int report.peak_wait_edges) ]

let truncated limit items = List.filteri (fun index _item -> index < limit) items

let lu_text = function
  | None -> "-"
  | Some { Event.lu_kind; lu_depth } -> Printf.sprintf "%s@%d" lu_kind lu_depth

let pp ?(top = 10) formatter report =
  let line format = Format.fprintf formatter format in
  (match report.label with
   | Some label -> line "=== contention report: %s ===@," label
   | None -> line "=== contention report ===@,");
  line "events %d, time %g..%g@," report.events report.first_time
    report.last_time;
  line "blocked time %g across %d wait(s), %d unfinished@,"
    report.total_blocked report.wait_count report.unfinished;
  if report.snapshots > 0 then
    line "wait-for snapshots %d, peak %d edge(s)@," report.snapshots
      report.peak_wait_edges;
  (match report.aborts with
   | [] -> ()
   | aborts ->
     line "aborts:%s@,"
       (String.concat ""
          (List.map
             (fun (cause, count) -> Printf.sprintf " %s=%d" cause count)
             aborts)));
  if report.levels <> [] then begin
    line "@,blocked time by lockable-unit level:@,";
    line "  %-10s %12s %8s %10s@," "LEVEL" "BLOCKED" "WAITS" "RESOURCES";
    List.iter
      (fun level ->
        line "  %-10s %12g %8d %10d@," level.v_level level.v_blocked
          level.v_waits level.v_resources)
      report.levels
  end;
  if report.depths <> [] then begin
    line "@,blocked time by graph depth:@,";
    line "  %-10s %12s %8s@," "DEPTH" "BLOCKED" "WAITS";
    List.iter
      (fun depth ->
        line "  %-10d %12g %8d@," depth.d_depth depth.d_blocked depth.d_waits)
      report.depths
  end;
  if report.resources <> [] then begin
    line "@,hot resources (top %d of %d):@,"
      (min top (List.length report.resources))
      (List.length report.resources);
    line "  %12s %8s %-10s %s@," "BLOCKED" "WAITS" "LU" "RESOURCE";
    List.iter
      (fun resource ->
        line "  %12g %8d %-10s %s@," resource.r_blocked resource.r_waits
          (lu_text resource.r_lu) resource.r_resource)
      (truncated top report.resources)
  end;
  if report.matrix <> [] then begin
    line "@,conflicts (waiter mode x holder mode):@,";
    line "  %-8s %-8s %8s %12s@," "WAITER" "HOLDER" "COUNT" "BLOCKED";
    List.iter
      (fun cell ->
        line "  %-8s %-8s %8d %12g@," cell.c_waiter cell.c_holder cell.c_count
          cell.c_blocked)
      report.matrix
  end;
  if report.txns <> [] then begin
    line "@,critical paths (top %d of %d):@,"
      (min top (List.length report.txns))
      (List.length report.txns);
    List.iter
      (fun txn ->
        line "  T%d blocked %g, critical %g: %s@," txn.t_txn txn.t_blocked
          txn.t_critical
          (String.concat " -> "
             (List.map
                (fun step ->
                  Printf.sprintf "%s (%g)" step.p_resource step.p_blocked)
                txn.t_path)))
      (truncated top report.txns)
  end

let print ?top channel report =
  let formatter = Format.formatter_of_out_channel channel in
  Format.fprintf formatter "@[<v>%a@]@." (fun fmt -> pp ?top fmt) report
