(* Lock modes travel as strings so this library stays below [Lockmgr] in the
   dependency order (every layer, including the lock manager itself, emits
   into it). *)

type kind =
  | Lock_requested of { txn : int; resource : string; mode : string }
  | Lock_granted of {
      txn : int;
      resource : string;
      mode : string;
      immediate : bool;  (* false: granted from the wait queue *)
    }
  | Lock_waited of {
      txn : int;
      resource : string;
      mode : string;
      blockers : int list;
    }
  | Lock_released of { txn : int; resource : string }
  | Conversion of {
      txn : int;
      resource : string;
      from_mode : string;
      to_mode : string;
    }
  | Escalation of {
      txn : int;
      node : string;
      mode : string;
      released_children : int;
    }
  | Deescalation of { txn : int; node : string; mode : string }
  | Deadlock_detected of { cycle : int list }
  | Victim_aborted of { txn : int; restarts : int }
  | Timeout_abort of { txn : int; resource : string; waited : int }
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Query_executed of {
      txn : int;
      query : string;
      rows : int;
      locks_requested : int;
    }
  | Sim_step of { txn : int; step : int }

type t = { time : float; kind : kind }

let name = function
  | Lock_requested _ -> "lock_requested"
  | Lock_granted _ -> "lock_granted"
  | Lock_waited _ -> "lock_waited"
  | Lock_released _ -> "lock_released"
  | Conversion _ -> "conversion"
  | Escalation _ -> "escalation"
  | Deescalation _ -> "deescalation"
  | Deadlock_detected _ -> "deadlock_detected"
  | Victim_aborted _ -> "victim_aborted"
  | Timeout_abort _ -> "timeout_abort"
  | Txn_begin _ -> "txn_begin"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Query_executed _ -> "query_executed"
  | Sim_step _ -> "sim_step"

let txn = function
  | Lock_requested { txn; _ } | Lock_granted { txn; _ }
  | Lock_waited { txn; _ } | Lock_released { txn; _ }
  | Conversion { txn; _ } | Escalation { txn; _ } | Deescalation { txn; _ }
  | Victim_aborted { txn; _ } | Timeout_abort { txn; _ } | Txn_begin { txn }
  | Txn_commit { txn } | Txn_abort { txn; _ } | Query_executed { txn; _ }
  | Sim_step { txn; _ } ->
    Some txn
  | Deadlock_detected _ -> None

let kind_fields = function
  | Lock_requested { txn; resource; mode } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("mode", Json.String mode) ]
  | Lock_granted { txn; resource; mode; immediate } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("mode", Json.String mode); ("immediate", Json.Bool immediate) ]
  | Lock_waited { txn; resource; mode; blockers } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("mode", Json.String mode);
      ("blockers", Json.List (List.map (fun b -> Json.Int b) blockers)) ]
  | Lock_released { txn; resource } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource) ]
  | Conversion { txn; resource; from_mode; to_mode } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("from", Json.String from_mode); ("to", Json.String to_mode) ]
  | Escalation { txn; node; mode; released_children } ->
    [ ("txn", Json.Int txn); ("node", Json.String node);
      ("mode", Json.String mode);
      ("released_children", Json.Int released_children) ]
  | Deescalation { txn; node; mode } ->
    [ ("txn", Json.Int txn); ("node", Json.String node);
      ("mode", Json.String mode) ]
  | Deadlock_detected { cycle } ->
    [ ("cycle", Json.List (List.map (fun t -> Json.Int t) cycle)) ]
  | Victim_aborted { txn; restarts } ->
    [ ("txn", Json.Int txn); ("restarts", Json.Int restarts) ]
  | Timeout_abort { txn; resource; waited } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("waited", Json.Int waited) ]
  | Txn_begin { txn } | Txn_commit { txn } -> [ ("txn", Json.Int txn) ]
  | Txn_abort { txn; reason } ->
    [ ("txn", Json.Int txn); ("reason", Json.String reason) ]
  | Query_executed { txn; query; rows; locks_requested } ->
    [ ("txn", Json.Int txn); ("query", Json.String query);
      ("rows", Json.Int rows); ("locks_requested", Json.Int locks_requested) ]
  | Sim_step { txn; step } ->
    [ ("txn", Json.Int txn); ("step", Json.Int step) ]

let to_json event =
  Json.Obj
    (("event", Json.String (name event.kind))
     :: ("time", Json.Float event.time)
     :: kind_fields event.kind)

let pp formatter event =
  Format.fprintf formatter "%s" (Json.to_string (to_json event))
