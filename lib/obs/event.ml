(* Lock modes travel as strings so this library stays below [Lockmgr] in the
   dependency order (every layer, including the lock manager itself, emits
   into it). *)

type lu = { lu_kind : string; lu_depth : int }
type holder = { h_txn : int; h_mode : string; h_lu : lu option }

type kind =
  | Lock_requested of {
      txn : int;
      resource : string;
      mode : string;
      lu : lu option;
    }
  | Lock_granted of {
      txn : int;
      resource : string;
      mode : string;
      immediate : bool;  (* false: granted from the wait queue *)
      lu : lu option;
      holders : holder list;
          (* queue-served grants: the granted group that blocked the request
             while it was queued; [] on immediate grants *)
    }
  | Lock_waited of {
      txn : int;
      resource : string;
      mode : string;
      blockers : int list;
      lu : lu option;
      holders : holder list;
          (* the incompatible granted group at enqueue time, with modes;
             [] when blocked by the FIFO rule alone *)
    }
  | Lock_released of { txn : int; resource : string; lu : lu option }
  | Conversion of {
      txn : int;
      resource : string;
      from_mode : string;
      to_mode : string;
      lu : lu option;
    }
  | Escalation of {
      txn : int;
      node : string;
      mode : string;
      released_children : int;
    }
  | Deescalation of { txn : int; node : string; mode : string }
  | Deadlock_detected of { cycle : int list }
  | Victim_aborted of { txn : int; restarts : int }
  | Timeout_abort of {
      txn : int;
      resource : string;
      waited : int;
      lu : lu option;
    }
  | Txn_begin of { txn : int }
  | Txn_commit of { txn : int }
  | Txn_abort of { txn : int; reason : string }
  | Query_executed of {
      txn : int;
      query : string;
      rows : int;
      locks_requested : int;
    }
  | Sim_step of { txn : int; step : int }
  | Waits_for of { edges : (int * int) list }
  | Run_meta of { label : string }
  | Slo_breach of { rule : string; value : float; threshold : float }
  | Admission of { txn : int; priority : string; decision : string }
  | Admission_limit of {
      limit : int;
      inflight : int;
      queued : int;
      shed : int;
    }
  | Breaker of { from_state : string; to_state : string }
  | Retry_denied of { txn : int; restarts : int }
  | Contention_abort of { txn : int; policy : string; depth : int }

type t = { time : float; kind : kind }

let name = function
  | Lock_requested _ -> "lock_requested"
  | Lock_granted _ -> "lock_granted"
  | Lock_waited _ -> "lock_waited"
  | Lock_released _ -> "lock_released"
  | Conversion _ -> "conversion"
  | Escalation _ -> "escalation"
  | Deescalation _ -> "deescalation"
  | Deadlock_detected _ -> "deadlock_detected"
  | Victim_aborted _ -> "victim_aborted"
  | Timeout_abort _ -> "timeout_abort"
  | Txn_begin _ -> "txn_begin"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Query_executed _ -> "query_executed"
  | Sim_step _ -> "sim_step"
  | Waits_for _ -> "waits_for"
  | Run_meta _ -> "run_meta"
  | Slo_breach _ -> "slo_breach"
  | Admission _ -> "admission"
  | Admission_limit _ -> "admission_limit"
  | Breaker _ -> "breaker"
  | Retry_denied _ -> "retry_denied"
  | Contention_abort _ -> "contention_abort"

let txn = function
  | Lock_requested { txn; _ } | Lock_granted { txn; _ }
  | Lock_waited { txn; _ } | Lock_released { txn; _ }
  | Conversion { txn; _ } | Escalation { txn; _ } | Deescalation { txn; _ }
  | Victim_aborted { txn; _ } | Timeout_abort { txn; _ } | Txn_begin { txn }
  | Txn_commit { txn } | Txn_abort { txn; _ } | Query_executed { txn; _ }
  | Sim_step { txn; _ } | Admission { txn; _ } | Retry_denied { txn; _ }
  | Contention_abort { txn; _ } ->
    Some txn
  | Deadlock_detected _ | Waits_for _ | Run_meta _ | Slo_breach _
  | Admission_limit _ | Breaker _ ->
    None

let lu_of = function
  | Lock_requested { lu; _ } | Lock_granted { lu; _ } | Lock_waited { lu; _ }
  | Lock_released { lu; _ } | Conversion { lu; _ } | Timeout_abort { lu; _ } ->
    lu
  | Escalation _ | Deescalation _ | Deadlock_detected _ | Victim_aborted _
  | Txn_begin _ | Txn_commit _ | Txn_abort _ | Query_executed _ | Sim_step _
  | Waits_for _ | Run_meta _ | Slo_breach _ | Admission _ | Admission_limit _
  | Breaker _ | Retry_denied _ | Contention_abort _ ->
    None

let resource_of = function
  | Lock_requested { resource; _ } | Lock_granted { resource; _ }
  | Lock_waited { resource; _ } | Lock_released { resource; _ }
  | Conversion { resource; _ } | Timeout_abort { resource; _ } ->
    Some resource
  | Escalation { node; _ } | Deescalation { node; _ } -> Some node
  | Deadlock_detected _ | Victim_aborted _ | Txn_begin _ | Txn_commit _
  | Txn_abort _ | Query_executed _ | Sim_step _ | Waits_for _ | Run_meta _
  | Slo_breach _ | Admission _ | Admission_limit _ | Breaker _
  | Retry_denied _ | Contention_abort _ ->
    None

(* LU annotations serialize flat ([lu], [depth]) so jq filters stay one
   level deep; absent tags produce no fields at all, keeping untagged
   streams byte-identical to pre-profiler captures. *)
let lu_fields = function
  | None -> []
  | Some { lu_kind; lu_depth } ->
    [ ("lu", Json.String lu_kind); ("depth", Json.Int lu_depth) ]

(* Holders serialize as a list of small objects; an empty list writes no
   field at all, so holder-free streams stay byte-identical to pre-blame
   captures. *)
let holder_fields = function
  | [] -> []
  | holders ->
    [ ( "holders",
        Json.List
          (List.map
             (fun { h_txn; h_mode; h_lu } ->
               Json.Obj
                 ([ ("txn", Json.Int h_txn); ("mode", Json.String h_mode) ]
                 @ lu_fields h_lu))
             holders) ) ]

let kind_fields = function
  | Lock_requested { txn; resource; mode; lu } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("mode", Json.String mode) ]
    @ lu_fields lu
  | Lock_granted { txn; resource; mode; immediate; lu; holders } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("mode", Json.String mode); ("immediate", Json.Bool immediate) ]
    @ lu_fields lu @ holder_fields holders
  | Lock_waited { txn; resource; mode; blockers; lu; holders } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("mode", Json.String mode);
      ("blockers", Json.List (List.map (fun b -> Json.Int b) blockers)) ]
    @ lu_fields lu @ holder_fields holders
  | Lock_released { txn; resource; lu } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource) ]
    @ lu_fields lu
  | Conversion { txn; resource; from_mode; to_mode; lu } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("from", Json.String from_mode); ("to", Json.String to_mode) ]
    @ lu_fields lu
  | Escalation { txn; node; mode; released_children } ->
    [ ("txn", Json.Int txn); ("node", Json.String node);
      ("mode", Json.String mode);
      ("released_children", Json.Int released_children) ]
  | Deescalation { txn; node; mode } ->
    [ ("txn", Json.Int txn); ("node", Json.String node);
      ("mode", Json.String mode) ]
  | Deadlock_detected { cycle } ->
    [ ("cycle", Json.List (List.map (fun t -> Json.Int t) cycle)) ]
  | Victim_aborted { txn; restarts } ->
    [ ("txn", Json.Int txn); ("restarts", Json.Int restarts) ]
  | Timeout_abort { txn; resource; waited; lu } ->
    [ ("txn", Json.Int txn); ("resource", Json.String resource);
      ("waited", Json.Int waited) ]
    @ lu_fields lu
  | Txn_begin { txn } | Txn_commit { txn } -> [ ("txn", Json.Int txn) ]
  | Txn_abort { txn; reason } ->
    [ ("txn", Json.Int txn); ("reason", Json.String reason) ]
  | Query_executed { txn; query; rows; locks_requested } ->
    [ ("txn", Json.Int txn); ("query", Json.String query);
      ("rows", Json.Int rows); ("locks_requested", Json.Int locks_requested) ]
  | Sim_step { txn; step } ->
    [ ("txn", Json.Int txn); ("step", Json.Int step) ]
  | Waits_for { edges } ->
    [ ( "edges",
        Json.List
          (List.map
             (fun (waiter, blocker) ->
               Json.List [ Json.Int waiter; Json.Int blocker ])
             edges) ) ]
  | Run_meta { label } -> [ ("label", Json.String label) ]
  | Slo_breach { rule; value; threshold } ->
    [ ("rule", Json.String rule); ("value", Json.Float value);
      ("threshold", Json.Float threshold) ]
  | Admission { txn; priority; decision } ->
    [ ("txn", Json.Int txn); ("priority", Json.String priority);
      ("decision", Json.String decision) ]
  | Admission_limit { limit; inflight; queued; shed } ->
    [ ("limit", Json.Int limit); ("inflight", Json.Int inflight);
      ("queued", Json.Int queued); ("shed", Json.Int shed) ]
  | Breaker { from_state; to_state } ->
    [ ("from", Json.String from_state); ("to", Json.String to_state) ]
  | Retry_denied { txn; restarts } ->
    [ ("txn", Json.Int txn); ("restarts", Json.Int restarts) ]
  | Contention_abort { txn; policy; depth } ->
    [ ("txn", Json.Int txn); ("policy", Json.String policy);
      ("depth", Json.Int depth) ]

let to_json event =
  Json.Obj
    (("event", Json.String (name event.kind))
     :: ("time", Json.Float event.time)
     :: kind_fields event.kind)

(* ------------------------------------------------------------- decoding *)

(* The decoder accepts exactly what [to_json] produces (the JSONL trace
   format), so captures round-trip: offline analysis reuses the same typed
   fold as online sinks. *)

let ( let* ) = Result.bind

let field fields key =
  match List.assoc_opt key fields with
  | Some json -> Ok json
  | None -> Error (Printf.sprintf "missing field %S" key)

let int_field fields key =
  let* json = field fields key in
  match json with
  | Json.Int n -> Ok n
  | Json.Float f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "field %S is not an integer" key)

let string_field fields key =
  let* json = field fields key in
  match json with
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S is not a string" key)

let bool_field fields key =
  let* json = field fields key in
  match json with
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S is not a boolean" key)

let float_field fields key =
  let* json = field fields key in
  match json with
  | Json.Float f -> Ok f
  | Json.Int n -> Ok (float_of_int n)
  | _ -> Error (Printf.sprintf "field %S is not a number" key)

let int_list_field fields key =
  let* json = field fields key in
  match json with
  | Json.List items ->
    List.fold_left
      (fun accu item ->
        let* accu = accu in
        match item with
        | Json.Int n -> Ok (n :: accu)
        | _ -> Error (Printf.sprintf "field %S holds a non-integer" key))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "field %S is not a list" key)

let lu_field fields =
  match List.assoc_opt "lu" fields with
  | None -> Ok None
  | Some (Json.String lu_kind) ->
    let* lu_depth = int_field fields "depth" in
    Ok (Some { lu_kind; lu_depth })
  | Some _ -> Error "field \"lu\" is not a string"

(* Absent means []: traces captured before holders existed decode fine. *)
let holders_field fields =
  match List.assoc_opt "holders" fields with
  | None -> Ok []
  | Some (Json.List items) ->
    List.fold_left
      (fun accu item ->
        let* accu = accu in
        match item with
        | Json.Obj holder_fields ->
          let* h_txn = int_field holder_fields "txn" in
          let* h_mode = string_field holder_fields "mode" in
          let* h_lu = lu_field holder_fields in
          Ok ({ h_txn; h_mode; h_lu } :: accu)
        | _ -> Error "field \"holders\" holds a non-object")
      (Ok []) items
    |> Result.map List.rev
  | Some _ -> Error "field \"holders\" is not a list"

let kind_of_fields event_name fields =
  match event_name with
  | "lock_requested" ->
    let* txn = int_field fields "txn" in
    let* resource = string_field fields "resource" in
    let* mode = string_field fields "mode" in
    let* lu = lu_field fields in
    Ok (Lock_requested { txn; resource; mode; lu })
  | "lock_granted" ->
    let* txn = int_field fields "txn" in
    let* resource = string_field fields "resource" in
    let* mode = string_field fields "mode" in
    let* immediate = bool_field fields "immediate" in
    let* lu = lu_field fields in
    let* holders = holders_field fields in
    Ok (Lock_granted { txn; resource; mode; immediate; lu; holders })
  | "lock_waited" ->
    let* txn = int_field fields "txn" in
    let* resource = string_field fields "resource" in
    let* mode = string_field fields "mode" in
    let* blockers = int_list_field fields "blockers" in
    let* lu = lu_field fields in
    let* holders = holders_field fields in
    Ok (Lock_waited { txn; resource; mode; blockers; lu; holders })
  | "lock_released" ->
    let* txn = int_field fields "txn" in
    let* resource = string_field fields "resource" in
    let* lu = lu_field fields in
    Ok (Lock_released { txn; resource; lu })
  | "conversion" ->
    let* txn = int_field fields "txn" in
    let* resource = string_field fields "resource" in
    let* from_mode = string_field fields "from" in
    let* to_mode = string_field fields "to" in
    let* lu = lu_field fields in
    Ok (Conversion { txn; resource; from_mode; to_mode; lu })
  | "escalation" ->
    let* txn = int_field fields "txn" in
    let* node = string_field fields "node" in
    let* mode = string_field fields "mode" in
    let* released_children = int_field fields "released_children" in
    Ok (Escalation { txn; node; mode; released_children })
  | "deescalation" ->
    let* txn = int_field fields "txn" in
    let* node = string_field fields "node" in
    let* mode = string_field fields "mode" in
    Ok (Deescalation { txn; node; mode })
  | "deadlock_detected" ->
    let* cycle = int_list_field fields "cycle" in
    Ok (Deadlock_detected { cycle })
  | "victim_aborted" ->
    let* txn = int_field fields "txn" in
    let* restarts = int_field fields "restarts" in
    Ok (Victim_aborted { txn; restarts })
  | "timeout_abort" ->
    let* txn = int_field fields "txn" in
    let* resource = string_field fields "resource" in
    let* waited = int_field fields "waited" in
    let* lu = lu_field fields in
    Ok (Timeout_abort { txn; resource; waited; lu })
  | "txn_begin" ->
    let* txn = int_field fields "txn" in
    Ok (Txn_begin { txn })
  | "txn_commit" ->
    let* txn = int_field fields "txn" in
    Ok (Txn_commit { txn })
  | "txn_abort" ->
    let* txn = int_field fields "txn" in
    let* reason = string_field fields "reason" in
    Ok (Txn_abort { txn; reason })
  | "query_executed" ->
    let* txn = int_field fields "txn" in
    let* query = string_field fields "query" in
    let* rows = int_field fields "rows" in
    let* locks_requested = int_field fields "locks_requested" in
    Ok (Query_executed { txn; query; rows; locks_requested })
  | "sim_step" ->
    let* txn = int_field fields "txn" in
    let* step = int_field fields "step" in
    Ok (Sim_step { txn; step })
  | "waits_for" ->
    let* json = field fields "edges" in
    (match json with
     | Json.List items ->
       let* edges =
         List.fold_left
           (fun accu item ->
             let* accu = accu in
             match item with
             | Json.List [ Json.Int waiter; Json.Int blocker ] ->
               Ok ((waiter, blocker) :: accu)
             | _ -> Error "field \"edges\" holds a malformed pair")
           (Ok []) items
       in
       Ok (Waits_for { edges = List.rev edges })
     | _ -> Error "field \"edges\" is not a list")
  | "run_meta" ->
    let* label = string_field fields "label" in
    Ok (Run_meta { label })
  | "slo_breach" ->
    let* rule = string_field fields "rule" in
    let* value = float_field fields "value" in
    let* threshold = float_field fields "threshold" in
    Ok (Slo_breach { rule; value; threshold })
  | "admission" ->
    let* txn = int_field fields "txn" in
    let* priority = string_field fields "priority" in
    let* decision = string_field fields "decision" in
    Ok (Admission { txn; priority; decision })
  | "admission_limit" ->
    let* limit = int_field fields "limit" in
    let* inflight = int_field fields "inflight" in
    let* queued = int_field fields "queued" in
    let* shed = int_field fields "shed" in
    Ok (Admission_limit { limit; inflight; queued; shed })
  | "breaker" ->
    let* from_state = string_field fields "from" in
    let* to_state = string_field fields "to" in
    Ok (Breaker { from_state; to_state })
  | "retry_denied" ->
    let* txn = int_field fields "txn" in
    let* restarts = int_field fields "restarts" in
    Ok (Retry_denied { txn; restarts })
  | "contention_abort" ->
    let* txn = int_field fields "txn" in
    let* policy = string_field fields "policy" in
    let* depth = int_field fields "depth" in
    Ok (Contention_abort { txn; policy; depth })
  | other -> Error (Printf.sprintf "unknown event %S" other)

let of_json = function
  | Json.Obj fields ->
    let* event_name = string_field fields "event" in
    let* time = float_field fields "time" in
    let* kind = kind_of_fields event_name fields in
    Ok { time; kind }
  | _ -> Error "event is not a JSON object"

let pp formatter event =
  Format.fprintf formatter "%s" (Json.to_string (to_json event))
