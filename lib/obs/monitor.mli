(** The live operations monitor: a sink handler folding the event stream
    into gauges, sliding windows and per-resource contention tallies — the
    state behind [/metrics], the SLO engine and [colock top].

    It embeds a {!Collector} on the same registry, so the cumulative
    [events.*] counters and whole-run latency histograms ride along; the
    monitor adds the live layer:

    - gauges [active_txns], [lock_entries], [wait_queue_depth]
    - windows [window.grants], [window.commits], [window.aborts],
      [window.deadlocks] (rates) and [window.lock_wait] (wait-time
      quantiles), each also registered per lockable-unit kind as
      [...{lu="BLU"}] / [HoLU] / [HeLU] — live contention attributed to
      the paper's granule hierarchy exactly as [Profile] attributes it
      offline
    - [aborts.<reason>] counters (the same taxonomy as [Profile])
    - per-resource blocked time for the "top contended resources" panel,
      tracked through a {!Sketch} so at most [hot_k] resources are held no
      matter how many distinct objects the stream touches; the tracked set
      is exported live as [hot_resource{resource="..."}] gauges
    - per-blocker blamed wait time ([hot_blocker{blocker="T7"}] gauges,
      ["queue"] for FIFO-rule waits), split equally across the holders
      recorded on each [Lock_waited] event — the live counterpart of
      {!Blame}'s offline attribution
    - robustness gauges: [admission_limit] / [admission_inflight] /
      [admission_queued] / [admission_shed] snapshot the AIMD limiter,
      [breaker_state] encodes the circuit breaker (0 closed, 1 half-open,
      2 open), [retry_denied] mirrors the exhausted-retry-budget counter

    A [Run_meta] event resets the registry and relabels the monitor, so one
    process comparing several techniques against one live endpoint never
    bleeds stats between runs. *)

type resource_stat = {
  mutable r_blocked : float;
  mutable r_waits : int;
  mutable r_lu : Event.lu option;
}

type t

val create : ?registry:Registry.t -> ?span:float -> ?hot_k:int -> unit -> t
(** [span] is the sliding-window length in clock units (default 200 —
    about an access-burst of simulator ticks; pass seconds-scale spans for
    wall-clock sinks). [hot_k] (default 32) bounds the hot-resource and
    hot-blocker sketches — and with them the [hot_*] gauge cardinality;
    raises [Invalid_argument] when [hot_k <= 0]. *)

val registry : t -> Registry.t
val span : t -> float

val handle : t -> Event.t -> unit
(** The sink handler: attach with [Sink.attach sink (Monitor.handle m)]. *)

val label : t -> string option
(** The current run's label (from [Run_meta] or {!begin_run}). *)

val begin_run : t -> label:string -> unit
(** Resets everything and relabels — what a [Run_meta] event does, for
    callers driving the monitor directly. *)

val now : t -> float
(** Clock value of the latest event seen. *)

val started : t -> float
(** Clock value of the first event of the current run (0 before any). *)

val elapsed : t -> float

val commits : t -> int
val throughput : t -> float
(** Commits per clock unit since the run started. *)

val aborts : t -> (string * int) list
(** Abort taxonomy, [(reason, count)] sorted by reason. *)

val hot_resources : ?top:int -> t -> (string * resource_stat) list
(** Most-blocked-on resources, descending blocked time (ties by name).
    Bounded by [hot_k]: [r_blocked] is the sketch estimate (exact while
    fewer than [hot_k] distinct resources ever blocked anyone). *)

val hot_blockers : ?top:int -> t -> (string * float) list
(** Transactions most blamed for others' wait time, [(label, blamed)]
    descending (labels ["T<id>"] or ["queue"]); sketch-bounded like
    {!hot_resources}. *)

val hot_k : t -> int

val breaches : t -> (float * string) list
(** SLO breach events seen this run, oldest first (last 32 kept). *)

val sync_sink : t -> Sink.t -> unit
(** Copies the sink's self-accounting into [obs_events_emitted] /
    [obs_events_dropped] / [obs_bytes_written] gauges — call before
    rendering a snapshot so the pipeline's own health is part of it. *)

val locked : t -> (unit -> 'a) -> 'a
(** Runs [f] under the monitor's mutex. {!handle} takes it per event; an
    HTTP accept thread must take it around snapshot rendering so it never
    reads a hashtable mid-rehash. *)
