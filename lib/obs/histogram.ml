(* Log-scale (base-2) buckets: bucket 0 holds [0, 1), bucket b (1 <= b < 63)
   holds [2^(b-1), 2^b), and the last bucket is the overflow for everything
   at or above 2^62.  Exact min/max/sum are tracked alongside, so quantile
   interpolation can clamp to observed values — a single-sample histogram
   reports that sample for every quantile. *)

let bucket_count = 64
let overflow = bucket_count - 1

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_value : float;
  mutable max_value : float;
}

let create () =
  { buckets = Array.make bucket_count 0; count = 0; sum = 0.0;
    min_value = Float.infinity; max_value = Float.neg_infinity }

let reset histogram =
  Array.fill histogram.buckets 0 bucket_count 0;
  histogram.count <- 0;
  histogram.sum <- 0.0;
  histogram.min_value <- Float.infinity;
  histogram.max_value <- Float.neg_infinity

let bucket_of value =
  if value < 1.0 then 0
  else
    (* frexp: value = m * 2^e with m in [0.5, 1), so e >= 1 for value >= 1 *)
    let (_, exponent) = Float.frexp value in
    min exponent overflow

(* Inclusive lower bound of a bucket. *)
let lower_bound bucket = if bucket = 0 then 0.0 else Float.ldexp 1.0 (bucket - 1)

let observe histogram value =
  let value = Float.max value 0.0 in
  let bucket = bucket_of value in
  histogram.buckets.(bucket) <- histogram.buckets.(bucket) + 1;
  histogram.count <- histogram.count + 1;
  histogram.sum <- histogram.sum +. value;
  if value < histogram.min_value then histogram.min_value <- value;
  if value > histogram.max_value then histogram.max_value <- value

let count histogram = histogram.count
let sum histogram = histogram.sum
let mean histogram =
  if histogram.count = 0 then 0.0
  else histogram.sum /. float_of_int histogram.count

let max_value histogram = if histogram.count = 0 then 0.0 else histogram.max_value
let min_value histogram = if histogram.count = 0 then 0.0 else histogram.min_value

let quantile histogram q =
  if histogram.count = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int histogram.count in
    let rec locate bucket cumulative =
      if bucket > overflow then histogram.max_value
      else
        let here = histogram.buckets.(bucket) in
        let reached = cumulative +. float_of_int here in
        if here > 0 && reached >= rank then begin
          (* Linear interpolation inside the bucket; the overflow bucket's
             upper bound is the observed maximum. *)
          let low = lower_bound bucket in
          let high =
            if bucket = overflow then histogram.max_value
            else lower_bound (bucket + 1)
          in
          let fraction =
            if here = 0 then 0.0
            else (rank -. cumulative) /. float_of_int here
          in
          low +. (fraction *. (high -. low))
        end
        else locate (bucket + 1) reached
    in
    let interpolated = locate 0 0.0 in
    Float.min histogram.max_value (Float.max histogram.min_value interpolated)
  end

let bucket_counts histogram =
  let cells = ref [] in
  for bucket = bucket_count - 1 downto 0 do
    if histogram.buckets.(bucket) > 0 then
      cells := (lower_bound bucket, histogram.buckets.(bucket)) :: !cells
  done;
  !cells

let row ?(prefix = "") histogram =
  let key suffix = if prefix = "" then suffix else prefix ^ "_" ^ suffix in
  [ (key "count", float_of_int histogram.count);
    (key "mean", mean histogram);
    (key "p50", quantile histogram 0.50);
    (key "p95", quantile histogram 0.95);
    (key "p99", quantile histogram 0.99);
    (key "max", max_value histogram) ]

let to_json histogram =
  Json.Obj (List.map (fun (key, value) -> (key, Json.Float value)) (row histogram))

let pp formatter histogram =
  Format.fprintf formatter
    "count %d, mean %.1f, p50 %.1f, p95 %.1f, p99 %.1f, max %.1f"
    histogram.count (mean histogram) (quantile histogram 0.50)
    (quantile histogram 0.95) (quantile histogram 0.99) (max_value histogram)
