(** Graphviz export of a certificate's serialization graph.

    One [digraph] per certificate: committed transactions as nodes, one
    edge per ordered conflict pair labelled with the witness resource and
    the conflict count. Edges (and nodes) on the minimal counterexample
    cycle are highlighted in red, so [colock certify --dot trace.jsonl |
    dot -Tsvg] draws exactly where serializability broke. *)

val render : Certify.certificate -> string
(** The DOT document, trailing newline included. *)

val print : out_channel -> Certify.certificate -> unit
