(* Causal blame: who caused each blocked tick.

   [Profile] answers *where* blocked time lands (level, depth, resource,
   conflict cell); this module answers *who* it lands on.  Every wait span
   — opened by [Lock_waited], closed by the matching grant, the waiter's
   abort, or end of stream, exactly as [Profile] closes it — is cut into
   segments at the moments its blocker set changes (a blocker releases the
   resource, or a re-emitted [Lock_waited] reports a new granted group).
   Each segment's length is split equally across the blockers live in it,
   so concurrent holders share the blame and the shares of a span sum to
   its duration.  Summed over any partition (per blocker, per victim, per
   wait), blame therefore equals [Profile]'s [total_blocked] — the report
   never invents or loses a tick.

   Waits caused by the FIFO queue rule alone (no incompatible holder)
   charge the [Queue] pseudo-blocker, mirroring the ["queue"] holder of
   [Profile]'s conflict matrix.  Streams captured before [Lock_waited]
   carried [holders] fall back to the integer [blockers] list with modes
   reconstructed from the grants seen so far, so committed fixtures stay
   analyzable. *)

type agent = Txn of int | Queue

let agent_order = function Txn txn -> txn | Queue -> max_int

let compare_agent a b = Int.compare (agent_order a) (agent_order b)

let agent_label = function Txn txn -> Printf.sprintf "T%d" txn | Queue -> "queue"

type outcome = Granted | Aborted of string | Unfinished

type share = { sh_agent : agent; sh_mode : string option; sh_blame : float }

type wait = {
  w_txn : int;
  w_resource : string;
  w_mode : string;
  w_lu : Event.lu option;
  w_start : float;
  w_finish : float;
  w_outcome : outcome;
  w_shares : share list;  (* blame descending; sums to the span duration *)
}

let duration wait = Float.max 0.0 (wait.w_finish -. wait.w_start)

type txn_blame = {
  x_txn : int;
  x_begin : float option;
  x_end : (string * float) option;  (* ("commit" | abort reason, time) *)
  x_waits : wait list;  (* stream order *)
  x_blocked : float;  (* this transaction's own blocked time *)
  x_caused : float;  (* blame charged to it by everyone else's waits *)
}

type blocker_stat = { k_agent : agent; k_blame : float; k_waits : int }

type report = {
  label : string option;
  events : int;
  total_blocked : float;
  total_blamed : float;  (* conservation: equals [total_blocked] *)
  wait_count : int;
  waits : wait list;  (* stream order *)
  txns : txn_blame list;  (* txn ascending *)
  blockers : blocker_stat list;  (* blame descending, ties by agent *)
}

(* --------------------------------------------------------------- folding *)

type live = { l_agent : agent; l_mode : string option }

type open_wait = {
  o_mode : string;
  o_lu : Event.lu option;
  o_start : float;
  mutable o_seg_start : float;
  mutable o_live : live list;  (* never empty: [Queue] when nobody holds *)
  mutable o_charges : (agent * string option * float) list;
}

type t = {
  open_waits : (int * string, open_wait) Hashtbl.t;
  held : (int * string, string) Hashtbl.t;  (* for pre-holder traces *)
  begins : (int, float) Hashtbl.t;
  ends : (int, string * float) Hashtbl.t;
  mutable waits : wait list;  (* reversed; closed order *)
  mutable events : int;
  mutable last_time : float;
}

let create () =
  { open_waits = Hashtbl.create 64; held = Hashtbl.create 256;
    begins = Hashtbl.create 64; ends = Hashtbl.create 64; waits = [];
    events = 0; last_time = Float.neg_infinity }

let live_of_event blockers holders =
  match holders with
  | _ :: _ ->
    List.map
      (fun { Event.h_txn; h_mode; _ } ->
        { l_agent = Txn h_txn; l_mode = Some h_mode })
      holders
  | [] -> (
    match blockers with
    | [] -> [ { l_agent = Queue; l_mode = None } ]
    | blockers ->
      List.map (fun blocker -> { l_agent = Txn blocker; l_mode = None })
        blockers)

(* Reconstruct held modes for traces whose waits carry no [holders]. *)
let annotate_modes blame resource live =
  List.map
    (fun member ->
      match member.l_agent, member.l_mode with
      | Txn txn, None -> (
        match Hashtbl.find_opt blame.held (txn, resource) with
        | Some mode -> { member with l_mode = Some mode }
        | None -> member)
      | (Txn _ | Queue), _ -> member)
    live

let add_charge wait agent mode amount =
  let rec bump = function
    | [] -> [ (agent, mode, amount) ]
    | (a, m, blame) :: rest when compare_agent a agent = 0 ->
      (* keep the first mode seen; the blocker may convert mid-wait *)
      let m = match m with Some _ -> m | None -> mode in
      (a, m, blame +. amount) :: rest
    | charge :: rest -> charge :: bump rest
  in
  wait.o_charges <- bump wait.o_charges

(* Close the running segment at [now] and charge its length equally to the
   live blockers. *)
let flush_segment wait now =
  let now = Float.max wait.o_seg_start now in
  let length = now -. wait.o_seg_start in
  if length > 0.0 then begin
    let width = length /. float_of_int (List.length wait.o_live) in
    List.iter
      (fun { l_agent; l_mode } -> add_charge wait l_agent l_mode width)
      wait.o_live
  end;
  wait.o_seg_start <- now

let remove_blocker wait now agent =
  if List.exists (fun m -> compare_agent m.l_agent agent = 0) wait.o_live
  then begin
    flush_segment wait now;
    let remaining =
      List.filter (fun m -> compare_agent m.l_agent agent <> 0) wait.o_live
    in
    wait.o_live <-
      (match remaining with
       | [] -> [ { l_agent = Queue; l_mode = None } ]
       | remaining -> remaining)
  end

let close_wait blame key finish w_outcome =
  match Hashtbl.find_opt blame.open_waits key with
  | None -> ()
  | Some wait ->
    Hashtbl.remove blame.open_waits key;
    let txn, resource = key in
    let finish = Float.max wait.o_start finish in
    flush_segment wait finish;
    let span = finish -. wait.o_start in
    (* equal splits are inexact in floating point; fold the residual into
       the largest share so the shares sum to the span duration exactly *)
    let total =
      List.fold_left (fun sum (_, _, blame) -> sum +. blame) 0.0
        wait.o_charges
    in
    let residual = span -. total in
    let charges =
      match wait.o_charges with
      | [] -> if span > 0.0 then [ (Queue, None, span) ] else []
      | charges ->
        let largest =
          List.fold_left
            (fun best (agent, _, blame) ->
              match best with
              | Some (_, best_blame) when best_blame >= blame -> best
              | Some _ | None -> Some (agent, blame))
            None charges
        in
        (match largest with
         | None -> charges
         | Some (winner, _) ->
           List.map
             (fun ((agent, mode, blame) as charge) ->
               if compare_agent agent winner = 0 then
                 (agent, mode, blame +. residual)
               else charge)
             charges)
    in
    let w_shares =
      List.map
        (fun (sh_agent, sh_mode, sh_blame) -> { sh_agent; sh_mode; sh_blame })
        charges
      |> List.sort (fun a b ->
             match Float.compare b.sh_blame a.sh_blame with
             | 0 -> compare_agent a.sh_agent b.sh_agent
             | order -> order)
    in
    blame.waits <-
      { w_txn = txn; w_resource = resource; w_mode = wait.o_mode;
        w_lu = wait.o_lu; w_start = wait.o_start; w_finish = finish;
        w_outcome; w_shares }
      :: blame.waits

let close_waits_of blame txn finish outcome =
  Hashtbl.fold (fun key _wait keys -> key :: keys) blame.open_waits []
  |> List.iter (fun (waiter, resource) ->
         if waiter = txn then close_wait blame (waiter, resource) finish outcome)

let end_txn blame txn cause time =
  if not (Hashtbl.mem blame.ends txn) then
    Hashtbl.replace blame.ends txn (cause, time)

let handle blame event =
  let { Event.time; kind } = event in
  blame.events <- blame.events + 1;
  if time > blame.last_time then blame.last_time <- time;
  match kind with
  | Event.Lock_waited { txn; resource; mode; blockers; lu; holders } -> (
    let live = annotate_modes blame resource (live_of_event blockers holders) in
    match Hashtbl.find_opt blame.open_waits (txn, resource) with
    | Some wait ->
      (* a re-wait keeps the span (as in [Profile]) but reports the granted
         group as it stands now: cut a segment and swap the live set *)
      flush_segment wait time;
      wait.o_live <- live
    | None ->
      Hashtbl.replace blame.open_waits (txn, resource)
        { o_mode = mode; o_lu = lu; o_start = time; o_seg_start = time;
          o_live = live; o_charges = [] })
  | Event.Lock_granted { txn; resource; mode; _ } ->
    close_wait blame (txn, resource) time Granted;
    Hashtbl.replace blame.held (txn, resource) mode
  | Event.Conversion { txn; resource; to_mode; _ } ->
    Hashtbl.replace blame.held (txn, resource) to_mode
  | Event.Lock_released { txn; resource; _ } ->
    Hashtbl.remove blame.held (txn, resource);
    (* the releaser stops blocking every wait still open on the resource *)
    Hashtbl.iter
      (fun (_waiter, waited_resource) wait ->
        if String.equal waited_resource resource then
          remove_blocker wait time (Txn txn))
      blame.open_waits
  | Event.Txn_begin { txn } ->
    if not (Hashtbl.mem blame.begins txn) then
      Hashtbl.replace blame.begins txn time
  | Event.Txn_commit { txn } -> end_txn blame txn "commit" time
  | Event.Victim_aborted { txn; _ } ->
    close_waits_of blame txn time (Aborted "deadlock")
  | Event.Timeout_abort { txn; _ } ->
    close_waits_of blame txn time (Aborted "timeout")
  | Event.Txn_abort { txn; reason } ->
    end_txn blame txn reason time;
    close_waits_of blame txn time (Aborted reason)
  | Event.Contention_abort { txn; _ } ->
    close_waits_of blame txn time (Aborted "contention")
  | Event.Lock_requested _ | Event.Escalation _ | Event.Deescalation _
  | Event.Deadlock_detected _ | Event.Query_executed _ | Event.Sim_step _
  | Event.Waits_for _ | Event.Run_meta _ | Event.Slo_breach _
  | Event.Admission _ | Event.Admission_limit _ | Event.Breaker _
  | Event.Retry_denied _ ->
    ()

(* ----------------------------------------------------- report assembly *)

module Int_map = Map.Make (Int)

let finish ?label blame =
  let last_time = if blame.events = 0 then 0.0 else blame.last_time in
  Hashtbl.fold (fun key _wait keys -> key :: keys) blame.open_waits []
  |> List.iter (fun key -> close_wait blame key last_time Unfinished);
  let waits = List.rev blame.waits in
  let total_blocked =
    List.fold_left (fun total wait -> total +. duration wait) 0.0 waits
  in
  let total_blamed =
    List.fold_left
      (fun total wait ->
        List.fold_left
          (fun total share -> total +. share.sh_blame)
          total wait.w_shares)
      0.0 waits
  in
  (* per-blocker aggregation *)
  let bump_blocker map agent blame_amount =
    let blame_total, count =
      match List.assoc_opt agent map with
      | Some entry -> entry
      | None -> (0.0, 0)
    in
    (agent, (blame_total +. blame_amount, count + 1))
    :: List.remove_assoc agent map
  in
  let blocker_map =
    List.fold_left
      (fun map wait ->
        List.fold_left
          (fun map share -> bump_blocker map share.sh_agent share.sh_blame)
          map wait.w_shares)
      [] waits
  in
  let blockers =
    List.map
      (fun (k_agent, (k_blame, k_waits)) -> { k_agent; k_blame; k_waits })
      blocker_map
    |> List.sort (fun a b ->
           match Float.compare b.k_blame a.k_blame with
           | 0 -> compare_agent a.k_agent b.k_agent
           | order -> order)
  in
  (* per-transaction trees *)
  let txn_ids =
    Int_map.empty
    |> Hashtbl.fold (fun txn _ ids -> Int_map.add txn () ids) blame.begins
    |> Hashtbl.fold (fun txn _ ids -> Int_map.add txn () ids) blame.ends
    |> fun ids ->
    List.fold_left
      (fun ids wait ->
        let ids = Int_map.add wait.w_txn () ids in
        List.fold_left
          (fun ids share ->
            match share.sh_agent with
            | Txn txn -> Int_map.add txn () ids
            | Queue -> ids)
          ids wait.w_shares)
      ids waits
  in
  let caused_by =
    List.fold_left
      (fun map wait ->
        List.fold_left
          (fun map share ->
            match share.sh_agent with
            | Queue -> map
            | Txn txn ->
              let current =
                Option.value ~default:0.0 (Int_map.find_opt txn map)
              in
              Int_map.add txn (current +. share.sh_blame) map)
          map wait.w_shares)
      Int_map.empty waits
  in
  let txns =
    Int_map.bindings txn_ids
    |> List.map (fun (txn, ()) ->
           let x_waits = List.filter (fun wait -> wait.w_txn = txn) waits in
           let x_blocked =
             List.fold_left
               (fun total wait -> total +. duration wait)
               0.0 x_waits
           in
           { x_txn = txn; x_begin = Hashtbl.find_opt blame.begins txn;
             x_end = Hashtbl.find_opt blame.ends txn; x_waits; x_blocked;
             x_caused =
               Option.value ~default:0.0 (Int_map.find_opt txn caused_by) })
  in
  { label; events = blame.events; total_blocked; total_blamed;
    wait_count = List.length waits; waits; txns; blockers }

let of_events ?label events =
  let blame = create () in
  List.iter (handle blame) events;
  finish ?label blame

(* [Run_meta]-delimited multi-run traces split exactly as [Profile.of_trace]
   splits them. *)
let of_trace events =
  let flush reports label batch =
    match batch, label with
    | [], None -> reports
    | batch, label -> of_events ?label (List.rev batch) :: reports
  in
  let reports, label, batch =
    List.fold_left
      (fun (reports, label, batch) event ->
        match event.Event.kind with
        | Event.Run_meta { label = next } ->
          (flush reports label batch, Some next, [])
        | _ -> (reports, label, event :: batch))
      ([], None, []) events
  in
  List.rev (flush reports label batch)

(* ------------------------------------------------------------ rendering *)

let outcome_label = function
  | Granted -> "granted"
  | Aborted cause -> "aborted:" ^ cause
  | Unfinished -> "unfinished"

let json_of_share share =
  Json.Obj
    [ ("blocker", Json.String (agent_label share.sh_agent));
      ( "mode",
        match share.sh_mode with
        | Some mode -> Json.String mode
        | None -> Json.Null );
      ("blame", Json.Float share.sh_blame) ]

let json_of_wait wait =
  Json.Obj
    [ ("txn", Json.Int wait.w_txn);
      ("resource", Json.String wait.w_resource);
      ("mode", Json.String wait.w_mode);
      ("start", Json.Float wait.w_start);
      ("finish", Json.Float wait.w_finish);
      ("outcome", Json.String (outcome_label wait.w_outcome));
      ("shares", Json.List (List.map json_of_share wait.w_shares)) ]

let to_json report =
  Json.Obj
    [ ( "label",
        match report.label with
        | Some label -> Json.String label
        | None -> Json.Null );
      ("events", Json.Int report.events);
      ("total_blocked", Json.Float report.total_blocked);
      ("total_blamed", Json.Float report.total_blamed);
      ("wait_count", Json.Int report.wait_count);
      ( "transactions",
        Json.List
          (List.map
             (fun txn ->
               Json.Obj
                 [ ("txn", Json.Int txn.x_txn);
                   ( "begin",
                     match txn.x_begin with
                     | Some time -> Json.Float time
                     | None -> Json.Null );
                   ( "end",
                     match txn.x_end with
                     | Some (cause, time) ->
                       Json.Obj
                         [ ("cause", Json.String cause);
                           ("time", Json.Float time) ]
                     | None -> Json.Null );
                   ("blocked", Json.Float txn.x_blocked);
                   ("caused", Json.Float txn.x_caused);
                   ("waits", Json.List (List.map json_of_wait txn.x_waits)) ])
             report.txns) );
      ( "blockers",
        Json.List
          (List.map
             (fun stat ->
               Json.Obj
                 [ ("blocker", Json.String (agent_label stat.k_agent));
                   ("blame", Json.Float stat.k_blame);
                   ("waits", Json.Int stat.k_waits) ])
             report.blockers) ) ]

let truncated limit items = List.filteri (fun index _item -> index < limit) items

let pp ?(top = 10) formatter report =
  let line format = Format.fprintf formatter format in
  (match report.label with
   | Some label -> line "=== blame report: %s ===@," label
   | None -> line "=== blame report ===@,");
  line "blocked %g across %d wait(s); blamed %g@," report.total_blocked
    report.wait_count report.total_blamed;
  if report.blockers <> [] then begin
    line "@,top blockers (top %d of %d):@,"
      (min top (List.length report.blockers))
      (List.length report.blockers);
    line "  %-8s %12s %8s@," "BLOCKER" "BLAME" "WAITS";
    List.iter
      (fun stat ->
        line "  %-8s %12g %8d@," (agent_label stat.k_agent) stat.k_blame
          stat.k_waits)
      (truncated top report.blockers)
  end

let pp_share formatter share =
  Format.fprintf formatter "%s%s: %g" (agent_label share.sh_agent)
    (match share.sh_mode with
     | Some mode -> Printf.sprintf " (%s)" mode
     | None -> "")
    share.sh_blame

(* The per-transaction span tree: begin, each wait with its per-holder
   blame, the final commit/abort — [colock explain]'s payload. *)
let explain formatter report ~txn =
  let line format = Format.fprintf formatter format in
  match List.find_opt (fun entry -> entry.x_txn = txn) report.txns with
  | None -> line "T%d: no events in this run@," txn
  | Some entry ->
    line "T%d: %s, %s@," txn
      (match entry.x_begin with
       | Some time -> Printf.sprintf "begin %g" time
       | None -> "begin unseen")
      (match entry.x_end with
       | Some (cause, time) -> Printf.sprintf "%s %g" cause time
       | None -> "still running at stream end");
    line "blocked %g across %d wait(s); blamed for %g elsewhere@,"
      entry.x_blocked
      (List.length entry.x_waits)
      entry.x_caused;
    List.iter
      (fun wait ->
        line "|- wait %s (%s) [%g..%g] %s: %g@," wait.w_resource wait.w_mode
          wait.w_start wait.w_finish
          (outcome_label wait.w_outcome)
          (duration wait);
        List.iter
          (fun share -> line "|    blocked by %a@," pp_share share)
          wait.w_shares)
      entry.x_waits

let print_explain channel report ~txn =
  let formatter = Format.formatter_of_out_channel channel in
  Format.fprintf formatter "@[<v>%a@]@."
    (fun fmt report -> explain fmt report ~txn)
    report

let print ?top channel report =
  let formatter = Format.formatter_of_out_channel channel in
  Format.fprintf formatter "@[<v>%a@]@." (fun fmt -> pp ?top fmt) report
