(* Wait-time flamegraphs: fold blocked time along the instance-graph path.

   Resources are slash-joined node paths ([Colock.Node_id.to_resource],
   which escapes a literal '/' inside a step as "//"), so a wait span
   already names the chain entry point -> ... -> inner LU that the paper's
   rule 2 locked top-down. Each span becomes one stack — the path steps
   plus the requested mode as the leaf frame — weighted by its blocked
   duration, and equal stacks merge. The folded-stacks text this renders
   is the input format of Brendan Gregg's flamegraph.pl, so
   [colock flame trace.jsonl | flamegraph.pl] draws where the wall-clock
   went without any custom tooling. *)

type stack = { frames : string list; weight : float }

type t = {
  label : string option;
  stacks : stack list;  (* lexicographic by frames, merged *)
  total : float;
}

let label flame = flame.label
let stacks flame = List.map (fun { frames; weight } -> (frames, weight)) flame.stacks
let total flame = flame.total

(* Inverse of [Node_id.escape] + join: split on single '/', un-escape
   "//" back to a literal '/'. *)
let path_steps resource =
  let buffer = Buffer.create 16 in
  let steps = ref [] in
  let length = String.length resource in
  let push () =
    steps := Buffer.contents buffer :: !steps;
    Buffer.clear buffer
  in
  let rec scan index =
    if index >= length then ()
    else if resource.[index] = '/' then
      if index + 1 < length && resource.[index + 1] = '/' then begin
        Buffer.add_char buffer '/';
        scan (index + 2)
      end
      else begin
        push ();
        scan (index + 1)
      end
    else begin
      Buffer.add_char buffer resource.[index];
      scan (index + 1)
    end
  in
  scan 0;
  push ();
  List.rev !steps

(* Folded-stacks syntax reserves ';' (frame separator) and ' ' (weight
   separator); frames must not contain either. *)
let sanitize frame =
  String.map (function ';' -> ':' | ' ' -> '_' | c -> c) frame

let frames_of_span span =
  let { Profile.s_resource; s_mode; _ } = span in
  List.map sanitize (path_steps s_resource) @ [ "mode:" ^ sanitize s_mode ]

let of_spans ?label spans =
  let table = Hashtbl.create 64 in
  let total =
    List.fold_left
      (fun total span ->
        let weight = Profile.duration span in
        if weight > 0.0 then begin
          let frames = frames_of_span span in
          let current =
            Option.value ~default:0.0 (Hashtbl.find_opt table frames)
          in
          Hashtbl.replace table frames (current +. weight)
        end;
        total +. weight)
      0.0 spans
  in
  let stacks =
    Hashtbl.fold
      (fun frames weight accu -> { frames; weight } :: accu)
      table []
    |> List.sort (fun a b -> compare a.frames b.frames)
  in
  { label; stacks; total }

let of_report (report : Profile.report) =
  of_spans ?label:report.Profile.label report.Profile.spans

let of_trace events = List.map of_report (Profile.of_trace events)

let pp formatter flame =
  List.iter
    (fun { frames; weight } ->
      Format.fprintf formatter "%s %g@," (String.concat ";" frames) weight)
    flame.stacks

let print channel flame =
  let formatter = Format.formatter_of_out_channel channel in
  Format.fprintf formatter "@[<v>%a@]@?" pp flame
