(** Chrome [trace_event] export: load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto} and lock waits render as spans on
    one timeline row per transaction.

    Each [(name, events)] group becomes one trace "process" (named via
    metadata); transaction ids become thread ids. Span pairing happens at
    export time from the flat stream: [Lock_waited]→[Lock_granted] becomes a
    ["wait <resource>"] span, [Txn_begin]→[Txn_commit]/[Txn_abort] becomes a
    ["T<n>"] span; deadlocks, escalations, queries and simulator steps
    export as instant events. Spans still open when the capture ends close
    at the last captured timestamp, tagged [unfinished]. *)

val to_json : ?ts_scale:float -> (string * Event.t list) list -> Json.t
(** [ts_scale] converts event-time units to trace microseconds; the default
    (1000) renders one simulator tick as one millisecond. *)

val write : ?ts_scale:float -> out_channel -> (string * Event.t list) list -> unit
