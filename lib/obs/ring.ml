type 'a t = {
  items : 'a option array;
  mutable next : int;  (* write position *)
  mutable size : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { items = Array.make capacity None; next = 0; size = 0; pushed = 0 }

let capacity ring = Array.length ring.items
let length ring = ring.size
let pushed ring = ring.pushed
let dropped ring = ring.pushed - ring.size

let push ring item =
  ring.items.(ring.next) <- Some item;
  ring.next <- (ring.next + 1) mod Array.length ring.items;
  if ring.size < Array.length ring.items then ring.size <- ring.size + 1;
  ring.pushed <- ring.pushed + 1

let clear ring =
  Array.fill ring.items 0 (Array.length ring.items) None;
  ring.next <- 0;
  ring.size <- 0;
  ring.pushed <- 0

let to_list ring =
  let cap = Array.length ring.items in
  let start = (ring.next - ring.size + cap) mod cap in
  List.init ring.size (fun offset ->
      match ring.items.((start + offset) mod cap) with
      | Some item -> item
      | None -> invalid_arg "Ring.to_list: corrupted ring")

let iter ring visit = List.iter visit (to_list ring)
