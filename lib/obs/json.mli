(** A minimal JSON document type, serializer and parser.

    The observability layer emits JSONL event streams, Chrome trace files and
    metrics snapshots; this module is the single encoder all of them share
    (the container carries no JSON library). The parser exists for the
    offline side of the same pipeline — [colock analyze] reading a JSONL
    trace back into {!Event.t}s. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** [indent = 0] (default) produces a single line; a positive indent
    pretty-prints with that many spaces per level. Non-finite floats encode
    as [null]. *)

val output : ?indent:int -> out_channel -> t -> unit
val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parses one JSON document. Numbers without a fractional part or exponent
    decode as [Int]; the rest as [Float] — mirroring the encoder's split.
    Trailing non-whitespace input is an error. *)
