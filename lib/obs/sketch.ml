(* Space-Saving heavy hitters (Metwally, Agrawal & El Abbadi 2005), with
   weighted updates: at most [k] keys are tracked, and an untracked key
   arriving when the sketch is full takes over the smallest counter,
   inheriting its value as the new key's overestimation bound.

   Guarantees (unit weights; weighted streams scale by total weight):
   - every key with true count > N/k is present in the sketch;
   - each estimate overestimates its key's true count by at most its
     recorded [error], and error <= N/k.

   That bound is what lets the monitor expose per-resource contention for
   million-object catalogs as bounded-cardinality gauges: O(k) memory and
   O(k) worst-case work per update, no matter how many distinct resources
   the stream touches. *)

type entry = { mutable count : float; mutable error : float }

type t = {
  k : int;
  entries : (string, entry) Hashtbl.t;
  mutable total : float;  (* total weight observed *)
}

let create ~k =
  if k <= 0 then invalid_arg "Sketch.create: k must be positive";
  { k; entries = Hashtbl.create (2 * k); total = 0.0 }

let k sketch = sketch.k
let total sketch = sketch.total
let cardinality sketch = Hashtbl.length sketch.entries

(* The victim of an eviction: smallest count; ties go to the
   lexicographically smallest key so replay order never changes results. *)
let minimum sketch =
  Hashtbl.fold
    (fun key entry best ->
      match best with
      | Some (best_key, best_entry)
        when best_entry.count < entry.count
             || (best_entry.count = entry.count
                 && String.compare best_key key <= 0) ->
        best
      | Some _ | None -> Some (key, entry))
    sketch.entries None

let observe ?(weight = 1.0) sketch key =
  sketch.total <- sketch.total +. weight;
  match Hashtbl.find_opt sketch.entries key with
  | Some entry ->
    entry.count <- entry.count +. weight;
    None
  | None ->
    if Hashtbl.length sketch.entries < sketch.k then begin
      Hashtbl.replace sketch.entries key { count = weight; error = 0.0 };
      None
    end
    else begin
      match minimum sketch with
      | None -> None  (* unreachable: k > 0 and the sketch is full *)
      | Some (victim, entry) ->
        Hashtbl.remove sketch.entries victim;
        Hashtbl.replace sketch.entries key
          { count = entry.count +. weight; error = entry.count };
        Some victim
    end

let find sketch key =
  Option.map
    (fun entry -> (entry.count, entry.error))
    (Hashtbl.find_opt sketch.entries key)

let top ?n sketch =
  let sorted =
    Hashtbl.fold
      (fun key entry accu -> (key, entry.count, entry.error) :: accu)
      sketch.entries []
    |> List.sort (fun (key_a, count_a, _) (key_b, count_b, _) ->
           match Float.compare count_b count_a with
           | 0 -> String.compare key_a key_b
           | order -> order)
  in
  match n with
  | None -> sorted
  | Some n -> List.filteri (fun index _ -> index < n) sorted

let reset sketch =
  Hashtbl.reset sketch.entries;
  sketch.total <- 0.0
