let esc s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The minimal counterexample cycle, as a set of directed (from, to)
   pairs plus the node set, so both edges and nodes can be painted. *)
let cycle_parts (cert : Certify.certificate) =
  List.fold_left
    (fun acc v ->
      match (v : Certify.violation) with
      | Unserializable { edges; _ } ->
          List.fold_left
            (fun (pairs, nodes) (e : Certify.edge) ->
              ((e.e_from, e.e_to) :: pairs, e.e_from :: e.e_to :: nodes))
            acc edges
      | _ -> acc)
    ([], []) cert.violations

let render (cert : Certify.certificate) =
  let cycle_pairs, cycle_nodes = cycle_parts cert in
  let on_cycle_edge e =
    List.exists
      (fun (f, t) -> f = e.Certify.e_from && t = e.Certify.e_to)
      cycle_pairs
  in
  let on_cycle_node n = List.mem n cycle_nodes in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let name =
    match cert.label with None -> "serialization" | Some l -> esc l
  in
  add "digraph \"%s\" {\n" name;
  add "  rankdir=LR;\n";
  add "  node [shape=circle, fontname=\"monospace\"];\n";
  List.iter
    (fun txn ->
      if on_cycle_node txn then
        add "  t%d [label=\"T%d\", color=red, fontcolor=red];\n" txn txn
      else add "  t%d [label=\"T%d\"];\n" txn txn)
    cert.graph_txns;
  List.iter
    (fun (e : Certify.edge) ->
      let label =
        Printf.sprintf "%s %s>%s%s" e.e_resource e.e_first.a_mode
          e.e_second.a_mode
          (if e.e_count > 1 then Printf.sprintf " (+%d)" (e.e_count - 1)
           else "")
      in
      if on_cycle_edge e then
        add "  t%d -> t%d [label=\"%s\", color=red, fontcolor=red, penwidth=2];\n"
          e.e_from e.e_to (esc label)
      else add "  t%d -> t%d [label=\"%s\"];\n" e.e_from e.e_to (esc label))
    cert.graph_edges;
  add "}\n";
  Buffer.contents buf

let print channel cert = output_string channel (render cert)
