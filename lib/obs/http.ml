(* A deliberately minimal HTTP/1.1 listener on stdlib Unix + threads: one
   accept thread, sequential request handling, Connection: close on every
   response.  It exists to serve /metrics and /health to a scraper or a
   curl, not to be a web server; anything beyond "GET <path>" gets a 400.

   The handler runs on the accept thread while the instrumented run mutates
   the registry on the main thread; callers are expected to guard their
   snapshot with [Monitor.locked] (systhreads interleave, they do not run in
   parallel, but a hashtable mid-resize is still not snapshot-safe). *)

type response = { status : int; content_type : string; body : string }

type t = {
  socket : Unix.file_descr;
  bound_port : int;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let reason_of = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | _ -> "Error"

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (reason_of status) content_type (String.length body)
  in
  let payload = Bytes.of_string (head ^ body) in
  let length = Bytes.length payload in
  let rec push offset =
    if offset < length then
      match Unix.write fd payload offset (length - offset) with
      | 0 -> ()
      | written -> push (offset + written)
  in
  try push 0 with Unix.Unix_error _ -> ()

(* Read until the blank line ending the request head (we never accept
   bodies), bounded so a hostile peer cannot grow the buffer. *)
let read_head fd =
  let chunk = Bytes.create 1024 in
  let buffer = Buffer.create 256 in
  let rec fill () =
    if Buffer.length buffer > 8192 then Buffer.contents buffer
    else
      let head = Buffer.contents buffer in
      let module S = String in
      let complete =
        S.length head >= 4
        &&
        let rec scan index =
          index >= 0
          && (S.sub head index 4 = "\r\n\r\n" || scan (index - 1))
        in
        scan (S.length head - 4)
      in
      if complete then head
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents buffer
        | received ->
          Buffer.add_subbytes buffer chunk 0 received;
          fill ()
        | exception Unix.Unix_error _ -> Buffer.contents buffer
  in
  fill ()

let not_found =
  { status = 404; content_type = "text/plain; charset=utf-8";
    body = "not found\n" }

let bad_request =
  { status = 400; content_type = "text/plain; charset=utf-8";
    body = "bad request\n" }

let method_not_allowed =
  { status = 405; content_type = "text/plain; charset=utf-8";
    body = "method not allowed\n" }

let respond handler head =
  match String.index_opt head '\r' with
  | None -> bad_request
  | Some eol -> (
    match String.split_on_char ' ' (String.sub head 0 eol) with
    | [ "GET"; target; _version ] -> (
      (* strip any ?query: /metrics?format=... still routes to /metrics *)
      let path =
        match String.index_opt target '?' with
        | None -> target
        | Some question -> String.sub target 0 question
      in
      match handler path with
      | Some response -> response
      | None -> not_found)
    | [ _method; _target; _version ] -> method_not_allowed
    | _ -> bad_request)

let serve_connection handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_head fd with
      | "" -> ()
      | head -> write_response fd (respond handler head))

let accept_loop server handler =
  let rec loop () =
    match Unix.accept server.socket with
    | client, _address ->
      (try serve_connection handler client
       with _ -> ());
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      ()  (* [stop] closed the listening socket *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if not server.stopping then loop ()
  in
  loop ()

let start ?(addr = "127.0.0.1") ~port handler =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen socket 16
   with exn ->
     (try Unix.close socket with Unix.Unix_error _ -> ());
     raise exn);
  let bound_port =
    match Unix.getsockname socket with
    | Unix.ADDR_INET (_, bound) -> bound
    | Unix.ADDR_UNIX _ -> port
  in
  let server = { socket; bound_port; stopping = false; thread = None } in
  server.thread <- Some (Thread.create (fun () -> accept_loop server handler) ());
  server

let port server = server.bound_port

let stop server =
  if not server.stopping then begin
    server.stopping <- true;
    (try Unix.shutdown server.socket Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close server.socket with Unix.Unix_error _ -> ());
    match server.thread with
    | Some thread ->
      server.thread <- None;
      Thread.join thread
    | None -> ()
  end
