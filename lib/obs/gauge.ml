type t = { mutable value : float; mutable peak : float }

let create () = { value = 0.0; peak = 0.0 }

let set gauge value =
  gauge.value <- value;
  if value > gauge.peak then gauge.peak <- value

let add gauge delta = set gauge (gauge.value +. delta)
let incr gauge = add gauge 1.0
let decr gauge = add gauge (-1.0)
let value gauge = gauge.value
let peak gauge = gauge.peak

let reset gauge =
  gauge.value <- 0.0;
  gauge.peak <- 0.0

let pp formatter gauge =
  Format.fprintf formatter "%g (peak %g)" gauge.value gauge.peak
