(** Wait-time flamegraphs: blocked time folded along the instance-graph
    path.

    Every {!Profile} wait span becomes one stack — the resource's
    slash-separated node path (entry point down to the inner lockable
    unit, un-escaping the "//" produced by [Node_id.escape]) plus a final
    [mode:<M>] frame — weighted by the span's blocked duration; equal
    stacks merge. {!print} emits folded-stacks text ([frame;frame;... N]
    per line, stacks sorted), the input format of flamegraph.pl, so
    [colock flame trace.jsonl] pipes straight into standard tooling. *)

type t

val label : t -> string option
val stacks : t -> (string list * float) list
(** Merged [(frames, weight)] stacks, sorted by frames; zero-duration
    spans are dropped. *)

val total : t -> float
(** Total blocked time over all spans — equals
    [Profile.total_blocked]. *)

val path_steps : string -> string list
(** Splits a resource name back into node steps (inverse of the escaping
    join in [Node_id.to_resource]). *)

val of_spans : ?label:string -> Profile.span list -> t
val of_report : Profile.report -> t

val of_trace : Event.t list -> t list
(** One flame per [Run_meta]-delimited run, as {!Profile.of_trace}. *)

val pp : Format.formatter -> t -> unit
(** Expects a vertical box (see {!print}). *)

val print : out_channel -> t -> unit
