(* A sliding window over the emitting clock (virtual ticks in the simulator,
   seconds on a wall clock).  The window is half-open: a sample at time [s]
   is live while [now - span < s <= now], so a sample stamped exactly
   [span] ago has aged out.  Quantiles are exact over the live samples
   (sorted on demand — windows hold at most [limit] samples). *)

type t = {
  span : float;
  limit : int;
  samples : (float * float) Queue.t;  (* (time, value), oldest first *)
  mutable last : float;   (* latest clock value the window has seen *)
  mutable shed : int;     (* live samples evicted by the [limit] cap *)
}

let create ?(limit = 8192) ~span () =
  if span <= 0.0 then invalid_arg "Window.create: span must be positive";
  if limit <= 0 then invalid_arg "Window.create: limit must be positive";
  { span; limit; samples = Queue.create (); last = 0.0; shed = 0 }

let span window = window.span
let last window = window.last
let shed window = window.shed

let expire window =
  let horizon = window.last -. window.span in
  let rec drop () =
    match Queue.peek_opt window.samples with
    | Some (time, _) when time <= horizon ->
      ignore (Queue.pop window.samples);
      drop ()
    | Some _ | None -> ()
  in
  drop ()

let advance window ~now =
  if now > window.last then window.last <- now;
  expire window

let observe window ~now value =
  advance window ~now;
  Queue.push (now, value) window.samples;
  if Queue.length window.samples > window.limit then begin
    ignore (Queue.pop window.samples);
    window.shed <- window.shed + 1
  end

let mark window ~now = observe window ~now 1.0

let count window = Queue.length window.samples

let rate window = float_of_int (Queue.length window.samples) /. window.span

let sum window =
  Queue.fold (fun accu (_, value) -> accu +. value) 0.0 window.samples

let mean window =
  let n = Queue.length window.samples in
  if n = 0 then 0.0 else sum window /. float_of_int n

let sorted_values window =
  let values =
    Array.make (Queue.length window.samples) 0.0
  in
  let index = ref 0 in
  Queue.iter
    (fun (_, value) ->
      values.(!index) <- value;
      Stdlib.incr index)
    window.samples;
  Array.sort Float.compare values;
  values

let quantile window q =
  let values = sorted_values window in
  let n = Array.length values in
  if n = 0 then 0.0
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int (n - 1) in
    let low = int_of_float (Float.floor rank) in
    let high = int_of_float (Float.ceil rank) in
    if low = high then values.(low)
    else
      let fraction = rank -. float_of_int low in
      values.(low) +. (fraction *. (values.(high) -. values.(low)))
  end

let max_value window =
  Queue.fold (fun accu (_, value) -> Float.max accu value) 0.0 window.samples

let reset window =
  Queue.clear window.samples;
  window.last <- 0.0;
  window.shed <- 0

let row ?(prefix = "") window =
  let key suffix = if prefix = "" then suffix else prefix ^ "_" ^ suffix in
  [ (key "count", float_of_int (count window));
    (key "rate", rate window);
    (key "p50", quantile window 0.50);
    (key "p95", quantile window 0.95);
    (key "p99", quantile window 0.99);
    (key "max", max_value window) ]

let pp formatter window =
  Format.fprintf formatter
    "count %d over span %g, rate %.3f, p50 %.1f, p95 %.1f, p99 %.1f"
    (count window) window.span (rate window) (quantile window 0.50)
    (quantile window 0.95) (quantile window 0.99)
