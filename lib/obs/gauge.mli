(** A gauge: a level that goes up and down (active transactions, lock-table
    entries, wait-queue depth), with a high-water mark.

    Counters answer "how many ever happened"; gauges answer "how many right
    now" — the live half of the registry. *)

type t

val create : unit -> t

val set : t -> float -> unit
val add : t -> float -> unit
val incr : t -> unit
val decr : t -> unit

val value : t -> float
val peak : t -> float
(** Highest value ever {!set} (0 for a fresh or {!reset} gauge; a gauge
    that only ever went negative also reports 0). *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
