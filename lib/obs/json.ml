type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape text =
  let buffer = Buffer.create (String.length text + 2) in
  String.iter
    (fun char ->
      match char with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | char when Char.code char < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code char))
      | char -> Buffer.add_char buffer char)
    text;
  Buffer.contents buffer

(* Integral floats render without a fractional part so counters exported as
   floats stay readable; non-finite values have no JSON spelling and become
   null. *)
let float_repr value =
  if not (Float.is_finite value) then "null"
  else if Float.is_integer value && Float.abs value < 1e15 then
    Printf.sprintf "%.0f" value
  else Printf.sprintf "%.6g" value

let rec write buffer ~indent ~level json =
  let pad level = String.make (level * indent) ' ' in
  match json with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int n -> Buffer.add_string buffer (string_of_int n)
  | Float f -> Buffer.add_string buffer (float_repr f)
  | String s ->
    Buffer.add_char buffer '"';
    Buffer.add_string buffer (escape s);
    Buffer.add_char buffer '"'
  | List [] -> Buffer.add_string buffer "[]"
  | List items ->
    Buffer.add_string buffer "[";
    List.iteri
      (fun index item ->
        if index > 0 then Buffer.add_char buffer ',';
        if indent > 0 then begin
          Buffer.add_char buffer '\n';
          Buffer.add_string buffer (pad (level + 1))
        end;
        write buffer ~indent ~level:(level + 1) item)
      items;
    if indent > 0 then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (pad level)
    end;
    Buffer.add_string buffer "]"
  | Obj [] -> Buffer.add_string buffer "{}"
  | Obj fields ->
    Buffer.add_string buffer "{";
    List.iteri
      (fun index (key, value) ->
        if index > 0 then Buffer.add_char buffer ',';
        if indent > 0 then begin
          Buffer.add_char buffer '\n';
          Buffer.add_string buffer (pad (level + 1))
        end;
        Buffer.add_char buffer '"';
        Buffer.add_string buffer (escape key);
        Buffer.add_string buffer "\": ";
        write buffer ~indent ~level:(level + 1) value)
      fields;
    if indent > 0 then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (pad level)
    end;
    Buffer.add_string buffer "}"

let to_string ?(indent = 0) json =
  let buffer = Buffer.create 256 in
  write buffer ~indent ~level:0 json;
  Buffer.contents buffer

let output ?(indent = 0) channel json =
  output_string channel (to_string ~indent json)

let pp formatter json = Format.pp_print_string formatter (to_string ~indent:2 json)
