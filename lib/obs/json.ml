type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape text =
  let buffer = Buffer.create (String.length text + 2) in
  String.iter
    (fun char ->
      match char with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | char when Char.code char < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code char))
      | char -> Buffer.add_char buffer char)
    text;
  Buffer.contents buffer

(* Integral floats render without a fractional part so counters exported as
   floats stay readable; non-finite values have no JSON spelling and become
   null. *)
let float_repr value =
  if not (Float.is_finite value) then "null"
  else if Float.is_integer value && Float.abs value < 1e15 then
    Printf.sprintf "%.0f" value
  else Printf.sprintf "%.6g" value

let rec write buffer ~indent ~level json =
  let pad level = String.make (level * indent) ' ' in
  match json with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int n -> Buffer.add_string buffer (string_of_int n)
  | Float f -> Buffer.add_string buffer (float_repr f)
  | String s ->
    Buffer.add_char buffer '"';
    Buffer.add_string buffer (escape s);
    Buffer.add_char buffer '"'
  | List [] -> Buffer.add_string buffer "[]"
  | List items ->
    Buffer.add_string buffer "[";
    List.iteri
      (fun index item ->
        if index > 0 then Buffer.add_char buffer ',';
        if indent > 0 then begin
          Buffer.add_char buffer '\n';
          Buffer.add_string buffer (pad (level + 1))
        end;
        write buffer ~indent ~level:(level + 1) item)
      items;
    if indent > 0 then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (pad level)
    end;
    Buffer.add_string buffer "]"
  | Obj [] -> Buffer.add_string buffer "{}"
  | Obj fields ->
    Buffer.add_string buffer "{";
    List.iteri
      (fun index (key, value) ->
        if index > 0 then Buffer.add_char buffer ',';
        if indent > 0 then begin
          Buffer.add_char buffer '\n';
          Buffer.add_string buffer (pad (level + 1))
        end;
        Buffer.add_char buffer '"';
        Buffer.add_string buffer (escape key);
        Buffer.add_string buffer "\": ";
        write buffer ~indent ~level:(level + 1) value)
      fields;
    if indent > 0 then begin
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer (pad level)
    end;
    Buffer.add_string buffer "}"

let to_string ?(indent = 0) json =
  let buffer = Buffer.create 256 in
  write buffer ~indent ~level:0 json;
  Buffer.contents buffer

let output ?(indent = 0) channel json =
  output_string channel (to_string ~indent json)

let pp formatter json = Format.pp_print_string formatter (to_string ~indent:2 json)

(* ------------------------------------------------------------- parsing *)

(* Recursive-descent parser for the subset this module emits (which is all
   of standard JSON).  Numbers without '.', 'e' or 'E' decode as [Int];
   everything else numeric decodes as [Float], mirroring the encoder's
   Int/Float split. *)

exception Parse_error of string

let of_string text =
  let length = String.length text in
  let pos = ref 0 in
  let fail message = raise (Parse_error message) in
  let peek () = if !pos < length then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < length
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect char =
    match peek () with
    | Some c when c = char -> advance ()
    | Some c -> fail (Printf.sprintf "expected %C, found %C" char c)
    | None -> fail (Printf.sprintf "expected %C, found end of input" char)
  in
  let literal word value =
    let stop = !pos + String.length word in
    if stop <= length && String.sub text !pos (String.length word) = word then begin
      pos := stop;
      value
    end
    else fail (Printf.sprintf "invalid literal, expected %S" word)
  in
  let parse_hex4 () =
    if !pos + 4 > length then fail "truncated \\u escape";
    let code = ref 0 in
    for _ = 1 to 4 do
      let digit =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail (Printf.sprintf "invalid hex digit %C" c)
      in
      code := (!code * 16) + digit;
      advance ()
    done;
    !code
  in
  let add_utf8 buffer code =
    (* Escaped code points re-encode as UTF-8 bytes; surrogates and
       astral-plane pairs are out of scope for trace data. *)
    if code < 0x80 then Buffer.add_char buffer (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buffer (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buffer (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail "unterminated escape"
         | Some '"' -> Buffer.add_char buffer '"'; advance ()
         | Some '\\' -> Buffer.add_char buffer '\\'; advance ()
         | Some '/' -> Buffer.add_char buffer '/'; advance ()
         | Some 'b' -> Buffer.add_char buffer '\b'; advance ()
         | Some 'f' -> Buffer.add_char buffer '\012'; advance ()
         | Some 'n' -> Buffer.add_char buffer '\n'; advance ()
         | Some 'r' -> Buffer.add_char buffer '\r'; advance ()
         | Some 't' -> Buffer.add_char buffer '\t'; advance ()
         | Some 'u' ->
           advance ();
           add_utf8 buffer (parse_hex4 ())
         | Some c -> fail (Printf.sprintf "invalid escape \\%C" c));
        loop ()
      | Some c ->
        Buffer.add_char buffer c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') -> advance (); true
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        true
      | _ -> false
    in
    while consume () do () done;
    let repr = String.sub text start (!pos - start) in
    if !is_float then
      match float_of_string_opt repr with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "invalid number %S" repr)
    else
      match int_of_string_opt repr with
      | Some n -> Int n
      | None -> (
        match float_of_string_opt repr with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "invalid number %S" repr))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ parse_field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := parse_field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos < length then fail "trailing garbage after document";
    value
  with
  | value -> Ok value
  | exception Parse_error message -> Error message
