(** Declarative service-level objectives, evaluated live against the
    {!Monitor}'s sliding windows.

    Config syntax (one rule per line, ['#'] comments):
    {v
    p99_wait < 40            # windowed lock-wait quantile
    p95_wait{lu=HoLU} < 25   # one lockable-unit kind only
    abort_rate < 0.25        # aborts / (aborts + commits), windowed
    deadlock_rate < 0.01     # deadlocks per clock unit, windowed
    wait_rate < 2.5          # completed waits per clock unit, windowed
    throughput > 0.05        # commits per clock unit, windowed
    v}

    A {!watch} evaluates every rule once per window and emits one
    [Event.Slo_breach] per violated rule through the run's sink — so
    breaches land in rings, JSONL captures, the monitor and any trace a
    later [colock analyze] reads — and tallies them for a nonzero exit. *)

type comparator = Lt | Le | Gt | Ge

type signal =
  | Wait_quantile of { q : float; lu : string option }
  | Abort_rate
  | Deadlock_rate
  | Wait_rate
  | Throughput

type rule = {
  text : string;
      (** normalized source text, carried as [Slo_breach.rule] *)
  signal : signal;
  cmp : comparator;
  threshold : float;
}

type t

val rules : t -> rule list

val of_rules : rule list -> t
(** A rule set assembled by another front end (e.g. the inline [slo]
    directives of {!Workload.Dsl} scenario files). *)

val parse : ?file:string -> string -> (t, string) result
(** Parses a whole config text; the error aggregates every bad line as
    ["FILE:N: ..."] (or ["line N: ..."] without [?file]) diagnostics,
    each naming the offending token — unknown signal, bad comparator,
    bad threshold or a malformed [{lu=...}] selector. *)

val parse_rule : ?file:string -> ?line:int -> string -> (rule, string) result
(** One rule line; [?file]/[?line] position the diagnostic the same way
    {!parse} does. *)

val load : string -> (t, string) result
(** {!parse} on a file's contents, diagnostics prefixed with the path. *)

type verdict = { rule : rule; value : float; ok : bool }

val evaluate : t -> Monitor.t -> verdict list
(** One verdict per rule against the monitor's current windows. *)

val measure : Monitor.t -> signal -> float
(** The current value of one signal. *)

type watch

val watch : ?sink:Sink.t -> ?every:float -> t -> Monitor.t -> watch
(** A periodic evaluator: attach {!handler} to the run's sink after the
    monitor's handler. [every] is the evaluation period in clock units
    (default: the monitor's window span). Breach events are emitted through
    [?sink] when given, else recorded directly into the monitor. *)

val handler : watch -> Event.t -> unit
(** Evaluates whenever an event's timestamp crosses the next period
    boundary; ignores [Slo_breach] events (no feedback loops) and resets on
    [Run_meta]. *)

val finish : watch -> time:float -> int
(** Final evaluation at end of run (the tail window would otherwise go
    unchecked); returns the total breach count. *)

val breach_count : watch -> int
(** Breaches tallied so far in the current run. *)

val watched : watch -> t
(** The rule set behind a watch (e.g. to re-{!evaluate} for a display). *)
