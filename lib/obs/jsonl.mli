(** JSON-lines event sink: one self-describing JSON object per line
    (fields [event], [time], then the event's own payload), suitable for
    [jq], spreadsheet import, replay into the {!Trace} exporter, or offline
    analysis via {!Profile}. *)

val write : out_channel -> Event.t -> unit
(** Writes one complete line and flushes: a run aborted mid-stream leaves
    only whole lines behind. *)

val handler : ?meter:Sink.meter -> out_channel -> Event.t -> unit
(** Partial application form for {!Sink.create}. The caller owns the
    channel (and its close). [?meter] accounts bytes written (see
    {!Sink.bytes_written}). *)

val write_events : out_channel -> Event.t list -> unit
(** Batch form: renders every line, writes them, flushes once. *)

val iter : ?on_error:(string -> unit) -> in_channel -> (Event.t -> unit) -> unit
(** Streams a JSONL channel line by line in constant memory, calling the
    callback per decoded event. Blank lines are skipped; each malformed
    line becomes a ["line N: ..."] diagnostic passed to [?on_error]
    (dropped by default) instead of poisoning the whole read. A final line
    with no terminating newline that fails to decode — the signature of a
    crash-cut capture — is diagnosed as ["truncated final line at byte
    OFFSET"] so the complete prefix stays loadable and the cut point is
    named. *)

val read_events : in_channel -> Event.t list * string list
(** {!iter} materialised: the decoded events and the diagnostics. *)

val load : string -> Event.t list * string list
(** {!read_events} on a file path; the channel is closed either way. *)

val with_file : string -> (in_channel -> 'a) -> 'a
(** Opens [path], runs the callback (typically around {!iter}), and
    closes the channel even on exceptions. *)
