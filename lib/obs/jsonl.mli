(** JSON-lines event sink: one self-describing JSON object per line
    (fields [event], [time], then the event's own payload), suitable for
    [jq], spreadsheet import, or replay into the {!Trace} exporter. *)

val write : out_channel -> Event.t -> unit

val handler : out_channel -> Event.t -> unit
(** Partial application form for {!Sink.create}. The caller owns the
    channel (and its flush/close). *)

val write_events : out_channel -> Event.t list -> unit
