(** Prometheus text-exposition rendering (format 0.0.4) over a
    {!Registry} snapshot.

    Counters expose as [counter] families with a [_total] suffix, gauges as
    [gauge]s, histograms as [summary] families (quantile samples plus
    [_sum]/[_count]), and sliding windows as point-in-time [gauge]s with
    [_rate]/[_p50]/[_p95]/[_p99]/[_count]/[_max] suffixes. Registry names
    carrying an inline label block — [window.lock_wait{lu="HoLU"}] — keep
    their labels and join the base family, so per-granule (BLU/HoLU/HeLU)
    variants scrape as one labelled metric. *)

val content_type : string
(** The value to serve as [Content-Type] next to {!render} output. *)

val render : ?namespace:string -> Registry.t -> string
(** The full exposition document; metric names are prefixed
    [<namespace>_] (default ["colock"]) and sanitized to the Prometheus
    charset. Families sort by name, so output is deterministic. *)

val sanitize : string -> string
(** Maps a registry name to the Prometheus name charset
    ([[a-zA-Z_][a-zA-Z0-9_]*], every other byte becomes ['_']). *)

val escape_label_value : string -> string
(** Escapes a label value per the text exposition 0.0.4 spec: backslash,
    double-quote and newline each become their backslash escape. Label
    values are otherwise arbitrary — scenario names flow through here. *)

val labelled : string -> (string * string) list -> string
(** [labelled "scenario_info" [("scenario", name)]] builds a registry
    metric name with an inline label block, keys sanitized and values
    escaped, so {!render} round-trips arbitrary values safely. An empty
    pair list returns the name unchanged. *)
