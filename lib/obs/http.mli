(** A minimal stdlib-Unix HTTP listener for the live endpoints
    ([/metrics], [/health]).

    One background accept thread, sequential GET handling, every response
    [Connection: close]. This is a scrape target, not a web server: bodies
    are never read, non-GET methods get a 405, unroutable paths a 404.

    The routing handler runs on the accept thread; guard shared mutable
    state (the live registry) with [Monitor.locked] inside it. *)

type response = { status : int; content_type : string; body : string }

type t

val start : ?addr:string -> port:int -> (string -> response option) -> t
(** Binds [addr] (default ["127.0.0.1"]) on [port] (0 picks an ephemeral
    port — see {!port}) and starts the accept thread. The callback maps a
    request path (query string already stripped) to a response; [None]
    renders a 404. Raises [Unix.Unix_error] when the bind fails (port in
    use, privileged port). *)

val port : t -> int
(** The actually bound port (useful with [port:0]). *)

val stop : t -> unit
(** Closes the listening socket and joins the accept thread. Idempotent. *)
