module Path = Nf2.Path
module Value = Nf2.Value
module Oid = Nf2.Oid
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol
module Mode = Lockmgr.Lock_mode

type write =
  | Wrote_replace of { relation : string; before : Value.t }
  | Wrote_insert of { oid : Oid.t }
  | Wrote_delete of { relation : string; before : Value.t }

type t = {
  db : Nf2.Database.t;
  threshold : int;
  protocol : Protocol.t;
  mutable stats : (string * Nf2.Statistics.t) list;
  mutable write_hook :
    (Lockmgr.Lock_table.txn_id -> write -> unit) option;
}

let compute_statistics db =
  List.map
    (fun store -> (Nf2.Relation.name store, Nf2.Statistics.compute store))
    (Nf2.Database.relations db)

let create ?(threshold = 16) db protocol =
  { db; threshold; protocol; stats = compute_statistics db;
    write_hook = None }

let set_write_hook executor hook = executor.write_hook <- Some hook

let notify_write executor ~txn write =
  match executor.write_hook with
  | Some hook -> hook txn write
  | None -> ()

let database executor = executor.db
let protocol executor = executor.protocol
let refresh_statistics executor = executor.stats <- compute_statistics executor.db

let stats_for executor relation =
  match List.assoc_opt relation executor.stats with
  | Some stats -> stats
  | None -> Nf2.Statistics.empty relation

type row = { oid : Oid.t; node : Node_id.t; value : Value.t }

type result_set = {
  rows : row list;
  plan : Colock.Query_graph.t;
  locks_requested : int;
  used_index : bool;
}

type error =
  | Parse_error of Parser.error
  | Analysis_error of Analyzer.error
  | Blocked of {
      node : Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
      waiting : bool;
    }
  | Database_error of Nf2.Database.error
  | Graph_error of string

let pp_error formatter = function
  | Parse_error parse_error -> Parser.pp_error formatter parse_error
  | Analysis_error analysis_error -> Analyzer.pp_error formatter analysis_error
  | Blocked { node; blockers; waiting } ->
    Format.fprintf formatter "blocked on %a by %s%s" Node_id.pp node
      (String.concat ", "
         (List.map (Printf.sprintf "T%d") blockers))
      (if waiting then " (queued)" else "")
  | Database_error db_error -> Nf2.Database.pp_error formatter db_error
  | Graph_error message -> Format.pp_print_string formatter message

(* Walk instance nodes and values in lockstep.  Instance children of a HoLU
   were built in member order, so positional pairing is exact. *)
let rec resolve_pairs graph (node_id, value) steps =
  match steps with
  | [] -> [ (node_id, value) ]
  | step :: rest -> (
    let node = Graph.node_exn graph node_id in
    match node.Graph.kind, value with
    | Colock.Lockable.Helu, Value.Tuple bindings -> (
      match List.assoc_opt step bindings with
      | Some sub -> resolve_pairs graph (Node_id.child node_id step, sub) rest
      | None -> [])
    | Colock.Lockable.Holu, (Value.Set members | Value.List members) ->
      List.concat
        (List.map2
           (fun child member -> resolve_pairs graph (child, member) steps)
           node.Graph.children members)
    | (Colock.Lockable.Blu | Colock.Lockable.Helu | Colock.Lockable.Holu), _ ->
      [])

(* Members of the collections at [path]; for [path = root], the object
   itself forms the single "member". *)
let member_pairs graph (object_node, object_value) path =
  if Path.equal path Path.root then [ (object_node, object_value) ]
  else
    let holus = resolve_pairs graph (object_node, object_value) (Path.to_list path) in
    List.concat_map
      (fun (holu_id, holu_value) ->
        let node = Graph.node_exn graph holu_id in
        match node.Graph.kind, holu_value with
        | Colock.Lockable.Holu, (Value.Set members | Value.List members) ->
          List.combine node.Graph.children members
        | (Colock.Lockable.Blu | Colock.Lockable.Helu | Colock.Lockable.Holu), _
          ->
          (* selecting from a non-collection path yields the value itself *)
          [ (holu_id, holu_value) ])
      holus

let literal_matches literal value = Value.equal (Ast.literal_to_value literal) value

(* Existential semantics: the object qualifies if every condition is
   satisfied by at least one value reached by its path. *)
let object_qualifies object_value conditions =
  List.for_all
    (fun (path, literal) ->
      List.exists (literal_matches literal) (Value.project object_value path))
    conditions

(* Conditions strictly below the target path, re-rooted at the member. *)
let member_conditions target conditions =
  List.filter_map
    (fun (path, literal) ->
      if
        Path.is_prefix ~prefix:target path
        && Path.length path > Path.length target
      then
        let relative =
          Path.of_list
            (let rec drop count steps =
               if count = 0 then steps
               else match steps with [] -> [] | _ :: rest -> drop (count - 1) rest
             in
             drop (Path.length target) (Path.to_list path))
        in
        Some (relative, literal)
      else None)
    conditions

let member_matches relative_conditions member_value =
  List.for_all
    (fun (path, literal) ->
      List.exists (literal_matches literal) (Value.project member_value path))
    relative_conditions

type lock_target = { lt_node : Node_id.t; lt_mode : Mode.t }

exception Blocked_exception of {
  node : Node_id.t;
  blockers : Lockmgr.Lock_table.txn_id list;
  waiting : bool;
}

let acquire_all executor ~txn ~wait targets =
  List.iter
    (fun { lt_node; lt_mode } ->
      let outcome =
        if wait then Protocol.acquire executor.protocol ~txn lt_node lt_mode
        else Protocol.try_acquire executor.protocol ~txn lt_node lt_mode
      in
      match outcome with
      | Protocol.Acquired _ -> ()
      | Protocol.Blocked { step; blockers; _ } ->
        raise
          (Blocked_exception
             { node = step.Protocol.node; blockers; waiting = wait }))
    targets

let run executor ~txn ?(wait = true) ast =
  let graph = Protocol.graph executor.protocol in
  let catalog = Nf2.Database.catalog executor.db in
  match Analyzer.analyze catalog ast with
  | Error analysis_error -> Error (Analysis_error analysis_error)
  | Ok analysis -> (
    let plan =
      Colock.Query_graph.build ~threshold:executor.threshold catalog
        ~stats:(stats_for executor) analysis.Analyzer.accesses
    in
    let choice =
      match plan.Colock.Query_graph.choices with
      | [ choice ] -> choice
      | choices -> (
        match choices with
        | choice :: _ -> choice
        | [] -> invalid_arg "Executor: no lock choice")
    in
    let target = analysis.Analyzer.target in
    let mode = choice.Colock.Query_graph.mode in
    let relative_conditions =
      member_conditions target.Analyzer.path analysis.Analyzer.object_conditions
    in
    let store =
      match Nf2.Database.relation executor.db target.Analyzer.relation with
      | Some store -> store
      | None -> invalid_arg "Executor: relation disappeared"
    in
    (* Qualifying complex objects with their instance nodes; an index on an
       equality-condition path narrows the scan to its candidates. *)
    let index_candidates =
      List.find_map
        (fun (path, literal) ->
          Nf2.Database.index_lookup executor.db
            ~relation:target.Analyzer.relation ~path
            (Ast.literal_to_value literal))
        analysis.Analyzer.object_conditions
    in
    let qualify key value accu =
      if object_qualifies value analysis.Analyzer.object_conditions then
        let oid = Oid.make ~relation:target.Analyzer.relation ~key in
        match Graph.object_node graph oid with
        | Some node -> (oid, node, value) :: accu
        | None -> accu
      else accu
    in
    let objects =
      match index_candidates with
      | Some keys ->
        List.fold_left
          (fun accu key ->
            match Nf2.Relation.find store key with
            | Some value -> qualify key value accu
            | None -> accu)
          [] keys
        |> List.rev
      | None -> List.rev (Nf2.Relation.fold qualify store [])
    in
    (* Rows: the members the selected variable ranges over. *)
    let rows =
      List.concat_map
        (fun (oid, object_node, object_value) ->
          member_pairs graph (object_node, object_value) target.Analyzer.path
          |> List.filter (fun (_node, value) ->
                 member_matches relative_conditions value)
          |> List.map (fun (node, value) -> { oid; node; value }))
        objects
    in
    (* Lock targets, per the paper's placement rules. *)
    let lock_targets =
      match relative_conditions with
      | _ :: _ when List.length rows <= executor.threshold ->
        (* member-pinning conditions: lock exactly the selected members *)
        List.map (fun { node; _ } -> { lt_node = node; lt_mode = mode }) rows
      | _ -> (
        match choice.Colock.Query_graph.granule with
        | Colock.Query_graph.Whole_relation -> (
          match Graph.relation_node graph target.Analyzer.relation with
          | Some node -> [ { lt_node = node; lt_mode = mode } ]
          | None -> [])
        | Colock.Query_graph.Whole_object ->
          List.map
            (fun (_oid, node, _value) -> { lt_node = node; lt_mode = mode })
            objects
        | Colock.Query_graph.Subtree path ->
          List.concat_map
            (fun (oid, _node, _value) ->
              List.map
                (fun node -> { lt_node = node; lt_mode = mode })
                (Graph.nodes_at_path graph oid path))
            objects)
    in
    match acquire_all executor ~txn ~wait lock_targets with
    | () ->
      Ok { rows; plan; locks_requested = List.length lock_targets;
           used_index = Option.is_some index_candidates }
    | exception Blocked_exception { node; blockers; waiting } ->
      Error (Blocked { node; blockers; waiting }))

let run_string executor ~txn ?wait text =
  match Parser.parse text with
  | Error parse_error -> Error (Parse_error parse_error)
  | Ok ast -> (
    match run executor ~txn ?wait ast with
    | Ok result ->
      Protocol.emit executor.protocol
        (Obs.Event.Query_executed
           { txn; query = text; rows = List.length result.rows;
             locks_requested = result.locks_requested });
      Ok result
    | Error _ as error -> error)

let insert_object executor ~txn ?(wait = true) relation value =
  let graph = Protocol.graph executor.protocol in
  let catalog = Nf2.Database.catalog executor.db in
  match Nf2.Catalog.find catalog relation, Graph.relation_node graph relation with
  | None, _ | _, None ->
    Error (Database_error (Nf2.Database.Unknown_relation relation))
  | Some schema, Some relation_node -> (
    match Nf2.Value.key_of_object schema value with
    | None ->
      Error (Database_error (Nf2.Database.Relation_error (Nf2.Relation.No_key relation)))
    | Some key -> (
      (* IX down to the relation node, then X on the future object node (the
         lock table is name-based, so locking a not-yet-existing node is
         fine — this is exactly what keeps relation scans phantom-safe). *)
      let lock_new_object () =
        let candidate = Node_id.child relation_node key in
        let table = Protocol.table executor.protocol in
        let resource = Node_id.to_resource candidate in
        if wait then
          match Lockmgr.Lock_table.request table ~txn ~resource Mode.X with
          | Lockmgr.Lock_table.Granted -> Ok ()
          | Lockmgr.Lock_table.Waiting blockers ->
            Error (Blocked { node = candidate; blockers; waiting = true })
        else
          match Lockmgr.Lock_table.try_request table ~txn ~resource Mode.X with
          | `Granted -> Ok ()
          | `Would_block blockers ->
            Error (Blocked { node = candidate; blockers; waiting = false })
      in
      let chain =
        if wait then Protocol.acquire executor.protocol ~txn relation_node Mode.IX
        else Protocol.try_acquire executor.protocol ~txn relation_node Mode.IX
      in
      match chain with
      | Protocol.Blocked { step; blockers; _ } ->
        Error (Blocked { node = step.Protocol.node; blockers; waiting = wait })
      | Protocol.Acquired _ -> (
        match lock_new_object () with
        | Error _ as error -> error
        | Ok () -> (
          match Nf2.Database.insert executor.db relation value with
          | Error db_error -> Error (Database_error db_error)
          | Ok oid -> (
            match Graph.insert_object graph catalog schema ~key value with
            | Error message -> Error (Graph_error message)
            | Ok _node ->
              notify_write executor ~txn (Wrote_insert { oid });
              Ok oid)))))

let delete_object executor ~txn ?(wait = true) oid =
  let graph = Protocol.graph executor.protocol in
  match Graph.object_node graph oid with
  | None ->
    Error (Database_error (Nf2.Database.Unknown_relation (Oid.relation oid)))
  | Some object_node -> (
    (* §4.5 semantics refinement: a plain delete never accesses the
       referenced common data, so downward propagation is skipped ("no locks
       on common data are necessary at all"). *)
    let outcome =
      if wait then
        Protocol.acquire executor.protocol ~txn ~follow_references:false
          object_node Mode.X
      else
        Protocol.try_acquire executor.protocol ~txn ~follow_references:false
          object_node Mode.X
    in
    match outcome with
    | Protocol.Blocked { step; blockers; _ } ->
      Error (Blocked { node = step.Protocol.node; blockers; waiting = wait })
    | Protocol.Acquired _ -> (
      let before = Nf2.Database.deref executor.db oid in
      (* graph first: it refuses while the object is still referenced *)
      match Graph.delete_object graph oid with
      | Error message -> Error (Graph_error message)
      | Ok () -> (
        match Nf2.Database.delete executor.db oid with
        | Error db_error -> Error (Database_error db_error)
        | Ok () ->
          (match before with
           | Some before ->
             notify_write executor ~txn
               (Wrote_delete { relation = Oid.relation oid; before })
           | None -> ());
          Ok ())))

(* Rebuild the object value with the sub-value at the row's node replaced. *)
let apply_update executor ~txn row update =
  let graph = Protocol.graph executor.protocol in
  let object_node =
    match Graph.object_node graph row.oid with
    | Some node -> node
    | None -> invalid_arg "Executor.apply_update: unknown object"
  in
  let relative_steps =
    let rec drop count steps =
      if count = 0 then steps
      else match steps with [] -> [] | _ :: rest -> drop (count - 1) rest
    in
    drop (Node_id.depth object_node) (Node_id.steps row.node)
  in
  let rec rebuild node_id value steps =
    match steps with
    | [] -> update value
    | step :: rest -> (
      let node = Graph.node_exn graph node_id in
      match node.Graph.kind, value with
      | Colock.Lockable.Helu, Value.Tuple bindings ->
        Value.Tuple
          (List.map
             (fun (field, sub) ->
               if String.equal field step then
                 (field, rebuild (Node_id.child node_id step) sub rest)
               else (field, sub))
             bindings)
      | Colock.Lockable.Holu, Value.Set members ->
        Value.Set (rebuild_members node_id members (step :: rest))
      | Colock.Lockable.Holu, Value.List members ->
        Value.List (rebuild_members node_id members (step :: rest))
      | (Colock.Lockable.Blu | Colock.Lockable.Helu | Colock.Lockable.Holu), _
        ->
        value)
  and rebuild_members node_id members steps =
    let node = Graph.node_exn graph node_id in
    List.map2
      (fun child member ->
        match steps with
        | step :: rest
          when (match List.rev (Node_id.steps child) with
                | leaf :: _ -> String.equal leaf step
                | [] -> false) ->
          rebuild child member rest
        | _ :: _ | [] -> member)
      node.Graph.children members
  in
  let store_value =
    match Nf2.Database.deref executor.db row.oid with
    | Some value -> value
    | None -> invalid_arg "Executor.apply_update: object disappeared"
  in
  let updated = rebuild object_node store_value relative_steps in
  match
    Nf2.Database.replace executor.db (Oid.relation row.oid) updated
  with
  | Ok _oid ->
    notify_write executor ~txn
      (Wrote_replace { relation = Oid.relation row.oid; before = store_value });
    Ok ()
  | Error error -> Error error
