type t = {
  db : Nf2.Database.t;
  graph : Colock.Instance_graph.t;
  table : Lockmgr.Lock_table.t;
  rights : Authz.Rights.t;
  protocol : Colock.Protocol.t;
  executor : Query.Executor.t;
  manager : Txn.Txn_manager.t;
  undo : Query.Undo.t;
}

let create ?rule ?threshold ?obs ?txn_config db =
  let graph = Colock.Instance_graph.build db in
  let table = Lockmgr.Lock_table.create ?obs () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ?rule ~rights graph table in
  let executor = Query.Executor.create ?threshold db protocol in
  let manager = Txn.Txn_manager.create ?config:txn_config protocol in
  let undo = Query.Undo.create () in
  Query.Undo.attach undo executor;
  { db; graph; table; rights; protocol; executor; manager; undo }

let database session = session.db
let executor session = session.executor
let manager session = session.manager
let rights session = session.rights
let graph session = session.graph
let lock_table session = session.table

let begin_txn ?kind session = Txn.Txn_manager.begin_txn ?kind session.manager

let set_library_read_only session ~relation =
  Authz.Rights.set_relation_default session.rights ~relation false

type 'result outcome = ('result, Query.Executor.error) result

let query session txn text =
  match
    Query.Executor.run_string session.executor ~txn:txn.Txn.Transaction.id text
  with
  | Ok result -> Ok result.Query.Executor.rows
  | Error _ as error -> error

let update session txn text transform =
  match
    Query.Executor.run_string session.executor ~txn:txn.Txn.Transaction.id text
  with
  | Error _ as error -> error
  | Ok result ->
    let rec apply count = function
      | [] -> Ok count
      | row :: rest -> (
        match
          Query.Executor.apply_update session.executor
            ~txn:txn.Txn.Transaction.id row transform
        with
        | Ok () -> apply (count + 1) rest
        | Error db_error -> Error (Query.Executor.Database_error db_error))
    in
    apply 0 result.Query.Executor.rows

let insert session txn relation value =
  Query.Executor.insert_object session.executor ~txn:txn.Txn.Transaction.id
    relation value

let delete session txn oid =
  Query.Executor.delete_object session.executor ~txn:txn.Txn.Transaction.id oid

let commit session txn =
  Query.Undo.forget session.undo ~txn:txn.Txn.Transaction.id;
  let (_ : Lockmgr.Lock_table.grant list) =
    Txn.Txn_manager.commit session.manager txn
  in
  ()

let abort session txn =
  let rolled_back =
    Query.Undo.rollback session.undo ~txn:txn.Txn.Transaction.id
      session.executor
  in
  let (_ : Lockmgr.Lock_table.grant list) =
    Txn.Txn_manager.abort session.manager txn
  in
  rolled_back
