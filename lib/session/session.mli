(** The front door: one object tying together the database, the instance
    lock graph, the protocol (rule 4′ + authorization), the query executor,
    the transaction manager and the undo log.

    {[
      let session = Session.create db in
      let txn = Session.begin_txn session in
      match Session.query session txn "SELECT ... FOR UPDATE" with
      | Ok rows -> ...; Session.commit session txn
      | Error _ -> Session.abort session txn   (* rolls data back too *)
    ]}

    For scripted demos and tests; components remain individually accessible
    for anything the façade does not cover. *)

type t

val create :
  ?rule:Colock.Protocol.rule -> ?threshold:int -> ?obs:Obs.Sink.t ->
  ?txn_config:Txn.Txn_manager.config -> Nf2.Database.t -> t
(** Builds the instance graph eagerly. Default rule 4′, threshold 16.
    [?obs] attaches an observability sink to the internally-created lock
    table; the protocol, executor and transaction manager inherit it.
    [?txn_config] selects the transaction manager's collision resolution
    (detection / timeout / hybrid) and victim policy. *)

val database : t -> Nf2.Database.t
val executor : t -> Query.Executor.t
val manager : t -> Txn.Txn_manager.t
val rights : t -> Authz.Rights.t
val graph : t -> Colock.Instance_graph.t
val lock_table : t -> Lockmgr.Lock_table.t

val begin_txn : ?kind:Txn.Transaction.kind -> t -> Txn.Transaction.t

val set_library_read_only : t -> relation:string -> unit
(** Marks a relation non-modifiable by default (rule 4′ weakening). *)

type 'result outcome = ('result, Query.Executor.error) result

val query :
  t -> Txn.Transaction.t -> string -> Query.Executor.row list outcome
(** Parses and executes; on a lock conflict the transaction queues
    ([Blocked] with [waiting = true]) — commit/abort of the blocker, then
    re-issue. *)

val update :
  t -> Txn.Transaction.t -> string ->
  (Nf2.Value.t -> Nf2.Value.t) -> int outcome
(** Runs the (FOR UPDATE) query and maps every returned row's sub-value
    through the function, writing objects back under the X locks already
    held; returns the number of rows updated. Undo-logged. *)

val insert :
  t -> Txn.Transaction.t -> string -> Nf2.Value.t -> Nf2.Oid.t outcome

val delete : t -> Txn.Transaction.t -> Nf2.Oid.t -> unit outcome

val commit : t -> Txn.Transaction.t -> unit
(** Releases locks (keeping long ones for long transactions) and forgets the
    undo log. *)

val abort : t -> Txn.Transaction.t -> (int, Query.Executor.error) result
(** Rolls back every write of the transaction (LIFO), then releases its
    locks; returns the number of records undone. *)
