(** Per-scenario performance baselines with noise-aware tolerance bands.

    A baseline is the committed record of what every (scenario × technique)
    pair measured on a known-good build: simulator outcome metrics, lock
    manager counters and the collector's latency quantiles. [colock bench
    diff] replays the committed scenario suite, compares fresh numbers
    against the stored ones through per-metric-family tolerance bands, and
    fails on regressions — a perf trajectory that travels with the code.

    Bands are relative-plus-absolute: metric [m] with band [{rel; abs}]
    tolerates [|fresh - base| <= rel * |base| + abs] before a move in the
    bad direction counts as {!Regressed}. The absolute floor keeps tiny
    counts (0 deadlocks vs 1) from tripping percentage-only gates. *)

type run = {
  scenario : string;
  technique : string;
  metrics : (string * float) list;  (** sorted by key *)
}

type t = run list

val measure :
  Nf2.Database.t ->
  Colock.Instance_graph.t ->
  Workload.Dsl.t ->
  Workload.Dsl.technique ->
  run
(** One deterministic run of [dsl] under one technique: a fresh lock table
    with a collector sink, {!Sim.Scenario.of_dsl} jobs, the scenario's
    faults. Metrics are the {!Sim.Metrics.row} keys, the
    {!Lockmgr.Lock_stats.row} counters under a [lock.] prefix, and the
    collector's [lock_wait_*] / [grant_latency_*] / [txn_response_*]
    registry rows. *)

val collect : Workload.Dsl.t list -> t
(** {!measure} over every scenario × its listed techniques, in order. *)

val measure_traced :
  Nf2.Database.t ->
  Colock.Instance_graph.t ->
  Workload.Dsl.t ->
  Workload.Dsl.technique ->
  run * Obs.Event.t list
(** {!measure} with a full event capture riding along: the same
    deterministic run, plus every lock event it emitted, ready for
    {!Obs.Profile.of_events} / {!Obs.Diff} attribution. [colock bench diff
    --explain] uses this to re-run regressed pairs and explain {e where}
    the regression lives, not just that it exists. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val save : string -> t -> unit
(** Writes the baseline as versioned JSON (one indent level, so diffs of
    the committed file stay reviewable). *)

val load : string -> (t, string) result

(** {2 Tolerance bands and verdicts} *)

type direction = Higher_better | Lower_better

type band = { direction : direction; rel : float; abs : float }

val band : string -> band
(** The tolerance band for a metric key, by family: committed count and
    throughput want to stay high (tight bands); abort/crash counts, wait
    totals and latency quantiles want to stay low (looser bands sized to
    scheduler noise); raw lock-manager counters, being deterministic under
    the seeded simulator, get a tight band of their own; anything else
    gets the loosest band. *)

val family : string -> string
(** The human name of the metric family {!band} sorted [key] into:
    ["committed"], ["throughput"], ["abort counts"], ["response times"],
    ["latency quantiles"], ["lock counters"], or ["other"]. [--explain]
    and [--json] output group findings by these names. *)

type verdict =
  | Within of { delta : float }
  | Improved of { delta : float }
  | Regressed of { delta : float; slack : float }

type finding = {
  f_scenario : string;
  f_technique : string;
  f_metric : string;
  f_base : float;
  f_fresh : float;
  f_verdict : verdict;
}

type diff = {
  findings : finding list;
  missing : (string * string) list;
      (** (scenario, technique) in baseline but not fresh *)
  added : (string * string) list;
      (** (scenario, technique) in fresh but not baseline *)
}

val diff : baseline:t -> fresh:t -> diff
(** Pairs runs by (scenario, technique) and metrics by key. A metric
    present on one side only is a {!Regressed} finding with the missing
    side read as [nan] — baselines must be regenerated deliberately via
    [--update-baseline], never drift silently. *)

val regressions : diff -> finding list
val improvements : diff -> finding list

val clean : diff -> bool
(** No regressions, nothing missing, nothing added. *)

val finding_to_json : finding -> Obs.Json.t
(** One finding as a self-describing object: the pair, the metric and its
    family, the band's direction and slack, base/fresh/delta, and the
    verdict tag. *)

val diff_to_json : ?all:bool -> diff -> Obs.Json.t
(** Machine-readable gate output for [colock bench diff --json]: counts,
    the regression and improvement findings (every finding when [all]),
    and the missing/added drift lists. *)

val perturb : (string * float) list -> t -> (t, string) result
(** Scales matching metrics by a factor — [perturb [("total_wait", 2.0)]]
    doubles every run's [total_wait]. The bench-diff cram test uses this to
    prove the gate actually fires on a synthetic slowdown. A factor naming
    a metric no run measured is an error (it would silently perturb
    nothing). *)
