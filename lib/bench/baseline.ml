(* Committed per-scenario performance baselines.

   One [run] records everything a (scenario × technique) pair measured:
   simulator outcomes, the lock manager's raw counters (under a [lock.]
   prefix) and the collector's latency-histogram rows. The whole list
   round-trips through a versioned JSON document — BENCH_scenarios.json at
   the repo root — and `colock bench diff` compares a fresh measurement
   against it through per-metric-family tolerance bands.

   Bands are deliberately asymmetric: a regression must clear
   [rel * |base| + abs] in the *bad* direction; moves in the good direction
   past the same slack report as improvements (a nudge to refresh the
   baseline) but never fail the gate. *)

type run = {
  scenario : string;
  technique : string;
  metrics : (string * float) list;
}

type t = run list

(* ----------------------------------------------------------- measuring *)

let latency_prefixes = [ "lock_wait_"; "grant_latency_"; "txn_response_" ]

let starts_with ~prefix text =
  String.length text >= String.length prefix
  && String.sub text 0 (String.length prefix) = prefix

let measure_general db graph (dsl : Workload.Dsl.t) technique ~capture =
  let collector = Obs.Collector.create () in
  let captured = ref [] in
  let handlers =
    Obs.Collector.handle collector
    :: (if capture then [ (fun event -> captured := event :: !captured) ]
        else [])
  in
  let sink = Obs.Sink.create handlers in
  let table =
    Lockmgr.Lock_table.create ~obs:sink
      ~meta:(Colock.Instance_graph.lu_resolver graph) ()
  in
  let compiled = Sim.Scenario.technique_of_dsl graph table technique in
  let jobs =
    Sim.Scenario.compile graph compiled (Sim.Scenario.of_dsl db graph dsl)
  in
  let metrics =
    Sim.Runner.run
      ~config:(Sim.Scenario.config_of_dsl dsl)
      ~faults:(Sim.Scenario.faults_of_dsl dsl) ~table jobs
  in
  let lock_row =
    List.map
      (fun (key, value) -> ("lock." ^ key, value))
      (Lockmgr.Lock_stats.row (Lockmgr.Lock_table.stats table))
  in
  let latency_row =
    List.filter
      (fun (key, _) ->
        List.exists (fun prefix -> starts_with ~prefix key) latency_prefixes)
      (Obs.Registry.row (Obs.Collector.registry collector))
  in
  ( { scenario = dsl.Workload.Dsl.name;
      technique = Workload.Dsl.technique_to_string technique;
      metrics =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Sim.Metrics.row metrics @ lock_row @ latency_row) },
    List.rev !captured )

let measure db graph dsl technique =
  fst (measure_general db graph dsl technique ~capture:false)

let measure_traced db graph dsl technique =
  measure_general db graph dsl technique ~capture:true

let collect scenarios =
  List.concat_map
    (fun (dsl : Workload.Dsl.t) ->
      let db = Workload.Dsl.database dsl in
      let graph = Colock.Instance_graph.build db in
      List.map (measure db graph dsl) dsl.techniques)
    scenarios

(* ------------------------------------------------------------- storage *)

let format_version = 1

(* Counts stay integers in the file so baseline diffs read naturally. *)
let json_number value =
  if Float.is_integer value && Float.abs value < 1e15 then
    Obs.Json.Int (int_of_float value)
  else Obs.Json.Float value

let to_json runs =
  Obs.Json.Obj
    [ ("version", Obs.Json.Int format_version);
      ( "runs",
        Obs.Json.List
          (List.map
             (fun run ->
               Obs.Json.Obj
                 [ ("scenario", Obs.Json.String run.scenario);
                   ("technique", Obs.Json.String run.technique);
                   ( "metrics",
                     Obs.Json.Obj
                       (List.map
                          (fun (key, value) -> (key, json_number value))
                          run.metrics) ) ])
             runs) ) ]

let number_of = function
  | Obs.Json.Int value -> Some (float_of_int value)
  | Obs.Json.Float value -> Some value
  | _ -> None

let of_json json =
  let ( let* ) = Result.bind in
  let field name = function
    | Obs.Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some value -> Ok value
      | None -> Error (Printf.sprintf "baseline: missing %S field" name))
    | _ -> Error "baseline: expected an object"
  in
  let* version = field "version" json in
  let* () =
    match version with
    | Obs.Json.Int v when v = format_version -> Ok ()
    | _ ->
      Error
        (Printf.sprintf "baseline: unsupported version (want %d)"
           format_version)
  in
  let* runs = field "runs" json in
  let* entries =
    match runs with
    | Obs.Json.List entries -> Ok entries
    | _ -> Error "baseline: \"runs\" must be a list"
  in
  let parse_run entry =
    let* scenario = field "scenario" entry in
    let* technique = field "technique" entry in
    let* metrics = field "metrics" entry in
    match scenario, technique, metrics with
    | Obs.Json.String scenario, Obs.Json.String technique, Obs.Json.Obj pairs
      ->
      let* metrics =
        List.fold_left
          (fun accu (key, value) ->
            let* accu = accu in
            match number_of value with
            | Some value -> Ok ((key, value) :: accu)
            | None ->
              Error (Printf.sprintf "baseline: metric %S is not a number" key))
          (Ok []) pairs
      in
      Ok { scenario; technique; metrics = List.rev metrics }
    | _ -> Error "baseline: malformed run entry"
  in
  List.fold_left
    (fun accu entry ->
      let* accu = accu in
      let* run = parse_run entry in
      Ok (run :: accu))
    (Ok []) entries
  |> Result.map List.rev

let save path runs =
  let channel = open_out path in
  output_string channel (Obs.Json.to_string ~indent:2 (to_json runs));
  output_char channel '\n';
  close_out channel

let load path =
  match open_in path with
  | exception Sys_error message -> Error message
  | channel ->
    let length = in_channel_length channel in
    let text = really_input_string channel length in
    close_in_noerr channel;
    Result.bind (Obs.Json.of_string text) of_json

(* ------------------------------------------------- bands and verdicts *)

type direction = Higher_better | Lower_better

type band = { direction : direction; rel : float; abs : float }

let band key =
  if key = "committed" then
    { direction = Higher_better; rel = 0.02; abs = 0.5 }
  else if key = "throughput" then
    { direction = Higher_better; rel = 0.10; abs = 0.01 }
  else if
    List.mem key [ "gave_up"; "crashed"; "deadlock_aborts"; "timeout_aborts" ]
  then { direction = Lower_better; rel = 0.25; abs = 2.0 }
  else if
    List.mem key [ "makespan"; "avg_response"; "total_response"; "total_wait" ]
  then { direction = Lower_better; rel = 0.20; abs = 30.0 }
  else if List.exists (fun prefix -> starts_with ~prefix key) latency_prefixes
  then { direction = Lower_better; rel = 0.25; abs = 30.0 }
  else if starts_with ~prefix:"lock." key then
    (* raw lock-manager counters replay deterministically under the seeded
       simulator, so they can afford a band tight enough that a 1.5x swing
       (the --perturb self-test) always clears it *)
    { direction = Lower_better; rel = 0.25; abs = 10.0 }
  else { direction = Lower_better; rel = 0.50; abs = 25.0 }

let family key =
  if key = "committed" then "committed"
  else if key = "throughput" then "throughput"
  else if
    List.mem key [ "gave_up"; "crashed"; "deadlock_aborts"; "timeout_aborts" ]
  then "abort counts"
  else if
    List.mem key [ "makespan"; "avg_response"; "total_response"; "total_wait" ]
  then "response times"
  else if List.exists (fun prefix -> starts_with ~prefix key) latency_prefixes
  then "latency quantiles"
  else if starts_with ~prefix:"lock." key then "lock counters"
  else "other"

type verdict =
  | Within of { delta : float }
  | Improved of { delta : float }
  | Regressed of { delta : float; slack : float }

type finding = {
  f_scenario : string;
  f_technique : string;
  f_metric : string;
  f_base : float;
  f_fresh : float;
  f_verdict : verdict;
}

type diff = {
  findings : finding list;
  missing : (string * string) list;
  added : (string * string) list;
}

let verdict_of ~key ~base ~fresh =
  let { direction; rel; abs } = band key in
  if Float.is_nan base || Float.is_nan fresh then
    (* a metric present on only one side: always a gate failure *)
    Regressed { delta = Float.nan; slack = 0.0 }
  else
    let slack = (rel *. Float.abs base) +. abs in
    let delta = fresh -. base in
    let worse =
      match direction with
      | Lower_better -> delta
      | Higher_better -> -.delta
    in
    if worse > slack then Regressed { delta; slack }
    else if worse < -.slack then Improved { delta }
    else Within { delta }

let diff ~baseline ~fresh =
  let key run = (run.scenario, run.technique) in
  let fresh_for target =
    List.find_opt (fun run -> key run = key target) fresh
  in
  let missing =
    List.filter_map
      (fun run ->
        if fresh_for run = None then Some (key run) else None)
      baseline
  in
  let added =
    List.filter_map
      (fun run ->
        if List.exists (fun base -> key base = key run) baseline then None
        else Some (key run))
      fresh
  in
  let findings =
    List.concat_map
      (fun base_run ->
        match fresh_for base_run with
        | None -> []
        | Some fresh_run ->
          let keys =
            List.sort_uniq String.compare
              (List.map fst base_run.metrics @ List.map fst fresh_run.metrics)
          in
          List.map
            (fun metric ->
              let side run =
                Option.value ~default:Float.nan
                  (List.assoc_opt metric run.metrics)
              in
              let base = side base_run and fresh = side fresh_run in
              { f_scenario = base_run.scenario;
                f_technique = base_run.technique;
                f_metric = metric;
                f_base = base;
                f_fresh = fresh;
                f_verdict = verdict_of ~key:metric ~base ~fresh })
            keys)
      baseline
  in
  { findings; missing; added }

let regressions report =
  List.filter
    (fun finding ->
      match finding.f_verdict with Regressed _ -> true | _ -> false)
    report.findings

let improvements report =
  List.filter
    (fun finding ->
      match finding.f_verdict with Improved _ -> true | _ -> false)
    report.findings

let clean report =
  regressions report = [] && report.missing = [] && report.added = []

(* --------------------------------------------------------- JSON output *)

let finding_to_json finding =
  let { direction; _ } = band finding.f_metric in
  let verdict_tag, extras =
    match finding.f_verdict with
    | Within { delta } -> ("within", [ ("delta", Obs.Json.Float delta) ])
    | Improved { delta } -> ("improved", [ ("delta", Obs.Json.Float delta) ])
    | Regressed { delta; slack } ->
      ( "regressed",
        [ ("delta", Obs.Json.Float delta); ("slack", Obs.Json.Float slack) ] )
  in
  Obs.Json.Obj
    ([ ("scenario", Obs.Json.String finding.f_scenario);
       ("technique", Obs.Json.String finding.f_technique);
       ("metric", Obs.Json.String finding.f_metric);
       ("family", Obs.Json.String (family finding.f_metric));
       ( "direction",
         Obs.Json.String
           (match direction with
           | Higher_better -> "higher-better"
           | Lower_better -> "lower-better") );
       ("base", json_number finding.f_base);
       ("fresh", json_number finding.f_fresh);
       ("verdict", Obs.Json.String verdict_tag) ]
    @ extras)

let diff_to_json ?(all = false) report =
  let pair (scenario, technique) =
    Obs.Json.Obj
      [ ("scenario", Obs.Json.String scenario);
        ("technique", Obs.Json.String technique) ]
  in
  let findings =
    if all then report.findings
    else regressions report @ improvements report
  in
  Obs.Json.Obj
    [ ("comparisons", Obs.Json.Int (List.length report.findings));
      ("regressions", Obs.Json.Int (List.length (regressions report)));
      ("improvements", Obs.Json.Int (List.length (improvements report)));
      ("clean", Obs.Json.Bool (clean report));
      ("findings", Obs.Json.List (List.map finding_to_json findings));
      ("missing", Obs.Json.List (List.map pair report.missing));
      ("added", Obs.Json.List (List.map pair report.added)) ]

let perturb factors runs =
  (* a factor naming no measured metric would silently perturb nothing and
     fake a passing sensitivity self-test — reject it instead *)
  let known =
    List.sort_uniq String.compare
      (List.concat_map (fun run -> List.map fst run.metrics) runs)
  in
  let unknown =
    List.filter (fun (key, _) -> not (List.mem key known)) factors
  in
  match unknown with
  | (key, _) :: _ ->
    Error
      (Printf.sprintf "unknown metric %S in --perturb (known metrics: %s)" key
         (String.concat ", " known))
  | [] ->
    Ok
      (List.map
         (fun run ->
           { run with
             metrics =
               List.map
                 (fun (key, value) ->
                   match List.assoc_opt key factors with
                   | Some factor -> (key, value *. factor)
                   | None -> (key, value))
                 run.metrics })
         runs)
