(** Append-only, versioned run-history store: the perf trajectory.

    Where {!Baseline} is a single committed snapshot that the regression
    gate compares against, the history is the {e sequence} of measured
    runs accumulated across commits: one self-describing JSON line per
    run ([BENCH_HISTORY.jsonl] at the repo root), appended by
    [bench/main] after each experiment's reference run and by
    [colock bench diff] after each unperturbed gate run. [colock trends]
    folds it into per-metric trajectories and flags anomalies with an
    EWMA tracker inside a MAD band — trends stay visible across PRs
    instead of evaporating with each fresh baseline.

    Lines are whole (rendered then written with one flush, like
    {!Obs.Jsonl.write}), so a crash-cut append never corrupts earlier
    records; {!load} skips undecodable lines with a diagnostic instead of
    failing the whole read. *)

type record = {
  seq : int;  (** 1-based, monotonically increasing per file *)
  source : string;  (** who appended: ["bench"] or ["bench-diff"] *)
  label : string;  (** experiment id or scenario-suite path *)
  metrics : (string * float) list;  (** sorted by key *)
}

val append :
  path:string -> source:string -> label:string -> (string * float) list ->
  record
(** Appends one record, continuing [seq] from the last decodable record
    in the file (1 on a fresh or missing file), and returns it. *)

val load : string -> record list * string list
(** Records in file order plus per-line diagnostics for skipped lines. A
    missing file is an empty history, not an error. *)

(** {2 Trajectories} *)

type point = {
  pt_seq : int;
  pt_value : float;
  pt_ewma : float;  (** the tracker after absorbing this point *)
  pt_anomalous : bool;
      (** the point missed the {e prior} EWMA by more than the band *)
}

type trend = {
  t_source : string;
  t_label : string;
  t_metric : string;
  t_points : point list;  (** file order *)
  t_median : float;
  t_mad : float;  (** median absolute deviation of the values *)
  t_band : float;  (** [k * 1.4826 * mad], with a tiny absolute floor *)
  t_anomalies : int;
}

val trends : ?alpha:float -> ?k:float -> record list -> trend list
(** One trend per (source, label, metric) triple holding at least one
    point, in lexicographic order of the triple. [alpha] (default 0.3) is
    the EWMA smoothing factor; [k] (default 3) sizes the anomaly band in
    scaled-MAD units (1.4826 × MAD estimates one standard deviation for
    Gaussian noise). The first point of a series seeds the tracker and is
    never anomalous. *)

val trend_to_json : trend -> Obs.Json.t
