(* The append-only perf trajectory (BENCH_HISTORY.jsonl).

   One JSON object per line, versioned per line so the format can evolve
   without invalidating old records:

     {"v":1,"seq":3,"source":"bench-diff","label":"scenarios",
      "metrics":{"committed":1005,...}}

   Appends render the whole line into a buffer and write it with a single
   output + flush (the Jsonl discipline): a run killed mid-append leaves
   complete lines only. Loads are tolerant: an undecodable line becomes a
   diagnostic, never a failed read — history written by a newer version
   still yields every record this version understands. *)

type record = {
  seq : int;
  source : string;
  label : string;
  metrics : (string * float) list;
}

let line_version = 1

let to_json record =
  Obs.Json.Obj
    [ ("v", Obs.Json.Int line_version);
      ("seq", Obs.Json.Int record.seq);
      ("source", Obs.Json.String record.source);
      ("label", Obs.Json.String record.label);
      ( "metrics",
        Obs.Json.Obj
          (List.map
             (fun (key, value) ->
               ( key,
                 if Float.is_integer value && Float.abs value < 1e15 then
                   Obs.Json.Int (int_of_float value)
                 else Obs.Json.Float value ))
             record.metrics) ) ]

let of_json json =
  let ( let* ) = Result.bind in
  let field name =
    match json with
    | Obs.Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some value -> Ok value
      | None -> Error (Printf.sprintf "missing %S field" name))
    | _ -> Error "expected an object"
  in
  let* version = field "v" in
  let* () =
    match version with
    | Obs.Json.Int v when v = line_version -> Ok ()
    | _ -> Error (Printf.sprintf "unsupported record version (want %d)" line_version)
  in
  let* seq = field "seq" in
  let* source = field "source" in
  let* label = field "label" in
  let* metrics = field "metrics" in
  match seq, source, label, metrics with
  | ( Obs.Json.Int seq,
      Obs.Json.String source,
      Obs.Json.String label,
      Obs.Json.Obj pairs ) ->
    let* metrics =
      List.fold_left
        (fun accu (key, value) ->
          let* accu = accu in
          match value with
          | Obs.Json.Int value -> Ok ((key, float_of_int value) :: accu)
          | Obs.Json.Float value -> Ok ((key, value) :: accu)
          | _ -> Error (Printf.sprintf "metric %S is not a number" key))
        (Ok []) pairs
    in
    Ok { seq; source; label; metrics = List.rev metrics }
  | _ -> Error "malformed history record"

let load path =
  match open_in path with
  | exception Sys_error _ -> ([], [])
  | channel ->
    let records = ref [] in
    let errors = ref [] in
    let line_number = ref 0 in
    (try
       while true do
         let line = input_line channel in
         incr line_number;
         if String.trim line <> "" then
           match Result.bind (Obs.Json.of_string line) of_json with
           | Ok record -> records := record :: !records
           | Error message ->
             errors :=
               Printf.sprintf "line %d: %s" !line_number message :: !errors
       done
     with End_of_file -> ());
    close_in_noerr channel;
    (List.rev !records, List.rev !errors)

let append ~path ~source ~label metrics =
  let records, _errors = load path in
  let seq =
    1 + List.fold_left (fun best record -> max best record.seq) 0 records
  in
  let record =
    { seq; source; label;
      metrics = List.sort (fun (a, _) (b, _) -> String.compare a b) metrics }
  in
  let channel =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr channel)
    (fun () ->
      let buffer = Buffer.create 256 in
      Buffer.add_string buffer (Obs.Json.to_string (to_json record));
      Buffer.add_char buffer '\n';
      output_string channel (Buffer.contents buffer);
      flush channel);
  record

(* ---------------------------------------------------------- trajectories *)

type point = {
  pt_seq : int;
  pt_value : float;
  pt_ewma : float;
  pt_anomalous : bool;
}

type trend = {
  t_source : string;
  t_label : string;
  t_metric : string;
  t_points : point list;
  t_median : float;
  t_mad : float;
  t_band : float;
  t_anomalies : int;
}

let median values =
  match List.sort Float.compare values with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let trends ?(alpha = 0.3) ?(k = 3.0) records =
  let module Triple_map = Map.Make (struct
    type t = string * string * string

    let compare = compare
  end) in
  let series =
    List.fold_left
      (fun map record ->
        List.fold_left
          (fun map (metric, value) ->
            let key = (record.source, record.label, metric) in
            let known =
              Option.value ~default:[] (Triple_map.find_opt key map)
            in
            Triple_map.add key ((record.seq, value) :: known) map)
          map record.metrics)
      Triple_map.empty records
  in
  Triple_map.bindings series
  |> List.map (fun ((t_source, t_label, t_metric), points) ->
         let points = List.rev points in
         let values = List.map snd points in
         let t_median = median values in
         let t_mad =
           median (List.map (fun value -> Float.abs (value -. t_median)) values)
         in
         (* a constant series has MAD 0; the floor keeps it from flagging
            last-ulp jitter as an anomaly while still catching real moves *)
         let t_band =
           Float.max (k *. 1.4826 *. t_mad)
             (1e-9 *. Float.max 1.0 (Float.abs t_median))
         in
         let t_points, t_anomalies =
           let _, reversed, anomalies =
             List.fold_left
               (fun (tracker, accu, anomalies) (pt_seq, pt_value) ->
                 match tracker with
                 | None ->
                   ( Some pt_value,
                     { pt_seq; pt_value; pt_ewma = pt_value;
                       pt_anomalous = false }
                     :: accu,
                     anomalies )
                 | Some ewma ->
                   let pt_anomalous = Float.abs (pt_value -. ewma) > t_band in
                   let next = (alpha *. pt_value) +. ((1.0 -. alpha) *. ewma) in
                   ( Some next,
                     { pt_seq; pt_value; pt_ewma = next; pt_anomalous }
                     :: accu,
                     if pt_anomalous then anomalies + 1 else anomalies ))
               (None, [], 0) points
           in
           (List.rev reversed, anomalies)
         in
         { t_source; t_label; t_metric; t_points; t_median; t_mad; t_band;
           t_anomalies })

let trend_to_json trend =
  Obs.Json.Obj
    [ ("source", Obs.Json.String trend.t_source);
      ("label", Obs.Json.String trend.t_label);
      ("metric", Obs.Json.String trend.t_metric);
      ("median", Obs.Json.Float trend.t_median);
      ("mad", Obs.Json.Float trend.t_mad);
      ("band", Obs.Json.Float trend.t_band);
      ("anomalies", Obs.Json.Int trend.t_anomalies);
      ( "points",
        Obs.Json.List
          (List.map
             (fun point ->
               Obs.Json.Obj
                 [ ("seq", Obs.Json.Int point.pt_seq);
                   ("value", Obs.Json.Float point.pt_value);
                   ("ewma", Obs.Json.Float point.pt_ewma);
                   ("anomalous", Obs.Json.Bool point.pt_anomalous) ])
             trend.t_points) ) ]
