type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_rate : float;
  min_events : int;
  open_for : int;
  probes : int;
}

let default_config =
  { failure_rate = 0.8; min_events = 16; open_for = 200; probes = 3 }

let config_of_string s =
  let ( let* ) = Result.bind in
  let parse_float label v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "breaker %s: not a number: %S" label v)
  in
  let parse_int label v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "breaker %s: not an integer: %S" label v)
  in
  match String.split_on_char ':' s with
  | [ rate; open_for ] ->
    let* failure_rate = parse_float "rate" rate in
    let* open_for = parse_int "open" open_for in
    Ok { default_config with failure_rate; open_for }
  | [ rate; open_for; probes ] ->
    let* failure_rate = parse_float "rate" rate in
    let* open_for = parse_int "open" open_for in
    let* probes = parse_int "probes" probes in
    Ok { default_config with failure_rate; open_for; probes }
  | _ -> Error (Printf.sprintf "breaker spec %S: expected RATE:OPEN[:PROBES]" s)

let validate c =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if not (c.failure_rate > 0.0 && c.failure_rate <= 1.0) then
    err "breaker rate must be in (0, 1] (got %g)" c.failure_rate;
  if c.min_events < 1 then
    err "breaker min-events must be >= 1 (got %d)" c.min_events;
  if c.open_for < 1 then err "breaker open must be >= 1 (got %d)" c.open_for;
  if c.probes < 1 then err "breaker probes must be >= 1 (got %d)" c.probes;
  List.rev !errs

type t = {
  cfg : config;
  mutable st : state;
  mutable commits : int;
  mutable aborts : int;
  mutable opened_at : int;
  mutable probe_budget : int; (* Half_open: probe admissions left *)
  mutable probe_commits : int; (* Half_open: probe commits seen *)
}

let create cfg =
  {
    cfg;
    st = Closed;
    commits = 0;
    aborts = 0;
    opened_at = 0;
    probe_budget = 0;
    probe_commits = 0;
  }

let state t = t.st
let config t = t.cfg

let trip t ~now =
  t.st <- Open;
  t.opened_at <- now;
  t.commits <- 0;
  t.aborts <- 0

(* Halve the sample once it grows well past [min_events], so the observed
   rate tracks the recent regime instead of the whole run. *)
let decay t =
  if t.commits + t.aborts >= 4 * t.cfg.min_events then begin
    t.commits <- t.commits / 2;
    t.aborts <- t.aborts / 2
  end

let check_trip t ~now =
  let total = t.commits + t.aborts in
  if
    total >= t.cfg.min_events
    && float_of_int t.aborts /. float_of_int total >= t.cfg.failure_rate
  then trip t ~now

let record_commit t ~now =
  ignore now;
  match t.st with
  | Closed ->
    t.commits <- t.commits + 1;
    decay t
  | Open -> ()
  | Half_open ->
    t.probe_commits <- t.probe_commits + 1;
    if t.probe_commits >= t.cfg.probes then begin
      t.st <- Closed;
      t.commits <- 0;
      t.aborts <- 0
    end

let record_abort t ~now =
  match t.st with
  | Closed ->
    t.aborts <- t.aborts + 1;
    decay t;
    check_trip t ~now
  | Open -> ()
  | Half_open -> trip t ~now

let allow t ~now =
  match t.st with
  | Closed -> true
  | Open ->
    if now >= t.opened_at + t.cfg.open_for then begin
      t.st <- Half_open;
      t.probe_budget <- t.cfg.probes - 1;
      t.probe_commits <- 0;
      true
    end
    else false
  | Half_open ->
    if t.probe_budget > 0 then begin
      t.probe_budget <- t.probe_budget - 1;
      true
    end
    else false

let reopen_at t =
  match t.st with Open -> Some (t.opened_at + t.cfg.open_for) | _ -> None

let pp ppf t =
  Format.fprintf ppf "breaker{%s commits=%d aborts=%d}"
    (state_to_string t.st) t.commits t.aborts
