(** The sensing half of the admission closed loop. Every [every] ticks the
    caller samples the live monitor (lock-wait p95, abort rate, wait-queue
    depth) and feeds the readings to {!step}; the controller compares them
    against its thresholds and moves the {!Admission} limit — multiplicative
    decrease when any signal breaches, additive increase when all are
    healthy. *)

type thresholds = {
  p95_wait : float;  (** lock-wait 95th percentile, virtual ticks *)
  abort_rate : float;  (** aborts / (commits + aborts) over the window *)
  queue_depth : int;  (** live lock-table waiter count *)
}

type config = { every : int;  (** control period, ticks *) thresholds : thresholds }

val default_config : config
(** [every 50; p95_wait 200.0; abort_rate 0.5; queue_depth 24]. *)

val validate : config -> string list

type verdict =
  | Unchanged
  | Raised of int  (** new limit after additive increase *)
  | Lowered of int  (** new limit after multiplicative decrease *)

val step :
  config ->
  Admission.t ->
  p95_wait:float ->
  abort_rate:float ->
  queue_depth:int ->
  verdict
(** Applies AIMD to the admission limiter and reports what changed. *)
