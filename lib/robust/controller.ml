type thresholds = { p95_wait : float; abort_rate : float; queue_depth : int }
type config = { every : int; thresholds : thresholds }

let default_config =
  {
    every = 50;
    thresholds = { p95_wait = 200.0; abort_rate = 0.5; queue_depth = 24 };
  }

let validate c =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if c.every < 1 then err "controller every must be >= 1 (got %d)" c.every;
  if c.thresholds.p95_wait <= 0.0 then
    err "controller p95 threshold must be > 0 (got %g)" c.thresholds.p95_wait;
  if not (c.thresholds.abort_rate > 0.0 && c.thresholds.abort_rate <= 1.0)
  then
    err "controller abort threshold must be in (0, 1] (got %g)"
      c.thresholds.abort_rate;
  if c.thresholds.queue_depth < 1 then
    err "controller depth threshold must be >= 1 (got %d)"
      c.thresholds.queue_depth;
  List.rev !errs

type verdict = Unchanged | Raised of int | Lowered of int

let step cfg adm ~p95_wait ~abort_rate ~queue_depth =
  let t = cfg.thresholds in
  let overloaded =
    p95_wait > t.p95_wait || abort_rate > t.abort_rate
    || queue_depth > t.queue_depth
  in
  let acfg = Admission.config adm in
  let cur = Admission.limit adm in
  if overloaded then
    let target =
      max acfg.Admission.min_limit
        (min (cur - 1)
           (int_of_float (Float.round (float_of_int cur *. acfg.decrease))))
    in
    if target < cur then Lowered (Admission.set_limit adm target)
    else Unchanged
  else
    let target = min acfg.Admission.max_limit (cur + acfg.increase) in
    if target > cur then Raised (Admission.set_limit adm target)
    else Unchanged
