type priority = High | Normal | Low

let priority_to_string = function
  | High -> "high"
  | Normal -> "normal"
  | Low -> "low"

let priority_of_string = function
  | "high" -> Ok High
  | "normal" -> Ok Normal
  | "low" -> Ok Low
  | s -> Error (Printf.sprintf "unknown priority %S (high|normal|low)" s)

let rank = function High -> 2 | Normal -> 1 | Low -> 0

type config = {
  initial : int;
  min_limit : int;
  max_limit : int;
  queue_capacity : int;
  increase : int;
  decrease : float;
}

let default_config =
  {
    initial = 8;
    min_limit = 1;
    max_limit = 64;
    queue_capacity = 16;
    increase = 1;
    decrease = 0.5;
  }

let config_to_string c =
  Printf.sprintf "%d:%d:%d:%d" c.initial c.min_limit c.max_limit
    c.queue_capacity

let config_of_string s =
  let parse_int label v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "admission %s: not an integer: %S" label v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ init ] ->
    let* initial = parse_int "initial" init in
    Ok
      {
        default_config with
        initial;
        min_limit = min default_config.min_limit initial;
        max_limit = max default_config.max_limit initial;
      }
  | [ init; lo; hi ] ->
    let* initial = parse_int "initial" init in
    let* min_limit = parse_int "min" lo in
    let* max_limit = parse_int "max" hi in
    Ok { default_config with initial; min_limit; max_limit }
  | [ init; lo; hi; q ] ->
    let* initial = parse_int "initial" init in
    let* min_limit = parse_int "min" lo in
    let* max_limit = parse_int "max" hi in
    let* queue_capacity = parse_int "queue" q in
    Ok { default_config with initial; min_limit; max_limit; queue_capacity }
  | _ ->
    Error
      (Printf.sprintf "admission spec %S: expected INIT[:MIN:MAX[:QUEUE]]" s)

let validate c =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if c.min_limit < 1 then err "admission min must be >= 1 (got %d)" c.min_limit;
  if c.max_limit < c.min_limit then
    err "admission max %d < min %d" c.max_limit c.min_limit;
  if c.initial < c.min_limit || c.initial > c.max_limit then
    err "admission initial %d outside [%d, %d]" c.initial c.min_limit
      c.max_limit;
  if c.queue_capacity < 0 then
    err "admission queue must be >= 0 (got %d)" c.queue_capacity;
  if c.increase < 1 then err "admission increase must be >= 1 (got %d)" c.increase;
  if not (c.decrease > 0.0 && c.decrease < 1.0) then
    err "admission decrease must be in (0, 1) (got %g)" c.decrease;
  List.rev !errs

(* The entry queue is one list kept in arrival order; priority is applied on
   [pop] and on eviction, not by segregating storage, so fairness inside a
   class is FIFO by construction. Queues stay tiny (bounded by
   [queue_capacity]) so linear scans are fine. *)
type entry = { txn : int; prio : priority; seq : int }

type t = {
  cfg : config;
  mutable cur_limit : int;
  mutable inflight : int;
  mutable queue : entry list; (* arrival order, oldest first *)
  mutable seq : int;
  mutable shed : int;
  mutable admitted : int;
}

type decision = Admitted | Enqueued of { evicted : int option } | Rejected

let create cfg =
  {
    cfg;
    cur_limit = cfg.initial;
    inflight = 0;
    queue = [];
    seq = 0;
    shed = 0;
    admitted = 0;
  }

let config t = t.cfg
let limit t = t.cur_limit
let inflight t = t.inflight
let queued t = List.length t.queue
let shed_count t = t.shed
let admitted_count t = t.admitted

let set_limit t n =
  t.cur_limit <- max t.cfg.min_limit (min t.cfg.max_limit n);
  t.cur_limit

(* Oldest entry of the strictly lowest priority class present. *)
let eviction_candidate queue =
  match queue with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun worst e -> if rank e.prio < rank worst.prio then e else worst)
         first rest)

let request t ~priority ~txn =
  if t.inflight < t.cur_limit then begin
    t.inflight <- t.inflight + 1;
    t.admitted <- t.admitted + 1;
    Admitted
  end
  else begin
    let enqueue evicted =
      t.seq <- t.seq + 1;
      t.queue <- t.queue @ [ { txn; prio = priority; seq = t.seq } ];
      Enqueued { evicted }
    in
    if List.length t.queue < t.cfg.queue_capacity then enqueue None
    else
      match eviction_candidate t.queue with
      | Some victim when rank victim.prio < rank priority ->
        t.queue <- List.filter (fun (e : entry) -> e.seq <> victim.seq) t.queue;
        t.shed <- t.shed + 1;
        enqueue (Some victim.txn)
      | _ ->
        t.shed <- t.shed + 1;
        Rejected
  end

let release t = t.inflight <- max 0 (t.inflight - 1)

let pop t =
  if t.inflight >= t.cur_limit then None
  else
    match t.queue with
    | [] -> None
    | first :: rest ->
      let best =
        List.fold_left
          (fun best e -> if rank e.prio > rank best.prio then e else best)
          first rest
      in
      t.queue <- List.filter (fun (e : entry) -> e.seq <> best.seq) t.queue;
      t.inflight <- t.inflight + 1;
      t.admitted <- t.admitted + 1;
      Some best.txn

let pp ppf t =
  Format.fprintf ppf "admission{limit=%d inflight=%d queued=%d shed=%d}"
    t.cur_limit t.inflight (List.length t.queue) t.shed
