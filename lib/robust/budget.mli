(** Retry budget: a token bucket that couples the restart rate to the
    commit rate. Each commit earns [ratio] retry tokens (capped at
    [burst]); each restart spends one. When the bucket is empty the
    transaction gives up instead of retrying, so restarts can never
    outnumber useful work by more than the configured ratio. *)

type config = {
  ratio : float;  (** retry tokens earned per commit *)
  burst : float;  (** bucket capacity (also the initial fill) *)
}

val default_config : config
(** [ratio 0.5, burst 16]. *)

val config_of_string : string -> (config, string) result
(** ["RATIO"] or ["RATIO:BURST"]. *)

val validate : config -> string list

type t

val create : config -> t
val tokens : t -> float
val denied_count : t -> int

val on_commit : t -> unit
val try_retry : t -> bool
(** Spend one token; [false] (and counts a denial) when the bucket is
    empty. *)

val pp : Format.formatter -> t -> unit
