(** Adaptive admission control: an AIMD concurrency limit with a bounded,
    priority-classed entry queue and explicit load shedding.

    The limiter is the actuator of the overload-control closed loop
    (Thomasian's "Methods to Deal with High Data Contention", PAPERS.md):
    a {!Controller} watches live contention signals and moves the limit
    additively up / multiplicatively down; this module only enforces it.
    Everything is synchronous and deterministic — callers (the simulator,
    the transaction manager) own time and scheduling. *)

type priority =
  | High  (** long check-out sessions — the paper's design transactions *)
  | Normal  (** updates, including shared-library writes *)
  | Low  (** read-only work: first to queue, first to shed *)

val priority_to_string : priority -> string
val priority_of_string : string -> (priority, string) result

type config = {
  initial : int;  (** concurrency limit at start *)
  min_limit : int;  (** the limit never drops below this *)
  max_limit : int;  (** … nor rises above this *)
  queue_capacity : int;  (** bounded entry queue, all classes together *)
  increase : int;  (** additive raise per healthy control period *)
  decrease : float;  (** multiplicative factor on overload, e.g. 0.5 *)
}

val default_config : config
(** [initial 8, min 1, max 64, queue 16, increase 1, decrease 0.5]. *)

val config_to_string : config -> string
(** ["INIT:MIN:MAX:QUEUE"] (increase/decrease stay at their defaults). *)

val config_of_string : string -> (config, string) result
(** Accepts ["INIT"], ["INIT:MIN:MAX"] and ["INIT:MIN:MAX:QUEUE"]. *)

val validate : config -> string list
(** Human-readable violations (empty means sound). *)

type t

type decision =
  | Admitted  (** a slot was free: the transaction may begin *)
  | Enqueued of { evicted : int option }
      (** no slot; the request queues. When queueing displaced a
          lower-priority entry to stay within capacity, [evicted] names the
          shed transaction — the caller must fail it. *)
  | Rejected  (** queue full of equal-or-higher priority work: shed *)

val create : config -> t
val config : t -> config

val limit : t -> int
val inflight : t -> int
val queued : t -> int
val shed_count : t -> int
(** Cumulative transactions shed ({!Rejected} plus evictions). *)

val admitted_count : t -> int

val set_limit : t -> int -> int
(** Clamps into [[min_limit, max_limit]] and returns the new limit.
    Lowering below the current in-flight count is allowed — excess drains
    as transactions finish. *)

val request : t -> priority:priority -> txn:int -> decision
(** Entry gate for transaction [txn]. *)

val release : t -> unit
(** A previously admitted transaction left the system (commit, abort for
    good, crash). Frees one slot; call {!pop} afterwards to promote queued
    work. *)

val pop : t -> int option
(** Highest-priority, oldest queued transaction, if a slot is free — the
    slot is taken (in-flight incremented) before returning. *)

val pp : Format.formatter -> t -> unit
