type config = { ratio : float; burst : float }

let default_config = { ratio = 0.5; burst = 16.0 }

let config_of_string s =
  let parse_float label v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None ->
      Error (Printf.sprintf "retry budget %s: not a number: %S" label v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ ratio ] ->
    let* ratio = parse_float "ratio" ratio in
    Ok { default_config with ratio }
  | [ ratio; burst ] ->
    let* ratio = parse_float "ratio" ratio in
    let* burst = parse_float "burst" burst in
    Ok { ratio; burst }
  | _ ->
    Error (Printf.sprintf "retry budget spec %S: expected RATIO[:BURST]" s)

let validate c =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
  if c.ratio < 0.0 then err "retry ratio must be >= 0 (got %g)" c.ratio;
  if c.burst < 1.0 then err "retry burst must be >= 1 (got %g)" c.burst;
  List.rev !errs

type t = { cfg : config; mutable tokens : float; mutable denied : int }

let create cfg = { cfg; tokens = cfg.burst; denied = 0 }
let tokens t = t.tokens
let denied_count t = t.denied
let on_commit t = t.tokens <- min t.cfg.burst (t.tokens +. t.cfg.ratio)

let try_retry t =
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    true
  end
  else begin
    t.denied <- t.denied + 1;
    false
  end

let pp ppf t =
  Format.fprintf ppf "budget{tokens=%.1f denied=%d}" t.tokens t.denied
