(** Abort-storm circuit breaker.

    Watches the commit/abort outcome stream and, when the abort fraction of
    a sufficiently large sample crosses a threshold, opens: restarts are
    deferred rather than re-queued immediately, so a contention collapse
    cannot amplify itself through its own retries. After [open_for] ticks
    the breaker half-opens and lets a few probe restarts through; if they
    commit it closes again, if any aborts it re-opens. Deterministic —
    callers supply [now]. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type config = {
  failure_rate : float;  (** abort fraction that trips the breaker *)
  min_events : int;  (** sample size before the rate is trusted *)
  open_for : int;  (** ticks spent open before probing *)
  probes : int;  (** consecutive probe commits needed to close *)
}

val default_config : config
(** [failure_rate 0.8, min_events 16, open_for 200, probes 3]. *)

val config_of_string : string -> (config, string) result
(** ["RATE:OPEN"] or ["RATE:OPEN:PROBES"]. *)

val validate : config -> string list

type t

val create : config -> t
val state : t -> state
val config : t -> config

val record_commit : t -> now:int -> unit
val record_abort : t -> now:int -> unit
(** Feed the outcome stream. Aborts may trip Closed→Open and always knock
    Half_open back to Open. *)

val allow : t -> now:int -> bool
(** May a restart proceed right now? Closed: yes. Open: no, unless
    [open_for] has elapsed — in which case the breaker transitions to
    Half_open and admits the caller as a probe. Half_open: yes while probe
    slots remain. *)

val reopen_at : t -> int option
(** When Open, the tick at which {!allow} will start probing — lets a
    deterministic scheduler park a restart instead of polling. *)

val pp : Format.formatter -> t -> unit
