(** A declarative scenario language for soak runs and perf baselines.

    Scenarios live in committed [.scn] files — one directive per line,
    ['#'] comments — and describe everything a run needs: catalog scale,
    transaction mix, object popularity, the arrival process, long
    check-out sessions, a fault profile and inline SLO rules (the
    {!Obs.Slo} grammar). {!Sim.Scenario.of_dsl} compiles a parsed
    scenario onto any of the three locking techniques.

    {v
    # hotspot.scn — skewed contention on a mid-size catalog
    scenario hotspot
    catalog cells=8 objects=20 robots=4 effectors=32 refs=2
    jobs 100
    seed 42
    window 200
    techniques proposed whole-object tuple-level
    arrivals bursty burst=10 every=120 spread=1
    popularity zipf skew=1.2
    mix read=0.5 update=0.35 library=0.1 checkout=0.05
    checkout hold=1200 steps=1
    steps 2
    cost 100
    faults crash=0.05 stall=0.1 factor=4 hog=0.02
    slo p99_wait < 500
    slo abort_rate < 0.3
    v}

    Every directive is optional; {!default} supplies the rest. {!print}
    renders the canonical form, and [parse (print t) = t] — scenario
    files round-trip. *)

type catalog = {
  cells : int;
  objects : int;  (** c_objects per cell *)
  robots : int;  (** robots per cell *)
  effectors : int;  (** size of the shared effector library *)
  refs : int;  (** effector references per robot *)
}

type arrivals =
  | Uniform of { gap : int }  (** one arrival every [gap] ticks *)
  | Bursty of { burst : int; every : int; spread : int }
      (** [burst] arrivals [spread] ticks apart, a burst every [every] *)
  | Poisson of { mean : float }
      (** exponential inter-arrival gaps of the given mean, seeded *)

type popularity =
  | Flat  (** uniform choice of cells and effectors *)
  | Zipf of float
      (** Zipf-skewed: cell/effector of rank [r] drawn with weight
          [1/r^skew] (rank 1 = first key in order) *)

type mix = {
  read : float;  (** Q1-like: read a cell's c_objects *)
  update : float;  (** Q2-like: update one robot *)
  library : float;  (** Q3-like: update a shared effector *)
  checkout : float;
      (** long session: X on a whole cell object, held [checkout hold]
          ticks per step — the {!Txn.Checkout} usage pattern *)
}

type faults = { crash : float; stall : float; factor : int; hog : float }
(** Mirrors {!Sim.Fault.spec}; rates per job, [factor] is the stall
    slowdown. *)

type overload = {
  admission : Robust.Admission.config option;
      (** [admission initial=8 min=1 max=64 queue=16] — enables the AIMD
          admission gate *)
  restart : Lockmgr.Policy.restart;
      (** [limits restart=wdl:1] (or [running-priority]) — contention
          control applied the moment a request starts waiting *)
  controller : Robust.Controller.config;
      (** [limits every=50 p95=200 aborts=0.5 depth=24] — the closed-loop
          sensing period and overload thresholds *)
  retry : Robust.Budget.config option;
      (** [budget retry=0.5:16] — retry token bucket *)
  breaker : Robust.Breaker.config option;
      (** [budget breaker=0.8:200:3] — abort-storm circuit breaker *)
}

type technique = Proposed | Proposed_rule4 | Whole_object | Tuple_level

val technique_to_string : technique -> string
val technique_of_string : string -> (technique, string) result

type t = {
  name : string;
  catalog : catalog;
  jobs : int;
  seed : int;
  window : float;  (** sliding-window span behind the SLO evaluation *)
  techniques : technique list;
  arrivals : arrivals;
  popularity : popularity;
  mix : mix;
  checkout_hold : int;  (** access cost of each check-out step *)
  checkout_steps : int;
  steps : int;  (** ops per non-checkout job *)
  cost : int;  (** access cost of each non-checkout step *)
  faults : faults;
  overload : overload;
  certify : bool;
      (** run the serializability certifier over the run's events and
          treat any violation like an SLO breach (exit 3) *)
  slo : Obs.Slo.rule list;
}

val default : name:string -> t
(** 40 jobs, default catalog, all three techniques, uniform arrivals
    (gap 10), flat popularity, a 50/50 read/update mix, no faults, no
    SLO rules. *)

val no_faults : faults
val faults_active : faults -> bool

val no_overload : overload
(** No gate, no restart policy, default controller, no budget/breaker. *)

val overload_active : overload -> bool
(** True when any overload-control mechanism is enabled (a non-default
    controller alone does nothing — it needs a gate to actuate). *)

val parse : ?file:string -> ?name:string -> string -> (t, string) result
(** Parses a whole scenario text. The error aggregates every bad line as
    ["FILE:N: ..."] (or ["line N: ..."] without [?file]) diagnostics,
    always naming the offending token. [?name] is the default scenario
    name when the text has no [scenario] directive. *)

val load : string -> (t, string) result
(** {!parse} on a file's contents; the default name is the file's
    basename without its [.scn] extension. *)

val load_path : string -> (t list, string) result
(** [load] on one [.scn] file, or on every [*.scn] directly inside a
    directory (sorted by name, subdirectories ignored). Errors when a
    directory holds no scenario files. *)

val print : t -> string
(** The canonical form: every directive on its own line, defaults
    included, SLO rules last. [parse (print t)] succeeds and yields
    [t]. *)

val database : t -> Nf2.Database.t
(** The scenario's manufacturing catalog, generated deterministically
    from [catalog] and [seed] (see {!Generator.manufacturing}). *)
