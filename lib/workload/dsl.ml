(* The scenario language behind `colock soak` and the perf baseline.

   One directive per line ('#' comments, blank lines skipped), every
   directive optional, canonical printing — so committed .scn files
   round-trip through parse/print and diagnostics can always point at
   FILE:LINE and the offending token. *)

type catalog = {
  cells : int;
  objects : int;
  robots : int;
  effectors : int;
  refs : int;
}

type arrivals =
  | Uniform of { gap : int }
  | Bursty of { burst : int; every : int; spread : int }
  | Poisson of { mean : float }

type popularity = Flat | Zipf of float

type mix = {
  read : float;
  update : float;
  library : float;
  checkout : float;
}

type faults = { crash : float; stall : float; factor : int; hog : float }

type overload = {
  admission : Robust.Admission.config option;
  restart : Lockmgr.Policy.restart;
  controller : Robust.Controller.config;
  retry : Robust.Budget.config option;
  breaker : Robust.Breaker.config option;
}

type technique = Proposed | Proposed_rule4 | Whole_object | Tuple_level

let technique_to_string = function
  | Proposed -> "proposed"
  | Proposed_rule4 -> "rule4"
  | Whole_object -> "whole-object"
  | Tuple_level -> "tuple-level"

let technique_of_string = function
  | "proposed" -> Ok Proposed
  | "rule4" -> Ok Proposed_rule4
  | "whole-object" -> Ok Whole_object
  | "tuple-level" -> Ok Tuple_level
  | other ->
    Error
      (Printf.sprintf
         "unknown technique %S (expected proposed, rule4, whole-object or \
          tuple-level)"
         other)

type t = {
  name : string;
  catalog : catalog;
  jobs : int;
  seed : int;
  window : float;
  techniques : technique list;
  arrivals : arrivals;
  popularity : popularity;
  mix : mix;
  checkout_hold : int;
  checkout_steps : int;
  steps : int;
  cost : int;
  faults : faults;
  overload : overload;
  certify : bool;
  slo : Obs.Slo.rule list;
}

let default_catalog =
  { cells = 4; objects = 20; robots = 4; effectors = 16; refs = 2 }

let no_faults = { crash = 0.0; stall = 0.0; factor = 8; hog = 0.0 }
let faults_active faults = faults.crash +. faults.stall +. faults.hog > 0.0

let no_overload =
  { admission = None; restart = Lockmgr.Policy.No_restart;
    controller = Robust.Controller.default_config; retry = None;
    breaker = None }

let overload_active overload =
  overload.admission <> None
  || overload.restart <> Lockmgr.Policy.No_restart
  || overload.retry <> None || overload.breaker <> None

let default ~name =
  { name; catalog = default_catalog; jobs = 40; seed = 17; window = 200.0;
    techniques = [ Proposed; Whole_object; Tuple_level ];
    arrivals = Uniform { gap = 10 }; popularity = Flat;
    mix = { read = 0.5; update = 0.5; library = 0.0; checkout = 0.0 };
    checkout_hold = 500; checkout_steps = 1; steps = 1; cost = 100;
    faults = no_faults; overload = no_overload; certify = false; slo = [] }

(* ------------------------------------------------------------- printing *)

let print scenario =
  let buffer = Buffer.create 512 in
  let add format = Printf.ksprintf (Buffer.add_string buffer) format in
  add "scenario %s\n" scenario.name;
  add "catalog cells=%d objects=%d robots=%d effectors=%d refs=%d\n"
    scenario.catalog.cells scenario.catalog.objects scenario.catalog.robots
    scenario.catalog.effectors scenario.catalog.refs;
  add "jobs %d\n" scenario.jobs;
  add "seed %d\n" scenario.seed;
  add "window %g\n" scenario.window;
  add "techniques %s\n"
    (String.concat " " (List.map technique_to_string scenario.techniques));
  (match scenario.arrivals with
   | Uniform { gap } -> add "arrivals uniform gap=%d\n" gap
   | Bursty { burst; every; spread } ->
     add "arrivals bursty burst=%d every=%d spread=%d\n" burst every spread
   | Poisson { mean } -> add "arrivals poisson mean=%g\n" mean);
  (match scenario.popularity with
   | Flat -> add "popularity uniform\n"
   | Zipf skew -> add "popularity zipf skew=%g\n" skew);
  add "mix read=%g update=%g library=%g checkout=%g\n" scenario.mix.read
    scenario.mix.update scenario.mix.library scenario.mix.checkout;
  add "checkout hold=%d steps=%d\n" scenario.checkout_hold
    scenario.checkout_steps;
  add "steps %d\n" scenario.steps;
  add "cost %d\n" scenario.cost;
  if faults_active scenario.faults then
    add "faults crash=%g stall=%g factor=%d hog=%g\n" scenario.faults.crash
      scenario.faults.stall scenario.faults.factor scenario.faults.hog;
  (match scenario.overload.admission with
   | None -> ()
   | Some gate ->
     add "admission initial=%d min=%d max=%d queue=%d\n"
       gate.Robust.Admission.initial gate.Robust.Admission.min_limit
       gate.Robust.Admission.max_limit gate.Robust.Admission.queue_capacity);
  if
    scenario.overload.restart <> Lockmgr.Policy.No_restart
    || scenario.overload.controller <> Robust.Controller.default_config
  then begin
    let controller = scenario.overload.controller in
    add "limits restart=%s every=%d p95=%g aborts=%g depth=%d\n"
      (Lockmgr.Policy.restart_to_string scenario.overload.restart)
      controller.Robust.Controller.every
      controller.Robust.Controller.thresholds.Robust.Controller.p95_wait
      controller.Robust.Controller.thresholds.Robust.Controller.abort_rate
      controller.Robust.Controller.thresholds.Robust.Controller.queue_depth
  end;
  (match scenario.overload.retry, scenario.overload.breaker with
   | None, None -> ()
   | retry, breaker ->
     add "budget";
     (match retry with
      | Some bucket ->
        add " retry=%g:%g" bucket.Robust.Budget.ratio
          bucket.Robust.Budget.burst
      | None -> ());
     (match breaker with
      | Some breaker ->
        add " breaker=%g:%d:%d" breaker.Robust.Breaker.failure_rate
          breaker.Robust.Breaker.open_for breaker.Robust.Breaker.probes
      | None -> ());
     add "\n");
  if scenario.certify then add "certify on\n";
  List.iter (fun rule -> add "slo %s\n" rule.Obs.Slo.text) scenario.slo;
  Buffer.contents buffer

(* -------------------------------------------------------------- parsing *)

let ( let* ) = Result.bind

(* ["k=v"; ...] -> [(k, v); ...], complaining about the offending token. *)
let fields ~directive tokens =
  List.fold_left
    (fun accu token ->
      let* pairs = accu in
      match String.index_opt token '=' with
      | Some eq when eq > 0 && eq < String.length token - 1 ->
        let key = String.sub token 0 eq in
        let value = String.sub token (eq + 1) (String.length token - eq - 1) in
        Ok ((key, value) :: pairs)
      | _ ->
        Error
          (Printf.sprintf "bad %s field %S (expected KEY=VALUE)" directive
             token))
    (Ok []) tokens
  |> Result.map List.rev

let int_value ~directive (key, value) =
  match int_of_string_opt value with
  | Some n -> Ok n
  | None ->
    Error
      (Printf.sprintf "bad %s field %s=%S (expected an integer)" directive key
         value)

let float_value ~directive (key, value) =
  match float_of_string_opt value with
  | Some x -> Ok x
  | None ->
    Error
      (Printf.sprintf "bad %s field %s=%S (expected a number)" directive key
         value)

let apply_fields ~directive ~known tokens init =
  let* pairs = fields ~directive tokens in
  List.fold_left
    (fun accu (key, value) ->
      let* state = accu in
      match List.assoc_opt key known with
      | Some set -> set state (key, value)
      | None ->
        Error
          (Printf.sprintf "unknown %s field %S (expected %s)" directive key
             (String.concat "/" (List.map fst known))))
    (Ok init) pairs

let parse_catalog tokens catalog =
  let int set = fun state pair ->
    let* n = int_value ~directive:"catalog" pair in
    Ok (set state n)
  in
  apply_fields ~directive:"catalog"
    ~known:
      [ ("cells", int (fun c n -> { c with cells = n }));
        ("objects", int (fun c n -> { c with objects = n }));
        ("robots", int (fun c n -> { c with robots = n }));
        ("effectors", int (fun c n -> { c with effectors = n }));
        ("refs", int (fun c n -> { c with refs = n })) ]
    tokens catalog

let parse_arrivals tokens =
  match tokens with
  | "uniform" :: rest ->
    let int set = fun state pair ->
      let* n = int_value ~directive:"arrivals" pair in
      Ok (set state n)
    in
    let* gap =
      apply_fields ~directive:"arrivals"
        ~known:[ ("gap", int (fun _ n -> n)) ]
        rest 10
    in
    Ok (Uniform { gap })
  | "bursty" :: rest ->
    let* burst, every, spread =
      let int set = fun state pair ->
        let* n = int_value ~directive:"arrivals" pair in
        Ok (set state n)
      in
      apply_fields ~directive:"arrivals"
        ~known:
          [ ("burst", int (fun (_, e, s) n -> (n, e, s)));
            ("every", int (fun (b, _, s) n -> (b, n, s)));
            ("spread", int (fun (b, e, _) n -> (b, e, n))) ]
        rest (10, 100, 1)
    in
    Ok (Bursty { burst; every; spread })
  | "poisson" :: rest ->
    let float set = fun state pair ->
      let* x = float_value ~directive:"arrivals" pair in
      Ok (set state x)
    in
    let* mean =
      apply_fields ~directive:"arrivals"
        ~known:[ ("mean", float (fun _ x -> x)) ]
        rest 10.0
    in
    Ok (Poisson { mean })
  | process :: _ ->
    Error
      (Printf.sprintf
         "unknown arrival process %S (expected uniform, bursty or poisson)"
         process)
  | [] -> Error "arrivals needs a process (uniform, bursty or poisson)"

let parse_popularity tokens =
  match tokens with
  | [ "uniform" ] -> Ok Flat
  | "zipf" :: rest ->
    let float set = fun state pair ->
      let* x = float_value ~directive:"popularity" pair in
      Ok (set state x)
    in
    let* skew =
      apply_fields ~directive:"popularity"
        ~known:[ ("skew", float (fun _ x -> x)) ]
        rest 1.0
    in
    Ok (Zipf skew)
  | shape :: _ ->
    Error
      (Printf.sprintf "unknown popularity %S (expected uniform or zipf)" shape)
  | [] -> Error "popularity needs a shape (uniform or zipf)"

let parse_mix tokens =
  let float set = fun state pair ->
    let* x = float_value ~directive:"mix" pair in
    Ok (set state x)
  in
  apply_fields ~directive:"mix"
    ~known:
      [ ("read", float (fun m x -> { m with read = x }));
        ("update", float (fun m x -> { m with update = x }));
        ("library", float (fun m x -> { m with library = x }));
        ("checkout", float (fun m x -> { m with checkout = x })) ]
    tokens
    { read = 0.0; update = 0.0; library = 0.0; checkout = 0.0 }

let parse_faults tokens faults =
  let float set = fun state pair ->
    let* x = float_value ~directive:"faults" pair in
    Ok (set state x)
  in
  let int set = fun state pair ->
    let* n = int_value ~directive:"faults" pair in
    Ok (set state n)
  in
  apply_fields ~directive:"faults"
    ~known:
      [ ("crash", float (fun f x -> { f with crash = x }));
        ("stall", float (fun f x -> { f with stall = x }));
        ("factor", int (fun f n -> { f with factor = n }));
        ("hog", float (fun f x -> { f with hog = x })) ]
    tokens faults

let parse_techniques tokens =
  match tokens with
  | [] -> Error "techniques needs at least one technique"
  | tokens ->
    List.fold_left
      (fun accu token ->
        let* chosen = accu in
        let* technique = technique_of_string token in
        Ok (technique :: chosen))
      (Ok []) tokens
    |> Result.map List.rev

let single_int ~directive tokens =
  match tokens with
  | [ value ] -> int_value ~directive (directive, value)
  | _ -> Error (Printf.sprintf "%s needs exactly one integer" directive)

let single_float ~directive tokens =
  match tokens with
  | [ value ] -> float_value ~directive (directive, value)
  | _ -> Error (Printf.sprintf "%s needs exactly one number" directive)

let parse_line scenario ?file ~line tokens raw =
  ignore raw;
  match tokens with
  | [] -> Ok scenario
  | "scenario" :: rest when rest <> [] ->
    Ok { scenario with name = String.concat " " rest }
  | [ "scenario" ] -> Error "scenario needs a name"
  | "catalog" :: rest ->
    let* catalog = parse_catalog rest scenario.catalog in
    Ok { scenario with catalog }
  | "jobs" :: rest ->
    let* jobs = single_int ~directive:"jobs" rest in
    Ok { scenario with jobs }
  | "seed" :: rest ->
    let* seed = single_int ~directive:"seed" rest in
    Ok { scenario with seed }
  | "window" :: rest ->
    let* window = single_float ~directive:"window" rest in
    Ok { scenario with window }
  | "techniques" :: rest ->
    let* techniques = parse_techniques rest in
    Ok { scenario with techniques }
  | "arrivals" :: rest ->
    let* arrivals = parse_arrivals rest in
    Ok { scenario with arrivals }
  | "popularity" :: rest ->
    let* popularity = parse_popularity rest in
    Ok { scenario with popularity }
  | "mix" :: rest ->
    let* mix = parse_mix rest in
    Ok { scenario with mix }
  | "checkout" :: rest ->
    let int set = fun state pair ->
      let* n = int_value ~directive:"checkout" pair in
      Ok (set state n)
    in
    let* hold, steps =
      apply_fields ~directive:"checkout"
        ~known:
          [ ("hold", int (fun (_, s) n -> (n, s)));
            ("steps", int (fun (h, _) n -> (h, n))) ]
        rest
        (scenario.checkout_hold, scenario.checkout_steps)
    in
    Ok { scenario with checkout_hold = hold; checkout_steps = steps }
  | "steps" :: rest ->
    let* steps = single_int ~directive:"steps" rest in
    Ok { scenario with steps }
  | "cost" :: rest ->
    let* cost = single_int ~directive:"cost" rest in
    Ok { scenario with cost }
  | "faults" :: rest ->
    let* faults = parse_faults rest scenario.faults in
    Ok { scenario with faults }
  | "admission" :: rest ->
    let int set = fun state pair ->
      let* n = int_value ~directive:"admission" pair in
      Ok (set state n)
    in
    let* gate =
      apply_fields ~directive:"admission"
        ~known:
          [ ("initial",
             int (fun a n -> { a with Robust.Admission.initial = n }));
            ("min", int (fun a n -> { a with Robust.Admission.min_limit = n }));
            ("max", int (fun a n -> { a with Robust.Admission.max_limit = n }));
            ("queue",
             int (fun a n -> { a with Robust.Admission.queue_capacity = n })) ]
        rest Robust.Admission.default_config
    in
    Ok { scenario with overload = { scenario.overload with admission = Some gate } }
  | "limits" :: rest ->
    let with_controller set = fun (o : overload) pair ->
      let* controller = set o.controller pair in
      Ok { o with controller }
    in
    let int set = fun controller pair ->
      let* n = int_value ~directive:"limits" pair in
      Ok (set controller n)
    in
    let float set = fun controller pair ->
      let* x = float_value ~directive:"limits" pair in
      Ok (set controller x)
    in
    let* overload =
      apply_fields ~directive:"limits"
        ~known:
          [ ("restart",
             fun (o : overload) (_key, value) ->
               let* restart = Lockmgr.Policy.restart_of_string value in
               Ok { o with restart });
            ("every",
             with_controller
               (int (fun c n -> { c with Robust.Controller.every = n })));
            ("p95",
             with_controller
               (float (fun c x ->
                    { c with
                      Robust.Controller.thresholds =
                        { c.Robust.Controller.thresholds with
                          Robust.Controller.p95_wait = x } })));
            ("aborts",
             with_controller
               (float (fun c x ->
                    { c with
                      Robust.Controller.thresholds =
                        { c.Robust.Controller.thresholds with
                          Robust.Controller.abort_rate = x } })));
            ("depth",
             with_controller
               (int (fun c n ->
                    { c with
                      Robust.Controller.thresholds =
                        { c.Robust.Controller.thresholds with
                          Robust.Controller.queue_depth = n } }))) ]
        rest scenario.overload
    in
    Ok { scenario with overload }
  | "budget" :: rest ->
    let* overload =
      apply_fields ~directive:"budget"
        ~known:
          [ ("retry",
             fun (o : overload) (_key, value) ->
               let* retry = Robust.Budget.config_of_string value in
               Ok { o with retry = Some retry });
            ("breaker",
             fun (o : overload) (_key, value) ->
               let* breaker = Robust.Breaker.config_of_string value in
               Ok { o with breaker = Some breaker }) ]
        rest scenario.overload
    in
    Ok { scenario with overload }
  | "certify" :: rest -> (
    match rest with
    | [ "on" ] -> Ok { scenario with certify = true }
    | [ "off" ] -> Ok { scenario with certify = false }
    | _ -> Error "certify takes exactly one of: on, off")
  | "slo" :: rest ->
    let* rule = Obs.Slo.parse_rule ?file ~line (String.concat " " rest) in
    Ok { scenario with slo = scenario.slo @ [ rule ] }
  | directive :: _ ->
    Error
      (Printf.sprintf
         "unknown directive %S (expected scenario, catalog, jobs, seed, \
          window, techniques, arrivals, popularity, mix, checkout, steps, \
          cost, faults, admission, limits, budget, certify or slo)"
         directive)

let validate scenario =
  let bad format = Printf.ksprintf (fun message -> Some message) format in
  let fraction label x =
    if x < 0.0 || x > 1.0 then
      bad "%s must lie in [0,1] (got %g)" label x
    else None
  in
  let positive label n = if n < 1 then bad "%s must be >= 1 (got %d)" label n else None in
  let checks =
    [ positive "catalog cells" scenario.catalog.cells;
      positive "catalog objects" scenario.catalog.objects;
      positive "catalog robots" scenario.catalog.robots;
      positive "catalog effectors" scenario.catalog.effectors;
      (if scenario.catalog.refs < 0 then bad "catalog refs must be >= 0" else None);
      positive "jobs" scenario.jobs;
      (if scenario.window <= 0.0 then
         bad "window must be positive (got %g)" scenario.window
       else None);
      (match scenario.arrivals with
       | Uniform { gap } ->
         if gap < 0 then bad "arrivals gap must be >= 0 (got %d)" gap else None
       | Bursty { burst; every; spread } ->
         if burst < 1 then bad "arrivals burst must be >= 1 (got %d)" burst
         else if every < 1 then bad "arrivals every must be >= 1 (got %d)" every
         else if spread < 0 then bad "arrivals spread must be >= 0 (got %d)" spread
         else None
       | Poisson { mean } ->
         if mean <= 0.0 then bad "arrivals mean must be positive (got %g)" mean
         else None);
      (match scenario.popularity with
       | Flat -> None
       | Zipf skew ->
         if skew <= 0.0 then
           bad "popularity skew must be positive (got %g)" skew
         else None);
      fraction "mix read" scenario.mix.read;
      fraction "mix update" scenario.mix.update;
      fraction "mix library" scenario.mix.library;
      fraction "mix checkout" scenario.mix.checkout;
      (let sum =
         scenario.mix.read +. scenario.mix.update +. scenario.mix.library
         +. scenario.mix.checkout
       in
       if Float.abs (sum -. 1.0) > 1e-6 then
         bad "mix fractions must sum to 1 (got %g)" sum
       else None);
      (if scenario.checkout_hold < 0 then bad "checkout hold must be >= 0" else None);
      positive "checkout steps" scenario.checkout_steps;
      positive "steps" scenario.steps;
      (if scenario.cost < 0 then bad "cost must be >= 0" else None);
      fraction "faults crash" scenario.faults.crash;
      fraction "faults stall" scenario.faults.stall;
      fraction "faults hog" scenario.faults.hog;
      (let sum =
         scenario.faults.crash +. scenario.faults.stall +. scenario.faults.hog
       in
       if sum > 1.0 +. 1e-9 then
         bad "faults rates must sum to at most 1 (got %g)" sum
       else None);
      positive "faults factor" scenario.faults.factor ]
  in
  let overload_problems =
    (match scenario.overload.admission with
     | Some gate ->
       List.map (( ^ ) "admission ") (Robust.Admission.validate gate)
     | None -> [])
    @ List.map (( ^ ) "limits ")
        (Robust.Controller.validate scenario.overload.controller)
    @ (match scenario.overload.retry with
       | Some bucket ->
         List.map (( ^ ) "budget retry ") (Robust.Budget.validate bucket)
       | None -> [])
    @
    match scenario.overload.breaker with
    | Some breaker ->
      List.map (( ^ ) "budget breaker ") (Robust.Breaker.validate breaker)
    | None -> []
  in
  List.filter_map Fun.id checks @ overload_problems

let position ?file line =
  match file with
  | Some file -> Printf.sprintf "%s:%d" file line
  | None -> Printf.sprintf "line %d" line

let parse ?file ?(name = "scenario") text =
  let lines = String.split_on_char '\n' text in
  let scenario, errors =
    List.fold_left
      (fun (scenario, errors) (line, raw) ->
        let stripped =
          match String.index_opt raw '#' with
          | None -> raw
          | Some hash -> String.sub raw 0 hash
        in
        let tokens =
          String.split_on_char ' ' stripped
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun token -> token <> "")
        in
        match parse_line scenario ?file ~line tokens stripped with
        | Ok scenario -> (scenario, errors)
        | Error message ->
          (* SLO diagnostics already carry their position *)
          let message =
            if String.length message > 0
               && (String.starts_with ~prefix:(position ?file line) message)
            then message
            else Printf.sprintf "%s: %s" (position ?file line) message
          in
          (scenario, message :: errors))
      (default ~name, [])
      (List.mapi (fun index raw -> (index + 1, raw)) lines)
  in
  match List.rev errors with
  | [] -> (
    match validate scenario with
    | [] -> Ok scenario
    | problems ->
      let where = match file with Some file -> file ^ ": " | None -> "" in
      Error
        (String.concat "\n"
           (List.map (fun problem -> where ^ problem) problems)))
  | errors -> Error (String.concat "\n" errors)

let basename_scenario path =
  let base = Filename.basename path in
  match Filename.chop_suffix_opt ~suffix:".scn" base with
  | Some name -> name
  | None -> base

let load path =
  match open_in path with
  | exception Sys_error message -> Error message
  | channel ->
    let length = in_channel_length channel in
    let text = really_input_string channel length in
    close_in_noerr channel;
    parse ~file:path ~name:(basename_scenario path) text

let load_path path =
  match Sys.is_directory path with
  | exception Sys_error message -> Error message
  | false -> Result.map (fun scenario -> [ scenario ]) (load path)
  | true ->
    let files =
      Sys.readdir path |> Array.to_list
      |> List.filter (fun file -> Filename.check_suffix file ".scn")
      |> List.sort String.compare
      |> List.map (Filename.concat path)
    in
    if files = [] then
      Error (Printf.sprintf "%s: no .scn scenario files" path)
    else
      List.fold_left
        (fun accu file ->
          let* scenarios = accu in
          let* scenario = load file in
          Ok (scenario :: scenarios))
        (Ok []) files
      |> Result.map List.rev

let database scenario =
  Generator.manufacturing
    { Generator.cells = scenario.catalog.cells;
      objects_per_cell = scenario.catalog.objects;
      robots_per_cell = scenario.catalog.robots;
      effectors = scenario.catalog.effectors;
      effectors_per_robot = scenario.catalog.refs;
      seed = scenario.seed }
