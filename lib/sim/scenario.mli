(** Scenario construction: compiles technique-independent operation scripts
    into {!Runner} jobs for one concrete technique.

    Operations name instance nodes (what the transaction touches); each
    technique turns them into its own lock plan:

    - [Proposed]: the paper's protocol (plan through
      {!Colock.Protocol.plan}, so rule 4/4′ and the propagations apply);
    - [Whole_object]: XSQL-style — the containing complex object, plus the
      check-out closure over referenced objects;
    - [Tuple_level]: every leaf tuple under the touched node, references
      chased. *)

type technique =
  | Proposed of Colock.Protocol.t
  | Whole_object
  | Tuple_level

val technique_name : technique -> string

type op =
  | Node_read of Colock.Node_id.t
  | Node_update of Colock.Node_id.t

type job_spec = {
  arrival : int;
  ops : op list;  (** one step per op *)
  access_cost : int;  (** per step *)
  priority : Robust.Admission.priority;
      (** admission class under overload control — checkout sessions [High],
          updates [Normal], read-only jobs [Low] *)
}

val compile :
  Colock.Instance_graph.t -> technique -> job_spec list -> Runner.job list

(** {2 Ready-made workload mixes on the manufacturing database} *)

type mix = {
  jobs : int;
  read_fraction : float;  (** Q1-like reads vs Q2-like robot updates *)
  library_update_fraction : float;
      (** fraction of jobs that instead update a random effector *)
  arrival_gap : int;
  access_cost : int;
  steps_per_job : int;  (** >1 simulates longer transactions *)
  seed : int;
}

val default_mix : mix
(** 40 jobs, 50% reads, no library updates, gap 10, cost 100, 1 step. *)

val manufacturing_mix :
  Nf2.Database.t -> Colock.Instance_graph.t -> mix -> job_spec list
(** Random Q1-like (read the c_objects of a cell) / Q2-like (update one robot
    of a cell) / library-update operations over the generated cells,
    deterministic in [mix.seed]. *)

(** {2 Declarative scenarios}

    The bridge from a parsed {!Workload.Dsl} scenario onto the simulator:
    jobs, faults and techniques all derive from the one scenario record, so
    [colock soak] and the benchmark baseline pipeline share a single
    compilation path. *)

val of_dsl :
  Nf2.Database.t -> Colock.Instance_graph.t -> Workload.Dsl.t -> job_spec list
(** Compiles the scenario's job population, deterministic in the scenario
    seed: arrivals per the [arrivals] directive (uniform, bursty or
    Poisson), object choice per [popularity] (flat or Zipf-ranked over the
    cell/effector key order), one category per job drawn against the [mix]
    thresholds. Read jobs touch a cell's [c_objects], update jobs one
    robot, library jobs one effector object, and checkout jobs hold X on a
    whole cell object for [checkout_hold] per step. *)

val config_of_dsl : Workload.Dsl.t -> Runner.config
(** {!Runner.default_config} with the scenario's overload directives
    applied: the [limits restart=…] policy, and — when any [admission],
    [limits] or [budget] mechanism is enabled — a {!Runner.overload}
    record wiring the gate, controller, retry budget and breaker. *)

val faults_of_dsl : Workload.Dsl.t -> Fault.spec
(** The scenario's [faults] directive as a runner fault spec; the fault
    seed is the scenario seed. *)

val technique_of_dsl :
  Colock.Instance_graph.t ->
  Lockmgr.Lock_table.t ->
  Workload.Dsl.technique ->
  technique
(** Instantiates a DSL technique name against a concrete graph and lock
    table ([Proposed] uses rule 4′, [Proposed_rule4] rule 4). *)
