module Mode = Lockmgr.Lock_mode
module Graph = Colock.Instance_graph
module Node_id = Colock.Node_id
module Technique = Baselines.Technique

type technique =
  | Proposed of Colock.Protocol.t
  | Whole_object
  | Tuple_level

let technique_name = function
  | Proposed protocol -> (
    match Colock.Protocol.rule protocol with
    | Colock.Protocol.Rule_4 -> "proposed (rule 4)"
    | Colock.Protocol.Rule_4_prime -> "proposed (rule 4')")
  | Whole_object -> "whole-object (XSQL)"
  | Tuple_level -> "tuple-level"

type op = Node_read of Node_id.t | Node_update of Node_id.t

type job_spec = {
  arrival : int;
  ops : op list;
  access_cost : int;
  priority : Robust.Admission.priority;
}

let op_node_mode = function
  | Node_read node -> (node, Mode.S)
  | Node_update node -> (node, Mode.X)

(* The complex object containing an instance node (self included). *)
let containing_object graph node_id =
  let rec climb node_id =
    let node = Graph.node_exn graph node_id in
    match node.Graph.oid with
    | Some oid -> Some oid
    | None -> (
      match node.Graph.parent with
      | Some parent -> climb parent
      | None -> None)
  in
  climb node_id

let compile_op graph technique op txn =
  let node, mode = op_node_mode op in
  match technique with
  | Proposed protocol ->
    List.map
      (fun { Colock.Protocol.node; mode; _ } ->
        { Technique.node; mode })
      (Colock.Protocol.plan protocol ~txn node mode)
  | Whole_object -> (
    match containing_object graph node with
    | Some oid -> Baselines.Whole_object.plan graph ~oid mode
    | None -> Technique.with_ancestors graph node mode)
  | Tuple_level -> Baselines.Tuple_level.plan_node graph node mode

let compile graph technique specs =
  List.map
    (fun spec ->
      { Runner.arrival = spec.arrival;
        priority = spec.priority;
        steps =
          List.map
            (fun op ->
              { Runner.plan = compile_op graph technique op;
                access_cost = spec.access_cost })
            spec.ops })
    specs

type mix = {
  jobs : int;
  read_fraction : float;
  library_update_fraction : float;
  arrival_gap : int;
  access_cost : int;
  steps_per_job : int;
  seed : int;
}

let default_mix =
  { jobs = 40; read_fraction = 0.5; library_update_fraction = 0.0;
    arrival_gap = 10; access_cost = 100; steps_per_job = 1; seed = 17 }

let manufacturing_mix db graph mix =
  let state = Random.State.make [| mix.seed |] in
  let cells_store =
    match Nf2.Database.relation db "cells" with
    | Some store -> store
    | None -> invalid_arg "Scenario: no cells relation"
  in
  let cell_keys = Array.of_list (Nf2.Relation.keys cells_store) in
  let effector_keys =
    match Nf2.Database.relation db "effectors" with
    | Some store -> Array.of_list (Nf2.Relation.keys store)
    | None -> [||]
  in
  let random_cell () =
    cell_keys.(Random.State.int state (Array.length cell_keys))
  in
  let cell_node key =
    match
      Graph.object_node graph (Nf2.Oid.make ~relation:"cells" ~key)
    with
    | Some node -> node
    | None -> invalid_arg "Scenario: unknown cell"
  in
  let random_robot_node () =
    let holu = Node_id.child (cell_node (random_cell ())) "robots" in
    let members = (Graph.node_exn graph holu).Graph.children in
    List.nth members (Random.State.int state (List.length members))
  in
  let random_op () =
    let dice = Random.State.float state 1.0 in
    if dice < mix.library_update_fraction && Array.length effector_keys > 0
    then
      let key =
        effector_keys.(Random.State.int state (Array.length effector_keys))
      in
      match
        Graph.object_node graph (Nf2.Oid.make ~relation:"effectors" ~key)
      with
      | Some node -> Node_update node
      | None -> invalid_arg "Scenario: unknown effector"
    else if dice < mix.library_update_fraction +. ((1.0 -. mix.library_update_fraction) *. mix.read_fraction)
    then Node_read (Node_id.child (cell_node (random_cell ())) "c_objects")
    else Node_update (random_robot_node ())
  in
  List.init mix.jobs (fun index ->
      let ops = List.init mix.steps_per_job (fun _step -> random_op ()) in
      (* purely-reading jobs are the first to queue under admission control *)
      let priority =
        if List.for_all (function Node_read _ -> true | Node_update _ -> false) ops
        then Robust.Admission.Low
        else Robust.Admission.Normal
      in
      { arrival = index * mix.arrival_gap; ops;
        access_cost = mix.access_cost; priority })

(* ------------------------------------------------- declarative scenarios *)

let technique_of_dsl graph table = function
  | Workload.Dsl.Proposed ->
    Proposed (Colock.Protocol.create graph table)
  | Workload.Dsl.Proposed_rule4 ->
    Proposed (Colock.Protocol.create ~rule:Colock.Protocol.Rule_4 graph table)
  | Workload.Dsl.Whole_object -> Whole_object
  | Workload.Dsl.Tuple_level -> Tuple_level

let config_of_dsl (dsl : Workload.Dsl.t) =
  let overload =
    if Workload.Dsl.overload_active dsl.overload then
      Some
        { Runner.admission = dsl.overload.admission;
          controller = dsl.overload.controller;
          budget = dsl.overload.retry;
          breaker = dsl.overload.breaker }
    else None
  in
  { Runner.default_config with restart = dsl.overload.restart; overload }

let faults_of_dsl (dsl : Workload.Dsl.t) =
  { Fault.crash = dsl.faults.crash; stall = dsl.faults.stall;
    stall_factor = dsl.faults.factor; hog = dsl.faults.hog;
    fault_seed = dsl.seed }

(* Zipf sampling over ranks 1..n: cumulative weights 1/r^skew, one binary
   search per draw. Rank 0 of the key array is the most popular. *)
let zipf_cumulative ~skew n =
  let cumulative = Array.make n 0.0 in
  let total = ref 0.0 in
  for rank = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (rank + 1) ** skew));
    cumulative.(rank) <- !total
  done;
  cumulative

let pick_rank state = function
  | None -> fun n -> Random.State.int state n
  | Some cumulative ->
    fun n ->
      let total = cumulative.(n - 1) in
      let target = Random.State.float state total in
      let rec search low high =
        if low >= high then low
        else
          let middle = (low + high) / 2 in
          if cumulative.(middle) < target then search (middle + 1) high
          else search low middle
      in
      search 0 (n - 1)

let arrival_times state (dsl : Workload.Dsl.t) =
  match dsl.arrivals with
  | Workload.Dsl.Uniform { gap } ->
    Array.init dsl.jobs (fun index -> index * gap)
  | Workload.Dsl.Bursty { burst; every; spread } ->
    Array.init dsl.jobs (fun index ->
        ((index / burst) * every) + (index mod burst * spread))
  | Workload.Dsl.Poisson { mean } ->
    let clock = ref 0.0 in
    Array.init dsl.jobs (fun _index ->
        let draw = Random.State.float state 1.0 in
        clock := !clock +. (-.mean *. log (1.0 -. draw));
        int_of_float !clock)

let of_dsl db graph (dsl : Workload.Dsl.t) =
  let state = Random.State.make [| dsl.seed |] in
  let keys_of relation =
    match Nf2.Database.relation db relation with
    | Some store -> Array.of_list (Nf2.Relation.keys store)
    | None -> invalid_arg (Printf.sprintf "Scenario: no %s relation" relation)
  in
  let cell_keys = keys_of "cells" in
  let effector_keys = keys_of "effectors" in
  let skew =
    match dsl.popularity with
    | Workload.Dsl.Flat -> None
    | Workload.Dsl.Zipf skew -> Some skew
  in
  let cell_pick =
    pick_rank state
      (Option.map (fun skew -> zipf_cumulative ~skew (Array.length cell_keys)) skew)
  in
  let effector_pick =
    pick_rank state
      (Option.map
         (fun skew -> zipf_cumulative ~skew (Array.length effector_keys))
         skew)
  in
  let cell_node key =
    match Graph.object_node graph (Nf2.Oid.make ~relation:"cells" ~key) with
    | Some node -> node
    | None -> invalid_arg "Scenario: unknown cell"
  in
  let random_cell () = cell_keys.(cell_pick (Array.length cell_keys)) in
  let read_op () =
    Node_read (Node_id.child (cell_node (random_cell ())) "c_objects")
  in
  let update_op () =
    let holu = Node_id.child (cell_node (random_cell ())) "robots" in
    let members = (Graph.node_exn graph holu).Graph.children in
    Node_update (List.nth members (Random.State.int state (List.length members)))
  in
  let library_op () =
    let key = effector_keys.(effector_pick (Array.length effector_keys)) in
    match
      Graph.object_node graph (Nf2.Oid.make ~relation:"effectors" ~key)
    with
    | Some node -> Node_update node
    | None -> invalid_arg "Scenario: unknown effector"
  in
  let arrivals = arrival_times state dsl in
  List.init dsl.jobs (fun index ->
      let arrival = arrivals.(index) in
      let dice = Random.State.float state 1.0 in
      let mix = dsl.mix in
      if dice < mix.Workload.Dsl.read then
        { arrival;
          ops = List.init dsl.steps (fun _step -> read_op ());
          access_cost = dsl.cost;
          priority = Robust.Admission.Low }
      else if dice < mix.Workload.Dsl.read +. mix.Workload.Dsl.update then
        { arrival;
          ops = List.init dsl.steps (fun _step -> update_op ());
          access_cost = dsl.cost;
          priority = Robust.Admission.Normal }
      else if
        dice
        < mix.Workload.Dsl.read +. mix.Workload.Dsl.update
          +. mix.Workload.Dsl.library
      then
        { arrival;
          ops = List.init dsl.steps (fun _step -> library_op ());
          access_cost = dsl.cost;
          priority = Robust.Admission.Normal }
      else begin
        (* a long check-out session: X on one whole cell object, held for
           [checkout_hold] ticks per step — the Txn.Checkout usage pattern
           compressed into the simulator's step shape *)
        let root = cell_node (random_cell ()) in
        { arrival;
          ops = List.init dsl.checkout_steps (fun _step -> Node_update root);
          access_cost = dsl.checkout_hold;
          priority = Robust.Admission.High }
      end)
