(** Fault-injection plans for chaos runs.

    A plan assigns each job a {!fate} by a seeded draw, so the same
    [(fault_seed, txn)] pair always yields the same fate regardless of job
    count or ordering — chaos runs are reproducible from the seed alone. *)

type fate =
  | Normal
  | Crash_at of int
      (** abort without restart just before accessing the given step,
          releasing all locks (a process crash under strict 2PL) *)
  | Stall of int
      (** every access takes [factor] times longer (a slow client) *)
  | Hog
      (** grabs its first step's locks, then sits on them without
          committing until the runner's [hog_hold] expires, at which point
          it crashes and releases (a stuck client holding locks) *)

type spec = {
  crash : float;  (** probability a job crashes mid-run *)
  stall : float;  (** probability a job is stalled *)
  stall_factor : int;  (** access-cost multiplier for stalled jobs *)
  hog : float;  (** probability a job is a lock hog *)
  fault_seed : int;  (** RNG seed; same seed, same fates *)
}

val none : spec
(** All rates zero — every job {!Normal}. *)

val active : spec -> bool
(** At least one rate is positive. *)

val fate : spec -> txn:int -> steps:int -> fate
(** The fate of transaction [txn] in a job with [steps] steps. Pure:
    derived from [spec.fault_seed] and [txn] only. *)

val of_string : string -> (spec, [ `Msg of string ]) result
(** Parses ["crash:0.1,stall:0.2x4,hog:0.05"]. Clauses are comma-separated
    [KIND:RATE]; [stall] optionally carries an [xFACTOR] suffix (default
    [x8]). Rates must lie in [0,1] and sum to at most 1. The seed defaults
    to 0 — set [fault_seed] afterwards (the CLI reuses [--seed]). *)

val to_string : spec -> string
(** Round-trips the clause syntax (seed excluded); ["none"] when inactive. *)

val fate_to_string : fate -> string
