type t = {
  committed : int;
  deadlock_aborts : int;
  timeout_aborts : int;
  wdl_aborts : int;
  gave_up : int;
  crashed : int;
  shed : int;
  retry_denied : int;
  makespan : int;
  total_response : int;
  total_wait : int;
  lock_requests : int;
  conflict_tests : int;
  peak_lock_entries : int;
  escalations : int;
}

let throughput metrics =
  if metrics.makespan = 0 then 0.0
  else 1000.0 *. float_of_int metrics.committed /. float_of_int metrics.makespan

let avg_response metrics =
  let finished =
    metrics.committed + metrics.gave_up + metrics.crashed + metrics.shed
  in
  if finished = 0 then 0.0
  else float_of_int metrics.total_response /. float_of_int finished

let pp formatter metrics =
  Format.fprintf formatter
    "committed %d, deadlock aborts %d, timeout aborts %d, wdl aborts %d, gave \
     up %d, crashed %d, shed %d, retry denied %d, makespan %d, avg response \
     %.1f, wait %d, lock requests %d, conflict tests %d, peak entries %d, \
     escalations %d"
    metrics.committed metrics.deadlock_aborts metrics.timeout_aborts
    metrics.wdl_aborts metrics.gave_up metrics.crashed metrics.shed
    metrics.retry_denied metrics.makespan (avg_response metrics)
    metrics.total_wait metrics.lock_requests metrics.conflict_tests
    metrics.peak_lock_entries metrics.escalations

let row metrics =
  [ ("committed", float_of_int metrics.committed);
    ("deadlock_aborts", float_of_int metrics.deadlock_aborts);
    ("timeout_aborts", float_of_int metrics.timeout_aborts);
    ("wdl_aborts", float_of_int metrics.wdl_aborts);
    ("gave_up", float_of_int metrics.gave_up);
    ("crashed", float_of_int metrics.crashed);
    ("shed", float_of_int metrics.shed);
    ("retry_denied", float_of_int metrics.retry_denied);
    ("makespan", float_of_int metrics.makespan);
    ("throughput", throughput metrics);
    ("avg_response", avg_response metrics);
    ("total_wait", float_of_int metrics.total_wait);
    ("lock_requests", float_of_int metrics.lock_requests);
    ("conflict_tests", float_of_int metrics.conflict_tests);
    ("peak_lock_entries", float_of_int metrics.peak_lock_entries);
    ("escalations", float_of_int metrics.escalations) ]
