type t = {
  committed : int;
  deadlock_aborts : int;
  timeout_aborts : int;
  gave_up : int;
  crashed : int;
  makespan : int;
  total_response : int;
  total_wait : int;
  lock_requests : int;
  conflict_tests : int;
  peak_lock_entries : int;
  escalations : int;
}

let throughput metrics =
  if metrics.makespan = 0 then 0.0
  else 1000.0 *. float_of_int metrics.committed /. float_of_int metrics.makespan

let avg_response metrics =
  let finished = metrics.committed + metrics.gave_up + metrics.crashed in
  if finished = 0 then 0.0
  else float_of_int metrics.total_response /. float_of_int finished

let pp formatter metrics =
  Format.fprintf formatter
    "committed %d, deadlock aborts %d, timeout aborts %d, gave up %d, crashed \
     %d, makespan %d, avg response %.1f, wait %d, lock requests %d, conflict \
     tests %d, peak entries %d, escalations %d"
    metrics.committed metrics.deadlock_aborts metrics.timeout_aborts
    metrics.gave_up metrics.crashed metrics.makespan (avg_response metrics)
    metrics.total_wait metrics.lock_requests metrics.conflict_tests
    metrics.peak_lock_entries metrics.escalations

let row metrics =
  [ ("committed", float_of_int metrics.committed);
    ("deadlock_aborts", float_of_int metrics.deadlock_aborts);
    ("timeout_aborts", float_of_int metrics.timeout_aborts);
    ("gave_up", float_of_int metrics.gave_up);
    ("crashed", float_of_int metrics.crashed);
    ("makespan", float_of_int metrics.makespan);
    ("throughput", throughput metrics);
    ("avg_response", avg_response metrics);
    ("total_wait", float_of_int metrics.total_wait);
    ("lock_requests", float_of_int metrics.lock_requests);
    ("conflict_tests", float_of_int metrics.conflict_tests);
    ("peak_lock_entries", float_of_int metrics.peak_lock_entries);
    ("escalations", float_of_int metrics.escalations) ]
