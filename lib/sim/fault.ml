type fate =
  | Normal
  | Crash_at of int
  | Stall of int
  | Hog

type spec = {
  crash : float;
  stall : float;
  stall_factor : int;
  hog : float;
  fault_seed : int;
}

let none = { crash = 0.0; stall = 0.0; stall_factor = 8; hog = 0.0;
             fault_seed = 0 }

let active spec = spec.crash > 0.0 || spec.stall > 0.0 || spec.hog > 0.0

let fate spec ~txn ~steps =
  if not (active spec) then Normal
  else begin
    (* Seeded per transaction: a job's fate is a pure function of
       (fault_seed, txn), independent of how many other jobs drew before
       it — runs stay deterministic and individual fates reproducible. *)
    let rng = Random.State.make [| spec.fault_seed; txn |] in
    let draw = Random.State.float rng 1.0 in
    if draw < spec.crash then
      Crash_at (if steps <= 0 then 0 else Random.State.int rng steps)
    else if draw < spec.crash +. spec.hog then Hog
    else if draw < spec.crash +. spec.hog +. spec.stall then
      Stall spec.stall_factor
    else Normal
  end

let fate_to_string = function
  | Normal -> "normal"
  | Crash_at step -> Printf.sprintf "crash@%d" step
  | Stall factor -> Printf.sprintf "stall x%d" factor
  | Hog -> "hog"

let parse_error message = Error (`Msg ("faults: " ^ message))

let of_string text =
  let parse_rate what value =
    match float_of_string_opt value with
    | Some rate when rate >= 0.0 && rate <= 1.0 -> Ok rate
    | Some _ | None -> parse_error (what ^ " rate must be in [0,1]: " ^ value)
  in
  let parse_clause spec clause =
    match String.index_opt clause ':' with
    | None -> parse_error ("expected KIND:RATE, got " ^ clause)
    | Some colon -> (
      let kind = String.sub clause 0 colon in
      let value =
        String.sub clause (colon + 1) (String.length clause - colon - 1)
      in
      match kind with
      | "crash" -> (
        match parse_rate "crash" value with
        | Ok crash -> Ok { spec with crash }
        | Error _ as error -> error)
      | "hog" -> (
        match parse_rate "hog" value with
        | Ok hog -> Ok { spec with hog }
        | Error _ as error -> error)
      | "stall" -> (
        (* "stall:0.2" or "stall:0.2x4" (slow-down factor, default 8) *)
        let rate, factor =
          match String.index_opt value 'x' with
          | None -> (value, Ok spec.stall_factor)
          | Some x ->
            let rate = String.sub value 0 x in
            let factor_text =
              String.sub value (x + 1) (String.length value - x - 1)
            in
            (match int_of_string_opt factor_text with
             | Some factor when factor >= 1 -> (rate, Ok factor)
             | Some _ | None ->
               (rate, parse_error ("stall factor must be >= 1: " ^ factor_text)))
        in
        match factor, parse_rate "stall" rate with
        | Ok stall_factor, Ok stall -> Ok { spec with stall; stall_factor }
        | (Error _ as error), _ | _, (Error _ as error) -> error)
      | _ -> parse_error ("unknown fault kind: " ^ kind))
  in
  let clauses =
    String.split_on_char ',' (String.trim text)
    |> List.map String.trim
    |> List.filter (fun clause -> clause <> "")
  in
  let spec =
    List.fold_left
      (fun spec clause ->
        match spec with
        | Error _ -> spec
        | Ok spec -> parse_clause spec clause)
      (Ok none) clauses
  in
  match spec with
  | Ok spec when spec.crash +. spec.stall +. spec.hog > 1.0 ->
    parse_error "rates sum to more than 1"
  | other -> other

let to_string spec =
  let clauses =
    (if spec.crash > 0.0 then [ Printf.sprintf "crash:%g" spec.crash ] else [])
    @ (if spec.stall > 0.0 then
         [ Printf.sprintf "stall:%gx%d" spec.stall spec.stall_factor ]
       else [])
    @ if spec.hog > 0.0 then [ Printf.sprintf "hog:%g" spec.hog ] else []
  in
  if clauses = [] then "none" else String.concat "," clauses
