module Table = Lockmgr.Lock_table
module Policy = Lockmgr.Policy
module Technique = Baselines.Technique

type step = {
  plan : Table.txn_id -> Technique.request list;
  access_cost : int;
}

type job = {
  arrival : int;
  priority : Robust.Admission.priority;
  steps : step list;
}

type overload = {
  admission : Robust.Admission.config option;
  controller : Robust.Controller.config;
  budget : Robust.Budget.config option;
  breaker : Robust.Breaker.config option;
}

let default_overload =
  { admission = Some Robust.Admission.default_config;
    controller = Robust.Controller.default_config; budget = None;
    breaker = None }

type config = {
  max_restarts : int;
  resolution : Policy.resolution;
  victim : Policy.victim;
  backoff : Policy.backoff;
  restart : Policy.restart;
  hog_hold : int;
  check_invariants : bool;
  snapshot_every : int option;
  on_advance : (int -> unit) option;
  overload : overload option;
}

let default_config =
  { max_restarts = 20; resolution = Policy.Detection;
    victim = Policy.Youngest; backoff = Policy.Fixed 50;
    restart = Policy.No_restart; hog_hold = 4000; check_invariants = false;
    snapshot_every = None; on_advance = None; overload = None }

type status =
  | Idle
  | Locking
  | Waiting
  | Accessing
  | Committed
  | Gave_up
  | Crashed
  | Shed

type job_state = {
  txn : Table.txn_id;
  job : job;
  fate : Fault.fate;
  mutable step_index : int;
  mutable pending : Technique.request list;
  mutable waiting_on : string option;
  mutable blocked_since : int;
  mutable wait_epoch : int;  (* distinguishes successive waits of one txn *)
  mutable total_wait : int;
  mutable restarts : int;
  mutable status : status;
  mutable commit_time : int;
  mutable admitted : bool;  (* holds an admission slot (when gating is on) *)
}

type event =
  | Begin of job_state
  | Resume of job_state
  | Finish of job_state
  | Restart of job_state
  | Timeout_check of job_state * int  (* wait epoch the check was armed for *)
  | Hog_release of job_state
  | Snapshot  (* periodic wait-for-graph emission *)
  | Control  (* periodic AIMD admission-limit adjustment *)

type abort_reason = Deadlock | Timeout | Contention

type sim = {
  table : Table.t;
  queue : event Event_queue.t;
  config : config;
  states : job_state array;
  mutable deadlock_aborts : int;
  mutable timeout_aborts : int;
  mutable crashed : int;
  obs : Obs.Sink.t option;
  mutable now : int;  (* virtual time of the event being handled *)
  (* overload-control actuators (all absent when [config.overload] is) *)
  admission : Robust.Admission.t option;
  budget : Robust.Budget.t option;
  breaker : Robust.Breaker.t option;
  controller : Robust.Controller.config option;
  ctl_monitor : Obs.Monitor.t option;
      (* private monitor the controller samples; attached to [obs] *)
  mutable shed : int;
  mutable wdl_aborts : int;
  mutable retry_denied : int;
}

let state_of sim txn = sim.states.(txn - 1)

let emit sim kind =
  match sim.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

let priority_label state =
  Robust.Admission.priority_to_string state.job.priority

(* Run an operation against the breaker (when one is configured) and emit a
   [Breaker] event whenever it changed state. *)
let with_breaker sim ~default f =
  match sim.breaker with
  | None -> default
  | Some breaker ->
    let before = Robust.Breaker.state breaker in
    let result = f breaker in
    let after = Robust.Breaker.state breaker in
    if before <> after then
      emit sim
        (Obs.Event.Breaker
           { from_state = Robust.Breaker.state_to_string before;
             to_state = Robust.Breaker.state_to_string after });
    result

(* Wake every job whose queued request was just granted. *)
let rec process_grants sim time grants =
  List.iter
    (fun grant ->
      let state = state_of sim grant.Table.g_txn in
      match state.status, state.waiting_on with
      | Waiting, Some resource when String.equal resource grant.Table.g_resource ->
        state.status <- Locking;
        state.waiting_on <- None;
        state.total_wait <- state.total_wait + (time - state.blocked_since);
        Event_queue.schedule sim.queue ~time (Resume state)
      | ( ( Idle | Locking | Waiting | Accessing | Committed | Gave_up
          | Crashed | Shed ),
          _ ) ->
        ())
    grants

(* An admitted job left the system: free its slot, then promote as much
   queued work as the limit now allows. *)
and admission_exit sim time state =
  match sim.admission with
  | None -> ()
  | Some admission ->
    if state.admitted then begin
      state.admitted <- false;
      Robust.Admission.release admission;
      admission_drain sim time
    end

and admission_drain sim time =
  match sim.admission with
  | None -> ()
  | Some admission -> (
    match Robust.Admission.pop admission with
    | None -> ()
    | Some txn ->
      let state = state_of sim txn in
      (* [pop] already took the slot for it *)
      state.admitted <- true;
      Event_queue.schedule sim.queue ~time (Begin state);
      admission_drain sim time)

and abort_and_restart sim time ~reason state =
  (* A job victimized while blocked has been waiting since [blocked_since];
     that time is real delay and must survive the abort (the restart resets
     everything else). *)
  let blocked_wait =
    match state.status, state.waiting_on with
    | Waiting, Some _ -> time - state.blocked_since
    | _, _ -> 0
  in
  let waited_on =
    match state.waiting_on with Some resource -> resource | None -> ""
  in
  let cancel_grants = Table.cancel_wait sim.table ~txn:state.txn in
  let release_grants = Table.release_all sim.table ~txn:state.txn in
  state.total_wait <- state.total_wait + blocked_wait;
  state.waiting_on <- None;
  state.pending <- [];
  state.step_index <- 0;
  state.restarts <- state.restarts + 1;
  let stats = Table.stats sim.table in
  (match reason with
   | Deadlock ->
     sim.deadlock_aborts <- sim.deadlock_aborts + 1;
     stats.Lockmgr.Lock_stats.victim_aborts <-
       stats.Lockmgr.Lock_stats.victim_aborts + 1;
     emit sim
       (Obs.Event.Victim_aborted { txn = state.txn; restarts = state.restarts })
   | Timeout ->
     sim.timeout_aborts <- sim.timeout_aborts + 1;
     stats.Lockmgr.Lock_stats.timeout_aborts <-
       stats.Lockmgr.Lock_stats.timeout_aborts + 1;
     emit sim
       (Obs.Event.Timeout_abort
          { txn = state.txn; resource = waited_on; waited = blocked_wait;
            lu = Table.resource_lu sim.table waited_on })
   | Contention ->
     (* the Contention_abort event was emitted by the restart policy *)
     sim.wdl_aborts <- sim.wdl_aborts + 1);
  with_breaker sim ~default:() (fun breaker ->
      Robust.Breaker.record_abort breaker ~now:time);
  let give_up reason =
    state.status <- Gave_up;
    (* record when the job abandoned, so response time accounts for it *)
    state.commit_time <- time;
    emit sim (Obs.Event.Txn_abort { txn = state.txn; reason });
    admission_exit sim time state
  in
  if state.restarts > sim.config.max_restarts then give_up "gave_up"
  else begin
    let denied =
      match sim.budget with
      | Some budget when not (Robust.Budget.try_retry budget) ->
        sim.retry_denied <- sim.retry_denied + 1;
        emit sim
          (Obs.Event.Retry_denied
             { txn = state.txn; restarts = state.restarts });
        true
      | Some _ | None -> false
    in
    if denied then give_up "retry_budget"
    else begin
      state.status <- Idle;
      let delay =
        Policy.delay sim.config.backoff ~restarts:state.restarts ~txn:state.txn
      in
      (* while the breaker is open, park the restart until it will probe *)
      let restart_time =
        match sim.breaker with
        | Some breaker -> (
          match Robust.Breaker.reopen_at breaker with
          | Some at -> max (time + delay) at
          | None -> time + delay)
        | None -> time + delay
      in
      Event_queue.schedule sim.queue ~time:restart_time (Restart state)
    end
  end;
  process_grants sim time (cancel_grants @ release_grants)

(* A faulted job dies for good: everything is released, nothing restarts. *)
and crash sim time ~reason state =
  let blocked_wait =
    match state.status, state.waiting_on with
    | Waiting, Some _ -> time - state.blocked_since
    | _, _ -> 0
  in
  let cancel_grants = Table.cancel_wait sim.table ~txn:state.txn in
  let release_grants = Table.release_all sim.table ~txn:state.txn in
  state.total_wait <- state.total_wait + blocked_wait;
  state.waiting_on <- None;
  state.pending <- [];
  state.status <- Crashed;
  state.commit_time <- time;
  sim.crashed <- sim.crashed + 1;
  emit sim (Obs.Event.Txn_abort { txn = state.txn; reason });
  admission_exit sim time state;
  process_grants sim time (cancel_grants @ release_grants)

(* Returns [true] when [requester] itself was sacrificed. *)
and resolve_deadlocks sim time requester =
  match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges sim.table) with
  | None -> false
  | Some cycle ->
    let stats = Table.stats sim.table in
    stats.Lockmgr.Lock_stats.deadlocks <-
      stats.Lockmgr.Lock_stats.deadlocks + 1;
    emit sim (Obs.Event.Deadlock_detected { cycle });
    let candidates =
      List.map
        (fun txn ->
          let state = state_of sim txn in
          { Policy.txn; birth = state.job.arrival;
            locks_held = List.length (Table.locks_of sim.table ~txn);
            work_done = state.step_index })
        cycle
    in
    let victim_txn = Policy.choose_victim sim.config.victim candidates in
    let victim = state_of sim victim_txn in
    abort_and_restart sim time ~reason:Deadlock victim;
    if victim_txn = requester then true else resolve_deadlocks sim time requester

and contention_abort sim time ~policy ~depth victim =
  emit sim (Obs.Event.Contention_abort { txn = victim.txn; policy; depth });
  abort_and_restart sim time ~reason:Contention victim

(* Thomasian-style restart policies, applied the moment a request starts
   waiting. Returns [true] when the requester itself was sacrificed. *)
and apply_restart_policy sim time state blockers =
  match sim.config.restart with
  | Policy.No_restart -> false
  | Policy.Wait_depth limit ->
    let depth = Table.wait_depth sim.table ~txn:state.txn in
    if depth <= limit then false
    else begin
      (* victim: the requester or one of its waiting blockers — least work
         lost dies, ties toward the larger transaction id *)
      let waiting_blockers =
        List.filter (fun txn -> (state_of sim txn).status = Waiting) blockers
      in
      let score txn =
        let s = state_of sim txn in
        (s.step_index, -txn)
      in
      let victim_txn =
        List.fold_left
          (fun best txn -> if score txn < score best then txn else best)
          state.txn waiting_blockers
      in
      let policy = Policy.restart_to_string (Policy.Wait_depth limit) in
      contention_abort sim time ~policy ~depth (state_of sim victim_txn);
      victim_txn = state.txn
    end
  | Policy.Running_priority ->
    (* a running requester never queues behind waiters: every blocker that
       is itself waiting is restarted *)
    List.iter
      (fun txn ->
        let blocker = state_of sim txn in
        if blocker.status = Waiting then
          contention_abort sim time ~policy:"running-priority"
            ~depth:(Table.wait_depth sim.table ~txn)
            blocker)
      blockers;
    false

let begin_wait sim time state resource =
  state.status <- Waiting;
  state.waiting_on <- Some resource;
  state.blocked_since <- time;
  state.wait_epoch <- state.wait_epoch + 1;
  match Policy.timeout_of sim.config.resolution with
  | None -> ()
  | Some timeout ->
    Event_queue.schedule sim.queue ~time:(time + timeout)
      (Timeout_check (state, state.wait_epoch))

let rec continue_locking sim time state =
  match state.pending with
  | [] -> begin
    match List.nth_opt state.job.steps state.step_index with
    | None ->
      (* all steps done: commit *)
      state.status <- Committed;
      state.commit_time <- time;
      emit sim (Obs.Event.Txn_commit { txn = state.txn });
      (match sim.budget with
       | Some budget -> Robust.Budget.on_commit budget
       | None -> ());
      with_breaker sim ~default:() (fun breaker ->
          Robust.Breaker.record_commit breaker ~now:time);
      process_grants sim time (Table.release_all sim.table ~txn:state.txn);
      admission_exit sim time state
    | Some step -> (
      match state.fate with
      | Fault.Crash_at crash_step when crash_step = state.step_index ->
        (* dies with this step's locks held — the worst moment *)
        crash sim time ~reason:"crash" state
      | Fault.Hog when state.step_index = 0 ->
        (* sits on its first step's locks without committing until the
           runner's hold limit forces a crash-release *)
        state.status <- Accessing;
        Event_queue.schedule sim.queue ~time:(time + sim.config.hog_hold)
          (Hog_release state)
      | Fault.Stall factor ->
        state.status <- Accessing;
        Event_queue.schedule sim.queue
          ~time:(time + (step.access_cost * factor))
          (Finish state)
      | Fault.Normal | Fault.Crash_at _ | Fault.Hog ->
        state.status <- Accessing;
        Event_queue.schedule sim.queue ~time:(time + step.access_cost)
          (Finish state))
  end
  | request :: rest -> (
    let resource = Technique.(Colock.Node_id.to_resource request.node) in
    let deadline =
      match Policy.timeout_of sim.config.resolution with
      | None -> None
      | Some timeout -> Some (time + timeout)
    in
    match
      Table.request sim.table ~txn:state.txn ?deadline ~resource
        request.Technique.mode
    with
    | Table.Granted ->
      state.pending <- rest;
      continue_locking sim time state
    | Table.Waiting blockers ->
      begin_wait sim time state resource;
      state.pending <- rest;
      let self_aborted = apply_restart_policy sim time state blockers in
      if (not self_aborted) && Policy.detects sim.config.resolution then begin
        let self_aborted = resolve_deadlocks sim time state.txn in
        if not self_aborted then ()  (* stays queued; a grant will resume it *)
      end)

let start_step sim time state =
  match List.nth_opt state.job.steps state.step_index with
  | None -> continue_locking sim time state  (* zero-step job commits *)
  | Some step ->
    state.status <- Locking;
    state.pending <- step.plan state.txn;
    emit sim (Obs.Event.Sim_step { txn = state.txn; step = state.step_index });
    continue_locking sim time state

(* The entry gate. [true] means the job may begin now; [false] means it was
   queued (a later [pop] re-schedules its Begin) or shed for good. *)
let admission_gate sim time state =
  match sim.admission with
  | None -> true
  | Some admission ->
    if state.admitted then true
    else begin
      let shed victim =
        victim.status <- Shed;
        victim.commit_time <- time;
        victim.admitted <- false;
        sim.shed <- sim.shed + 1;
        emit sim
          (Obs.Event.Admission
             { txn = victim.txn; priority = priority_label victim;
               decision = "shed" })
      in
      match
        Robust.Admission.request admission ~priority:state.job.priority
          ~txn:state.txn
      with
      | Robust.Admission.Admitted ->
        state.admitted <- true;
        true
      | Robust.Admission.Enqueued { evicted } ->
        emit sim
          (Obs.Event.Admission
             { txn = state.txn; priority = priority_label state;
               decision = "queued" });
        (match evicted with
         | Some txn -> shed (state_of sim txn)
         | None -> ());
        false
      | Robust.Admission.Rejected ->
        shed state;
        false
    end

let handle sim time = function
  | Begin state -> (
    match state.status with
    | Idle ->
      if admission_gate sim time state then begin
        emit sim (Obs.Event.Txn_begin { txn = state.txn });
        start_step sim time state
      end
    | Locking | Waiting | Accessing | Committed | Gave_up | Crashed | Shed ->
      ())
  | Restart state -> (
    match state.status with
    | Idle ->
      (* restarts keep their admission slot but must get past an open
         circuit breaker *)
      let allowed =
        with_breaker sim ~default:true (fun breaker ->
            Robust.Breaker.allow breaker ~now:time)
      in
      if allowed then start_step sim time state
      else begin
        let retry_at =
          match sim.breaker with
          | Some breaker -> (
            match Robust.Breaker.reopen_at breaker with
            | Some at -> max (time + 1) at
            | None ->
              (* half-open with its probes taken: look again after one
                 open period *)
              time + (Robust.Breaker.config breaker).Robust.Breaker.open_for)
          | None -> time + 1
        in
        Event_queue.schedule sim.queue ~time:retry_at (Restart state)
      end
    | Locking | Waiting | Accessing | Committed | Gave_up | Crashed | Shed ->
      ())
  | Resume state -> (
    match state.status with
    | Locking -> continue_locking sim time state
    | Idle | Waiting | Accessing | Committed | Gave_up | Crashed | Shed -> ())
  | Finish state -> (
    match state.status with
    | Accessing ->
      state.step_index <- state.step_index + 1;
      state.pending <- [];
      start_step sim time state
    | Idle | Locking | Waiting | Committed | Gave_up | Crashed | Shed -> ())
  | Timeout_check (state, epoch) -> (
    (* the check is only live if the job is still in the very wait it was
       armed for — a grant, abort or restart bumps the epoch or status *)
    match state.status with
    | Waiting when state.wait_epoch = epoch ->
      abort_and_restart sim time ~reason:Timeout state
    | Idle | Locking | Waiting | Accessing | Committed | Gave_up | Crashed
    | Shed ->
      ())
  | Hog_release state -> (
    match state.status with
    | Accessing -> crash sim time ~reason:"hog" state
    | Idle | Locking | Waiting | Committed | Gave_up | Crashed | Shed -> ())
  | Snapshot -> (
    emit sim (Obs.Event.Waits_for { edges = Table.waits_for_edges sim.table });
    (* only reschedule while real work remains queued, or the drain loop
       would follow snapshots forever *)
    match sim.config.snapshot_every with
    | Some period when not (Event_queue.is_empty sim.queue) ->
      Event_queue.schedule sim.queue ~time:(time + period) Snapshot
    | Some _ | None -> ())
  | Control -> (
    (* the closed loop: sample the private monitor, move the AIMD limit,
       surface the change as an event, and admit freed-up queued work *)
    (match sim.admission, sim.controller, sim.ctl_monitor with
     | Some admission, Some controller, Some monitor ->
       let p95_wait =
         Obs.Slo.measure monitor (Obs.Slo.Wait_quantile { q = 0.95; lu = None })
       in
       let abort_rate = Obs.Slo.measure monitor Obs.Slo.Abort_rate in
       let queue_depth = Table.waiter_count sim.table in
       (match
          Robust.Controller.step controller admission ~p95_wait ~abort_rate
            ~queue_depth
        with
       | Robust.Controller.Unchanged -> ()
       | Robust.Controller.Raised limit | Robust.Controller.Lowered limit ->
         emit sim
           (Obs.Event.Admission_limit
              { limit;
                inflight = Robust.Admission.inflight admission;
                queued = Robust.Admission.queued admission;
                shed = Robust.Admission.shed_count admission }));
       admission_drain sim time
     | _, _, _ -> ());
    match sim.controller with
    | Some controller when not (Event_queue.is_empty sim.queue) ->
      Event_queue.schedule sim.queue
        ~time:(time + controller.Robust.Controller.every)
        Control
    | Some _ | None -> ())

(* Chaos-run oracle: after every event the table must be structurally sound,
   every blocked job must really be queued, and — when detection runs — the
   waits-for graph must be acyclic (cycles legitimately persist until their
   deadline under pure timeouts). *)
let audit sim time =
  (match Table.check_invariants sim.table with
   | [] -> ()
   | violations ->
     failwith
       (Printf.sprintf "lock table invariants violated at t=%d: %s" time
          (String.concat "; " violations)));
  if Policy.detects sim.config.resolution then begin
    match
      Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges sim.table)
    with
    | None -> ()
    | Some cycle ->
      failwith
        (Printf.sprintf "unresolved deadlock at t=%d: [%s]" time
           (String.concat " " (List.map string_of_int cycle)))
  end;
  Array.iter
    (fun state ->
      match state.status with
      | Waiting ->
        if Table.waiting_of sim.table ~txn:state.txn = [] then
          failwith
            (Printf.sprintf "T%d marked waiting but queued nowhere at t=%d"
               state.txn time)
      | Shed ->
        if Table.locks_of sim.table ~txn:state.txn <> [] then
          failwith
            (Printf.sprintf "shed T%d still holds locks at t=%d" state.txn
               time)
      | Idle | Locking | Accessing | Committed | Gave_up | Crashed -> ())
    sim.states

let run ?(config = default_config) ?(faults = Fault.none)
    ?(on_begin = fun _txn -> ()) ?obs ~table jobs =
  let obs = match obs with Some _ -> obs | None -> Table.obs table in
  (* The controller needs live contention signals: give the run a private
     monitor attached to the sink (creating a sink when the caller brought
     none — overload control must work unobserved too). *)
  let obs, ctl_monitor =
    match config.overload with
    | None -> (obs, None)
    | Some _ ->
      let sink =
        match obs with Some sink -> sink | None -> Obs.Sink.null ()
      in
      let monitor = Obs.Monitor.create () in
      Obs.Sink.attach sink (Obs.Monitor.handle monitor);
      (Some sink, Some monitor)
  in
  let states =
    Array.of_list
      (List.mapi
         (fun index job ->
           let txn = index + 1 in
           { txn; job; fate = Fault.fate faults ~txn ~steps:(List.length job.steps);
             step_index = 0; pending = []; waiting_on = None; blocked_since = 0;
             wait_epoch = 0; total_wait = 0; restarts = 0; status = Idle;
             commit_time = 0; admitted = false })
         jobs)
  in
  let sim =
    { table; queue = Event_queue.create (); config; states;
      deadlock_aborts = 0; timeout_aborts = 0; crashed = 0; obs; now = 0;
      admission =
        Option.bind config.overload (fun (overload : overload) ->
            Option.map Robust.Admission.create overload.admission);
      budget =
        Option.bind config.overload (fun (overload : overload) ->
            Option.map Robust.Budget.create overload.budget);
      breaker =
        Option.bind config.overload (fun (overload : overload) ->
            Option.map Robust.Breaker.create overload.breaker);
      controller =
        Option.map
          (fun (overload : overload) -> overload.controller)
          config.overload;
      ctl_monitor; shed = 0; wdl_aborts = 0; retry_denied = 0 }
  in
  (* Events emitted during a run — including the lock table's own — carry
     virtual simulation time, not the sink's wall-clock default. *)
  (match obs with
   | Some sink -> Obs.Sink.set_clock sink (fun () -> float_of_int sim.now)
   | None -> ());
  Array.iter
    (fun state ->
      on_begin state.txn;
      Event_queue.schedule sim.queue ~time:state.job.arrival (Begin state))
    states;
  (match config.snapshot_every with
   | Some period when period > 0 && Array.length states > 0 ->
     Event_queue.schedule sim.queue ~time:period Snapshot
   | Some _ | None -> ());
  (match sim.controller, sim.admission with
   | Some controller, Some _ when Array.length states > 0 ->
     Event_queue.schedule sim.queue ~time:controller.Robust.Controller.every
       Control
   | _, _ -> ());
  let last_time = ref 0 in
  let rec drain () =
    match Event_queue.pop sim.queue with
    | None -> ()
    | Some (time, event) ->
      last_time := max !last_time time;
      (match config.on_advance with
       | Some hook when time > sim.now -> hook time
       | Some _ | None -> ());
      sim.now <- time;
      handle sim time event;
      if config.check_invariants then audit sim time;
      drain ()
  in
  drain ();
  let committed = ref 0 and gave_up = ref 0 and crashed = ref 0 in
  let shed = ref 0 in
  let total_response = ref 0 and total_wait = ref 0 in
  let makespan = ref 0 in
  Array.iter
    (fun state ->
      (match state.status with
       | Committed ->
         incr committed;
         total_response := !total_response + (state.commit_time - state.job.arrival);
         makespan := max !makespan state.commit_time
       | Gave_up ->
         incr gave_up;
         (* the give-up moment was recorded in commit_time, so abandoned
            jobs count toward response time instead of skewing the mean *)
         total_response :=
           !total_response + (state.commit_time - state.job.arrival)
       | Crashed ->
         incr crashed;
         total_response :=
           !total_response + (state.commit_time - state.job.arrival)
       | Shed ->
         incr shed;
         (* sheds are instant refusals (or evictions from the entry queue);
            the queueing delay until the shed is their whole response *)
         total_response :=
           !total_response + (state.commit_time - state.job.arrival)
       | Idle | Locking | Waiting | Accessing -> ());
      total_wait := !total_wait + state.total_wait)
    states;
  let stats = Table.stats table in
  { Metrics.committed = !committed;
    deadlock_aborts = sim.deadlock_aborts;
    timeout_aborts = sim.timeout_aborts;
    wdl_aborts = sim.wdl_aborts;
    gave_up = !gave_up;
    crashed = !crashed;
    shed = !shed;
    retry_denied = sim.retry_denied;
    makespan = !makespan;
    total_response = !total_response;
    total_wait = !total_wait;
    lock_requests = stats.Lockmgr.Lock_stats.requests;
    conflict_tests = stats.Lockmgr.Lock_stats.conflict_tests;
    peak_lock_entries = Table.peak_entry_count table;
    escalations = stats.Lockmgr.Lock_stats.escalations }
