module Table = Lockmgr.Lock_table
module Technique = Baselines.Technique

type step = {
  plan : Table.txn_id -> Technique.request list;
  access_cost : int;
}

type job = { arrival : int; steps : step list }

type config = { deadlock_backoff : int; max_restarts : int }

let default_config = { deadlock_backoff = 50; max_restarts = 20 }

type status = Idle | Locking | Waiting | Accessing | Committed | Gave_up

type job_state = {
  txn : Table.txn_id;
  job : job;
  mutable step_index : int;
  mutable pending : Technique.request list;
  mutable waiting_on : string option;
  mutable blocked_since : int;
  mutable total_wait : int;
  mutable restarts : int;
  mutable status : status;
  mutable commit_time : int;
}

type event = Begin of job_state | Resume of job_state | Finish of job_state | Restart of job_state

type sim = {
  table : Table.t;
  queue : event Event_queue.t;
  config : config;
  states : job_state array;
  mutable deadlock_aborts : int;
  obs : Obs.Sink.t option;
  mutable now : int;  (* virtual time of the event being handled *)
}

let state_of sim txn = sim.states.(txn - 1)

let emit sim kind =
  match sim.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

(* Wake every job whose queued request was just granted. *)
let rec process_grants sim time grants =
  List.iter
    (fun grant ->
      let state = state_of sim grant.Table.g_txn in
      match state.status, state.waiting_on with
      | Waiting, Some resource when String.equal resource grant.Table.g_resource ->
        state.status <- Locking;
        state.waiting_on <- None;
        state.total_wait <- state.total_wait + (time - state.blocked_since);
        Event_queue.schedule sim.queue ~time (Resume state)
      | (Idle | Locking | Waiting | Accessing | Committed | Gave_up), _ -> ())
    grants

and abort_and_restart sim time state =
  let cancel_grants = Table.cancel_wait sim.table ~txn:state.txn in
  let release_grants = Table.release_all sim.table ~txn:state.txn in
  state.waiting_on <- None;
  state.pending <- [];
  state.step_index <- 0;
  state.restarts <- state.restarts + 1;
  sim.deadlock_aborts <- sim.deadlock_aborts + 1;
  let stats = Table.stats sim.table in
  stats.Lockmgr.Lock_stats.victim_aborts <-
    stats.Lockmgr.Lock_stats.victim_aborts + 1;
  emit sim
    (Obs.Event.Victim_aborted { txn = state.txn; restarts = state.restarts });
  if state.restarts > sim.config.max_restarts then begin
    state.status <- Gave_up;
    (* record when the job abandoned, so response time accounts for it *)
    state.commit_time <- time;
    emit sim (Obs.Event.Txn_abort { txn = state.txn; reason = "gave_up" })
  end
  else begin
    state.status <- Idle;
    Event_queue.schedule sim.queue
      ~time:(time + sim.config.deadlock_backoff)
      (Restart state)
  end;
  process_grants sim time (cancel_grants @ release_grants)

(* Returns [true] when [requester] itself was sacrificed. *)
and resolve_deadlocks sim time requester =
  match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges sim.table) with
  | None -> false
  | Some cycle ->
    let stats = Table.stats sim.table in
    stats.Lockmgr.Lock_stats.deadlocks <-
      stats.Lockmgr.Lock_stats.deadlocks + 1;
    emit sim (Obs.Event.Deadlock_detected { cycle });
    (* youngest (largest id) dies *)
    let victim_txn = Lockmgr.Deadlock.choose_victim cycle in
    let victim = state_of sim victim_txn in
    abort_and_restart sim time victim;
    if victim_txn = requester then true else resolve_deadlocks sim time requester

let rec continue_locking sim time state =
  match state.pending with
  | [] -> begin
    match List.nth_opt state.job.steps state.step_index with
    | None ->
      (* all steps done: commit *)
      state.status <- Committed;
      state.commit_time <- time;
      emit sim (Obs.Event.Txn_commit { txn = state.txn });
      process_grants sim time (Table.release_all sim.table ~txn:state.txn)
    | Some step ->
      state.status <- Accessing;
      Event_queue.schedule sim.queue ~time:(time + step.access_cost)
        (Finish state)
  end
  | request :: rest -> (
    let resource = Technique.(Colock.Node_id.to_resource request.node) in
    match
      Table.request sim.table ~txn:state.txn ~resource
        request.Technique.mode
    with
    | Table.Granted ->
      state.pending <- rest;
      continue_locking sim time state
    | Table.Waiting _blockers ->
      state.status <- Waiting;
      state.waiting_on <- Some resource;
      state.pending <- rest;
      state.blocked_since <- time;
      let self_aborted = resolve_deadlocks sim time state.txn in
      if not self_aborted then ()  (* stays queued; a grant will resume it *))

let start_step sim time state =
  match List.nth_opt state.job.steps state.step_index with
  | None -> continue_locking sim time state  (* zero-step job commits *)
  | Some step ->
    state.status <- Locking;
    state.pending <- step.plan state.txn;
    emit sim (Obs.Event.Sim_step { txn = state.txn; step = state.step_index });
    continue_locking sim time state

let handle sim time = function
  | Begin state -> (
    match state.status with
    | Idle ->
      emit sim (Obs.Event.Txn_begin { txn = state.txn });
      start_step sim time state
    | Locking | Waiting | Accessing | Committed | Gave_up -> ())
  | Restart state -> (
    match state.status with
    | Idle -> start_step sim time state
    | Locking | Waiting | Accessing | Committed | Gave_up -> ())
  | Resume state -> (
    match state.status with
    | Locking -> continue_locking sim time state
    | Idle | Waiting | Accessing | Committed | Gave_up -> ())
  | Finish state -> (
    match state.status with
    | Accessing ->
      state.step_index <- state.step_index + 1;
      state.pending <- [];
      start_step sim time state
    | Idle | Locking | Waiting | Committed | Gave_up -> ())

let run ?(config = default_config) ?(on_begin = fun _txn -> ()) ?obs ~table
    jobs =
  let obs = match obs with Some _ -> obs | None -> Table.obs table in
  let states =
    Array.of_list
      (List.mapi
         (fun index job ->
           { txn = index + 1; job; step_index = 0; pending = [];
             waiting_on = None; blocked_since = 0; total_wait = 0;
             restarts = 0; status = Idle; commit_time = 0 })
         jobs)
  in
  let sim =
    { table; queue = Event_queue.create (); config; states;
      deadlock_aborts = 0; obs; now = 0 }
  in
  (* Events emitted during a run — including the lock table's own — carry
     virtual simulation time, not the sink's wall-clock default. *)
  (match obs with
   | Some sink -> Obs.Sink.set_clock sink (fun () -> float_of_int sim.now)
   | None -> ());
  Array.iter
    (fun state ->
      on_begin state.txn;
      Event_queue.schedule sim.queue ~time:state.job.arrival (Begin state))
    states;
  let last_time = ref 0 in
  let rec drain () =
    match Event_queue.pop sim.queue with
    | None -> ()
    | Some (time, event) ->
      last_time := max !last_time time;
      sim.now <- time;
      handle sim time event;
      drain ()
  in
  drain ();
  let committed = ref 0 and gave_up = ref 0 in
  let total_response = ref 0 and total_wait = ref 0 in
  let makespan = ref 0 in
  Array.iter
    (fun state ->
      (match state.status with
       | Committed ->
         incr committed;
         total_response := !total_response + (state.commit_time - state.job.arrival);
         makespan := max !makespan state.commit_time
       | Gave_up ->
         incr gave_up;
         (* the give-up moment was recorded in commit_time, so abandoned
            jobs count toward response time instead of skewing the mean *)
         total_response :=
           !total_response + (state.commit_time - state.job.arrival)
       | Idle | Locking | Waiting | Accessing -> ());
      total_wait := !total_wait + state.total_wait)
    states;
  let stats = Table.stats table in
  { Metrics.committed = !committed;
    deadlock_aborts = sim.deadlock_aborts;
    gave_up = !gave_up;
    makespan = !makespan;
    total_response = !total_response;
    total_wait = !total_wait;
    lock_requests = stats.Lockmgr.Lock_stats.requests;
    conflict_tests = stats.Lockmgr.Lock_stats.conflict_tests;
    peak_lock_entries = Table.peak_entry_count table;
    escalations = stats.Lockmgr.Lock_stats.escalations }
