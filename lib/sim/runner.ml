module Table = Lockmgr.Lock_table
module Policy = Lockmgr.Policy
module Technique = Baselines.Technique

type step = {
  plan : Table.txn_id -> Technique.request list;
  access_cost : int;
}

type job = { arrival : int; steps : step list }

type config = {
  max_restarts : int;
  resolution : Policy.resolution;
  victim : Policy.victim;
  backoff : Policy.backoff;
  hog_hold : int;
  check_invariants : bool;
  snapshot_every : int option;
  on_advance : (int -> unit) option;
}

let default_config =
  { max_restarts = 20; resolution = Policy.Detection;
    victim = Policy.Youngest; backoff = Policy.Fixed 50; hog_hold = 4000;
    check_invariants = false; snapshot_every = None; on_advance = None }

type status =
  | Idle
  | Locking
  | Waiting
  | Accessing
  | Committed
  | Gave_up
  | Crashed

type job_state = {
  txn : Table.txn_id;
  job : job;
  fate : Fault.fate;
  mutable step_index : int;
  mutable pending : Technique.request list;
  mutable waiting_on : string option;
  mutable blocked_since : int;
  mutable wait_epoch : int;  (* distinguishes successive waits of one txn *)
  mutable total_wait : int;
  mutable restarts : int;
  mutable status : status;
  mutable commit_time : int;
}

type event =
  | Begin of job_state
  | Resume of job_state
  | Finish of job_state
  | Restart of job_state
  | Timeout_check of job_state * int  (* wait epoch the check was armed for *)
  | Hog_release of job_state
  | Snapshot  (* periodic wait-for-graph emission *)

type abort_reason = Deadlock | Timeout

type sim = {
  table : Table.t;
  queue : event Event_queue.t;
  config : config;
  states : job_state array;
  mutable deadlock_aborts : int;
  mutable timeout_aborts : int;
  mutable crashed : int;
  obs : Obs.Sink.t option;
  mutable now : int;  (* virtual time of the event being handled *)
}

let state_of sim txn = sim.states.(txn - 1)

let emit sim kind =
  match sim.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

(* Wake every job whose queued request was just granted. *)
let rec process_grants sim time grants =
  List.iter
    (fun grant ->
      let state = state_of sim grant.Table.g_txn in
      match state.status, state.waiting_on with
      | Waiting, Some resource when String.equal resource grant.Table.g_resource ->
        state.status <- Locking;
        state.waiting_on <- None;
        state.total_wait <- state.total_wait + (time - state.blocked_since);
        Event_queue.schedule sim.queue ~time (Resume state)
      | ( (Idle | Locking | Waiting | Accessing | Committed | Gave_up | Crashed),
          _ ) ->
        ())
    grants

and abort_and_restart sim time ~reason state =
  (* A job victimized while blocked has been waiting since [blocked_since];
     that time is real delay and must survive the abort (the restart resets
     everything else). *)
  let blocked_wait =
    match state.status, state.waiting_on with
    | Waiting, Some _ -> time - state.blocked_since
    | _, _ -> 0
  in
  let waited_on =
    match state.waiting_on with Some resource -> resource | None -> ""
  in
  let cancel_grants = Table.cancel_wait sim.table ~txn:state.txn in
  let release_grants = Table.release_all sim.table ~txn:state.txn in
  state.total_wait <- state.total_wait + blocked_wait;
  state.waiting_on <- None;
  state.pending <- [];
  state.step_index <- 0;
  state.restarts <- state.restarts + 1;
  let stats = Table.stats sim.table in
  (match reason with
   | Deadlock ->
     sim.deadlock_aborts <- sim.deadlock_aborts + 1;
     stats.Lockmgr.Lock_stats.victim_aborts <-
       stats.Lockmgr.Lock_stats.victim_aborts + 1;
     emit sim
       (Obs.Event.Victim_aborted { txn = state.txn; restarts = state.restarts })
   | Timeout ->
     sim.timeout_aborts <- sim.timeout_aborts + 1;
     stats.Lockmgr.Lock_stats.timeout_aborts <-
       stats.Lockmgr.Lock_stats.timeout_aborts + 1;
     emit sim
       (Obs.Event.Timeout_abort
          { txn = state.txn; resource = waited_on; waited = blocked_wait;
            lu = Table.resource_lu sim.table waited_on }));
  if state.restarts > sim.config.max_restarts then begin
    state.status <- Gave_up;
    (* record when the job abandoned, so response time accounts for it *)
    state.commit_time <- time;
    emit sim (Obs.Event.Txn_abort { txn = state.txn; reason = "gave_up" })
  end
  else begin
    state.status <- Idle;
    let delay =
      Policy.delay sim.config.backoff ~restarts:state.restarts ~txn:state.txn
    in
    Event_queue.schedule sim.queue ~time:(time + delay) (Restart state)
  end;
  process_grants sim time (cancel_grants @ release_grants)

(* A faulted job dies for good: everything is released, nothing restarts. *)
and crash sim time ~reason state =
  let blocked_wait =
    match state.status, state.waiting_on with
    | Waiting, Some _ -> time - state.blocked_since
    | _, _ -> 0
  in
  let cancel_grants = Table.cancel_wait sim.table ~txn:state.txn in
  let release_grants = Table.release_all sim.table ~txn:state.txn in
  state.total_wait <- state.total_wait + blocked_wait;
  state.waiting_on <- None;
  state.pending <- [];
  state.status <- Crashed;
  state.commit_time <- time;
  sim.crashed <- sim.crashed + 1;
  emit sim (Obs.Event.Txn_abort { txn = state.txn; reason });
  process_grants sim time (cancel_grants @ release_grants)

(* Returns [true] when [requester] itself was sacrificed. *)
and resolve_deadlocks sim time requester =
  match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges sim.table) with
  | None -> false
  | Some cycle ->
    let stats = Table.stats sim.table in
    stats.Lockmgr.Lock_stats.deadlocks <-
      stats.Lockmgr.Lock_stats.deadlocks + 1;
    emit sim (Obs.Event.Deadlock_detected { cycle });
    let candidates =
      List.map
        (fun txn ->
          let state = state_of sim txn in
          { Policy.txn; birth = state.job.arrival;
            locks_held = List.length (Table.locks_of sim.table ~txn);
            work_done = state.step_index })
        cycle
    in
    let victim_txn = Policy.choose_victim sim.config.victim candidates in
    let victim = state_of sim victim_txn in
    abort_and_restart sim time ~reason:Deadlock victim;
    if victim_txn = requester then true else resolve_deadlocks sim time requester

let begin_wait sim time state resource =
  state.status <- Waiting;
  state.waiting_on <- Some resource;
  state.blocked_since <- time;
  state.wait_epoch <- state.wait_epoch + 1;
  match Policy.timeout_of sim.config.resolution with
  | None -> ()
  | Some timeout ->
    Event_queue.schedule sim.queue ~time:(time + timeout)
      (Timeout_check (state, state.wait_epoch))

let rec continue_locking sim time state =
  match state.pending with
  | [] -> begin
    match List.nth_opt state.job.steps state.step_index with
    | None ->
      (* all steps done: commit *)
      state.status <- Committed;
      state.commit_time <- time;
      emit sim (Obs.Event.Txn_commit { txn = state.txn });
      process_grants sim time (Table.release_all sim.table ~txn:state.txn)
    | Some step -> (
      match state.fate with
      | Fault.Crash_at crash_step when crash_step = state.step_index ->
        (* dies with this step's locks held — the worst moment *)
        crash sim time ~reason:"crash" state
      | Fault.Hog when state.step_index = 0 ->
        (* sits on its first step's locks without committing until the
           runner's hold limit forces a crash-release *)
        state.status <- Accessing;
        Event_queue.schedule sim.queue ~time:(time + sim.config.hog_hold)
          (Hog_release state)
      | Fault.Stall factor ->
        state.status <- Accessing;
        Event_queue.schedule sim.queue
          ~time:(time + (step.access_cost * factor))
          (Finish state)
      | Fault.Normal | Fault.Crash_at _ | Fault.Hog ->
        state.status <- Accessing;
        Event_queue.schedule sim.queue ~time:(time + step.access_cost)
          (Finish state))
  end
  | request :: rest -> (
    let resource = Technique.(Colock.Node_id.to_resource request.node) in
    let deadline =
      match Policy.timeout_of sim.config.resolution with
      | None -> None
      | Some timeout -> Some (time + timeout)
    in
    match
      Table.request sim.table ~txn:state.txn ?deadline ~resource
        request.Technique.mode
    with
    | Table.Granted ->
      state.pending <- rest;
      continue_locking sim time state
    | Table.Waiting _blockers ->
      begin_wait sim time state resource;
      state.pending <- rest;
      if Policy.detects sim.config.resolution then begin
        let self_aborted = resolve_deadlocks sim time state.txn in
        if not self_aborted then ()  (* stays queued; a grant will resume it *)
      end)

let start_step sim time state =
  match List.nth_opt state.job.steps state.step_index with
  | None -> continue_locking sim time state  (* zero-step job commits *)
  | Some step ->
    state.status <- Locking;
    state.pending <- step.plan state.txn;
    emit sim (Obs.Event.Sim_step { txn = state.txn; step = state.step_index });
    continue_locking sim time state

let handle sim time = function
  | Begin state -> (
    match state.status with
    | Idle ->
      emit sim (Obs.Event.Txn_begin { txn = state.txn });
      start_step sim time state
    | Locking | Waiting | Accessing | Committed | Gave_up | Crashed -> ())
  | Restart state -> (
    match state.status with
    | Idle -> start_step sim time state
    | Locking | Waiting | Accessing | Committed | Gave_up | Crashed -> ())
  | Resume state -> (
    match state.status with
    | Locking -> continue_locking sim time state
    | Idle | Waiting | Accessing | Committed | Gave_up | Crashed -> ())
  | Finish state -> (
    match state.status with
    | Accessing ->
      state.step_index <- state.step_index + 1;
      state.pending <- [];
      start_step sim time state
    | Idle | Locking | Waiting | Committed | Gave_up | Crashed -> ())
  | Timeout_check (state, epoch) -> (
    (* the check is only live if the job is still in the very wait it was
       armed for — a grant, abort or restart bumps the epoch or status *)
    match state.status with
    | Waiting when state.wait_epoch = epoch ->
      abort_and_restart sim time ~reason:Timeout state
    | Idle | Locking | Waiting | Accessing | Committed | Gave_up | Crashed ->
      ())
  | Hog_release state -> (
    match state.status with
    | Accessing -> crash sim time ~reason:"hog" state
    | Idle | Locking | Waiting | Committed | Gave_up | Crashed -> ())
  | Snapshot -> (
    emit sim (Obs.Event.Waits_for { edges = Table.waits_for_edges sim.table });
    (* only reschedule while real work remains queued, or the drain loop
       would follow snapshots forever *)
    match sim.config.snapshot_every with
    | Some period when not (Event_queue.is_empty sim.queue) ->
      Event_queue.schedule sim.queue ~time:(time + period) Snapshot
    | Some _ | None -> ())

(* Chaos-run oracle: after every event the table must be structurally sound,
   every blocked job must really be queued, and — when detection runs — the
   waits-for graph must be acyclic (cycles legitimately persist until their
   deadline under pure timeouts). *)
let audit sim time =
  (match Table.check_invariants sim.table with
   | [] -> ()
   | violations ->
     failwith
       (Printf.sprintf "lock table invariants violated at t=%d: %s" time
          (String.concat "; " violations)));
  if Policy.detects sim.config.resolution then begin
    match
      Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges sim.table)
    with
    | None -> ()
    | Some cycle ->
      failwith
        (Printf.sprintf "unresolved deadlock at t=%d: [%s]" time
           (String.concat " " (List.map string_of_int cycle)))
  end;
  Array.iter
    (fun state ->
      match state.status with
      | Waiting ->
        if Table.waiting_of sim.table ~txn:state.txn = [] then
          failwith
            (Printf.sprintf "T%d marked waiting but queued nowhere at t=%d"
               state.txn time)
      | Idle | Locking | Accessing | Committed | Gave_up | Crashed -> ())
    sim.states

let run ?(config = default_config) ?(faults = Fault.none)
    ?(on_begin = fun _txn -> ()) ?obs ~table jobs =
  let obs = match obs with Some _ -> obs | None -> Table.obs table in
  let states =
    Array.of_list
      (List.mapi
         (fun index job ->
           let txn = index + 1 in
           { txn; job; fate = Fault.fate faults ~txn ~steps:(List.length job.steps);
             step_index = 0; pending = []; waiting_on = None; blocked_since = 0;
             wait_epoch = 0; total_wait = 0; restarts = 0; status = Idle;
             commit_time = 0 })
         jobs)
  in
  let sim =
    { table; queue = Event_queue.create (); config; states;
      deadlock_aborts = 0; timeout_aborts = 0; crashed = 0; obs; now = 0 }
  in
  (* Events emitted during a run — including the lock table's own — carry
     virtual simulation time, not the sink's wall-clock default. *)
  (match obs with
   | Some sink -> Obs.Sink.set_clock sink (fun () -> float_of_int sim.now)
   | None -> ());
  Array.iter
    (fun state ->
      on_begin state.txn;
      Event_queue.schedule sim.queue ~time:state.job.arrival (Begin state))
    states;
  (match config.snapshot_every with
   | Some period when period > 0 && Array.length states > 0 ->
     Event_queue.schedule sim.queue ~time:period Snapshot
   | Some _ | None -> ());
  let last_time = ref 0 in
  let rec drain () =
    match Event_queue.pop sim.queue with
    | None -> ()
    | Some (time, event) ->
      last_time := max !last_time time;
      (match config.on_advance with
       | Some hook when time > sim.now -> hook time
       | Some _ | None -> ());
      sim.now <- time;
      handle sim time event;
      if config.check_invariants then audit sim time;
      drain ()
  in
  drain ();
  let committed = ref 0 and gave_up = ref 0 and crashed = ref 0 in
  let total_response = ref 0 and total_wait = ref 0 in
  let makespan = ref 0 in
  Array.iter
    (fun state ->
      (match state.status with
       | Committed ->
         incr committed;
         total_response := !total_response + (state.commit_time - state.job.arrival);
         makespan := max !makespan state.commit_time
       | Gave_up ->
         incr gave_up;
         (* the give-up moment was recorded in commit_time, so abandoned
            jobs count toward response time instead of skewing the mean *)
         total_response :=
           !total_response + (state.commit_time - state.job.arrival)
       | Crashed ->
         incr crashed;
         total_response :=
           !total_response + (state.commit_time - state.job.arrival)
       | Idle | Locking | Waiting | Accessing -> ());
      total_wait := !total_wait + state.total_wait)
    states;
  let stats = Table.stats table in
  { Metrics.committed = !committed;
    deadlock_aborts = sim.deadlock_aborts;
    timeout_aborts = sim.timeout_aborts;
    gave_up = !gave_up;
    crashed = !crashed;
    makespan = !makespan;
    total_response = !total_response;
    total_wait = !total_wait;
    lock_requests = stats.Lockmgr.Lock_stats.requests;
    conflict_tests = stats.Lockmgr.Lock_stats.conflict_tests;
    peak_lock_entries = Table.peak_entry_count table;
    escalations = stats.Lockmgr.Lock_stats.escalations }
