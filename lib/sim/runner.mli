(** The discrete-event concurrency simulator.

    Jobs are transactions described as sequences of steps; a step acquires a
    lock plan and then holds the locks while "accessing data" for a fixed
    simulated duration. Strict 2PL: everything is released at commit.
    Blocked jobs sit in the lock table's queues; releases wake them. Waits-
    for cycles abort a victim, which restarts after a back-off with the same
    transaction id (so authorization assignments are stable). The run is
    fully deterministic.

    Plans are transaction-id-indexed functions, so the same scenario runs
    unchanged under the proposed protocol (whose plans depend on the
    transaction's rights) and under the baselines. *)

type step = {
  plan : Lockmgr.Lock_table.txn_id -> Baselines.Technique.request list;
  access_cost : int;
}

type job = {
  arrival : int;
  steps : step list;
}

type config = {
  deadlock_backoff : int;  (** delay before a victim restarts *)
  max_restarts : int;  (** per job; exhausted jobs count as [gave_up] *)
}

val default_config : config
(** backoff 50, max 20 restarts. *)

val run :
  ?config:config -> ?on_begin:(Lockmgr.Lock_table.txn_id -> unit) ->
  ?obs:Obs.Sink.t -> table:Lockmgr.Lock_table.t -> job list -> Metrics.t
(** [on_begin] fires once per job with its transaction id before its first
    step (e.g. to install authorization rights). Job [i] (0-based) gets
    transaction id [i + 1].

    [?obs] (default: the table's own sink) receives simulation lifecycle
    events (txn begin/commit, steps, deadlocks, victim aborts, give-ups).
    The sink's clock is re-pointed at virtual simulation time for the
    duration of the run, so lock events emitted by the table line up with
    the simulator's integer ticks. *)
