(** The discrete-event concurrency simulator.

    Jobs are transactions described as sequences of steps; a step acquires a
    lock plan and then holds the locks while "accessing data" for a fixed
    simulated duration. Strict 2PL: everything is released at commit.
    Blocked jobs sit in the lock table's queues; releases wake them. How
    collisions resolve is policy ({!Lockmgr.Policy}): waits-for detection,
    lock-wait timeouts, or both, with pluggable victim selection and restart
    backoff. Victims restart with the same transaction id (so authorization
    assignments are stable). The run is fully deterministic, including
    jittered backoff and injected faults ({!Fault}).

    Plans are transaction-id-indexed functions, so the same scenario runs
    unchanged under the proposed protocol (whose plans depend on the
    transaction's rights) and under the baselines. *)

type step = {
  plan : Lockmgr.Lock_table.txn_id -> Baselines.Technique.request list;
  access_cost : int;
}

type job = {
  arrival : int;
  priority : Robust.Admission.priority;
      (** admission class under overload control: checkout sessions run
          [High], updates [Normal], read-only work [Low]. Ignored (but
          carried) when no [overload] config is set. *)
  steps : step list;
}

type overload = {
  admission : Robust.Admission.config option;
      (** AIMD concurrency limit + bounded priority entry queue; [None]
          disables the gate (restart policies et al. still apply) *)
  controller : Robust.Controller.config;
      (** closed-loop sensing: how often to sample the run's monitor and
          what signal levels count as overload *)
  budget : Robust.Budget.config option;  (** retry token bucket *)
  breaker : Robust.Breaker.config option;  (** abort-storm circuit breaker *)
}

val default_overload : overload
(** Default admission gate and controller; no retry budget, no breaker. *)

type config = {
  max_restarts : int;  (** per job; exhausted jobs count as [gave_up] *)
  resolution : Lockmgr.Policy.resolution;
      (** how blocked-forever situations are resolved *)
  victim : Lockmgr.Policy.victim;  (** who dies when a cycle is found *)
  backoff : Lockmgr.Policy.backoff;  (** restart delay for victims *)
  restart : Lockmgr.Policy.restart;
      (** contention-control restart policy applied the moment a request
          starts waiting (WDL / running-priority), independent of and
          before deadlock [resolution] *)
  hog_hold : int;
      (** ticks a {!Fault.Hog} job sits on its locks before it is forced to
          crash-release them (bounds chaos runs even without detection) *)
  check_invariants : bool;
      (** audit the lock table and job states after {e every} event; any
          violation raises [Failure] (chaos-test oracle — expensive) *)
  snapshot_every : int option;
      (** emit an {!Obs.Event.Waits_for} wait-for-graph snapshot every this
          many virtual ticks (deadlock structure over time, not just at
          detection); [None] disables. Snapshots stop once the event queue
          drains, so runs still terminate. *)
  on_advance : (int -> unit) option;
      (** called with the new virtual time whenever the clock is about to
          advance (before the event at that time is handled). Lets a caller
          pace the simulation against wall time — e.g. [colock simulate
          --serve] sleeping so a live [/metrics] endpoint shows the run
          unfolding — without the simulator depending on [Unix]. *)
  overload : overload option;
      (** closed-loop overload control. When set, job begins pass an
          admission gate (shed work shows up as [Metrics.shed] and
          [Admission] events), an AIMD controller re-sizes the concurrency
          limit from live monitor windows, and restarts are subject to the
          retry budget and circuit breaker. [None]: the engine behaves
          exactly as before. *)
}

val default_config : config
(** Detection, youngest victim, fixed backoff 50, no restart policy, max 20
    restarts, hog hold 4000, no invariant checking, no snapshots, no pacing
    hook, no overload control. *)

val run :
  ?config:config -> ?faults:Fault.spec ->
  ?on_begin:(Lockmgr.Lock_table.txn_id -> unit) ->
  ?obs:Obs.Sink.t -> table:Lockmgr.Lock_table.t -> job list -> Metrics.t
(** [on_begin] fires once per job with its transaction id before its first
    step (e.g. to install authorization rights). Job [i] (0-based) gets
    transaction id [i + 1].

    [?faults] (default {!Fault.none}) assigns each job a seeded fate:
    crashed jobs die holding their locks, stalled jobs access slowly, hog
    jobs camp on their first step's locks until [hog_hold] expires.

    [?obs] (default: the table's own sink) receives simulation lifecycle
    events (txn begin/commit, steps, deadlocks, victim and timeout aborts,
    give-ups). The sink's clock is re-pointed at virtual simulation time
    for the duration of the run, so lock events emitted by the table line
    up with the simulator's integer ticks. *)
