(** Aggregated results of one simulation run. *)

type t = {
  committed : int;
  deadlock_aborts : int;  (** victim aborts (the work restarts) *)
  timeout_aborts : int;  (** lock-wait timeout aborts (the work restarts) *)
  gave_up : int;  (** jobs that exhausted their restart budget *)
  crashed : int;  (** jobs killed by fault injection (crash or hog release) *)
  makespan : int;  (** completion time of the last commit *)
  total_response : int;
      (** sum over finished (committed, gave-up or crashed) jobs of
          finish - arrival *)
  total_wait : int;  (** total time spent blocked *)
  lock_requests : int;
  conflict_tests : int;
  peak_lock_entries : int;
  escalations : int;
}

val throughput : t -> float
(** committed jobs per 1000 time units. *)

val avg_response : t -> float
(** [total_response] per finished job — committed, gave-up and crashed jobs
    all count, so abandoned work cannot flatter the mean. *)

val pp : Format.formatter -> t -> unit

val row :
  t -> (string * float) list
(** Stable key-value view for tabular output. *)
