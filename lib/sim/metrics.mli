(** Aggregated results of one simulation run. *)

type t = {
  committed : int;
  deadlock_aborts : int;  (** victim aborts (the work restarts) *)
  timeout_aborts : int;  (** lock-wait timeout aborts (the work restarts) *)
  wdl_aborts : int;
      (** restart-policy aborts (wait-depth limit / running priority; the
          work restarts) *)
  gave_up : int;
      (** jobs that exhausted their restart budget (or were refused a
          retry by the overload retry budget) *)
  crashed : int;  (** jobs killed by fault injection (crash or hog release) *)
  shed : int;  (** jobs refused (or evicted) by admission control *)
  retry_denied : int;  (** restarts refused by the retry budget *)
  makespan : int;  (** completion time of the last commit *)
  total_response : int;
      (** sum over finished (committed, gave-up, crashed or shed) jobs of
          finish - arrival *)
  total_wait : int;  (** total time spent blocked *)
  lock_requests : int;
  conflict_tests : int;
  peak_lock_entries : int;
  escalations : int;
}

val throughput : t -> float
(** committed jobs per 1000 time units. *)

val avg_response : t -> float
(** [total_response] per finished job — committed, gave-up and crashed jobs
    all count, so abandoned work cannot flatter the mean. *)

val pp : Format.formatter -> t -> unit

val row :
  t -> (string * float) list
(** Stable key-value view for tabular output. *)
