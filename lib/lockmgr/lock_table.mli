(** A transaction-oriented lock table with wait queues and conversions.

    The table is protocol-agnostic: resources are opaque strings (the lock
    technique of the paper maps its lockable units to hierarchical path
    strings). It is a purely synchronous data structure — a request either is
    granted or queues, and releases report which queued requests became
    granted — so callers (tests, the discrete-event simulator, the
    transaction manager) own time and scheduling, and runs stay
    deterministic. *)

type txn_id = int

type duration =
  | Short  (** released at end of (conventional) transaction *)
  | Long  (** check-out lock that must survive shutdowns (§3.1) *)

type t

type outcome =
  | Granted
  | Waiting of txn_id list
      (** enqueued; the listed transactions block this request *)

type grant = { g_txn : txn_id; g_resource : string; g_mode : Lock_mode.t }
(** A queued request that became granted after a release. *)

val create :
  ?obs:Obs.Sink.t -> ?meta:(string -> Obs.Event.lu option) -> unit -> t
(** [?obs] attaches an observability sink: the table emits
    {!Obs.Event.kind} lock-lifecycle events (requested / granted / waited /
    released / conversion) through it. Omitted means zero overhead.

    [?meta] resolves a resource string to its lockable-unit annotation
    (granule kind and depth); every lock event the table emits for that
    resource carries the result. The table itself knows nothing about lock
    graphs, so the default resolves everything to [None] — the colock
    protocol installs the real resolver via {!set_meta}. *)

val stats : t -> Lock_stats.t

val obs : t -> Obs.Sink.t option
(** The sink passed to {!create}, so higher layers (protocol, transaction
    manager) can inherit it. *)

val set_meta : t -> (string -> Obs.Event.lu option) -> unit
(** Replaces the lockable-unit resolver (see {!create}). *)

val resource_lu : t -> string -> Obs.Event.lu option
(** Resolves a resource through the installed [meta] — for emitters above
    the table (timeout aborts, snapshots) that tag their own events. *)

val request :
  t -> txn:txn_id -> ?duration:duration -> ?deadline:int -> resource:string ->
  Lock_mode.t -> outcome
(** Requests (or converts to) the supremum of the given mode and the mode
    already held. FIFO fairness: a fresh request waits while the queue is
    non-empty; conversions jump the queue (standard upgrade handling). A
    request for a mode already covered is a no-op grant.

    [?deadline] stamps the queued request with an absolute tick after which
    the wait should be abandoned; the table only records it (see
    {!expired_waiters}) — enforcing the timeout is the caller's job (the
    transaction manager or the simulator own time). *)

val try_request :
  t -> txn:txn_id -> ?duration:duration -> resource:string -> Lock_mode.t ->
  [ `Granted | `Would_block of txn_id list ]
(** Like {!request} but never enqueues: either grants immediately or reports
    the blockers. *)

val release : t -> txn:txn_id -> resource:string -> grant list
(** Releases one lock (leaf-to-root release, de-escalation); returns the
    requests newly granted from the queue. Releasing a lock that is not held
    is a no-op. *)

val downgrade : t -> txn:txn_id -> resource:string -> Lock_mode.t -> grant list
(** Replaces the held mode by a weaker one (de-escalation support); no-op when
    nothing stronger is held. Returns newly granted queued requests. *)

val cancel_wait : t -> txn:txn_id -> grant list
(** Withdraws every queued (not yet granted) request of the transaction, e.g.
    on deadlock abort; returns requests that became grantable. *)

val release_all : t -> txn:txn_id -> grant list
(** End of transaction: drops every lock and queued request of [txn]. Long
    locks are dropped too — keeping them across commits is the transaction
    manager's job ({!val:release_short} below). *)

val release_short : t -> txn:txn_id -> grant list
(** Drops only the [Short]-duration locks of [txn] (commit of a check-out
    transaction that keeps its long locks). *)

val held : t -> txn:txn_id -> resource:string -> Lock_mode.t
(** Mode held (NL when none). *)

val holders : t -> resource:string -> (txn_id * Lock_mode.t) list
val locks_of : t -> txn:txn_id -> (string * Lock_mode.t * duration) list
(** Sorted by resource. *)

val waiting_of : t -> txn:txn_id -> (string * Lock_mode.t) list
val resources : t -> string list
(** Resources with at least one granted or waiting entry, sorted. *)

val entry_count : t -> int
(** Currently granted lock entries. *)

val peak_entry_count : t -> int
(** High-water mark of {!entry_count} — "the number of the lock table
    entries" of §4.4.2.1. *)

val waiter_count : t -> int
(** Queued (not yet granted) requests across all resources — the live
    wait-queue depth a monitor gauge should agree with. *)

val waits_for_edges : t -> (txn_id * txn_id) list
(** Edges [waiter -> blocker] for deadlock detection: each queued request
    waits for the incompatible holders and for incompatible earlier
    waiters. *)

val wait_depth : t -> txn:txn_id -> int
(** Length of the longest blocker chain hanging off [txn] in the waits-for
    graph (0 when [txn] waits for nobody). This is the quantity Thomasian's
    wait-depth-limited restart policy bounds; cycles count once, so the
    result is finite even mid-deadlock. *)

val expired_waiters : t -> now:int -> (txn_id * string) list
(** Queued requests whose {!request} deadline has passed ([now >= deadline]),
    sorted; transactions listed here are candidates for a timeout abort. *)

val check_invariants : t -> string list
(** Structural soundness audit, for chaos tests and debugging: no two
    conflicting granted modes on one resource, no duplicate grants or queue
    entries, every queue head has a live blocker (no lost wakeups), the
    entry count matches the granted entries, and the per-transaction index
    agrees with the entries in both directions. Returns human-readable
    violations (empty means sound). Does not touch {!stats}. *)

val pp : Format.formatter -> t -> unit
