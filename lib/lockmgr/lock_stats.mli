(** Counters describing the work a lock table performed.

    The paper's qualitative evaluation (§4.6) argues in terms of "overhead
    caused by the administration of locks and conflict tests"; these counters
    make that overhead measurable. *)

type t = {
  mutable requests : int;  (** lock requests received *)
  mutable immediate_grants : int;  (** granted without waiting *)
  mutable waits : int;  (** requests that had to queue *)
  mutable conversions : int;  (** grants that upgraded an existing lock *)
  mutable conflict_tests : int;  (** compatibility tests executed *)
  mutable releases : int;  (** lock entries released *)
  mutable escalations : int;  (** run-time lock escalations (set by clients) *)
  mutable deescalations : int;  (** lock de-escalations (set by clients) *)
  mutable deadlocks : int;  (** waits-for cycles detected (set by clients) *)
  mutable victim_aborts : int;
      (** transactions sacrificed to break a cycle (set by clients) *)
  mutable timeout_aborts : int;
      (** transactions aborted by a lock-wait timeout (set by clients) *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val add : t -> t -> t
(** Component-wise sum (fresh record). *)

val row : t -> (string * float) list
(** Stable key-value view mirroring [Sim.Metrics.row], so both stats records
    serialize uniformly (tables, JSON exports). *)

val pp : Format.formatter -> t -> unit
