module Int_map = Map.Make (Int)

let find_cycle ~edges =
  let successors =
    List.fold_left
      (fun accu (source, target) ->
        let known =
          match Int_map.find_opt source accu with
          | None -> []
          | Some targets -> targets
        in
        Int_map.add source (target :: known) accu)
      Int_map.empty edges
  in
  let successors_of node =
    match Int_map.find_opt node successors with
    | None -> []
    | Some targets -> List.sort_uniq Int.compare targets
  in
  let nodes =
    List.concat_map (fun (source, target) -> [ source; target ]) edges
    |> List.sort_uniq Int.compare
  in
  let finished = Hashtbl.create 16 in
  (* DFS keeping the trail (most recent first) plus a mirror set for O(1)
     membership, so detection stays near-linear on the long waiter chains
     chaos runs produce; a back edge into the trail closes a cycle. *)
  let on_trail = Hashtbl.create 16 in
  let rec visit trail node =
    if Hashtbl.mem on_trail node then
      let rec cycle_from accu = function
        | [] -> accu
        | head :: rest ->
          if head = node then head :: accu else cycle_from (head :: accu) rest
      in
      Some (cycle_from [] trail)
    else if Hashtbl.mem finished node then None
    else begin
      Hashtbl.add finished node ();
      Hashtbl.add on_trail node ();
      let found =
        List.fold_left
          (fun found successor ->
            match found with
            | Some _ -> found
            | None -> visit (node :: trail) successor)
          None (successors_of node)
      in
      Hashtbl.remove on_trail node;
      found
    end
  in
  List.fold_left
    (fun found node ->
      match found with Some _ -> found | None -> visit [] node)
    None nodes

let choose_victim ?(priority = fun txn -> -txn) cycle =
  match cycle with
  | [] -> invalid_arg "Deadlock.choose_victim: empty cycle"
  | first :: rest ->
    List.fold_left
      (fun victim candidate ->
        let victim_key = (priority victim, -victim) in
        let candidate_key = (priority candidate, -candidate) in
        if compare candidate_key victim_key < 0 then candidate else victim)
      first rest
