let log_src = Logs.Src.create "lockmgr.table" ~doc:"lock table decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

type txn_id = int
type duration = Short | Long

type waiter = {
  w_txn : txn_id;
  w_mode : Lock_mode.t;  (* target mode (for conversions: the converted mode) *)
  w_duration : duration;
  w_conversion : bool;
  w_deadline : int option;  (* wait abandoned past this tick (timeouts) *)
  w_holders : Obs.Event.holder list;
      (* the granted group that blocked this request at enqueue time, so the
         eventual queue-served grant can report who it was stuck behind *)
}

type entry = {
  mutable granted : (txn_id * Lock_mode.t * duration) list;
      (* at most one triple per transaction *)
  mutable waiting : waiter list;  (* FIFO, head served first *)
}

module String_set = Set.Make (String)

type t = {
  entries : (string, entry) Hashtbl.t;
  by_txn : (txn_id, String_set.t) Hashtbl.t;
      (* resources where the txn holds or waits *)
  stats : Lock_stats.t;
  mutable entry_count : int;
  mutable peak_entry_count : int;
  obs : Obs.Sink.t option;
  mutable meta : string -> Obs.Event.lu option;
      (* resolves a resource to its lockable-unit annotation; the table is
         protocol-agnostic, so whoever owns the lock graph installs this *)
}

type outcome = Granted | Waiting of txn_id list
type grant = { g_txn : txn_id; g_resource : string; g_mode : Lock_mode.t }

let create ?obs ?(meta = fun _resource -> None) () =
  { entries = Hashtbl.create 256; by_txn = Hashtbl.create 64;
    stats = Lock_stats.create (); entry_count = 0; peak_entry_count = 0; obs;
    meta }

let stats table = table.stats
let obs table = table.obs
let set_meta table meta = table.meta <- meta
let resource_lu table resource = table.meta resource

let emit table kind =
  match table.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

let entry_of table resource =
  match Hashtbl.find_opt table.entries resource with
  | Some entry -> entry
  | None ->
    let entry = { granted = []; waiting = [] } in
    Hashtbl.replace table.entries resource entry;
    entry

let index_txn table txn resource =
  let seen =
    match Hashtbl.find_opt table.by_txn txn with
    | None -> String_set.empty
    | Some seen -> seen
  in
  Hashtbl.replace table.by_txn txn (String_set.add resource seen)

let unindex_txn table txn resource entry =
  let still_present =
    List.exists (fun (holder, _mode, _duration) -> holder = txn) entry.granted
    || List.exists (fun waiter -> waiter.w_txn = txn) entry.waiting
  in
  if not still_present then
    match Hashtbl.find_opt table.by_txn txn with
    | None -> ()
    | Some seen ->
      let seen = String_set.remove resource seen in
      if String_set.is_empty seen then Hashtbl.remove table.by_txn txn
      else Hashtbl.replace table.by_txn txn seen

let drop_entry_if_empty table resource entry =
  match entry.granted, entry.waiting with
  | [], [] -> Hashtbl.remove table.entries resource
  | _, _ -> ()

let held_triple entry txn =
  List.find_opt (fun (holder, _mode, _duration) -> holder = txn) entry.granted

(* Conflict test against every *other* holder; counts each test. *)
let compatible_with_others table entry txn mode =
  List.for_all
    (fun (holder, held_mode, _duration) ->
      if holder = txn then true
      else begin
        table.stats.Lock_stats.conflict_tests <-
          table.stats.Lock_stats.conflict_tests + 1;
        Lock_mode.compatible mode held_mode
      end)
    entry.granted

let incompatible_holders entry txn mode =
  List.filter_map
    (fun (holder, held_mode, _duration) ->
      if holder <> txn && not (Lock_mode.compatible mode held_mode) then
        Some (holder, held_mode)
      else None)
    entry.granted
  |> List.sort compare

(* The incompatible granted group as event payload: txn, held mode, and the
   resource's lockable-unit annotation. *)
let blocking_holders table entry txn mode resource =
  let lu = table.meta resource in
  List.map
    (fun (holder, held_mode) ->
      { Obs.Event.h_txn = holder; h_mode = Lock_mode.to_string held_mode;
        h_lu = lu })
    (incompatible_holders entry txn mode)

let sup_duration a b =
  match a, b with Long, _ | _, Long -> Long | Short, Short -> Short

let install_grant table entry txn mode duration resource =
  match held_triple entry txn with
  | Some (_txn, old_mode, old_duration) ->
    entry.granted <-
      List.map
        (fun ((holder, _m, _d) as triple) ->
          if holder = txn then
            (txn, Lock_mode.sup old_mode mode, sup_duration old_duration duration)
          else triple)
        entry.granted;
    if not (Lock_mode.leq mode old_mode) then begin
      table.stats.Lock_stats.conversions <-
        table.stats.Lock_stats.conversions + 1;
      emit table
        (Obs.Event.Conversion
           { txn; resource; from_mode = Lock_mode.to_string old_mode;
             to_mode = Lock_mode.to_string (Lock_mode.sup old_mode mode);
             lu = table.meta resource })
    end
  | None ->
    entry.granted <- (txn, mode, duration) :: entry.granted;
    table.entry_count <- table.entry_count + 1;
    if table.entry_count > table.peak_entry_count then
      table.peak_entry_count <- table.entry_count;
    index_txn table txn resource

(* Serve the queue head(s) after a release/downgrade.  Conversions were
   enqueued in front, so plain head-of-queue draining preserves both upgrade
   priority and FIFO fairness. *)
let drain table resource entry =
  let rec serve served =
    match entry.waiting with
    | [] -> served
    | head :: rest ->
      if compatible_with_others table entry head.w_txn head.w_mode then begin
        entry.waiting <- rest;
        install_grant table entry head.w_txn head.w_mode head.w_duration
          resource;
        serve
          (( { g_txn = head.w_txn; g_resource = resource;
               g_mode = head.w_mode },
             head.w_holders )
          :: served)
      end
      else served
  in
  let served = List.rev (serve []) in
  drop_entry_if_empty table resource entry;
  List.iter
    (fun (grant, holders) ->
      emit table
        (Obs.Event.Lock_granted
           { txn = grant.g_txn; resource = grant.g_resource;
             mode = Lock_mode.to_string grant.g_mode; immediate = false;
             lu = table.meta grant.g_resource; holders }))
    served;
  List.map fst served

let enqueue entry waiter =
  if waiter.w_conversion then begin
    (* Conversions go before plain requests but after earlier conversions. *)
    let conversions, plain =
      List.partition (fun queued -> queued.w_conversion) entry.waiting
    in
    entry.waiting <- conversions @ [ waiter ] @ plain
  end
  else entry.waiting <- entry.waiting @ [ waiter ]

let already_waiting entry txn =
  List.exists (fun waiter -> waiter.w_txn = txn) entry.waiting

let request table ~txn ?(duration = Short) ?deadline ~resource mode =
  table.stats.Lock_stats.requests <- table.stats.Lock_stats.requests + 1;
  emit table
    (Obs.Event.Lock_requested
       { txn; resource; mode = Lock_mode.to_string mode;
         lu = table.meta resource });
  let entry = entry_of table resource in
  let current =
    match held_triple entry txn with
    | Some (_txn, held_mode, _duration) -> held_mode
    | None -> Lock_mode.NL
  in
  let target = Lock_mode.sup current mode in
  if Lock_mode.equal target current then begin
    (* Already covered; refresh duration (a long request must stick). *)
    if duration = Long then
      install_grant table entry txn current Long resource;
    table.stats.Lock_stats.immediate_grants <-
      table.stats.Lock_stats.immediate_grants + 1;
    emit table
      (Obs.Event.Lock_granted
         { txn; resource; mode = Lock_mode.to_string current;
           immediate = true; lu = table.meta resource; holders = [] });
    drop_entry_if_empty table resource entry;
    Granted
  end
  else begin
    let conversion = not (Lock_mode.equal current Lock_mode.NL) in
    let fifo_blocked =
      (not conversion) && entry.waiting <> [] && not (already_waiting entry txn)
    in
    if
      (not fifo_blocked)
      && (not (already_waiting entry txn))
      && compatible_with_others table entry txn target
    then begin
      install_grant table entry txn target duration resource;
      table.stats.Lock_stats.immediate_grants <-
        table.stats.Lock_stats.immediate_grants + 1;
      emit table
        (Obs.Event.Lock_granted
           { txn; resource; mode = Lock_mode.to_string target;
             immediate = true; lu = table.meta resource; holders = [] });
      Log.debug (fun log ->
          log "T%d granted %s on %s" txn (Lock_mode.to_string target) resource);
      Granted
    end
    else begin
      table.stats.Lock_stats.waits <- table.stats.Lock_stats.waits + 1;
      Log.debug (fun log ->
          log "T%d waits for %s on %s" txn (Lock_mode.to_string target)
            resource);
      let holders = blocking_holders table entry txn target resource in
      if not (already_waiting entry txn) then begin
        enqueue entry
          { w_txn = txn; w_mode = target; w_duration = duration;
            w_conversion = conversion; w_deadline = deadline;
            w_holders = holders };
        index_txn table txn resource
      end;
      let blockers =
        match holders with
        | [] ->
          (* Blocked by the FIFO rule only: we wait for whoever waits ahead. *)
          List.filter_map
            (fun waiter -> if waiter.w_txn <> txn then Some waiter.w_txn else None)
            entry.waiting
        | holders -> List.map (fun { Obs.Event.h_txn; _ } -> h_txn) holders
      in
      let blockers = List.sort_uniq Int.compare blockers in
      emit table
        (Obs.Event.Lock_waited
           { txn; resource; mode = Lock_mode.to_string target; blockers;
             lu = table.meta resource; holders });
      Waiting blockers
    end
  end

let try_request table ~txn ?(duration = Short) ~resource mode =
  table.stats.Lock_stats.requests <- table.stats.Lock_stats.requests + 1;
  emit table
    (Obs.Event.Lock_requested
       { txn; resource; mode = Lock_mode.to_string mode;
         lu = table.meta resource });
  let entry = entry_of table resource in
  let current =
    match held_triple entry txn with
    | Some (_txn, held_mode, _duration) -> held_mode
    | None -> Lock_mode.NL
  in
  let target = Lock_mode.sup current mode in
  if Lock_mode.equal target current then begin
    table.stats.Lock_stats.immediate_grants <-
      table.stats.Lock_stats.immediate_grants + 1;
    emit table
      (Obs.Event.Lock_granted
         { txn; resource; mode = Lock_mode.to_string current;
           immediate = true; lu = table.meta resource; holders = [] });
    drop_entry_if_empty table resource entry;
    `Granted
  end
  else begin
    let conversion = not (Lock_mode.equal current Lock_mode.NL) in
    let fifo_blocked = (not conversion) && entry.waiting <> [] in
    if (not fifo_blocked) && compatible_with_others table entry txn target
    then begin
      install_grant table entry txn target duration resource;
      table.stats.Lock_stats.immediate_grants <-
        table.stats.Lock_stats.immediate_grants + 1;
      emit table
        (Obs.Event.Lock_granted
           { txn; resource; mode = Lock_mode.to_string target;
             immediate = true; lu = table.meta resource; holders = [] });
      `Granted
    end
    else begin
      let blockers =
        match incompatible_holders entry txn target with
        | [] ->
          List.filter_map
            (fun waiter -> if waiter.w_txn <> txn then Some waiter.w_txn else None)
            entry.waiting
        | holders -> List.map fst holders
      in
      drop_entry_if_empty table resource entry;
      `Would_block (List.sort_uniq Int.compare blockers)
    end
  end

let release table ~txn ~resource =
  match Hashtbl.find_opt table.entries resource with
  | None -> []
  | Some entry ->
    let held_before = Option.is_some (held_triple entry txn) in
    if held_before then begin
      entry.granted <-
        List.filter (fun (holder, _mode, _duration) -> holder <> txn)
          entry.granted;
      table.entry_count <- table.entry_count - 1;
      table.stats.Lock_stats.releases <- table.stats.Lock_stats.releases + 1;
      emit table
        (Obs.Event.Lock_released { txn; resource; lu = table.meta resource })
    end;
    let served = drain table resource entry in
    unindex_txn table txn resource entry;
    served

let downgrade table ~txn ~resource mode =
  match Hashtbl.find_opt table.entries resource with
  | None -> []
  | Some entry -> (
    match held_triple entry txn with
    | None -> []
    | Some (_txn, held_mode, duration) ->
      if Lock_mode.leq held_mode mode then []
      else begin
        entry.granted <-
          List.map
            (fun ((holder, _m, _d) as triple) ->
              if holder = txn then (txn, mode, duration) else triple)
            entry.granted;
        drain table resource entry
      end)

let resources_of table txn =
  match Hashtbl.find_opt table.by_txn txn with
  | None -> []
  | Some seen -> String_set.elements seen

let cancel_wait table ~txn =
  List.concat_map
    (fun resource ->
      match Hashtbl.find_opt table.entries resource with
      | None -> []
      | Some entry ->
        let was_waiting = already_waiting entry txn in
        if was_waiting then begin
          entry.waiting <-
            List.filter (fun waiter -> waiter.w_txn <> txn) entry.waiting;
          let served = drain table resource entry in
          unindex_txn table txn resource entry;
          served
        end
        else [])
    (resources_of table txn)

let release_matching table ~txn keep_long =
  List.concat_map
    (fun resource ->
      match Hashtbl.find_opt table.entries resource with
      | None -> []
      | Some entry ->
        let dropped_wait = already_waiting entry txn in
        if dropped_wait then
          entry.waiting <-
            List.filter (fun waiter -> waiter.w_txn <> txn) entry.waiting;
        let drop_grant =
          match held_triple entry txn with
          | None -> false
          | Some (_txn, _mode, Long) -> not keep_long
          | Some (_txn, _mode, Short) -> true
        in
        if drop_grant then begin
          entry.granted <-
            List.filter (fun (holder, _mode, _duration) -> holder <> txn)
              entry.granted;
          table.entry_count <- table.entry_count - 1;
          table.stats.Lock_stats.releases <-
            table.stats.Lock_stats.releases + 1;
          emit table
            (Obs.Event.Lock_released
               { txn; resource; lu = table.meta resource })
        end;
        let served =
          if drop_grant || dropped_wait then drain table resource entry else []
        in
        unindex_txn table txn resource entry;
        served)
    (resources_of table txn)

let release_all table ~txn = release_matching table ~txn false
let release_short table ~txn = release_matching table ~txn true

let held table ~txn ~resource =
  match Hashtbl.find_opt table.entries resource with
  | None -> Lock_mode.NL
  | Some entry -> (
    match held_triple entry txn with
    | Some (_txn, mode, _duration) -> mode
    | None -> Lock_mode.NL)

let holders table ~resource =
  match Hashtbl.find_opt table.entries resource with
  | None -> []
  | Some entry ->
    entry.granted
    |> List.map (fun (holder, mode, _duration) -> (holder, mode))
    |> List.sort compare

let locks_of table ~txn =
  resources_of table txn
  |> List.filter_map (fun resource ->
         match Hashtbl.find_opt table.entries resource with
         | None -> None
         | Some entry -> (
           match held_triple entry txn with
           | Some (_txn, mode, duration) -> Some (resource, mode, duration)
           | None -> None))
  |> List.sort compare

let waiting_of table ~txn =
  resources_of table txn
  |> List.filter_map (fun resource ->
         match Hashtbl.find_opt table.entries resource with
         | None -> None
         | Some entry -> (
           match
             List.find_opt (fun waiter -> waiter.w_txn = txn) entry.waiting
           with
           | Some waiter -> Some (resource, waiter.w_mode)
           | None -> None))
  |> List.sort compare

let resources table =
  Hashtbl.fold (fun resource _entry accu -> resource :: accu) table.entries []
  |> List.sort String.compare

let entry_count table = table.entry_count
let peak_entry_count table = table.peak_entry_count

let waiter_count table =
  Hashtbl.fold
    (fun _resource entry count -> count + List.length entry.waiting)
    table.entries 0

let waits_for_edges table =
  let edges = ref [] in
  Hashtbl.iter
    (fun _resource entry ->
      let rec per_waiter earlier = function
        | [] -> ()
        | waiter :: later ->
          List.iter
            (fun (holder, mode, _duration) ->
              if
                holder <> waiter.w_txn
                && not (Lock_mode.compatible waiter.w_mode mode)
              then edges := (waiter.w_txn, holder) :: !edges)
            entry.granted;
          List.iter
            (fun ahead ->
              if
                ahead.w_txn <> waiter.w_txn
                && not (Lock_mode.compatible waiter.w_mode ahead.w_mode)
              then edges := (waiter.w_txn, ahead.w_txn) :: !edges)
            earlier;
          per_waiter (waiter :: earlier) later
      in
      per_waiter [] entry.waiting)
    table.entries;
  List.sort_uniq compare !edges

let wait_depth table ~txn =
  let edges = waits_for_edges table in
  let successors blocked =
    List.filter_map
      (fun (waiter, blocker) -> if waiter = blocked then Some blocker else None)
      edges
  in
  (* longest blocker chain below [txn]; [visited] makes deadlock cycles
     contribute finite depth instead of diverging *)
  let rec depth visited t =
    if List.mem t visited then 0
    else
      List.fold_left
        (fun best next -> max best (1 + depth (t :: visited) next))
        0 (successors t)
  in
  depth [] txn

let expired_waiters table ~now =
  Hashtbl.fold
    (fun resource entry accu ->
      List.fold_left
        (fun accu waiter ->
          match waiter.w_deadline with
          | Some deadline when now >= deadline ->
            (waiter.w_txn, resource) :: accu
          | Some _ | None -> accu)
        accu entry.waiting)
    table.entries []
  |> List.sort compare

let check_invariants table =
  let violations = ref [] in
  let flag format = Printf.ksprintf (fun text -> violations := text :: !violations) format in
  let granted_total = ref 0 in
  (* (txn, resource) pairs seen in any entry, for the reverse index check:
     wide entries (every active transaction holds an intention lock on the
     database root) would otherwise be rescanned once per indexed txn *)
  let participants = Hashtbl.create 256 in
  Hashtbl.iter
    (fun resource entry ->
      granted_total := !granted_total + List.length entry.granted;
      (match entry.granted, entry.waiting with
       | [], [] -> flag "%s: empty entry not dropped" resource
       | _, _ -> ());
      (* at most one granted triple and one queued request per transaction —
         counted through a table so wide entries stay linear *)
      let occurrences = Hashtbl.create 16 in
      let bump counts key =
        Hashtbl.replace counts key
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      in
      let holder_count = occurrences in
      List.iter
        (fun (holder, _mode, _duration) ->
          Hashtbl.replace participants (holder, resource) ();
          bump holder_count holder)
        entry.granted;
      Hashtbl.iter
        (fun holder count ->
          if count > 1 then flag "%s: T%d granted twice" resource holder)
        holder_count;
      let waiter_count = Hashtbl.create 8 in
      List.iter
        (fun waiter ->
          Hashtbl.replace participants (waiter.w_txn, resource) ();
          bump waiter_count waiter.w_txn)
        entry.waiting;
      Hashtbl.iter
        (fun txn count ->
          if count > 1 then flag "%s: T%d queued twice" resource txn)
        waiter_count;
      List.iter
        (fun waiter ->
          if Hashtbl.mem holder_count waiter.w_txn && not waiter.w_conversion
          then flag "%s: T%d both holds and plain-waits" resource waiter.w_txn)
        entry.waiting;
      (* no two granted modes of distinct transactions may conflict: keep up
         to two distinct holders per mode and test mode pairs — the
         compatibility matrix is tiny, entries are not *)
      let mode_holders = Hashtbl.create 8 in
      List.iter
        (fun (holder, mode, _duration) ->
          match Hashtbl.find_opt mode_holders mode with
          | None -> Hashtbl.replace mode_holders mode [ holder ]
          | Some [ first ] when first <> holder ->
            Hashtbl.replace mode_holders mode [ first; holder ]
          | Some _ -> ())
        entry.granted;
      let distinct_pair mode other_mode =
        let holders_of m =
          Option.value ~default:[] (Hashtbl.find_opt mode_holders m)
        in
        List.find_map
          (fun h1 ->
            List.find_map
              (fun h2 -> if h1 <> h2 then Some (h1, h2) else None)
              (holders_of other_mode))
          (holders_of mode)
      in
      List.iteri
        (fun index1 mode1 ->
          List.iteri
            (fun index2 mode2 ->
              if index1 <= index2 && not (Lock_mode.compatible mode1 mode2)
              then
                match distinct_pair mode1 mode2 with
                | Some (h1, h2) ->
                  flag "%s: conflicting grants T%d:%s and T%d:%s" resource h1
                    (Lock_mode.to_string mode1) h2 (Lock_mode.to_string mode2)
                | None -> ())
            Lock_mode.all)
        Lock_mode.all;
      (* the queue head must have a live blocker — a grantable head means a
         lost wakeup (drain would have served it) *)
      (match entry.waiting with
       | [] -> ()
       | head :: _ ->
         let blocked =
           List.exists
             (fun (holder, mode, _duration) ->
               holder <> head.w_txn
               && not (Lock_mode.compatible head.w_mode mode))
             entry.granted
         in
         if not blocked then
           flag "%s: head waiter T%d has no live blocker" resource head.w_txn);
      (* every participant must be indexed under by_txn *)
      let indexed txn =
        match Hashtbl.find_opt table.by_txn txn with
        | None -> false
        | Some seen -> String_set.mem resource seen
      in
      List.iter
        (fun (holder, _mode, _duration) ->
          if not (indexed holder) then
            flag "%s: holder T%d missing from index" resource holder)
        entry.granted;
      List.iter
        (fun waiter ->
          if not (indexed waiter.w_txn) then
            flag "%s: waiter T%d missing from index" resource waiter.w_txn)
        entry.waiting)
    table.entries;
  if !granted_total <> table.entry_count then
    flag "entry count %d disagrees with %d granted entries" table.entry_count
      !granted_total;
  (* the index may not point at resources the transaction left *)
  Hashtbl.iter
    (fun txn seen ->
      String_set.iter
        (fun resource ->
          if not (Hashtbl.mem participants (txn, resource)) then
            flag "index: T%d still maps to %s" txn resource)
        seen)
    table.by_txn;
  List.sort String.compare !violations

let pp formatter table =
  Format.fprintf formatter "@[<v>";
  List.iter
    (fun resource ->
      match Hashtbl.find_opt table.entries resource with
      | None -> ()
      | Some entry ->
        let pp_granted formatter (holder, mode, duration) =
          Format.fprintf formatter "T%d:%a%s" holder Lock_mode.pp mode
            (match duration with Long -> "(long)" | Short -> "")
        in
        let pp_waiter formatter waiter =
          Format.fprintf formatter "T%d?%a" waiter.w_txn Lock_mode.pp
            waiter.w_mode
        in
        Format.fprintf formatter "%s: granted [%a] waiting [%a]@," resource
          (Format.pp_print_list
             ~pp_sep:(fun formatter () -> Format.pp_print_string formatter ", ")
             pp_granted)
          entry.granted
          (Format.pp_print_list
             ~pp_sep:(fun formatter () -> Format.pp_print_string formatter ", ")
             pp_waiter)
          entry.waiting)
    (resources table);
  Format.fprintf formatter "@]"
