type t = {
  mutable requests : int;
  mutable immediate_grants : int;
  mutable waits : int;
  mutable conversions : int;
  mutable conflict_tests : int;
  mutable releases : int;
  mutable escalations : int;
  mutable deescalations : int;
  mutable deadlocks : int;
  mutable victim_aborts : int;
  mutable timeout_aborts : int;
}

let create () =
  { requests = 0; immediate_grants = 0; waits = 0; conversions = 0;
    conflict_tests = 0; releases = 0; escalations = 0; deescalations = 0;
    deadlocks = 0; victim_aborts = 0; timeout_aborts = 0 }

let reset stats =
  stats.requests <- 0;
  stats.immediate_grants <- 0;
  stats.waits <- 0;
  stats.conversions <- 0;
  stats.conflict_tests <- 0;
  stats.releases <- 0;
  stats.escalations <- 0;
  stats.deescalations <- 0;
  stats.deadlocks <- 0;
  stats.victim_aborts <- 0;
  stats.timeout_aborts <- 0

let copy stats =
  { requests = stats.requests; immediate_grants = stats.immediate_grants;
    waits = stats.waits; conversions = stats.conversions;
    conflict_tests = stats.conflict_tests; releases = stats.releases;
    escalations = stats.escalations; deescalations = stats.deescalations;
    deadlocks = stats.deadlocks; victim_aborts = stats.victim_aborts;
    timeout_aborts = stats.timeout_aborts }

let add a b =
  { requests = a.requests + b.requests;
    immediate_grants = a.immediate_grants + b.immediate_grants;
    waits = a.waits + b.waits; conversions = a.conversions + b.conversions;
    conflict_tests = a.conflict_tests + b.conflict_tests;
    releases = a.releases + b.releases;
    escalations = a.escalations + b.escalations;
    deescalations = a.deescalations + b.deescalations;
    deadlocks = a.deadlocks + b.deadlocks;
    victim_aborts = a.victim_aborts + b.victim_aborts;
    timeout_aborts = a.timeout_aborts + b.timeout_aborts }

let row stats =
  [ ("requests", float_of_int stats.requests);
    ("immediate_grants", float_of_int stats.immediate_grants);
    ("waits", float_of_int stats.waits);
    ("conversions", float_of_int stats.conversions);
    ("conflict_tests", float_of_int stats.conflict_tests);
    ("releases", float_of_int stats.releases);
    ("escalations", float_of_int stats.escalations);
    ("deescalations", float_of_int stats.deescalations);
    ("deadlocks", float_of_int stats.deadlocks);
    ("victim_aborts", float_of_int stats.victim_aborts);
    ("timeout_aborts", float_of_int stats.timeout_aborts) ]

let pp formatter stats =
  Format.fprintf formatter
    "requests %d, immediate %d, waits %d, conversions %d, conflict tests %d, \
     releases %d, escalations %d, de-escalations %d, deadlocks %d, victim \
     aborts %d, timeout aborts %d"
    stats.requests stats.immediate_grants stats.waits stats.conversions
    stats.conflict_tests stats.releases stats.escalations stats.deescalations
    stats.deadlocks stats.victim_aborts stats.timeout_aborts
