type t = NL | IS | IX | S | SIX | X

let all = [ NL; IS; IX; S; SIX; X ]

let compatible a b =
  match a, b with
  | NL, _ | _, NL -> true
  | IS, (IS | IX | S | SIX) | (IX | S | SIX), IS -> true
  | IX, IX -> true
  | S, S -> true
  | IS, X | X, IS -> false
  | IX, (S | SIX | X) | (S | SIX | X), IX -> false
  | S, (SIX | X) | (SIX | X), S -> false
  | SIX, (SIX | X) | X, (SIX | X) -> false

(* Lattice rank used for [compare]; the lattice itself is not a chain (IX and
   S are incomparable), so [sup] is defined point-wise. *)
let rank = function NL -> 0 | IS -> 1 | IX -> 2 | S -> 3 | SIX -> 4 | X -> 5

let sup a b =
  match a, b with
  | NL, other | other, NL -> other
  | IS, other | other, IS -> other
  | X, _ | _, X -> X
  | IX, IX -> IX
  | S, S -> S
  | IX, S | S, IX -> SIX
  | (IX | S | SIX), SIX | SIX, (IX | S) -> SIX

let equal a b = a = b
let leq a b = equal (sup a b) b

let is_intention = function
  | IS | IX | SIX -> true
  | NL | S | X -> false

let grants_read = function S | SIX | X -> true | NL | IS | IX -> false
let grants_write = function X -> true | NL | IS | IX | S | SIX -> false

let intention_for = function
  | NL -> NL
  | IS | S -> IS
  | IX | SIX | X -> IX

let compare a b = Int.compare (rank a) (rank b)

let to_string = function
  | NL -> "NL"
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | X -> "X"

let of_string = function
  | "NL" -> Some NL
  | "IS" -> Some IS
  | "IX" -> Some IX
  | "S" -> Some S
  | "SIX" -> Some SIX
  | "X" -> Some X
  | _ -> None

let pp formatter mode = Format.pp_print_string formatter (to_string mode)

(* String-level export for the trace certifier, which lives below this
   library in the dependency order. Unknown strings decode as X so that
   fabricated traces conflict maximally instead of slipping through. *)
let certify_modes =
  let decode s = Option.value (of_string s) ~default:X in
  {
    Obs.Certify.m_known = List.map to_string all;
    m_compatible = (fun a b -> compatible (decode a) (decode b));
    m_sup = (fun a b -> to_string (sup (decode a) (decode b)));
    m_intention_for = (fun a -> to_string (intention_for (decode a)));
    m_is_intention = (fun a -> is_intention (decode a));
  }
