(** Lock modes and their algebra, after [GLP75, GLPT76].

    The paper's protocol uses IS, IX, S and X (§3.1); SIX is included for
    completeness since it is part of the System R family the technique
    extends, and NL is the identity element. *)

type t =
  | NL  (** no lock *)
  | IS  (** intention share *)
  | IX  (** intention exclusive *)
  | S  (** share *)
  | SIX  (** share + intention exclusive *)
  | X  (** exclusive *)

val all : t list
(** In increasing strength order: NL, IS, IX, S, SIX, X. *)

val compatible : t -> t -> bool
(** The classical compatibility matrix. Symmetric. *)

val sup : t -> t -> t
(** Least upper bound in the mode lattice (used for lock conversion): e.g.
    [sup IX S = SIX]. *)

val leq : t -> t -> bool
(** [leq a b] holds when [b] is at least as restrictive as [a], i.e.
    [sup a b = b]. This is the paper's "(or a more restrictive) mode". *)

val is_intention : t -> bool
(** IS, IX and SIX carry intentions. *)

val grants_read : t -> bool
(** S, SIX and X allow reading the node's data (explicitly). *)

val grants_write : t -> bool
(** Only X allows writing the node's data (explicitly). *)

val intention_for : t -> t
(** The intention mode a parent must carry before a child may be locked:
    IS for IS/S requests, IX for IX/X/SIX requests (paper rules 1-4). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val certify_modes : Obs.Certify.modes
(** This algebra at string level, for the trace certifier: the
    authoritative compatibility/supremum matrices and intention map.
    Unknown mode strings behave like X. *)
