(** Pluggable resilience policies for the lock manager's clients.

    The paper's protocol says nothing about what happens when transactions
    collide badly; classical systems choose between waits-for {e detection}
    and lock-wait {e timeouts} (the trade-off contrasted by the altruistic-
    locking and data-contention literature in PAPERS.md). These types make
    the choice — plus victim selection and restart backoff — configuration
    rather than hard-coded behaviour, shared by the transaction manager and
    the discrete-event simulator. *)

type resolution =
  | Detection  (** run cycle detection whenever a request starts waiting *)
  | Timeout of int
      (** abort any request still waiting after this many ticks; no cycle
          detection at all *)
  | Hybrid of int  (** detection on every wait {e and} the timeout backstop *)

type victim =
  | Youngest  (** largest begin timestamp dies (the classical default) *)
  | Oldest  (** smallest begin timestamp dies (wound-wait flavour) *)
  | Fewest_locks  (** cheapest to roll back by lock footprint *)
  | Least_work  (** least progress lost (fewest completed steps) *)

type backoff =
  | Fixed of int  (** constant restart delay *)
  | Exponential of { base : int; cap : int; seed : int }
      (** [base * 2^restarts] capped at [cap], with deterministic seeded
          full-jitter in [[raw/2, raw]] so colliding victims desynchronize
          reproducibly *)

type restart =
  | No_restart  (** waits run to resolution; no contention control *)
  | Wait_depth of int
      (** Thomasian's wait-depth-limited (WDL) policy: abort somebody as
          soon as a blocker chain exceeds this depth, keeping the blocking
          tree shallow under high contention *)
  | Running_priority
      (** waiting transactions never block a running one: a requester that
          would wait behind a waiter aborts that waiter instead *)

val default_timeout : int
(** Delay used when a resolution string names no explicit value. *)

val default_wait_depth : int
(** Depth used when a restart string names no explicit value (WDL(1)). *)

val timeout_of : resolution -> int option
(** The lock-wait deadline delta, when the strategy has one. *)

val detects : resolution -> bool
(** Whether the strategy runs cycle detection on waits. *)

type candidate = {
  txn : Lock_table.txn_id;
  birth : int;  (** begin timestamp — larger means younger *)
  locks_held : int;
  work_done : int;  (** completed steps, accesses, etc. *)
}

val choose_victim : victim -> candidate list -> Lock_table.txn_id
(** The cycle member sacrificed under the policy. Ties break toward the
    largest transaction id, so selection is deterministic. Raises
    [Invalid_argument] on an empty candidate list. *)

val delay : backoff -> restarts:int -> txn:Lock_table.txn_id -> int
(** Restart delay for the [restarts]-th restart of [txn]. Pure: the jitter
    is a hash of (seed, txn, restarts). *)

val resolution_of_string : string -> (resolution, string) result
(** Accepts ["detection"], ["timeout"], ["timeout:N"], ["hybrid"],
    ["hybrid:N"]. *)

val resolution_to_string : resolution -> string

val victim_of_string : string -> (victim, string) result
(** Accepts ["youngest"], ["oldest"], ["fewest-locks"], ["least-work"]. *)

val victim_to_string : victim -> string

val backoff_of_string : string -> (backoff, string) result
(** Accepts ["fixed:N"] and ["exp:BASE:CAP[:SEED]"]. *)

val backoff_to_string : backoff -> string

val restart_of_string : string -> (restart, string) result
(** Accepts ["none"], ["wdl"], ["wdl:D"] and ["running-priority"]. *)

val restart_to_string : restart -> string
val pp_resolution : Format.formatter -> resolution -> unit
val pp_victim : Format.formatter -> victim -> unit
val pp_backoff : Format.formatter -> backoff -> unit
val pp_restart : Format.formatter -> restart -> unit
