type resolution = Detection | Timeout of int | Hybrid of int
type victim = Youngest | Oldest | Fewest_locks | Least_work
type backoff = Fixed of int | Exponential of { base : int; cap : int; seed : int }
type restart = No_restart | Wait_depth of int | Running_priority

let default_wait_depth = 1

let default_timeout = 400

let timeout_of = function
  | Detection -> None
  | Timeout delay | Hybrid delay -> Some delay

let detects = function Detection | Hybrid _ -> true | Timeout _ -> false

type candidate = {
  txn : Lock_table.txn_id;
  birth : int;
  locks_held : int;
  work_done : int;
}

let choose_victim policy = function
  | [] -> invalid_arg "Policy.choose_victim: no candidates"
  | first :: rest ->
    (* Smallest score dies; ties go to the largest transaction id, so every
       policy stays deterministic. *)
    let score candidate =
      let metric =
        match policy with
        | Youngest -> -candidate.birth
        | Oldest -> candidate.birth
        | Fewest_locks -> candidate.locks_held
        | Least_work -> candidate.work_done
      in
      (metric, -candidate.txn)
    in
    let best =
      List.fold_left
        (fun victim candidate ->
          if compare (score candidate) (score victim) < 0 then candidate
          else victim)
        first rest
    in
    best.txn

(* A small deterministic integer mixer (xxhash-style avalanche): jitter must
   be reproducible across runs, so no global [Random] state is involved. *)
let mix a b c =
  let h = (a * 2654435761) + (b * 2246822519) + (c * 3266489917) + 374761393 in
  let h = h lxor (h lsr 16) in
  let h = h * 2654435761 in
  let h = h lxor (h lsr 13) in
  let h = h * 1274126177 in
  abs (h lxor (h lsr 16))

let delay policy ~restarts ~txn =
  match policy with
  | Fixed interval -> interval
  | Exponential { base; cap; seed } ->
    let doublings = min restarts 16 in
    (* saturate at [cap] without ever computing the product: for large bases
       [base * 2^doublings] would wrap around long before the doubling clamp
       kicks in, so test in the divided domain first *)
    let raw =
      if doublings > 0 && base > cap / (1 lsl doublings) then cap
      else min cap (base * (1 lsl doublings))
    in
    (* full-jitter in [raw/2, raw]: spreads restarts without losing the
       exponential envelope *)
    let half = max 1 (raw / 2) in
    half + (mix seed txn restarts mod (raw - half + 1))

(* ------------------------------------------------------------- rendering *)

let resolution_to_string = function
  | Detection -> "detection"
  | Timeout delay -> Printf.sprintf "timeout:%d" delay
  | Hybrid delay -> Printf.sprintf "hybrid:%d" delay

let resolution_of_string text =
  match String.split_on_char ':' (String.lowercase_ascii text) with
  | [ "detection" ] -> Ok Detection
  | [ "timeout" ] -> Ok (Timeout default_timeout)
  | [ "timeout"; delay ] -> (
    match int_of_string_opt delay with
    | Some delay when delay > 0 -> Ok (Timeout delay)
    | Some _ | None -> Error (Printf.sprintf "invalid timeout delay %S" delay))
  | [ "hybrid" ] -> Ok (Hybrid default_timeout)
  | [ "hybrid"; delay ] -> (
    match int_of_string_opt delay with
    | Some delay when delay > 0 -> Ok (Hybrid delay)
    | Some _ | None -> Error (Printf.sprintf "invalid hybrid delay %S" delay))
  | _ ->
    Error
      (Printf.sprintf
         "unknown resolution %S (expected detection, timeout[:N] or \
          hybrid[:N])"
         text)

let victim_to_string = function
  | Youngest -> "youngest"
  | Oldest -> "oldest"
  | Fewest_locks -> "fewest-locks"
  | Least_work -> "least-work"

let victim_of_string text =
  match String.lowercase_ascii text with
  | "youngest" -> Ok Youngest
  | "oldest" -> Ok Oldest
  | "fewest-locks" | "fewest_locks" -> Ok Fewest_locks
  | "least-work" | "least_work" -> Ok Least_work
  | _ ->
    Error
      (Printf.sprintf
         "unknown victim policy %S (expected youngest, oldest, fewest-locks \
          or least-work)"
         text)

let backoff_to_string = function
  | Fixed interval -> Printf.sprintf "fixed:%d" interval
  | Exponential { base; cap; seed } -> Printf.sprintf "exp:%d:%d:%d" base cap seed

let backoff_of_string text =
  let positive name value =
    match int_of_string_opt value with
    | Some number when number > 0 -> Ok number
    | Some _ | None -> Error (Printf.sprintf "invalid %s %S" name value)
  in
  match String.split_on_char ':' (String.lowercase_ascii text) with
  | [ "fixed"; interval ] -> (
    match positive "backoff interval" interval with
    | Ok interval -> Ok (Fixed interval)
    | Error _ as error -> error)
  | "exp" :: base :: cap :: rest -> (
    match positive "backoff base" base, positive "backoff cap" cap, rest with
    | Ok base, Ok cap, [] -> Ok (Exponential { base; cap; seed = 0 })
    | Ok base, Ok cap, [ seed ] -> (
      match int_of_string_opt seed with
      | Some seed -> Ok (Exponential { base; cap; seed })
      | None -> Error (Printf.sprintf "invalid backoff seed %S" seed))
    | (Error _ as error), _, _ | _, (Error _ as error), _ -> error
    | Ok _, Ok _, _ :: _ :: _ ->
      Error (Printf.sprintf "unknown backoff %S" text))
  | _ ->
    Error
      (Printf.sprintf
         "unknown backoff %S (expected fixed:N or exp:BASE:CAP[:SEED])" text)

let restart_to_string = function
  | No_restart -> "none"
  | Wait_depth depth -> Printf.sprintf "wdl:%d" depth
  | Running_priority -> "running-priority"

let restart_of_string text =
  match String.split_on_char ':' (String.lowercase_ascii text) with
  | [ "none" ] -> Ok No_restart
  | [ "wdl" ] -> Ok (Wait_depth default_wait_depth)
  | [ "wdl"; depth ] -> (
    match int_of_string_opt depth with
    | Some depth when depth >= 1 -> Ok (Wait_depth depth)
    | Some _ | None -> Error (Printf.sprintf "invalid wait depth %S" depth))
  | [ "running-priority" ] | [ "running_priority" ] -> Ok Running_priority
  | _ ->
    Error
      (Printf.sprintf
         "unknown restart policy %S (expected none, wdl[:D] or \
          running-priority)"
         text)

let pp_resolution formatter resolution =
  Format.pp_print_string formatter (resolution_to_string resolution)

let pp_victim formatter victim =
  Format.pp_print_string formatter (victim_to_string victim)

let pp_backoff formatter backoff =
  Format.pp_print_string formatter (backoff_to_string backoff)

let pp_restart formatter restart =
  Format.pp_print_string formatter (restart_to_string restart)
