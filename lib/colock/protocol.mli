(** The lock protocol for disjoint and non-disjoint complex objects
    (paper §4.4.2, rules 1–5 and the authorization-aware rule 4′).

    A request for mode [M] on node [n] expands into a deterministic *plan*:

    + intention locks ([intention_for M]) on the immediate-parent chain of
      [n], root-to-leaf (rules 1–4 preconditions; for entry points this is
      the "implicit upward propagation" within the superunit);
    + the explicit [M] lock on [n];
    + for S/X (and the S part of SIX) requests, "implicit downward
      propagation": an explicit data lock on the entry point of every inner
      unit accessible via [n] — transitively, since common data may again
      contain common data — each preceded by its own upward propagation.
      Under rule 4 the propagated mode is [M]; under rule 4′ an X weakens to
      S on inner units the transaction has no right to modify.

    Plans are acquired in order through the generic lock table; a conflict
    leaves the transaction waiting on the blocking node with the plan prefix
    already granted (re-calling {!acquire} after the grant resumes where it
    stopped, since covered locks grant immediately). Locks are released at
    end of transaction, or leaf-to-root via {!release_node} (rule 5). *)

type rule = Rule_4 | Rule_4_prime

type t

val create :
  ?rule:rule -> ?rights:Authz.Rights.t -> ?obs:Obs.Sink.t ->
  Instance_graph.t -> Lockmgr.Lock_table.t -> t
(** Default rule is [Rule_4_prime] with all-modifiable rights, which
    coincides with rule 4 until rights are restricted. [?obs] defaults to the
    sink of the lock table (if any), so attaching observability at the table
    level covers the whole stack. *)

val graph : t -> Instance_graph.t
val table : t -> Lockmgr.Lock_table.t
val rights : t -> Authz.Rights.t
val rule : t -> rule

val obs : t -> Obs.Sink.t option
(** The observability sink in effect (explicit, or inherited from the
    table). *)

val emit : t -> Obs.Event.kind -> unit
(** Emits an event through the attached sink; no-op when none. Used by the
    escalation manager and higher layers sharing this protocol instance. *)

type reason =
  | Requested
  | Ancestor_intention  (** rules 1–4: parent-chain intention locks *)
  | Upward_propagation  (** superunit parents of a propagated entry point *)
  | Downward_propagation  (** entry points of dependent inner units *)

type step = {
  node : Node_id.t;
  mode : Lockmgr.Lock_mode.t;
  reason : reason;
}

val plan :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?follow_references:bool ->
  Node_id.t -> Lockmgr.Lock_mode.t -> step list
(** The full, ordered lock plan for the request (independent of what is
    already held; acquisition of covered steps is a no-op). Parents always
    precede descendants; duplicate nodes are merged with the supremum of
    their modes at the earliest position.

    [follow_references] (default [true]) is the §4.5 semantic refinement:
    when a query provably never accesses the referenced common data (e.g.
    deleting a robot without touching its effectors), downward propagation
    can be skipped entirely — "no locks on common data are necessary at
    all". Only disable it when the access really is reference-blind. *)

type outcome =
  | Acquired of step list  (** every step granted; the merged plan returned *)
  | Blocked of {
      step : step;  (** the step that could not be granted *)
      blockers : Lockmgr.Lock_table.txn_id list;
      acquired : step list;  (** plan prefix already granted *)
    }

val acquire :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?duration:Lockmgr.Lock_table.duration ->
  ?deadline:int -> ?follow_references:bool -> Node_id.t ->
  Lockmgr.Lock_mode.t -> outcome
(** Executes the plan. On [Blocked] the transaction is enqueued in the lock
    table on the blocking node; re-call after the blocker releases.
    [?deadline] stamps any wait this acquisition enters (see
    {!Lockmgr.Lock_table.request}); enforcing it is the caller's job. *)

val try_acquire :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?duration:Lockmgr.Lock_table.duration ->
  ?follow_references:bool -> Node_id.t -> Lockmgr.Lock_mode.t -> outcome
(** Like {!acquire} but never enqueues: on conflict it reports [Blocked]
    without waiting (the plan prefix stays granted; release it or retry). *)

type protocol_violation =
  | Unknown_node of Node_id.t
  | Parent_not_locked of {
      node : Node_id.t;
      parent : Node_id.t;
      needed : Lockmgr.Lock_mode.t;
      held : Lockmgr.Lock_mode.t;
    }
  | Entry_point_not_reached of {
      entry : Node_id.t;
      needed : Lockmgr.Lock_mode.t;
    }
      (** no referencing node (nor the parent relation) is appropriately
          locked *)

val pp_protocol_violation : Format.formatter -> protocol_violation -> unit

val request_explicit :
  t -> txn:Lockmgr.Lock_table.txn_id -> ?duration:Lockmgr.Lock_table.duration ->
  Node_id.t -> Lockmgr.Lock_mode.t ->
  (outcome, protocol_violation) result
(** The paper's *explicit* request: checks the rule 1–4 preconditions (the
    caller must have locked the parent chain / a referencing node first)
    instead of acquiring them, then performs only the request plus its two
    implicit propagations. Used to verify the protocol rules themselves; the
    high-level {!acquire} is what query execution uses. *)

val effective_mode :
  t -> txn:Lockmgr.Lock_table.txn_id -> Node_id.t -> Lockmgr.Lock_mode.t
(** Explicit mode on the node combined with the implicit mode inherited along
    solid lines: X if an ancestor is explicitly X, else S if an ancestor is
    explicitly S or SIX (§3.1; with single immediate parents "all parents"
    and "at least one parent" coincide). *)

val release_node :
  t -> txn:Lockmgr.Lock_table.txn_id -> Node_id.t ->
  Lockmgr.Lock_table.grant list
(** Leaf-to-root release of one lock (rule 5). *)

val end_of_transaction :
  t -> txn:Lockmgr.Lock_table.txn_id -> Lockmgr.Lock_table.grant list
(** Releases everything (rule 5: "at EOT in any order") and forgets the
    transaction's authorization entries. *)

val commit_keeping_long_locks :
  t -> txn:Lockmgr.Lock_table.txn_id -> Lockmgr.Lock_table.grant list
(** Releases only short locks — the check-out commit of §3.1. *)

val pp_step : Format.formatter -> step -> unit
