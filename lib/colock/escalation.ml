module Lock_mode = Lockmgr.Lock_mode
module Lock_table = Lockmgr.Lock_table
module Lock_stats = Lockmgr.Lock_stats

type escalation_result =
  | Escalated of {
      parent : Node_id.t;
      mode : Lock_mode.t;
      released_children : int;
    }
  | Escalation_blocked of { blockers : Lock_table.txn_id list }
  | Not_needed

let child_locks protocol ~txn ~parent =
  let graph = Protocol.graph protocol in
  let table = Protocol.table protocol in
  match Instance_graph.node graph parent with
  | None -> []
  | Some node ->
    List.filter_map
      (fun child ->
        match
          Lock_table.held table ~txn ~resource:(Node_id.to_resource child)
        with
        | Lock_mode.NL -> None
        | held -> Some (child, held))
      node.Instance_graph.children

let maybe_escalate protocol ~txn ~threshold ~parent =
  let children = child_locks protocol ~txn ~parent in
  if List.length children <= threshold then Not_needed
  else begin
    let data_mode =
      List.fold_left
        (fun mode (_child, held) ->
          match held with
          | Lock_mode.X | Lock_mode.SIX -> Lock_mode.X
          | Lock_mode.IX -> Lock_mode.X
          | Lock_mode.S -> Lock_mode.sup mode Lock_mode.S
          | Lock_mode.IS -> Lock_mode.sup mode Lock_mode.S
          | Lock_mode.NL -> mode)
        Lock_mode.S children
    in
    match Protocol.try_acquire protocol ~txn parent data_mode with
    | Protocol.Blocked { blockers; _ } -> Escalation_blocked { blockers }
    | Protocol.Acquired _steps ->
      List.iter
        (fun (child, _held) ->
          let (_grants : Lock_table.grant list) =
            Protocol.release_node protocol ~txn child
          in
          ())
        children;
      let stats = Lock_table.stats (Protocol.table protocol) in
      stats.Lock_stats.escalations <- stats.Lock_stats.escalations + 1;
      Protocol.emit protocol
        (Obs.Event.Escalation
           { txn; node = Node_id.to_resource parent;
             mode = Lock_mode.to_string data_mode;
             released_children = List.length children });
      Escalated
        { parent; mode = data_mode; released_children = List.length children }
  end

let deescalate protocol ~txn node ~keep =
  let table = Protocol.table protocol in
  let rec acquire_keep = function
    | [] -> Ok ()
    | (child, mode) :: rest -> (
      match Protocol.try_acquire protocol ~txn child mode with
      | Protocol.Acquired _steps -> acquire_keep rest
      | Protocol.Blocked _ as blocked -> Error blocked)
  in
  match acquire_keep keep with
  | Error blocked -> Error blocked
  | Ok () ->
    let held =
      Lock_table.held table ~txn ~resource:(Node_id.to_resource node)
    in
    let weakened = Lock_mode.intention_for held in
    let grants =
      Lock_table.downgrade table ~txn ~resource:(Node_id.to_resource node)
        weakened
    in
    let stats = Lock_table.stats table in
    stats.Lock_stats.deescalations <- stats.Lock_stats.deescalations + 1;
    Protocol.emit protocol
      (Obs.Event.Deescalation
         { txn; node = Node_id.to_resource node;
           mode = Lock_mode.to_string weakened });
    Ok grants
