type node = {
  id : Node_id.t;
  kind : Lockable.kind;
  parent : Node_id.t option;
  children : Node_id.t list;
  refs_out : Nf2.Oid.t list;
  entry_point : bool;
  relation : string option;
  oid : Nf2.Oid.t option;
}

module Oid_map = Map.Make (struct
  type t = Nf2.Oid.t

  let compare = Nf2.Oid.compare
end)

type t = {
  root : Node_id.t;
  nodes : (Node_id.t, node) Hashtbl.t;
  by_resource : (string, Lockable.kind * int) Hashtbl.t;
      (* resource string -> (granule kind, depth), the lockable-unit
         metadata the lock table's obs events are tagged with; kept in sync
         with [nodes] so the lookup is one hash probe per emitted event *)
  mutable segment_index : (string * Node_id.t) list;
  mutable relation_index : (string * Node_id.t) list;
  mutable object_index : Node_id.t Oid_map.t;
  mutable referencer_index : Node_id.t list Oid_map.t;
}

(* Construction builds children lists bottom-up: [emit] registers a node and
   returns its id so parents can list it. *)

let register graph node =
  Hashtbl.replace graph.nodes node.id node;
  Hashtbl.replace graph.by_resource
    (Node_id.to_resource node.id)
    (node.kind, Node_id.depth node.id)

let add_referencer graph oid node_id =
  let known =
    match Oid_map.find_opt oid graph.referencer_index with
    | None -> []
    | Some nodes -> nodes
  in
  graph.referencer_index <-
    Oid_map.add oid (node_id :: known) graph.referencer_index

(* Stable, human-readable member names: prefer an atomic field ending in
   "_id", then any renderable atomic field, then the member's own rendering,
   then a positional fallback; collisions get the position appended. *)
let member_name used position value =
  let candidate =
    match value with
    | Nf2.Value.Tuple bindings ->
      let renderable (field, sub) =
        match Nf2.Value.render_atomic sub with
        | Some rendering -> Some (field, rendering)
        | None -> None
      in
      let atomics = List.filter_map renderable bindings in
      let id_like =
        List.find_opt
          (fun (field, _rendering) ->
            String.length field >= 3
            && String.equal (String.sub field (String.length field - 3) 3) "_id")
          atomics
      in
      (match id_like, atomics with
       | Some (_field, rendering), _ -> Some rendering
       | None, (_field, rendering) :: _ -> Some rendering
       | None, [] -> None)
    | Nf2.Value.Str _ | Nf2.Value.Int _ | Nf2.Value.Real _ | Nf2.Value.Bool _
      ->
      Nf2.Value.render_atomic value
    | Nf2.Value.Ref oid -> Some (Nf2.Oid.to_string oid)
    | Nf2.Value.Set _ | Nf2.Value.List _ -> None
  in
  let base =
    match candidate with
    | Some rendering -> rendering
    | None -> Printf.sprintf "#%d" position
  in
  if Hashtbl.mem used base then Printf.sprintf "%s#%d" base position
  else begin
    Hashtbl.add used base ();
    base
  end

let rec build_attr graph ~parent ~field_name attr value =
  let id = Node_id.child parent field_name in
  match attr, value with
  | Nf2.Schema.Atomic (Nf2.Schema.Ref _target), Nf2.Value.Ref oid ->
    add_referencer graph oid id;
    register graph
      { id; kind = Lockable.Blu; parent = Some parent; children = [];
        refs_out = [ oid ]; entry_point = false; relation = None; oid = None };
    id
  | Nf2.Schema.Atomic _, _ ->
    register graph
      { id; kind = Lockable.Blu; parent = Some parent; children = [];
        refs_out = []; entry_point = false; relation = None; oid = None };
    id
  | (Nf2.Schema.Set inner | Nf2.Schema.List inner),
    (Nf2.Value.Set members | Nf2.Value.List members) ->
    let used = Hashtbl.create (List.length members) in
    let children =
      List.mapi
        (fun position member ->
          let name = member_name used position member in
          build_member graph ~parent:id ~name inner member)
        members
    in
    register graph
      { id; kind = Lockable.Holu; parent = Some parent; children;
        refs_out = []; entry_point = false; relation = None; oid = None };
    id
  | Nf2.Schema.Tuple fields, Nf2.Value.Tuple bindings ->
    let children = build_fields graph ~parent:id fields bindings in
    register graph
      { id; kind = Lockable.Helu; parent = Some parent; children;
        refs_out = []; entry_point = false; relation = None; oid = None };
    id
  | (Nf2.Schema.Set _ | Nf2.Schema.List _ | Nf2.Schema.Tuple _), _ ->
    (* Values are typechecked on insert, so a shape mismatch here is a
       programming error, not data. *)
    invalid_arg
      (Printf.sprintf "Instance_graph: value shape mismatch at %s"
         (Node_id.to_resource id))

and build_member graph ~parent ~name inner member =
  let id = Node_id.child parent name in
  match inner, member with
  | Nf2.Schema.Tuple fields, Nf2.Value.Tuple bindings ->
    let children = build_fields graph ~parent:id fields bindings in
    register graph
      { id; kind = Lockable.Helu; parent = Some parent; children;
        refs_out = []; entry_point = false; relation = None; oid = None };
    id
  | Nf2.Schema.Atomic (Nf2.Schema.Ref _target), Nf2.Value.Ref oid ->
    add_referencer graph oid id;
    register graph
      { id; kind = Lockable.Blu; parent = Some parent; children = [];
        refs_out = [ oid ]; entry_point = false; relation = None; oid = None };
    id
  | Nf2.Schema.Atomic _, _ ->
    register graph
      { id; kind = Lockable.Blu; parent = Some parent; children = [];
        refs_out = []; entry_point = false; relation = None; oid = None };
    id
  | (Nf2.Schema.Set inner_inner | Nf2.Schema.List inner_inner),
    (Nf2.Value.Set members | Nf2.Value.List members) ->
    let used = Hashtbl.create (List.length members) in
    let children =
      List.mapi
        (fun position sub_member ->
          let sub_name = member_name used position sub_member in
          build_member graph ~parent:id ~name:sub_name inner_inner sub_member)
        members
    in
    register graph
      { id; kind = Lockable.Holu; parent = Some parent; children;
        refs_out = []; entry_point = false; relation = None; oid = None };
    id
  | (Nf2.Schema.Set _ | Nf2.Schema.List _ | Nf2.Schema.Tuple _), _ ->
    invalid_arg
      (Printf.sprintf "Instance_graph: member shape mismatch at %s"
         (Node_id.to_resource id))

and build_fields graph ~parent fields bindings =
  List.map2
    (fun { Nf2.Schema.field_name; field_type } (_bound_name, bound_value) ->
      build_attr graph ~parent ~field_name field_type bound_value)
    fields bindings

let build_object graph ~parent ~shared schema key value =
  let id = Node_id.child parent key in
  let oid = Nf2.Oid.make ~relation:schema.Nf2.Schema.rel_name ~key in
  let children =
    match value with
    | Nf2.Value.Tuple bindings ->
      build_fields graph ~parent:id schema.Nf2.Schema.fields bindings
    | Nf2.Value.Str _ | Nf2.Value.Int _ | Nf2.Value.Real _ | Nf2.Value.Bool _
    | Nf2.Value.Ref _ | Nf2.Value.Set _ | Nf2.Value.List _ ->
      invalid_arg "Instance_graph: complex object is not a tuple"
  in
  register graph
    { id; kind = Lockable.Helu; parent = Some parent; children;
      refs_out = []; entry_point = shared;
      relation = Some schema.Nf2.Schema.rel_name; oid = Some oid };
  graph.object_index <- Oid_map.add oid id graph.object_index;
  id

let build db =
  let root = Node_id.database (Nf2.Database.name db) in
  let graph =
    { root; nodes = Hashtbl.create 1024;
      by_resource = Hashtbl.create 1024; segment_index = [];
      relation_index = []; object_index = Oid_map.empty;
      referencer_index = Oid_map.empty }
  in
  let catalog = Nf2.Database.catalog db in
  let segments = Nf2.Catalog.segments catalog in
  let segment_children =
    List.map
      (fun segment ->
        let segment_id = Node_id.child root segment in
        let relations_here =
          List.filter
            (fun store ->
              String.equal
                (Nf2.Relation.schema store).Nf2.Schema.segment segment)
            (Nf2.Database.relations db)
        in
        let relation_children =
          List.map
            (fun store ->
              let schema = Nf2.Relation.schema store in
              let relation_id =
                Node_id.child segment_id schema.Nf2.Schema.rel_name
              in
              let shared =
                Nf2.Catalog.is_shared catalog schema.Nf2.Schema.rel_name
              in
              let object_children =
                List.map
                  (fun (key, value) ->
                    build_object graph ~parent:relation_id ~shared schema key
                      value)
                  (Nf2.Relation.objects store)
              in
              register graph
                { id = relation_id; kind = Lockable.Holu;
                  parent = Some segment_id; children = object_children;
                  refs_out = []; entry_point = false;
                  relation = Some schema.Nf2.Schema.rel_name; oid = None };
              graph.relation_index <-
                (schema.Nf2.Schema.rel_name, relation_id)
                :: graph.relation_index;
              relation_id)
            relations_here
        in
        register graph
          { id = segment_id; kind = Lockable.Helu; parent = Some root;
            children = relation_children; refs_out = []; entry_point = false;
            relation = None; oid = None };
        graph.segment_index <- (segment, segment_id) :: graph.segment_index;
        segment_id)
      segments
  in
  register graph
    { id = root; kind = Lockable.Helu; parent = None;
      children = segment_children; refs_out = []; entry_point = false;
      relation = None; oid = None };
  (* Deterministic referencer order. *)
  graph.referencer_index <-
    Oid_map.map
      (fun nodes -> List.sort_uniq Node_id.compare nodes)
      graph.referencer_index;
  graph

let root graph = graph.root
let node graph id = Hashtbl.find_opt graph.nodes id

let insert_object graph catalog schema ~key value =
  let rel_name = schema.Nf2.Schema.rel_name in
  match List.assoc_opt rel_name graph.relation_index with
  | None -> Error (Printf.sprintf "unknown relation %S" rel_name)
  | Some relation_id ->
    let candidate = Node_id.child relation_id key in
    if Hashtbl.mem graph.nodes candidate then
      Error (Printf.sprintf "object %S already in the graph" key)
    else begin
      let shared = Nf2.Catalog.is_shared catalog rel_name in
      let object_id =
        build_object graph ~parent:relation_id ~shared schema key value
      in
      let relation_record = Hashtbl.find graph.nodes relation_id in
      let children =
        List.sort Node_id.compare (object_id :: relation_record.children)
      in
      Hashtbl.replace graph.nodes relation_id { relation_record with children };
      (* keep referencer lists deterministic after the prepends *)
      graph.referencer_index <-
        Oid_map.map
          (fun nodes -> List.sort_uniq Node_id.compare nodes)
          graph.referencer_index;
      Ok object_id
    end

let delete_object graph oid =
  match Oid_map.find_opt oid graph.object_index with
  | None -> Error (Printf.sprintf "unknown object %s" (Nf2.Oid.to_string oid))
  | Some object_id -> (
    match Oid_map.find_opt oid graph.referencer_index with
    | Some (_ :: _) ->
      Error
        (Printf.sprintf "object %s is still referenced"
           (Nf2.Oid.to_string oid))
    | Some [] | None ->
      (* collect and drop the subtree, unhooking any outgoing references *)
      let rec drop id =
        match Hashtbl.find_opt graph.nodes id with
        | None -> ()
        | Some current ->
          List.iter
            (fun target ->
              match Oid_map.find_opt target graph.referencer_index with
              | None -> ()
              | Some holders ->
                let holders =
                  List.filter
                    (fun holder -> not (Node_id.equal holder id))
                    holders
                in
                graph.referencer_index <-
                  Oid_map.add target holders graph.referencer_index)
            current.refs_out;
          List.iter drop current.children;
          Hashtbl.remove graph.nodes id;
          Hashtbl.remove graph.by_resource (Node_id.to_resource id)
      in
      drop object_id;
      (match Hashtbl.find_opt graph.nodes (Option.get (Node_id.parent object_id)) with
       | Some relation_record ->
         Hashtbl.replace graph.nodes relation_record.id
           { relation_record with
             children =
               List.filter
                 (fun child -> not (Node_id.equal child object_id))
                 relation_record.children }
       | None -> ());
      graph.object_index <- Oid_map.remove oid graph.object_index;
      graph.referencer_index <- Oid_map.remove oid graph.referencer_index;
      Ok ())

let node_exn graph id =
  match node graph id with
  | Some found -> found
  | None ->
    invalid_arg
      (Printf.sprintf "Instance_graph: unknown node %s"
         (Node_id.to_resource id))

let node_count graph = Hashtbl.length graph.nodes
let segment_node graph name = List.assoc_opt name graph.segment_index
let relation_node graph name = List.assoc_opt name graph.relation_index
let object_node graph oid = Oid_map.find_opt oid graph.object_index

let member_node graph holu name =
  let candidate = Node_id.child holu name in
  if Hashtbl.mem graph.nodes candidate then Some candidate else None

let referencers graph oid =
  match Oid_map.find_opt oid graph.referencer_index with
  | None -> []
  | Some nodes -> nodes

let ancestors graph id =
  let rec climb accu id =
    match (node_exn graph id).parent with
    | None -> accu
    | Some parent -> climb (parent :: accu) parent
  in
  climb [] id

let lu_of_resource graph resource =
  match Hashtbl.find_opt graph.by_resource resource with
  | Some (kind, depth) ->
    Some { Obs.Event.lu_kind = Lockable.to_string kind; lu_depth = depth }
  | None -> None

let lu_resolver graph = fun resource -> lu_of_resource graph resource

let fold visit graph accu =
  Hashtbl.fold (fun _id node accu -> visit node accu) graph.nodes accu

let subtree_fold visit graph accu id =
  let rec walk accu id =
    let current = node_exn graph id in
    let accu = visit accu current in
    List.fold_left walk accu current.children
  in
  walk accu id

let subtree_refs graph id =
  subtree_fold (fun accu current -> List.rev_append current.refs_out accu)
    graph [] id
  |> List.sort_uniq Nf2.Oid.compare

let subtree_size graph id = subtree_fold (fun count _node -> count + 1) graph 0 id

let nodes_at_path graph oid path =
  match object_node graph oid with
  | None -> []
  | Some object_id ->
    let rec resolve frontier steps =
      match steps with
      | [] -> frontier
      | step :: rest ->
        let advance id =
          let current = node_exn graph id in
          match current.kind with
          | Lockable.Holu ->
            (* fan out over members, step not yet consumed *)
            List.concat_map
              (fun member -> resolve [ member ] steps)
              current.children
          | Lockable.Helu -> (
            match member_node graph id step with
            | Some child -> resolve [ child ] rest
            | None -> [])
          | Lockable.Blu -> []
        in
        List.concat_map advance frontier
    in
    (* Collapse any trailing HoLUs?  No: the path addresses the HoLU itself,
       so resolution stops once all steps are consumed. *)
    resolve [ object_id ] (Nf2.Path.to_list path)
