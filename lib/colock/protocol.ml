module Lock_mode = Lockmgr.Lock_mode
module Lock_table = Lockmgr.Lock_table

let log_src = Logs.Src.create "colock.protocol" ~doc:"lock protocol decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

type rule = Rule_4 | Rule_4_prime

type t = {
  graph : Instance_graph.t;
  table : Lock_table.t;
  rights : Authz.Rights.t;
  rule : rule;
  obs : Obs.Sink.t option;
}

let create ?(rule = Rule_4_prime) ?(rights = Authz.Rights.create ()) ?obs graph
    table =
  let obs = match obs with Some _ -> obs | None -> Lock_table.obs table in
  (* The table's lock events get tagged with the granule metadata of this
     protocol's lock graph (BLU/HoLU/HeLU + depth). *)
  Lock_table.set_meta table (Instance_graph.lu_resolver graph);
  { graph; table; rights; rule; obs }

let graph protocol = protocol.graph
let table protocol = protocol.table
let rights protocol = protocol.rights
let rule protocol = protocol.rule
let obs protocol = protocol.obs

let emit protocol kind =
  match protocol.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

type reason =
  | Requested
  | Ancestor_intention
  | Upward_propagation
  | Downward_propagation

type step = { node : Node_id.t; mode : Lock_mode.t; reason : reason }

let pp_step formatter { node; mode; reason } =
  let reason_text =
    match reason with
    | Requested -> "requested"
    | Ancestor_intention -> "ancestor intention"
    | Upward_propagation -> "upward propagation"
    | Downward_propagation -> "downward propagation"
  in
  Format.fprintf formatter "%a: %a (%s)" Node_id.pp node Lock_mode.pp mode
    reason_text

(* Ordered plans with supremum-merge on duplicate nodes.  The first position
   of a node is kept, which preserves parent-before-child in every chain the
   node occurs in. *)
module Plan_builder = struct
  type builder = {
    mutable steps : step list;  (* reversed *)
    positions : (Node_id.t, step ref) Hashtbl.t;
    mutable order : step ref list;  (* reversed insertion order *)
  }

  let create () =
    { steps = []; positions = Hashtbl.create 32; order = [] }

  let add builder node mode reason =
    match Hashtbl.find_opt builder.positions node with
    | Some cell ->
      let merged = Lock_mode.sup !cell.mode mode in
      let stronger_reason =
        (* "requested" dominates in reporting; otherwise keep the first. *)
        match !cell.reason, reason with
        | Requested, _ -> Requested
        | _, Requested -> Requested
        | first, _ -> first
      in
      cell := { !cell with mode = merged; reason = stronger_reason }
    | None ->
      let cell = ref { node; mode; reason } in
      Hashtbl.replace builder.positions node cell;
      builder.order <- cell :: builder.order

  let finish builder = List.rev_map (fun cell -> !cell) builder.order
end

(* The data mode an S/X/SIX lock imposes on the units below it; NL when the
   mode carries no data part that must propagate. *)
let propagated_data_mode = function
  | Lock_mode.X -> Lock_mode.X
  | Lock_mode.S | Lock_mode.SIX -> Lock_mode.S
  | Lock_mode.NL | Lock_mode.IS | Lock_mode.IX -> Lock_mode.NL

(* Mode actually placed on one entry point, given the mode being propagated
   and the transaction's rights on the entry's relation (rule 4 vs 4'). *)
let entry_mode protocol ~txn entry_id data_mode =
  match protocol.rule with
  | Rule_4 -> data_mode
  | Rule_4_prime -> (
    match data_mode with
    | Lock_mode.X -> (
      let entry = Instance_graph.node_exn protocol.graph entry_id in
      match entry.Instance_graph.relation with
      | Some relation ->
        if Authz.Rights.may_modify protocol.rights ~txn ~relation then
          Lock_mode.X
        else Lock_mode.S
      | None -> Lock_mode.X)
    | Lock_mode.NL | Lock_mode.IS | Lock_mode.IX | Lock_mode.S | Lock_mode.SIX
      ->
      data_mode)

(* Downward propagation: breadth-first over inner units reachable from
   [node], carrying the mode to propagate into each.  Crosses superunit
   boundaries; each entry point gets upward propagation (intentions on its
   superunit parents) first. *)
let add_downward_propagation protocol ~txn builder node mode =
  let data_mode = propagated_data_mode mode in
  if not (Lock_mode.equal data_mode Lock_mode.NL) then begin
    let seen = Hashtbl.create 16 in
    let rec propagate_from node data_mode =
      let entries = Units.entry_points_below protocol.graph node in
      List.iter
        (fun entry_id ->
          let mode_here = entry_mode protocol ~txn entry_id data_mode in
          let cached = Hashtbl.find_opt seen entry_id in
          let already_covers =
            match cached with
            | Some previous -> Lock_mode.leq mode_here previous
            | None -> false
          in
          if not already_covers then begin
            let merged =
              match cached with
              | Some previous -> Lock_mode.sup previous mode_here
              | None -> mode_here
            in
            Hashtbl.replace seen entry_id merged;
            List.iter
              (fun parent ->
                Plan_builder.add builder parent
                  (Lock_mode.intention_for mode_here)
                  Upward_propagation)
              (Units.superunit_parents protocol.graph ~root:entry_id);
            Plan_builder.add builder entry_id mode_here Downward_propagation;
            propagate_from entry_id (propagated_data_mode mode_here)
          end)
        entries
    in
    propagate_from node data_mode
  end

let plan protocol ~txn ?(follow_references = true) node mode =
  let builder = Plan_builder.create () in
  let intention = Lock_mode.intention_for mode in
  List.iter
    (fun ancestor ->
      Plan_builder.add builder ancestor intention Ancestor_intention)
    (Instance_graph.ancestors protocol.graph node);
  Plan_builder.add builder node mode Requested;
  if follow_references then
    add_downward_propagation protocol ~txn builder node mode;
  let steps = Plan_builder.finish builder in
  Log.debug (fun log ->
      log "T%d plan for %s %s: %d step(s)%s" txn (Lock_mode.to_string mode)
        (Node_id.to_resource node) (List.length steps)
        (let propagated =
           List.length
             (List.filter
                (fun step -> step.reason = Downward_propagation)
                steps)
         in
         if propagated = 0 then ""
         else Printf.sprintf " (%d propagated entry point(s))" propagated));
  steps

type outcome =
  | Acquired of step list
  | Blocked of {
      step : step;
      blockers : Lock_table.txn_id list;
      acquired : step list;
    }

let run_plan protocol ~txn ~duration ?deadline ~wait steps =
  let rec walk acquired = function
    | [] -> Acquired (List.rev acquired)
    | step :: rest ->
      let outcome =
        if wait then
          match
            Lock_table.request protocol.table ~txn ~duration ?deadline
              ~resource:(Node_id.to_resource step.node)
              step.mode
          with
          | Lock_table.Granted -> `Granted
          | Lock_table.Waiting blockers -> `Blocked blockers
        else
          match
            Lock_table.try_request protocol.table ~txn ~duration
              ~resource:(Node_id.to_resource step.node)
              step.mode
          with
          | `Granted -> `Granted
          | `Would_block blockers -> `Blocked blockers
      in
      (match outcome with
       | `Granted -> walk (step :: acquired) rest
       | `Blocked blockers ->
         Blocked { step; blockers; acquired = List.rev acquired })
  in
  walk [] steps

let acquire protocol ~txn ?(duration = Lock_table.Short) ?deadline
    ?follow_references node mode =
  run_plan protocol ~txn ~duration ?deadline ~wait:true
    (plan protocol ~txn ?follow_references node mode)

let try_acquire protocol ~txn ?(duration = Lock_table.Short) ?follow_references
    node mode =
  run_plan protocol ~txn ~duration ~wait:false
    (plan protocol ~txn ?follow_references node mode)

let explicit_mode protocol ~txn node =
  Lock_table.held protocol.table ~txn ~resource:(Node_id.to_resource node)

let effective_mode protocol ~txn node =
  let explicit = explicit_mode protocol ~txn node in
  let implicit =
    List.fold_left
      (fun inherited ancestor ->
        match explicit_mode protocol ~txn ancestor with
        | Lock_mode.X -> Lock_mode.X
        | Lock_mode.S | Lock_mode.SIX -> Lock_mode.sup inherited Lock_mode.S
        | Lock_mode.NL | Lock_mode.IS | Lock_mode.IX -> inherited)
      Lock_mode.NL
      (Instance_graph.ancestors protocol.graph node)
  in
  Lock_mode.sup explicit implicit

type protocol_violation =
  | Unknown_node of Node_id.t
  | Parent_not_locked of {
      node : Node_id.t;
      parent : Node_id.t;
      needed : Lock_mode.t;
      held : Lock_mode.t;
    }
  | Entry_point_not_reached of { entry : Node_id.t; needed : Lock_mode.t }

let pp_protocol_violation formatter = function
  | Unknown_node node ->
    Format.fprintf formatter "unknown node %a" Node_id.pp node
  | Parent_not_locked { node; parent; needed; held } ->
    Format.fprintf formatter
      "parent %a of %a holds %a, but %a (or more restrictive) is required"
      Node_id.pp parent Node_id.pp node Lock_mode.pp held Lock_mode.pp needed
  | Entry_point_not_reached { entry; needed } ->
    Format.fprintf formatter
      "no referencing node of entry point %a is %a-locked" Node_id.pp entry
      Lock_mode.pp needed

let request_explicit protocol ~txn ?(duration = Lock_table.Short) node mode =
  match Instance_graph.node protocol.graph node with
  | None -> Error (Unknown_node node)
  | Some current -> (
    let needed = Lock_mode.intention_for mode in
    let parent_ok parent =
      let held = effective_mode protocol ~txn parent in
      Lock_mode.leq needed held
    in
    let precondition =
      match current.Instance_graph.parent with
      | None -> Ok ()  (* root of the outer unit: no locks needed *)
      | Some parent ->
        if current.Instance_graph.entry_point then
          (* Reached either via a locked referencing node (the manager then
             performs upward propagation) or directly through its locked
             parent relation. *)
          let via_reference =
            match current.Instance_graph.oid with
            | Some oid ->
              List.exists parent_ok
                (Instance_graph.referencers protocol.graph oid)
            | None -> false
          in
          if via_reference || parent_ok parent then Ok ()
          else Error (Entry_point_not_reached { entry = node; needed })
        else if parent_ok parent then Ok ()
        else
          Error
            (Parent_not_locked
               { node; parent; needed;
                 held = effective_mode protocol ~txn parent })
    in
    match precondition with
    | Error _ as error -> error
    | Ok () ->
      (* Only the request itself plus the two implicit propagations; the
         caller is responsible for the explicit parent chain (checked
         above). *)
      let builder = Plan_builder.create () in
      if current.Instance_graph.entry_point then
        List.iter
          (fun parent ->
            Plan_builder.add builder parent
              (Lock_mode.intention_for mode)
              Upward_propagation)
          (Units.superunit_parents protocol.graph ~root:node);
      Plan_builder.add builder node mode Requested;
      add_downward_propagation protocol ~txn builder node mode;
      Ok (run_plan protocol ~txn ~duration ~wait:true (Plan_builder.finish builder)))

let release_node protocol ~txn node =
  Lock_table.release protocol.table ~txn ~resource:(Node_id.to_resource node)

let end_of_transaction protocol ~txn =
  Authz.Rights.forget_txn protocol.rights ~txn;
  Lock_table.release_all protocol.table ~txn

let commit_keeping_long_locks protocol ~txn =
  Lock_table.release_short protocol.table ~txn
