(** Instance-level lock graphs: the concrete lockable units of one database.

    Where {!Object_graph} is the schema-level graph of Fig. 5, this is the
    graph actual locks are requested on (the nodes of the paper's Figs. 6/7:
    "Database db1", "cell c1", the list "robots", "robot r1", "effector e1",
    ...). Every node except the database root has exactly one *immediate
    parent* (solid line); references to common data are separate dashed edges
    ([refs_out]), mirrored in a reverse index ([referencers]). Complex
    objects of shared relations are *entry points* — the roots of inner
    units. *)

type node = {
  id : Node_id.t;
  kind : Lockable.kind;
  parent : Node_id.t option;  (** immediate parent; [None] on the root *)
  children : Node_id.t list;  (** solid edges, deterministic order *)
  refs_out : Nf2.Oid.t list;  (** dashed edges carried by this node (BLUs) *)
  entry_point : bool;
  relation : string option;  (** owning relation, for relation/object nodes *)
  oid : Nf2.Oid.t option;  (** for complex-object nodes *)
}

type t

val build : Nf2.Database.t -> t
(** Materializes the full graph. Value updates in place need no rebuild;
    object insertion/deletion is supported incrementally through
    {!insert_object} and {!delete_object}; other structural changes (adding
    members to a collection, re-pointing references) need a rebuild. *)

val insert_object :
  t -> Nf2.Catalog.t -> Nf2.Schema.relation -> key:string -> Nf2.Value.t ->
  (Node_id.t, string) result
(** Splices a freshly inserted complex object under its relation node:
    builds its subtree, registers indexes and referencers. The value must
    already be in the database (typechecked). Errors on unknown relation
    node or duplicate key. *)

val delete_object : t -> Nf2.Oid.t -> (unit, string) result
(** Removes the object's subtree, indexes and referencer entries. Errors if
    the object is unknown or still referenced by other objects (deleting it
    would dangle). *)

val root : t -> Node_id.t
(** The database node. *)

val node : t -> Node_id.t -> node option
val node_exn : t -> Node_id.t -> node
val node_count : t -> int
val segment_node : t -> string -> Node_id.t option
val relation_node : t -> string -> Node_id.t option
val object_node : t -> Nf2.Oid.t -> Node_id.t option

val member_node : t -> Node_id.t -> string -> Node_id.t option
(** Child of a HoLU by member name (e.g. the list "robots" and ["r1"]). *)

val referencers : t -> Nf2.Oid.t -> Node_id.t list
(** All BLU nodes holding a reference to the given complex object — the
    paper's expensive "determine all parents" set, here precomputed so both
    the naive baseline cost model and the entry-point precondition can use
    it. *)

val ancestors : t -> Node_id.t -> Node_id.t list
(** Immediate-parent chain, root first, the node itself excluded. *)

val subtree_refs : t -> Node_id.t -> Nf2.Oid.t list
(** Every reference carried by the subtree rooted at the node (the node
    included), deduplicated, in deterministic order. Used by downward
    propagation: these are the entry points "accessible via" the node at one
    dashed hop. *)

val subtree_size : t -> Node_id.t -> int
(** Number of nodes in the subtree (the node included). *)

val nodes_at_path :
  t -> Nf2.Oid.t -> Nf2.Path.t -> Node_id.t list
(** Instance nodes covering the attribute [path] of the given complex object,
    fanning out over collection members; [Path.root] is the object node
    itself. *)

val lu_of_resource : t -> string -> Obs.Event.lu option
(** Lockable-unit metadata (granule kind as ["BLU"]/["HoLU"]/["HeLU"], plus
    depth in the instance graph) for a resource string produced by
    {!Node_id.to_resource}; [None] for resources outside this graph. One
    hash probe — cheap enough to run on every emitted lock event. *)

val lu_resolver : t -> string -> Obs.Event.lu option
(** {!lu_of_resource} pre-applied, in the shape
    {!Lockmgr.Lock_table.set_meta} expects. *)

val fold : (node -> 'accu -> 'accu) -> t -> 'accu -> 'accu
(** Over all nodes in no particular order. *)
