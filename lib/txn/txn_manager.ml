module Table = Lockmgr.Lock_table
module Protocol = Colock.Protocol

type t = {
  protocol : Protocol.t;
  clock : unit -> int;
  mutable next_id : int;
  txns : (Table.txn_id, Transaction.t) Hashtbl.t;
  obs : Obs.Sink.t option;
}

let create ?clock ?obs protocol =
  let counter = ref 0 in
  let default_clock () =
    incr counter;
    !counter
  in
  let obs = match obs with Some _ -> obs | None -> Protocol.obs protocol in
  { protocol; clock = Option.value ~default:default_clock clock;
    next_id = 1; txns = Hashtbl.create 64; obs }

let protocol manager = manager.protocol

let emit manager kind =
  match manager.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

let begin_txn ?(kind = Transaction.Short) manager =
  let id = manager.next_id in
  manager.next_id <- id + 1;
  let txn =
    { Transaction.id; kind; started_at = manager.clock ();
      status = Transaction.Active; restarts = 0 }
  in
  Hashtbl.replace manager.txns id txn;
  emit manager (Obs.Event.Txn_begin { txn = id });
  txn

let find manager id = Hashtbl.find_opt manager.txns id

let active_txns manager =
  Hashtbl.fold
    (fun _id txn accu -> if Transaction.is_active txn then txn :: accu else accu)
    manager.txns []
  |> List.sort (fun a b -> Int.compare a.Transaction.id b.Transaction.id)

type acquire_outcome =
  | Granted
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Table.txn_id list;
    }
  | Deadlock_victim

let abort manager ?(reason = Transaction.User_abort) txn =
  let table = Protocol.table manager.protocol in
  let woken_by_cancel = Table.cancel_wait table ~txn:txn.Transaction.id in
  let woken_by_release =
    Protocol.end_of_transaction manager.protocol ~txn:txn.Transaction.id
  in
  txn.Transaction.status <- Transaction.Aborted reason;
  let reason_text =
    match reason with
    | Transaction.User_abort -> "user"
    | Transaction.Deadlock_victim -> "deadlock_victim"
  in
  emit manager
    (Obs.Event.Txn_abort { txn = txn.Transaction.id; reason = reason_text });
  (match reason with
   | Transaction.Deadlock_victim ->
     let stats = Table.stats table in
     stats.Lockmgr.Lock_stats.victim_aborts <-
       stats.Lockmgr.Lock_stats.victim_aborts + 1;
     emit manager
       (Obs.Event.Victim_aborted
          { txn = txn.Transaction.id; restarts = txn.Transaction.restarts })
   | Transaction.User_abort -> ());
  woken_by_cancel @ woken_by_release

(* Resolve deadlocks after [txn] started waiting.  Returns [true] when [txn]
   itself was sacrificed. *)
let resolve_deadlock manager txn =
  let table = Protocol.table manager.protocol in
  let rec resolve () =
    match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) with
    | None -> false
    | Some cycle ->
      let stats = Table.stats table in
      stats.Lockmgr.Lock_stats.deadlocks <-
        stats.Lockmgr.Lock_stats.deadlocks + 1;
      emit manager (Obs.Event.Deadlock_detected { cycle });
      (* Older transactions (earlier start) survive: the victim is the one
         with the smallest priority, so the youngest start must rank
         lowest. *)
      let priority id =
        match find manager id with
        | Some candidate -> -candidate.Transaction.started_at
        | None -> max_int
      in
      let victim_id = Lockmgr.Deadlock.choose_victim ~priority cycle in
      let victim =
        match find manager victim_id with
        | Some victim -> victim
        | None -> invalid_arg "Txn_manager: unknown victim"
      in
      let (_ : Table.grant list) =
        abort manager ~reason:Transaction.Deadlock_victim victim
      in
      if victim_id = txn.Transaction.id then true else resolve ()
  in
  resolve ()

let acquire manager txn ?duration node mode =
  if Transaction.is_finished txn then
    invalid_arg "Txn_manager.acquire: transaction is finished";
  match Protocol.acquire manager.protocol ~txn:txn.Transaction.id ?duration node mode with
  | Protocol.Acquired _steps ->
    txn.Transaction.status <- Transaction.Active;
    Granted
  | Protocol.Blocked { step; blockers; _ } ->
    txn.Transaction.status <-
      Transaction.Waiting { node = step.Protocol.node; blockers };
    if resolve_deadlock manager txn then Deadlock_victim
    else begin
      (* the victim (if any) was someone else; we may have been granted in
         the meantime — report the wait either way, the caller re-acquires *)
      Waiting { node = step.Protocol.node; blockers }
    end

let commit ?(release_long = false) manager txn =
  if Transaction.is_finished txn then
    invalid_arg "Txn_manager.commit: transaction is finished";
  let grants =
    match txn.Transaction.kind, release_long with
    | Transaction.Short, _ | Transaction.Long, true ->
      Protocol.end_of_transaction manager.protocol ~txn:txn.Transaction.id
    | Transaction.Long, false ->
      Protocol.commit_keeping_long_locks manager.protocol
        ~txn:txn.Transaction.id
  in
  txn.Transaction.status <- Transaction.Committed;
  emit manager (Obs.Event.Txn_commit { txn = txn.Transaction.id });
  grants

let unblocked manager grants =
  List.filter_map
    (fun grant ->
      match find manager grant.Table.g_txn with
      | Some txn -> (
        match txn.Transaction.status with
        | Transaction.Waiting _ ->
          (* only flip once even if several grants landed *)
          txn.Transaction.status <- Transaction.Active;
          Some txn
        | Transaction.Active | Transaction.Committed | Transaction.Aborted _ ->
          None)
      | None -> None)
    grants
