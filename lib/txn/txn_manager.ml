module Table = Lockmgr.Lock_table
module Policy = Lockmgr.Policy
module Protocol = Colock.Protocol

type config = {
  resolution : Policy.resolution;
  victim : Policy.victim;
}

let default_config =
  { resolution = Policy.Detection; victim = Policy.Youngest }

type t = {
  protocol : Protocol.t;
  clock : unit -> int;
  config : config;
  mutable next_id : int;
  mutable next_ticket : int;
  txns : (Table.txn_id, Transaction.t) Hashtbl.t;
  admission : Robust.Admission.t option;
  queued : (int, Transaction.kind * Robust.Admission.priority) Hashtbl.t;
  slots : (Table.txn_id, unit) Hashtbl.t;
      (* transactions holding an admission slot, released exactly once *)
  obs : Obs.Sink.t option;
}

let create ?clock ?obs ?admission ?(config = default_config) protocol =
  let counter = ref 0 in
  let default_clock () =
    incr counter;
    !counter
  in
  let obs = match obs with Some _ -> obs | None -> Protocol.obs protocol in
  { protocol; clock = Option.value ~default:default_clock clock; config;
    next_id = 1; next_ticket = 1; txns = Hashtbl.create 64;
    admission = Option.map Robust.Admission.create admission;
    queued = Hashtbl.create 16; slots = Hashtbl.create 64; obs }

let protocol manager = manager.protocol
let config manager = manager.config
let admission manager = manager.admission

let emit manager kind =
  match manager.obs with
  | None -> ()
  | Some sink -> Obs.Sink.emit sink kind

let begin_txn ?(kind = Transaction.Short) manager =
  let id = manager.next_id in
  manager.next_id <- id + 1;
  let txn =
    { Transaction.id; kind; started_at = manager.clock ();
      status = Transaction.Active; restarts = 0 }
  in
  Hashtbl.replace manager.txns id txn;
  emit manager (Obs.Event.Txn_begin { txn = id });
  txn

type begin_outcome =
  | Started of Transaction.t
  | Queued of int
  | Shed

let start_admitted manager kind =
  let txn = begin_txn ~kind manager in
  Hashtbl.replace manager.slots txn.Transaction.id ();
  txn

let try_begin ?(kind = Transaction.Short)
    ?(priority = Robust.Admission.Normal) manager =
  match manager.admission with
  | None -> Started (begin_txn ~kind manager)
  | Some gate ->
    let ticket = manager.next_ticket in
    manager.next_ticket <- ticket + 1;
    (match Robust.Admission.request gate ~priority ~txn:ticket with
    | Robust.Admission.Admitted -> Started (start_admitted manager kind)
    | Robust.Admission.Enqueued { evicted } ->
      Hashtbl.replace manager.queued ticket (kind, priority);
      emit manager
        (Obs.Event.Admission
           { txn = ticket;
             priority = Robust.Admission.priority_to_string priority;
             decision = "queued" });
      (match evicted with
      | None -> ()
      | Some victim ->
        let victim_priority =
          match Hashtbl.find_opt manager.queued victim with
          | Some (_kind, prio) -> Robust.Admission.priority_to_string prio
          | None -> "unknown"
        in
        Hashtbl.remove manager.queued victim;
        emit manager
          (Obs.Event.Admission
             { txn = victim; priority = victim_priority; decision = "shed" }));
      Queued ticket
    | Robust.Admission.Rejected ->
      emit manager
        (Obs.Event.Admission
           { txn = ticket;
             priority = Robust.Admission.priority_to_string priority;
             decision = "shed" });
      Shed)

let drain_admitted manager =
  match manager.admission with
  | None -> []
  | Some gate ->
    let rec loop accu =
      match Robust.Admission.pop gate with
      | None -> List.rev accu
      | Some ticket -> (
        match Hashtbl.find_opt manager.queued ticket with
        | None ->
          (* the entry was shed after queueing; give the slot back *)
          Robust.Admission.release gate;
          loop accu
        | Some (kind, _priority) ->
          Hashtbl.remove manager.queued ticket;
          loop (start_admitted manager kind :: accu))
    in
    loop []

let release_slot manager txn =
  match manager.admission with
  | None -> ()
  | Some gate ->
    if Hashtbl.mem manager.slots txn.Transaction.id then begin
      Hashtbl.remove manager.slots txn.Transaction.id;
      Robust.Admission.release gate
    end

let find manager id = Hashtbl.find_opt manager.txns id

let active_txns manager =
  Hashtbl.fold
    (fun _id txn accu -> if Transaction.is_active txn then txn :: accu else accu)
    manager.txns []
  |> List.sort (fun a b -> Int.compare a.Transaction.id b.Transaction.id)

let active_count manager =
  Hashtbl.fold
    (fun _id txn count -> if Transaction.is_active txn then count + 1 else count)
    manager.txns 0

type acquire_outcome =
  | Granted
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Table.txn_id list;
    }
  | Deadlock_victim

let abort manager ?(reason = Transaction.User_abort) txn =
  let table = Protocol.table manager.protocol in
  let woken_by_cancel = Table.cancel_wait table ~txn:txn.Transaction.id in
  let woken_by_release =
    Protocol.end_of_transaction manager.protocol ~txn:txn.Transaction.id
  in
  txn.Transaction.status <- Transaction.Aborted reason;
  let reason_text =
    match reason with
    | Transaction.User_abort -> "user"
    | Transaction.Deadlock_victim -> "deadlock_victim"
    | Transaction.Timeout_victim -> "timeout_victim"
  in
  emit manager
    (Obs.Event.Txn_abort { txn = txn.Transaction.id; reason = reason_text });
  (match reason with
   | Transaction.Deadlock_victim ->
     let stats = Table.stats table in
     stats.Lockmgr.Lock_stats.victim_aborts <-
       stats.Lockmgr.Lock_stats.victim_aborts + 1;
     emit manager
       (Obs.Event.Victim_aborted
          { txn = txn.Transaction.id; restarts = txn.Transaction.restarts })
   | Transaction.Timeout_victim ->
     let stats = Table.stats table in
     stats.Lockmgr.Lock_stats.timeout_aborts <-
       stats.Lockmgr.Lock_stats.timeout_aborts + 1
   | Transaction.User_abort -> ());
  release_slot manager txn;
  woken_by_cancel @ woken_by_release

let unblocked manager grants =
  List.filter_map
    (fun grant ->
      match find manager grant.Table.g_txn with
      | Some txn -> (
        match txn.Transaction.status with
        | Transaction.Waiting _ ->
          (* only flip once even if several grants landed *)
          txn.Transaction.status <- Transaction.Active;
          Some txn
        | Transaction.Active | Transaction.Committed | Transaction.Aborted _ ->
          None)
      | None -> None)
    grants

(* Resolve deadlocks after [txn] started waiting.  Returns [true] when [txn]
   itself was sacrificed.  Victims' grants flow through {!unblocked}, so a
   waiter freed by someone else's demise is [Active] again on return. *)
let resolve_deadlock manager txn =
  let table = Protocol.table manager.protocol in
  let rec resolve () =
    match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) with
    | None -> false
    | Some cycle ->
      let stats = Table.stats table in
      stats.Lockmgr.Lock_stats.deadlocks <-
        stats.Lockmgr.Lock_stats.deadlocks + 1;
      emit manager (Obs.Event.Deadlock_detected { cycle });
      let candidates =
        List.map
          (fun id ->
            match find manager id with
            | Some candidate ->
              (* lock count doubles as the work proxy: the manager does not
                 see its clients' steps, and locks track rollback cost *)
              let locks_held = List.length (Table.locks_of table ~txn:id) in
              { Policy.txn = id; birth = candidate.Transaction.started_at;
                locks_held; work_done = locks_held }
            | None ->
              { Policy.txn = id; birth = max_int; locks_held = max_int;
                work_done = max_int })
          cycle
      in
      let victim_id = Policy.choose_victim manager.config.victim candidates in
      let victim =
        match find manager victim_id with
        | Some victim -> victim
        | None -> invalid_arg "Txn_manager: unknown victim"
      in
      let grants = abort manager ~reason:Transaction.Deadlock_victim victim in
      let (_ : Transaction.t list) = unblocked manager grants in
      if victim_id = txn.Transaction.id then true else resolve ()
  in
  resolve ()

let acquire manager txn ?duration node mode =
  if Transaction.is_finished txn then
    invalid_arg "Txn_manager.acquire: transaction is finished";
  let deadline =
    match Policy.timeout_of manager.config.resolution with
    | None -> None
    | Some timeout -> Some (manager.clock () + timeout)
  in
  let rec attempt () =
    match
      Protocol.acquire manager.protocol ~txn:txn.Transaction.id ?duration
        ?deadline node mode
    with
    | Protocol.Acquired _steps ->
      txn.Transaction.status <- Transaction.Active;
      Granted
    | Protocol.Blocked { step; blockers; _ } -> (
      txn.Transaction.status <-
        Transaction.Waiting { node = step.Protocol.node; blockers };
      if
        Policy.detects manager.config.resolution
        && resolve_deadlock manager txn
      then Deadlock_victim
      else
        match txn.Transaction.status with
        | Transaction.Active ->
          (* another victim's released locks already granted our queued
             request: the wait is over, so resume the plan instead of
             reporting a wait that no release will ever end *)
          attempt ()
        | Transaction.Waiting _ | Transaction.Committed
        | Transaction.Aborted _ ->
          Waiting { node = step.Protocol.node; blockers })
  in
  attempt ()

let expire_timeouts ?now manager =
  match Policy.timeout_of manager.config.resolution with
  | None -> []
  | Some timeout ->
    let now = match now with Some now -> now | None -> manager.clock () in
    let table = Protocol.table manager.protocol in
    List.filter_map
      (fun (id, resource) ->
        match find manager id with
        | Some txn when Transaction.is_active txn ->
          (* a multi-resource waiter appears once per expired wait; the
             first abort finishes it, so the rest fall through here *)
          emit manager
            (Obs.Event.Timeout_abort
               { txn = id; resource; waited = timeout;
                 lu = Table.resource_lu table resource });
          let grants = abort manager ~reason:Transaction.Timeout_victim txn in
          let (_ : Transaction.t list) = unblocked manager grants in
          Some txn
        | Some _ | None -> None)
      (Table.expired_waiters table ~now)

let commit ?(release_long = false) manager txn =
  if Transaction.is_finished txn then
    invalid_arg "Txn_manager.commit: transaction is finished";
  let grants =
    match txn.Transaction.kind, release_long with
    | Transaction.Short, _ | Transaction.Long, true ->
      Protocol.end_of_transaction manager.protocol ~txn:txn.Transaction.id
    | Transaction.Long, false ->
      Protocol.commit_keeping_long_locks manager.protocol
        ~txn:txn.Transaction.id
  in
  txn.Transaction.status <- Transaction.Committed;
  emit manager (Obs.Event.Txn_commit { txn = txn.Transaction.id });
  release_slot manager txn;
  grants
