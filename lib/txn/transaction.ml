type kind = Short | Long
type abort_reason = Deadlock_victim | Timeout_victim | User_abort

type status =
  | Active
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
    }
  | Committed
  | Aborted of abort_reason

type t = {
  id : Lockmgr.Lock_table.txn_id;
  kind : kind;
  started_at : int;
  mutable status : status;
  mutable restarts : int;
}

let is_active txn =
  match txn.status with
  | Active | Waiting _ -> true
  | Committed | Aborted _ -> false

let is_finished txn = not (is_active txn)

let pp_status formatter = function
  | Active -> Format.pp_print_string formatter "active"
  | Waiting { node; blockers } ->
    Format.fprintf formatter "waiting on %a for %s" Colock.Node_id.pp node
      (String.concat "," (List.map string_of_int blockers))
  | Committed -> Format.pp_print_string formatter "committed"
  | Aborted Deadlock_victim ->
    Format.pp_print_string formatter "aborted (deadlock victim)"
  | Aborted Timeout_victim ->
    Format.pp_print_string formatter "aborted (lock-wait timeout)"
  | Aborted User_abort -> Format.pp_print_string formatter "aborted (user)"

let pp formatter txn =
  Format.fprintf formatter "T%d[%s, %a]" txn.id
    (match txn.kind with Short -> "short" | Long -> "long")
    pp_status txn.status
