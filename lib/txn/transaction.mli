(** Transactions: the paper's §1 notion (degree-3 consistency, strict
    two-phase locking), in short and long ("conversational") flavours. *)

type kind =
  | Short  (** conventional transaction in the central database *)
  | Long  (** workstation check-out transaction: locks survive shutdowns *)

type abort_reason =
  | Deadlock_victim
  | Timeout_victim  (** a lock wait exceeded the manager's timeout *)
  | User_abort

type status =
  | Active
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
    }
  | Committed
  | Aborted of abort_reason

type t = {
  id : Lockmgr.Lock_table.txn_id;
  kind : kind;
  started_at : int;  (** logical begin timestamp *)
  mutable status : status;
  mutable restarts : int;  (** deadlock-abort restarts of this work unit *)
}

val is_active : t -> bool
val is_finished : t -> bool
val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit
