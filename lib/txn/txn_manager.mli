(** The transaction manager: strict 2PL over the paper's protocol, with
    configurable collision resolution (deadlock detection, lock-wait
    timeouts, or both) and pluggable victim selection. *)

type t

type config = {
  resolution : Lockmgr.Policy.resolution;
      (** detection runs inline on every wait; a timeout stamps each wait
          with a deadline that {!expire_timeouts} enforces *)
  victim : Lockmgr.Policy.victim;
      (** who dies when detection finds a cycle. [Least_work] uses the lock
          footprint as its work proxy here — the manager does not see its
          clients' application steps *)
}

val default_config : config
(** Detection with youngest-victim selection (the seed behaviour). *)

val create :
  ?clock:(unit -> int) -> ?obs:Obs.Sink.t ->
  ?admission:Robust.Admission.config -> ?config:config ->
  Colock.Protocol.t -> t
(** [clock] supplies logical begin timestamps and the "now" of timeout
    deadlines (default: a counter). [?obs] defaults to the protocol's sink,
    so transaction lifecycle events (begin/commit/abort, deadlocks, victim
    and timeout aborts) land in the same stream as the lock events.
    [?admission] installs an overload-control gate: {!try_begin} then
    enforces the configured concurrency limit, and commits/aborts free
    slots for queued work (collect it with {!drain_admitted}). *)

val protocol : t -> Colock.Protocol.t
val config : t -> config

val admission : t -> Robust.Admission.t option
(** The live admission gate, when one was configured — the handle a
    {!Robust.Controller} resizes from monitor windows. *)

val begin_txn : ?kind:Transaction.kind -> t -> Transaction.t
(** Unconditional begin — bypasses any admission gate (the transaction
    holds no slot). Prefer {!try_begin} when admission is configured. *)

type begin_outcome =
  | Started of Transaction.t  (** admitted (or no gate configured) *)
  | Queued of int
      (** no free slot; the ticket identifies this request in later
          [Admission] events. The transaction starts when a slot frees —
          collect it from {!drain_admitted}. *)
  | Shed  (** refused: queue full of equal-or-higher-priority work *)

val try_begin :
  ?kind:Transaction.kind -> ?priority:Robust.Admission.priority ->
  t -> begin_outcome
(** Admission-gated begin. Queueing, eviction and shedding emit
    {!Obs.Event.Admission} events; admitted transactions start silently
    (their [Txn_begin] already marks them). *)

val drain_admitted : t -> Transaction.t list
(** Starts every queued request a freed slot can now admit (highest
    priority first, FIFO within a class) and returns the new transactions,
    oldest first. Call after {!commit} or {!abort}. *)

val find : t -> Lockmgr.Lock_table.txn_id -> Transaction.t option
val active_txns : t -> Transaction.t list

val active_count : t -> int
(** [List.length (active_txns m)] without building the list — the live
    active-transaction level a monitor gauge should agree with. *)

type acquire_outcome =
  | Granted
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
    }
      (** enqueued; re-call {!acquire} after a blocker finishes *)
  | Deadlock_victim
      (** this transaction was chosen as the victim and has been aborted *)

val acquire :
  t -> Transaction.t -> ?duration:Lockmgr.Lock_table.duration ->
  Colock.Node_id.t -> Lockmgr.Lock_mode.t -> acquire_outcome
(** Runs the protocol plan. On a wait (when the resolution detects),
    deadlock detection runs on the waits-for graph; if a cycle exists its
    victim is aborted — either this transaction ({!Deadlock_victim}) or
    another. When another victim's released locks have already granted this
    transaction's queued request, the plan resumes immediately and the call
    reports the true outcome (e.g. [Granted]) instead of a stale wait.
    Under a timeout resolution each wait carries a deadline of
    [clock () + timeout]. Aborted or committed transactions may not acquire
    ([Invalid_argument]). *)

val expire_timeouts : ?now:int -> t -> Transaction.t list
(** Aborts (reason [Timeout_victim]) every transaction whose lock wait has
    outlived its deadline at [now] (default [clock ()]), releasing its locks
    and waking the freed waiters. Returns the victims; empty under pure
    [Detection]. Call periodically — the manager has no scheduler of its
    own. *)

val commit :
  ?release_long:bool -> t -> Transaction.t -> Lockmgr.Lock_table.grant list
(** Releases the transaction's locks — all of them for short transactions;
    for long transactions only the short-duration ones (check-out locks
    persist across commits, §3.1) unless [release_long] is set (end of the
    whole conversational session). Returns the queued requests that became
    granted. *)

val abort :
  t -> ?reason:Transaction.abort_reason -> Transaction.t ->
  Lockmgr.Lock_table.grant list
(** Cancels waits and releases every lock (long ones included). *)

val unblocked : t -> Lockmgr.Lock_table.grant list -> Transaction.t list
(** Maps grant notifications to the transactions that stopped waiting,
    updating their status back to [Active]. *)
