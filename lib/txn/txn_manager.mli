(** The transaction manager: strict 2PL over the paper's protocol, with
    deadlock detection and victim abort. *)

type t

val create :
  ?clock:(unit -> int) -> ?obs:Obs.Sink.t -> Colock.Protocol.t -> t
(** [clock] supplies logical begin timestamps (default: a counter). [?obs]
    defaults to the protocol's sink, so transaction lifecycle events
    (begin/commit/abort, deadlocks, victim aborts) land in the same stream
    as the lock events. *)

val protocol : t -> Colock.Protocol.t
val begin_txn : ?kind:Transaction.kind -> t -> Transaction.t
val find : t -> Lockmgr.Lock_table.txn_id -> Transaction.t option
val active_txns : t -> Transaction.t list

type acquire_outcome =
  | Granted
  | Waiting of {
      node : Colock.Node_id.t;
      blockers : Lockmgr.Lock_table.txn_id list;
    }
      (** enqueued; re-call {!acquire} after a blocker finishes *)
  | Deadlock_victim
      (** this transaction was chosen as the victim and has been aborted *)

val acquire :
  t -> Transaction.t -> ?duration:Lockmgr.Lock_table.duration ->
  Colock.Node_id.t -> Lockmgr.Lock_mode.t -> acquire_outcome
(** Runs the protocol plan. On a wait, deadlock detection runs on the
    waits-for graph; if a cycle exists its victim is aborted — either this
    transaction ({!Deadlock_victim}) or another (whose demise may already
    have unblocked us; the wait stands otherwise). Aborted or committed
    transactions may not acquire ([Invalid_argument]). *)

val commit :
  ?release_long:bool -> t -> Transaction.t -> Lockmgr.Lock_table.grant list
(** Releases the transaction's locks — all of them for short transactions;
    for long transactions only the short-duration ones (check-out locks
    persist across commits, §3.1) unless [release_long] is set (end of the
    whole conversational session). Returns the queued requests that became
    granted. *)

val abort :
  t -> ?reason:Transaction.abort_reason -> Transaction.t ->
  Lockmgr.Lock_table.grant list
(** Cancels waits and releases every lock (long ones included). *)

val unblocked : t -> Lockmgr.Lock_table.grant list -> Transaction.t list
(** Maps grant notifications to the transactions that stopped waiting,
    updating their status back to [Active]. *)
