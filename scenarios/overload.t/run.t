The closed-loop overload controls, end to end. E19 sweeps offered MPL
under whole-object locking (the paper's coarse baseline, where conflicts
are brutal) and compares uncontrolled deadlock-restart churn against
wait-depth-limited restarts and the adaptive AIMD admission gate. Runs
are fully deterministic, so the table is golden: at the highest
contention point (MPL 64) the admission gate sustains strictly higher
committed throughput than uncontrolled.

  $ ../../bench/main.exe --only E19
  
  === E19: closed-loop overload control under rising MPL ===
  Whole-object locking (the paper's coarse baseline, so conflicts are
  brutal), every job arriving at once (MPL = jobs), two steps per job.
  Uncontrolled restarting vs wait-depth limiting (WDL) vs the adaptive
  AIMD admission gate fed by live monitor windows.
  
  --- E19: uncontrolled vs WDL vs adaptive admission ---
  mode          mpl  committed  aborts   wdl  gaveup  shed  makespan  thruput  avg resp
  ------------  ---  ---------  ------  ----  ------  ----  --------  -------  --------
  uncontrolled    8          8       7     0       0     0      1900     4.21   1062.50
  uncontrolled   16         16      30     0       0     0      3700     4.32   2018.75
  uncontrolled   32         32     172     0       0     0      9900     3.23   5281.25
  uncontrolled   64         61     488     0       3     0     19706     3.10  10680.17
  wdl:1           8          8       0    24       0     0      1600        5       900
  wdl:1          16         16       0    88       0     0      3112     5.14      1664
  wdl:1          32         31       0   343       1     0      6100     5.08   3208.16
  wdl:1          64         33       0  1013      31     0      6694     4.93      4438
  admission       8          8       7     0       0     0      1900     4.21   1062.50
  admission      16         11      25     0       5     0      2705     4.07   1726.25
  admission      32         19      36     0      13     0      4500     4.22   2518.75
  admission      64         34      60     0      30     0      8000     4.25   4228.12
  expected shape: uncontrolled deadlock-restart churn grows with MPL
  and collapses committed throughput at the top of the sweep; WDL
  caps wait chains early and converts the churn into cheap restarts;
  the admission gate holds concurrency near the sweet spot, so the
  backlog drains at a steady rate regardless of offered MPL.
  wrote BENCH_overload.json
  wrote BENCH_E19.json
  history seq 1 -> BENCH_HISTORY.jsonl

The controlled twin of the breach fixture — same 30 jobs, gap 10,
cost 100, plus the admission/limits/budget stanzas — passes its SLOs:

  $ colock soak ../overload_controlled.scn
  scenario            technique      committed aborts gaveup  shed crashed makespan thruput breaches
  overload_controlled proposed              30      2      0     0       0     1000   30.00        0
  soak: 1 run(s), 1 scenario(s), 0 breach(es), 1/1 certified

while the uncontrolled breach fixture still exits 3:

  $ colock soak ../breach/overload.scn
  scenario            technique      committed aborts gaveup  shed crashed makespan thruput breaches
  overload            proposed              30      0      0     0       0     1020   29.41       11
    overload             BREACH throughput > 5 (value 0.01)
    post-mortem: post-mortem/overload-proposed.jsonl (812 event(s))
  soak: 1 run(s), 1 scenario(s), 11 breach(es)
  [3]
