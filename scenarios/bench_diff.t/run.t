The committed baseline matches a fresh measurement of the committed suite
(same seeds, same simulator): the gate is clean on an unmodified tree.

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json
  bench diff: 765 comparison(s), 0 regression(s), 0 improvement(s)

A synthetic slowdown (doubled wait time, halved throughput) must trip the
gate: exit 2, one REGRESSED row per affected scenario/technique metric.

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb total_wait=2.0 --perturb throughput=0.5 > table.txt
  [2]
  $ grep -c 'REGRESSED' table.txt
  34
  $ grep 'baseline   proposed' table.txt
  baseline   proposed       throughput                  34.6821       17.341  REGRESSED -17.3411 (slack 3.47821)
  baseline   proposed       total_wait                    12930        25860  REGRESSED +12930 (slack 2616)
  $ tail -1 table.txt
  bench diff: 765 comparison(s), 34 regression(s), 0 improvement(s)

A tiny perturbation inside the tolerance band does not fire:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb total_wait=1.01
  bench diff: 765 comparison(s), 0 regression(s), 0 improvement(s)

A perturbation naming a metric nothing measured is rejected loudly — it
would otherwise silently perturb nothing and fake a passing self-test:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb warp_factor=2.0
  colock: unknown metric "warp_factor" in --perturb (known metrics: avg_response, committed, conflict_tests, crashed, deadlock_aborts, escalations, gave_up, grant_latency_count, grant_latency_max, grant_latency_mean, grant_latency_p50, grant_latency_p95, grant_latency_p99, lock.conflict_tests, lock.conversions, lock.deadlocks, lock.deescalations, lock.escalations, lock.immediate_grants, lock.releases, lock.requests, lock.timeout_aborts, lock.victim_aborts, lock.waits, lock_requests, lock_wait_count, lock_wait_max, lock_wait_mean, lock_wait_p50, lock_wait_p95, lock_wait_p99, makespan, peak_lock_entries, retry_denied, shed, throughput, timeout_aborts, total_wait, txn_response_count, txn_response_max, txn_response_mean, txn_response_p50, txn_response_p95, txn_response_p99, wdl_aborts)
  [1]

--update-baseline rewrites the store from the fresh measurement, and the
rewritten store immediately diffs clean against itself:

  $ colock bench diff --scenarios .. --baseline fresh.json --update-baseline
  bench diff: wrote fresh.json (17 run(s))
  $ colock bench diff --scenarios .. --baseline fresh.json
  bench diff: 765 comparison(s), 0 regression(s), 0 improvement(s)

A missing run in the fresh measurement (here: diffing a single scenario
against the full baseline) is baseline drift, not a pass:

  $ colock bench diff --scenarios ../baseline.scn --baseline ../../BENCH_scenarios.json > drift.txt
  [2]
  $ grep -c '^missing:' drift.txt
  14
