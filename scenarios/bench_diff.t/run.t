The committed baseline matches a fresh measurement of the committed suite
(same seeds, same simulator): the gate is clean on an unmodified tree.

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json
  bench diff: 672 comparison(s), 0 regression(s), 0 improvement(s)

A synthetic slowdown (doubled wait time, halved throughput) must trip the
gate: exit 2, one REGRESSED row per affected scenario/technique metric.

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb total_wait=2.0 --perturb throughput=0.5 > table.txt
  [2]
  $ grep -c 'REGRESSED' table.txt
  32
  $ grep 'baseline   proposed' table.txt
  baseline   proposed       throughput                  34.6821       17.341  REGRESSED -17.3411 (slack 3.47821)
  baseline   proposed       total_wait                    12930        25860  REGRESSED +12930 (slack 2616)
  $ tail -1 table.txt
  bench diff: 672 comparison(s), 32 regression(s), 0 improvement(s)

A tiny perturbation inside the tolerance band does not fire:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb total_wait=1.01
  bench diff: 672 comparison(s), 0 regression(s), 0 improvement(s)

--update-baseline rewrites the store from the fresh measurement, and the
rewritten store immediately diffs clean against itself:

  $ colock bench diff --scenarios .. --baseline fresh.json --update-baseline
  bench diff: wrote fresh.json (16 run(s))
  $ colock bench diff --scenarios .. --baseline fresh.json
  bench diff: 672 comparison(s), 0 regression(s), 0 improvement(s)

A missing run in the fresh measurement (here: diffing a single scenario
against the full baseline) is baseline drift, not a pass:

  $ colock bench diff --scenarios ../baseline.scn --baseline ../../BENCH_scenarios.json > drift.txt
  [2]
  $ grep -c '^missing:' drift.txt
  13
