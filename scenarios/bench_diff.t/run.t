The committed baseline matches a fresh measurement of the committed suite
(same seeds, same simulator): the gate is clean on an unmodified tree.

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json
  bench diff: 765 comparison(s), 0 regression(s), 0 improvement(s)
  bench diff: history seq 1 -> BENCH_HISTORY.jsonl

A synthetic slowdown (doubled wait time, halved throughput) must trip the
gate: exit 2, one REGRESSED row per affected scenario/technique metric.

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb total_wait=2.0 --perturb throughput=0.5 > table.txt
  [2]
  $ grep -c 'REGRESSED' table.txt
  34
  $ grep 'baseline   proposed' table.txt
  baseline   proposed       throughput                  34.6821       17.341  REGRESSED -17.3411 (slack 3.47821)
  baseline   proposed       total_wait                    12930        25860  REGRESSED +12930 (slack 2616)
  $ tail -1 table.txt
  bench diff: 765 comparison(s), 34 regression(s), 0 improvement(s)

A tiny perturbation inside the tolerance band does not fire:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb total_wait=1.01
  bench diff: 765 comparison(s), 0 regression(s), 0 improvement(s)

A perturbation naming a metric nothing measured is rejected loudly — it
would otherwise silently perturb nothing and fake a passing self-test:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb warp_factor=2.0
  colock: unknown metric "warp_factor" in --perturb (known metrics: avg_response, committed, conflict_tests, crashed, deadlock_aborts, escalations, gave_up, grant_latency_count, grant_latency_max, grant_latency_mean, grant_latency_p50, grant_latency_p95, grant_latency_p99, lock.conflict_tests, lock.conversions, lock.deadlocks, lock.deescalations, lock.escalations, lock.immediate_grants, lock.releases, lock.requests, lock.timeout_aborts, lock.victim_aborts, lock.waits, lock_requests, lock_wait_count, lock_wait_max, lock_wait_mean, lock_wait_p50, lock_wait_p95, lock_wait_p99, makespan, peak_lock_entries, retry_denied, shed, throughput, timeout_aborts, total_wait, txn_response_count, txn_response_max, txn_response_mean, txn_response_p50, txn_response_p95, txn_response_p99, wdl_aborts)
  [1]

--update-baseline rewrites the store from the fresh measurement, and the
rewritten store immediately diffs clean against itself:

  $ colock bench diff --scenarios .. --baseline fresh.json --update-baseline
  bench diff: wrote fresh.json (17 run(s))
  $ colock bench diff --scenarios .. --baseline fresh.json
  bench diff: 765 comparison(s), 0 regression(s), 0 improvement(s)
  bench diff: history seq 2 -> BENCH_HISTORY.jsonl

A missing run in the fresh measurement (here: diffing a single scenario
against the full baseline) is baseline drift, not a pass:

  $ colock bench diff --scenarios ../baseline.scn --baseline ../../BENCH_scenarios.json > drift.txt
  [2]
  $ grep -c '^missing:' drift.txt
  14

The JSON gate report is machine-readable: each finding names its metric
family, band direction, and the observed value against the band (delta
vs slack). The lock counters replay deterministically under the seeded
simulator, so their band is tight and a 1.5x perturbation escapes it:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb lock.waits=1.5 --json
  {"comparisons": 765,"regressions": 11,"improvements": 0,"clean": false,"findings": [{"scenario": "baseline","technique": "proposed","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 52,"fresh": 78,"verdict": "regressed","delta": 26,"slack": 23},{"scenario": "baseline","technique": "whole-object","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 121,"fresh": 181.5,"verdict": "regressed","delta": 60.5,"slack": 40.25},{"scenario": "baseline","technique": "tuple-level","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 52,"fresh": 78,"verdict": "regressed","delta": 26,"slack": 23},{"scenario": "bursty","technique": "whole-object","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 165,"fresh": 247.5,"verdict": "regressed","delta": 82.5,"slack": 51.25},{"scenario": "checkout","technique": "proposed","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 53,"fresh": 79.5,"verdict": "regressed","delta": 26.5,"slack": 23.25},{"scenario": "checkout","technique": "whole-object","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 113,"fresh": 169.5,"verdict": "regressed","delta": 56.5,"slack": 38.25},{"scenario": "checkout","technique": "tuple-level","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 56,"fresh": 84,"verdict": "regressed","delta": 28,"slack": 24},{"scenario": "hotspot","technique": "proposed","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 50,"fresh": 75,"verdict": "regressed","delta": 25,"slack": 22.5},{"scenario": "hotspot","technique": "whole-object","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 205,"fresh": 307.5,"verdict": "regressed","delta": 102.5,"slack": 61.25},{"scenario": "hotspot","technique": "tuple-level","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 50,"fresh": 75,"verdict": "regressed","delta": 25,"slack": 22.5},{"scenario": "library","technique": "whole-object","metric": "lock.waits","family": "lock counters","direction": "lower-better","base": 99,"fresh": 148.5,"verdict": "regressed","delta": 49.5,"slack": 34.75}],"missing": [],"added": []}
  [2]

--explain re-runs each regressed scenario/technique pair with JSONL
capture and ranks the regressed metrics by how far past the tolerance
band they landed, so the perturbed family leads every ranking:

  $ colock bench diff --scenarios .. --baseline ../../BENCH_scenarios.json \
  >   --perturb lock.waits=1.5 --explain > explain.txt
  [2]
  $ grep -c '^explain:' explain.txt
  11
  $ grep -c 'lock counters.*lock.waits' explain.txt
  11
  $ grep -A 1 '^explain: baseline/proposed' explain.txt
  explain: baseline/proposed: 1 regressed metric(s)
    1. lock counters     lock.waits             +26, excess 3 over slack 23
  $ ls bench-explain/baseline-proposed.jsonl
  bench-explain/baseline-proposed.jsonl
  $ colock why bench-explain/baseline-proposed.jsonl bench-explain/baseline-proposed.jsonl | head -3
  === wait-time diff: baseline/proposed ===
  base blocked 12930 across 52 wait(s); cand blocked 12930 across 52 wait(s)
  delta +0 (+0.0%)
