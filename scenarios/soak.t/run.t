The committed scenario suite, end to end: every scenario runs under the
live monitor with its inline SLO rules and (via "certify on") the trace
certifier, and the whole suite stays green — every run certifies as
conflict-serializable, two-phase and hierarchy-compliant. Runs are fully
deterministic (seeded arrivals, popularity and mix draws), so the table
is golden.

  $ colock soak ..
  scenario            technique      committed aborts gaveup  shed crashed makespan thruput breaches
  baseline            proposed              60      0      0     0       0     1730   34.68        0
  baseline            whole-object          60      0      0     0       0     4210   14.25        0
  baseline            tuple-level           60      0      0     0       0     1730   34.68        0
  bursty              proposed              80      0      0     0       0     1411   56.70        0
  bursty              whole-object          80      0      0     0       0     4247   18.84        0
  bursty              tuple-level           80      0      0     0       0     1411   56.70        0
  chaos               proposed              55      0      0     0       5     5324   10.33        0
  checkout            proposed              50      0      0     0       0    24800    2.02        0
  checkout            whole-object          50      0      0     0       0    26800    1.87        0
  checkout            tuple-level           50      0      0     0       0    24600    2.03        0
  hotspot             proposed             100      0      0     0       0     1416   70.62        0
  hotspot             whole-object         100      0      0     0       0     6608   15.13        0
  hotspot             tuple-level          100      0      0     0       0     1416   70.62        0
  library             proposed              70      0      0     0       0     1500   46.67        0
  library             whole-object          70      0      0     0       0     3240   21.60        0
  library             tuple-level           70      0      0     0       0     1500   46.67        0
  overload_controlled proposed              30      2      0     0       0     1000   30.00        0
  soak: 17 run(s), 7 scenario(s), 0 breach(es), 17/17 certified

A scenario whose SLO cannot be met exits 3 (distinct from usage errors),
and the offending rule is named with its measured value:

  $ colock soak ../breach/overload.scn
  scenario            technique      committed aborts gaveup  shed crashed makespan thruput breaches
  overload            proposed              30      0      0     0       0     1020   29.41       11
    overload             BREACH throughput > 5 (value 0.01)
    post-mortem: post-mortem/overload-proposed.jsonl (812 event(s))
  soak: 1 run(s), 1 scenario(s), 11 breach(es)
  [3]

The auto-captured post-mortem trace is a regular JSONL trace: the
offline analyzer accepts it directly, labelled after the breaching run.

  $ colock analyze post-mortem/overload-proposed.jsonl | head -3
  === contention report: overload/proposed ===
  events 812, time 0..1020
  blocked time 4170 across 21 wait(s), 0 unfinished

Every committed fixture round-trips through the canonical printer:
parse -> print -> parse -> print is a fixed point.

  $ for f in ../*.scn ../breach/*.scn; do
  >   colock soak --parse-only "$f" > a.scn
  >   colock soak --parse-only a.scn > b.scn
  >   cmp -s a.scn b.scn || echo "round-trip failed: $f"
  > done

A malformed scenario names its file, line and offending token:

  $ cat > bad.scn <<'EOF'
  > scenario bad
  > jobs twenty
  > arrivals sometimes
  > mix read=0.5 update=0.4
  > slo p99_wait{lu=} < 10
  > EOF
  $ colock soak bad.scn
  colock: bad.scn:2: bad jobs field jobs="twenty" (expected an integer)
  bad.scn:3: unknown arrival process "sometimes" (expected uniform, bursty or poisson)
  bad.scn:5: bad selector "{lu=}" after "p99_wait" (expected {lu=KIND}, e.g. p95_wait{lu=HoLU})
  [1]
