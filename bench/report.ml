(* Machine-readable companion to the experiment tables.

   Every experiment run also leaves a BENCH_<name>.json next to the build:
   one flat JSON object with the simulator metrics, the lock-table counters
   and the latency quantiles (wait time, grant latency, transaction
   response) of a deterministic instrumented reference run — the
   manufacturing mix under the proposed protocol, seeded per experiment.
   Downstream tooling can diff these across commits without scraping the
   human tables. *)

module Table = Lockmgr.Lock_table
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol

(* Stable per-experiment seed: "E5" -> 5. *)
let seed_of_experiment name =
  let digits = String.to_seq name |> Seq.filter (fun c -> c >= '0' && c <= '9') in
  match String.of_seq digits with
  | "" -> 17
  | text -> int_of_string text

let reference_metrics ~seed =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 6; seed }
  in
  let graph = Graph.build db in
  let mix = { Sim.Scenario.default_mix with jobs = 40; seed } in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let collector = Obs.Collector.create () in
  let sink = Obs.Sink.create [ Obs.Collector.handle collector ] in
  let table = Table.create ~obs:sink () in
  let protocol = Protocol.create graph table in
  let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
  let metrics = Sim.Runner.run ~table jobs in
  (metrics, table, collector)

let write ~experiment () =
  let metrics, table, collector =
    reference_metrics ~seed:(seed_of_experiment experiment)
  in
  let row =
    Sim.Metrics.row metrics
    @ List.map
        (fun (key, value) -> ("lock." ^ key, value))
        (Lockmgr.Lock_stats.row (Table.stats table))
    @ Obs.Registry.row (Obs.Collector.registry collector)
  in
  let json =
    Obs.Json.Obj
      (("experiment", Obs.Json.String experiment)
       :: List.map (fun (key, value) -> (key, Obs.Json.Float value)) row)
  in
  let path = Printf.sprintf "BENCH_%s.json" experiment in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path;
  (* the headline numbers also land in the append-only trajectory store,
     so `colock trends` can plot them across commits *)
  let headline =
    List.filter
      (fun (key, _) ->
        List.mem key
          [ "committed"; "throughput"; "total_wait"; "makespan"; "lock.waits" ])
      row
  in
  let record =
    Bench.History.append ~path:"BENCH_HISTORY.jsonl" ~source:"bench"
      ~label:experiment headline
  in
  Printf.printf "history seq %d -> BENCH_HISTORY.jsonl\n"
    record.Bench.History.seq

let write_scenarios ?(out = "BENCH_scenarios.json") ~dir () =
  match Workload.Dsl.load_path dir with
  | Error message ->
    Printf.eprintf "scenarios: %s\n" message;
    exit 1
  | Ok scenarios ->
    Bench.Baseline.save out (Bench.Baseline.collect scenarios);
    Printf.printf "wrote %s (%d scenario(s))\n" out (List.length scenarios)
