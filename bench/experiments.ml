(* The experiment harness: one entry per figure/claim of the paper (see
   DESIGN.md §3 and EXPERIMENTS.md).  Each experiment prints the table or
   artifact it regenerates. *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol
module Oid = Nf2.Oid
module Path = Nf2.Path

let q1 =
  "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ"

let q2 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r1' FOR UPDATE"

let q3 =
  "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
   r.robot_id = 'r2' FOR UPDATE"

type fig1_env = {
  db : Nf2.Database.t;
  graph : Graph.t;
  table : Table.t;
  rights : Authz.Rights.t;
  protocol : Protocol.t;
}

let fig1_env ?(rule = Protocol.Rule_4_prime) ?(library_writable = false)
    ?c_objects () =
  let db = Workload.Figure1.database ?c_objects () in
  let graph = Graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  if not library_writable then
    Authz.Rights.set_relation_default rights ~relation:"effectors" false;
  let protocol = Protocol.create ~rule ~rights graph table in
  { db; graph; table; rights; protocol }

let node steps = Option.get (Node_id.of_steps steps)

(* ------------------------------------------------------------------- E1 *)

let e1_object_graphs () =
  Tables.note "\n=== E1: object-specific lock graphs (paper Figure 5) ===";
  List.iter
    (fun schema ->
      let graph = Colock.Object_graph.of_relation ~database:"db1" schema in
      Format.printf "%a@.@." Colock.Object_graph.pp graph;
      Printf.printf "  (%d lockable-unit kinds, %d of them BLUs)\n"
        (Colock.Object_graph.node_count graph)
        (Colock.Object_graph.blu_count graph))
    [ Workload.Figure1.cells_schema; Workload.Figure1.effectors_schema ]

(* ------------------------------------------------------------------- E2 *)

let e2_units () =
  Tables.note "\n=== E2: units and superunits of cell c1 (paper Figure 6) ===";
  let env = fig1_env () in
  let e1 = node [ "db1"; "seg2"; "effectors"; "e1" ] in
  Tables.note "inner unit \"effector e1\":";
  Format.printf "%a@." (Colock.Units.pp_unit env.graph) e1;
  Tables.note "\nsuperunit parents of entry point e1 (upward propagation set):";
  List.iter
    (fun parent -> Printf.printf "  %s\n" (Node_id.to_resource parent))
    (Colock.Units.superunit_parents env.graph ~root:e1);
  let outer = Colock.Units.unit_members env.graph ~root:(Graph.root env.graph) in
  Printf.printf
    "\nouter unit: %d nodes (stops at the entry points of the %d inner units)\n"
    (List.length outer)
    (List.length
       (List.filter
          (fun entry -> Colock.Units.is_entry_point env.graph entry)
          (List.filter_map
             (fun key ->
               Graph.object_node env.graph (Oid.make ~relation:"effectors" ~key))
             [ "e1"; "e2"; "e3" ])))

(* ------------------------------------------------------------------- E3 *)

let e3_figure7 () =
  Tables.note "\n=== E3: lock sets of Q2 and Q3 (paper Figure 7) ===";
  let env = fig1_env () in
  let executor = Query.Executor.create env.db env.protocol in
  let run txn text =
    match Query.Executor.run_string executor ~txn ~wait:false text with
    | Ok _ -> ()
    | Error error ->
      Format.printf "unexpected: %a@." Query.Executor.pp_error error
  in
  run 2 q2;
  run 3 q3;
  Format.printf "%a@." Table.pp env.table;
  let q2_locks = List.length (Table.locks_of env.table ~txn:2) in
  let q3_locks = List.length (Table.locks_of env.table ~txn:3) in
  Printf.printf
    "\nQ2 holds %d locks, Q3 holds %d locks (paper: 10 each); both share\n\
     effector e2 in S mode and ran concurrently under rule 4'.\n"
    q2_locks q3_locks

(* ------------------------------------------------------------------- E4 *)

let run_mix graph technique_of_table specs =
  let table = Table.create () in
  let technique = technique_of_table table in
  let jobs = Sim.Scenario.compile graph technique specs in
  (Sim.Scenario.technique_name technique, Sim.Runner.run ~table jobs)

let proposed graph table = Sim.Scenario.Proposed (Protocol.create graph table)

let e4_granule_problem () =
  Tables.note
    "\n=== E4: the granule-oriented problem (paper 3.2.1) ===\n\
     Q1-like reads + Q2-like robot updates on 4 cells; sweep objects per cell.";
  let rows =
    List.concat_map
      (fun objects_per_cell ->
        let db =
          Workload.Generator.manufacturing
            { Workload.Generator.default_manufacturing with
              cells = 4; objects_per_cell; seed = 7 }
        in
        let graph = Graph.build db in
        let mix =
          { Sim.Scenario.default_mix with jobs = 60; arrival_gap = 5; seed = 23 }
        in
        let specs = Sim.Scenario.manufacturing_mix db graph mix in
        List.map
          (fun technique_of_table ->
            let name, metrics = run_mix graph technique_of_table specs in
            [ Tables.Int objects_per_cell; Tables.Text name;
              Tables.Int metrics.Sim.Metrics.committed;
              Tables.Int metrics.Sim.Metrics.makespan;
              Tables.Float (Sim.Metrics.throughput metrics);
              Tables.Int metrics.Sim.Metrics.total_wait;
              Tables.Int metrics.Sim.Metrics.lock_requests;
              Tables.Int metrics.Sim.Metrics.peak_lock_entries ])
          [ proposed graph; (fun _table -> Sim.Scenario.Whole_object);
            (fun _table -> Sim.Scenario.Tuple_level) ])
      [ 10; 100; 1000 ]
  in
  Tables.print ~title:"E4: Q1/Q2 mix, 60 transactions"
    ~header:[ "objs/cell"; "technique"; "committed"; "makespan"; "thruput";
              "waits"; "lock reqs"; "peak entries" ]
    rows;
  Tables.note
    "expected shape: whole-object locking pays in waits/makespan; tuple-level\n\
     pays in lock requests and table size, growing with objects per cell;\n\
     the proposed technique is best or tied on both axes."

(* ------------------------------------------------------------------- E5 *)

let e5_shared_exclusive_cost () =
  Tables.note
    "\n=== E5: X-locking one shared effector (paper 3.2.2, problem 1) ===\n\
     One effector referenced by k robots; cost to lock it exclusively.";
  let rows =
    List.map
      (fun robots ->
        let db = Workload.Generator.shared_effector ~robots in
        let graph = Graph.build db in
        let table = Table.create () in
        let protocol = Protocol.create graph table in
        let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
        let entry = Option.get (Graph.object_node graph e1) in
        let proposed_plan = Protocol.plan protocol ~txn:1 entry Mode.X in
        let naive_plan =
          Baselines.Sysr_dag.plan_exclusive_all_parents graph ~oid:e1
        in
        [ Tables.Int robots;
          Tables.Int (List.length proposed_plan);
          Tables.Int (List.length naive_plan);
          Tables.Int (Baselines.Sysr_dag.parent_enumeration_visits graph) ])
      [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  Tables.print ~title:"E5: lock requests to X one shared effector"
    ~header:[ "sharing k"; "proposed"; "naive DAG"; "scan visits" ]
    rows;
  Tables.note
    "expected shape: the proposed protocol is constant (intention chain +\n\
     entry point); the naive all-parents rule grows linearly in k and must\n\
     additionally scan the outer unit to find the referencing robots."

(* ------------------------------------------------------------------- E6 *)

let e6_from_the_side () =
  Tables.note
    "\n=== E6: from-the-side access to common data (paper 3.2.2, problem 2) ===";
  let run_naive () =
    let env = fig1_env ~library_writable:true () in
    let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
    let r2 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ] in
    List.iteri
      (fun index robot ->
        match
          Baselines.Technique.acquire env.table ~txn:(index + 1)
            (Baselines.Sysr_dag.plan_hierarchical_naive env.graph robot Mode.X)
        with
        | Baselines.Technique.Acquired _ -> ()
        | Baselines.Technique.Blocked _ -> ())
      [ r1; r2 ];
    List.length
      (Baselines.Sysr_dag.hidden_conflicts env.graph env.table ~txns:[ 1; 2 ])
  in
  let run_proposed rule library_writable =
    let env = fig1_env ~rule ~library_writable () in
    let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
    let r2 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ] in
    let acquired =
      List.filter
        (fun (txn, robot) ->
          match Protocol.try_acquire env.protocol ~txn robot Mode.X with
          | Protocol.Acquired _ -> true
          | Protocol.Blocked _ ->
            let (_ : Table.grant list) = Table.release_all env.table ~txn in
            false)
        [ (1, r1); (2, r2) ]
    in
    let conflicts =
      Baselines.Sysr_dag.hidden_conflicts ~rights:env.rights env.graph
        env.table
        ~txns:(List.map fst acquired)
    in
    (List.length acquired, List.length conflicts)
  in
  let naive_conflicts = run_naive () in
  let rule4_acquired, rule4_conflicts = run_proposed Protocol.Rule_4 true in
  let rule4p_acquired, rule4p_conflicts =
    run_proposed Protocol.Rule_4_prime false
  in
  Tables.print ~title:"E6: two updaters reaching effector e2 via different robots"
    ~header:[ "technique"; "both proceed?"; "hidden conflicts" ]
    [ [ Tables.Text "naive hierarchical DAG"; Tables.Text "yes";
        Tables.Int naive_conflicts ];
      [ Tables.Text "proposed, rule 4";
        Tables.Text (if rule4_acquired = 2 then "yes" else "no (conflict detected)");
        Tables.Int rule4_conflicts ];
      [ Tables.Text "proposed, rule 4' (library read-only)";
        Tables.Text (if rule4p_acquired = 2 then "yes" else "no");
        Tables.Int rule4p_conflicts ] ];
  Tables.note
    "expected shape: the naive protocol lets both updaters proceed with >0\n\
     undetected conflicts on e2; the proposed protocol either detects the\n\
     conflict (rule 4) or safely downgrades to shared access (rule 4')."

(* ------------------------------------------------------------------- E7 *)

let e7_authorization () =
  Tables.note
    "\n=== E7: the authorization-oriented problem (paper 3.2.3, rule 4') ===\n\
     50 robot-update transactions; sweep the fraction allowed to modify the\n\
     effector library.";
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with
        cells = 6; effectors = 6; seed = 7 }
  in
  let graph = Graph.build db in
  let mix =
    { Sim.Scenario.default_mix with jobs = 50; read_fraction = 0.0;
      arrival_gap = 2; seed = 41 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let run rule authorized_fraction =
    let table = Table.create () in
    let rights = Authz.Rights.create () in
    Authz.Rights.set_relation_default rights ~relation:"effectors" false;
    let on_begin txn =
      (* deterministic round-robin: of every 4 consecutive ids, the first
         [fraction * 4] are allowed to modify the library *)
      if float_of_int (txn mod 4) < authorized_fraction *. 4.0 then
        Authz.Rights.grant_modify rights ~txn ~relation:"effectors"
    in
    let protocol = Protocol.create ~rule ~rights graph table in
    let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
    Sim.Runner.run ~on_begin ~table jobs
  in
  let rows =
    List.concat_map
      (fun fraction ->
        let rule4 = run Protocol.Rule_4 fraction in
        let rule4_prime = run Protocol.Rule_4_prime fraction in
        [ [ Tables.Float fraction; Tables.Text "rule 4";
            Tables.Int rule4.Sim.Metrics.committed;
            Tables.Int rule4.Sim.Metrics.makespan;
            Tables.Int rule4.Sim.Metrics.total_wait;
            Tables.Int rule4.Sim.Metrics.deadlock_aborts ];
          [ Tables.Float fraction; Tables.Text "rule 4'";
            Tables.Int rule4_prime.Sim.Metrics.committed;
            Tables.Int rule4_prime.Sim.Metrics.makespan;
            Tables.Int rule4_prime.Sim.Metrics.total_wait;
            Tables.Int rule4_prime.Sim.Metrics.deadlock_aborts ] ])
      [ 0.0; 0.25; 0.5; 1.0 ]
  in
  Tables.print ~title:"E7: rule 4 vs rule 4' under authorization"
    ~header:[ "authorized"; "rule"; "committed"; "makespan"; "waits"; "aborts" ]
    rows;
  Tables.note
    "expected shape: rule 4 is insensitive to authorization and serializes on\n\
     shared effectors; rule 4' approaches it as the authorized fraction grows\n\
     and wins clearly when most transactions cannot modify the library."

(* ------------------------------------------------------------------- E8 *)

let e8_escalation_anticipation () =
  Tables.note
    "\n=== E8: anticipation of lock escalations (paper 4.5, [HDKS89]) ===\n\
     Reading all c_objects of one cell; sweep member count (threshold 16).";
  let threshold = 16 in
  let rows =
    List.map
      (fun members ->
        let env = fig1_env ~c_objects:members () in
        (* anticipated: the query-specific lock graph picks the granule *)
        let executor =
          Query.Executor.create ~threshold env.db env.protocol
        in
        let anticipated_requests, anticipated_escalations =
          match Query.Executor.run_string executor ~txn:1 q1 with
          | Ok result ->
            ( result.Query.Executor.locks_requested,
              (Table.stats env.table).Lockmgr.Lock_stats.escalations )
          | Error _ -> (-1, -1)
        in
        let anticipated_peak = Table.peak_entry_count env.table in
        (* naive: lock every member, escalate at run time when past the
           threshold *)
        let naive = fig1_env ~c_objects:members () in
        let c1 = Option.get (Graph.object_node naive.graph (Oid.make ~relation:"cells" ~key:"c1")) in
        let holu = Node_id.child c1 "c_objects" in
        let member_nodes = (Graph.node_exn naive.graph holu).Graph.children in
        List.iter
          (fun member ->
            match Protocol.acquire naive.protocol ~txn:1 member Mode.S with
            | Protocol.Acquired _ -> ()
            | Protocol.Blocked _ -> ())
          member_nodes;
        let (_ : Colock.Escalation.escalation_result) =
          Colock.Escalation.maybe_escalate naive.protocol ~txn:1 ~threshold
            ~parent:holu
        in
        let naive_stats = Table.stats naive.table in
        [ Tables.Int members;
          Tables.Int anticipated_requests;
          Tables.Int anticipated_peak;
          Tables.Int anticipated_escalations;
          Tables.Int naive_stats.Lockmgr.Lock_stats.requests;
          Tables.Int (Table.peak_entry_count naive.table);
          Tables.Int naive_stats.Lockmgr.Lock_stats.escalations ])
      [ 4; 16; 64; 256 ]
  in
  Tables.print ~title:"E8: anticipated vs naive fine-grain locking"
    ~header:[ "members"; "ant. reqs"; "ant. peak"; "ant. escal";
              "naive reqs"; "naive peak"; "naive escal" ]
    rows;
  Tables.note
    "expected shape: anticipation keeps requests and the lock table flat (the\n\
     c_objects HoLU is chosen up front); naive fine-grain locking grows\n\
     linearly and needs a run-time escalation once past the threshold."

(* ------------------------------------------------------------------- E9 *)

(* A random member node at the leaf level of a deep assembly. *)
let random_leaf_member state graph ~depth asm_key =
  let asm_node =
    Option.get
      (Graph.object_node graph (Oid.make ~relation:"assemblies" ~key:asm_key))
  in
  let rec descend node_id remaining =
    if remaining = 0 then node_id
    else
      let holu =
        if remaining = depth then Node_id.child node_id "tree"
        else Node_id.child node_id "children"
      in
      let members = (Graph.node_exn graph holu).Graph.children in
      let pick = List.nth members (Random.State.int state (List.length members)) in
      descend pick (remaining - 1)
  in
  descend asm_node depth

let e9_scaling_claim () =
  Tables.note
    "\n=== E9: the 5 scaling claim ===\n\
     \"The deeper the structure / the more common data / the longer the\n\
     transactions / the more restrictive the modes - the higher the benefit.\"";
  (* (a) depth sweep *)
  let depth_rows =
    List.map
      (fun depth ->
        let db =
          Workload.Generator.deep
            { Workload.Generator.default_deep with
              depth; fanout = 3; objects = 2; share = false; parts = 0 }
        in
        let graph = Graph.build db in
        let state = Random.State.make [| 3 |] in
        let specs =
          List.init 40 (fun index ->
              let asm = Printf.sprintf "a%d" (1 + Random.State.int state 2) in
              let target = random_leaf_member state graph ~depth asm in
              { Sim.Scenario.arrival = index * 5;
                ops =
                  [ (if Random.State.bool state then
                       Sim.Scenario.Node_read target
                     else Sim.Scenario.Node_update target) ];
                access_cost = 100;
                priority = Robust.Admission.Normal })
        in
        let _name, proposed_metrics = run_mix graph (proposed graph) specs in
        let _name, whole_metrics =
          run_mix graph (fun _table -> Sim.Scenario.Whole_object) specs
        in
        let benefit =
          float_of_int whole_metrics.Sim.Metrics.makespan
          /. float_of_int (max 1 proposed_metrics.Sim.Metrics.makespan)
        in
        [ Tables.Int depth;
          Tables.Int proposed_metrics.Sim.Metrics.makespan;
          Tables.Int whole_metrics.Sim.Metrics.makespan;
          Tables.Float benefit ])
      [ 1; 2; 3; 4 ]
  in
  Tables.print
    ~title:"E9a: structure depth (leaf-level accesses, 2 assemblies)"
    ~header:[ "depth"; "proposed makespan"; "whole-object makespan"; "benefit" ]
    depth_rows;
  (* (b) sharing sweep: fewer effectors = more sharing per effector *)
  let sharing_rows =
    List.map
      (fun effectors ->
        let db =
          Workload.Generator.manufacturing
            { Workload.Generator.default_manufacturing with
              cells = 6; effectors; seed = 7 }
        in
        let graph = Graph.build db in
        let mix =
          { Sim.Scenario.default_mix with jobs = 50; read_fraction = 0.0;
            arrival_gap = 2; seed = 41 }
        in
        let specs = Sim.Scenario.manufacturing_mix db graph mix in
        let run rule =
          let table = Table.create () in
          let rights = Authz.Rights.create () in
          Authz.Rights.set_relation_default rights ~relation:"effectors" false;
          let protocol = Protocol.create ~rule ~rights graph table in
          let jobs =
            Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs
          in
          Sim.Runner.run ~table jobs
        in
        let rule4 = run Protocol.Rule_4 in
        let rule4_prime = run Protocol.Rule_4_prime in
        let sharing =
          float_of_int
            (6 * Workload.Generator.default_manufacturing.Workload.Generator.robots_per_cell
             * Workload.Generator.default_manufacturing.Workload.Generator.effectors_per_robot)
          /. float_of_int effectors
        in
        [ Tables.Int effectors; Tables.Float sharing;
          Tables.Int rule4.Sim.Metrics.total_wait;
          Tables.Int rule4_prime.Sim.Metrics.total_wait;
          Tables.Float
            (float_of_int rule4.Sim.Metrics.makespan
             /. float_of_int (max 1 rule4_prime.Sim.Metrics.makespan)) ])
      [ 32; 8; 2 ]
  in
  Tables.print
    ~title:"E9b: abundance of common data (robot updates, library read-only)"
    ~header:[ "effectors"; "avg sharing"; "rule4 waits"; "rule4' waits";
              "benefit" ]
    sharing_rows;
  (* (c) transaction length: longer lock-holding (check-out-like durations) *)
  let length_rows =
    List.map
      (fun access_cost ->
        let db =
          Workload.Generator.manufacturing
            { Workload.Generator.default_manufacturing with cells = 6; seed = 7 }
        in
        let graph = Graph.build db in
        let mix =
          { Sim.Scenario.default_mix with jobs = 30; access_cost;
            arrival_gap = 10; seed = 59 }
        in
        let specs = Sim.Scenario.manufacturing_mix db graph mix in
        let _name, proposed_metrics = run_mix graph (proposed graph) specs in
        let _name, whole_metrics =
          run_mix graph (fun _table -> Sim.Scenario.Whole_object) specs
        in
        [ Tables.Int access_cost;
          Tables.Int proposed_metrics.Sim.Metrics.makespan;
          Tables.Int whole_metrics.Sim.Metrics.makespan;
          Tables.Float
            (float_of_int whole_metrics.Sim.Metrics.makespan
             /. float_of_int (max 1 proposed_metrics.Sim.Metrics.makespan));
          Tables.Int
            (whole_metrics.Sim.Metrics.makespan
             - proposed_metrics.Sim.Metrics.makespan) ])
      [ 50; 200; 800; 3200 ]
  in
  Tables.print
    ~title:"E9c: transaction length (lock-holding duration per transaction)"
    ~header:[ "duration"; "proposed makespan"; "whole-object makespan";
              "ratio"; "time saved" ]
    length_rows;
  (* (d) restrictiveness of modes *)
  let update_rows =
    List.map
      (fun update_fraction ->
        let db =
          Workload.Generator.manufacturing
            { Workload.Generator.default_manufacturing with cells = 6; seed = 7 }
        in
        let graph = Graph.build db in
        let mix =
          { Sim.Scenario.default_mix with jobs = 50;
            read_fraction = 1.0 -. update_fraction; arrival_gap = 4; seed = 61 }
        in
        let specs = Sim.Scenario.manufacturing_mix db graph mix in
        let _name, proposed_metrics = run_mix graph (proposed graph) specs in
        let _name, whole_metrics =
          run_mix graph (fun _table -> Sim.Scenario.Whole_object) specs
        in
        [ Tables.Float update_fraction;
          Tables.Int proposed_metrics.Sim.Metrics.total_wait;
          Tables.Int whole_metrics.Sim.Metrics.total_wait;
          Tables.Float
            (float_of_int whole_metrics.Sim.Metrics.makespan
             /. float_of_int (max 1 proposed_metrics.Sim.Metrics.makespan)) ])
      [ 0.0; 0.5; 1.0 ]
  in
  Tables.print ~title:"E9d: restrictiveness (update fraction)"
    ~header:[ "update frac"; "proposed waits"; "whole-object waits"; "benefit" ]
    update_rows;
  Tables.note
    "expected shape: the benefit grows along the depth, sharing and duration\n\
     axes, as the paper's 5 predicts; for restrictiveness it appears as soon\n\
     as X modes enter the mix (at 100% updates both techniques additionally\n\
     serialize same-robot writers, so the gap narrows again)."

(* ------------------------------------------------------------------ E10 *)

let e10_disjoint_overhead () =
  Tables.note
    "\n=== E10: overhead on purely disjoint data (paper 4.6, disadvantage 2) ===";
  let db =
    Workload.Generator.deep
      { Workload.Generator.default_deep with share = false; parts = 0;
        depth = 1; objects = 4 }
  in
  let graph = Graph.build db in
  let table = Table.create () in
  let protocol = Protocol.create graph table in
  let a1 = Option.get (Graph.object_node graph (Oid.make ~relation:"assemblies" ~key:"a1")) in
  let proposed_plan = Protocol.plan protocol ~txn:1 a1 Mode.X in
  let system_r_plan = Baselines.Technique.with_ancestors graph a1 Mode.X in
  let env = fig1_env () in
  let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
  let non_disjoint_plan = Protocol.plan env.protocol ~txn:1 r1 Mode.X in
  Tables.print ~title:"E10: lock requests for an exclusive object access"
    ~header:[ "scenario"; "proposed"; "System R DAG" ]
    [ [ Tables.Text "disjoint assembly (X on object)";
        Tables.Int (List.length proposed_plan);
        Tables.Int (List.length system_r_plan) ];
      [ Tables.Text "non-disjoint robot r1 (X, rule 4')";
        Tables.Int (List.length non_disjoint_plan);
        Tables.Text "6 (unsound: misses e1/e2)" ] ];
  Tables.note
    "expected shape: on disjoint data the proposed protocol degenerates to\n\
     exactly the System R plan (identical request count); on non-disjoint\n\
     data it pays 4 extra entries (seg2, relation, e1, e2) for correctness."

(* ------------------------------------------------------------------ E11 *)

let e11_qualitative_matrix () =
  Tables.note
    "\n=== E11: the qualitative evaluation, measured (paper 4.6) ===";
  (* Q1 || Q2 concurrency per technique *)
  let q1_q2 technique_plans =
    let env = fig1_env ~library_writable:true () in
    let c1 = Oid.make ~relation:"cells" ~key:"c1" in
    let first, second = technique_plans env c1 in
    let outcome_1 = Baselines.Technique.acquire env.table ~txn:1 first in
    let outcome_2 =
      Baselines.Technique.acquire env.table ~txn:2 ~wait:false second
    in
    (match outcome_1, outcome_2 with
     | Baselines.Technique.Acquired _, Baselines.Technique.Acquired _ -> "yes"
     | Baselines.Technique.Acquired _, Baselines.Technique.Blocked _ -> "no"
     | Baselines.Technique.Blocked _, _ -> "n/a")
  in
  let to_requests steps =
    List.map
      (fun { Protocol.node; mode; _ } -> { Baselines.Technique.node; mode })
      steps
  in
  let proposed_plans env c1 =
    let c_objects = Node_id.child (Option.get (Graph.object_node env.graph c1)) "c_objects" in
    let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
    ( to_requests (Protocol.plan env.protocol ~txn:1 c_objects Mode.S),
      to_requests (Protocol.plan env.protocol ~txn:2 r1 Mode.X) )
  in
  let whole_plans env c1 =
    ( Baselines.Whole_object.plan env.graph ~oid:c1 Mode.S,
      Baselines.Whole_object.plan env.graph ~oid:c1 Mode.X )
  in
  let tuple_plans env c1 =
    ( Baselines.Tuple_level.plan env.graph ~oid:c1
        ~target:(Path.of_string "c_objects") Mode.S,
      Baselines.Tuple_level.plan env.graph ~oid:c1
        ~target:(Path.of_string "robots") Mode.X )
  in
  (* lock counts for Q1 on a 100-object cell *)
  let q1_locks technique =
    let env = fig1_env ~c_objects:100 () in
    let c1 = Oid.make ~relation:"cells" ~key:"c1" in
    let c_objects = Node_id.child (Option.get (Graph.object_node env.graph c1)) "c_objects" in
    match technique with
    | `Proposed -> List.length (Protocol.plan env.protocol ~txn:1 c_objects Mode.S)
    | `Whole -> List.length (Baselines.Whole_object.plan env.graph ~oid:c1 Mode.S)
    | `Tuple ->
      List.length
        (Baselines.Tuple_level.plan env.graph ~oid:c1
           ~target:(Path.of_string "c_objects") Mode.S)
  in
  (* X on an effector shared by 32 robots *)
  let shared_cost technique =
    let db = Workload.Generator.shared_effector ~robots:32 in
    let graph = Graph.build db in
    let e1 = Oid.make ~relation:"effectors" ~key:"e1" in
    match technique with
    | `Proposed ->
      let table = Table.create () in
      let protocol = Protocol.create graph table in
      let entry = Option.get (Graph.object_node graph e1) in
      List.length (Protocol.plan protocol ~txn:1 entry Mode.X)
    | `Naive ->
      List.length (Baselines.Sysr_dag.plan_exclusive_all_parents graph ~oid:e1)
  in
  Tables.print ~title:"E11: technique x problem matrix"
    ~header:[ "technique"; "Q1||Q2?"; "Q1 locks (100 objs)";
              "X shared (k=32)"; "hidden conflicts" ]
    [ [ Tables.Text "proposed (rules 1-5, 4')";
        Tables.Text (q1_q2 proposed_plans);
        Tables.Int (q1_locks `Proposed);
        Tables.Int (shared_cost `Proposed); Tables.Int 0 ];
      [ Tables.Text "whole-object (XSQL)"; Tables.Text (q1_q2 whole_plans);
        Tables.Int (q1_locks `Whole); Tables.Text "n/a"; Tables.Int 0 ];
      [ Tables.Text "tuple-level"; Tables.Text (q1_q2 tuple_plans);
        Tables.Int (q1_locks `Tuple); Tables.Text "n/a"; Tables.Int 0 ];
      [ Tables.Text "naive DAG (all parents)"; Tables.Text "yes";
        Tables.Text "n/a"; Tables.Int (shared_cost `Naive); Tables.Int 0 ];
      [ Tables.Text "naive DAG (hierarchical)"; Tables.Text "yes";
        Tables.Text "n/a"; Tables.Text "6 (unsound)"; Tables.Int 2 ] ];
  Tables.note
    "hidden-conflict counts from E6; \"n/a\" marks plans the technique does\n\
     not distinguish (whole-object locks everything either way)."

(* ------------------------------------------------------------------ E12 *)

let e12_nested_common_data () =
  Tables.note
    "\n=== E12: nested common data (paper 2: common data may again contain \
     common data) ===\n\
     products -> lib1 -> ... -> libN; X one product under rule 4.";
  let rows =
    List.map
      (fun levels ->
        let db =
          Workload.Generator.nested
            { Workload.Generator.default_nested with levels }
        in
        let graph = Graph.build db in
        let table = Table.create () in
        let protocol = Protocol.create ~rule:Protocol.Rule_4 graph table in
        let prod1 = Oid.make ~relation:"products" ~key:"prod1" in
        let product = Option.get (Graph.object_node graph prod1) in
        let plan = Protocol.plan protocol ~txn:1 product Mode.X in
        let entry_locks =
          List.length
            (List.filter
               (fun { Protocol.reason; _ } ->
                 reason = Protocol.Downward_propagation)
               plan)
        in
        (* X on the deepest library item: proposed vs the all-parents rule *)
        let deepest = Oid.make ~relation:(Printf.sprintf "lib%d" levels)
            ~key:(Printf.sprintf "lib%d_1" levels) in
        let deepest_node = Option.get (Graph.object_node graph deepest) in
        let proposed_deep = Protocol.plan protocol ~txn:1 deepest_node Mode.X in
        let naive_deep =
          Baselines.Sysr_dag.plan_exclusive_all_parents graph ~oid:deepest
        in
        [ Tables.Int levels; Tables.Int (List.length plan);
          Tables.Int entry_locks;
          Tables.Int (List.length proposed_deep);
          Tables.Int (List.length naive_deep) ])
      [ 1; 2; 3; 4 ]
  in
  Tables.print ~title:"E12: lock requests on nested common data"
    ~header:[ "library levels"; "X product (proposed)"; "entry points reached";
              "X deepest item (proposed)"; "X deepest item (naive DAG)" ]
    rows;
  Tables.note
    "expected shape: the proposed plan for a product grows only with the\n\
     entry points actually reachable; X-locking the deepest shared item\n\
     stays constant for the proposed protocol while the all-parents rule\n\
     must lock a chain per referencing component."

(* ------------------------------------------------------------------ E13 *)

let e13_deescalation () =
  Tables.note
    "\n=== E13: de-escalation (paper 5 future work, implemented) ===\n\
     A long transaction X-locked cell c1 as a whole but only works on robot\n\
     r1; a reader wants the c_objects.";
  let run ~deescalate =
    let env = fig1_env ~library_writable:true () in
    let c1 = node [ "db1"; "seg1"; "cells"; "c1" ] in
    let r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
    let c_objects = node [ "db1"; "seg1"; "cells"; "c1"; "c_objects" ] in
    (match Protocol.try_acquire env.protocol ~txn:1 c1 Mode.X with
     | Protocol.Acquired _ -> ()
     | Protocol.Blocked _ -> invalid_arg "uncontended");
    if deescalate then begin
      match
        Colock.Escalation.deescalate env.protocol ~txn:1 c1
          ~keep:[ (r1, Mode.X) ]
      with
      | Ok _grants -> ()
      | Error _ -> invalid_arg "de-escalation failed"
    end;
    match Protocol.try_acquire env.protocol ~txn:2 c_objects Mode.S with
    | Protocol.Acquired _ -> "proceeds"
    | Protocol.Blocked _ -> "blocked"
  in
  Tables.print ~title:"E13: reader of c_objects vs long holder of cell c1"
    ~header:[ "long transaction"; "reader outcome" ]
    [ [ Tables.Text "holds X on the whole cell";
        Tables.Text (run ~deescalate:false) ];
      [ Tables.Text "de-escalated to X on robot r1";
        Tables.Text (run ~deescalate:true) ] ];
  Tables.note
    "expected shape: without de-escalation the reader waits for the whole\n\
     (possibly week-long) check-out; after trading the coarse X for the\n\
     fine X actually needed, the reader proceeds immediately."

(* ------------------------------------------------------------------ E15 *)

let e15_resilience () =
  let module Policy = Lockmgr.Policy in
  Tables.note
    "\n=== E15: resolution strategies under rising MPL (and faults) ===\n\
     Manufacturing workload, every job arriving at once (MPL = jobs),\n\
     two steps per job so AB-BA deadlocks actually form; detection vs\n\
     lock-wait timeout vs hybrid, invariants audited after every event.";
  let chaos =
    { Sim.Fault.crash = 0.05; stall = 0.1; stall_factor = 4; hog = 0.05;
      fault_seed = 15 }
  in
  let run ~resolution ~faults ~mpl =
    let db =
      Workload.Generator.manufacturing
        { Workload.Generator.default_manufacturing with cells = 4; seed = 15 }
    in
    let graph = Graph.build db in
    let mix =
      { Sim.Scenario.default_mix with jobs = mpl; arrival_gap = 0;
        steps_per_job = 2; read_fraction = 0.2; seed = 15 }
    in
    let specs = Sim.Scenario.manufacturing_mix db graph mix in
    let table = Table.create () in
    let protocol = Protocol.create graph table in
    let jobs =
      Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs
    in
    let config =
      { Sim.Runner.default_config with resolution;
        backoff = Policy.Exponential { base = 25; cap = 400; seed = 15 };
        hog_hold = 1500; check_invariants = true }
    in
    Sim.Runner.run ~config ~faults ~table jobs
  in
  let strategies =
    [ ("detection", Policy.Detection); ("timeout", Policy.Timeout 400);
      ("hybrid", Policy.Hybrid 400) ]
  in
  let mpls = [ 4; 8; 16; 32 ] in
  let results =
    List.concat_map
      (fun (name, resolution) ->
        List.concat_map
          (fun mpl ->
            let faultless =
              (name, mpl, "none", run ~resolution ~faults:Sim.Fault.none ~mpl)
            in
            if mpl = List.nth mpls (List.length mpls - 1) then
              [ faultless;
                ( name, mpl, Sim.Fault.to_string chaos,
                  run ~resolution ~faults:chaos ~mpl ) ]
            else [ faultless ])
          mpls)
      strategies
  in
  Tables.print ~title:"E15: detection vs timeout vs hybrid"
    ~header:[ "strategy"; "mpl"; "faults"; "committed"; "dl aborts";
              "to aborts"; "crashed"; "makespan"; "avg resp"; "total wait" ]
    (List.map
       (fun (name, mpl, faults, metrics) ->
         [ Tables.Text name; Tables.Int mpl; Tables.Text faults;
           Tables.Int metrics.Sim.Metrics.committed;
           Tables.Int metrics.Sim.Metrics.deadlock_aborts;
           Tables.Int metrics.Sim.Metrics.timeout_aborts;
           Tables.Int metrics.Sim.Metrics.crashed;
           Tables.Int metrics.Sim.Metrics.makespan;
           Tables.Float (Sim.Metrics.avg_response metrics);
           Tables.Int metrics.Sim.Metrics.total_wait ])
       results);
  Tables.note
    "expected shape: detection aborts exactly the cycle members and keeps\n\
     waits short; pure timeouts trade extra (false-positive) aborts for\n\
     zero detection work and still clear every stall; hybrid matches\n\
     detection until faults make victims unreachable by cycle search.";
  let json =
    Obs.Json.List
      (List.map
         (fun (name, mpl, faults, metrics) ->
           Obs.Json.Obj
             (("strategy", Obs.Json.String name)
              :: ("mpl", Obs.Json.Int mpl)
              :: ("faults", Obs.Json.String faults)
              :: List.map
                   (fun (key, value) -> (key, Obs.Json.Float value))
                   (Sim.Metrics.row metrics)))
         results)
  in
  let path = "BENCH_resilience.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ E16 *)

let e16_contention_profile () =
  Tables.note
    "\n=== E16: contention attribution across lock granularities ===\n\
     The same manufacturing workload under whole-object locking and the\n\
     proposed colock protocol, events folded through the contention\n\
     profiler: where in the object-specific lock graph does blocked time\n\
     actually accumulate?";
  let run selector =
    let db =
      Workload.Generator.manufacturing
        { Workload.Generator.default_manufacturing with cells = 6; seed = 16 }
    in
    let graph = Graph.build db in
    let mix =
      { Sim.Scenario.default_mix with jobs = 24; arrival_gap = 5;
        read_fraction = 0.4; seed = 16 }
    in
    let specs = Sim.Scenario.manufacturing_mix db graph mix in
    let sink, ring =
      Obs.Sink.memory ~capacity:262144 ~keep:Obs.Sink.not_sim_step ()
    in
    let table =
      Table.create ~obs:sink ~meta:(Graph.lu_resolver graph) ()
    in
    let technique =
      match selector with
      | `Proposed -> Sim.Scenario.Proposed (Protocol.create graph table)
      | `Whole_object -> Sim.Scenario.Whole_object
    in
    let jobs = Sim.Scenario.compile graph technique specs in
    let config =
      { Sim.Runner.default_config with snapshot_every = Some 100 }
    in
    let _metrics = Sim.Runner.run ~config ~table jobs in
    Obs.Profile.of_events
      ~label:(Sim.Scenario.technique_name technique)
      (Obs.Ring.to_list ring)
  in
  let reports = [ run `Whole_object; run `Proposed ] in
  let label report = Option.value ~default:"?" report.Obs.Profile.label in
  Tables.print ~title:"E16: blocked time by lockable-unit level"
    ~header:[ "technique"; "level"; "blocked"; "waits"; "resources"; "share" ]
    (List.concat_map
       (fun report ->
         let total = report.Obs.Profile.total_blocked in
         List.map
           (fun level ->
             [ Tables.Text (label report);
               Tables.Text level.Obs.Profile.v_level;
               Tables.Float level.Obs.Profile.v_blocked;
               Tables.Int level.Obs.Profile.v_waits;
               Tables.Int level.Obs.Profile.v_resources;
               Tables.Float
                 (if total > 0.0 then level.Obs.Profile.v_blocked /. total
                  else 0.0) ])
           report.Obs.Profile.levels)
       reports);
  Tables.print ~title:"E16: blocked time by lock-graph depth"
    ~header:[ "technique"; "depth"; "blocked"; "waits" ]
    (List.concat_map
       (fun report ->
         List.map
           (fun depth ->
             [ Tables.Text (label report);
               Tables.Int depth.Obs.Profile.d_depth;
               Tables.Float depth.Obs.Profile.d_blocked;
               Tables.Int depth.Obs.Profile.d_waits ])
           report.Obs.Profile.depths)
       reports);
  Tables.note
    "expected shape: whole-object locking piles every blocked tick onto\n\
     the object roots (one shallow depth, few hot resources), while the\n\
     colock protocol pushes contention down to the BLU/HoLU leaves it\n\
     actually touches — less total blocked time, spread deeper.";
  let json = Obs.Json.List (List.map Obs.Profile.to_json reports) in
  let path = "BENCH_contention.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ E17 *)

let e17_monitoring_overhead () =
  Tables.note
    "\n=== E17: what does watching cost? ===\n\
     The same simulated workload four ways: observability off, cumulative\n\
     counters only (collector), the full live monitor (gauges + sliding\n\
     windows, LU-labelled), and the monitor behind a live /metrics\n\
     endpoint that gets scraped. Wall-clock per run, so the overhead of\n\
     the monitoring pipeline itself is the measurement.";
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 6; seed = 17 }
  in
  let graph = Graph.build db in
  let mix =
    { Sim.Scenario.default_mix with jobs = 40; arrival_gap = 5;
      read_fraction = 0.4; seed = 17 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let scrape ~port path =
    let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close socket)
      (fun () ->
        Unix.connect socket
          (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let request =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
            path
        in
        ignore
          (Unix.write_substring socket request 0 (String.length request)
            : int);
        let chunk = Bytes.create 4096 in
        let total = ref 0 in
        let rec drain () =
          let read = Unix.read socket chunk 0 (Bytes.length chunk) in
          if read > 0 then begin
            total := !total + read;
            drain ()
          end
        in
        drain ();
        !total)
  in
  let run_once mode =
    let sink, monitor =
      match mode with
      | `Off -> (None, None)
      | `Counters ->
        let sink = Obs.Sink.create [] in
        let collector = Obs.Collector.create () in
        Obs.Sink.attach sink (Obs.Collector.handle collector);
        (Some sink, None)
      | `Monitor | `Serve ->
        let sink = Obs.Sink.create [] in
        let monitor = Obs.Monitor.create ~span:200.0 () in
        Obs.Sink.attach sink (Obs.Monitor.handle monitor);
        (Some sink, Some monitor)
    in
    let server =
      match mode, monitor with
      | `Serve, Some monitor ->
        Some
          (Obs.Http.start ~port:0 (fun path ->
               match path with
               | "/metrics" ->
                 let body =
                   Obs.Monitor.locked monitor (fun () ->
                       Obs.Expo.render (Obs.Monitor.registry monitor))
                 in
                 Some
                   { Obs.Http.status = 200;
                     content_type = Obs.Expo.content_type; body }
               | _ -> None))
      | _ -> None
    in
    let table = Table.create ?obs:sink ~meta:(Graph.lu_resolver graph) () in
    let technique = Sim.Scenario.Proposed (Protocol.create graph table) in
    let jobs = Sim.Scenario.compile graph technique specs in
    let started = Unix.gettimeofday () in
    let metrics = Sim.Runner.run ~table jobs in
    let scraped =
      match server with
      | Some server -> scrape ~port:(Obs.Http.port server) "/metrics"
      | None -> 0
    in
    let elapsed = (Unix.gettimeofday () -. started) *. 1000.0 in
    (match server with Some server -> Obs.Http.stop server | None -> ());
    let events =
      match sink with Some sink -> Obs.Sink.emit_count sink | None -> 0
    in
    (elapsed, events, scraped, metrics.Sim.Metrics.committed)
  in
  let reps = 7 in
  let measure mode =
    (* one warmup, then the median of [reps] wall-clock runs *)
    let (_ : float * int * int * int) = run_once mode in
    let samples = List.init reps (fun _rep -> run_once mode) in
    let times =
      List.sort Float.compare
        (List.map (fun (elapsed, _, _, _) -> elapsed) samples)
    in
    let median = List.nth times (reps / 2) in
    let _, events, scraped, committed = List.hd samples in
    (median, events, scraped, committed)
  in
  let modes =
    [ ("off", `Off); ("counters", `Counters); ("monitor", `Monitor);
      ("monitor+serve", `Serve) ]
  in
  let results =
    List.map (fun (name, mode) -> (name, measure mode)) modes
  in
  let base =
    match results with
    | (_, (median, _, _, _)) :: _ -> median
    | [] -> 0.0
  in
  Tables.print ~title:"E17: monitoring overhead (median wall ms per run)"
    ~header:[ "mode"; "ms"; "vs off"; "events"; "scrape bytes" ]
    (List.map
       (fun (name, (median, events, scraped, _committed)) ->
         [ Tables.Text name; Tables.Float median;
           Tables.Float (if base > 0.0 then median /. base else 0.0);
           Tables.Int events; Tables.Int scraped ])
       results);
  Tables.note
    "expected shape: counters cost little over off; the live monitor adds\n\
     window bookkeeping per event; serving adds a background accept\n\
     thread plus rendering per scrape. All should stay within a small\n\
     multiple of the bare run — monitoring is meant to be always-on.";
  let json =
    Obs.Json.Obj
      (List.map
         (fun (name, (median, events, scraped, committed)) ->
           ( name,
             Obs.Json.Obj
               [ ("median_ms", Obs.Json.Float median);
                 ( "vs_off",
                   Obs.Json.Float
                     (if base > 0.0 then median /. base else 0.0) );
                 ("events", Obs.Json.Float (float_of_int events));
                 ("scrape_bytes", Obs.Json.Float (float_of_int scraped));
                 ("committed", Obs.Json.Float (float_of_int committed)) ] ))
         results)
  in
  let path = "BENCH_obs_overhead.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ E19 *)

let e19_overload_control () =
  let module Policy = Lockmgr.Policy in
  Tables.note
    "\n=== E19: closed-loop overload control under rising MPL ===\n\
     Whole-object locking (the paper's coarse baseline, so conflicts are\n\
     brutal), every job arriving at once (MPL = jobs), two steps per job.\n\
     Uncontrolled restarting vs wait-depth limiting (WDL) vs the adaptive\n\
     AIMD admission gate fed by live monitor windows.";
  let run ~mode ~mpl =
    let db =
      Workload.Generator.manufacturing
        { Workload.Generator.default_manufacturing with cells = 4; seed = 19 }
    in
    let graph = Graph.build db in
    let mix =
      { Sim.Scenario.default_mix with jobs = mpl; arrival_gap = 0;
        steps_per_job = 2; read_fraction = 0.2; seed = 19 }
    in
    let specs = Sim.Scenario.manufacturing_mix db graph mix in
    let table = Table.create ~meta:(Graph.lu_resolver graph) () in
    let jobs = Sim.Scenario.compile graph Sim.Scenario.Whole_object specs in
    let base =
      { Sim.Runner.default_config with
        backoff = Policy.Exponential { base = 25; cap = 400; seed = 19 };
        check_invariants = true }
    in
    let config =
      match mode with
      | `Uncontrolled -> base
      | `Wdl -> { base with restart = Policy.Wait_depth 1 }
      | `Admission ->
        { base with
          overload =
            Some
              { Sim.Runner.admission =
                  Some
                    { Robust.Admission.default_config with
                      initial = 4; min_limit = 2; max_limit = 16;
                      (* queue holds the whole backlog: the gate schedules
                         work, it does not drop it *)
                      queue_capacity = mpl };
                controller = Robust.Controller.default_config;
                budget = Some Robust.Budget.default_config;
                breaker = Some Robust.Breaker.default_config } }
    in
    Sim.Runner.run ~config ~table jobs
  in
  let modes =
    [ ("uncontrolled", `Uncontrolled); ("wdl:1", `Wdl);
      ("admission", `Admission) ]
  in
  let mpls = [ 8; 16; 32; 64 ] in
  let results =
    List.concat_map
      (fun (name, mode) ->
        List.map (fun mpl -> (name, mpl, run ~mode ~mpl)) mpls)
      modes
  in
  Tables.print ~title:"E19: uncontrolled vs WDL vs adaptive admission"
    ~header:[ "mode"; "mpl"; "committed"; "aborts"; "wdl"; "gaveup"; "shed";
              "makespan"; "thruput"; "avg resp" ]
    (List.map
       (fun (name, mpl, metrics) ->
         [ Tables.Text name; Tables.Int mpl;
           Tables.Int metrics.Sim.Metrics.committed;
           Tables.Int
             (metrics.Sim.Metrics.deadlock_aborts
              + metrics.Sim.Metrics.timeout_aborts);
           Tables.Int metrics.Sim.Metrics.wdl_aborts;
           Tables.Int metrics.Sim.Metrics.gave_up;
           Tables.Int metrics.Sim.Metrics.shed;
           Tables.Int metrics.Sim.Metrics.makespan;
           Tables.Float (Sim.Metrics.throughput metrics);
           Tables.Float (Sim.Metrics.avg_response metrics) ])
       results);
  Tables.note
    "expected shape: uncontrolled deadlock-restart churn grows with MPL\n\
     and collapses committed throughput at the top of the sweep; WDL\n\
     caps wait chains early and converts the churn into cheap restarts;\n\
     the admission gate holds concurrency near the sweet spot, so the\n\
     backlog drains at a steady rate regardless of offered MPL.";
  let json =
    Obs.Json.List
      (List.map
         (fun (name, mpl, metrics) ->
           Obs.Json.Obj
             (("mode", Obs.Json.String name)
              :: ("mpl", Obs.Json.Int mpl)
              :: List.map
                   (fun (key, value) -> (key, Obs.Json.Float value))
                   (Sim.Metrics.row metrics)))
         results)
  in
  let path = "BENCH_overload.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ E20 *)

let e20_blame_overhead () =
  Tables.note
    "\n=== E20: what does assigning blame cost — and is it exact? ===\n\
     The same simulated workload with a plain trace capture (the\n\
     [--trace] baseline) and with the online blame accumulator attached:\n\
     the always-on delta must stay within 10% of the bare capture. The\n\
     offline folds (profile + blame + flame) are priced separately in\n\
     absolute ms, and every attribution identity must hold on the\n\
     captured stream.";
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 6; seed = 20 }
  in
  let graph = Graph.build db in
  let mix =
    { Sim.Scenario.default_mix with jobs = 300; arrival_gap = 5;
      read_fraction = 0.4; seed = 20 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let run_once mode =
    let sink = Obs.Sink.create [] in
    let captured = ref [] in
    Obs.Sink.attach sink (fun event -> captured := event :: !captured);
    (match mode with
     | `Trace -> ()
     | `Blame ->
       let blame = Obs.Blame.create () in
       Obs.Sink.attach sink (Obs.Blame.handle blame));
    let table = Table.create ~obs:sink ~meta:(Graph.lu_resolver graph) () in
    let technique = Sim.Scenario.Proposed (Protocol.create graph table) in
    let jobs = Sim.Scenario.compile graph technique specs in
    let started = Unix.gettimeofday () in
    let (_ : Sim.Metrics.t) = Sim.Runner.run ~table jobs in
    let elapsed = (Unix.gettimeofday () -. started) *. 1000.0 in
    (elapsed, List.rev !captured)
  in
  let reps = 7 in
  let median_of samples = List.nth (List.sort Float.compare samples) (reps / 2) in
  let measure mode =
    (* one warmup, then the median of [reps] wall-clock runs *)
    let (_ : float * Obs.Event.t list) = run_once mode in
    let samples = List.init reps (fun _rep -> run_once mode) in
    let median = median_of (List.map (fun (elapsed, _) -> elapsed) samples) in
    let _, events = List.hd samples in
    (median, events)
  in
  let modes = [ ("trace", `Trace); ("+blame", `Blame) ] in
  let results = List.map (fun (name, mode) -> (name, measure mode)) modes in
  let base =
    match results with (_, (median, _)) :: _ -> median | [] -> 0.0
  in
  let events =
    match results with
    | (_, (_, events)) :: _ -> events
    | [] -> []
  in
  (* the offline folds are post-processing, not per-run overhead: price
     them on their own, as absolute wall time over the captured stream *)
  let fold_once () =
    let started = Unix.gettimeofday () in
    let profile = Obs.Profile.of_events events in
    let flame = Obs.Flame.of_report profile in
    let report = Obs.Blame.of_events events in
    ignore (Obs.Flame.total flame : float);
    ignore (report.Obs.Blame.total_blamed : float);
    (Unix.gettimeofday () -. started) *. 1000.0
  in
  let (_ : float) = fold_once () in
  let fold_ms = median_of (List.init reps (fun _rep -> fold_once ())) in
  (* --------------------------- attribution exactness on the captured run *)
  let profile = Obs.Profile.of_events events in
  let report = Obs.Blame.of_events events in
  let flame = Obs.Flame.of_report profile in
  let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a) in
  let share_sum wait =
    List.fold_left
      (fun acc { Obs.Blame.sh_blame; _ } -> acc +. sh_blame)
      0.0 wait.Obs.Blame.w_shares
  in
  let blocked_agree =
    close profile.Obs.Profile.total_blocked report.Obs.Blame.total_blocked
  in
  let blame_conserves =
    close report.Obs.Blame.total_blocked report.Obs.Blame.total_blamed
  in
  let shares_exact =
    List.for_all
      (fun wait -> close (Obs.Blame.duration wait) (share_sum wait))
      report.Obs.Blame.waits
  in
  let blockers_partition =
    close report.Obs.Blame.total_blamed
      (List.fold_left
         (fun acc { Obs.Blame.k_blame; _ } -> acc +. k_blame)
         0.0 report.Obs.Blame.blockers)
  in
  let flame_total =
    close profile.Obs.Profile.total_blocked (Obs.Flame.total flame)
  in
  (* the bounded sketch must agree exactly with the true per-resource
     blocked time while the catalog fits in k *)
  let sketch = Obs.Sketch.create ~k:32 in
  List.iter
    (fun { Obs.Profile.r_resource; r_blocked; _ } ->
      ignore (Obs.Sketch.observe ~weight:r_blocked sketch r_resource
              : string option))
    profile.Obs.Profile.resources;
  let sketch_exact =
    List.length profile.Obs.Profile.resources > 32
    || List.for_all
         (fun { Obs.Profile.r_resource; r_blocked; _ } ->
           match Obs.Sketch.find sketch r_resource with
           | Some (estimate, error) -> close estimate r_blocked && error = 0.0
           | None -> false)
         profile.Obs.Profile.resources
  in
  let checks =
    [ ("blame total = profile total", blocked_agree);
      ("blamed = blocked (conservation)", blame_conserves);
      ("wait shares sum to durations", shares_exact);
      ("blocker table partitions the total", blockers_partition);
      ("flame total = profile total", flame_total);
      ("sketch exact below capacity", sketch_exact) ]
  in
  Tables.print ~title:"E20: blame pipeline overhead (median wall ms per run)"
    ~header:[ "mode"; "ms"; "vs trace"; "events" ]
    (List.map
       (fun (name, (median, events)) ->
         [ Tables.Text name; Tables.Float median;
           Tables.Float (if base > 0.0 then median /. base else 0.0);
           Tables.Int (List.length events) ])
       results
     @ [ [ Tables.Text "offline folds"; Tables.Float fold_ms;
           Tables.Text "-"; Tables.Int (List.length events) ] ]);
  Tables.print ~title:"E20: attribution exactness"
    ~header:[ "identity"; "holds" ]
    (List.map
       (fun (name, holds) ->
         [ Tables.Text name; Tables.Text (if holds then "yes" else "NO") ])
       checks);
  Tables.note
    "expected shape: the online blame accumulator costs hashtable work\n\
     per lock event, well under the 10% budget over the bare capture\n\
     (that is the number that must stay small — it is always on); the\n\
     offline folds are one pass over the captured list, priced in\n\
     absolute ms because they run on demand. Every identity must hold —\n\
     blame is only useful if it is conservative.";
  let json =
    Obs.Json.Obj
      (List.map
         (fun (name, (median, events)) ->
           ( name,
             Obs.Json.Obj
               [ ("median_ms", Obs.Json.Float median);
                 ( "vs_trace",
                   Obs.Json.Float
                     (if base > 0.0 then median /. base else 0.0) );
                 ("events", Obs.Json.Int (List.length events)) ] ))
         results
       @ [ ("offline_folds_ms", Obs.Json.Float fold_ms);
           ( "exactness",
             Obs.Json.Obj
               (List.map
                  (fun (name, holds) ->
                    (name, Obs.Json.Bool holds))
                  checks) );
           ( "total_blocked",
             Obs.Json.Float profile.Obs.Profile.total_blocked ) ])
  in
  let path = "BENCH_blame.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ E21 *)

let e21_certifier () =
  Tables.note
    "\n=== E21: how fast is the certifier — and is it exact? ===\n\
     A real simulated workload is captured once; the offline certifier\n\
     then replays the stream and must (a) certify the real run clean,\n\
     (b) reject the same stream with a fabricated conflict cycle or a\n\
     post-release acquire spliced in, blaming exactly the corrupted\n\
     transactions, and (c) do all of it at a throughput that keeps\n\
     certification viable as a routine post-run gate.";
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 6; seed = 21 }
  in
  let graph = Graph.build db in
  let mix =
    { Sim.Scenario.default_mix with jobs = 300; arrival_gap = 5;
      read_fraction = 0.4; seed = 21 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let sink = Obs.Sink.create [] in
  let captured = ref [] in
  Obs.Sink.attach sink (fun event -> captured := event :: !captured);
  let table = Table.create ~obs:sink ~meta:(Graph.lu_resolver graph) () in
  let technique = Sim.Scenario.Proposed (Protocol.create graph table) in
  let jobs = Sim.Scenario.compile graph technique specs in
  let (_ : Sim.Metrics.t) = Sim.Runner.run ~table jobs in
  let events = List.rev !captured in
  let certify stream =
    Obs.Certify.of_events ~modes:Mode.certify_modes stream
  in
  let reps = 7 in
  let median_of samples =
    List.nth (List.sort Float.compare samples) (reps / 2)
  in
  let certify_ms () =
    let started = Unix.gettimeofday () in
    let (_ : Obs.Certify.certificate) = certify events in
    (Unix.gettimeofday () -. started) *. 1000.0
  in
  let (_ : float) = certify_ms () in
  let median_ms = median_of (List.init reps (fun _rep -> certify_ms ())) in
  let certificate = certify events in
  let events_per_sec =
    if median_ms > 0.0 then
      float_of_int certificate.Obs.Certify.events /. (median_ms /. 1000.0)
    else 0.0
  in
  (* ------------------------------------------------ exactness identities *)
  let at time kind = { Obs.Event.time; kind } in
  let grant txn resource =
    at 1e9
      (Obs.Event.Lock_granted
         { txn; resource; mode = "X"; immediate = true; lu = None;
           holders = [] })
  in
  let release txn resource =
    at 1e9 (Obs.Event.Lock_released { txn; resource; lu = None })
  in
  let commit txn = at 1e9 (Obs.Event.Txn_commit { txn }) in
  let t_a = 900001 and t_b = 900002 in
  (* a criss-cross on fresh resources: T_a before T_b on ca, T_b before
     T_a on cb — exactly one conflict cycle between the two *)
  let cycled =
    events
    @ [ grant t_a "bench-ca"; release t_a "bench-ca";
        grant t_b "bench-ca"; release t_b "bench-ca";
        grant t_b "bench-cb"; release t_b "bench-cb";
        grant t_a "bench-cb"; release t_a "bench-cb";
        commit t_a; commit t_b ]
  in
  (* one transaction that keeps growing after an uncovered release *)
  let nontwopl =
    events
    @ [ grant t_a "bench-ca"; release t_a "bench-ca";
        grant t_a "bench-cb"; commit t_a; release t_a "bench-cb" ]
  in
  let cycle_certificate = certify cycled in
  let phase_certificate = certify nontwopl in
  let injected_txn = function
    | Obs.Certify.Unserializable { cycle; _ } ->
      List.for_all (fun txn -> txn = t_a || txn = t_b) cycle
    | Obs.Certify.Phase_violation { txn; _ }
    | Obs.Certify.Concurrent_conflict { txn; _ }
    | Obs.Certify.Uncovered_grant { txn; _ }
    | Obs.Certify.Escalation_violation { txn; _ } ->
      txn = t_a || txn = t_b
  in
  let cycle_caught =
    List.exists
      (function Obs.Certify.Unserializable _ -> true | _ -> false)
      cycle_certificate.Obs.Certify.violations
  in
  let phase_caught =
    List.exists
      (function Obs.Certify.Phase_violation _ -> true | _ -> false)
      phase_certificate.Obs.Certify.violations
  in
  let endpoints_committed =
    List.for_all
      (fun edge ->
        List.mem edge.Obs.Certify.e_from certificate.Obs.Certify.graph_txns
        && List.mem edge.Obs.Certify.e_to certificate.Obs.Certify.graph_txns)
      certificate.Obs.Certify.graph_edges
  in
  let dot = Obs.Dot.render certificate in
  let dot_covers_graph =
    List.for_all
      (fun txn ->
        let needle = Printf.sprintf "t%d [" txn in
        let length = String.length needle in
        let rec scan index =
          index + length <= String.length dot
          && (String.sub dot index length = needle || scan (index + 1))
        in
        scan 0)
      certificate.Obs.Certify.graph_txns
  in
  let algebra_agrees =
    let ours = Obs.Certify.default_modes and theirs = Mode.certify_modes in
    List.for_all
      (fun a ->
        List.for_all
          (fun b ->
            ours.Obs.Certify.m_compatible a b
            = theirs.Obs.Certify.m_compatible a b
            && ours.Obs.Certify.m_sup a b = theirs.Obs.Certify.m_sup a b)
          ours.Obs.Certify.m_known)
      ours.Obs.Certify.m_known
  in
  let checks =
    [ ("real run certifies clean", Obs.Certify.certified certificate);
      ("edge endpoints are committed txns", endpoints_committed);
      ("dot render covers the graph", dot_covers_graph);
      ("mode algebras agree pointwise", algebra_agrees);
      ( "injected cycle rejected, blame exact",
        cycle_caught
        && List.for_all injected_txn cycle_certificate.Obs.Certify.violations
      );
      ( "injected 2PL break rejected, blame exact",
        phase_caught
        && List.for_all injected_txn phase_certificate.Obs.Certify.violations
      ) ]
  in
  Tables.print ~title:"E21: certifier throughput (median of 7 passes)"
    ~header:[ "events"; "committed"; "edges"; "ms"; "events/sec" ]
    [ [ Tables.Int certificate.Obs.Certify.events;
        Tables.Int certificate.Obs.Certify.committed;
        Tables.Int (List.length certificate.Obs.Certify.graph_edges);
        Tables.Float median_ms; Tables.Float events_per_sec ] ];
  Tables.print ~title:"E21: certification exactness"
    ~header:[ "identity"; "holds" ]
    (List.map
       (fun (name, holds) ->
         [ Tables.Text name; Tables.Text (if holds then "yes" else "NO") ])
       checks);
  Tables.note
    "expected shape: one pass over the stream with hashtable work per\n\
     lock event plus a BFS over a graph of committed transactions —\n\
     millions of events per second, so certifying every soak run is\n\
     cheap. The identities are the point: the certifier must pass what\n\
     the real lock table produced and reject both corruption patterns,\n\
     blaming only the spliced-in transactions.";
  let json =
    Obs.Json.Obj
      [ ("events", Obs.Json.Int certificate.Obs.Certify.events);
        ("committed", Obs.Json.Int certificate.Obs.Certify.committed);
        ("edges",
         Obs.Json.Int (List.length certificate.Obs.Certify.graph_edges));
        ("median_ms", Obs.Json.Float median_ms);
        ("events_per_sec", Obs.Json.Float events_per_sec);
        ( "exactness",
          Obs.Json.Obj
            (List.map (fun (name, holds) -> (name, Obs.Json.Bool holds))
               checks) ) ]
  in
  let path = "BENCH_certify.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

let e22_differential_attribution () =
  Tables.note
    "\n=== E22: does differential attribution conserve the delta? ===\n\
     Two live captures of the same manufacturing workload — a calm run\n\
     and a contended run (denser arrivals) — are profiled and diffed.\n\
     Every attribution table (levels, depths, resources, conflict cells,\n\
     blockers) must sum exactly to the total wait-time delta: an\n\
     explanation that invents or loses ticks is worse than none. A\n\
     self-diff must attribute exactly zero everywhere, and a run present\n\
     on one side only must surface as drift, never vanish.";
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 6; seed = 22 }
  in
  let graph = Graph.build db in
  let capture ~arrival_gap ~label =
    let sink = Obs.Sink.create [] in
    let captured = ref [] in
    Obs.Sink.attach sink (fun event -> captured := event :: !captured);
    let table = Table.create ~obs:sink ~meta:(Graph.lu_resolver graph) () in
    let technique = Sim.Scenario.Proposed (Protocol.create graph table) in
    let mix =
      { Sim.Scenario.default_mix with jobs = 250; arrival_gap;
        read_fraction = 0.4; seed = 22 }
    in
    let specs = Sim.Scenario.manufacturing_mix db graph mix in
    let jobs = Sim.Scenario.compile graph technique specs in
    let (_ : Sim.Metrics.t) = Sim.Runner.run ~table jobs in
    Obs.Profile.of_events ~label (List.rev !captured)
  in
  let base = capture ~arrival_gap:6 ~label:"calm" in
  let cand = capture ~arrival_gap:2 ~label:"contended" in
  let report = Obs.Diff.of_reports ~base ~cand () in
  let partitions =
    [ ("levels", report.Obs.Diff.levels); ("depths", report.Obs.Diff.depths);
      ("resources", report.Obs.Diff.resources);
      ("cells", report.Obs.Diff.cells);
      ("blockers", report.Obs.Diff.blockers) ]
  in
  let partition_sum entries =
    List.fold_left
      (fun sum (entry : Obs.Diff.entry) -> sum +. entry.e_delta)
      0.0 entries
  in
  let self = Obs.Diff.of_reports ~base ~cand:base () in
  let self_zero =
    self.Obs.Diff.delta = 0.0
    && List.for_all
         (fun (entry : Obs.Diff.entry) -> entry.e_delta = 0.0)
         (self.Obs.Diff.levels @ self.Obs.Diff.depths
          @ self.Obs.Diff.resources @ self.Obs.Diff.cells
          @ self.Obs.Diff.blockers)
  in
  let drift =
    Obs.Diff.pair_reports ~base:[ base; cand ] ~cand:[ base ]
  in
  let drift_surfaced =
    List.length drift.Obs.Diff.pairs = 1
    && drift.Obs.Diff.only_base = [ "contended" ]
    && drift.Obs.Diff.only_cand = []
  in
  let reps = 7 in
  let median_of samples =
    List.nth (List.sort Float.compare samples) (reps / 2)
  in
  let diff_ms () =
    let started = Unix.gettimeofday () in
    let (_ : Obs.Diff.report) = Obs.Diff.of_reports ~base ~cand () in
    (Unix.gettimeofday () -. started) *. 1000.0
  in
  let (_ : float) = diff_ms () in
  let median_ms = median_of (List.init reps (fun _rep -> diff_ms ())) in
  let checks =
    ("conserves (1e-9 relative)", Obs.Diff.conserves report)
    :: ("self-diff attributes exactly zero", self_zero)
    :: ("one-sided run surfaces as drift", drift_surfaced)
    :: List.map
         (fun (name, entries) ->
           ( Printf.sprintf "%s sum equals delta to the tick" name,
             partition_sum entries = report.Obs.Diff.delta ))
         partitions
  in
  Tables.print ~title:"E22: calm vs contended (proposed technique)"
    ~header:[ "side"; "blocked"; "waits" ]
    [ [ Tables.Text "base (calm)";
        Tables.Float report.Obs.Diff.base_total;
        Tables.Int report.Obs.Diff.base_waits ];
      [ Tables.Text "cand (contended)";
        Tables.Float report.Obs.Diff.cand_total;
        Tables.Int report.Obs.Diff.cand_waits ];
      [ Tables.Text "delta"; Tables.Float report.Obs.Diff.delta;
        Tables.Int (report.Obs.Diff.cand_waits - report.Obs.Diff.base_waits)
      ] ];
  Tables.print
    ~title:"E22: attribution exactness (median diff over 7 passes)"
    ~header:[ "identity"; "holds" ]
    (List.map
       (fun (name, holds) ->
         [ Tables.Text name; Tables.Text (if holds then "yes" else "NO") ])
       checks);
  Tables.note
    (Printf.sprintf
       "median of_reports: %.3f ms over %d+%d spans.  Expected shape: the\n\
        residue-folding discipline (largest share absorbs the float dust)\n\
        makes every table a true partition of the delta — the same\n\
        invariant colock why relies on when it explains a regression."
       median_ms report.Obs.Diff.base_waits report.Obs.Diff.cand_waits);
  let json =
    Obs.Json.Obj
      [ ("base_blocked", Obs.Json.Float report.Obs.Diff.base_total);
        ("cand_blocked", Obs.Json.Float report.Obs.Diff.cand_total);
        ("delta", Obs.Json.Float report.Obs.Diff.delta);
        ("base_waits", Obs.Json.Int report.Obs.Diff.base_waits);
        ("cand_waits", Obs.Json.Int report.Obs.Diff.cand_waits);
        ("median_ms", Obs.Json.Float median_ms);
        ( "exactness",
          Obs.Json.Obj
            (List.map (fun (name, holds) -> (name, Obs.Json.Bool holds))
               checks) ) ]
  in
  let path = "BENCH_diffprof.json" in
  let channel = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out channel)
    (fun () ->
      Obs.Json.output channel json;
      output_char channel '\n');
  Printf.printf "wrote %s\n" path

let run_all () =
  e1_object_graphs ();
  e2_units ();
  e3_figure7 ();
  e4_granule_problem ();
  e5_shared_exclusive_cost ();
  e6_from_the_side ();
  e7_authorization ();
  e8_escalation_anticipation ();
  e9_scaling_claim ();
  e10_disjoint_overhead ();
  e11_qualitative_matrix ();
  e12_nested_common_data ();
  e13_deescalation ();
  e15_resilience ();
  e16_contention_profile ();
  e17_monitoring_overhead ();
  e19_overload_control ();
  e20_blame_overhead ();
  e21_certifier ();
  e22_differential_attribution ()

let by_name = [
  ("E1", e1_object_graphs); ("E2", e2_units); ("E3", e3_figure7);
  ("E4", e4_granule_problem); ("E5", e5_shared_exclusive_cost);
  ("E6", e6_from_the_side); ("E7", e7_authorization);
  ("E8", e8_escalation_anticipation); ("E9", e9_scaling_claim);
  ("E10", e10_disjoint_overhead); ("E11", e11_qualitative_matrix);
  ("E12", e12_nested_common_data); ("E13", e13_deescalation);
  ("E15", e15_resilience); ("E16", e16_contention_profile);
  ("E17", e17_monitoring_overhead); ("E19", e19_overload_control);
  ("E20", e20_blame_overhead); ("E21", e21_certifier);
  ("E22", e22_differential_attribution);
]
