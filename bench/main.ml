(* Benchmark and experiment harness.

   Default: regenerate every experiment table/figure (E1-E13 plus the E15
   resilience comparison, see DESIGN.md).
   Options:
     --only E5        run a single experiment (E1..E13, E15..E17, E19..E22)
     --bechamel       additionally run the Bechamel micro-benchmarks (one
                      Test.make per experiment's core operation, plus the
                      E14 index ablation)
     --no-experiments skip the experiment tables
     --scenarios DIR  regenerate BENCH_scenarios.json from the committed
                      scenario suite (then exit) *)

open Bechamel
open Toolkit

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol
module Oid = Nf2.Oid

(* --------------------------------------------------- Bechamel micro-tests *)

(* Shared read-only fixtures, built once. *)
let fig1_db = Workload.Figure1.database ()
let fig1_graph = Graph.build fig1_db

let shared32_graph = Graph.build (Workload.Generator.shared_effector ~robots:32)

let robot_r1 =
  Option.get
    (Node_id.of_steps [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ])

let shared_e1 =
  Option.get (Graph.object_node shared32_graph (Oid.make ~relation:"effectors" ~key:"e1"))

(* E1: derive the object-specific lock graph of "cells". *)
let bench_e1_derive_object_graph =
  Test.make ~name:"E1 derive object graph (cells)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Colock.Object_graph.of_relation ~database:"db1"
              Workload.Figure1.cells_schema)))

(* E2: unit computation on the instance graph. *)
let bench_e2_unit_members =
  Test.make ~name:"E2 outer-unit members (fig1)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Colock.Units.unit_members fig1_graph ~root:(Graph.root fig1_graph))))

(* E3: plan + acquire + release the Figure 7 Q2 lock set. *)
let bench_e3_q2_acquire_release =
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  Authz.Rights.set_relation_default rights ~relation:"effectors" false;
  let protocol = Protocol.create ~rights fig1_graph table in
  Test.make ~name:"E3 Q2 acquire+release (fig7)"
    (Staged.stage (fun () ->
         (match Protocol.acquire protocol ~txn:2 robot_r1 Mode.X with
          | Protocol.Acquired _ -> ()
          | Protocol.Blocked _ -> assert false);
         ignore (Protocol.end_of_transaction protocol ~txn:2)))

(* E4: the three techniques' plan construction for a Q2-like access. *)
let bench_e4_plan_proposed =
  let table = Table.create () in
  let protocol = Protocol.create fig1_graph table in
  Test.make ~name:"E4 plan proposed (robot X)"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Protocol.plan protocol ~txn:1 robot_r1 Mode.X)))

let bench_e4_plan_whole_object =
  Test.make ~name:"E4 plan whole-object (cell X)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Baselines.Whole_object.plan fig1_graph
              ~oid:(Oid.make ~relation:"cells" ~key:"c1") Mode.X)))

let bench_e4_plan_tuple_level =
  Test.make ~name:"E4 plan tuple-level (cell S)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Baselines.Tuple_level.plan fig1_graph
              ~oid:(Oid.make ~relation:"cells" ~key:"c1") Mode.S)))

(* E5: X on a shared effector, proposed vs all-parents. *)
let bench_e5_shared_proposed =
  let table = Table.create () in
  let protocol = Protocol.create shared32_graph table in
  Test.make ~name:"E5 plan X shared effector, proposed (k=32)"
    (Staged.stage (fun () ->
         Sys.opaque_identity (Protocol.plan protocol ~txn:1 shared_e1 Mode.X)))

let bench_e5_shared_all_parents =
  Test.make ~name:"E5 plan X shared effector, naive DAG (k=32)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Baselines.Sysr_dag.plan_exclusive_all_parents shared32_graph
              ~oid:(Oid.make ~relation:"effectors" ~key:"e1"))))

(* E6: the hidden-conflict audit. *)
let bench_e6_hidden_conflict_audit =
  let table = Table.create () in
  let r2 =
    Option.get
      (Node_id.of_steps [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ])
  in
  (match
     Baselines.Technique.acquire table ~txn:1
       (Baselines.Sysr_dag.plan_hierarchical_naive fig1_graph robot_r1 Mode.X)
   with
  | Baselines.Technique.Acquired _ -> ()
  | Baselines.Technique.Blocked _ -> assert false);
  (match
     Baselines.Technique.acquire table ~txn:2
       (Baselines.Sysr_dag.plan_hierarchical_naive fig1_graph r2 Mode.X)
   with
  | Baselines.Technique.Acquired _ -> ()
  | Baselines.Technique.Blocked _ -> assert false);
  Test.make ~name:"E6 hidden-conflict audit (fig1)"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Baselines.Sysr_dag.hidden_conflicts fig1_graph table ~txns:[ 1; 2 ])))

(* E7: query execution under rule 4'. *)
let bench_e7_query_q2 =
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  Authz.Rights.set_relation_default rights ~relation:"effectors" false;
  let protocol = Protocol.create ~rights fig1_graph table in
  let executor = Query.Executor.create fig1_db protocol in
  let q2 =
    "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND \
     r.robot_id = 'r1' FOR UPDATE"
  in
  Test.make ~name:"E7 execute Q2 (parse+analyze+lock+eval)"
    (Staged.stage (fun () ->
         (match Query.Executor.run_string executor ~txn:4 q2 with
          | Ok _ -> ()
          | Error _ -> assert false);
         ignore (Protocol.end_of_transaction protocol ~txn:4)))

(* E8: escalation anticipation (query-specific lock graph construction). *)
let bench_e8_query_graph =
  let catalog = Nf2.Database.catalog fig1_db in
  let stats =
    let computed =
      List.map
        (fun store -> (Nf2.Relation.name store, Nf2.Statistics.compute store))
        (Nf2.Database.relations fig1_db)
    in
    fun relation ->
      match List.assoc_opt relation computed with
      | Some stats -> stats
      | None -> Nf2.Statistics.empty relation
  in
  let access =
    Colock.Access.make
      ~predicate:(Nf2.Path.of_string "cell_id")
      ~target:(Nf2.Path.of_string "c_objects")
      Colock.Access.Read "cells"
  in
  Test.make ~name:"E8 build query-specific lock graph"
    (Staged.stage (fun () ->
         Sys.opaque_identity
           (Colock.Query_graph.build ~threshold:16 catalog ~stats [ access ])))

(* E9: a full 40-transaction simulation run. *)
let bench_e9_simulation =
  let db = Workload.Generator.manufacturing Workload.Generator.default_manufacturing in
  let graph = Graph.build db in
  let specs =
    Sim.Scenario.manufacturing_mix db graph
      { Sim.Scenario.default_mix with jobs = 40; seed = 5 }
  in
  Test.make ~name:"E9 simulate 40 txns (proposed)"
    (Staged.stage (fun () ->
         let table = Table.create () in
         let protocol = Protocol.create graph table in
         let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
         Sys.opaque_identity (Sim.Runner.run ~table jobs)))

(* E10: instance-graph construction (the once-per-relation overhead). *)
let bench_e10_build_instance_graph =
  Test.make ~name:"E10 build instance graph (fig1)"
    (Staged.stage (fun () -> Sys.opaque_identity (Graph.build fig1_db)))

(* E11: the lock table itself. *)
let bench_e11_lock_table_ops =
  let table = Table.create () in
  Test.make ~name:"E11 lock table request+release"
    (Staged.stage (fun () ->
         (match Table.request table ~txn:1 ~resource:"r" Mode.X with
          | Table.Granted -> ()
          | Table.Waiting _ -> assert false);
         ignore (Table.release table ~txn:1 ~resource:"r")))

(* E14: index-assisted selection vs relation scan (the index substrate). *)
let bench_e14_pair =
  let make_executor with_index =
    let db =
      Workload.Generator.manufacturing
        { Workload.Generator.default_manufacturing with cells = 256 }
    in
    if with_index then begin
      match
        Nf2.Database.create_index db ~relation:"cells"
          (Nf2.Path.of_string "cell_id")
      with
      | Ok () -> ()
      | Error _ -> assert false
    end;
    let graph = Graph.build db in
    let table = Table.create () in
    let protocol = Protocol.create graph table in
    Query.Executor.create db protocol
  in
  let keyed = "SELECT c FROM c IN cells WHERE c.cell_id = 'c200' FOR READ" in
  let bench name executor =
    Test.make ~name
      (Staged.stage (fun () ->
           (match Query.Executor.run_string executor ~txn:3 keyed with
            | Ok _ -> ()
            | Error _ -> assert false);
           ignore
             (Protocol.end_of_transaction (Query.Executor.protocol executor)
                ~txn:3)))
  in
  [ bench "E14 keyed select, scan (256 cells)" (make_executor false);
    bench "E14 keyed select, index (256 cells)" (make_executor true) ]

let all_micro_tests =
  Test.make_grouped ~name:"colock"
    ([ bench_e1_derive_object_graph; bench_e2_unit_members;
      bench_e3_q2_acquire_release; bench_e4_plan_proposed;
      bench_e4_plan_whole_object; bench_e4_plan_tuple_level;
      bench_e5_shared_proposed; bench_e5_shared_all_parents;
      bench_e6_hidden_conflict_audit; bench_e7_query_q2;
      bench_e8_query_graph; bench_e9_simulation;
      bench_e10_build_instance_graph; bench_e11_lock_table_ops ]
     @ bench_e14_pair)

let run_bechamel () =
  print_endline "\n=== Bechamel micro-benchmarks (ns/run, OLS estimate) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances all_micro_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure by_test ->
      let rows =
        Hashtbl.fold (fun name ols_result accu -> (name, ols_result) :: accu)
          by_test []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iter
        (fun (name, ols_result) ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some (first :: _) -> first
            | Some [] | None -> Float.nan
          in
          Printf.printf "  %-52s %14.1f ns/run\n" name estimate)
        rows)
    merged

(* ------------------------------------------------------------------ main *)

let () =
  let argv = Array.to_list Sys.argv in
  let with_bechamel = List.mem "--bechamel" argv in
  let skip_experiments = List.mem "--no-experiments" argv in
  let arg_of flag =
    let rec find = function
      | probe :: value :: _ when probe = flag -> Some value
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let only = arg_of "--only" in
  (match arg_of "--scenarios" with
   | Some dir ->
     Report.write_scenarios ~dir ();
     exit 0
   | None -> ());
  (match only, skip_experiments with
   | Some name, _ -> (
     match List.assoc_opt name Experiments.by_name with
     | Some experiment ->
       experiment ();
       Report.write ~experiment:name ()
     | None ->
       Printf.eprintf "unknown experiment %s (use E1..E13, E15..E17, E19..E22)\n" name;
       exit 1)
   | None, false ->
     Experiments.run_all ();
     List.iter
       (fun (name, _experiment) -> Report.write ~experiment:name ())
       Experiments.by_name
   | None, true -> ());
  if with_bechamel then run_bechamel ()
