(** Machine-readable experiment reports.

    [write ~experiment ()] runs a deterministic, instrumented reference
    simulation (manufacturing mix, proposed protocol, per-experiment seed)
    and writes [BENCH_<experiment>.json]: one flat JSON object with the
    simulator metrics ([throughput], [committed], ...), the lock-table
    counters ([lock.*]) and the latency quantiles from the observability
    collector ([lock_wait_p50/p95/p99/max], [grant_latency_*],
    [txn_response_*]). *)

val write : experiment:string -> unit -> unit

val write_scenarios : ?out:string -> dir:string -> unit -> unit
(** Runs every [.scn] scenario under [dir] through {!Bench.Baseline.collect}
    and writes the baseline store (default [BENCH_scenarios.json]) — the
    same file [colock bench diff --update-baseline] refreshes. *)
