(* Tests for the trace certifier: the string-level mode algebra against
   the lock manager's own matrices, handcrafted schedules for each
   violation class (cycle, phase, concurrent grant, uncovered grant,
   escalation audit), QCheck properties over random schedules — the real
   lock table always certifies clean, injected corruptions are flagged
   and attributed to exactly the corrupted transactions — and the
   streaming JSONL reader. *)

module Event = Obs.Event
module Certify = Obs.Certify
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Graph = Colock.Instance_graph
module Node_id = Colock.Node_id
module Protocol = Colock.Protocol
module Oid = Nf2.Oid

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let at time kind = { Event.time; kind }

let grant ?(immediate = true) txn resource mode =
  Event.Lock_granted { txn; resource; mode; immediate; lu = None; holders = [] }

let release txn resource = Event.Lock_released { txn; resource; lu = None }
let begin_txn txn = Event.Txn_begin { txn }
let commit txn = Event.Txn_commit { txn }
let abort txn = Event.Txn_abort { txn; reason = "test" }

let violation_kind = function
  | Certify.Unserializable _ -> "cycle"
  | Certify.Phase_violation _ -> "phase"
  | Certify.Concurrent_conflict _ -> "concurrent"
  | Certify.Uncovered_grant _ -> "uncovered"
  | Certify.Escalation_violation _ -> "escalation"

let kinds certificate = List.map violation_kind certificate.Certify.violations

let violation_txns certificate =
  List.concat_map
    (function
      | Certify.Unserializable { cycle; _ } -> cycle
      | Certify.Phase_violation { txn; _ }
      | Certify.Concurrent_conflict { txn; _ }
      | Certify.Uncovered_grant { txn; _ }
      | Certify.Escalation_violation { txn; _ } ->
        [ txn ])
    certificate.Certify.violations
  |> List.sort_uniq Int.compare

(* ------------------------------------------------------- mode algebra *)

(* [Lock_mode.certify_modes] must agree pointwise with the certifier's
   built-in string algebra — the checks are only as strong as the
   matrices behind them. *)
let test_algebra_agreement () =
  let ours = Certify.default_modes and theirs = Mode.certify_modes in
  List.iter
    (fun a ->
      check_bool
        ("is_intention " ^ a)
        (ours.Certify.m_is_intention a)
        (theirs.Certify.m_is_intention a);
      check_string
        ("intention_for " ^ a)
        (ours.Certify.m_intention_for a)
        (theirs.Certify.m_intention_for a);
      List.iter
        (fun b ->
          check_bool
            (Printf.sprintf "compatible %s %s" a b)
            (ours.Certify.m_compatible a b)
            (theirs.Certify.m_compatible a b);
          check_string
            (Printf.sprintf "sup %s %s" a b)
            (ours.Certify.m_sup a b)
            (theirs.Certify.m_sup a b))
        ours.Certify.m_known)
    ours.Certify.m_known;
  (* unknown strings act as X on both sides *)
  check_bool "unknown conflicts" false (theirs.Certify.m_compatible "??" "S");
  check_string "unknown sups to X" "X" (ours.Certify.m_sup "??" "IS")

(* -------------------------------------------------- handcrafted cases *)

let test_clean_serial () =
  let events =
    [ at 0.0 (begin_txn 1); at 0.0 (begin_txn 2);
      at 1.0 (grant 1 "db1" "IX");
      at 1.0 (grant 1 "db1/a" "IX");
      at 2.0 (grant 1 "db1/a/x" "X");
      at 3.0 (commit 1);
      at 3.0 (release 1 "db1/a/x");
      at 3.0 (release 1 "db1/a");
      at 3.0 (release 1 "db1");
      at 4.0 (grant 2 "db1" "IS");
      at 4.0 (grant 2 "db1/a" "IS");
      at 5.0 (grant 2 "db1/a/x" "S");
      at 6.0 (commit 2);
      at 6.0 (release 2 "db1/a/x");
      at 6.0 (release 2 "db1/a");
      at 6.0 (release 2 "db1") ]
  in
  let certificate = Certify.of_events ~label:"clean" events in
  check_bool "certified" true (Certify.certified certificate);
  check_int "committed" 2 certificate.Certify.committed;
  check_int "one conflict edge" 1 (List.length certificate.Certify.graph_edges);
  let edge = List.hd certificate.Certify.graph_edges in
  check_int "edge from T1" 1 edge.Certify.e_from;
  check_int "edge to T2" 2 edge.Certify.e_to;
  check_string "edge witness" "db1/a/x" edge.Certify.e_resource

let test_cycle_detected () =
  let events =
    [ at 0.0 (begin_txn 1); at 0.0 (begin_txn 2);
      at 1.0 (grant 1 "r1" "X");
      at 2.0 (release 1 "r1");
      at 3.0 (grant 2 "r1" "X");
      at 4.0 (release 2 "r1");
      at 5.0 (grant 2 "r2" "X");
      at 6.0 (release 2 "r2");
      at 7.0 (grant 1 "r2" "X");
      at 8.0 (release 1 "r2");
      at 9.0 (commit 1); at 9.0 (commit 2) ]
  in
  let certificate = Certify.of_events events in
  check_bool "not certified" false (Certify.certified certificate);
  let cycle =
    List.find_map
      (function
        | Certify.Unserializable { cycle; _ } -> Some cycle
        | _ -> None)
      certificate.Certify.violations
  in
  (match cycle with
   | Some cycle ->
     check_int "minimal cycle" 2 (List.length cycle);
     check_bool "T1 on cycle" true (List.mem 1 cycle);
     check_bool "T2 on cycle" true (List.mem 2 cycle)
   | None -> Alcotest.fail "expected an unserializable violation");
  (* the fabricated cycle is only reachable by breaking 2PL too *)
  check_bool "phase violations surface" true
    (List.mem "phase" (kinds certificate))

let test_pure_phase_violation () =
  let events =
    [ at 0.0 (begin_txn 1);
      at 1.0 (grant 1 "r1" "X");
      at 2.0 (release 1 "r1");
      at 3.0 (grant 1 "r2" "X");
      at 4.0 (commit 1);
      at 4.0 (release 1 "r2") ]
  in
  let certificate = Certify.of_events events in
  (match certificate.Certify.violations with
   | [ Certify.Phase_violation { txn; released; acquire; _ } ] ->
     check_int "violating txn" 1 txn;
     check_string "released first" "r1" released;
     check_string "then acquired" "r2" acquire.Certify.a_resource
   | other ->
     Alcotest.failf "expected exactly one phase violation, got %d"
       (List.length other))

let test_uncovered_grant () =
  (* no ancestor at all *)
  let bare = Certify.of_events [ at 1.0 (grant 1 "db1/a/x" "X") ] in
  (match bare.Certify.violations with
   | [ Certify.Uncovered_grant { parent; parent_mode; _ } ] ->
     check_string "parent path" "db1/a" parent;
     check_bool "parent unheld" true (parent_mode = None)
   | _ -> Alcotest.fail "expected one uncovered grant");
  (* ancestor held, but too weak for the requested mode *)
  let weak =
    Certify.of_events
      [ at 1.0 (grant 1 "db1" "IS");
        at 1.0 (grant 1 "db1/a" "IS");
        at 2.0 (grant 1 "db1/a/x" "X") ]
  in
  (match weak.Certify.violations with
   | [ Certify.Uncovered_grant { parent_mode; resource; _ } ] ->
     check_string "weak grant flagged" "db1/a/x" resource;
     check_bool "parent held IS" true (parent_mode = Some "IS")
   | _ -> Alcotest.fail "expected one uncovered grant");
  (* a parent data mode covering the child outright is rule-3 implicit
     locking made explicit — legal without a separate intention *)
  let covered =
    Certify.of_events
      [ at 1.0 (grant 1 "db1" "IX");
        at 1.0 (grant 1 "db1/a" "X");
        at 2.0 (grant 1 "db1/a/x" "X") ]
  in
  check_bool "sup-covered grant is legal" true (Certify.certified covered)

let test_concurrent_conflict () =
  let events =
    [ at 1.0 (grant 1 "r1" "X");
      at 2.0 (grant 2 "r1" "X");
      at 3.0 (release 1 "r1"); at 3.0 (release 2 "r1");
      at 4.0 (commit 1); at 4.0 (commit 2) ]
  in
  let certificate = Certify.of_events events in
  match
    List.filter
      (function Certify.Concurrent_conflict _ -> true | _ -> false)
      certificate.Certify.violations
  with
  | [ Certify.Concurrent_conflict { txn; holder; resource; _ } ] ->
    check_int "granted txn" 2 txn;
    check_int "standing holder" 1 holder;
    check_string "on resource" "r1" resource
  | other ->
    Alcotest.failf "expected exactly one concurrent conflict, got %d"
      (List.length other)

let test_covered_release_is_not_shrinking () =
  (* releasing a child while a strict ancestor still holds a covering
     data mode is the escalation / rule-4' sharing pattern: the
     transaction lost nothing, so later grants stay legal *)
  let events =
    [ at 0.0 (begin_txn 1);
      at 1.0 (grant 1 "db1" "IX");
      at 1.0 (grant 1 "db1/a" "X");
      at 2.0 (grant 1 "db1/a/x" "X");
      at 3.0 (release 1 "db1/a/x");
      at 4.0 (grant 1 "db1/b" "X");
      at 5.0 (commit 1);
      at 5.0 (release 1 "db1/b");
      at 5.0 (release 1 "db1/a");
      at 5.0 (release 1 "db1") ]
  in
  let certificate = Certify.of_events events in
  check_bool "covered release keeps the phase open" true
    (Certify.certified certificate)

let test_aborted_attempt_excluded () =
  let events =
    [ at 0.0 (begin_txn 1);
      (* first attempt: blatantly non-2PL, then aborted *)
      at 1.0 (grant 1 "r1" "X");
      at 2.0 (release 1 "r1");
      at 3.0 (grant 1 "r2" "X");
      at 4.0 (release 1 "r2");
      at 4.0 (abort 1);
      (* restart under the same id (the simulator does not re-begin) *)
      at 5.0 (grant 1 "r1" "X");
      at 6.0 (commit 1);
      at 6.0 (release 1 "r1") ]
  in
  let certificate = Certify.of_events events in
  check_bool "certified" true (Certify.certified certificate);
  check_int "one aborted attempt" 1 certificate.Certify.aborted_attempts;
  check_int "one committed txn" 1 certificate.Certify.committed

let escalation_prefix =
  [ at 0.0 (begin_txn 1);
    at 1.0 (grant 1 "db1" "IX");
    at 1.0 (grant 1 "db1/a" "IX");
    at 2.0 (grant 1 "db1/a/x" "X");
    at 2.0 (grant 1 "db1/a/y" "X") ]

let test_escalation_legal () =
  let events =
    escalation_prefix
    @ [ at 3.0 (grant 1 "db1/a" "X");
        at 3.0 (release 1 "db1/a/x");
        at 3.0 (release 1 "db1/a/y");
        at 3.0
          (Event.Escalation
             { txn = 1; node = "db1/a"; mode = "X"; released_children = 2 });
        at 4.0 (commit 1);
        at 4.0 (release 1 "db1/a");
        at 4.0 (release 1 "db1") ]
  in
  check_bool "legal escalation certifies" true
    (Certify.certified (Certify.of_events events))

let test_escalation_mode_too_weak () =
  let events =
    escalation_prefix
    @ [ at 3.0 (grant 1 "db1/a" "S");
        at 3.0 (release 1 "db1/a/x");
        at 3.0 (release 1 "db1/a/y");
        at 3.0
          (Event.Escalation
             { txn = 1; node = "db1/a"; mode = "S"; released_children = 2 });
        at 4.0 (commit 1) ]
  in
  let certificate = Certify.of_events events in
  let escalations =
    List.filter
      (function Certify.Escalation_violation _ -> true | _ -> false)
      certificate.Certify.violations
  in
  (* S cannot absorb two X children: one audit failure per child *)
  check_int "both X children flagged" 2 (List.length escalations)

let test_escalation_overclaims_children () =
  let events =
    escalation_prefix
    @ [ at 3.0 (grant 1 "db1/a" "X");
        at 3.0 (release 1 "db1/a/x");
        at 3.0
          (Event.Escalation
             { txn = 1; node = "db1/a"; mode = "X"; released_children = 2 });
        at 4.0 (commit 1) ]
  in
  let certificate = Certify.of_events events in
  match certificate.Certify.violations with
  | [ Certify.Escalation_violation { detail; _ } ] ->
    check_string "mismatch reported"
      "claims 2 absorbed child(ren), trace shows 1" detail
  | _ -> Alcotest.fail "expected one escalation violation"

let test_of_trace_splits_runs () =
  let run label body =
    at 0.0 (Event.Run_meta { label }) :: body
  in
  let events =
    run "first" [ at 1.0 (grant 1 "r1" "X"); at 2.0 (commit 1) ]
    @ run "second" [ at 1.0 (grant 2 "r1" "X"); at 2.0 (commit 2) ]
  in
  match Certify.of_trace events with
  | [ first; second ] ->
    check_bool "first label" true (first.Certify.label = Some "first");
    check_bool "second label" true (second.Certify.label = Some "second");
    check_int "first graph" 1 (List.length first.Certify.graph_txns);
    check_int "second graph" 1 (List.length second.Certify.graph_txns)
  | certificates ->
    Alcotest.failf "expected 2 certificates, got %d"
      (List.length certificates)

(* ------------------------------------------- the real stack as oracle *)

let figure1 = lazy (Graph.build (Workload.Figure1.database ~c_objects:6 ()))

let graph_nodes graph =
  let nodes = Graph.fold (fun node accu -> node.Graph.id :: accu) graph [] in
  let array = Array.of_list nodes in
  Array.sort Node_id.compare array;
  array

(* Drive random interleaved transactions through the real protocol/lock
   table with a memory sink attached, then certify the emitted trace:
   whatever the real stack produced must pass. [try_acquire] keeps the
   harness sequential-step (no scheduler needed); blocked requests are
   simply skipped, which is itself a legal schedule. *)
let run_real_schedule seed =
  let graph = Lazy.force figure1 in
  let sink, ring = Obs.Sink.memory () in
  let table = Table.create ~obs:sink () in
  let protocol = Protocol.create graph table in
  let nodes = graph_nodes graph in
  let rng = Random.State.make [| seed |] in
  let txns = 2 + Random.State.int rng 3 in
  let modes = [| Mode.IS; Mode.IX; Mode.S; Mode.X |] in
  for txn = 1 to txns do
    Obs.Sink.emit sink (Event.Txn_begin { txn })
  done;
  for _round = 1 to 3 do
    for txn = 1 to txns do
      let node = nodes.(Random.State.int rng (Array.length nodes)) in
      let mode = modes.(Random.State.int rng (Array.length modes)) in
      ignore (Protocol.try_acquire protocol ~txn node mode : Protocol.outcome)
    done
  done;
  for txn = 1 to txns do
    Obs.Sink.emit sink (Event.Txn_commit { txn });
    ignore (Protocol.end_of_transaction protocol ~txn : Table.grant list)
  done;
  Certify.of_events ~modes:Mode.certify_modes (Obs.Ring.to_list ring)

let prop_real_stack_certifies =
  QCheck.Test.make ~count:25 ~name:"real protocol schedules certify clean"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let certificate = run_real_schedule seed in
      if not (Certify.certified certificate) then
        QCheck.Test.fail_reportf "violations: %s"
          (String.concat "; "
             (List.map
                (Format.asprintf "%a" Certify.pp_violation)
                certificate.Certify.violations));
      certificate.Certify.committed > 0)

(* An escalation performed by the real mechanism must audit clean. *)
let test_real_escalation_certifies () =
  let graph = Lazy.force figure1 in
  let sink, ring = Obs.Sink.memory () in
  let table = Table.create ~obs:sink () in
  let protocol = Protocol.create graph table in
  Obs.Sink.emit sink (Event.Txn_begin { txn = 1 });
  let c1 =
    Option.get (Graph.object_node graph (Oid.make ~relation:"cells" ~key:"c1"))
  in
  let holu = Node_id.child c1 "c_objects" in
  let members = (Graph.node_exn graph holu).Graph.children in
  List.iter
    (fun member ->
      match Protocol.acquire protocol ~txn:1 member Mode.S with
      | Protocol.Acquired _ -> ()
      | Protocol.Blocked _ -> Alcotest.fail "unexpected block")
    members;
  (match
     Colock.Escalation.maybe_escalate protocol ~txn:1 ~threshold:4 ~parent:holu
   with
   | Colock.Escalation.Escalated _ -> ()
   | _ -> Alcotest.fail "escalation expected");
  Obs.Sink.emit sink (Event.Txn_commit { txn = 1 });
  ignore (Protocol.end_of_transaction protocol ~txn:1 : Table.grant list);
  let certificate =
    Certify.of_events ~modes:Mode.certify_modes (Obs.Ring.to_list ring)
  in
  if not (Certify.certified certificate) then
    Alcotest.failf "escalated run not certified: %s"
      (String.concat "; "
         (List.map
            (Format.asprintf "%a" Certify.pp_violation)
            certificate.Certify.violations))

(* ------------------------------------------- corrupted random schedules *)

let resources = [| "r0"; "r1"; "r2"; "r3" |]

(* A serial, two-phase schedule over root resources: clean by
   construction. Each transaction touches >= 2 distinct resources. *)
let serial_blocks rng txns =
  List.init txns (fun index ->
      let txn = index + 1 in
      let count = 2 + Random.State.int rng (Array.length resources - 1) in
      let picks =
        let all = Array.copy resources in
        for i = Array.length all - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = all.(i) in
          all.(i) <- all.(j);
          all.(j) <- tmp
        done;
        Array.to_list (Array.sub all 0 (min count (Array.length all)))
      in
      (txn, picks))

let serial_events blocks =
  let time = ref 0.0 in
  let tick kind =
    time := !time +. 1.0;
    at !time kind
  in
  List.concat_map
    (fun (txn, picks) ->
      (tick (begin_txn txn)
       :: List.map (fun resource -> tick (grant txn resource "X")) picks)
      @ List.map (fun resource -> tick (release txn resource)) picks
      @ [ tick (commit txn) ])
    blocks

let prop_serial_certifies =
  QCheck.Test.make ~count:50 ~name:"serial 2PL schedules certify clean"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let blocks = serial_blocks rng (2 + Random.State.int rng 3) in
      Certify.certified (Certify.of_events (serial_events blocks)))

(* Appending a fabricated criss-cross between two fresh transactions
   injects exactly one conflict cycle; the certifier must report it and
   blame only the corrupted transactions. *)
let prop_injected_cycle_flagged =
  QCheck.Test.make ~count:50 ~name:"injected grant-order cycle is flagged"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let blocks = serial_blocks rng (1 + Random.State.int rng 3) in
      let t_a = List.length blocks + 1 and t_b = List.length blocks + 2 in
      let cross =
        [ at 100.0 (begin_txn t_a); at 100.0 (begin_txn t_b);
          at 101.0 (grant t_a "ca" "X");
          at 102.0 (release t_a "ca");
          at 103.0 (grant t_b "ca" "X");
          at 104.0 (release t_b "ca");
          at 105.0 (grant t_b "cb" "X");
          at 106.0 (release t_b "cb");
          at 107.0 (grant t_a "cb" "X");
          at 108.0 (release t_a "cb");
          at 109.0 (commit t_a); at 109.0 (commit t_b) ]
      in
      let certificate =
        Certify.of_events (serial_events blocks @ cross)
      in
      let cycle =
        List.find_map
          (function
            | Certify.Unserializable { cycle; _ } -> Some cycle
            | _ -> None)
          certificate.Certify.violations
      in
      match cycle with
      | Some cycle ->
        List.sort Int.compare cycle = [ t_a; t_b ]
        && List.for_all
             (fun txn -> txn = t_a || txn = t_b)
             (violation_txns certificate)
      | None -> false)

(* Moving one release ahead of a later grant inside a single serial
   block breaks 2PL without creating any cycle; only that transaction
   may be blamed, and only with phase violations. *)
let prop_injected_phase_flagged =
  QCheck.Test.make ~count:50 ~name:"injected post-release acquire is flagged"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let blocks = serial_blocks rng (2 + Random.State.int rng 3) in
      let victim = 1 + Random.State.int rng (List.length blocks) in
      let time = ref 0.0 in
      let tick kind =
        time := !time +. 1.0;
        at !time kind
      in
      let events =
        List.concat_map
          (fun (txn, picks) ->
            if txn <> victim then
              (tick (begin_txn txn)
               :: List.map (fun r -> tick (grant txn r "X")) picks)
              @ List.map (fun r -> tick (release txn r)) picks
              @ [ tick (commit txn) ]
            else
              (* grant head, release head, then keep growing: non-2PL *)
              let head = List.hd picks and tail = List.tl picks in
              [ tick (begin_txn txn);
                tick (grant txn head "X");
                tick (release txn head) ]
              @ List.map (fun r -> tick (grant txn r "X")) tail
              @ List.map (fun r -> tick (release txn r)) tail
              @ [ tick (commit txn) ])
          blocks
      in
      let certificate = Certify.of_events events in
      kinds certificate <> []
      && List.for_all (fun kind -> kind = "phase") (kinds certificate)
      && violation_txns certificate = [ victim ])

(* ------------------------------------------------- streaming JSONL *)

let test_jsonl_iter_streams () =
  let path = Filename.temp_file "certify_jsonl" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let channel = open_out path in
      Obs.Jsonl.write_events channel
        [ at 1.0 (grant 1 "r1" "X"); at 2.0 (commit 1) ];
      output_string channel "not json at all\n";
      Obs.Jsonl.write_events channel [ at 3.0 (release 1 "r1") ];
      close_out channel;
      let events, errors = Obs.Jsonl.load path in
      check_int "decoded around the bad line" 3 (List.length events);
      (match errors with
       | [ message ] ->
         check_bool "diagnostic carries the line number" true
           (String.length message >= 7 && String.sub message 0 7 = "line 3:")
       | _ -> Alcotest.fail "expected exactly one diagnostic");
      (* the streaming form sees exactly what the batch form saw *)
      let streamed = ref 0 and diagnostics = ref 0 in
      Obs.Jsonl.with_file path (fun channel ->
          Obs.Jsonl.iter
            ~on_error:(fun _ -> incr diagnostics)
            channel
            (fun _ -> incr streamed));
      check_int "same events" (List.length events) !streamed;
      check_int "same diagnostics" 1 !diagnostics)

let () =
  Alcotest.run "certify"
    [ ( "algebra",
        [ Alcotest.test_case "matrices agree" `Quick test_algebra_agreement ]
      );
      ( "schedules",
        [ Alcotest.test_case "clean serial" `Quick test_clean_serial;
          Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
          Alcotest.test_case "pure phase violation" `Quick
            test_pure_phase_violation;
          Alcotest.test_case "uncovered grant" `Quick test_uncovered_grant;
          Alcotest.test_case "concurrent conflict" `Quick
            test_concurrent_conflict;
          Alcotest.test_case "covered release" `Quick
            test_covered_release_is_not_shrinking;
          Alcotest.test_case "aborted attempt excluded" `Quick
            test_aborted_attempt_excluded;
          Alcotest.test_case "of_trace splits runs" `Quick
            test_of_trace_splits_runs ] );
      ( "escalation",
        [ Alcotest.test_case "legal escalation" `Quick test_escalation_legal;
          Alcotest.test_case "mode too weak" `Quick
            test_escalation_mode_too_weak;
          Alcotest.test_case "overclaimed children" `Quick
            test_escalation_overclaims_children;
          Alcotest.test_case "real escalation certifies" `Quick
            test_real_escalation_certifies ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_real_stack_certifies;
            prop_serial_certifies;
            prop_injected_cycle_flagged;
            prop_injected_phase_flagged ] );
      ( "jsonl",
        [ Alcotest.test_case "streaming reader" `Quick
            test_jsonl_iter_streams ] ) ]
