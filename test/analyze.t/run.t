The offline trace analyzer folds a committed JSONL fixture (two runs
separated by run_meta delimiter lines) into per-run contention reports.
The blocked-time totals must equal the sum of the fixture's wait spans:
proposed = 20 (BLU grant) + 25 (HoLU victim) + 10 (unfinished) = 55,
whole-object = 500.

  $ colock analyze fixture.jsonl
  === contention report: proposed (rule 4') ===
  events 25, time 0..60
  blocked time 55 across 3 wait(s), 1 unfinished
  wait-for snapshots 1, peak 2 edge(s)
  aborts: deadlock=1
  
  blocked time by lockable-unit level:
    LEVEL           BLOCKED    WAITS  RESOURCES
    HoLU                 25        1          1
    BLU                  20        1          1
    untagged             10        1          1
  
  blocked time by graph depth:
    DEPTH           BLOCKED    WAITS
    3                    25        1
    5                    20        1
  
  hot resources (top 3 of 3):
         BLOCKED    WAITS LU         RESOURCE
              25        1 HoLU@3     db1/seg1/cells
              20        1 BLU@5      db1/seg1/cells/c1/cell_id
              10        1 -          db1/seg2/effectors/e1
  
  conflicts (waiter mode x holder mode):
    WAITER   HOLDER      COUNT      BLOCKED
    S        queue           1           25
    X        S               1           20
    X        queue           1           10
  
  critical paths (top 3 of 3):
    T3 blocked 25, critical 25: db1/seg1/cells (25)
    T1 blocked 20, critical 20: db1/seg1/cells/c1/cell_id (20)
    T2 blocked 10, critical 10: db1/seg2/effectors/e1 (10)
  
  
  === contention report: whole-object (XSQL) ===
  events 10, time 0..500
  blocked time 500 across 1 wait(s), 0 unfinished
  
  blocked time by lockable-unit level:
    LEVEL           BLOCKED    WAITS  RESOURCES
    HeLU                500        1          1
  
  blocked time by graph depth:
    DEPTH           BLOCKED    WAITS
    4                   500        1
  
  hot resources (top 1 of 1):
         BLOCKED    WAITS LU         RESOURCE
             500        1 HeLU@4     db1/seg1/cells/c1
  
  conflicts (waiter mode x holder mode):
    WAITER   HOLDER      COUNT      BLOCKED
    X        X               1          500
  
  critical paths (top 1 of 1):
    T5 blocked 500, critical 500: db1/seg1/cells/c1 (500)
  

The JSON form carries the same totals, one report object per run:

  $ colock analyze --json fixture.jsonl | tr ',' '\n' | grep -c 'total_blocked'
  2
  $ colock analyze --json fixture.jsonl | tr ',' '\n' | grep 'total_blocked'
  "total_blocked": 55
  "total_blocked": 500

Bounding the tables with --top:

  $ colock analyze --top 1 fixture.jsonl | grep 'hot resources'
  hot resources (top 1 of 3):
  hot resources (top 1 of 1):

A trace with no run_meta delimiter at all (e.g. a hand-cut excerpt) is
still analyzed, labelled run-0, with a warning on stderr:

  $ grep -v run_meta fixture.jsonl | head -n 14 > bare.jsonl
  $ colock analyze bare.jsonl | head -n 2
  colock: bare.jsonl: no Run_meta delimiter; labelling the whole trace run-0
  === contention report: run-0 ===
  events 14, time 0..15

A trace with no decodable events is an error:

  $ printf 'garbage\n' > bad.jsonl
  $ colock analyze bad.jsonl
  colock: bad.jsonl: line 1: unexpected character 'g'
  colock: bad.jsonl: no decodable events
  [1]
