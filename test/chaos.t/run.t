Fault injection is seeded and deterministic: with a 10% crash rate ten of
the sixty jobs die mid-plan, their locks drain, and the survivors commit
under timeout-based collision resolution (no deadlock detection at all).

  $ colock simulate --resolution timeout --faults crash:0.1 --seed 42
  technique              committed    aborts   crashed  makespan   thruput  avg resp     waits     locks
  proposed (rule 4')            50         0        10       860     58.14     106.0      1360       415
  whole-object (XSQL)           50        46        10      2650     18.87     837.3     42940       961
  tuple-level                   50         0        10       860     58.14     106.0      1360      1155

The structural invariant checker can audit the whole run after every event:

  $ colock simulate --resolution hybrid:300 --victim fewest-locks \
  >   --backoff exp:20:400 --faults crash:0.05,stall:0.2x4,hog:0.05 \
  >   --seed 7 --check-invariants --stats-json stats.json
  technique              committed    aborts   crashed  makespan   thruput  avg resp     waits     locks
  proposed (rule 4')            55        56         5      5778      9.52     876.1     27001       966
  whole-object (XSQL)           55       453         5     10955      5.02    5082.4    183693      3026
  tuple-level                   55        56         5      5778      9.52     876.1     27001      1566

  $ grep -c timeout_aborts stats.json
  1
