(* Unit and property tests for the generic lock manager. *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mode_testable = Alcotest.testable Mode.pp Mode.equal

(* ------------------------------------------------------------- Lock_mode *)

let test_mode_compat_matrix () =
  (* The classical matrix, spelled out row by row (NL row/column all true). *)
  let expect = [
    (Mode.IS, Mode.IS, true); (Mode.IS, Mode.IX, true);
    (Mode.IS, Mode.S, true); (Mode.IS, Mode.SIX, true);
    (Mode.IS, Mode.X, false);
    (Mode.IX, Mode.IX, true); (Mode.IX, Mode.S, false);
    (Mode.IX, Mode.SIX, false); (Mode.IX, Mode.X, false);
    (Mode.S, Mode.S, true); (Mode.S, Mode.SIX, false);
    (Mode.S, Mode.X, false);
    (Mode.SIX, Mode.SIX, false); (Mode.SIX, Mode.X, false);
    (Mode.X, Mode.X, false);
  ] in
  List.iter
    (fun (a, b, compatible) ->
      check_bool
        (Printf.sprintf "%s/%s" (Mode.to_string a) (Mode.to_string b))
        compatible (Mode.compatible a b))
    expect;
  List.iter
    (fun mode ->
      check_bool "NL compatible with all" true (Mode.compatible Mode.NL mode))
    Mode.all

let test_mode_sup_cases () =
  Alcotest.check mode_testable "IX+S=SIX" Mode.SIX (Mode.sup Mode.IX Mode.S);
  Alcotest.check mode_testable "IS+IX=IX" Mode.IX (Mode.sup Mode.IS Mode.IX);
  Alcotest.check mode_testable "S+X=X" Mode.X (Mode.sup Mode.S Mode.X);
  Alcotest.check mode_testable "SIX+IX=SIX" Mode.SIX (Mode.sup Mode.SIX Mode.IX);
  Alcotest.check mode_testable "NL+S=S" Mode.S (Mode.sup Mode.NL Mode.S)

let test_mode_leq () =
  check_bool "IS <= S" true (Mode.leq Mode.IS Mode.S);
  check_bool "IS <= IX" true (Mode.leq Mode.IS Mode.IX);
  check_bool "IX <= SIX" true (Mode.leq Mode.IX Mode.SIX);
  check_bool "S <= SIX" true (Mode.leq Mode.S Mode.SIX);
  check_bool "everything <= X" true (List.for_all (fun m -> Mode.leq m Mode.X) Mode.all);
  check_bool "NL <= everything" true
    (List.for_all (fun m -> Mode.leq Mode.NL m) Mode.all);
  check_bool "S not <= IX" false (Mode.leq Mode.S Mode.IX);
  check_bool "IX not <= S" false (Mode.leq Mode.IX Mode.S)

let test_mode_intention_for () =
  Alcotest.check mode_testable "for S" Mode.IS (Mode.intention_for Mode.S);
  Alcotest.check mode_testable "for IS" Mode.IS (Mode.intention_for Mode.IS);
  Alcotest.check mode_testable "for X" Mode.IX (Mode.intention_for Mode.X);
  Alcotest.check mode_testable "for IX" Mode.IX (Mode.intention_for Mode.IX);
  Alcotest.check mode_testable "for SIX" Mode.IX (Mode.intention_for Mode.SIX);
  Alcotest.check mode_testable "for NL" Mode.NL (Mode.intention_for Mode.NL)

let test_mode_strings () =
  List.iter
    (fun mode ->
      Alcotest.check (Alcotest.option mode_testable) "roundtrip" (Some mode)
        (Mode.of_string (Mode.to_string mode)))
    Mode.all;
  check_bool "bogus" true (Mode.of_string "bogus" = None)

let mode_gen = QCheck.Gen.oneofl Mode.all
let arbitrary_mode = QCheck.make ~print:Mode.to_string mode_gen

let prop_compat_symmetric =
  QCheck.Test.make ~name:"compatibility is symmetric" ~count:200
    (QCheck.pair arbitrary_mode arbitrary_mode)
    (fun (a, b) -> Mode.compatible a b = Mode.compatible b a)

let prop_sup_commutative =
  QCheck.Test.make ~name:"sup is commutative" ~count:200
    (QCheck.pair arbitrary_mode arbitrary_mode)
    (fun (a, b) -> Mode.equal (Mode.sup a b) (Mode.sup b a))

let prop_sup_associative =
  QCheck.Test.make ~name:"sup is associative" ~count:500
    (QCheck.triple arbitrary_mode arbitrary_mode arbitrary_mode)
    (fun (a, b, c) ->
      Mode.equal (Mode.sup a (Mode.sup b c)) (Mode.sup (Mode.sup a b) c))

let prop_sup_idempotent =
  QCheck.Test.make ~name:"sup is idempotent" ~count:50 arbitrary_mode
    (fun a -> Mode.equal (Mode.sup a a) a)

let prop_sup_upper_bound =
  QCheck.Test.make ~name:"sup is an upper bound" ~count:200
    (QCheck.pair arbitrary_mode arbitrary_mode)
    (fun (a, b) -> Mode.leq a (Mode.sup a b) && Mode.leq b (Mode.sup a b))

let prop_stronger_conflicts_more =
  (* If a is compatible with c, any mode below a is compatible with c. *)
  QCheck.Test.make ~name:"compatibility is downward closed" ~count:500
    (QCheck.triple arbitrary_mode arbitrary_mode arbitrary_mode)
    (fun (a, b, c) ->
      QCheck.assume (Mode.leq b a);
      (not (Mode.compatible a c)) || Mode.compatible b c)

(* ------------------------------------------------------------ Lock_table *)

let test_table_grant_and_conflict () =
  let table = Table.create () in
  check_bool "T1 S" true (Table.request table ~txn:1 ~resource:"r" Mode.S = Table.Granted);
  check_bool "T2 S shares" true
    (Table.request table ~txn:2 ~resource:"r" Mode.S = Table.Granted);
  (match Table.request table ~txn:3 ~resource:"r" Mode.X with
   | Table.Waiting blockers ->
     Alcotest.(check (list int)) "blocked by both" [ 1; 2 ] blockers
   | Table.Granted -> Alcotest.fail "X should block");
  check_int "two granted entries" 2 (Table.entry_count table)

let test_table_release_grants_waiter () =
  let table = Table.create () in
  check_bool "T1 X" true (Table.request table ~txn:1 ~resource:"r" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"r" Mode.S with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  let grants = Table.release table ~txn:1 ~resource:"r" in
  (match grants with
   | [ { Table.g_txn = 2; g_mode; _ } ] ->
     Alcotest.check mode_testable "granted S" Mode.S g_mode
   | _ -> Alcotest.fail "expected T2 granted");
  Alcotest.check mode_testable "T2 holds S" Mode.S
    (Table.held table ~txn:2 ~resource:"r")

let test_table_fifo_fairness () =
  (* S1 granted; X2 waits; a later S3 must not overtake X2. *)
  let table = Table.create () in
  check_bool "T1 S" true (Table.request table ~txn:1 ~resource:"r" Mode.S = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"r" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "X should wait");
  (match Table.request table ~txn:3 ~resource:"r" Mode.S with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "S3 must queue behind X2");
  let grants = Table.release table ~txn:1 ~resource:"r" in
  (match grants with
   | [ { Table.g_txn = 2; _ } ] -> ()
   | _ -> Alcotest.fail "X2 first");
  let grants = Table.release table ~txn:2 ~resource:"r" in
  match grants with
  | [ { Table.g_txn = 3; _ } ] -> ()
  | _ -> Alcotest.fail "S3 after X2"

let test_table_conversion () =
  let table = Table.create () in
  check_bool "T1 S" true (Table.request table ~txn:1 ~resource:"r" Mode.S = Table.Granted);
  check_bool "T1 upgrades to X" true
    (Table.request table ~txn:1 ~resource:"r" Mode.X = Table.Granted);
  Alcotest.check mode_testable "holds X" Mode.X
    (Table.held table ~txn:1 ~resource:"r");
  check_int "one entry only" 1 (Table.entry_count table)

let test_table_conversion_blocks_then_jumps_queue () =
  let table = Table.create () in
  check_bool "T1 S" true (Table.request table ~txn:1 ~resource:"r" Mode.S = Table.Granted);
  check_bool "T2 S" true (Table.request table ~txn:2 ~resource:"r" Mode.S = Table.Granted);
  (* T3 queues for X; then T1's upgrade must be served before T3. *)
  (match Table.request table ~txn:3 ~resource:"r" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "T3 should wait");
  (match Table.request table ~txn:1 ~resource:"r" Mode.X with
   | Table.Waiting blockers -> Alcotest.(check (list int)) "blocked by T2" [ 2 ] blockers
   | Table.Granted -> Alcotest.fail "upgrade must wait for T2");
  let grants = Table.release table ~txn:2 ~resource:"r" in
  (match grants with
   | [ { Table.g_txn = 1; g_mode; _ } ] ->
     Alcotest.check mode_testable "T1 upgraded" Mode.X g_mode
   | _ -> Alcotest.fail "conversion must jump the queue");
  Alcotest.check mode_testable "T1 holds X" Mode.X
    (Table.held table ~txn:1 ~resource:"r")

let test_table_covered_request_noop () =
  let table = Table.create () in
  check_bool "T1 X" true (Table.request table ~txn:1 ~resource:"r" Mode.X = Table.Granted);
  check_bool "S under X is covered" true
    (Table.request table ~txn:1 ~resource:"r" Mode.S = Table.Granted);
  Alcotest.check mode_testable "still X" Mode.X
    (Table.held table ~txn:1 ~resource:"r")

let test_table_intention_sharing () =
  let table = Table.create () in
  check_bool "T1 IX" true (Table.request table ~txn:1 ~resource:"r" Mode.IX = Table.Granted);
  check_bool "T2 IX shares" true
    (Table.request table ~txn:2 ~resource:"r" Mode.IX = Table.Granted);
  check_bool "T3 IS shares" true
    (Table.request table ~txn:3 ~resource:"r" Mode.IS = Table.Granted);
  match Table.request table ~txn:4 ~resource:"r" Mode.S with
  | Table.Waiting _ -> ()
  | Table.Granted -> Alcotest.fail "S conflicts with IX"

let test_table_six () =
  let table = Table.create () in
  check_bool "T1 IX+S = SIX" true
    (Table.request table ~txn:1 ~resource:"r" Mode.IX = Table.Granted
     && Table.request table ~txn:1 ~resource:"r" Mode.S = Table.Granted);
  Alcotest.check mode_testable "holds SIX" Mode.SIX
    (Table.held table ~txn:1 ~resource:"r");
  (match Table.request table ~txn:2 ~resource:"r" Mode.IS with
   | Table.Granted -> ()
   | Table.Waiting _ -> Alcotest.fail "IS compatible with SIX");
  match Table.request table ~txn:3 ~resource:"r" Mode.IX with
  | Table.Waiting _ -> ()
  | Table.Granted -> Alcotest.fail "IX conflicts with SIX"

let test_table_release_all () =
  let table = Table.create () in
  check_bool "a" true (Table.request table ~txn:1 ~resource:"a" Mode.IX = Table.Granted);
  check_bool "b" true (Table.request table ~txn:1 ~resource:"b" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"b" Mode.S with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  let grants = Table.release_all table ~txn:1 in
  check_int "T2 unblocked" 1 (List.length grants);
  check_int "only T2's entry remains" 1 (Table.entry_count table);
  check_bool "T1 holds nothing" true (Table.locks_of table ~txn:1 = [])

let test_table_release_short_keeps_long () =
  let table = Table.create () in
  check_bool "short" true
    (Table.request table ~txn:1 ~resource:"a" Mode.IX = Table.Granted);
  check_bool "long" true
    (Table.request table ~txn:1 ~duration:Table.Long ~resource:"b" Mode.X
     = Table.Granted);
  let (_ : Table.grant list) = Table.release_short table ~txn:1 in
  check_bool "short gone" true
    (Mode.equal Mode.NL (Table.held table ~txn:1 ~resource:"a"));
  Alcotest.check mode_testable "long kept" Mode.X
    (Table.held table ~txn:1 ~resource:"b")

let test_table_cancel_wait () =
  let table = Table.create () in
  check_bool "T1 X" true (Table.request table ~txn:1 ~resource:"r" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"r" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  (match Table.request table ~txn:3 ~resource:"r" Mode.S with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  (* T2 gives up; T3 still cannot run (T1 holds X), but when T1 releases, T3
     gets the lock directly. *)
  let grants = Table.cancel_wait table ~txn:2 in
  check_int "nothing granted yet" 0 (List.length grants);
  let grants = Table.release table ~txn:1 ~resource:"r" in
  match grants with
  | [ { Table.g_txn = 3; _ } ] -> ()
  | _ -> Alcotest.fail "T3 should be granted after cancel"

let test_table_downgrade () =
  let table = Table.create () in
  check_bool "T1 X" true (Table.request table ~txn:1 ~resource:"r" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"r" Mode.S with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  let grants = Table.downgrade table ~txn:1 ~resource:"r" Mode.S in
  (match grants with
   | [ { Table.g_txn = 2; _ } ] -> ()
   | _ -> Alcotest.fail "downgrade to S should admit T2");
  Alcotest.check mode_testable "T1 now S" Mode.S
    (Table.held table ~txn:1 ~resource:"r")

let test_table_stats () =
  let table = Table.create () in
  let (_ : Table.outcome) = Table.request table ~txn:1 ~resource:"r" Mode.S in
  let (_ : Table.outcome) = Table.request table ~txn:2 ~resource:"r" Mode.X in
  let stats = Table.stats table in
  check_int "requests" 2 stats.Lockmgr.Lock_stats.requests;
  check_int "immediate" 1 stats.Lockmgr.Lock_stats.immediate_grants;
  check_int "waits" 1 stats.Lockmgr.Lock_stats.waits;
  check_bool "conflict tests happened" true
    (stats.Lockmgr.Lock_stats.conflict_tests > 0)

let test_table_peak_entries () =
  let table = Table.create () in
  List.iter
    (fun resource ->
      match Table.request table ~txn:1 ~resource Mode.S with
      | Table.Granted -> ()
      | Table.Waiting _ -> Alcotest.fail "grant expected")
    [ "a"; "b"; "c" ];
  let (_ : Table.grant list) = Table.release_all table ~txn:1 in
  check_int "entries back to 0" 0 (Table.entry_count table);
  check_int "peak saw 3" 3 (Table.peak_entry_count table)

let test_table_waits_for_edges () =
  let table = Table.create () in
  check_bool "T1 X a" true (Table.request table ~txn:1 ~resource:"a" Mode.X = Table.Granted);
  check_bool "T2 X b" true (Table.request table ~txn:2 ~resource:"b" Mode.X = Table.Granted);
  (match Table.request table ~txn:1 ~resource:"b" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  (match Table.request table ~txn:2 ~resource:"a" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  let edges = Table.waits_for_edges table in
  check_bool "1 waits for 2" true (List.mem (1, 2) edges);
  check_bool "2 waits for 1" true (List.mem (2, 1) edges)

(* ---------------------------------------------------------------- Deadlock *)

let test_deadlock_simple_cycle () =
  match Lockmgr.Deadlock.find_cycle ~edges:[ (1, 2); (2, 1) ] with
  | Some cycle ->
    check_bool "both in cycle" true (List.mem 1 cycle && List.mem 2 cycle)
  | None -> Alcotest.fail "cycle expected"

let test_deadlock_no_cycle () =
  check_bool "acyclic" true
    (Lockmgr.Deadlock.find_cycle ~edges:[ (1, 2); (2, 3); (1, 3) ] = None)

let test_deadlock_long_cycle () =
  match
    Lockmgr.Deadlock.find_cycle ~edges:[ (1, 2); (2, 3); (3, 4); (4, 1); (2, 5) ]
  with
  | Some cycle -> check_int "cycle of 4" 4 (List.length cycle)
  | None -> Alcotest.fail "cycle expected"

let test_deadlock_victim () =
  check_int "youngest dies" 9 (Lockmgr.Deadlock.choose_victim [ 3; 9; 1 ]);
  check_int "priority override" 1
    (Lockmgr.Deadlock.choose_victim ~priority:(fun txn -> txn) [ 3; 9; 1 ])

let test_deadlock_via_table () =
  (* Classic AB-BA through the real table. *)
  let table = Table.create () in
  let granted outcome = outcome = Table.Granted in
  check_bool "T1 a" true (granted (Table.request table ~txn:1 ~resource:"a" Mode.X));
  check_bool "T2 b" true (granted (Table.request table ~txn:2 ~resource:"b" Mode.X));
  check_bool "T1 waits b" false (granted (Table.request table ~txn:1 ~resource:"b" Mode.X));
  check_bool "T2 waits a" false (granted (Table.request table ~txn:2 ~resource:"a" Mode.X));
  (match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) with
   | Some _ -> ()
   | None -> Alcotest.fail "deadlock expected");
  (* abort the victim: cancel waits + release; survivor proceeds *)
  let (_ : Table.grant list) = Table.cancel_wait table ~txn:2 in
  let grants = Table.release_all table ~txn:2 in
  check_bool "T1 granted b" true
    (List.exists (fun grant -> grant.Table.g_txn = 1) grants);
  check_bool "no more cycle" true
    (Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) = None)

(* ------------------------------------------------------------------ Policy *)

module Policy = Lockmgr.Policy

let candidate txn birth locks_held work_done =
  { Policy.txn; birth; locks_held; work_done }

let test_policy_choose_victim () =
  let candidates =
    [ candidate 1 10 5 3; candidate 2 30 1 9; candidate 3 20 5 1 ]
  in
  check_int "youngest: largest birth dies" 2
    (Policy.choose_victim Policy.Youngest candidates);
  check_int "oldest: smallest birth dies" 1
    (Policy.choose_victim Policy.Oldest candidates);
  check_int "fewest locks dies" 2
    (Policy.choose_victim Policy.Fewest_locks candidates);
  check_int "least work dies" 3
    (Policy.choose_victim Policy.Least_work candidates);
  (* ties break toward the largest transaction id *)
  check_int "tie -> largest id" 3
    (Policy.choose_victim Policy.Fewest_locks
       [ candidate 1 0 5 0; candidate 3 0 5 0 ])

let test_policy_backoff () =
  check_int "fixed is flat" 50
    (Policy.delay (Policy.Fixed 50) ~restarts:7 ~txn:3);
  let exponential = Policy.Exponential { base = 10; cap = 400; seed = 1 } in
  let delay restarts txn = Policy.delay exponential ~restarts ~txn in
  (* deterministic: same inputs, same jittered delay *)
  check_int "pure" (delay 3 5) (delay 3 5);
  (* jitter stays within [raw/2, raw] and respects the cap *)
  List.iter
    (fun restarts ->
      let raw = min 400 (10 * (1 lsl min restarts 16)) in
      let value = delay restarts 9 in
      check_bool "within band" true (value >= raw / 2 && value <= raw))
    [ 0; 1; 2; 3; 5; 8; 30 ];
  (* different txns desynchronize (at least somewhere in a small range) *)
  check_bool "jitter varies by txn" true
    (List.exists
       (fun txn -> delay 4 txn <> delay 4 (txn + 1))
       [ 1; 2; 3; 4; 5 ])

(* Regression pin for the saturation fix: once [base * 2^restarts] passes the
   cap, every further restart must keep returning cap-band delays — even for
   bases large enough that the multiplication itself would wrap. *)
let test_policy_backoff_saturates () =
  let exponential = Policy.Exponential { base = 100; cap = 800; seed = 3 } in
  let delay restarts = Policy.delay exponential ~restarts ~txn:7 in
  (* the capped sequence: raw envelope 100,200,400,800,800,... and from the
     saturation point on the jittered value itself is pinned *)
  List.iteri
    (fun restarts raw ->
      let value = delay restarts in
      check_bool
        (Printf.sprintf "restart %d in [%d,%d]" restarts (raw / 2) raw)
        true
        (value >= raw / 2 && value <= raw))
    [ 100; 200; 400; 800; 800; 800; 800; 800 ];
  (* beyond the doubling clamp (16) the envelope stays pinned at the cap
     (jitter still varies per restart, but only inside [cap/2, cap]) *)
  List.iter
    (fun restarts ->
      let value = delay restarts in
      check_bool
        (Printf.sprintf "clamped tail restart %d in cap band" restarts)
        true
        (value >= 400 && value <= 800))
    [ 17; 40; 1_000_000 ];
  (* a base that would overflow 63-bit ints after 16 doublings must
     saturate at the cap, not wrap negative *)
  let huge = Policy.Exponential { base = max_int / 8; cap = 500; seed = 1 } in
  List.iter
    (fun restarts ->
      let value = Policy.delay huge ~restarts ~txn:11 in
      check_bool
        (Printf.sprintf "huge base restart %d stays in cap band" restarts)
        true
        (value >= 250 && value <= 500))
    [ 0; 1; 2; 5; 16; 30; 1000 ]

let test_policy_strings () =
  check_bool "detection" true
    (Policy.resolution_of_string "detection" = Ok Policy.Detection);
  check_bool "timeout default" true
    (Policy.resolution_of_string "timeout"
     = Ok (Policy.Timeout Policy.default_timeout));
  check_bool "timeout:250" true
    (Policy.resolution_of_string "timeout:250" = Ok (Policy.Timeout 250));
  check_bool "hybrid:90" true
    (Policy.resolution_of_string "hybrid:90" = Ok (Policy.Hybrid 90));
  check_bool "junk rejected" true
    (match Policy.resolution_of_string "sometimes" with
     | Error _ -> true
     | Ok _ -> false);
  check_bool "victims" true
    (Policy.victim_of_string "fewest-locks" = Ok Policy.Fewest_locks);
  check_bool "fixed backoff" true
    (Policy.backoff_of_string "fixed:30" = Ok (Policy.Fixed 30));
  check_bool "exp backoff" true
    (Policy.backoff_of_string "exp:10:200:7"
     = Ok (Policy.Exponential { base = 10; cap = 200; seed = 7 }));
  check_bool "restart none" true
    (Policy.restart_of_string "none" = Ok Policy.No_restart);
  check_bool "restart wdl default" true
    (Policy.restart_of_string "wdl"
     = Ok (Policy.Wait_depth Policy.default_wait_depth));
  check_bool "restart wdl:2" true
    (Policy.restart_of_string "wdl:2" = Ok (Policy.Wait_depth 2));
  check_bool "restart running-priority" true
    (Policy.restart_of_string "running-priority" = Ok Policy.Running_priority);
  check_bool "restart wdl:0 rejected" true
    (match Policy.restart_of_string "wdl:0" with
     | Error _ -> true
     | Ok _ -> false);
  (* round trips *)
  List.iter
    (fun text ->
      match Policy.resolution_of_string text with
      | Ok resolution ->
        check_bool ("round trip " ^ text) true
          (Policy.resolution_to_string resolution = text)
      | Error message -> Alcotest.fail message)
    [ "detection"; "timeout:250"; "hybrid:90" ];
  List.iter
    (fun text ->
      match Policy.restart_of_string text with
      | Ok restart ->
        check_bool ("round trip " ^ text) true
          (Policy.restart_to_string restart = text)
      | Error message -> Alcotest.fail message)
    [ "none"; "wdl:1"; "wdl:3"; "running-priority" ]

(* ------------------------------------------------- Deadlines and invariants *)

let test_table_deadlines () =
  let table = Table.create () in
  check_bool "T1 X a" true
    (Table.request table ~txn:1 ~resource:"a" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~deadline:100 ~resource:"a" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  (match Table.request table ~txn:3 ~deadline:200 ~resource:"a" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  Alcotest.(check (list (pair int string)))
    "nothing expired yet" []
    (Table.expired_waiters table ~now:99);
  Alcotest.(check (list (pair int string)))
    "T2 expires at its deadline"
    [ (2, "a") ]
    (Table.expired_waiters table ~now:100);
  Alcotest.(check (list (pair int string)))
    "both expired later"
    [ (2, "a"); (3, "a") ]
    (Table.expired_waiters table ~now:500);
  (* a granted request never expires *)
  let (_ : Table.grant list) = Table.release_all table ~txn:1 in
  Alcotest.(check (list (pair int string)))
    "granted T2 no longer expires"
    [ (3, "a") ]
    (Table.expired_waiters table ~now:500)

(* A waiter whose deadline expires in the very tick it becomes grantable:
   the grant must win deterministically. After the release grants T2, the
   expiry scan at the same [now] no longer reports it, and a late timeout
   handler calling [cancel_wait] is a harmless no-op. *)
let test_table_expiry_grant_race () =
  let table = Table.create () in
  check_bool "T1 X a" true
    (Table.request table ~txn:1 ~resource:"a" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~deadline:100 ~resource:"a" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  (* the tick begins: T2 is expired... *)
  Alcotest.(check (list (pair int string)))
    "expired before the release"
    [ (2, "a") ]
    (Table.expired_waiters table ~now:100);
  (* ...but in the same tick T1 releases, and the grant wins *)
  (match Table.release_all table ~txn:1 with
   | [ grant ] -> check_int "T2 granted" 2 grant.Table.g_txn
   | grants -> Alcotest.failf "expected one grant, got %d" (List.length grants));
  Alcotest.(check (list (pair int string)))
    "granted T2 no longer expires" []
    (Table.expired_waiters table ~now:100);
  Alcotest.(check (list string))
    "sound after the race" []
    (Table.check_invariants table);
  (* a timeout handler that already decided to abort T2 finds nothing to
     cancel and corrupts nothing *)
  Alcotest.(check int)
    "stale cancel_wait is a no-op" 0
    (List.length (Table.cancel_wait table ~txn:2));
  check_bool "T2 still holds a" true
    (Table.held table ~txn:2 ~resource:"a" = Mode.X);
  Alcotest.(check (list string))
    "still sound" [] (Table.check_invariants table)

(* wait_depth measures the longest blocker chain, and cycles stay finite *)
let test_table_wait_depth () =
  let table = Table.create () in
  check_bool "T1 X a" true
    (Table.request table ~txn:1 ~resource:"a" Mode.X = Table.Granted);
  check_bool "T2 X b" true
    (Table.request table ~txn:2 ~resource:"b" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"a" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "T2 should wait on a");
  (match Table.request table ~txn:3 ~resource:"b" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "T3 should wait on b");
  check_int "running T1 has depth 0" 0 (Table.wait_depth table ~txn:1);
  check_int "T2 waits on T1" 1 (Table.wait_depth table ~txn:2);
  check_int "T3 -> T2 -> T1" 2 (Table.wait_depth table ~txn:3);
  (* close the cycle: T1 wants b, so T1 -> T2 -> T1; depth stays finite *)
  (match Table.request table ~txn:1 ~resource:"b" Mode.X with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "T1 should wait on b");
  check_bool "cycle depth finite" true (Table.wait_depth table ~txn:1 <= 3)

let test_table_check_invariants_clean () =
  let table = Table.create () in
  check_bool "T1 X a" true
    (Table.request table ~txn:1 ~resource:"a" Mode.X = Table.Granted);
  (match Table.request table ~txn:2 ~resource:"a" Mode.S with
   | Table.Waiting _ -> ()
   | Table.Granted -> Alcotest.fail "should wait");
  check_bool "T1 IS b" true
    (Table.request table ~txn:1 ~resource:"b" Mode.IS = Table.Granted);
  Alcotest.(check (list string)) "sound" [] (Table.check_invariants table);
  let (_ : Table.grant list) = Table.release_all table ~txn:1 in
  let (_ : Table.grant list) = Table.release_all table ~txn:2 in
  Alcotest.(check (list string)) "sound after drain" []
    (Table.check_invariants table);
  check_int "empty" 0 (Table.entry_count table)

(* Satellite of the trail-set change: repeated resolution over several
   overlapping cycles must terminate and leave an acyclic graph. *)
let test_deadlock_overlapping_cycles_terminate () =
  let table = Table.create () in
  let granted outcome = outcome = Table.Granted in
  (* T1..T4 each hold their own resource, then everyone wants everyone
     else's in a pattern with overlapping cycles 1-2, 2-3, 3-4, 4-1. *)
  List.iter
    (fun txn ->
      check_bool "own" true
        (granted
           (Table.request table ~txn ~resource:(string_of_int txn) Mode.X)))
    [ 1; 2; 3; 4 ];
  List.iter
    (fun (txn, wanted) ->
      check_bool "waits" false
        (granted (Table.request table ~txn ~resource:wanted Mode.X)))
    [ (1, "2"); (2, "1"); (2, "3"); (3, "2"); (3, "4"); (4, "3"); (4, "1");
      (1, "4") ];
  let rec resolve rounds =
    if rounds > 16 then Alcotest.fail "resolution did not terminate"
    else
      match Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) with
      | None -> rounds
      | Some cycle ->
        let victim = Lockmgr.Deadlock.choose_victim cycle in
        let (_ : Table.grant list) = Table.cancel_wait table ~txn:victim in
        let (_ : Table.grant list) = Table.release_all table ~txn:victim in
        resolve (rounds + 1)
  in
  let rounds = resolve 0 in
  check_bool "took at least one abort" true (rounds >= 1);
  check_bool "acyclic afterwards" true
    (Lockmgr.Deadlock.find_cycle ~edges:(Table.waits_for_edges table) = None);
  Alcotest.(check (list string)) "table still sound" []
    (Table.check_invariants table)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_compat_symmetric; prop_sup_commutative; prop_sup_associative;
      prop_sup_idempotent; prop_sup_upper_bound; prop_stronger_conflicts_more ]

let () =
  Alcotest.run "lockmgr"
    [ ("lock_mode",
       [ Alcotest.test_case "compatibility matrix" `Quick
           test_mode_compat_matrix;
         Alcotest.test_case "sup cases" `Quick test_mode_sup_cases;
         Alcotest.test_case "leq" `Quick test_mode_leq;
         Alcotest.test_case "intention_for" `Quick test_mode_intention_for;
         Alcotest.test_case "strings" `Quick test_mode_strings ]);
      ("lock_mode_properties", qcheck_cases);
      ("lock_table",
       [ Alcotest.test_case "grant and conflict" `Quick
           test_table_grant_and_conflict;
         Alcotest.test_case "release grants waiter" `Quick
           test_table_release_grants_waiter;
         Alcotest.test_case "fifo fairness" `Quick test_table_fifo_fairness;
         Alcotest.test_case "conversion" `Quick test_table_conversion;
         Alcotest.test_case "conversion jumps queue" `Quick
           test_table_conversion_blocks_then_jumps_queue;
         Alcotest.test_case "covered request" `Quick
           test_table_covered_request_noop;
         Alcotest.test_case "intention sharing" `Quick
           test_table_intention_sharing;
         Alcotest.test_case "SIX" `Quick test_table_six;
         Alcotest.test_case "release_all" `Quick test_table_release_all;
         Alcotest.test_case "release_short keeps long" `Quick
           test_table_release_short_keeps_long;
         Alcotest.test_case "cancel_wait" `Quick test_table_cancel_wait;
         Alcotest.test_case "downgrade" `Quick test_table_downgrade;
         Alcotest.test_case "stats" `Quick test_table_stats;
         Alcotest.test_case "peak entries" `Quick test_table_peak_entries;
         Alcotest.test_case "deadlines" `Quick test_table_deadlines;
         Alcotest.test_case "expiry/grant race" `Quick
           test_table_expiry_grant_race;
         Alcotest.test_case "wait_depth" `Quick test_table_wait_depth;
         Alcotest.test_case "check_invariants clean" `Quick
           test_table_check_invariants_clean;
         Alcotest.test_case "waits_for edges" `Quick
           test_table_waits_for_edges ]);
      ("deadlock",
       [ Alcotest.test_case "simple cycle" `Quick test_deadlock_simple_cycle;
         Alcotest.test_case "no cycle" `Quick test_deadlock_no_cycle;
         Alcotest.test_case "long cycle" `Quick test_deadlock_long_cycle;
         Alcotest.test_case "victim" `Quick test_deadlock_victim;
         Alcotest.test_case "via table" `Quick test_deadlock_via_table;
         Alcotest.test_case "overlapping cycles terminate" `Quick
           test_deadlock_overlapping_cycles_terminate ]);
      ("policy",
       [ Alcotest.test_case "choose_victim" `Quick test_policy_choose_victim;
         Alcotest.test_case "backoff" `Quick test_policy_backoff;
         Alcotest.test_case "backoff saturates" `Quick
           test_policy_backoff_saturates;
         Alcotest.test_case "strings" `Quick test_policy_strings ]) ]
