(* Tests for the transaction manager (strict 2PL, deadlock victims) and the
   workstation check-out/check-in environment with persistent long locks. *)

module Path = Nf2.Path
module Oid = Nf2.Oid
module Value = Nf2.Value
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type env = {
  db : Nf2.Database.t;
  graph : Graph.t;
  table : Table.t;
  rights : Authz.Rights.t;
  manager : Txn.Txn_manager.t;
}

let make_env () =
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ~rights graph table in
  { db; graph; table; rights; manager = Txn.Txn_manager.create protocol }

let node steps = Option.get (Node_id.of_steps steps)
let cell_c1 = node [ "db1"; "seg1"; "cells"; "c1" ]
let robot_r1 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ]
let robot_r2 = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r2" ]

(* ------------------------------------------------------------ Txn_manager *)

let test_begin_ids_monotonic () =
  let env = make_env () in
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  let t2 = Txn.Txn_manager.begin_txn env.manager in
  check_bool "ids grow" true (t2.Txn.Transaction.id > t1.Txn.Transaction.id);
  check_int "two active" 2 (List.length (Txn.Txn_manager.active_txns env.manager))

let test_acquire_commit_cycle () =
  let env = make_env () in
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  (match Txn.Txn_manager.acquire env.manager t1 cell_c1 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "grant expected");
  let (_ : Table.grant list) = Txn.Txn_manager.commit env.manager t1 in
  check_bool "committed" true
    (t1.Txn.Transaction.status = Txn.Transaction.Committed);
  check_int "no locks left" 0
    (List.length (Table.locks_of env.table ~txn:t1.Txn.Transaction.id))

let test_acquire_after_finish_rejected () =
  let env = make_env () in
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  let (_ : Table.grant list) = Txn.Txn_manager.commit env.manager t1 in
  match Txn.Txn_manager.acquire env.manager t1 cell_c1 Mode.S with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "finished transactions cannot acquire"

let test_waiting_and_unblock () =
  let env = make_env () in
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  let t2 = Txn.Txn_manager.begin_txn env.manager in
  (match Txn.Txn_manager.acquire env.manager t1 cell_c1 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t1 grant");
  (match Txn.Txn_manager.acquire env.manager t2 cell_c1 Mode.S with
   | Txn.Txn_manager.Waiting _ -> ()
   | _ -> Alcotest.fail "t2 should wait");
  check_bool "t2 waiting" true
    (match t2.Txn.Transaction.status with
     | Txn.Transaction.Waiting _ -> true
     | _ -> false);
  let grants = Txn.Txn_manager.commit env.manager t1 in
  let woken = Txn.Txn_manager.unblocked env.manager grants in
  check_int "t2 woken" 1 (List.length woken);
  check_bool "t2 active again" true
    (t2.Txn.Transaction.status = Txn.Transaction.Active);
  (* retry completes the plan *)
  match Txn.Txn_manager.acquire env.manager t2 cell_c1 Mode.S with
  | Txn.Txn_manager.Granted -> ()
  | _ -> Alcotest.fail "retry should succeed"

let test_deadlock_youngest_dies () =
  let env = make_env () in
  (* keep the effector library out of the picture (rule 4': S on e2 for
     both), so the cycle forms purely on the robots *)
  Authz.Rights.set_relation_default env.rights ~relation:"effectors" false;
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  let t2 = Txn.Txn_manager.begin_txn env.manager in
  (match Txn.Txn_manager.acquire env.manager t1 robot_r1 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t1 r1");
  (match Txn.Txn_manager.acquire env.manager t2 robot_r2 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t2 r2");
  (match Txn.Txn_manager.acquire env.manager t1 robot_r2 Mode.X with
   | Txn.Txn_manager.Waiting _ -> ()
   | _ -> Alcotest.fail "t1 waits for r2");
  (* t2 closing the cycle gets sacrificed (younger). *)
  (match Txn.Txn_manager.acquire env.manager t2 robot_r1 Mode.X with
   | Txn.Txn_manager.Deadlock_victim -> ()
   | _ -> Alcotest.fail "t2 must die");
  check_bool "t2 aborted" true
    (t2.Txn.Transaction.status
     = Txn.Transaction.Aborted Txn.Transaction.Deadlock_victim);
  (* t1 can now finish *)
  match Txn.Txn_manager.acquire env.manager t1 robot_r2 Mode.X with
  | Txn.Txn_manager.Granted -> ()
  | _ -> Alcotest.fail "t1 proceeds after victim abort"

let test_victim_abort_grants_caller () =
  let env = make_env () in
  Authz.Rights.set_relation_default env.rights ~relation:"effectors" false;
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  let t2 = Txn.Txn_manager.begin_txn env.manager in
  (match Txn.Txn_manager.acquire env.manager t1 robot_r1 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t1 r1");
  (match Txn.Txn_manager.acquire env.manager t2 robot_r2 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t2 r2");
  (match Txn.Txn_manager.acquire env.manager t2 robot_r1 Mode.X with
   | Txn.Txn_manager.Waiting _ -> ()
   | _ -> Alcotest.fail "t2 waits for r1");
  (* t1 closes the cycle but survives (t2 is younger). The victim's abort
     releases r2, whose grant satisfies this very request — the call must
     report the true outcome, not a stale wait. *)
  (match Txn.Txn_manager.acquire env.manager t1 robot_r2 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | Txn.Txn_manager.Waiting _ ->
     Alcotest.fail "stale Waiting after victim abort unblocked the caller"
   | Txn.Txn_manager.Deadlock_victim -> Alcotest.fail "wrong victim");
  check_bool "t1 still active" true
    (t1.Txn.Transaction.status = Txn.Transaction.Active);
  check_bool "t2 aborted" true
    (t2.Txn.Transaction.status
     = Txn.Transaction.Aborted Txn.Transaction.Deadlock_victim)

let test_expire_timeouts () =
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ~rights graph table in
  let now = ref 0 in
  let config =
    { Txn.Txn_manager.resolution = Lockmgr.Policy.Timeout 100;
      victim = Lockmgr.Policy.Youngest }
  in
  let manager =
    Txn.Txn_manager.create ~clock:(fun () -> !now) ~config protocol
  in
  let t1 = Txn.Txn_manager.begin_txn manager in
  let t2 = Txn.Txn_manager.begin_txn manager in
  (match Txn.Txn_manager.acquire manager t1 cell_c1 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t1 grant");
  (* under Timeout there is no detection: even a conflict just waits *)
  (match Txn.Txn_manager.acquire manager t2 cell_c1 Mode.S with
   | Txn.Txn_manager.Waiting _ -> ()
   | _ -> Alcotest.fail "t2 should wait");
  check_int "nothing expired before the deadline" 0
    (List.length (Txn.Txn_manager.expire_timeouts ~now:99 manager));
  check_bool "t2 still waiting" true
    (match t2.Txn.Transaction.status with
     | Txn.Transaction.Waiting _ -> true
     | _ -> false);
  let victims = Txn.Txn_manager.expire_timeouts ~now:100 manager in
  check_int "one victim at the deadline" 1 (List.length victims);
  check_bool "t2 timed out" true
    (t2.Txn.Transaction.status
     = Txn.Transaction.Aborted Txn.Transaction.Timeout_victim);
  check_bool "t1 unaffected" true
    (t1.Txn.Transaction.status = Txn.Transaction.Active);
  check_int "t2 holds nothing" 0
    (List.length (Table.locks_of table ~txn:t2.Txn.Transaction.id));
  check_int "no second expiry" 0
    (List.length (Txn.Txn_manager.expire_timeouts ~now:500 manager))

let test_abort_releases_everything () =
  let env = make_env () in
  let t1 = Txn.Txn_manager.begin_txn env.manager in
  (match Txn.Txn_manager.acquire env.manager t1 cell_c1 Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "grant");
  let (_ : Table.grant list) = Txn.Txn_manager.abort env.manager t1 in
  check_int "no locks" 0
    (List.length (Table.locks_of env.table ~txn:t1.Txn.Transaction.id));
  check_bool "aborted" true
    (t1.Txn.Transaction.status = Txn.Transaction.Aborted Txn.Transaction.User_abort)

let test_admission_gate () =
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ~rights graph table in
  let admission =
    { Robust.Admission.default_config with
      initial = 1; min_limit = 1; max_limit = 4; queue_capacity = 1 }
  in
  let manager = Txn.Txn_manager.create ~admission protocol in
  let t1 =
    match Txn.Txn_manager.try_begin manager with
    | Txn.Txn_manager.Started txn -> txn
    | _ -> Alcotest.fail "first begin should be admitted"
  in
  (match Txn.Txn_manager.try_begin ~priority:Robust.Admission.Low manager with
   | Txn.Txn_manager.Queued _ -> ()
   | _ -> Alcotest.fail "second begin should queue");
  (* queue capacity 1 holding a Low entry: a High request displaces it *)
  (match Txn.Txn_manager.try_begin ~priority:Robust.Admission.High manager with
   | Txn.Txn_manager.Queued _ -> ()
   | _ -> Alcotest.fail "high-priority begin should queue by eviction");
  let gate = Option.get (Txn.Txn_manager.admission manager) in
  check_int "eviction counted as shed" 1 (Robust.Admission.shed_count gate);
  (* equal priority against a full queue: refused outright *)
  (match Txn.Txn_manager.try_begin ~priority:Robust.Admission.High manager with
   | Txn.Txn_manager.Shed -> ()
   | _ -> Alcotest.fail "equal-priority begin should shed");
  check_int "rejection counted as shed" 2 (Robust.Admission.shed_count gate);
  check_int "no drain while the slot is held" 0
    (List.length (Txn.Txn_manager.drain_admitted manager));
  let (_ : Table.grant list) = Txn.Txn_manager.commit manager t1 in
  (match Txn.Txn_manager.drain_admitted manager with
   | [ t2 ] ->
     check_bool "queued txn started" true (Txn.Transaction.is_active t2);
     let (_ : Table.grant list) = Txn.Txn_manager.commit manager t2 in ()
   | other ->
     Alcotest.failf "expected one drained txn, got %d" (List.length other));
  check_int "all slots free after commits" 0 (Robust.Admission.inflight gate)

(* ---------------------------------------------------------------- Checkout *)

let temp_lock_file () = Filename.temp_file "colock_locks" ".txt"

let make_checkout_env () =
  let env = make_env () in
  let lock_file = temp_lock_file () in
  (env, Txn.Checkout.create ~lock_file env.manager env.db, lock_file)

let c1_oid = Oid.make ~relation:"cells" ~key:"c1"

let test_checkout_roundtrip () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
   | Ok value ->
     check_bool "got the cell" true
       (match Value.field value "cell_id" with
        | Some (Value.Str "c1") -> true
        | _ -> false)
   | Error _ -> Alcotest.fail "check-out failed");
  Alcotest.(check (list string)) "checked out list" [ "cells/c1" ]
    (List.map Oid.to_string (Txn.Checkout.checked_out checkout t1));
  (* X long lock held on the object *)
  check_bool "X on c1" true
    (Mode.equal
       (Table.held env.table ~txn:t1.Txn.Transaction.id
          ~resource:"db1/seg1/cells/c1")
       Mode.X)

let test_checkout_conflict () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  let t2 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "first check-out");
  match Txn.Checkout.check_out checkout t2 c1_oid ~mode:`Update with
  | Error (Txn.Checkout.Blocked _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "second exclusive check-out must block"

let test_checkout_read_shared () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  let t2 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Read with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "first read check-out");
  match Txn.Checkout.check_out checkout t2 c1_oid ~mode:`Read with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "read check-outs share"

let test_checkin_requires_exclusive () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Read with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "check-out");
  match Txn.Checkout.check_in checkout t1 c1_oid with
  | Error (Txn.Checkout.Not_exclusive _) -> ()
  | Error _ | Ok () -> Alcotest.fail "read check-out cannot check in"

let test_checkin_writes_back () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  let original =
    match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
    | Ok value -> value
    | Error _ -> Alcotest.fail "check-out"
  in
  (* workstation edit: rename an object *)
  let edited =
    match original with
    | Value.Tuple bindings ->
      Value.Tuple
        (List.map
           (fun (field, sub) ->
             if String.equal field "c_objects" then
               match sub with
               | Value.Set (first :: rest) ->
                 (match first with
                  | Value.Tuple member_fields ->
                    ( field,
                      Value.Set
                        (Value.Tuple
                           (List.map
                              (fun (mf, mv) ->
                                if String.equal mf "obj_name" then
                                  (mf, Value.Str "renamed")
                                else (mf, mv))
                              member_fields)
                         :: rest) )
                  | _ -> (field, sub))
               | _ -> (field, sub)
             else (field, sub))
           bindings)
    | _ -> Alcotest.fail "cell should be a tuple"
  in
  (match Txn.Checkout.update_local checkout t1 c1_oid edited with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "local update");
  (match Txn.Checkout.check_in checkout t1 c1_oid with
   | Ok () -> ()
   | Error error ->
     Alcotest.failf "check-in failed: %s"
       (Format.asprintf "%a" Txn.Checkout.pp_error error));
  let stored = Option.get (Nf2.Database.deref env.db c1_oid) in
  check_bool "central db updated" true
    (List.exists
       (Value.equal (Value.Str "renamed"))
       (Value.project stored (Path.of_string "c_objects.obj_name")))

let test_finish_session_releases () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "check-out");
  let (_ : Table.grant list) = Txn.Checkout.finish_session checkout t1 in
  check_int "all locks gone" 0
    (List.length (Table.locks_of env.table ~txn:t1.Txn.Transaction.id));
  check_int "no private copies" 0
    (List.length (Txn.Checkout.checked_out checkout t1))

let test_commit_keeps_long_locks () =
  let env, checkout, _file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "check-out");
  let (_ : Table.grant list) = Txn.Txn_manager.commit env.manager t1 in
  (* long locks (the check-out) survive the commit *)
  check_bool "X still held" true
    (Mode.equal
       (Table.held env.table ~txn:t1.Txn.Transaction.id
          ~resource:"db1/seg1/cells/c1")
       Mode.X)

let test_locks_survive_shutdown () =
  let env, checkout, lock_file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "check-out");
  let held_before =
    List.length (Table.locks_of env.table ~txn:t1.Txn.Transaction.id)
  in
  Txn.Checkout.save_locks checkout;
  (* "shutdown": fresh lock table, same database *)
  let table2 = Table.create () in
  let protocol2 = Colock.Protocol.create env.graph table2 in
  let manager2 = Txn.Txn_manager.create protocol2 in
  let checkout2 = Txn.Checkout.create ~lock_file manager2 env.db in
  let restored = Txn.Checkout.restore_locks checkout2 in
  check_int "every long lock restored" held_before restored;
  check_bool "X on c1 restored" true
    (Mode.equal
       (Table.held table2 ~txn:t1.Txn.Transaction.id
          ~resource:"db1/seg1/cells/c1")
       Mode.X);
  (* another workstation still cannot check the object out *)
  let t9 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long manager2 in
  let t9 = { t9 with Txn.Transaction.id = 99 } in
  match Txn.Checkout.check_out checkout2 t9 c1_oid ~mode:`Update with
  | Error (Txn.Checkout.Blocked _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "restored lock must still protect c1"

let test_restore_tolerates_corruption () =
  (* garbage lines are skipped; valid ones still restore *)
  let env, checkout, lock_file = make_checkout_env () in
  let t1 = Txn.Txn_manager.begin_txn ~kind:Txn.Transaction.Long env.manager in
  (match Txn.Checkout.check_out checkout t1 c1_oid ~mode:`Update with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "check-out");
  Txn.Checkout.save_locks checkout;
  let valid = List.length (Table.locks_of env.table ~txn:t1.Txn.Transaction.id) in
  (* append corruption *)
  let channel = open_out_gen [ Open_append ] 0o644 lock_file in
  output_string channel "not a lock line\n";
  output_string channel "99 NOTAMODE db1/seg1\n";
  output_string channel "abc X db1/seg1\n";
  output_string channel "\n";
  close_out channel;
  let table2 = Table.create () in
  let protocol2 = Colock.Protocol.create env.graph table2 in
  let manager2 = Txn.Txn_manager.create protocol2 in
  let checkout2 = Txn.Checkout.create ~lock_file manager2 env.db in
  check_int "only valid lines restored" valid
    (Txn.Checkout.restore_locks checkout2)

let test_restore_missing_file () =
  let env = make_env () in
  let checkout =
    Txn.Checkout.create ~lock_file:"/tmp/definitely_missing_locks.txt"
      env.manager env.db
  in
  check_int "nothing restored" 0 (Txn.Checkout.restore_locks checkout)

let () =
  Alcotest.run "txn"
    [ ("manager",
       [ Alcotest.test_case "ids monotonic" `Quick test_begin_ids_monotonic;
         Alcotest.test_case "acquire/commit" `Quick test_acquire_commit_cycle;
         Alcotest.test_case "no acquire after finish" `Quick
           test_acquire_after_finish_rejected;
         Alcotest.test_case "waiting and unblock" `Quick
           test_waiting_and_unblock;
         Alcotest.test_case "deadlock youngest dies" `Quick
           test_deadlock_youngest_dies;
         Alcotest.test_case "victim abort grants caller" `Quick
           test_victim_abort_grants_caller;
         Alcotest.test_case "expire timeouts" `Quick test_expire_timeouts;
         Alcotest.test_case "admission gate" `Quick test_admission_gate;
         Alcotest.test_case "abort releases" `Quick
           test_abort_releases_everything ]);
      ("checkout",
       [ Alcotest.test_case "roundtrip" `Quick test_checkout_roundtrip;
         Alcotest.test_case "conflict" `Quick test_checkout_conflict;
         Alcotest.test_case "read shared" `Quick test_checkout_read_shared;
         Alcotest.test_case "check-in requires exclusive" `Quick
           test_checkin_requires_exclusive;
         Alcotest.test_case "check-in writes back" `Quick
           test_checkin_writes_back;
         Alcotest.test_case "finish session" `Quick
           test_finish_session_releases;
         Alcotest.test_case "commit keeps long locks" `Quick
           test_commit_keeps_long_locks;
         Alcotest.test_case "locks survive shutdown" `Quick
           test_locks_survive_shutdown;
         Alcotest.test_case "restore tolerates corruption" `Quick
           test_restore_tolerates_corruption;
         Alcotest.test_case "restore missing file" `Quick
           test_restore_missing_file ]) ]
