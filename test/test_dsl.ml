(* Tests for the scenario DSL: parsing, diagnostics, the canonical
   print/parse round-trip, deterministic DSL-to-jobs compilation, and
   pinned digests for the workload generator (so a refactor that silently
   changes generated databases — and with them every committed scenario
   baseline — fails loudly here first). *)

module Dsl = Workload.Dsl
module Graph = Colock.Instance_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse_exn text =
  match Dsl.parse text with
  | Ok scenario -> scenario
  | Error message -> Alcotest.fail message

(* ---------------------------------------------------------------- parsing *)

let test_parse_defaults () =
  let scenario = parse_exn "scenario tiny\n" in
  check_string "name" "tiny" scenario.Dsl.name;
  check_int "jobs default" 40 scenario.Dsl.jobs;
  check_int "seed default" 17 scenario.Dsl.seed;
  check_int "all three techniques" 3 (List.length scenario.Dsl.techniques);
  check_bool "no faults" false (Dsl.faults_active scenario.Dsl.faults);
  check_int "no slo rules" 0 (List.length scenario.Dsl.slo)

let test_parse_full () =
  let scenario =
    parse_exn
      "scenario full\n\
       catalog cells=8 objects=12 robots=3 effectors=32 refs=1\n\
       jobs 100\n\
       seed 23\n\
       window 250\n\
       techniques proposed rule4\n\
       arrivals bursty burst=10 every=150 spread=2\n\
       popularity zipf skew=1.2\n\
       mix read=0.4 update=0.3 library=0.2 checkout=0.1\n\
       checkout hold=1500 steps=2\n\
       steps 3\n\
       cost 80\n\
       faults crash=0.05 stall=0.1 factor=4 hog=0.02\n\
       slo p99_wait < 500\n\
       slo abort_rate < 0.5\n"
  in
  check_int "cells" 8 scenario.Dsl.catalog.Dsl.cells;
  check_int "jobs" 100 scenario.Dsl.jobs;
  (match scenario.Dsl.arrivals with
   | Dsl.Bursty { burst; every; spread } ->
     check_int "burst" 10 burst;
     check_int "every" 150 every;
     check_int "spread" 2 spread
   | _ -> Alcotest.fail "bursty arrivals expected");
  (match scenario.Dsl.popularity with
   | Dsl.Zipf skew -> Alcotest.(check (float 1e-9)) "skew" 1.2 skew
   | Dsl.Flat -> Alcotest.fail "zipf popularity expected");
  check_int "two techniques" 2 (List.length scenario.Dsl.techniques);
  check_int "checkout hold" 1500 scenario.Dsl.checkout_hold;
  check_bool "faults active" true (Dsl.faults_active scenario.Dsl.faults);
  check_int "two slo rules" 2 (List.length scenario.Dsl.slo)

let contains fragment message =
  let rec scan index =
    index + String.length fragment <= String.length message
    && (String.sub message index (String.length fragment) = fragment
        || scan (index + 1))
  in
  scan 0

let parse_error ?file text =
  match Dsl.parse ?file text with
  | Ok _ -> Alcotest.fail "parse should fail"
  | Error message -> message

let test_parse_diagnostics () =
  let check_mentions label fragment message =
    check_bool label true (contains fragment message)
  in
  check_mentions "offending directive" "\"jbos\"" (parse_error "jbos 3\n");
  check_mentions "offending field token" "cells=\"many\""
    (parse_error "catalog cells=many\n");
  check_mentions "unknown field named" "\"depth\""
    (parse_error "catalog depth=3\n");
  check_mentions "position carries the file" "suite.scn:2:"
    (parse_error ~file:"suite.scn" "scenario ok\njobs twenty\n");
  check_mentions "slo diagnostics keep their position" "suite.scn:2:"
    (parse_error ~file:"suite.scn" "scenario ok\nslo bogus < 1\n");
  check_mentions "mix must sum to one" "sum to 1"
    (parse_error "mix read=0.5 update=0.4\n");
  check_mentions "technique typo" "\"propsed\""
    (parse_error "techniques propsed\n")

(* The canonical printer is a fixed point: print (parse (print s)) = print s
   for scenarios exercising every directive. *)
let test_print_round_trip () =
  List.iter
    (fun text ->
      let first = Dsl.print (parse_exn text) in
      let second = Dsl.print (parse_exn first) in
      check_string "round trip" first second)
    [ "scenario a\n";
      "scenario b\narrivals poisson mean=12.5\npopularity zipf skew=0.8\n";
      "scenario c\nmix read=0.25 update=0.25 library=0.25 checkout=0.25\n\
       checkout hold=900 steps=3\nfaults crash=0.1 stall=0.2 factor=2 \
       hog=0.05\nslo p95_wait{lu=HoLU} <= 25\nslo throughput > 0.01\n";
      "scenario d\nadmission initial=4 min=2 max=32 queue=8\n\
       limits restart=wdl:2 every=25 p95=150 aborts=0.4 depth=16\n\
       budget retry=0.5:8 breaker=0.8:200:3\n" ]

let test_parse_overload () =
  let scenario =
    parse_exn
      "scenario controlled\n\
       admission initial=4 min=2 max=32 queue=8\n\
       limits restart=wdl:2 every=25 p95=150 aborts=0.4 depth=16\n\
       budget retry=0.5:8 breaker=0.9:100\n"
  in
  check_bool "overload active" true (Dsl.overload_active scenario.Dsl.overload);
  (match scenario.Dsl.overload.Dsl.admission with
   | Some gate ->
     check_int "initial" 4 gate.Robust.Admission.initial;
     check_int "queue" 8 gate.Robust.Admission.queue_capacity
   | None -> Alcotest.fail "admission gate expected");
  check_bool "wdl restart" true
    (scenario.Dsl.overload.Dsl.restart = Lockmgr.Policy.Wait_depth 2);
  check_int "control period" 25
    scenario.Dsl.overload.Dsl.controller.Robust.Controller.every;
  (match scenario.Dsl.overload.Dsl.retry with
   | Some bucket ->
     Alcotest.(check (float 1e-9)) "retry ratio" 0.5 bucket.Robust.Budget.ratio
   | None -> Alcotest.fail "retry budget expected");
  (match scenario.Dsl.overload.Dsl.breaker with
   | Some breaker ->
     check_int "breaker open_for" 100 breaker.Robust.Breaker.open_for
   | None -> Alcotest.fail "breaker expected");
  check_bool "defaults stay inert" false
    (Dsl.overload_active (parse_exn "scenario plain\n").Dsl.overload);
  (* bad stanzas diagnose cleanly *)
  let check_mentions label fragment message =
    check_bool label true (contains fragment message)
  in
  check_mentions "unknown admission field" "\"burst\""
    (parse_error "admission burst=3\n");
  check_mentions "bad restart policy" "wdl"
    (parse_error "limits restart=wibble\n");
  check_mentions "bad breaker spec" "RATE:OPEN"
    (parse_error "budget breaker=nope\n")

(* --------------------------------------------------------- compilation *)

let ops_fingerprint specs =
  String.concat ";"
    (List.map
       (fun (spec : Sim.Scenario.job_spec) ->
         Printf.sprintf "%d@%d:%s" spec.Sim.Scenario.arrival
           spec.Sim.Scenario.access_cost
           (String.concat ","
              (List.map
                 (function
                   | Sim.Scenario.Node_read node ->
                     Format.asprintf "r%a" Colock.Node_id.pp node
                   | Sim.Scenario.Node_update node ->
                     Format.asprintf "u%a" Colock.Node_id.pp node)
                 spec.Sim.Scenario.ops)))
       specs)

let compile_fingerprint scenario =
  let db = Dsl.database scenario in
  let graph = Graph.build db in
  ops_fingerprint (Sim.Scenario.of_dsl db graph scenario)

let test_of_dsl_deterministic () =
  let text =
    "scenario det\njobs 30\nseed 7\narrivals poisson mean=8\n\
     popularity zipf skew=1.1\n\
     mix read=0.4 update=0.3 library=0.2 checkout=0.1\n"
  in
  let first = compile_fingerprint (parse_exn text) in
  let second = compile_fingerprint (parse_exn text) in
  check_string "same seed, same jobs" first second;
  let reseeded =
    compile_fingerprint (parse_exn (text ^ "seed 8\n"))
  in
  check_bool "different seed, different jobs" false (first = reseeded)

let test_of_dsl_shapes () =
  let scenario =
    parse_exn
      "scenario shapes\njobs 20\nseed 5\n\
       mix read=0 update=0 library=0 checkout=1\n\
       checkout hold=1234 steps=3\narrivals bursty burst=5 every=100 \
       spread=2\n"
  in
  let db = Dsl.database scenario in
  let graph = Graph.build db in
  let specs = Sim.Scenario.of_dsl db graph scenario in
  check_int "one spec per job" 20 (List.length specs);
  List.iter
    (fun (spec : Sim.Scenario.job_spec) ->
      check_int "checkout hold as access cost" 1234
        spec.Sim.Scenario.access_cost;
      check_int "checkout steps" 3 (List.length spec.Sim.Scenario.ops))
    specs;
  (* bursty arrivals: job 7 sits in the second burst *)
  let arrival index =
    (List.nth specs index).Sim.Scenario.arrival
  in
  check_int "burst 0 spacing" 2 (arrival 1);
  check_int "burst 1 starts at every" 100 (arrival 5)

(* ------------------------------------------------- generator digests *)

(* A canonical dump of a generated database: relations sorted by name,
   keys ascending, values printed through the nf2 pretty-printer. Pinned
   MD5s mean any change to the generator output — field order, naming,
   sampling — is a deliberate, reviewed event (it invalidates every
   committed scenario baseline). *)
let database_digest db =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun store ->
      Buffer.add_string buffer (Nf2.Relation.name store);
      Buffer.add_char buffer '\n';
      List.iter
        (fun key ->
          match Nf2.Relation.find store key with
          | Some value ->
            Buffer.add_string buffer
              (Printf.sprintf "%s=%s\n" key
                 (Format.asprintf "%a" Nf2.Value.pp value))
          | None -> ())
        (List.sort String.compare (Nf2.Relation.keys store)))
    (List.sort
       (fun a b ->
         String.compare (Nf2.Relation.name a) (Nf2.Relation.name b))
       (Nf2.Database.relations db));
  Digest.to_hex (Digest.string (Buffer.contents buffer))

let test_generator_digests () =
  check_string "default manufacturing (pinned)"
    "f5e0cd512fcc02f31b86575a47a02c49"
    (database_digest
       (Workload.Generator.manufacturing
          Workload.Generator.default_manufacturing));
  let baseline =
    database_digest
      (Workload.Generator.manufacturing
         Workload.Generator.default_manufacturing)
  in
  let reseeded =
    database_digest
      (Workload.Generator.manufacturing
         { Workload.Generator.default_manufacturing with seed = 99 })
  in
  check_bool "different seed, different database" false
    (baseline = reseeded);
  check_string "scenario database is the generator's"
    (database_digest
       (Dsl.database
          (parse_exn "scenario base\ncatalog cells=6 objects=10 robots=4 \
                      effectors=16 refs=2\nseed 11\n")))
    (database_digest
       (Workload.Generator.manufacturing
          { Workload.Generator.cells = 6; objects_per_cell = 10;
            robots_per_cell = 4; effectors = 16; effectors_per_robot = 2;
            seed = 11 }))

let () =
  Alcotest.run "dsl"
    [ ( "parse",
        [ Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "full grammar" `Quick test_parse_full;
          Alcotest.test_case "diagnostics" `Quick test_parse_diagnostics;
          Alcotest.test_case "print round-trips" `Quick
            test_print_round_trip;
          Alcotest.test_case "overload stanzas" `Quick
            test_parse_overload ] );
      ( "compile",
        [ Alcotest.test_case "seed determinism" `Quick
            test_of_dsl_deterministic;
          Alcotest.test_case "job shapes" `Quick test_of_dsl_shapes ] );
      ( "generator",
        [ Alcotest.test_case "pinned digests" `Quick
            test_generator_digests ] ) ]
