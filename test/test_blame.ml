(* Tests for causal blame attribution: segment splitting at blocker-set
   changes, exact conservation (shares of a wait sum to its duration, so
   every partition of the blame report equals Profile's total blocked
   time), the queue pseudo-blocker, and the same invariants replayed over
   the committed JSONL fixtures (which predate holder annotations and so
   exercise the blockers-list fallback). *)

module Event = Obs.Event
module Blame = Obs.Blame
module Profile = Obs.Profile

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let at time kind = { Event.time; kind }

let holder ?(mode = "S") txn = { Event.h_txn = txn; h_mode = mode; h_lu = None }

let wait ?(blockers = []) ?(holders = []) txn resource mode =
  Event.Lock_waited { txn; resource; mode; blockers; lu = None; holders }

let grant ?(immediate = false) txn resource mode =
  Event.Lock_granted
    { txn; resource; mode; immediate; lu = None; holders = [] }

let release txn resource =
  Event.Lock_released { txn; resource; lu = None }

let share_of agent wait =
  List.find (fun { Blame.sh_agent; _ } -> sh_agent = agent) wait.Blame.w_shares

(* T1 waits [10..30] on r, blocked by T2 holding S; T2 releases at 20, so
   the second half of the wait is the queue's fault. *)
let test_release_splits_blame () =
  let report =
    Blame.of_events
      [ at 0.0 (grant ~immediate:true 2 "r" "S");
        at 10.0 (wait ~blockers:[ 2 ] ~holders:[ holder 2 ] 1 "r" "X");
        at 20.0 (release 2 "r");
        at 30.0 (grant 1 "r" "X") ]
  in
  check_float "total blocked" 20.0 report.Blame.total_blocked;
  check_float "total blamed" 20.0 report.Blame.total_blamed;
  check_int "one wait" 1 report.Blame.wait_count;
  let wait = List.hd report.Blame.waits in
  check_int "two shares" 2 (List.length wait.Blame.w_shares);
  check_float "T2 charged while holding" 10.0
    (share_of (Blame.Txn 2) wait).Blame.sh_blame;
  Alcotest.(check (option string))
    "T2's held mode recorded" (Some "S")
    (share_of (Blame.Txn 2) wait).Blame.sh_mode;
  check_float "the queue owns the rest" 10.0
    (share_of Blame.Queue wait).Blame.sh_blame;
  let caused txn =
    (List.find (fun { Blame.x_txn; _ } -> x_txn = txn) report.Blame.txns)
      .Blame.x_caused
  in
  check_float "T2 caused 10" 10.0 (caused 2);
  check_float "T1 caused nothing" 0.0 (caused 1)

(* Three concurrent holders split a 10-tick wait: 10/3 each does not exist
   in floats, so the residual folds into the largest share and the sum
   stays exactly 10. *)
let test_equal_split_is_conservative () =
  let report =
    Blame.of_events
      [ at 0.0
          (wait ~blockers:[ 2; 3; 4 ]
             ~holders:[ holder 2; holder 3; holder 4 ]
             1 "r" "X");
        at 10.0 (grant 1 "r" "X") ]
  in
  let wait = List.hd report.Blame.waits in
  check_int "three shares" 3 (List.length wait.Blame.w_shares);
  let sum =
    List.fold_left
      (fun acc { Blame.sh_blame; _ } -> acc +. sh_blame)
      0.0 wait.Blame.w_shares
  in
  Alcotest.(check (float 0.0)) "shares sum exactly to the duration" 10.0 sum;
  check_float "report conserves" report.Blame.total_blocked
    report.Blame.total_blamed

(* A re-emitted Lock_waited reports a fresh granted group: the old segment
   is flushed against the old holders, the rest against the new. *)
let test_rewait_swaps_blockers () =
  let report =
    Blame.of_events
      [ at 10.0 (wait ~blockers:[ 2 ] ~holders:[ holder 2 ] 1 "r" "X");
        at 20.0 (wait ~blockers:[ 3 ] ~holders:[ holder ~mode:"X" 3 ] 1 "r" "X");
        at 30.0 (grant 1 "r" "X") ]
  in
  check_int "still one wait" 1 report.Blame.wait_count;
  let wait = List.hd report.Blame.waits in
  check_float "first holder charged its segment" 10.0
    (share_of (Blame.Txn 2) wait).Blame.sh_blame;
  check_float "second holder charged the rest" 10.0
    (share_of (Blame.Txn 3) wait).Blame.sh_blame

let test_aborted_and_unfinished_waits () =
  let report =
    Blame.of_events
      [ at 0.0 (wait ~blockers:[ 2 ] ~holders:[ holder 2 ] 1 "r" "X");
        at 40.0 (Event.Victim_aborted { txn = 1; restarts = 0 });
        at 40.0 (Event.Txn_abort { txn = 1; reason = "deadlock_victim" });
        at 40.0 (wait ~blockers:[ 2 ] ~holders:[ holder 2 ] 3 "r" "S");
        at 50.0 (Event.Txn_commit { txn = 2 }) ]
  in
  check_float "aborted wait charged in full" 50.0 report.Blame.total_blocked;
  check_float "and blamed in full" 50.0 report.Blame.total_blamed;
  let wait_of txn =
    List.find (fun w -> w.Blame.w_txn = txn) report.Blame.waits
  in
  Alcotest.(check bool)
    "victim's wait tagged" true
    ((wait_of 1).Blame.w_outcome = Blame.Aborted "deadlock");
  Alcotest.(check bool)
    "open wait tagged unfinished" true
    ((wait_of 3).Blame.w_outcome = Blame.Unfinished)

(* ----------------------------------------------- fixture conservation *)

(* The committed cram fixtures predate holder annotations, so this also
   pins the blockers-list fallback: blame still conserves exactly against
   what Profile measures on the very same stream. *)
let assert_conserves path =
  let events, errors = Obs.Jsonl.load path in
  Alcotest.(check (list string)) (path ^ " decodes") [] errors;
  let blames = Blame.of_trace events in
  let profiles = Profile.of_trace events in
  check_int
    (path ^ ": same run split")
    (List.length profiles) (List.length blames);
  List.iter2
    (fun (blame : Blame.report) (profile : Profile.report) ->
      check_float
        (path ^ ": blame total = profile total")
        profile.Profile.total_blocked blame.Blame.total_blocked;
      Alcotest.(check (float 1e-6))
        (path ^ ": blamed = blocked")
        blame.Blame.total_blocked blame.Blame.total_blamed;
      let blocker_sum =
        List.fold_left
          (fun acc { Blame.k_blame; _ } -> acc +. k_blame)
          0.0 blame.Blame.blockers
      in
      Alcotest.(check (float 1e-6))
        (path ^ ": per-blocker blame partitions the total")
        blame.Blame.total_blamed blocker_sum;
      let txn_sum =
        List.fold_left
          (fun acc { Blame.x_blocked; _ } -> acc +. x_blocked)
          0.0 blame.Blame.txns
      in
      Alcotest.(check (float 1e-6))
        (path ^ ": per-txn blocked partitions the total")
        blame.Blame.total_blocked txn_sum;
      List.iter
        (fun wait ->
          let share_sum =
            List.fold_left
              (fun acc { Blame.sh_blame; _ } -> acc +. sh_blame)
              0.0 wait.Blame.w_shares
          in
          Alcotest.(check (float 1e-9))
            (path ^ ": wait shares sum to its duration")
            (Blame.duration wait) share_sum)
        blame.Blame.waits)
    blames profiles

let test_fixture_conservation () =
  assert_conserves "analyze.t/fixture.jsonl";
  assert_conserves "top.t/fixture.jsonl"

let () =
  Alcotest.run "blame"
    [ ("attribution",
       [ Alcotest.test_case "release splits blame" `Quick
           test_release_splits_blame;
         Alcotest.test_case "equal split conserves" `Quick
           test_equal_split_is_conservative;
         Alcotest.test_case "re-wait swaps blockers" `Quick
           test_rewait_swaps_blockers;
         Alcotest.test_case "aborts and unfinished" `Quick
           test_aborted_and_unfinished_waits ]);
      ("conservation",
       [ Alcotest.test_case "committed fixtures" `Quick
           test_fixture_conservation ]) ]
