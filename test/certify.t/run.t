The trace certifier replays a JSONL event stream and certifies each
run_meta-delimited run: serialization-graph acyclicity over committed
transactions, 2PL membership, and rule 1-4' hierarchy compliance. A
protocol-consistent schedule gets a certificate and exit 0:

  $ colock certify clean.jsonl
  === certificate: clean ===
  events 16  committed 2  aborted attempt(s) 0
  serialization graph: 2 txn(s), 1 edge(s)
  CERTIFIED: conflict-serializable, two-phase, hierarchy-compliant (rules 1-4')

A fabricated grant-order cycle (T1 before T2 on r1, T2 before T1 on r2)
is rejected with the minimal counterexample cycle and the exact accesses
behind each edge — note the cycle is only reachable by breaking 2PL, so
the phase violations surface too:

  $ colock certify cycle.jsonl
  === certificate: cycle ===
  events 12  committed 2  aborted attempt(s) 0
  serialization graph: 2 txn(s), 2 edge(s)
  VIOLATION not two-phase: T2 acquired X on r2 (#7) after releasing r1 (#6)
  VIOLATION not two-phase: T1 acquired X on r2 (#9) after releasing r1 (#4)
  VIOLATION not serializable: conflict cycle T1 -> T2 -> T1:
              T1 -> T2 via r1: T1 X on r1 (granted #3 @1, released #4), then T2 X on r1 (granted #5 @3, released #6)
              T2 -> T1 via r2: T2 X on r2 (granted #7 @5, released #8), then T1 X on r2 (granted #9 @7, released #10)
  NOT CERTIFIED: 3 violation(s)
  [3]

A post-release acquire alone (still acyclic) is a pure 2PL-membership
failure:

  $ colock certify nontwopl.jsonl
  === certificate: non-2pl ===
  events 10  committed 2  aborted attempt(s) 0
  serialization graph: 2 txn(s), 1 edge(s)
  VIOLATION not two-phase: T1 acquired X on r2 (#5) after releasing r1 (#4)
  NOT CERTIFIED: 1 violation(s)
  [3]

--dot renders the serialization graph for graphviz, painting the
counterexample cycle red:

  $ colock certify --dot cycle.jsonl
  digraph "cycle" {
    rankdir=LR;
    node [shape=circle, fontname="monospace"];
    t1 [label="T1", color=red, fontcolor=red];
    t2 [label="T2", color=red, fontcolor=red];
    t1 -> t2 [label="r1 X>X", color=red, fontcolor=red, penwidth=2];
    t2 -> t1 [label="r2 X>X", color=red, fontcolor=red, penwidth=2];
  }
  [3]

A clean graph renders unpainted:

  $ colock certify --dot clean.jsonl
  digraph "clean" {
    rankdir=LR;
    node [shape=circle, fontname="monospace"];
    t1 [label="T1"];
    t2 [label="T2"];
    t1 -> t2 [label="db1/a/x S>X"];
  }

--json carries the verdict and the graph for machines:

  $ colock certify --json nontwopl.jsonl | tr ',' '\n' | grep -E 'certified|"kind"'
  "certified": false
  "violations": [{"kind": "phase_violation"
