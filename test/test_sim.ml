(* Tests for the discrete-event simulator: determinism, blocking, deadlock
   recovery, and the headline concurrency comparisons between techniques. *)

module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph
module Technique = Baselines.Technique

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node steps = Option.get (Node_id.of_steps steps)

let request steps mode =
  { Technique.node = node steps; mode }

let fixed_plan requests _txn = requests

(* ------------------------------------------------------------ Event queue *)

let test_event_queue_order () =
  let queue = Sim.Event_queue.create () in
  Sim.Event_queue.schedule queue ~time:5 "b";
  Sim.Event_queue.schedule queue ~time:1 "a";
  Sim.Event_queue.schedule queue ~time:5 "c";
  Alcotest.(check (list (pair int string)))
    "time then fifo"
    [ (1, "a"); (5, "b"); (5, "c") ]
    (List.init 3 (fun _ -> Option.get (Sim.Event_queue.pop queue)));
  check_bool "empty" true (Sim.Event_queue.is_empty queue)

(* ----------------------------------------------------------------- Runner *)

let test_runner_single_job () =
  let table = Table.create () in
  let job =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "db1" ] Mode.S ];
            access_cost = 100 } ] }
  in
  let metrics = Sim.Runner.run ~table [ job ] in
  check_int "committed" 1 metrics.Sim.Metrics.committed;
  check_int "makespan" 100 metrics.Sim.Metrics.makespan;
  check_int "no waits" 0 metrics.Sim.Metrics.total_wait;
  check_int "no entries left" 0 (Table.entry_count table)

let test_runner_serializes_conflicts () =
  let table = Table.create () in
  let job mode =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "db1" ] mode ];
            access_cost = 100 } ] }
  in
  let metrics = Sim.Runner.run ~table [ job Mode.X; job Mode.X ] in
  check_int "both commit" 2 metrics.Sim.Metrics.committed;
  (* second had to wait for the first: makespan 200, wait 100 *)
  check_int "makespan doubled" 200 metrics.Sim.Metrics.makespan;
  check_int "wait recorded" 100 metrics.Sim.Metrics.total_wait

let test_runner_concurrent_when_compatible () =
  let table = Table.create () in
  let job =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "db1" ] Mode.S ];
            access_cost = 100 } ] }
  in
  let metrics = Sim.Runner.run ~table [ job; job; job ] in
  check_int "all commit" 3 metrics.Sim.Metrics.committed;
  check_int "fully parallel" 100 metrics.Sim.Metrics.makespan

let test_runner_deadlock_recovery () =
  (* AB-BA in two steps: T1 locks a then b; T2 locks b then a. *)
  let table = Table.create () in
  let two_step first second =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ first ] Mode.X ];
            access_cost = 50 };
          { Sim.Runner.plan = fixed_plan [ request [ second ] Mode.X ];
            access_cost = 50 } ] }
  in
  let metrics = Sim.Runner.run ~table [ two_step "a" "b"; two_step "b" "a" ] in
  check_int "both commit eventually" 2 metrics.Sim.Metrics.committed;
  check_bool "a victim died at least once" true
    (metrics.Sim.Metrics.deadlock_aborts >= 1);
  check_int "nothing left locked" 0 (Table.entry_count table)

let test_runner_gave_up () =
  (* A job that always deadlocks against a permanent holder cannot happen
     with strict 2PL, so test the restart cap via an artificial self-cycle:
     two jobs forever colliding with zero backoff progress is impossible;
     instead check the config plumbs through: max_restarts 0 means a single
     victimhood gives up. *)
  let table = Table.create () in
  let two_step first second =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ first ] Mode.X ];
            access_cost = 50 };
          { Sim.Runner.plan = fixed_plan [ request [ second ] Mode.X ];
            access_cost = 50 } ] }
  in
  let config =
    { Sim.Runner.default_config with backoff = Lockmgr.Policy.Fixed 10;
      max_restarts = 0 }
  in
  let metrics =
    Sim.Runner.run ~config ~table [ two_step "a" "b"; two_step "b" "a" ]
  in
  check_int "survivor commits" 1 metrics.Sim.Metrics.committed;
  check_int "victim gave up" 1 metrics.Sim.Metrics.gave_up

(* Regression: gave-up jobs must both contribute their (truncated) response
   time and count in the denominator, so abandoned work can neither inflate
   nor flatter the mean. *)
let test_avg_response_counts_gave_up () =
  let table = Table.create () in
  let two_step first second =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ first ] Mode.X ];
            access_cost = 50 };
          { Sim.Runner.plan = fixed_plan [ request [ second ] Mode.X ];
            access_cost = 50 } ] }
  in
  let config =
    { Sim.Runner.default_config with backoff = Lockmgr.Policy.Fixed 10;
      max_restarts = 0 }
  in
  let metrics =
    Sim.Runner.run ~config ~table [ two_step "a" "b"; two_step "b" "a" ]
  in
  check_int "one committed, one gave up" 2
    (metrics.Sim.Metrics.committed + metrics.Sim.Metrics.gave_up);
  (* the survivor alone responds in exactly the makespan (arrival 0); the
     victim's give-up time must add on top *)
  check_bool "gave-up job contributes response time" true
    (metrics.Sim.Metrics.total_response > metrics.Sim.Metrics.makespan);
  Alcotest.(check (float 1e-9))
    "mean divides by committed + gave_up"
    (float_of_int metrics.Sim.Metrics.total_response /. 2.0)
    (Sim.Metrics.avg_response metrics);
  (* pure accessor check on a synthetic record *)
  let synthetic =
    { Sim.Metrics.committed = 1; deadlock_aborts = 1; timeout_aborts = 0;
      wdl_aborts = 0; gave_up = 1; crashed = 0; shed = 0; retry_denied = 0;
      makespan = 100; total_response = 200; total_wait = 0; lock_requests = 0;
      conflict_tests = 0; peak_lock_entries = 0; escalations = 0 }
  in
  Alcotest.(check (float 1e-9))
    "synthetic mean" 100.0
    (Sim.Metrics.avg_response synthetic)

(* Regression: a job victimized while it sits in a wait queue must credit
   the time it already spent blocked — the abort used to clear [waiting_on]
   without booking [time - blocked_since]. *)
let test_victim_wait_time_credited () =
  let table = Table.create () in
  let two_step arrival first second =
    { Sim.Runner.arrival;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ first ] Mode.X ];
            access_cost = 50 };
          { Sim.Runner.plan = fixed_plan [ request [ second ] Mode.X ];
            access_cost = 50 } ] }
  in
  (* T1 (arrival 0) blocks on b at t=50; T2 (arrival 5) closes the cycle at
     t=55; the Oldest policy sacrifices T1, which by then has waited 5. *)
  let config =
    { Sim.Runner.default_config with victim = Lockmgr.Policy.Oldest;
      backoff = Lockmgr.Policy.Fixed 50 }
  in
  let metrics =
    Sim.Runner.run ~config ~table
      [ two_step 0 "a" "b"; two_step 5 "b" "a" ]
  in
  check_int "both commit" 2 metrics.Sim.Metrics.committed;
  check_int "one deadlock abort" 1 metrics.Sim.Metrics.deadlock_aborts;
  check_int "victim's blocked time survives the abort" 5
    metrics.Sim.Metrics.total_wait

let test_timeout_resolution () =
  (* T1 camps on a for 500 ticks; T2 cannot deadlock (no cycle), so only
     the lock-wait timeout can break its stall. *)
  let table = Table.create () in
  let config =
    { Sim.Runner.default_config with
      resolution = Lockmgr.Policy.Timeout 100;
      backoff = Lockmgr.Policy.Fixed 50; check_invariants = true }
  in
  let holder =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "a" ] Mode.X ];
            access_cost = 500 } ] }
  in
  let contender =
    { Sim.Runner.arrival = 10;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "a" ] Mode.X ];
            access_cost = 100 } ] }
  in
  let metrics = Sim.Runner.run ~config ~table [ holder; contender ] in
  check_int "both commit" 2 metrics.Sim.Metrics.committed;
  check_int "no detection ran" 0 metrics.Sim.Metrics.deadlock_aborts;
  (* waits of 100 abort at t=110, 260, 410; the 460 wait is granted at 500 *)
  check_int "three timeout aborts" 3 metrics.Sim.Metrics.timeout_aborts;
  check_int "wait fully accounted" 340 metrics.Sim.Metrics.total_wait;
  check_int "nothing left locked" 0 (Table.entry_count table)

let test_timeout_breaks_deadlock () =
  (* AB-BA with detection switched off entirely: the deadline is the only
     thing standing between the cycle and a hung simulation. *)
  let table = Table.create () in
  let config =
    { Sim.Runner.default_config with
      resolution = Lockmgr.Policy.Timeout 80;
      backoff = Lockmgr.Policy.Exponential { base = 20; cap = 200; seed = 3 };
      check_invariants = true }
  in
  let two_step first second =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ first ] Mode.X ];
            access_cost = 50 };
          { Sim.Runner.plan = fixed_plan [ request [ second ] Mode.X ];
            access_cost = 50 } ] }
  in
  let metrics = Sim.Runner.run ~config ~table [ two_step "a" "b"; two_step "b" "a" ] in
  check_int "both commit" 2 metrics.Sim.Metrics.committed;
  check_int "no cycle search" 0 metrics.Sim.Metrics.deadlock_aborts;
  check_bool "timeout had to fire" true (metrics.Sim.Metrics.timeout_aborts >= 1);
  check_int "nothing left locked" 0 (Table.entry_count table)

let test_victim_policy_selects () =
  (* Same AB-BA, staggered arrivals; which side dies is pure policy. *)
  let victim_of policy =
    let sink, ring = Obs.Sink.memory ~capacity:4096 () in
    let table = Table.create ~obs:sink () in
    let two_step arrival first second =
      { Sim.Runner.arrival;
      priority = Robust.Admission.Normal;
        steps =
          [ { Sim.Runner.plan = fixed_plan [ request [ first ] Mode.X ];
              access_cost = 50 };
            { Sim.Runner.plan = fixed_plan [ request [ second ] Mode.X ];
              access_cost = 50 } ] }
    in
    let config = { Sim.Runner.default_config with victim = policy } in
    let (_ : Sim.Metrics.t) =
      Sim.Runner.run ~config ~table
        [ two_step 0 "a" "b"; two_step 5 "b" "a" ]
    in
    List.filter_map
      (fun event ->
        match event.Obs.Event.kind with
        | Obs.Event.Victim_aborted { txn; _ } -> Some txn
        | _ -> None)
      (Obs.Ring.to_list ring)
  in
  Alcotest.(check (list int)) "youngest: the later arrival dies" [ 2 ]
    (victim_of Lockmgr.Policy.Youngest);
  Alcotest.(check (list int)) "oldest: the earlier arrival dies" [ 1 ]
    (victim_of Lockmgr.Policy.Oldest)

let test_fault_fates () =
  let spec =
    { Sim.Fault.crash = 0.3; stall = 0.3; stall_factor = 4; hog = 0.2;
      fault_seed = 11 }
  in
  (* pure in (seed, txn) *)
  List.iter
    (fun txn ->
      check_bool "fate is deterministic" true
        (Sim.Fault.fate spec ~txn ~steps:3 = Sim.Fault.fate spec ~txn ~steps:3))
    [ 1; 2; 3; 50; 999 ];
  (* every kind shows up across enough draws *)
  let fates = List.init 200 (fun i -> Sim.Fault.fate spec ~txn:(i + 1) ~steps:3) in
  let has predicate = List.exists predicate fates in
  check_bool "normals" true (has (fun f -> f = Sim.Fault.Normal));
  check_bool "crashes" true
    (has (function Sim.Fault.Crash_at _ -> true | _ -> false));
  check_bool "stalls" true
    (has (function Sim.Fault.Stall _ -> true | _ -> false));
  check_bool "hogs" true (has (fun f -> f = Sim.Fault.Hog));
  (* parser round-trips the clause syntax *)
  (match Sim.Fault.of_string "crash:0.1,stall:0.2x4,hog:0.05" with
   | Ok parsed ->
     check_bool "parse" true
       (parsed.Sim.Fault.crash = 0.1 && parsed.Sim.Fault.stall = 0.2
        && parsed.Sim.Fault.stall_factor = 4 && parsed.Sim.Fault.hog = 0.05)
   | Error (`Msg message) -> Alcotest.fail message);
  check_bool "over-unity rejected" true
    (match Sim.Fault.of_string "crash:0.9,hog:0.9" with
     | Error _ -> true
     | Ok _ -> false)

let test_fault_crash_releases_locks () =
  let table = Table.create () in
  let job =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "a" ] Mode.X ];
            access_cost = 100 } ] }
  in
  let faults = { Sim.Fault.none with crash = 1.0; fault_seed = 7 } in
  let config = { Sim.Runner.default_config with check_invariants = true } in
  let metrics = Sim.Runner.run ~config ~faults ~table [ job; job; job ] in
  check_int "all crashed" 3 metrics.Sim.Metrics.crashed;
  check_int "none committed" 0 metrics.Sim.Metrics.committed;
  check_int "locks released" 0 (Table.entry_count table)

let test_fault_hog_eventually_yields () =
  (* One hog camps on a; under pure Detection no cycle ever forms, so only
     the hog-hold crash lets the honest job through. *)
  let table = Table.create () in
  let job cost =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "a" ] Mode.X ];
            access_cost = cost } ] }
  in
  (* hog probability 1 gives every job the hog fate; keep the honest job
     honest by injecting faults only via a spec whose draw spares txn 2 *)
  let faults = { Sim.Fault.none with hog = 0.45; fault_seed = 2 } in
  (* seeded draws: txn 1 -> Hog, txn 2 -> Normal *)
  check_bool "txn 1 drew hog" true
    (Sim.Fault.fate faults ~txn:1 ~steps:1 = Sim.Fault.Hog);
  check_bool "txn 2 drew normal" true
    (Sim.Fault.fate faults ~txn:2 ~steps:1 = Sim.Fault.Normal);
  let config =
    { Sim.Runner.default_config with hog_hold = 300; check_invariants = true }
  in
  let metrics = Sim.Runner.run ~config ~faults ~table [ job 50; job 50 ] in
  check_int "hog crashed" 1 metrics.Sim.Metrics.crashed;
  check_int "honest job committed" 1 metrics.Sim.Metrics.committed;
  (* the honest job waited exactly for the hog hold *)
  check_int "waited out the hog" 300 metrics.Sim.Metrics.total_wait;
  check_int "locks released" 0 (Table.entry_count table)

let test_runner_deterministic () =
  let build () =
    let db = Workload.Generator.manufacturing Workload.Generator.default_manufacturing in
    let graph = Graph.build db in
    let specs =
      Sim.Scenario.manufacturing_mix db graph
        { Sim.Scenario.default_mix with jobs = 30; seed = 5 }
    in
    let table = Table.create () in
    let protocol = Colock.Protocol.create graph table in
    let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
    Sim.Runner.run ~table jobs
  in
  let first = build () in
  let second = build () in
  check_bool "identical metrics" true
    (Sim.Metrics.row first = Sim.Metrics.row second)

let test_runner_on_begin () =
  let table = Table.create () in
  let seen = ref [] in
  let job =
    { Sim.Runner.arrival = 0;
      priority = Robust.Admission.Normal;
      steps =
        [ { Sim.Runner.plan = fixed_plan [ request [ "db1" ] Mode.S ];
            access_cost = 10 } ] }
  in
  let (_ : Sim.Metrics.t) =
    Sim.Runner.run ~on_begin:(fun txn -> seen := txn :: !seen) ~table
      [ job; job ]
  in
  Alcotest.(check (list int)) "txn ids" [ 2; 1 ] !seen

(* ----------------------------------------------------- Technique contrasts *)

let scenario_env () =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 6 }
  in
  let graph = Graph.build db in
  (db, graph)

let run_mix db graph technique_of_table mix =
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let table = Table.create () in
  let technique = technique_of_table table in
  let jobs = Sim.Scenario.compile graph technique specs in
  Sim.Runner.run ~table jobs

let proposed table_graph table =
  Sim.Scenario.Proposed (Colock.Protocol.create table_graph table)

let test_proposed_beats_whole_object_on_mixed_load () =
  (* E4 shape: contended Q1/Q2 mix on few cells — sub-object granules win. *)
  let db, graph = scenario_env () in
  let mix =
    { Sim.Scenario.default_mix with jobs = 60; arrival_gap = 5; seed = 23 }
  in
  let proposed_metrics = run_mix db graph (proposed graph) mix in
  let whole_metrics =
    run_mix db graph (fun _table -> Sim.Scenario.Whole_object) mix
  in
  check_bool "everything commits (proposed)" true
    (proposed_metrics.Sim.Metrics.committed = 60);
  check_bool "proposed waits less" true
    (proposed_metrics.Sim.Metrics.total_wait
     < whole_metrics.Sim.Metrics.total_wait);
  check_bool "proposed finishes no later" true
    (proposed_metrics.Sim.Metrics.makespan
     <= whole_metrics.Sim.Metrics.makespan)

let test_proposed_needs_fewer_locks_than_tuple_level () =
  let db, graph = scenario_env () in
  let mix =
    { Sim.Scenario.default_mix with jobs = 40; read_fraction = 0.9; seed = 31 }
  in
  let proposed_metrics = run_mix db graph (proposed graph) mix in
  let tuple_metrics =
    run_mix db graph (fun _table -> Sim.Scenario.Tuple_level) mix
  in
  check_bool "tuple level issues many more lock requests" true
    (tuple_metrics.Sim.Metrics.lock_requests
     > 2 * proposed_metrics.Sim.Metrics.lock_requests);
  check_bool "tuple level fills the lock table" true
    (tuple_metrics.Sim.Metrics.peak_lock_entries
     > proposed_metrics.Sim.Metrics.peak_lock_entries)

let test_rule4_prime_beats_rule4_under_authz () =
  (* E7 shape: robot updates by transactions that may not modify the
     library: rule 4' shares the effectors in S, rule 4 serializes on X. *)
  let db, graph = scenario_env () in
  let mix =
    { Sim.Scenario.default_mix with jobs = 50; read_fraction = 0.0;
      arrival_gap = 2; seed = 41 }
  in
  let run rule =
    let specs = Sim.Scenario.manufacturing_mix db graph mix in
    let table = Table.create () in
    let rights = Authz.Rights.create () in
    Authz.Rights.set_relation_default rights ~relation:"effectors" false;
    let protocol = Colock.Protocol.create ~rule ~rights graph table in
    let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
    Sim.Runner.run ~table jobs
  in
  let rule4 = run Colock.Protocol.Rule_4 in
  let rule4_prime = run Colock.Protocol.Rule_4_prime in
  check_bool "rule 4' commits everything" true
    (rule4_prime.Sim.Metrics.committed = 50);
  check_bool "rule 4' waits less" true
    (rule4_prime.Sim.Metrics.total_wait < rule4.Sim.Metrics.total_wait)

let () =
  Alcotest.run "sim"
    [ ("event_queue",
       [ Alcotest.test_case "order" `Quick test_event_queue_order ]);
      ("runner",
       [ Alcotest.test_case "single job" `Quick test_runner_single_job;
         Alcotest.test_case "serializes conflicts" `Quick
           test_runner_serializes_conflicts;
         Alcotest.test_case "concurrent when compatible" `Quick
           test_runner_concurrent_when_compatible;
         Alcotest.test_case "deadlock recovery" `Quick
           test_runner_deadlock_recovery;
         Alcotest.test_case "gave up" `Quick test_runner_gave_up;
         Alcotest.test_case "avg response counts gave up" `Quick
           test_avg_response_counts_gave_up;
         Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
         Alcotest.test_case "on_begin" `Quick test_runner_on_begin ]);
      ("resilience",
       [ Alcotest.test_case "victim wait time credited" `Quick
           test_victim_wait_time_credited;
         Alcotest.test_case "timeout resolution" `Quick
           test_timeout_resolution;
         Alcotest.test_case "timeout breaks deadlock" `Quick
           test_timeout_breaks_deadlock;
         Alcotest.test_case "victim policy selects" `Quick
           test_victim_policy_selects;
         Alcotest.test_case "fault fates" `Quick test_fault_fates;
         Alcotest.test_case "crash releases locks" `Quick
           test_fault_crash_releases_locks;
         Alcotest.test_case "hog eventually yields" `Quick
           test_fault_hog_eventually_yields ]);
      ("contrasts",
       [ Alcotest.test_case "proposed vs whole-object" `Quick
           test_proposed_beats_whole_object_on_mixed_load;
         Alcotest.test_case "proposed vs tuple-level" `Quick
           test_proposed_needs_fewer_locks_than_tuple_level;
         Alcotest.test_case "rule 4' vs rule 4" `Quick
           test_rule4_prime_beats_rule4_under_authz ]) ]
