(* Tests for the observability layer: histogram quantile edge cases, ring
   wraparound, collector span pairing, and the Chrome trace exporter. *)

module Histogram = Obs.Histogram
module Ring = Obs.Ring
module Event = Obs.Event

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* -------------------------------------------------------------- Histogram *)

let test_histogram_empty () =
  let histogram = Histogram.create () in
  check_int "count" 0 (Histogram.count histogram);
  check_float "mean" 0.0 (Histogram.mean histogram);
  check_float "p50" 0.0 (Histogram.quantile histogram 0.5);
  check_float "p99" 0.0 (Histogram.quantile histogram 0.99);
  check_float "max" 0.0 (Histogram.max_value histogram)

let test_histogram_single_sample () =
  let histogram = Histogram.create () in
  Histogram.observe histogram 42.0;
  (* clamping to the observed min/max means every quantile is the sample *)
  List.iter
    (fun q ->
      check_float (Printf.sprintf "q=%.2f" q) 42.0
        (Histogram.quantile histogram q))
    [ 0.0; 0.5; 0.95; 0.99; 1.0 ];
  check_float "mean" 42.0 (Histogram.mean histogram);
  check_float "min" 42.0 (Histogram.min_value histogram);
  check_float "max" 42.0 (Histogram.max_value histogram)

let test_histogram_overflow_bucket () =
  let histogram = Histogram.create () in
  (* 2^63 lands beyond the last regular bucket (2^62) *)
  let huge = Float.ldexp 1.0 63 in
  Histogram.observe histogram 1.0;
  Histogram.observe histogram huge;
  check_int "count" 2 (Histogram.count histogram);
  (* the overflow bucket's upper bound is the observed maximum, so its
     quantiles interpolate toward the true max instead of infinity *)
  let p99 = Histogram.quantile histogram 0.99 in
  check_bool "p99 within the overflow bucket" true
    (p99 >= Float.ldexp 1.0 62 && p99 <= huge);
  check_float "q=1 is the observed max" huge (Histogram.quantile histogram 1.0);
  check_float "max" huge (Histogram.max_value histogram);
  check_bool "p50 stays finite" true
    (Float.is_finite (Histogram.quantile histogram 0.5))

let test_histogram_negative_clamps () =
  let histogram = Histogram.create () in
  Histogram.observe histogram (-5.0);
  check_float "min clamped to 0" 0.0 (Histogram.min_value histogram);
  check_float "p50" 0.0 (Histogram.quantile histogram 0.5)

let test_histogram_quantiles_ordered () =
  let histogram = Histogram.create () in
  List.iter
    (fun value -> Histogram.observe histogram (float_of_int value))
    (List.init 100 (fun index -> index + 1));
  let p50 = Histogram.quantile histogram 0.50 in
  let p95 = Histogram.quantile histogram 0.95 in
  let p99 = Histogram.quantile histogram 0.99 in
  check_bool "p50 <= p95" true (p50 <= p95);
  check_bool "p95 <= p99" true (p95 <= p99);
  check_bool "p99 <= max" true (p99 <= Histogram.max_value histogram);
  (* log-scale buckets are coarse, but the median of 1..100 must land in the
     right power-of-two neighbourhood *)
  check_bool "p50 in [32, 64]" true (p50 >= 32.0 && p50 <= 64.0)

let test_histogram_bucket_counts () =
  let histogram = Histogram.create () in
  check_bool "empty histogram has no buckets" true
    (Histogram.bucket_counts histogram = []);
  List.iter (Histogram.observe histogram) [ 1.0; 1.5; 100.0 ];
  let buckets = Histogram.bucket_counts histogram in
  check_int "samples preserved" 3
    (List.fold_left (fun acc (_, count) -> acc + count) 0 buckets);
  check_bool "lower bounds ascend" true
    (let bounds = List.map fst buckets in
     List.sort compare bounds = bounds);
  check_bool "only non-empty buckets" true
    (List.for_all (fun (_, count) -> count > 0) buckets)

(* ------------------------------------------------------------------- Ring *)

let test_ring_wraparound () =
  let ring = Ring.create ~capacity:4 in
  for value = 1 to 10 do
    Ring.push ring value
  done;
  check_int "length capped" 4 (Ring.length ring);
  check_int "pushed" 10 (Ring.pushed ring);
  check_int "dropped" 6 (Ring.dropped ring);
  Alcotest.(check (list int)) "keeps the newest, oldest first" [ 7; 8; 9; 10 ]
    (Ring.to_list ring)

let test_ring_partial_fill () =
  let ring = Ring.create ~capacity:8 in
  List.iter (Ring.push ring) [ 1; 2; 3 ];
  check_int "length" 3 (Ring.length ring);
  check_int "dropped" 0 (Ring.dropped ring);
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3 ] (Ring.to_list ring);
  Ring.clear ring;
  check_int "cleared" 0 (Ring.length ring)

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create ~capacity:0))

(* -------------------------------------------------------------- Collector *)

let wait txn resource =
  Event.Lock_waited
    { txn; resource; mode = "X"; blockers = [ 99 ]; lu = None; holders = [] }

let grant ?(immediate = false) txn resource =
  Event.Lock_granted
    { txn; resource; mode = "X"; immediate; lu = None; holders = [] }

let test_collector_pairs_wait_to_grant () =
  let collector = Obs.Collector.create () in
  let sink = Obs.Sink.create [ Obs.Collector.handle collector ] in
  Obs.Sink.emit_at sink ~time:10.0 (wait 1 "r");
  Obs.Sink.emit_at sink ~time:25.0 (grant 1 "r");
  let registry = Obs.Collector.registry collector in
  let histogram = Option.get (Obs.Registry.find_histogram registry "lock_wait") in
  check_int "one wait span" 1 (Histogram.count histogram);
  check_float "wait duration" 15.0 (Histogram.max_value histogram);
  check_int "events counted" 1 (Obs.Registry.counter registry "events.lock_waited")

let test_collector_txn_response () =
  let collector = Obs.Collector.create () in
  let sink = Obs.Sink.create [ Obs.Collector.handle collector ] in
  Obs.Sink.emit_at sink ~time:0.0 (Event.Txn_begin { txn = 1 });
  Obs.Sink.emit_at sink ~time:100.0 (Event.Txn_commit { txn = 1 });
  Obs.Sink.emit_at sink ~time:5.0 (Event.Txn_begin { txn = 2 });
  Obs.Sink.emit_at sink ~time:6.0
    (Event.Txn_abort { txn = 2; reason = "user" });
  let registry = Obs.Collector.registry collector in
  let histogram =
    Option.get (Obs.Registry.find_histogram registry "txn_response")
  in
  check_int "only the commit is a response sample" 1 (Histogram.count histogram);
  check_float "response time" 100.0 (Histogram.max_value histogram)

(* ------------------------------------------------------------------- Sink *)

let test_sink_filter_drops_sim_steps () =
  let seen = ref [] in
  let sink =
    Obs.Sink.create
      [ Obs.Sink.filter Obs.Sink.not_sim_step
          (fun event -> seen := event :: !seen) ]
  in
  Obs.Sink.emit sink (Event.Txn_begin { txn = 1 });
  Obs.Sink.emit sink (Event.Sim_step { txn = 1; step = 0 });
  Obs.Sink.emit sink (Event.Sim_step { txn = 1; step = 1 });
  Obs.Sink.emit sink (Event.Txn_commit { txn = 1 });
  check_int "sim steps filtered out" 2 (List.length !seen)

let test_sink_sample () =
  let count = ref 0 in
  let handler = Obs.Sink.sample ~seed:7 ~every:3 (fun _event -> incr count) in
  let sink = Obs.Sink.create [ handler ] in
  for step = 0 to 8 do
    Obs.Sink.emit sink (Event.Sim_step { txn = 1; step })
  done;
  check_int "one event per stride of three passes" 3 !count;
  Alcotest.check_raises "rejects non-positive rate"
    (Invalid_argument "Sink.sample: every must be positive") (fun () ->
      ignore
        (Obs.Sink.sample ~seed:7 ~every:0 (fun _event -> ())
          : Event.t -> unit))

let test_sink_sample_seeded_regression () =
  (* the stratified sampler is a pure function of (seed, every, arrival
     order): pin the exact picks for one seed so the PRNG cannot drift *)
  let picks seed =
    let kept = ref [] in
    let handler =
      Obs.Sink.sample ~seed ~every:4 (fun event ->
          match event.Event.kind with
          | Event.Sim_step { step; _ } -> kept := step :: !kept
          | _ -> ())
    in
    let sink = Obs.Sink.create [ handler ] in
    for step = 0 to 19 do
      Obs.Sink.emit sink (Event.Sim_step { txn = 1; step })
    done;
    List.rev !kept
  in
  let first = picks 42 in
  check_int "one pick per stride" 5 (List.length first);
  Alcotest.(check (list int)) "same seed, same picks" first (picks 42);
  Alcotest.(check (list int))
    "pinned picks for seed 42"
    [ 2; 6; 10; 15; 18 ]
    first

let test_memory_keep_filters_ring_only () =
  let sink, ring = Obs.Sink.memory ~keep:Obs.Sink.not_sim_step () in
  let collector = Obs.Collector.create () in
  Obs.Sink.attach sink (Obs.Collector.handle collector);
  Obs.Sink.emit sink (Event.Txn_begin { txn = 1 });
  Obs.Sink.emit sink (Event.Sim_step { txn = 1; step = 0 });
  Obs.Sink.emit sink (Event.Txn_commit { txn = 1 });
  check_int "ring skips the noise" 2 (Ring.length ring);
  check_int "collector still counts it" 1
    (Obs.Registry.counter
       (Obs.Collector.registry collector)
       "events.sim_step")

(* ------------------------------------------------------------------ Trace *)

let test_trace_exports_wait_span () =
  let events =
    [ { Event.time = 0.0; kind = Event.Txn_begin { txn = 1 } };
      { Event.time = 10.0; kind = wait 1 "db1/x" };
      { Event.time = 30.0; kind = grant 1 "db1/x" };
      { Event.time = 50.0; kind = Event.Txn_commit { txn = 1 } } ]
  in
  let rendered =
    Obs.Json.to_string (Obs.Trace.to_json [ ("proposed", events) ])
  in
  let contains needle haystack =
    let nlen = String.length needle in
    let hlen = String.length haystack in
    let rec scan index =
      index + nlen <= hlen
      && (String.equal (String.sub haystack index nlen) needle
          || scan (index + 1))
    in
    scan 0
  in
  check_bool "has a wait span" true (contains "\"wait db1/x\"" rendered);
  check_bool "has the process name" true (contains "\"proposed\"" rendered);
  check_bool "closes the txn span" true (contains "\"committed\"" rendered)

let () =
  Alcotest.run "obs"
    [ ("histogram",
       [ Alcotest.test_case "empty" `Quick test_histogram_empty;
         Alcotest.test_case "single sample" `Quick
           test_histogram_single_sample;
         Alcotest.test_case "overflow bucket" `Quick
           test_histogram_overflow_bucket;
         Alcotest.test_case "negative clamps" `Quick
           test_histogram_negative_clamps;
         Alcotest.test_case "quantiles ordered" `Quick
           test_histogram_quantiles_ordered;
         Alcotest.test_case "bucket counts" `Quick
           test_histogram_bucket_counts ]);
      ("ring",
       [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
         Alcotest.test_case "partial fill" `Quick test_ring_partial_fill;
         Alcotest.test_case "bad capacity" `Quick
           test_ring_rejects_bad_capacity ]);
      ("collector",
       [ Alcotest.test_case "wait->grant pairing" `Quick
           test_collector_pairs_wait_to_grant;
         Alcotest.test_case "txn response" `Quick
           test_collector_txn_response ]);
      ("sink",
       [ Alcotest.test_case "filter" `Quick test_sink_filter_drops_sim_steps;
         Alcotest.test_case "sample" `Quick test_sink_sample;
         Alcotest.test_case "sample seeded regression" `Quick
           test_sink_sample_seeded_regression;
         Alcotest.test_case "memory keep" `Quick
           test_memory_keep_filters_ring_only ]);
      ("trace",
       [ Alcotest.test_case "wait span" `Quick test_trace_exports_wait_span ])
    ]
