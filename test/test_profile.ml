(* Tests for the contention profiler: exact blocked-time attribution over a
   hand-built event stream, abort taxonomy, critical-path chaining,
   Run_meta trace splitting, and the JSONL encode/decode round-trip
   (including wait-for snapshots). *)

module Event = Obs.Event
module Profile = Obs.Profile

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

let at time kind = { Event.time; kind }
let blu = Some { Event.lu_kind = "BLU"; lu_depth = 5 }
let holu = Some { Event.lu_kind = "HoLU"; lu_depth = 3 }

let wait ?(lu = None) ?(blockers = [ 99 ]) ?(holders = []) txn resource mode =
  Event.Lock_waited { txn; resource; mode; blockers; lu; holders }

let grant ?(lu = None) ?(immediate = false) ?(holders = []) txn resource mode =
  Event.Lock_granted { txn; resource; mode; immediate; lu; holders }

(* Three waits with known durations and granules:
   - T1 waits 20 ticks for BLU db/a (X over T2's S), granted
   - T3 waits 25 ticks for HoLU db/b (queue rule), aborted as a victim
   - T2 waits for an untagged db/c and is still queued at stream end
     (10 ticks to the last timestamp) *)
let attribution_events =
  [ at 0.0 (Event.Txn_begin { txn = 1 });
    at 1.0 (grant ~lu:blu ~immediate:true 2 "db/a" "S");
    at 10.0 (wait ~lu:blu ~blockers:[ 2 ] 1 "db/a" "X");
    at 15.0 (wait ~lu:holu ~blockers:[ 4 ] 3 "db/b" "S");
    at 30.0 (grant ~lu:blu 1 "db/a" "X");
    at 40.0 (Event.Victim_aborted { txn = 3; restarts = 1 });
    at 40.0 (Event.Txn_abort { txn = 3; reason = "deadlock_victim" });
    at 50.0 (wait ~blockers:[ 1 ] 2 "db/c" "X");
    at 60.0 (Event.Txn_commit { txn = 1 }) ]

let test_exact_attribution () =
  let report = Profile.of_events ~label:"unit" attribution_events in
  check_float "total blocked" 55.0 report.Profile.total_blocked;
  check_int "wait count" 3 report.Profile.wait_count;
  check_int "unfinished" 1 report.Profile.unfinished;
  let sum_spans =
    List.fold_left
      (fun acc span -> acc +. Profile.duration span)
      0.0 report.Profile.spans
  in
  check_float "spans sum to total" report.Profile.total_blocked sum_spans;
  let level name =
    List.find (fun l -> String.equal l.Profile.v_level name)
      report.Profile.levels
  in
  check_float "HoLU blocked" 25.0 (level "HoLU").Profile.v_blocked;
  check_float "BLU blocked" 20.0 (level "BLU").Profile.v_blocked;
  check_float "untagged blocked" 10.0 (level "untagged").Profile.v_blocked;
  let levels_sum =
    List.fold_left
      (fun acc l -> acc +. l.Profile.v_blocked)
      0.0 report.Profile.levels
  in
  check_float "levels partition the total" report.Profile.total_blocked
    levels_sum;
  let resources_sum =
    List.fold_left
      (fun acc r -> acc +. r.Profile.r_blocked)
      0.0 report.Profile.resources
  in
  check_float "resources partition the total" report.Profile.total_blocked
    resources_sum;
  let matrix_sum =
    List.fold_left
      (fun acc cell -> acc +. cell.Profile.c_blocked)
      0.0 report.Profile.matrix
  in
  check_float "matrix partitions the total" report.Profile.total_blocked
    matrix_sum;
  (* tagged-only depth table: 25 at depth 3, 20 at depth 5 *)
  let depth d =
    List.find (fun s -> s.Profile.d_depth = d) report.Profile.depths
  in
  check_float "depth 3" 25.0 (depth 3).Profile.d_blocked;
  check_float "depth 5" 20.0 (depth 5).Profile.d_blocked

let test_outcomes_and_matrix () =
  let report = Profile.of_events attribution_events in
  let span_for txn =
    List.find (fun s -> s.Profile.s_txn = txn) report.Profile.spans
  in
  check_bool "T1 granted" true ((span_for 1).Profile.s_outcome = Profile.Granted);
  check_bool "T3 aborted as deadlock victim" true
    ((span_for 3).Profile.s_outcome = Profile.Aborted "deadlock");
  check_bool "T2 unfinished" true
    ((span_for 2).Profile.s_outcome = Profile.Unfinished);
  (* the Txn_abort{deadlock_victim} echo must not double-count the abort *)
  Alcotest.(check (list (pair string int)))
    "abort taxonomy" [ ("deadlock", 1) ] report.Profile.aborts;
  let cell waiter holder =
    List.find
      (fun c ->
        String.equal c.Profile.c_waiter waiter
        && String.equal c.Profile.c_holder holder)
      report.Profile.matrix
  in
  check_float "X blocked by S" 20.0 (cell "X" "S").Profile.c_blocked;
  check_float "S blocked by the queue rule" 25.0
    (cell "S" "queue").Profile.c_blocked;
  check_float "X with no recorded holder" 10.0
    (cell "X" "queue").Profile.c_blocked

let test_timeout_taxonomy () =
  let events =
    [ at 0.0 (wait ~blockers:[ 2 ] 1 "r" "X");
      at 100.0
        (Event.Timeout_abort { txn = 1; resource = "r"; waited = 100; lu = None });
      at 100.0 (Event.Txn_abort { txn = 1; reason = "timeout_victim" });
      at 120.0 (Event.Txn_abort { txn = 9; reason = "user" }) ]
  in
  let report = Profile.of_events events in
  check_float "timed-out wait attributed" 100.0 report.Profile.total_blocked;
  Alcotest.(check (list (pair string int)))
    "taxonomy keeps timeout and user causes"
    [ ("timeout", 1); ("user", 1) ]
    report.Profile.aborts

(* T1 waits on r1 for [0,100] blocked by T2; T2 waits on r2 for [10,60]:
   T1's critical chain is its own 100 plus the overlapping 50. *)
let test_critical_path () =
  let events =
    [ at 0.0 (wait ~blockers:[ 2 ] 1 "r1" "X");
      at 10.0 (wait ~blockers:[ 3 ] 2 "r2" "X");
      at 60.0 (grant 2 "r2" "X");
      at 100.0 (grant 1 "r1" "X") ]
  in
  let report = Profile.of_events events in
  let path txn =
    List.find (fun p -> p.Profile.t_txn = txn) report.Profile.txns
  in
  check_float "T1 blocked" 100.0 (path 1).Profile.t_blocked;
  check_float "T1 critical chain" 150.0 (path 1).Profile.t_critical;
  Alcotest.(check (list (pair string (float 1e-9))))
    "T1 walks through T2's wait"
    [ ("r1", 100.0); ("r2", 50.0) ]
    (List.map
       (fun step -> (step.Profile.p_resource, step.Profile.p_blocked))
       (path 1).Profile.t_path);
  check_float "T2 critical chain" 50.0 (path 2).Profile.t_critical;
  check_bool "sorted by critical time" true
    (match report.Profile.txns with
     | first :: _ -> first.Profile.t_txn = 1
     | [] -> false)

(* Every report table must order ties deterministically (satellite of the
   blame PR): equal blocked time falls back to the level / resource /
   matrix-cell / txn key, so [colock analyze --top] output never depends
   on hashtable iteration order. *)
let test_deterministic_ties () =
  let events =
    [ at 0.0 (wait ~lu:holu ~blockers:[ 9 ] 1 "r/b" "X");
      at 0.0 (wait ~lu:blu ~blockers:[ 9 ] 2 "r/a" "S");
      at 10.0 (grant ~lu:holu 1 "r/b" "X");
      at 10.0 (grant ~lu:blu 2 "r/a" "S") ]
  in
  let report = Profile.of_events events in
  Alcotest.(check (list string))
    "levels tie-break by level name" [ "BLU"; "HoLU" ]
    (List.map (fun l -> l.Profile.v_level) report.Profile.levels);
  Alcotest.(check (list string))
    "resources tie-break by resource" [ "r/a"; "r/b" ]
    (List.map (fun r -> r.Profile.r_resource) report.Profile.resources);
  Alcotest.(check (list (pair string string)))
    "matrix tie-breaks by waiter then holder"
    [ ("S", "queue"); ("X", "queue") ]
    (List.map
       (fun c -> (c.Profile.c_waiter, c.Profile.c_holder))
       report.Profile.matrix);
  Alcotest.(check (list int))
    "critical paths tie-break by txn" [ 1; 2 ]
    (List.map (fun t -> t.Profile.t_txn) report.Profile.txns)

let test_of_trace_splits_runs () =
  let reports =
    Profile.of_trace
      [ at 0.0 (Event.Run_meta { label = "alpha" });
        at 0.0 (wait ~blockers:[ 2 ] 1 "r" "X");
        at 30.0 (grant 1 "r" "X");
        at 0.0 (Event.Run_meta { label = "beta" });
        at 5.0 (wait ~blockers:[ 1 ] 2 "q" "S") ]
  in
  check_int "two runs" 2 (List.length reports);
  (match reports with
   | [ alpha; beta ] ->
     check_string "first label" "alpha"
       (Option.value ~default:"?" alpha.Profile.label);
     check_float "alpha blocked" 30.0 alpha.Profile.total_blocked;
     check_string "second label" "beta"
       (Option.value ~default:"?" beta.Profile.label);
     check_int "beta wait is unfinished" 1 beta.Profile.unfinished
   | _ -> Alcotest.fail "expected exactly two reports");
  check_int "snapshot counters start at zero" 0
    (List.hd reports).Profile.snapshots

let test_snapshot_stats () =
  let events =
    [ at 0.0 (wait ~blockers:[ 2 ] 1 "r" "X");
      at 10.0 (Event.Waits_for { edges = [ (1, 2) ] });
      at 20.0 (Event.Waits_for { edges = [ (1, 2); (3, 1); (4, 1) ] });
      at 30.0 (grant 1 "r" "X") ]
  in
  let report = Profile.of_events events in
  check_int "snapshots counted" 2 report.Profile.snapshots;
  check_int "peak edges" 3 report.Profile.peak_wait_edges

(* ----------------------------------------------------- JSONL round-trip *)

let roundtrip_events =
  [ at 0.0 (Event.Run_meta { label = "rt" });
    at 1.5 (Event.Txn_begin { txn = 1 });
    at 2.0 (Event.Lock_requested { txn = 1; resource = "db/a"; mode = "IX"; lu = blu });
    at 3.0 (grant ~lu:blu ~immediate:true 1 "db/a" "IX");
    at 4.0
      (wait ~lu:holu ~blockers:[ 7; 8 ]
         ~holders:
           [ { Event.h_txn = 7; h_mode = "S"; h_lu = holu };
             { Event.h_txn = 8; h_mode = "S"; h_lu = None } ]
         2 "db/b" "X");
    at 4.5
      (grant ~lu:holu
         ~holders:[ { Event.h_txn = 7; h_mode = "S"; h_lu = holu } ]
         3 "db/b" "S");
    at 5.0
      (Event.Conversion
         { txn = 1; resource = "db/a"; from_mode = "IX"; to_mode = "X"; lu = blu });
    at 6.0 (Event.Lock_released { txn = 1; resource = "db/a"; lu = blu });
    at 7.0
      (Event.Escalation
         { txn = 1; node = "db/a"; mode = "X"; released_children = 3 });
    at 8.0 (Event.Deescalation { txn = 1; node = "db/a"; mode = "IX" });
    at 9.0 (Event.Deadlock_detected { cycle = [ 1; 2; 3 ] });
    at 10.0 (Event.Victim_aborted { txn = 2; restarts = 4 });
    at 11.0
      (Event.Timeout_abort { txn = 3; resource = "db/c"; waited = 42; lu = None });
    at 12.0 (Event.Txn_abort { txn = 3; reason = "timeout_victim" });
    at 13.0
      (Event.Query_executed
         { txn = 1; query = "SELECT \"x\""; rows = 2; locks_requested = 5 });
    at 14.0 (Event.Sim_step { txn = 1; step = 9 });
    at 15.0 (Event.Waits_for { edges = [ (1, 2); (3, 4) ] });
    at 16.0 (Event.Txn_commit { txn = 1 }) ]

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "colock_profile" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let channel = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out channel)
        (fun () -> Obs.Jsonl.write_events channel roundtrip_events);
      let decoded, errors = Obs.Jsonl.load path in
      Alcotest.(check (list string)) "no decode errors" [] errors;
      check_int "all events back" (List.length roundtrip_events)
        (List.length decoded);
      List.iter2
        (fun original event ->
          check_string "identical re-encoding"
            (Obs.Json.to_string (Event.to_json original))
            (Obs.Json.to_string (Event.to_json event)))
        roundtrip_events decoded)

let test_snapshot_roundtrip () =
  let original = at 7.5 (Event.Waits_for { edges = [ (5, 6); (6, 7) ] }) in
  match Event.of_json (Event.to_json original) with
  | Error message -> Alcotest.fail message
  | Ok decoded -> (
    check_float "time survives" 7.5 decoded.Event.time;
    match decoded.Event.kind with
    | Event.Waits_for { edges } ->
      Alcotest.(check (list (pair int int)))
        "edges survive" [ (5, 6); (6, 7) ] edges
    | _ -> Alcotest.fail "decoded into a different kind")

let test_malformed_lines_are_diagnosed () =
  let path = Filename.temp_file "colock_profile" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let channel = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out channel)
        (fun () ->
          output_string channel
            "{\"event\": \"txn_begin\",\"time\": 0,\"txn\": 1}\n\
             not json at all\n\
             \n\
             {\"event\": \"no_such_kind\",\"time\": 1}\n");
      let events, errors = Obs.Jsonl.load path in
      check_int "good line decoded" 1 (List.length events);
      check_int "two diagnostics" 2 (List.length errors);
      check_bool "diagnostics carry line numbers" true
        (List.for_all
           (fun message ->
             String.length message > 5 && String.sub message 0 5 = "line ")
           errors))

let test_report_to_json_shape () =
  let report = Profile.of_events ~label:"unit" attribution_events in
  match Profile.to_json report with
  | Obs.Json.Obj fields ->
    check_bool "has levels" true (List.mem_assoc "levels" fields);
    check_bool "has conflicts" true (List.mem_assoc "conflicts" fields);
    check_bool "has critical paths" true
      (List.mem_assoc "transactions" fields);
    (match List.assoc "total_blocked" fields with
     | Obs.Json.Float total -> check_float "total in json" 55.0 total
     | Obs.Json.Int total -> check_int "total in json" 55 total
     | _ -> Alcotest.fail "total_blocked is not a number")
  | _ -> Alcotest.fail "report did not serialize to an object"

let () =
  Alcotest.run "profile"
    [ ("attribution",
       [ Alcotest.test_case "exact blocked time" `Quick test_exact_attribution;
         Alcotest.test_case "outcomes and matrix" `Quick
           test_outcomes_and_matrix;
         Alcotest.test_case "timeout taxonomy" `Quick test_timeout_taxonomy;
         Alcotest.test_case "critical path" `Quick test_critical_path;
         Alcotest.test_case "deterministic ties" `Quick
           test_deterministic_ties ]);
      ("trace",
       [ Alcotest.test_case "run_meta splitting" `Quick
           test_of_trace_splits_runs;
         Alcotest.test_case "snapshot stats" `Quick test_snapshot_stats ]);
      ("jsonl",
       [ Alcotest.test_case "full round-trip" `Quick test_jsonl_roundtrip;
         Alcotest.test_case "waits-for round-trip" `Quick
           test_snapshot_roundtrip;
         Alcotest.test_case "malformed lines" `Quick
           test_malformed_lines_are_diagnosed;
         Alcotest.test_case "report json shape" `Quick
           test_report_to_json_shape ]) ]
