(* Tests for the Space-Saving heavy-hitter sketch: exact top-K recovery
   below capacity, the eviction/inheritance mechanics at capacity,
   deterministic tie-breaking, and the QCheck-checked error bound
   (error <= N/k, every key heavier than N/k tracked) on skewed
   streams. *)

module Sketch = Obs.Sketch

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let feed sketch keys =
  List.iter (fun key -> ignore (Sketch.observe sketch key : string option)) keys

let repeat n item = List.init n (fun _ -> item)

(* Below capacity Space-Saving degrades to exact counting: every count
   precise, every error zero, top-K in order. *)
let test_exact_below_capacity () =
  let sketch = Sketch.create ~k:8 in
  feed sketch
    (repeat 5 "alpha" @ repeat 3 "beta" @ repeat 2 "gamma" @ [ "delta" ]);
  Alcotest.(check (list (triple string (float 1e-9) (float 1e-9))))
    "exact top with zero errors"
    [ ("alpha", 5.0, 0.0); ("beta", 3.0, 0.0); ("gamma", 2.0, 0.0);
      ("delta", 1.0, 0.0) ]
    (Sketch.top sketch);
  check_int "cardinality" 4 (Sketch.cardinality sketch);
  check_float "total" 11.0 (Sketch.total sketch);
  Alcotest.(check (list (triple string (float 1e-9) (float 1e-9))))
    "top ~n truncates"
    [ ("alpha", 5.0, 0.0); ("beta", 3.0, 0.0) ]
    (Sketch.top ~n:2 sketch)

let test_eviction_inherits_minimum () =
  let sketch = Sketch.create ~k:2 in
  feed sketch [ "a"; "a"; "b" ];
  (match Sketch.observe sketch "c" with
   | Some victim -> Alcotest.(check string) "evicts the minimum" "b" victim
   | None -> Alcotest.fail "expected an eviction at capacity");
  check_bool "victim no longer tracked" true (Sketch.find sketch "b" = None);
  (match Sketch.find sketch "c" with
   | Some (estimate, error) ->
     check_float "inherits the evicted count" 2.0 estimate;
     check_float "inherited count becomes the error" 1.0 error
   | None -> Alcotest.fail "newcomer not tracked");
  check_int "still at capacity" 2 (Sketch.cardinality sketch);
  check_float "total counts evictions too" 4.0 (Sketch.total sketch)

let test_tie_breaks_are_deterministic () =
  let sketch = Sketch.create ~k:2 in
  feed sketch [ "b"; "a" ];
  (match Sketch.observe sketch "c" with
   | Some victim ->
     Alcotest.(check string)
       "count ties evict the lexicographically smallest key" "a" victim
   | None -> Alcotest.fail "expected an eviction");
  let sketch = Sketch.create ~k:4 in
  feed sketch [ "z"; "m"; "a" ];
  Alcotest.(check (list string))
    "estimate ties order by key" [ "a"; "m"; "z" ]
    (List.map (fun (key, _, _) -> key) (Sketch.top sketch))

let test_weighted_updates () =
  let sketch = Sketch.create ~k:2 in
  ignore (Sketch.observe ~weight:7.5 sketch "hot" : string option);
  ignore (Sketch.observe ~weight:0.5 sketch "cold" : string option);
  ignore (Sketch.observe ~weight:2.5 sketch "hot" : string option);
  (match Sketch.find sketch "hot" with
   | Some (estimate, _) -> check_float "weights accumulate" 10.0 estimate
   | None -> Alcotest.fail "hot not tracked");
  check_float "total is summed weight" 10.5 (Sketch.total sketch)

let test_reset_and_create () =
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Sketch.create: k must be positive") (fun () ->
      ignore (Sketch.create ~k:0 : Sketch.t));
  let sketch = Sketch.create ~k:3 in
  feed sketch [ "x"; "y" ];
  Sketch.reset sketch;
  check_int "reset clears keys" 0 (Sketch.cardinality sketch);
  check_float "reset clears total" 0.0 (Sketch.total sketch);
  check_int "k survives reset" 3 (Sketch.k sketch)

(* ------------------------------------------------------------ properties *)

(* A geometric (Zipf-like) stream: a uniform draw j in [1, 1024] maps to
   key index floor(log2 j) flipped, so key 0 carries ~1/2 the stream,
   key 1 ~1/4, ... — heavy hitters plus a long tail. *)
let zipfish_stream =
  QCheck.make
    ~print:(fun keys -> String.concat "," keys)
    QCheck.Gen.(
      list_size (int_range 100 600)
        (map
           (fun j ->
             let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
             Printf.sprintf "key%02d" (10 - log2 j))
           (int_range 1 1024)))

let exact_counts keys =
  let table = Hashtbl.create 16 in
  List.iter
    (fun key ->
      Hashtbl.replace table key
        (1.0
         +. Option.value ~default:0.0 (Hashtbl.find_opt table key)))
    keys;
  table

let prop_space_saving_bounds =
  QCheck.Test.make ~name:"space-saving error stays within N/k" ~count:200
    zipfish_stream (fun keys ->
      let k = 8 in
      let sketch = Sketch.create ~k in
      feed sketch keys;
      let truth = exact_counts keys in
      let n = float_of_int (List.length keys) in
      let bound = n /. float_of_int k in
      let tracked_sound =
        List.for_all
          (fun (key, estimate, error) ->
            let true_count =
              Option.value ~default:0.0 (Hashtbl.find_opt truth key)
            in
            error <= bound +. 1e-9
            && estimate +. 1e-9 >= true_count
            && estimate -. error <= true_count +. 1e-9)
          (Sketch.top sketch)
      in
      let heavy_tracked =
        Hashtbl.fold
          (fun key count ok ->
            ok && (count <= bound || Sketch.find sketch key <> None))
          truth true
      in
      tracked_sound && heavy_tracked)

let () =
  Alcotest.run "sketch"
    [ ("exact",
       [ Alcotest.test_case "below capacity" `Quick test_exact_below_capacity;
         Alcotest.test_case "weighted updates" `Quick test_weighted_updates;
         Alcotest.test_case "reset and create" `Quick test_reset_and_create ]);
      ("eviction",
       [ Alcotest.test_case "inherits minimum" `Quick
           test_eviction_inherits_minimum;
         Alcotest.test_case "deterministic ties" `Quick
           test_tie_breaks_are_deterministic ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest [ prop_space_saving_bounds ]) ]
