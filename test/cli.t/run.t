The object-specific lock graph of the Figure 1 relations (paper Figure 5):

  $ colock graph
  HeLU (Database "db1")
    HeLU (Segment "seg1")
      HoLU (Relation "cells")
        HeLU (C.O. "cells")
          BLU ("cell_id")
          HoLU ("c_objects")
            HeLU (C.O. "c_objects")
              BLU ("obj_id")
              BLU ("obj_name")
          HoLU ("robots")
            HeLU (C.O. "robots")
              BLU ("robot_id")
              BLU ("trajectory")
              HoLU ("effectors")
                BLU ("effectors member" ("..ref.."))  - - -> HeLU (C.O. "effectors")
  
  HeLU (Database "db1")
    HeLU (Segment "seg2")
      HoLU (Relation "effectors")
        HeLU (C.O. "effectors")
          BLU ("eff_id")
          BLU ("tool")
  

Query-specific lock graphs (escalation anticipation, paper 4.5):

  $ colock plan "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ"
  query-specific lock graph (threshold 16):
    read cells.c_objects where cell_id = ? -> subtree c_objects in S (~1.0 locks; target level ~1.0)

  $ colock plan "SELECT c FROM c IN cells FOR UPDATE"
  query-specific lock graph (threshold 16):
    update cells. -> complex object in X (~1.0 locks; target level ~1.0)

Executing the Figure 3 queries reproduces the Figure 7 lock table:

  $ colock query \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE" \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE"
  T1: SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
    1 row(s), 1 lock request(s)
  T2: SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE
    1 row(s), 1 lock request(s)
  
  lock table:
  db1: granted [T2:IX, T1:IX] waiting []
  db1/seg1: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells/c1: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells/c1/robots: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells/c1/robots/r1: granted [T1:X] waiting []
  db1/seg1/cells/c1/robots/r2: granted [T2:X] waiting []
  db1/seg2: granted [T2:IS, T1:IS] waiting []
  db1/seg2/effectors: granted [T2:IS, T1:IS] waiting []
  db1/seg2/effectors/e1: granted [T1:S] waiting []
  db1/seg2/effectors/e2: granted [T2:S, T1:S] waiting []
  db1/seg2/effectors/e3: granted [T2:S] waiting []
  

With a writable library (rule 4' behaves like rule 4) the second update
conflicts on the shared effector e2:

  $ colock query --library-writable \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE" \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE"
  T1: SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE
    1 row(s), 1 lock request(s)
  T2: SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE
    blocked on db1/seg2/effectors/e2 by T1
  
  lock table:
  db1: granted [T2:IX, T1:IX] waiting []
  db1/seg1: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells/c1: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells/c1/robots: granted [T2:IX, T1:IX] waiting []
  db1/seg1/cells/c1/robots/r1: granted [T1:X] waiting []
  db1/seg1/cells/c1/robots/r2: granted [T2:X] waiting []
  db1/seg2: granted [T2:IX, T1:IX] waiting []
  db1/seg2/effectors: granted [T2:IX, T1:IX] waiting []
  db1/seg2/effectors/e1: granted [T1:X] waiting []
  db1/seg2/effectors/e2: granted [T1:X] waiting []
  
  [1]

Parse errors are reported with a position:

  $ colock plan "SELECT FROM cells FOR READ"
  parse error at offset 7: "FROM" is a reserved word
  [1]

Machine-readable simulation metrics: --stats-json - writes a JSON object to
stdout (and suppresses the human table). Float values vary slightly across
platforms, so we only assert the keys we rely on:

  $ colock simulate --technique proposed --jobs 6 --stats-json - > stats.json
  $ grep -c 'proposed (rule' stats.json
  1
  $ grep -o '"committed"' stats.json
  "committed"
  $ grep -o '"throughput"' stats.json
  "throughput"
  $ grep -o '"lock_wait_p95"' stats.json
  "lock_wait_p95"
  $ grep -o '"lock.deadlocks"' stats.json
  "lock.deadlocks"

The trace subcommand captures a lifecycle event stream and exports it in the
Chrome trace_event format:

  $ colock trace --jobs 8 -o trace.json
  proposed (rule 4'): captured 205 event(s) (0 dropped) from 8 job(s)
  committed 8, gave up 0, makespan 230, lock waits observed 1
  trace written to trace.json
  $ grep -c '"traceEvents"' trace.json
  1
  $ grep -c '"wait ' trace.json
  1
