The terminal dashboard over a committed fixture trace (two technique runs
separated by run_meta delimiters — see analyze.t for the same fixture fed
to the offline profiler). --once renders one plain frame per run: the
run_meta boundary flushes the finished run before the monitor resets, so
techniques never bleed stats into each other.

  $ colock top fixture.jsonl --once --slo rules.slo
  colock top — proposed (rule 4')
  now 60  elapsed 60  throughput 0.0167 commits/tick
  active txns 1  lock entries 9  wait queue 1
  window wait  p50 22.5  p95 24.8  p99 24.9  max 25.0  (2 waits, 0.010/tick)
  window grants      12  (0.060/tick)
  window commits      1  (0.005/tick)
  window aborts       1  (0.005/tick)
  window deadlocks    0  (0.000/tick)
  aborts: deadlock 1
  hot resources                    blocked  waits  lu
    db1/seg1/cells                    25.0      1  HoLU
    db1/seg1/cells/c1/cell_id         20.0      1  BLU
  SLO (2 rule(s), 1 breach(es) this run)
    ok     p99_wait < 40 (value 24.95)
    BREACH abort_rate < 0.25 (value 0.5)
  
  colock top — whole-object (XSQL)
  now 500  elapsed 500  throughput 0.0000 commits/tick
  active txns 0  lock entries 7  wait queue 0
  window wait  p50 440.0  p95 440.0  p99 440.0  max 440.0  (1 waits, 0.005/tick)
  window grants       1  (0.005/tick)
  window commits      0  (0.000/tick)
  window aborts       0  (0.000/tick)
  window deadlocks    0  (0.000/tick)
  hot resources                    blocked  waits  lu
    db1/seg1/cells/c1                440.0      1  HeLU
  SLO (2 rule(s), 1 breach(es) this run)
    BREACH p99_wait < 40 (value 440)
    ok     abort_rate < 0.25 (value 0)


A narrower window ages the early waits out before the end of the first
run, so the windowed quantiles cover only the recent past while the
cumulative panels (aborts, hot resources) keep the whole run:

  $ colock top fixture.jsonl --once --window 30 | head -n 6
  colock top — proposed (rule 4')
  now 60  elapsed 60  throughput 0.0167 commits/tick
  active txns 1  lock entries 9  wait queue 1
  window wait  p50 25.0  p95 25.0  p99 25.0  max 25.0  (1 waits, 0.033/tick)
  window grants       0  (0.000/tick)
  window commits      1  (0.033/tick)
