(* Chaos soak: a large faulted workload (crashes mid-step, stalled accesses,
   never-committing lock hogs) must terminate cleanly under every
   collision-resolution strategy, with the lock table's structural
   invariants audited after every simulator event and no waiter left stuck.
   Everything is seeded, so two runs must agree bit for bit. *)

module Table = Lockmgr.Lock_table
module Policy = Lockmgr.Policy
module Graph = Colock.Instance_graph
module Protocol = Colock.Protocol

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let jobs_per_run =
  (* CHAOS_JOBS shrinks the soak for quick local iteration *)
  match Sys.getenv_opt "CHAOS_JOBS" with
  | Some count -> int_of_string count
  | None -> 1000

let faults =
  { Sim.Fault.crash = 0.05; stall = 0.1; stall_factor = 2; hog = 0.03;
    fault_seed = 99 }

let run_chaos resolution =
  let db =
    Workload.Generator.manufacturing
      { Workload.Generator.default_manufacturing with cells = 12;
        effectors = 32; seed = 9 }
  in
  let graph = Graph.build db in
  (* the arrival gap keeps the offered load just below capacity (hogs
     included) so the backlog — and with it the per-event audit cost — stays
     bounded over the whole soak *)
  let mix =
    { Sim.Scenario.default_mix with jobs = jobs_per_run; arrival_gap = 60;
      steps_per_job = 2; read_fraction = 0.3; seed = 9 }
  in
  let specs = Sim.Scenario.manufacturing_mix db graph mix in
  let table = Table.create () in
  let protocol = Protocol.create graph table in
  let jobs = Sim.Scenario.compile graph (Sim.Scenario.Proposed protocol) specs in
  let config =
    { Sim.Runner.default_config with resolution;
      backoff = Policy.Exponential { base = 20; cap = 300; seed = 9 };
      hog_hold = 400; check_invariants = true }
  in
  let metrics = Sim.Runner.run ~config ~faults ~table jobs in
  (metrics, Table.entry_count table)

let soak ?(determinism = false) name resolution () =
  let metrics, leftover = run_chaos resolution in
  Format.printf "%s: %a@." name Sim.Metrics.pp metrics;
  (* the run draining its event queue with every job in a terminal state is
     the "no permanently stuck waiter" guarantee: a stuck waiter would be
     unaccounted for here *)
  check_int (name ^ ": every job accounted for") jobs_per_run
    (metrics.Sim.Metrics.committed + metrics.Sim.Metrics.gave_up
    + metrics.Sim.Metrics.crashed);
  check_int (name ^ ": table drained") 0 leftover;
  check_bool (name ^ ": faults actually fired") true
    (metrics.Sim.Metrics.crashed > 0);
  check_bool (name ^ ": most jobs still commit") true
    (metrics.Sim.Metrics.committed > jobs_per_run / 2);
  (match resolution with
   | Policy.Detection ->
     check_int (name ^ ": no timeout aborts without timeouts") 0
       metrics.Sim.Metrics.timeout_aborts
   | Policy.Timeout _ ->
     check_int (name ^ ": no detection aborts without detection") 0
       metrics.Sim.Metrics.deadlock_aborts
   | Policy.Hybrid _ -> ());
  if determinism then begin
    let metrics2, _ = run_chaos resolution in
    Alcotest.(check (list (pair string (float 0.0))))
      (name ^ ": deterministic")
      (Sim.Metrics.row metrics) (Sim.Metrics.row metrics2)
  end

let () =
  Alcotest.run "chaos"
    [ ("soak",
       [ Alcotest.test_case "detection" `Quick
           (soak "detection" Policy.Detection);
         (* above the hog hold a deadline only fires on pathological waits;
            hog- and stall-blocked jobs abort once or twice, retry after the
            faulty holder is crash-released, and still commit *)
         Alcotest.test_case "timeout" `Quick
           (soak ~determinism:true "timeout" (Policy.Timeout 500));
         Alcotest.test_case "hybrid" `Quick
           (soak "hybrid" (Policy.Hybrid 500)) ]) ]
