Causal blame over a committed holder-annotated fixture: T2 holds the cell
c1 in X; T1 queues at 10 and T3 at 15, both in S. T2 releases at 20 (T1 is
served immediately, T3 not until 25), so T2 is to blame for T1's full 10
ticks and the first 5 of T3's wait, while T3's last 5 ticks — nobody
incompatible held the cell — fall on the queue. Per-blocker blame must sum
to the 20 blocked ticks the profiler measures on the same stream.

  $ colock explain fixture.jsonl
  === blame report: proposed (rule 4') ===
  blocked 20 across 2 wait(s); blamed 20
  
  top blockers (top 2 of 2):
    BLOCKER         BLAME    WAITS
    T2                 15        2
    queue               5        1
  

One transaction's span tree, with per-holder blame shares:

  $ colock explain fixture.jsonl --txn 3
  T3: begin 5, commit 35
  blocked 10 across 1 wait(s); blamed for 0 elsewhere
  |- wait db1/seg1/cells/c1 (S) [15..25] granted: 10
  |    blocked by T2 (X): 5
  |    blocked by queue: 5
  

Unknown transactions are diagnosed:

  $ colock explain fixture.jsonl --txn 99
  colock: fixture.jsonl: transaction T99 not in trace
  [1]

Blocked time folded along the instance-graph path (flamegraph.pl input —
both waits share one stack, so their durations merge):

  $ colock flame fixture.jsonl
  db1;seg1;cells;c1;mode:S 20
