(* Tests for the live-operations layer: gauges, sliding windows, registry
   reset, Prometheus exposition, the HTTP listener, the monitor itself
   (cross-checked against the lock table and transaction manager it
   watches) and the SLO engine. *)

module Event = Obs.Event
module Mode = Lockmgr.Lock_mode
module Table = Lockmgr.Lock_table
module Node_id = Colock.Node_id
module Graph = Colock.Instance_graph

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

let ev time kind = { Event.time; kind }

let blu = Some { Event.lu_kind = "BLU"; lu_depth = 5 }

let granted ?(lu = None) txn resource =
  Event.Lock_granted
    { txn; resource; mode = "X"; immediate = true; lu; holders = [] }

let waited ?(lu = None) txn resource =
  Event.Lock_waited
    { txn; resource; mode = "X"; blockers = [ 9 ]; lu; holders = [] }

(* ------------------------------------------------------------------ Gauge *)

let test_gauge_set_add_peak () =
  let gauge = Obs.Gauge.create () in
  check_float "starts at zero" 0.0 (Obs.Gauge.value gauge);
  Obs.Gauge.set gauge 3.0;
  Obs.Gauge.add gauge 2.0;
  check_float "set then add" 5.0 (Obs.Gauge.value gauge);
  Obs.Gauge.decr gauge;
  check_float "decr" 4.0 (Obs.Gauge.value gauge);
  check_float "peak tracks the high-water mark" 5.0 (Obs.Gauge.peak gauge);
  Obs.Gauge.reset gauge;
  check_float "reset clears value" 0.0 (Obs.Gauge.value gauge);
  check_float "reset clears peak" 0.0 (Obs.Gauge.peak gauge)

(* ----------------------------------------------------------------- Window *)

let test_window_expiry_boundary () =
  let window = Obs.Window.create ~span:100.0 () in
  Obs.Window.observe window ~now:0.0 10.0;
  Obs.Window.observe window ~now:1.0 20.0;
  check_int "both live" 2 (Obs.Window.count window);
  (* the window is the half-open interval (now - span, now]: a sample
     stamped exactly [span] ago has aged out, one stamped an instant later
     has not *)
  Obs.Window.advance window ~now:100.0;
  check_int "sample at now - span expires" 1 (Obs.Window.count window);
  check_float "survivor is the later sample" 20.0 (Obs.Window.sum window);
  Obs.Window.advance window ~now:101.0;
  check_int "empty once everything aged" 0 (Obs.Window.count window);
  check_float "rate of empty window" 0.0 (Obs.Window.rate window)

let test_window_rate_and_quantiles () =
  let window = Obs.Window.create ~span:200.0 () in
  List.iter
    (fun (now, value) -> Obs.Window.observe window ~now value)
    [ (10.0, 10.0); (20.0, 20.0); (30.0, 30.0); (40.0, 40.0) ];
  check_float "count / span" (4.0 /. 200.0) (Obs.Window.rate window);
  check_float "p50 interpolates" 25.0 (Obs.Window.quantile window 0.50);
  check_float "p0 is the min" 10.0 (Obs.Window.quantile window 0.0);
  check_float "p100 is the max" 40.0 (Obs.Window.quantile window 1.0);
  check_float "max" 40.0 (Obs.Window.max_value window);
  check_float "mean" 25.0 (Obs.Window.mean window)

let test_window_limit_sheds () =
  let window = Obs.Window.create ~limit:3 ~span:1000.0 () in
  for step = 1 to 5 do
    Obs.Window.observe window ~now:(float_of_int step) 1.0
  done;
  check_int "capped at limit" 3 (Obs.Window.count window);
  check_int "shed counter is visible" 2 (Obs.Window.shed window)

(* --------------------------------------------------------------- Registry *)

let test_registry_reset_isolation () =
  let registry = Obs.Registry.create () in
  Obs.Registry.incr registry "events.grant";
  Obs.Registry.set_gauge registry "level" 7.0;
  Obs.Registry.observe registry "wait" 12.0;
  let window = Obs.Registry.window ~span:100.0 registry "w.rate" in
  Obs.Window.mark window ~now:5.0;
  let other = Obs.Registry.create () in
  Obs.Registry.incr other "events.grant" ~by:9;
  Obs.Registry.reset registry;
  check_int "counter zeroed" 0 (Obs.Registry.counter registry "events.grant");
  check_float "gauge zeroed" 0.0 (Obs.Registry.gauge_value registry "level");
  check_int "window cleared" 0 (Obs.Window.count window);
  (match Obs.Registry.find_histogram registry "wait" with
   | Some histogram ->
     check_int "histogram cleared" 0 (Obs.Histogram.count histogram)
   | None -> Alcotest.fail "histogram key should survive reset");
  check_bool "keys survive for stable exports" true
    (List.mem_assoc "events.grant" (Obs.Registry.counters registry));
  check_int "other registries untouched" 9
    (Obs.Registry.counter other "events.grant")

(* ------------------------------------------------------------------- Expo *)

let test_expo_golden () =
  let registry = Obs.Registry.create () in
  Obs.Registry.incr registry "events.lock_granted" ~by:3;
  Obs.Registry.set_gauge registry "active_txns" 2.0;
  Obs.Registry.observe registry "lock_wait" 16.0;
  let plain = Obs.Registry.window ~span:100.0 registry "window.grants" in
  Obs.Window.mark plain ~now:10.0;
  let labelled =
    Obs.Registry.window ~span:100.0 registry "window.grants{lu=\"BLU\"}"
  in
  Obs.Window.mark labelled ~now:10.0;
  let rendered = Obs.Expo.render registry in
  let expected =
    "# TYPE colock_active_txns gauge\n\
     colock_active_txns 2\n\
     # TYPE colock_events_lock_granted_total counter\n\
     colock_events_lock_granted_total 3\n\
     # TYPE colock_lock_wait summary\n\
     colock_lock_wait{quantile=\"0.5\"} 16\n\
     colock_lock_wait{quantile=\"0.95\"} 16\n\
     colock_lock_wait{quantile=\"0.99\"} 16\n\
     colock_lock_wait_sum 16\n\
     colock_lock_wait_count 1\n\
     # TYPE colock_window_grants gauge\n\
     colock_window_grants_count 1\n\
     colock_window_grants_rate 0.01\n\
     colock_window_grants_p50 1\n\
     colock_window_grants_p95 1\n\
     colock_window_grants_p99 1\n\
     colock_window_grants_max 1\n\
     colock_window_grants_count{lu=\"BLU\"} 1\n\
     colock_window_grants_rate{lu=\"BLU\"} 0.01\n\
     colock_window_grants_p50{lu=\"BLU\"} 1\n\
     colock_window_grants_p95{lu=\"BLU\"} 1\n\
     colock_window_grants_p99{lu=\"BLU\"} 1\n\
     colock_window_grants_max{lu=\"BLU\"} 1\n"
  in
  check_string "exposition document" expected rendered

let test_expo_sanitize () =
  check_string "dots and braces become underscores" "window_lock_wait"
    (Obs.Expo.sanitize "window.lock_wait");
  check_string "leading digit escaped" "_9lives" (Obs.Expo.sanitize "9lives")

(* Label values are arbitrary (scenario names flow through them): the 0.0.4
   escapes — backslash, double-quote, newline — must survive a build via
   [labelled] and re-render exactly once. *)
let test_expo_label_escaping () =
  check_string "escape" "a\\\\b\\\"c\\nd"
    (Obs.Expo.escape_label_value "a\\b\"c\nd");
  let registry = Obs.Registry.create () in
  Obs.Registry.set_gauge registry
    (Obs.Expo.labelled "scenario_info"
       [ ("scenario", "we\"ird\\name\nline") ])
    1.0;
  check_string "golden escaped gauge"
    "# TYPE colock_scenario_info gauge\n\
     colock_scenario_info{scenario=\"we\\\"ird\\\\name\\nline\"} 1\n"
    (Obs.Expo.render registry);
  check_string "empty label list is the bare name" "plain"
    (Obs.Expo.labelled "plain" [])

(* ------------------------------------------------------------------- Http *)

let http_get ~port path =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close socket)
    (fun () ->
      Unix.connect socket (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let request =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n" path
      in
      ignore
        (Unix.write_substring socket request 0 (String.length request) : int);
      let buffer = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        let count = Unix.read socket chunk 0 (Bytes.length chunk) in
        if count > 0 then begin
          Buffer.add_subbytes buffer chunk 0 count;
          drain ()
        end
      in
      drain ();
      Buffer.contents buffer)

let status_of response =
  match String.split_on_char ' ' response with
  | _http :: status :: _ -> int_of_string status
  | _ -> -1

let test_http_serves_and_routes () =
  let server =
    Obs.Http.start ~port:0 (fun path ->
        if String.equal path "/metrics" then
          Some
            { Obs.Http.status = 200; content_type = Obs.Expo.content_type;
              body = "colock_up 1\n" }
        else None)
  in
  Fun.protect
    ~finally:(fun () -> Obs.Http.stop server)
    (fun () ->
      let port = Obs.Http.port server in
      check_bool "ephemeral port bound" true (port > 0);
      let response = http_get ~port "/metrics" in
      check_int "metrics route" 200 (status_of response);
      let has_body =
        let marker = "colock_up 1" in
        let rec scan index =
          index + String.length marker <= String.length response
          && (String.sub response index (String.length marker) = marker
              || scan (index + 1))
        in
        scan 0
      in
      check_bool "body served" true has_body;
      check_int "query string stripped" 200
        (status_of (http_get ~port "/metrics?debug=1"));
      check_int "unknown path is 404" 404 (status_of (http_get ~port "/nope")))

(* ---------------------------------------------------------------- Monitor *)

let test_monitor_gauges_and_windows () =
  let monitor = Obs.Monitor.create ~span:100.0 () in
  let handle event = Obs.Monitor.handle monitor event in
  handle (ev 0.0 (Event.Txn_begin { txn = 1 }));
  handle (ev 0.0 (Event.Txn_begin { txn = 2 }));
  handle (ev 1.0 (granted ~lu:blu 1 "cells/c1"));
  handle (ev 2.0 (waited ~lu:blu 2 "cells/c1"));
  let registry = Obs.Monitor.registry monitor in
  let gauge name = Obs.Registry.gauge_value registry name in
  check_float "two active" 2.0 (gauge "active_txns");
  check_float "one entry" 1.0 (gauge "lock_entries");
  check_float "one waiter" 1.0 (gauge "wait_queue_depth");
  handle (ev 42.0 (Event.Lock_granted
                     { txn = 2; resource = "cells/c1"; mode = "X";
                       immediate = false; lu = blu; holders = [] }));
  check_float "wait resolved" 0.0 (gauge "wait_queue_depth");
  (match Obs.Registry.find_window registry "window.lock_wait" with
   | Some window ->
     check_int "one completed wait" 1 (Obs.Window.count window);
     check_float "waited 40 ticks" 40.0 (Obs.Window.quantile window 0.99)
   | None -> Alcotest.fail "wait window missing");
  (match Obs.Registry.find_window registry "window.lock_wait{lu=\"BLU\"}" with
   | Some window ->
     check_int "wait attributed to its LU kind" 1 (Obs.Window.count window)
   | None -> Alcotest.fail "labelled wait window missing");
  (match Obs.Monitor.hot_resources monitor with
   | (resource, stat) :: _ ->
     check_string "hot resource" "cells/c1" resource;
     check_float "blocked time attributed" 40.0 stat.Obs.Monitor.r_blocked
   | [] -> Alcotest.fail "expected a hot resource");
  handle (ev 50.0 (Event.Txn_commit { txn = 2 }));
  check_float "commit retires the txn" 1.0 (gauge "active_txns");
  check_int "commit counted" 1 (Obs.Monitor.commits monitor)

let test_monitor_abort_taxonomy () =
  let monitor = Obs.Monitor.create () in
  let handle event = Obs.Monitor.handle monitor event in
  handle (ev 0.0 (Event.Txn_begin { txn = 1 }));
  handle (ev 1.0 (Event.Victim_aborted { txn = 1; restarts = 1 }));
  handle (ev 1.0 (Event.Txn_abort { txn = 1; reason = "deadlock_victim" }));
  handle (ev 2.0 (Event.Txn_abort { txn = 2; reason = "user" }));
  Alcotest.(check (list (pair string int)))
    "victim pairs are not double counted"
    [ ("deadlock", 1); ("user", 1) ]
    (Obs.Monitor.aborts monitor)

let test_monitor_run_meta_resets () =
  let monitor = Obs.Monitor.create () in
  let handle event = Obs.Monitor.handle monitor event in
  handle (ev 0.0 (Event.Run_meta { label = "first" }));
  handle (ev 0.0 (Event.Txn_begin { txn = 1 }));
  handle (ev 1.0 (granted 1 "r1"));
  handle (ev 9.0 (Event.Txn_commit { txn = 1 }));
  check_int "first run committed" 1 (Obs.Monitor.commits monitor);
  handle (ev 0.0 (Event.Run_meta { label = "second" }));
  check_string "relabelled" "second"
    (Option.value ~default:"?" (Obs.Monitor.label monitor));
  check_int "commits reset" 0 (Obs.Monitor.commits monitor);
  check_float "gauges reset" 0.0
    (Obs.Registry.gauge_value (Obs.Monitor.registry monitor) "active_txns");
  check_int "hot resources reset" 0
    (List.length (Obs.Monitor.hot_resources monitor))

(* Robustness signals become live gauges: the AIMD limiter snapshot, the
   breaker state machine (0 closed / 1 half-open / 2 open), and the
   exhausted-retry-budget count. *)
let test_monitor_robustness_gauges () =
  let monitor = Obs.Monitor.create () in
  let handle event = Obs.Monitor.handle monitor event in
  let registry = Obs.Monitor.registry monitor in
  let gauge name = Obs.Registry.gauge_value registry name in
  handle
    (ev 1.0
       (Event.Admission_limit { limit = 6; inflight = 4; queued = 3; shed = 2 }));
  check_float "limit gauge" 6.0 (gauge "admission_limit");
  check_float "inflight gauge" 4.0 (gauge "admission_inflight");
  check_float "queued gauge" 3.0 (gauge "admission_queued");
  check_float "shed gauge" 2.0 (gauge "admission_shed");
  handle
    (ev 2.0 (Event.Breaker { from_state = "closed"; to_state = "open" }));
  check_float "breaker open = 2" 2.0 (gauge "breaker_state");
  handle
    (ev 3.0 (Event.Breaker { from_state = "open"; to_state = "half-open" }));
  check_float "breaker half-open = 1" 1.0 (gauge "breaker_state");
  handle
    (ev 4.0 (Event.Breaker { from_state = "half-open"; to_state = "closed" }));
  check_float "breaker closed = 0" 0.0 (gauge "breaker_state");
  handle (ev 5.0 (Event.Retry_denied { txn = 7; restarts = 3 }));
  handle (ev 6.0 (Event.Retry_denied { txn = 8; restarts = 3 }));
  check_float "retry_denied mirrors the counter" 2.0 (gauge "retry_denied");
  check_int "counter still counts" 2
    (Obs.Registry.counter registry "retry.denied")

(* Hot-resource and hot-blocker tracking is sketch-bounded: at most hot_k
   labelled gauges live in the registry, blame splits across the holders
   stamped on the wait, and evicted keys take their gauge with them. *)
let test_monitor_hot_keys_are_bounded () =
  let monitor = Obs.Monitor.create ~hot_k:2 () in
  let handle event = Obs.Monitor.handle monitor event in
  let registry = Obs.Monitor.registry monitor in
  let holder txn mode = { Event.h_txn = txn; h_mode = mode; h_lu = None } in
  let waited ~holders txn resource =
    Event.Lock_waited { txn; resource; mode = "X"; blockers = []; lu = None;
                        holders }
  in
  let grant txn resource =
    Event.Lock_granted
      { txn; resource; mode = "X"; immediate = false; lu = None; holders = [] }
  in
  (* r1 blocks 30 ticks (split between holders T7 and T8, 15 each), r2
     blocks 10 more on T7 alone — the blocker sketch shares the k bound *)
  handle (ev 0.0 (waited ~holders:[ holder 7 "X"; holder 8 "S" ] 1 "r1"));
  handle (ev 5.0 (waited ~holders:[ holder 7 "X" ] 2 "r2"));
  handle (ev 15.0 (grant 2 "r2"));
  handle (ev 30.0 (grant 1 "r1"));
  check_float "hot resource gauge carries blocked time" 30.0
    (Obs.Registry.gauge_value registry "hot_resource{resource=\"r1\"}");
  Alcotest.(check (list (pair string (float 1e-9))))
    "blame split across enqueue-time holders"
    [ ("T7", 25.0); ("T8", 15.0) ]
    (Obs.Monitor.hot_blockers monitor);
  (* a third resource overflows k=2: the smallest (r2) is evicted and its
     gauge leaves the registry with it *)
  handle (ev 40.0 (waited ~holders:[ holder 9 "X" ] 3 "r3"));
  handle (ev 80.0 (grant 3 "r3"));
  let resources =
    List.map (fun (resource, _) -> resource)
      (Obs.Monitor.hot_resources monitor)
  in
  Alcotest.(check (list string)) "bounded at hot_k" [ "r3"; "r1" ] resources;
  check_float "evicted gauge dropped" 0.0
    (Obs.Registry.gauge_value registry "hot_resource{resource=\"r2\"}");
  check_bool "survivor gauges stay" true
    (Obs.Registry.gauge_value registry "hot_resource{resource=\"r3\"}" > 0.0);
  handle (ev 0.0 (Event.Run_meta { label = "next" }));
  check_int "reset clears hot blockers" 0
    (List.length (Obs.Monitor.hot_blockers monitor));
  check_bool "reset drops labelled gauges entirely" true
    (List.for_all
       (fun (name, _) ->
         not (String.length name >= 4 && String.sub name 0 4 = "hot_"))
       (Obs.Registry.gauges (Obs.Monitor.registry monitor)))

(* The monitor only ever sees the event stream; the lock table and the
   transaction manager own the ground truth. Drive a real blocked-writer
   scenario through the full stack and insist the gauges agree with the
   structures they summarize. *)
let test_monitor_agrees_with_table_and_manager () =
  let monitor = Obs.Monitor.create () in
  let sink = Obs.Sink.create [] in
  Obs.Sink.attach sink (Obs.Monitor.handle monitor);
  let db = Workload.Figure1.database () in
  let graph = Graph.build db in
  let table = Table.create ~obs:sink ~meta:(Graph.lu_resolver graph) () in
  let rights = Authz.Rights.create () in
  let protocol = Colock.Protocol.create ~rights graph table in
  let manager = Txn.Txn_manager.create protocol in
  let registry = Obs.Monitor.registry monitor in
  let gauge name = int_of_float (Obs.Registry.gauge_value registry name) in
  let node steps = Option.get (Node_id.of_steps steps) in
  let cell = node [ "db1"; "seg1"; "cells"; "c1" ] in
  let robot = node [ "db1"; "seg1"; "cells"; "c1"; "robots"; "r1" ] in
  let t1 = Txn.Txn_manager.begin_txn manager in
  let t2 = Txn.Txn_manager.begin_txn manager in
  (match Txn.Txn_manager.acquire manager t1 cell Mode.X with
   | Txn.Txn_manager.Granted -> ()
   | _ -> Alcotest.fail "t1 should get the cell");
  (match Txn.Txn_manager.acquire manager t2 robot Mode.X with
   | Txn.Txn_manager.Waiting _ -> ()
   | _ -> Alcotest.fail "t2 should block behind t1");
  check_int "active gauge = manager's count"
    (Txn.Txn_manager.active_count manager)
    (gauge "active_txns");
  check_int "entries gauge = table's entry count" (Table.entry_count table)
    (gauge "lock_entries");
  check_int "queue gauge = table's waiter count" (Table.waiter_count table)
    (gauge "wait_queue_depth");
  check_int "exactly one queued waiter" 1 (Table.waiter_count table);
  let grants = Txn.Txn_manager.commit manager t1 in
  let (_ : Txn.Transaction.t list) =
    Txn.Txn_manager.unblocked manager grants
  in
  check_int "wait drained in both views" (Table.waiter_count table)
    (gauge "wait_queue_depth");
  check_int "no queued waiters left" 0 (Table.waiter_count table)

let test_monitor_self_accounting () =
  let monitor = Obs.Monitor.create () in
  let sink = Obs.Sink.create [] in
  Obs.Sink.attach sink (Obs.Monitor.handle monitor);
  Obs.Sink.emit sink (Event.Txn_begin { txn = 1 });
  Obs.Sink.emit sink (Event.Txn_commit { txn = 1 });
  Obs.Monitor.sync_sink monitor sink;
  let registry = Obs.Monitor.registry monitor in
  check_float "emitted meta-metric" 2.0
    (Obs.Registry.gauge_value registry "obs_events_emitted");
  check_float "nothing dropped" 0.0
    (Obs.Registry.gauge_value registry "obs_events_dropped")

(* -------------------------------------------------------------------- Slo *)

let slo_of text =
  match Obs.Slo.parse text with
  | Ok slo -> slo
  | Error message -> Alcotest.fail message

let test_slo_parse () =
  let slo =
    slo_of
      "# latency\n\
       p99_wait < 40\n\
       p95_wait{lu=HoLU} <= 25 # labelled\n\
       abort_rate < 0.25\n\
       throughput > 0.05\n"
  in
  check_int "four rules" 4 (List.length (Obs.Slo.rules slo));
  (match Obs.Slo.rules slo with
   | first :: _ -> check_string "normalized text" "p99_wait < 40"
                     first.Obs.Slo.text
   | [] -> Alcotest.fail "rules expected");
  match Obs.Slo.parse "p99_wait < 40\nbogus < 1\np50_wait ? 2" with
  | Ok _ -> Alcotest.fail "parse should fail"
  | Error message ->
    let mentions fragment =
      let rec scan index =
        index + String.length fragment <= String.length message
        && (String.sub message index (String.length fragment) = fragment
            || scan (index + 1))
      in
      scan 0
    in
    check_bool "bad signal line reported" true (mentions "line 2");
    check_bool "bad comparator line reported" true (mentions "line 3")

(* Malformed rules must name their position and the offending token. *)
let test_slo_diagnostics () =
  let error ?file ?line text =
    match Obs.Slo.parse_rule ?file ?line text with
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" text)
    | Error message -> message
  in
  let contains fragment message =
    let rec scan index =
      index + String.length fragment <= String.length message
      && (String.sub message index (String.length fragment) = fragment
          || scan (index + 1))
    in
    scan 0
  in
  let check_mentions label fragment message =
    check_bool label true (contains fragment message)
  in
  check_mentions "unknown metric names the token" "\"bogus\""
    (error "bogus < 1");
  check_mentions "bad threshold names the token" "threshold \"fast\""
    (error "p99_wait < fast");
  check_mentions "bad selector names the block" "{lu=}"
    (error "p95_wait{lu=} < 10");
  check_mentions "selector on a rate is rejected" "takes no {lu=...}"
    (error "abort_rate{lu=BLU} < 0.5");
  check_mentions "file:line prefix" "rules.slo:7:"
    (error ~file:"rules.slo" ~line:7 "bogus < 1");
  check_mentions "bare line prefix" "line 7:" (error ~line:7 "bogus < 1");
  match Obs.Slo.parse ~file:"team.slo" "p99_wait < 40\nbogus < 1" with
  | Ok _ -> Alcotest.fail "parse should fail"
  | Error message ->
    check_mentions "aggregate diagnostics carry the file" "team.slo:2:"
      message

let test_slo_watch_emits_breach_and_counts () =
  let slo = slo_of "p99_wait < 10\nabort_rate < 0.9" in
  let monitor = Obs.Monitor.create ~span:100.0 () in
  let sink = Obs.Sink.create [] in
  Obs.Sink.attach sink (Obs.Monitor.handle monitor);
  let watch = Obs.Slo.watch ~sink slo monitor in
  Obs.Sink.attach sink (Obs.Slo.handler watch);
  let breached = ref [] in
  Obs.Sink.attach sink (fun event ->
      match event.Event.kind with
      | Event.Slo_breach { rule; _ } -> breached := rule :: !breached
      | _ -> ());
  Obs.Sink.emit_at sink ~time:0.0 (Event.Txn_begin { txn = 1 });
  Obs.Sink.emit_at sink ~time:5.0 (waited 1 "r1");
  Obs.Sink.emit_at sink ~time:50.0
    (Event.Lock_granted
       { txn = 1; resource = "r1"; mode = "X"; immediate = false; lu = None;
         holders = [] });
  check_int "no evaluation before the boundary" 0
    (Obs.Slo.breach_count watch);
  Obs.Sink.emit_at sink ~time:120.0 (Event.Txn_commit { txn = 1 });
  check_int "one rule breached at the boundary" 1
    (Obs.Slo.breach_count watch);
  Alcotest.(check (list string))
    "breach event carries the rule" [ "p99_wait < 10" ] !breached;
  check_int "monitor remembers the breach" 1
    (List.length (Obs.Monitor.breaches monitor));
  let total = Obs.Slo.finish watch ~time:130.0 in
  check_int "final evaluation re-checks the tail" 2 total

let test_slo_measure_rates () =
  let monitor = Obs.Monitor.create ~span:100.0 () in
  let handle event = Obs.Monitor.handle monitor event in
  handle (ev 0.0 (Event.Txn_begin { txn = 1 }));
  handle (ev 10.0 (Event.Txn_commit { txn = 1 }));
  handle (ev 11.0 (Event.Txn_abort { txn = 2; reason = "user" }));
  check_float "abort rate is aborts/(aborts+commits)" 0.5
    (Obs.Slo.measure monitor Obs.Slo.Abort_rate);
  check_float "throughput is windowed commits per tick" 0.01
    (Obs.Slo.measure monitor Obs.Slo.Throughput)

let () =
  Alcotest.run "monitor"
    [ ( "gauge",
        [ Alcotest.test_case "set/add/peak" `Quick test_gauge_set_add_peak ] );
      ( "window",
        [ Alcotest.test_case "expiry boundary" `Quick
            test_window_expiry_boundary;
          Alcotest.test_case "rate and quantiles" `Quick
            test_window_rate_and_quantiles;
          Alcotest.test_case "limit sheds" `Quick test_window_limit_sheds ] );
      ( "registry",
        [ Alcotest.test_case "reset isolation" `Quick
            test_registry_reset_isolation ] );
      ( "expo",
        [ Alcotest.test_case "golden document" `Quick test_expo_golden;
          Alcotest.test_case "sanitize" `Quick test_expo_sanitize;
          Alcotest.test_case "label escaping" `Quick
            test_expo_label_escaping ] );
      ( "http",
        [ Alcotest.test_case "serves and routes" `Quick
            test_http_serves_and_routes ] );
      ( "monitor",
        [ Alcotest.test_case "gauges and windows" `Quick
            test_monitor_gauges_and_windows;
          Alcotest.test_case "abort taxonomy" `Quick
            test_monitor_abort_taxonomy;
          Alcotest.test_case "run_meta resets" `Quick
            test_monitor_run_meta_resets;
          Alcotest.test_case "robustness gauges" `Quick
            test_monitor_robustness_gauges;
          Alcotest.test_case "hot keys are bounded" `Quick
            test_monitor_hot_keys_are_bounded;
          Alcotest.test_case "agrees with table and manager" `Quick
            test_monitor_agrees_with_table_and_manager;
          Alcotest.test_case "self accounting" `Quick
            test_monitor_self_accounting ] );
      ( "slo",
        [ Alcotest.test_case "parse" `Quick test_slo_parse;
          Alcotest.test_case "diagnostics" `Quick test_slo_diagnostics;
          Alcotest.test_case "watch emits breaches" `Quick
            test_slo_watch_emits_breach_and_counts;
          Alcotest.test_case "measured rates" `Quick test_slo_measure_rates ]
      ) ]
