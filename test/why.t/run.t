The differential profiler pairs runs by label and explains where the
wait-time delta lives.  Every table must sum exactly to the headline
delta: calm stretches the rA wait from 10 to 25 ticks, swaps the
untagged rB wait (20) for a HeLU rC wait (7), so delta = +2.  Runs
present on only one side are reported as drift, never silently diffed.

  $ colock why base.jsonl cand.jsonl
  === wait-time diff: calm ===
  base blocked 30 across 2 wait(s); cand blocked 32 across 2 wait(s)
  delta +2 (+6.7%)
  
  by lockable-unit level:
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     BLU
              +7            0            7     0->1     HeLU (added)
             -20           20            0     1->0     untagged (removed)
  
  by graph depth:
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     2
              +7            0            7     0->1     4 (added)
             -20           20            0     1->0     untagged (removed)
  
  resource deltas:
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     rA
              +7            0            7     0->1     rC (added)
             -20           20            0     1->0     rB (removed)
  
  conflict-cell deltas (waiter<-holder):
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     X<-S
              +7            0            7     0->1     S<-X (added)
             -20           20            0     1->0     S<-queue (removed)
  
  blocker deltas:
           DELTA         BASE         CAND       WAITS  KEY
             +22           10           32     1->2     T9
             -20           20            0     1->0     queue (removed)
  
  drift: run extinct only in the base trace (not diffed)
  drift: run newborn only in the candidate trace (not diffed)

Top-N truncation keeps the headline and drift intact and says how many
entries were folded away.

  $ colock why base.jsonl cand.jsonl --top 1
  === wait-time diff: calm ===
  base blocked 30 across 2 wait(s); cand blocked 32 across 2 wait(s)
  delta +2 (+6.7%)
  
  by lockable-unit level:
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     BLU
              +7            0            7     0->1     HeLU (added)
             -20           20            0     1->0     untagged (removed)
  
  by graph depth:
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     2
              +7            0            7     0->1     4 (added)
             -20           20            0     1->0     untagged (removed)
  
  resource deltas (top 1 of 3):
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     rA
  
  conflict-cell deltas (waiter<-holder) (top 1 of 3):
           DELTA         BASE         CAND       WAITS  KEY
             +15           10           25     1->1     X<-S
  
  blocker deltas (top 1 of 2):
           DELTA         BASE         CAND       WAITS  KEY
             +22           10           32     1->2     T9
  
  drift: run extinct only in the base trace (not diffed)
  drift: run newborn only in the candidate trace (not diffed)

A specific run can be selected by label; asking for a label that is not
paired fails with the known labels listed.

  $ colock why base.jsonl cand.jsonl --run nope
  colock: run "nope" not paired between base.jsonl and cand.jsonl (runs: calm, extinct, newborn)
  [1]

Machine-readable output for dashboards: one object per paired run, all
five partitions plus drift arrays.

  $ colock why base.jsonl cand.jsonl --json --run calm
  {"pairs": [{"label": "calm","base_total": 30,"cand_total": 32,"delta": 2,"base_waits": 2,"cand_waits": 2,"levels": [{"key": "BLU","base": 10,"cand": 25,"delta": 15,"base_waits": 1,"cand_waits": 1,"status": "both"},{"key": "HeLU","base": 0,"cand": 7,"delta": 7,"base_waits": 0,"cand_waits": 1,"status": "only_cand"},{"key": "untagged","base": 20,"cand": 0,"delta": -20,"base_waits": 1,"cand_waits": 0,"status": "only_base"}],"depths": [{"key": "2","base": 10,"cand": 25,"delta": 15,"base_waits": 1,"cand_waits": 1,"status": "both"},{"key": "4","base": 0,"cand": 7,"delta": 7,"base_waits": 0,"cand_waits": 1,"status": "only_cand"},{"key": "untagged","base": 20,"cand": 0,"delta": -20,"base_waits": 1,"cand_waits": 0,"status": "only_base"}],"resources": [{"key": "rA","base": 10,"cand": 25,"delta": 15,"base_waits": 1,"cand_waits": 1,"status": "both"},{"key": "rC","base": 0,"cand": 7,"delta": 7,"base_waits": 0,"cand_waits": 1,"status": "only_cand"},{"key": "rB","base": 20,"cand": 0,"delta": -20,"base_waits": 1,"cand_waits": 0,"status": "only_base"}],"cells": [{"key": "X<-S","base": 10,"cand": 25,"delta": 15,"base_waits": 1,"cand_waits": 1,"status": "both"},{"key": "S<-X","base": 0,"cand": 7,"delta": 7,"base_waits": 0,"cand_waits": 1,"status": "only_cand"},{"key": "S<-queue","base": 20,"cand": 0,"delta": -20,"base_waits": 1,"cand_waits": 0,"status": "only_base"}],"blockers": [{"key": "T9","base": 10,"cand": 32,"delta": 22,"base_waits": 1,"cand_waits": 2,"status": "both"},{"key": "queue","base": 20,"cand": 0,"delta": -20,"base_waits": 1,"cand_waits": 0,"status": "only_base"}]}],"only_base": [],"only_cand": []}

A crash-cut trace (final line torn mid-record, no newline) is diagnosed
with the byte offset where the torn line begins; the complete prefix is
still diffed.

  $ colock why truncated.jsonl cand.jsonl --run calm 2>&1
  colock: truncated.jsonl: line 4: truncated final line at byte 312 (crash-cut trace?): unterminated string
  === wait-time diff: calm ===
  base blocked 6 across 1 wait(s); cand blocked 32 across 2 wait(s)
  delta +26 (+433.3%)
  
  by lockable-unit level:
           DELTA         BASE         CAND       WAITS  KEY
             +19            6           25     1->1     BLU
              +7            0            7     0->1     HeLU (added)
  
  by graph depth:
           DELTA         BASE         CAND       WAITS  KEY
             +19            6           25     1->1     2
              +7            0            7     0->1     4 (added)
  
  resource deltas:
           DELTA         BASE         CAND       WAITS  KEY
             +25            0           25     0->1     rA (added)
              +7            0            7     0->1     rC (added)
              -6            6            0     1->0     rT (removed)
  
  conflict-cell deltas (waiter<-holder):
           DELTA         BASE         CAND       WAITS  KEY
             +19            6           25     1->1     X<-S
              +7            0            7     0->1     S<-X (added)
  
  blocker deltas:
           DELTA         BASE         CAND       WAITS  KEY
             +32            0           32     0->2     T9 (added)
              -6            6            0     1->0     T4 (removed)
  

The trajectory store renders per-metric trends with an EWMA and a MAD
anomaly band; the jump from ~300 to 900 is flagged, and the v:2 record
from the future is skipped with a diagnostic.

  $ colock trends history.jsonl 2>&1
  colock: history.jsonl: line 4: unsupported record version (want 1)
  bench-diff scenarios committed: 3 point(s), median 1005, band ±1.005e-06, 0 anomaly(ies)
    #1             1005  ewma           1005
    #2             1005  ewma           1005
    #3             1005  ewma           1005
  
  bench-diff scenarios total_wait: 3 point(s), median 310, band ±44.478, 1 anomaly(ies)
    #1              300  ewma            300
    #2              310  ewma            303
    #3              900  ewma          482.1  ANOMALY

The committed repo history seed is renderable too.

  $ colock trends ../../BENCH_HISTORY.jsonl --metric committed
  bench E22 committed: 2 point(s), median 40, band ±4e-08, 0 anomaly(ies)
    #1               40  ewma             40
    #2               40  ewma             40
