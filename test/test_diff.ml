(* Tests for the differential profiler: exact delta conservation across
   every attribution partition (hand-built traces, the committed JSONL
   fixtures diffed against each other, and QCheck-generated pairs),
   explicit drift for one-sided keys and runs, deterministic lexicographic
   tie-breaking in every ranked table, and the truncated-final-line
   diagnostic of the JSONL reader that feeds [colock why]. *)

module Event = Obs.Event
module Diff = Obs.Diff
module Profile = Obs.Profile

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let at time kind = { Event.time; kind }

let holder ?(mode = "S") txn = { Event.h_txn = txn; h_mode = mode; h_lu = None }

let wait ?(blockers = []) ?(holders = []) ?lu txn resource mode =
  Event.Lock_waited { txn; resource; mode; blockers; lu; holders }

let grant ?(immediate = false) ?lu txn resource mode =
  Event.Lock_granted { txn; resource; mode; immediate; lu; holders = [] }

let lu kind depth = { Event.lu_kind = kind; lu_depth = depth }

let partitions (report : Diff.report) =
  [ ("levels", report.levels); ("depths", report.depths);
    ("resources", report.resources); ("cells", report.cells);
    ("blockers", report.blockers) ]

let assert_partitions_exact name (report : Diff.report) =
  Alcotest.(check bool) (name ^ ": conserves") true (Diff.conserves report);
  List.iter
    (fun (partition, entries) ->
      let sum =
        List.fold_left
          (fun sum (entry : Diff.entry) -> sum +. entry.e_delta)
          0.0 entries
      in
      check_float
        (Printf.sprintf "%s: %s deltas sum to the total delta" name partition)
        report.delta sum)
    (partitions report)

(* ------------------------------------------------------- hand-built diff *)

(* Base: T1 blocked 10 on ra (BLU depth 1, X<-S behind T9), T1 blocked 20
   on rb (untagged, queue).  Cand: ra's wait stretches to 25 and rb's wait
   disappears, while a new HeLU wait appears on rc. *)
let base_events =
  [ at 0.0 (wait ~blockers:[ 9 ] ~holders:[ holder 9 ] ~lu:(lu "BLU" 1) 1
              "ra" "X");
    at 10.0 (grant ~lu:(lu "BLU" 1) 1 "ra" "X");
    at 10.0 (wait 1 "rb" "S");
    at 30.0 (grant 1 "rb" "S") ]

let cand_events =
  [ at 0.0 (wait ~blockers:[ 9 ] ~holders:[ holder 9 ] ~lu:(lu "BLU" 1) 1
              "ra" "X");
    at 25.0 (grant ~lu:(lu "BLU" 1) 1 "ra" "X");
    at 25.0 (wait ~blockers:[ 9 ] ~holders:[ holder ~mode:"X" 9 ]
               ~lu:(lu "HeLU" 4) 2 "rc" "S");
    at 32.0 (grant ~lu:(lu "HeLU" 4) 2 "rc" "S") ]

let entry key entries =
  List.find (fun (entry : Diff.entry) -> entry.e_key = key) entries

let test_hand_built () =
  let base = Profile.of_events base_events in
  let cand = Profile.of_events cand_events in
  let report = Diff.of_reports ~base ~cand () in
  check_float "base total" 30.0 report.Diff.base_total;
  check_float "cand total" 32.0 report.Diff.cand_total;
  check_float "delta" 2.0 report.Diff.delta;
  assert_partitions_exact "hand-built" report;
  let ra = entry "ra" report.Diff.resources in
  check_float "ra grew by 15" 15.0 ra.Diff.e_delta;
  Alcotest.(check bool) "ra on both sides" true (ra.Diff.e_status = Diff.Both);
  let rb = entry "rb" report.Diff.resources in
  check_float "rb vanished" (-20.0) rb.Diff.e_delta;
  Alcotest.(check bool) "rb only in base" true
    (rb.Diff.e_status = Diff.Only_base);
  let rc = entry "rc" report.Diff.resources in
  check_float "rc appeared" 7.0 rc.Diff.e_delta;
  Alcotest.(check bool) "rc only in cand" true
    (rc.Diff.e_status = Diff.Only_cand);
  (* the untagged wait lands in explicit untagged buckets, not the void *)
  check_float "untagged level tracks rb" (-20.0)
    (entry "untagged" report.Diff.levels).Diff.e_delta;
  check_float "untagged depth tracks rb" (-20.0)
    (entry "untagged" report.Diff.depths).Diff.e_delta;
  check_float "queue cell tracks rb" (-20.0)
    (entry "S<-queue" report.Diff.cells).Diff.e_delta;
  check_float "blocker T9 nets +22" 22.0
    (entry "T9" report.Diff.blockers).Diff.e_delta

let test_self_diff_is_zero () =
  let base = Profile.of_events base_events in
  let report = Diff.of_reports ~base ~cand:base () in
  check_float "self delta" 0.0 report.Diff.delta;
  assert_partitions_exact "self" report;
  List.iter
    (fun (partition, entries) ->
      List.iter
        (fun (entry : Diff.entry) ->
          check_float
            (Printf.sprintf "self: %s/%s is zero" partition entry.e_key)
            0.0 entry.e_delta)
        entries)
    (partitions report)

(* A span blocked behind two distinct holder modes splits equally across
   the two conflict cells — charging both in full (as Profile's matrix
   does) could never conserve the delta. *)
let test_multi_holder_split () =
  let cand =
    Profile.of_events
      [ at 0.0 (wait ~blockers:[ 7; 8 ]
                  ~holders:[ holder ~mode:"S" 7; holder ~mode:"X" 8 ] 1 "r"
                  "X");
        at 9.0 (grant 1 "r" "X") ]
  in
  let base = Profile.of_events [] in
  let report = Diff.of_reports ~base ~cand () in
  check_float "delta is the whole wait" 9.0 report.Diff.delta;
  assert_partitions_exact "multi-holder" report;
  check_float "X<-S takes half" 4.5
    (entry "X<-S" report.Diff.cells).Diff.e_delta;
  check_float "X<-X takes half" 4.5
    (entry "X<-X" report.Diff.cells).Diff.e_delta;
  check_float "blockers split too" 4.5
    (entry "T7" report.Diff.blockers).Diff.e_delta

(* --------------------------------------------------- deterministic ties *)

(* Two resources with identical deltas must rank lexicographically, so a
   --top cut is stable run to run. *)
let test_tie_breaking () =
  let run resources =
    List.concat_map
      (fun (resource, duration) ->
        [ at 0.0 (wait ~blockers:[ 9 ] ~holders:[ holder 9 ] 1 resource "X");
          at duration (grant 1 resource "X") ])
      resources
  in
  let base = Profile.of_events (run [ ("rb", 10.0); ("ra", 10.0) ]) in
  let cand = Profile.of_events (run [ ("rb", 25.0); ("ra", 25.0) ]) in
  let report = Diff.of_reports ~base ~cand () in
  assert_partitions_exact "ties" report;
  Alcotest.(check (list string))
    "equal resource deltas rank by key"
    [ "ra"; "rb" ]
    (List.map (fun (entry : Diff.entry) -> entry.e_key)
       report.Diff.resources);
  (* the same discipline in Profile.blockers: equal shares, label order *)
  let blockers =
    Profile.blockers
      (Profile.of_events
         [ at 0.0 (wait ~blockers:[ 2 ] ~holders:[ holder 2 ] 1 "ra" "X");
           at 10.0 (grant 1 "ra" "X");
           at 0.0 (wait ~blockers:[ 3 ] ~holders:[ holder 3 ] 4 "rb" "X");
           at 10.0 (grant 4 "rb" "X") ])
  in
  Alcotest.(check (list string))
    "equal blocker shares rank by label" [ "T2"; "T3" ]
    (List.map (fun (label, _, _) -> label) blockers)

(* ------------------------------------------------------- pairing drift *)

let labelled label events = at 0.0 (Event.Run_meta { label }) :: events

let test_pairing_drift () =
  let base =
    labelled "calm" base_events @ labelled "extinct" base_events
  in
  let cand = labelled "calm" cand_events @ labelled "newborn" cand_events in
  let pairing = Diff.of_traces ~base ~cand in
  check_int "one paired run" 1 (List.length pairing.Diff.pairs);
  Alcotest.(check (list string))
    "base-only run is drift" [ "extinct" ] pairing.Diff.only_base;
  Alcotest.(check (list string))
    "cand-only run is drift" [ "newborn" ] pairing.Diff.only_cand;
  let report = List.hd pairing.Diff.pairs in
  Alcotest.(check (option string))
    "paired by label" (Some "calm") report.Diff.label;
  assert_partitions_exact "paired run" report

(* ----------------------------------------------- fixture conservation *)

let load_fixture path =
  let events, errors = Obs.Jsonl.load path in
  Alcotest.(check (list string)) (path ^ ": loads clean") [] errors;
  events

let test_fixture_conservation () =
  let analyze = load_fixture "analyze.t/fixture.jsonl" in
  let blame = load_fixture "blame.t/fixture.jsonl" in
  (* every run profile of one fixture diffed against every profile of the
     other (and itself): conservation cannot depend on the pairing *)
  let sides = Profile.of_trace analyze @ Profile.of_trace blame in
  List.iter
    (fun base ->
      List.iter
        (fun cand ->
          let report = Diff.of_reports ~base ~cand () in
          assert_partitions_exact "fixture pair" report)
        sides)
    sides

(* ------------------------------------------------------ QCheck pairs *)

let trace_gen =
  QCheck.Gen.(
    let span_gen index =
      let* resource = oneofl [ "ra"; "rb"; "rc"; "rd" ] in
      let* mode = oneofl [ "S"; "X"; "SX" ] in
      let* blockers = oneof [ return []; return [ 7 ]; return [ 7; 8; 9 ] ] in
      let holders =
        List.map
          (fun txn ->
            { Event.h_txn = txn;
              h_mode = (if txn mod 2 = 0 then "X" else "S");
              h_lu = None })
          blockers
      in
      let* tagged = bool in
      let lu =
        if tagged then
          Some { Event.lu_kind = (if index mod 2 = 0 then "BLU" else "HeLU");
                 lu_depth = index mod 5 }
        else None
      in
      let* start = float_bound_inclusive 100.0 in
      let* duration = float_bound_inclusive 50.0 in
      let* granted = bool in
      let txn = 100 + index in
      let opening =
        at start (Event.Lock_waited { txn; resource; mode; blockers; lu;
                                      holders })
      in
      let closing =
        if granted then
          [ at (start +. duration)
              (Event.Lock_granted
                 { txn; resource; mode; immediate = false; lu; holders = [] })
          ]
        else []
      in
      return (opening :: closing)
    in
    let* count = int_range 0 12 in
    let* spans = flatten_l (List.init count span_gen) in
    return (List.concat spans))

let prop_random_pair_conserves =
  QCheck.Test.make ~name:"random trace pair conserves every partition"
    ~count:200
    (QCheck.make QCheck.Gen.(pair trace_gen trace_gen))
    (fun (base_events, cand_events) ->
      let base = Profile.of_events base_events in
      let cand = Profile.of_events cand_events in
      let report = Diff.of_reports ~base ~cand () in
      Diff.conserves report
      && List.for_all
           (fun (_, entries) ->
             let sum =
               List.fold_left
                 (fun sum (entry : Diff.entry) -> sum +. entry.e_delta)
                 0.0 entries
             in
             Float.abs (sum -. report.Diff.delta)
             <= 1e-9 *. Float.max 1.0 (Float.abs report.Diff.delta))
           (partitions report))

(* ------------------------------------------- truncated-line diagnostic *)

(* A capture cut mid-line by a crash must still yield the complete prefix,
   with the cut named by byte offset instead of a generic parse error. *)
let test_truncated_final_line () =
  let whole_path = "analyze.t/fixture.jsonl" in
  let whole_events, _ = Obs.Jsonl.load whole_path in
  let channel = open_in_bin whole_path in
  let bytes = really_input_string channel (in_channel_length channel) in
  close_in channel;
  let last_line_start = String.rindex (String.trim bytes) '\n' + 1 in
  let cut = last_line_start + 10 in
  let truncated_path = Filename.temp_file "truncated" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove truncated_path)
    (fun () ->
      let out = open_out_bin truncated_path in
      output_string out (String.sub bytes 0 cut);
      close_out out;
      let events, errors = Obs.Jsonl.load truncated_path in
      check_int "complete prefix survives"
        (List.length whole_events - 1)
        (List.length events);
      match errors with
      | [ message ] ->
        let contains needle haystack =
          let n = String.length needle and h = String.length haystack in
          let rec scan index =
            index + n <= h
            && (String.sub haystack index n = needle || scan (index + 1))
          in
          scan 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "diagnostic names the byte offset: %s" message)
          true
          (contains
             (* the offset is where the torn line begins — the byte to cut
                the file at to recover the clean prefix *)
             (Printf.sprintf "truncated final line at byte %d" last_line_start)
             message)
      | errors ->
        Alcotest.failf "expected exactly one diagnostic, got %d"
          (List.length errors))

let () =
  Alcotest.run "diff"
    [ ("attribution",
       [ Alcotest.test_case "hand-built deltas" `Quick test_hand_built;
         Alcotest.test_case "self-diff is zero" `Quick test_self_diff_is_zero;
         Alcotest.test_case "multi-holder equal split" `Quick
           test_multi_holder_split;
         Alcotest.test_case "deterministic ties" `Quick test_tie_breaking;
         Alcotest.test_case "pairing drift" `Quick test_pairing_drift ]);
      ("conservation",
       [ Alcotest.test_case "committed fixtures" `Quick
           test_fixture_conservation ]
       @ List.map QCheck_alcotest.to_alcotest [ prop_random_pair_conserves ]);
      ("jsonl",
       [ Alcotest.test_case "truncated final line" `Quick
           test_truncated_final_line ]) ]
