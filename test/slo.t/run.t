Declarative SLOs over a live simulation: rules load from a file, are
evaluated once per sliding window, every violation lands in the event
stream as an slo_breach event, and a run that breached exits 3.

  $ cat > rules.slo <<'EOF'
  > # impossible latency target: every windowed evaluation breaches
  > p99_wait < 1
  > abort_rate < 0.9
  > EOF

  $ colock simulate --jobs 12 --cells 2 -t proposed --slo rules.slo --jsonl events.jsonl
  colock: 2 SLO breach(es)
  technique              committed    aborts   crashed  makespan   thruput  avg resp     waits     locks
  proposed (rule 4')            12         0         0       330     36.36     135.0       420        90
  proposed (rule 4')     BREACH p99_wait < 1 (value 149.6)
  proposed (rule 4')     ok     abort_rate < 0.9 (value 0)
  [3]

The breaches are ordinary events in the JSONL capture, carrying the rule
text, the measured value and the threshold — colock analyze, colock top
and any later replay see them:

  $ grep slo_breach events.jsonl
  {"event": "slo_breach","time": 200,"rule": "p99_wait < 1","value": 80,"threshold": 1}
  {"event": "slo_breach","time": 330,"rule": "p99_wait < 1","value": 149.6,"threshold": 1}

A satisfiable rule set passes with exit 0 and quiet verdicts:

  $ cat > ok.slo <<'EOF'
  > p99_wait < 100000
  > abort_rate < 0.9
  > EOF

  $ colock simulate --jobs 12 --cells 2 -t proposed --slo ok.slo
  technique              committed    aborts   crashed  makespan   thruput  avg resp     waits     locks
  proposed (rule 4')            12         0         0       330     36.36     135.0       420        90
  proposed (rule 4')     ok     p99_wait < 100000 (value 149.6)
  proposed (rule 4')     ok     abort_rate < 0.9 (value 0)

A malformed rule file is rejected with per-line diagnostics:

  $ printf 'p99_wait < 1\nbogus < 2\n' > bad.slo
  $ colock simulate --jobs 2 --slo bad.slo
  colock: bad.slo:2: unknown signal "bogus" (expected p50_wait/p95_wait/p99_wait [optionally {lu=KIND}], abort_rate, deadlock_rate, wait_rate or throughput)
  [1]
