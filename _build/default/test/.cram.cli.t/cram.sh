  $ colock graph
  $ colock plan "SELECT o FROM c IN cells, o IN c.c_objects WHERE c.cell_id = 'c1' FOR READ"
  $ colock plan "SELECT c FROM c IN cells FOR UPDATE"
  $ colock query \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE" \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE"
  $ colock query --library-writable \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r1' FOR UPDATE" \
  >   "SELECT r FROM c IN cells, r IN c.robots WHERE c.cell_id = 'c1' AND r.robot_id = 'r2' FOR UPDATE"
  $ colock plan "SELECT FROM cells FOR READ"
